// Quickstart: plant tokens around a stack buffer, overflow it, and watch
// the REST hardware raise a privileged exception — the 60-second tour of
// the primitive.
package main

import (
	"fmt"

	"rest"
)

func main() {
	fmt.Println("REST quickstart: a protected stack buffer and a 1-element overflow")
	fmt.Println()

	overflowingProgram := func(b *rest.ProgramBuilder) {
		f := b.Func("main")
		// A 64-byte stack array marked vulnerable: under the REST pass the
		// compiler bookends it with tokens and arms them in the prologue.
		buf := f.Buffer(64, true)
		p := f.Reg()
		f.BufAddr(p, buf, 0)
		// Write 9 x 8 bytes into the 64-byte buffer: the 9th store lands in
		// the right redzone.
		f.ForRangeI(9, func(i rest.Reg) {
			f.Store(p, 0, i, 8)
			f.AddI(p, p, 8)
		})
	}

	// 1. Unprotected baseline: the overflow silently corrupts the frame.
	out, err := rest.RunProgram(rest.Plain(), rest.Secure, overflowingProgram)
	check(err)
	fmt.Printf("plain binary:      %s\n", out)

	// 2. REST-protected build, secure (deployment) mode.
	out, err = rest.RunProgram(rest.RESTFull(64), rest.Secure, overflowingProgram)
	check(err)
	fmt.Printf("REST secure mode:  %s\n", out)
	if out.Exception != nil {
		fmt.Printf("                   -> %v\n", out.Exception)
	}

	// 3. Debug mode: the same detection, but with precise machine state.
	stats, out, err := rest.RunTimed(rest.RESTFull(64), rest.Debug, overflowingProgram)
	check(err)
	fmt.Printf("REST debug mode:   %s (precise=%v, %d cycles simulated)\n",
		out, out.Exception != nil && out.Exception.Precise, stats.Cycles)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
