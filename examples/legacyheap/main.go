// Legacy-binary heap protection: the paper's key deployment advantage
// (§IV-A): "heap protection ... does not require any instrumentation of the
// original program and can thus be availed even by legacy binaries, as long
// as our custom allocator is used (with LD_PRELOAD ... for instance)".
//
// This example builds ONE program with the plain pass — zero REST
// instructions, zero shadow checks, exactly what an old binary would
// contain — and runs it twice: once against the stock libc allocator, once
// with the REST allocator interposed. Only the second run catches the
// use-after-free.
package main

import (
	"fmt"

	"rest"
)

// legacyProgram is an uninstrumented binary with a use-after-free bug.
func legacyProgram(b *rest.ProgramBuilder) {
	f := b.Func("main")
	p := f.Reg()
	v := f.Reg()
	f.CallMallocI(p, 256)
	f.MovI(v, 1234)
	f.Store(p, 0, v, 8)
	f.CallFree(p)
	// ... later, a stale pointer is dereferenced:
	f.Load(v, p, 0, 8)
	f.Checksum(v)
}

func main() {
	fmt.Println("Legacy binary (no recompilation) with a use-after-free bug")
	fmt.Println()

	// Stock deployment: libc allocator, nothing detected; the program reads
	// whatever the allocator left behind.
	out, err := rest.RunProgram(rest.Plain(), rest.Secure, legacyProgram)
	check(err)
	fmt.Printf("stock allocator:          %s (read back %#x)\n", out, out.Checksum)

	// Same binary, REST allocator interposed (the LD_PRELOAD analog): the
	// RESTHeap pass changes no program code — it only swaps the runtime.
	out, err = rest.RunProgram(rest.RESTHeap(64), rest.Secure, legacyProgram)
	check(err)
	fmt.Printf("REST allocator preloaded: %s\n", out)
	if out.Exception != nil {
		fmt.Printf("                          freed chunk was token-filled and quarantined;\n")
		fmt.Printf("                          the dangling load hit it: %v\n", out.Exception)
	}

	// Double free in the same legacy binary.
	doubleFree := func(b *rest.ProgramBuilder) {
		f := b.Func("main")
		p := f.Reg()
		f.CallMallocI(p, 64)
		f.CallFree(p)
		f.CallFree(p)
	}
	out, err = rest.RunProgram(rest.Plain(), rest.Secure, doubleFree)
	check(err)
	fmt.Printf("\ndouble free, stock:       %s\n", out)
	out, err = rest.RunProgram(rest.RESTHeap(64), rest.Secure, doubleFree)
	check(err)
	fmt.Printf("double free, REST:        %s\n", out)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
