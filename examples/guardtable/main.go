// Guard table: the paper's closing claim is that content-based checks have
// uses "beyond memory safety ... not only for improving other aspects of
// software security (e.g., control flow)" (§VIII). This example builds one:
// a write-guarded indirect-jump table.
//
// A dispatch table of function addresses is a classic control-flow-hijack
// target: corrupt one slot and the next indirect call lands in attacker
// code. Here the program brackets the table with tokens AND arms the unused
// tail slots, so both the linear overflow that usually reaches the table
// and writes through the table's own unused entries trip the hardware —
// with zero instrumentation on the dispatch path itself (reads of live
// slots stay full speed; only the armed regions fault).
package main

import (
	"fmt"

	"rest"
)

func build(corrupt bool) func(b *rest.ProgramBuilder) {
	return func(b *rest.ProgramBuilder) {
		handlerA := b.Func("handlerA")
		{
			v := handlerA.Reg()
			handlerA.MovI(v, 100)
			handlerA.Checksum(v)
		}
		handlerB := b.Func("handlerB")
		{
			v := handlerB.Reg()
			handlerB.MovI(v, 200)
			handlerB.Checksum(v)
		}

		f := b.Func("main")
		tbl := f.Reg()
		buf := f.Reg()
		tgt := f.Reg()

		// The jump table: 2 live slots + unused tail, tokens all around it
		// (heap allocation: redzones come from the allocator; the tail is
		// armed by hand — "sprinkled" guard tokens).
		f.CallMallocI(tbl, 128)
		f.FuncAddr(tgt, "handlerA")
		f.Store(tbl, 0, tgt, 8)
		f.FuncAddr(tgt, "handlerB")
		f.Store(tbl, 8, tgt, 8)
		if b.Pass().Flavour == "rest" {
			f.RawArm(tbl, 64) // guard the unused upper half of the table
		}

		// A neighbouring attacker-reachable buffer.
		f.CallMallocI(buf, 64)

		if corrupt {
			// The hijack: a linear overflow from buf sweeps toward the
			// table (the classic heap overwrite of a function pointer).
			f.ForRangeI(40, func(i rest.Reg) {
				p := f.Reg()
				f.ShlI(p, i, 3)
				f.Add(p, p, buf)
				f.Store(p, 0, i, 8)
			})
		}

		// Dispatch through slot 0: full-speed indirect call, no checks.
		f.Load(tgt, tbl, 0, 8)
		f.CallR(tgt)
		f.Load(tgt, tbl, 8, 8)
		f.CallR(tgt)
	}
}

func main() {
	fmt.Println("Guard table: tokens protecting control-flow data (§VIII)")
	fmt.Println()

	out, err := rest.RunProgram(rest.RESTHeap(64), rest.Secure, build(false))
	check(err)
	fmt.Printf("benign dispatch:   %s (checksum %d: both handlers ran)\n", out, out.Checksum)

	out, err = rest.RunProgram(rest.Plain(), rest.Secure, build(true))
	check(err)
	fmt.Printf("hijack, plain:     %s -- table corrupted silently\n", out)

	out, err = rest.RunProgram(rest.RESTHeap(64), rest.Secure, build(true))
	check(err)
	fmt.Printf("hijack, REST:      %s\n", out)
	if out.Exception != nil {
		fmt.Printf("                   the sweep hit a token before reaching a live slot: %v\n", out.Exception)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
