// Heartbleed: the paper's motivating example (Listing 1, Figure 1).
//
// A server copies `payload` bytes out of a request buffer into the response
// without validating the attacker-controlled length. With an 64-byte request
// and a claimed length of 512, the memcpy reads far past the buffer —
// straight through the memory holding a neighbouring secret.
//
// The program is built once and run under three deployments:
//
//	plain      — the leak silently succeeds (the checksum exfiltrates data);
//	asan       — the memcpy interceptor's shadow range check reports it;
//	rest-heap  — the copy's own loads hit the token bookending the buffer
//	             and the hardware raises a REST exception. No recompilation:
//	             heap-only REST protection comes entirely from the
//	             interposed allocator (the legacy-binary story, §IV-A).
package main

import (
	"fmt"

	"rest"
)

// secretValue stands in for the passwords/credentials of Figure 1.
const secretValue = 0x5EC12E7

func heartbleedServer(b *rest.ProgramBuilder) {
	f := b.Func("main")
	req := f.Reg()     // the SSL record buffer
	secret := f.Reg()  // neighbouring allocation with sensitive data
	resp := f.Reg()    // response buffer
	payload := f.Reg() // attacker-controlled length
	v := f.Reg()

	// unsigned char *p = &s->s3->rrec.data[0];  (a 64-byte record)
	f.CallMallocI(req, 64)
	// Sensitive data happens to live just past it on the heap.
	f.CallMallocI(secret, 64)
	f.MovI(v, secretValue)
	f.Store(secret, 0, v, 8)

	// n2s(p, payload): the attacker claims 512 bytes.
	f.MovI(payload, 512)
	// buffer = OPENSSL_malloc(payload);
	f.CallMalloc(resp, payload)
	// memcpy(buffer, p, payload): the vulnerable out-of-bounds read.
	f.CallMemcpy(resp, req, payload)

	// The response is "sent": checksum what leaked into it.
	f.ForRangeI(64, func(i rest.Reg) {
		p := f.Reg()
		w := f.Reg()
		f.ShlI(p, i, 3)
		f.Add(p, p, resp)
		f.Load(w, p, 0, 8)
		f.Checksum(w)
	})
}

func main() {
	fmt.Println("Heartbleed (Listing 1): attacker requests 512 bytes from a 64-byte record")
	fmt.Println()

	out, err := rest.RunProgram(rest.Plain(), rest.Secure, heartbleedServer)
	check(err)
	fmt.Printf("plain:      %s\n", out)
	if !out.Detected() {
		leaked := out.Checksum != 0
		fmt.Printf("            response checksum %#x -> secret leaked: %v\n", out.Checksum, leaked)
	}

	out, err = rest.RunProgram(rest.ASanFull(), rest.Secure, heartbleedServer)
	check(err)
	fmt.Printf("asan:       %s\n", out)

	out, err = rest.RunProgram(rest.RESTHeap(64), rest.Secure, heartbleedServer)
	check(err)
	fmt.Printf("rest-heap:  %s\n", out)
	if out.Exception != nil {
		fmt.Printf("            over-read stopped at the token bookend: %v\n", out.Exception)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
