// Multiprocess: the paper's system-level deployment (§IV-B) — one token per
// process, maintained by the OS across context switches, with cloning and
// rotation handled by re-arming.
//
// The run demonstrates four properties:
//  1. every process draws a distinct token; the OS swaps the token
//     configuration register on each context switch (privileged stores);
//  2. process isolation: A's tokens are live only while A's register is
//     installed — B sees them as inert bytes even on a shared page (§V-B);
//  3. fork: a cloned address space inherits the parent's blacklist, which
//     the OS must re-arm under the child's token or it silently vanishes;
//  4. rotation: a fresh token (e.g. at reboot) keeps the blacklist live and
//     kills any leaked old token value.
package main

import (
	"fmt"

	"rest/internal/core"
	"rest/internal/system"
)

func main() {
	os := system.NewOS(42)

	a, err := os.Spawn(core.Width64, core.Secure)
	check(err)
	b, err := os.Spawn(core.Width64, core.Secure)
	check(err)
	fmt.Printf("spawned pid %d and pid %d; tokens differ: %v\n",
		a.PID, b.PID, string(a.Reg.Value()) != string(b.Reg.Value()))

	// Process A blacklists a buffer's surroundings.
	check2(os.Schedule(a))
	a.Tracker.Arm(0x1000, 0)
	fmt.Printf("pid %d armed 0x1000; detector sees it: %v\n", a.PID, os.DetectorView(a, 0x1010))

	// Context switch to B. Even with A's token bytes copied into B's space
	// (an IPC page, say), B's detector stays quiet: the register holds B's
	// token.
	check2(os.Schedule(b))
	b.Mem.Write(0x1000, a.Reg.Value())
	fmt.Printf("pid %d sees A's token bytes as data: detected=%v (want false)\n",
		b.PID, os.DetectorView(b, 0x1010))
	fmt.Printf("context switches so far: %d (%d privileged register stores)\n",
		os.ContextSwitches, os.HW.PrivilegedWrites())

	// Fork A: the child inherits the blacklist, re-armed under its own token.
	child, err := os.Clone(a, [][2]uint64{{0x0, 0x2000}})
	check(err)
	check2(os.Schedule(child))
	fmt.Printf("cloned pid %d -> pid %d: inherited blacklist live: %v (%d chunks re-armed)\n",
		a.PID, child.PID, os.DetectorView(child, 0x1010), os.RearmedChunks)

	// Rotate the child's token (reboot-style): blacklist survives, the old
	// value dies.
	old := append([]byte(nil), child.Reg.Value()...)
	os.RotateToken(child)
	child.Mem.Write(0x1800, old) // attacker replays the leaked old token
	fmt.Printf("after rotation: blacklist live=%v, leaked old token inert=%v\n",
		os.DetectorView(child, 0x1010), !os.DetectorView(child, 0x1800))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func check2(err error) { check(err) }
