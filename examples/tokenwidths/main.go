// Token widths: §III-B and §V-C explore 16/32/64-byte tokens. Narrower
// tokens keep detection intact, shrink the alignment-pad false-negative
// window, and — Figure 8's result — cost essentially the same performance.
//
// This example demonstrates all three effects on a 100-byte buffer:
// under 64B tokens the buffer pads to 128 bytes, so an overflow landing in
// [100,128) is missed; under 16B tokens the pad is only [100,112), so the
// same overflow is caught. It then times one workload at each width.
package main

import (
	"fmt"

	"rest"
)

// spill builds a program overflowing a 100-byte protected buffer at the
// given offset.
func spill(off int64) func(b *rest.ProgramBuilder) {
	return func(b *rest.ProgramBuilder) {
		f := b.Func("main")
		buf := f.Buffer(100, true)
		p := f.Reg()
		v := f.Reg()
		f.MovI(v, 0x41)
		f.BufAddr(p, buf, off)
		f.Store(p, 0, v, 8)
	}
}

func main() {
	fmt.Println("Token widths: detection granularity and performance (Figure 8, §V-C)")
	fmt.Println()
	fmt.Println("100-byte protected buffer, 8-byte store at increasing offsets:")
	fmt.Printf("%-8s", "offset")
	for _, w := range []uint64{16, 32, 64} {
		fmt.Printf("%14s", fmt.Sprintf("%dB tokens", w))
	}
	fmt.Println()

	for _, off := range []int64{96, 104, 108, 112, 120, 128} {
		fmt.Printf("%-8d", off)
		for _, w := range []uint64{16, 32, 64} {
			out, err := rest.RunProgram(rest.RESTFull(w), rest.Secure, spill(off))
			if err != nil {
				panic(err)
			}
			res := "missed"
			if out.Detected() {
				res = "CAUGHT"
			}
			if off < 100 {
				res = "in-bounds"
			}
			fmt.Printf("%14s", res)
		}
		fmt.Println()
	}
	fmt.Println("\n(the pad window [size, padded) shrinks as tokens narrow: 12B at w=16,")
	fmt.Println(" 28B at w=32, 28..63B at w=64 — narrower tokens catch closer overflows)")

	// Performance at each width for one allocation-heavy workload.
	fmt.Println("\nxalanc cycles by token width (secure mode, full protection):")
	wl, err := rest.WorkloadByName("xalanc")
	if err != nil {
		panic(err)
	}
	var base uint64
	for _, w := range []uint64{16, 32, 64} {
		stats, out, err := rest.RunTimed(rest.RESTFull(w), rest.Secure, wl.Build(2))
		if err != nil || out.Err != nil {
			panic(fmt.Sprint(err, out.Err))
		}
		if base == 0 {
			base = stats.Cycles
		}
		fmt.Printf("  %2dB tokens: %9d cycles (%+.1f%% vs 16B)\n",
			w, stats.Cycles, 100*(float64(stats.Cycles)/float64(base)-1))
	}
	fmt.Println("\nFigure 8's conclusion: pick token width for security, not speed.")
}
