package prog_test

import (
	"testing"

	"rest/internal/core"
	"rest/internal/prog"
)

// setjmpProgram: main setjmps, calls a victim whose protected stack buffer
// is armed and who longjmps straight back to main (skipping its epilogue
// disarms), then main calls an innocent function whose frame reuses the
// victim's stack region.
func setjmpProgram(b *prog.Builder) {
	jb := b.Global(64, false)

	victim := b.Func("victim")
	{
		buf := victim.Buffer(128, true) // armed in the prologue
		p := victim.Reg()
		v := victim.Reg()
		victim.MovI(v, 1)
		victim.BufAddr(p, buf, 0)
		victim.Store(p, 0, v, 8)
		victim.LongJmp(jb) // epilogue (disarms!) never runs
	}

	innocent := b.Func("innocent")
	{
		// A big unprotected frame overlapping victim's old frame; write it
		// all, as any callee legitimately may.
		buf := innocent.Buffer(512, false)
		p := innocent.Reg()
		v := innocent.Reg()
		innocent.MovI(v, 2)
		innocent.BufAddr(p, buf, 0)
		innocent.ForRangeI(64, func(i prog.Reg) {
			innocent.Store(p, 0, v, 8)
			innocent.AddI(p, p, 8)
		})
		innocent.Checksum(v)
	}

	f := b.Func("main")
	resume := f.NewLabel()
	f.SetJmp(jb, resume)
	f.Call("victim")
	// Not reached: victim longjmps.
	f.Bind(resume)
	f.Call("innocent")
}

func TestSetjmpLongjmpControlFlow(t *testing.T) {
	// Plain build: longjmp works and the program completes.
	out := runUnder(t, prog.Plain(), core.Secure, setjmpProgram)
	if out.Detected() {
		t.Fatalf("plain: %s", out)
	}
	if out.Checksum != 2 {
		t.Errorf("checksum = %d, want 2 (innocent ran after longjmp)", out.Checksum)
	}
}

func TestSetjmpASanConservativeHandling(t *testing.T) {
	// ASan's longjmp handling unpoisons the abandoned region: no false
	// positive when innocent reuses the victim's stack (§V-C: ASan "takes a
	// very conservative approach ... whitelisting the entire region").
	out := runUnder(t, prog.ASanFull(), core.Secure, setjmpProgram)
	if out.Detected() {
		t.Fatalf("asan: false positive after longjmp: %s", out)
	}
	if out.Checksum != 2 {
		t.Errorf("asan checksum = %d, want 2", out.Checksum)
	}
}

func TestSetjmpRESTIncompatibility(t *testing.T) {
	// The paper's documented open problem: REST cannot clean up the armed
	// redzones skipped by the longjmp, so the innocent function's
	// legitimate stack writes hit stale tokens — a FALSE POSITIVE that
	// pins §V-C's "providing a secure and cheap mechanism for handling
	// this case remains a topic of future research".
	out := runUnder(t, prog.RESTFull(64), core.Secure, setjmpProgram)
	if out.Exception == nil {
		t.Fatal("REST-full longjmp program did not hit stale tokens " +
			"(the documented incompatibility should manifest)")
	}
	if out.Exception.Kind != core.ViolationStore {
		t.Errorf("kind = %v, want store-touched-token", out.Exception.Kind)
	}
	// Heap-only REST has no stack arms, so longjmp is safe there — which is
	// why the legacy-binary deployment sidesteps the problem entirely.
	out = runUnder(t, prog.RESTHeap(64), core.Secure, setjmpProgram)
	if out.Detected() {
		t.Errorf("rest-heap: %s, want clean (no stack arms to leak)", out)
	}
	if out.Checksum != 2 {
		t.Errorf("rest-heap checksum = %d, want 2", out.Checksum)
	}
}
