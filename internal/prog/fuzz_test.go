package prog_test

import (
	"math/rand"
	"testing"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/prog"
	"rest/internal/world"
)

// genBenign generates a random well-formed, bounds-respecting program: a
// stack buffer, a couple of heap chunks, loops of in-bounds loads/stores,
// arithmetic, memcpy between chunks, and frees. Differential property: all
// instrumentation passes must compute the same checksum and detect nothing.
func genBenign(r *rand.Rand) func(b *prog.Builder) {
	// Pre-draw the program shape so every pass builds the same program.
	type step struct {
		kind int
		a, b int64
	}
	steps := make([]step, 0, 24)
	n := 8 + r.Intn(16)
	for i := 0; i < n; i++ {
		steps = append(steps, step{kind: r.Intn(6), a: int64(r.Intn(16)), b: int64(1 + r.Intn(7))})
	}
	globalSize := uint64(64 + r.Intn(3)*64)
	bufSize := uint64(64 + r.Intn(3)*64)
	heapSize := int64(64 + r.Intn(4)*64)

	return func(b *prog.Builder) {
		g := b.Global(globalSize, true)
		f := b.Func("main")
		buf := f.Buffer(bufSize, true)
		hp := f.Reg()
		hq := f.Reg()
		sp := f.Reg()
		gp := f.Reg()
		acc := f.Reg()
		f.CallMallocI(hp, heapSize)
		f.CallMallocI(hq, heapSize)
		f.BufAddr(sp, buf, 0)
		f.GlobalAddr(gp, g, 0)
		f.MovI(acc, 1)

		for _, s := range steps {
			switch s.kind {
			case 0: // in-bounds stack store+load
				off := (s.a * 8) % int64(bufSize-8)
				f.Store(sp, off, acc, 8)
				f.Load(acc, sp, off, 8)
				f.Checksum(acc)
			case 1: // in-bounds heap access
				off := (s.a * 8) % (heapSize - 8)
				f.Store(hp, off, acc, 8)
				f.Load(acc, hp, off, 8)
				f.Checksum(acc)
			case 2: // arithmetic loop
				f.ForRangeI(s.b*8, func(i prog.Reg) {
					f.OpI(isa.OpMulI, acc, acc, 3)
					f.Add(acc, acc, i)
				})
				f.Checksum(acc)
			case 3: // memcpy between the heap chunks
				f.Scope(func() {
					nn := f.Reg()
					f.MovI(nn, heapSize)
					f.CallMemcpy(hq, hp, nn)
					v := f.Reg()
					f.Load(v, hq, 0, 8)
					f.Checksum(v)
				})
			case 4: // global access
				off := (s.a * 8) % int64(globalSize-8)
				f.Store(gp, off, acc, 8)
				f.Load(acc, gp, off, 8)
				f.Checksum(acc)
			case 5: // data-dependent branch
				f.Scope(func() {
					t := f.Reg()
					f.ShrI(t, acc, 3)
					f.AndI(t, t, 1)
					f.If(isa.OpBne, t, prog.Reg(0), func() {
						f.AddI(acc, acc, 13)
					}, func() {
						f.AddI(acc, acc, 7)
					})
					f.Checksum(acc)
				})
			}
		}
		f.CallFree(hp)
		f.CallFree(hq)
	}
}

func TestDifferentialFuzzPasses(t *testing.T) {
	passes := map[string]prog.PassConfig{
		"plain":        prog.Plain(),
		"asan":         prog.ASanFull(),
		"rest-full":    prog.RESTFull(64),
		"rest-full-16": prog.RESTFull(16),
		"rest-heap":    prog.RESTHeap(64),
		"perfecthw":    prog.PerfectHWFull(),
	}
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for trial := 0; trial < iters; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		build := genBenign(r)
		var ref uint64
		haveRef := false
		for name, pass := range passes {
			w, err := world.Build(world.Spec{Pass: pass, Mode: core.Secure,
				Width: core.Width(pass.TokenWidth)}, build)
			if err != nil {
				t.Fatalf("trial %d/%s: build: %v", trial, name, err)
			}
			out := w.RunFunctional()
			if out.Err != nil {
				t.Fatalf("trial %d/%s: %v", trial, name, out.Err)
			}
			if out.Detected() {
				t.Fatalf("trial %d/%s: false positive on benign program: %s",
					trial, name, out)
			}
			if !haveRef {
				ref, haveRef = out.Checksum, true
			} else if out.Checksum != ref {
				t.Fatalf("trial %d/%s: checksum %#x != reference %#x",
					trial, name, out.Checksum, ref)
			}
			// REST worlds keep their token state consistent throughout.
			if w.Tracker != nil {
				if err := w.Tracker.VerifyConsistency(); err != nil {
					t.Fatalf("trial %d/%s: %v", trial, name, err)
				}
			}
		}
	}
}

// TestDifferentialFuzzDebugMode repeats a few trials in debug mode, which
// must not change architectural results.
func TestDifferentialFuzzDebugMode(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		r := rand.New(rand.NewSource(int64(5000 + trial)))
		build := genBenign(r)
		sec, err := world.Build(world.Spec{Pass: prog.RESTFull(64), Mode: core.Secure}, build)
		if err != nil {
			t.Fatal(err)
		}
		dbg, err := world.Build(world.Spec{Pass: prog.RESTFull(64), Mode: core.Debug}, build)
		if err != nil {
			t.Fatal(err)
		}
		so := sec.RunFunctional()
		do := dbg.RunFunctional()
		if so.Checksum != do.Checksum || so.Detected() != do.Detected() {
			t.Fatalf("trial %d: secure/debug diverge: %s vs %s", trial, so, do)
		}
	}
}
