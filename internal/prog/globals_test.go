package prog_test

import (
	"testing"

	"rest/internal/core"
	"rest/internal/prog"
)

// globalProgram writes in bounds into a protected global and checksums it.
func globalProgram(off int64) func(b *prog.Builder) {
	return func(b *prog.Builder) {
		g := b.Global(128, true)
		f := b.Func("main")
		p := f.Reg()
		v := f.Reg()
		f.MovI(v, 99)
		f.GlobalAddr(p, g, off)
		f.Store(p, 0, v, 8)
		f.Load(v, p, 0, 8)
		f.Checksum(v)
	}
}

func TestGlobalInBounds(t *testing.T) {
	for name, pass := range allPasses() {
		out := runUnder(t, pass, core.Secure, globalProgram(64))
		if out.Detected() {
			t.Errorf("%s: in-bounds global access detected: %s", name, out)
		}
		if out.Checksum != 99 {
			t.Errorf("%s: checksum = %d, want 99", name, out.Checksum)
		}
	}
}

func TestGlobalOverflowDetection(t *testing.T) {
	// One word past a 128-byte protected global.
	if out := runUnder(t, prog.Plain(), core.Secure, globalProgram(128)); out.Detected() {
		t.Errorf("plain: detected, want silent: %s", out)
	}
	out := runUnder(t, prog.RESTFull(64), core.Secure, globalProgram(128))
	if out.Exception == nil {
		t.Error("rest-full: global overflow not detected")
	}
	out = runUnder(t, prog.ASanFull(), core.Secure, globalProgram(128))
	if out.Violation == nil {
		t.Error("asan: global overflow not detected")
	}
	// Heap-only REST (legacy binary) cannot protect globals: documented gap.
	if out := runUnder(t, prog.RESTHeap(64), core.Secure, globalProgram(128)); out.Detected() {
		t.Errorf("rest-heap: detected global overflow without instrumentation: %s", out)
	}
}

func TestGlobalUnderflowDetection(t *testing.T) {
	out := runUnder(t, prog.RESTFull(64), core.Secure, globalProgram(-8))
	if out.Exception == nil {
		t.Error("rest-full: global underflow not detected")
	}
}

func TestUnprotectedGlobalHasNoRedzones(t *testing.T) {
	// Two adjacent unprotected globals: writing past the first lands in the
	// second (silent) under every pass.
	build := func(b *prog.Builder) {
		g1 := b.Global(64, false)
		g2 := b.Global(64, false)
		f := b.Func("main")
		p := f.Reg()
		q := f.Reg()
		v := f.Reg()
		f.MovI(v, 7)
		f.GlobalAddr(p, g1, 64) // == start of g2
		f.Store(p, 0, v, 8)
		f.GlobalAddr(q, g2, 0)
		f.Load(v, q, 0, 8)
		f.Checksum(v)
	}
	out := runUnder(t, prog.RESTFull(64), core.Secure, build)
	if out.Detected() {
		t.Errorf("unprotected globals triggered detection: %s", out)
	}
	if out.Checksum != 7 {
		t.Errorf("checksum = %d, want 7 (g1 overflow reached g2)", out.Checksum)
	}
}

func TestGlobalAddressesStable(t *testing.T) {
	b := prog.NewBuilder(prog.RESTFull(64))
	g1 := b.Global(100, true)
	g2 := b.Global(64, false)
	f := b.Func("main")
	_ = f
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if g1.Addr() == 0 || g2.Addr() == 0 {
		t.Error("global addresses unassigned after Build")
	}
	// Protected global: payload sits one redzone past the base; the second
	// global follows the first's right redzone.
	if g2.Addr() <= g1.Addr()+g1.Padded {
		t.Errorf("g2 at %#x overlaps g1 [%#x, +%d + redzone)", g2.Addr(), g1.Addr(), g1.Padded)
	}
}
