package prog

import (
	"fmt"

	"rest/internal/isa"
	"rest/internal/layout"
)

// Reg is a symbolic register handle.
type Reg uint8

// Label marks a branch target within a function.
type Label int

// fixKind tags instructions needing link-time patching.
type fixKind uint8

const (
	fixNone   fixKind = iota
	fixLabel          // Imm = label id -> absolute PC
	fixCall           // Imm = function index -> absolute PC
	fixBuf            // Imm += buffer payload offset (frame layout runs at link time)
	fixGlobal         // Imm += global payload address (data layout runs at link time)
)

type fixupInstr struct {
	in  isa.Instr
	fix fixKind
	ref int
}

// Buffer is a stack-allocated array within a function frame.
type Buffer struct {
	fn        *Function
	Size      uint64 // requested bytes
	Padded    uint64 // after token-width padding
	Protected bool
	off       uint64 // payload offset from SP (set at layout)
	rzOff1    uint64 // left redzone offset (protected only)
	rzOff2    uint64 // right redzone offset
}

// Builder assembles a program from functions under one pass configuration.
//
// Misuse of the fluent DSL (duplicate functions, register exhaustion,
// late buffer declarations, calls to undeclared functions) is recorded as a
// build error rather than panicking: the DSL is user-facing API surface, so
// a bad program must surface as an error from Build, never as a crash. Only
// the first misuse is kept — everything after it builds on a broken
// program anyway.
type Builder struct {
	pass    PassConfig
	funcs   []*Function
	byName  map[string]*Function
	globals []*Global
	err     error
}

// fail records the first DSL misuse; Build returns it.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the recorded DSL misuse, if any (Build reports it too).
func (b *Builder) Err() error { return b.err }

// NewBuilder starts a program build under the given pass.
func NewBuilder(pass PassConfig) *Builder {
	return &Builder{pass: pass.withDefaults(), byName: make(map[string]*Function)}
}

// Pass returns the builder's pass configuration.
func (b *Builder) Pass() PassConfig { return b.pass }

// Func declares a function. The name "main" is the program entry; it ends in
// HALT instead of RET.
func (b *Builder) Func(name string) *Function {
	f := &Function{name: name, b: b, nextReg: 1}
	if _, dup := b.byName[name]; dup {
		// Recorded, not panicked: the duplicate is user input. The orphan
		// function keeps the fluent API usable until Build reports it.
		b.fail("prog: duplicate function %q", name)
		return f
	}
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

// Function builds one function body.
type Function struct {
	name    string
	b       *Builder
	body    []fixupInstr
	labels  []int // label -> body index (-1 = unbound)
	buffers []*Buffer
	nextReg uint8
	maxReg  uint8 // high-water mark of allocated registers (for callee saves)
	sealed  bool  // buffers may no longer be declared once body code exists
	usesRA  bool  // calls another function -> must save RA
	start   int   // first instruction index after linking

	regSaveOff uint64 // callee-saved register area offset (set at layout)
	raOff      uint64 // return-address slot offset (set at layout)
}

// Name returns the function name.
func (f *Function) Name() string { return f.name }

// Reg allocates a fresh general-purpose register for the function. The pool
// is r1..r19; r20+ are reserved for the runtime-call and instrumentation
// linkage (see sim package).
func (f *Function) Reg() Reg {
	if f.nextReg >= 20 {
		// Register exhaustion depends on the user's program shape; report it
		// from Build instead of crashing mid-DSL. The returned handle aliases
		// r19 — harmless, since the build is already doomed.
		f.b.fail("prog: %s: out of registers", f.name)
		return Reg(19)
	}
	r := Reg(f.nextReg)
	f.nextReg++
	if f.nextReg > f.maxReg {
		f.maxReg = f.nextReg
	}
	return r
}

// Buffer declares a stack array. Protected buffers receive redzones under
// protecting passes. All buffers must be declared before any body code.
func (f *Function) Buffer(size uint64, protected bool) *Buffer {
	w := f.b.pass.TokenWidth
	buf := &Buffer{
		fn:        f,
		Size:      size,
		Padded:    (size + w - 1) &^ (w - 1),
		Protected: protected,
	}
	if f.sealed {
		// Declaration order is user input; the orphan buffer keeps later
		// BufAddr calls from dereferencing nil while Build reports the error.
		f.b.fail("prog: %s: Buffer() after body code", f.name)
		return buf
	}
	f.buffers = append(f.buffers, buf)
	return buf
}

// NewLabel creates an unbound label.
func (f *Function) NewLabel() Label {
	f.labels = append(f.labels, -1)
	return Label(len(f.labels) - 1)
}

// Bind attaches a label to the next emitted instruction.
func (f *Function) Bind(l Label) {
	f.labels[l] = len(f.body)
}

func (f *Function) emit(in isa.Instr) {
	f.sealed = true
	f.body = append(f.body, fixupInstr{in: in})
}

func (f *Function) emitFix(in isa.Instr, k fixKind, ref int) {
	f.sealed = true
	f.body = append(f.body, fixupInstr{in: in, fix: k, ref: ref})
}

// frame computes the stack layout: [buffers with redzones...][RA slot pad to
// 64]. Offsets are from the adjusted SP; everything stays 64-byte aligned so
// redzones are token-aligned regardless of width.
func (f *Function) frame() (frameSize uint64) {
	rz := f.b.pass.RedzoneBytes
	protecting := f.b.pass.StackProtection
	off := uint64(0)
	for _, buf := range f.buffers {
		if buf.Protected && protecting {
			buf.rzOff1 = off
			buf.off = off + rz
			buf.rzOff2 = buf.off + buf.Padded
			off = buf.rzOff2 + rz
		} else {
			buf.off = off
			off += buf.Padded
		}
	}
	// Callee-saved register area (every register the function allocated) in
	// its own 64-aligned region, then the RA slot region, at the top of the
	// frame.
	f.regSaveOff = off
	regBytes := uint64(f.maxReg) * 8
	off += (regBytes + 63) &^ 63
	f.raOff = off
	off += 64
	return (off + 63) &^ 63
}

// Program is the linked output.
type Program struct {
	Instrs []isa.Instr
	Entry  int
	Funcs  map[string]int // name -> entry instruction index
}

// Build lays out frames, inserts prologue/epilogue instrumentation, links
// calls and branches, and returns the executable program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	main, ok := b.byName["main"]
	if !ok {
		return nil, fmt.Errorf("prog: no main function")
	}
	b.layoutGlobals()
	// Assemble each function: prologue + body (labels patched) + epilogue.
	var all []isa.Instr
	type callFix struct{ at, fn int }
	var callFixes []callFix
	funcIdx := make(map[string]int)
	funcOrder := []*Function{main}
	for _, f := range b.funcs {
		if f != main {
			funcOrder = append(funcOrder, f)
		}
	}
	nameToOrder := make(map[string]int, len(funcOrder))
	for i, f := range funcOrder {
		nameToOrder[f.name] = i
	}

	for _, f := range funcOrder {
		f.start = len(all)
		funcIdx[f.name] = f.start
		frame := f.frame()

		pro, epi := f.frameCode(frame)
		if f == main {
			// Module initializers (global redzone installation) run before
			// main's own prologue code touches anything.
			pro = append(b.globalInitCode(), pro...)
		}
		all = append(all, pro...)

		bodyBase := len(all)
		for _, fi := range f.body {
			in := fi.in
			switch fi.fix {
			case fixLabel:
				idx := f.labels[fi.ref]
				if idx < 0 {
					return nil, fmt.Errorf("prog: %s: unbound label %d", f.name, fi.ref)
				}
				in.Imm = int64(pcOf(bodyBase + idx))
			case fixCall:
				callFixes = append(callFixes, callFix{at: len(all), fn: fi.ref})
			case fixBuf:
				in.Imm += int64(f.buffers[fi.ref].off)
			case fixGlobal:
				in.Imm += int64(b.globals[fi.ref].addr)
			}
			all = append(all, in)
		}
		all = append(all, epi...)
	}

	for _, cf := range callFixes {
		target, ok := b.byName[b.funcs[cf.fn].name]
		if !ok {
			return nil, fmt.Errorf("prog: unresolved call")
		}
		all[cf.at].Imm = int64(pcOf(funcIdx[target.name]))
	}
	_ = nameToOrder

	for i, in := range all {
		if err := in.Valid(); err != nil {
			return nil, fmt.Errorf("prog: instruction %d (%s): %w", i, in, err)
		}
	}
	return &Program{Instrs: all, Entry: 0, Funcs: funcIdx}, nil
}

// pcOf converts an instruction index to its absolute PC.
func pcOf(idx int) uint64 {
	return layout.CodeBase + uint64(idx)*isa.InstrBytes
}
