// Package prog is the program builder: a small compiler DSL that workloads
// and attack programs are written in, lowered to the machine ISA under one
// of the instrumentation passes the evaluation compares.
//
// The pass plays the role of the Clang plugin in the paper (§IV-A): the
// plain pass emits bare code; the ASan pass inserts inline shadow checks
// before every body memory access and poisons stack redzones in function
// prologues; the REST pass only arms/disarms stack redzones (no access
// instrumentation — the hardware checks every access); heap-only variants
// skip stack work entirely, which is what makes REST compatible with legacy
// binaries.
package prog

import "rest/internal/rt"

// PassConfig selects the instrumentation inserted at build time. The
// components map one-to-one onto Figure 3's overhead breakdown: the
// allocator choice lives in the runtime flavour, stack-frame setup is
// StackProtection, memory-access validation is AccessChecks, and the libc
// API intercept is a runtime toggle (rt.Runtime.InterceptLibc).
type PassConfig struct {
	Flavour rt.Flavour
	// StackProtection instruments prologues/epilogues with redzone
	// poisoning (ASan) or arm/disarm (REST).
	StackProtection bool
	// AccessChecks inserts ASan's inline shadow check before every body
	// memory access.
	AccessChecks bool
	// TokenWidth is the REST token width in bytes (default 64).
	TokenWidth uint64
	// RedzoneBytes is the stack redzone size per side (default 64).
	RedzoneBytes uint64
}

// Normalized returns the config with every defaulted field made explicit,
// so two configs that build identical programs compare equal. The harness
// trace cache uses it as part of a cell's functional identity key.
func (p PassConfig) Normalized() PassConfig { return p.withDefaults() }

func (p PassConfig) withDefaults() PassConfig {
	if p.TokenWidth == 0 {
		p.TokenWidth = 64
	}
	if p.RedzoneBytes == 0 {
		p.RedzoneBytes = 64
	}
	if p.Flavour == "" {
		p.Flavour = rt.Plain
	}
	return p
}

// Plain is the uninstrumented baseline build.
func Plain() PassConfig {
	return PassConfig{Flavour: rt.Plain}
}

// ASanFull is the standard ASan build: allocator + stack frames + access
// checks (+ interceptors at run time).
func ASanFull() PassConfig {
	return PassConfig{Flavour: rt.ASan, StackProtection: true, AccessChecks: true}
}

// ASanComponents builds ASan with individually toggled components, used to
// regenerate Figure 3's breakdown.
func ASanComponents(stack, checks bool) PassConfig {
	return PassConfig{Flavour: rt.ASan, StackProtection: stack, AccessChecks: checks}
}

// RESTFull is stack + heap REST protection (requires recompilation).
func RESTFull(width uint64) PassConfig {
	return PassConfig{Flavour: rt.REST, StackProtection: true, TokenWidth: width}
}

// RESTHeap is heap-only REST protection: no instrumentation at all, only the
// interposed allocator — the legacy-binary deployment (§IV-A).
func RESTHeap(width uint64) PassConfig {
	return PassConfig{Flavour: rt.REST, TokenWidth: width}
}

// PerfectHWFull/PerfectHWHeap cost REST software on zero-cost hardware.
func PerfectHWFull() PassConfig {
	return PassConfig{Flavour: rt.PerfectHW, StackProtection: true}
}

// PerfectHWHeap is the heap-only perfect-hardware build.
func PerfectHWHeap() PassConfig {
	return PassConfig{Flavour: rt.PerfectHW}
}
