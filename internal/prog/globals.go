package prog

import (
	"rest/internal/isa"
	"rest/internal/layout"
	"rest/internal/rt"
	"rest/internal/shadow"
	"rest/internal/sim"
)

// Global is a statically allocated array in the data segment. Protected
// globals receive redzones under protecting passes, installed once by
// module-initializer code emitted at the top of main (ASan registers
// globals the same way; for REST this is the "sprinkle arbitrary tokens
// across the data region" capability of §V-C put to work on statics).
type Global struct {
	b         *Builder
	Size      uint64
	Padded    uint64
	Protected bool
	addr      uint64 // payload address (assigned at layout)
	rz1, rz2  uint64 // redzone addresses (protected only)
}

// Addr returns the global's payload address (valid after Build).
func (g *Global) Addr() uint64 { return g.addr }

// Global declares a statically allocated array. Must be called before
// Build; the data segment is laid out in declaration order.
func (b *Builder) Global(size uint64, protected bool) *Global {
	w := b.pass.TokenWidth
	g := &Global{
		b:         b,
		Size:      size,
		Padded:    (size + w - 1) &^ (w - 1),
		Protected: protected,
	}
	b.globals = append(b.globals, g)
	return g
}

// layoutGlobals assigns data-segment addresses.
func (b *Builder) layoutGlobals() {
	addr := uint64(layout.GlobalBase)
	rz := b.pass.RedzoneBytes
	protecting := b.pass.StackProtection // globals ride the same toggle
	for _, g := range b.globals {
		if g.Protected && protecting {
			g.rz1 = addr
			g.addr = addr + rz
			g.rz2 = g.addr + g.Padded
			addr = g.rz2 + rz
		} else {
			g.addr = addr
			addr += g.Padded
		}
	}
}

// globalInitCode emits the module-initializer instrumentation that installs
// redzones around protected globals. It runs once, before main's body.
func (b *Builder) globalInitCode() []isa.Instr {
	if !b.pass.StackProtection {
		return nil
	}
	var out []isa.Instr
	for _, g := range b.globals {
		if !g.Protected {
			continue
		}
		switch b.pass.Flavour {
		case rt.REST:
			w := b.pass.TokenWidth
			for o := uint64(0); o < b.pass.RedzoneBytes; o += w {
				out = append(out,
					isa.Instr{Op: isa.OpArm, Rs: isa.RZero, Imm: int64(g.rz1 + o)},
					isa.Instr{Op: isa.OpArm, Rs: isa.RZero, Imm: int64(g.rz2 + o)},
				)
			}
		case rt.PerfectHW:
			for o := uint64(0); o < b.pass.RedzoneBytes; o += 64 {
				out = append(out,
					isa.Instr{Op: isa.OpStore, Rs: isa.RZero, Rt: isa.RZero, Imm: int64(g.rz1 + o), Size: 8},
					isa.Instr{Op: isa.OpStore, Rs: isa.RZero, Rt: isa.RZero, Imm: int64(g.rz2 + o), Size: 8},
				)
			}
		case rt.ASan:
			rep := uint64(0x0101010101010101)
			pv := uint64(shadow.HeapLeftRZ)
			pattern := int64(pv * rep)
			emit := func(base uint64) {
				for o := uint64(0); o < b.pass.RedzoneBytes; o += 64 {
					out = append(out,
						isa.Instr{Op: isa.OpMovI, Rd: scr0, Imm: int64(shadow.Addr(base + o))},
						isa.Instr{Op: isa.OpMovI, Rd: scr1, Imm: pattern},
						isa.Instr{Op: isa.OpStore, Rs: scr0, Rt: scr1, Imm: 0, Size: 8},
					)
				}
			}
			emit(g.rz1)
			emit(g.rz2)
		}
	}
	return out
}

// GlobalAddr materializes a global's payload address (+off) into dst. The
// address is resolved at link time.
func (f *Function) GlobalAddr(dst Reg, g *Global, off int64) {
	idx := -1
	for i, gg := range f.b.globals {
		if gg == g {
			idx = i
			break
		}
	}
	f.emitFix(isa.Instr{Op: isa.OpMovI, Rd: uint8(dst), Imm: off}, fixGlobal, idx)
}

// The sim package dispatches RTCall via registers; nothing here.
var _ = sim.SvcExit
