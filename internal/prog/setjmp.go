package prog

import (
	"rest/internal/isa"
	"rest/internal/rt"
	"rest/internal/sim"
)

// setjmp/longjmp support (§V-C "Handling setjmp/longjmp"). The jmp_buf is a
// global holding {saved SP, resume PC}. LongJmp restores SP and jumps to
// the resume point, skipping every epilogue in between — which is precisely
// what REST cannot repair: the skipped epilogues' disarms never run, stale
// tokens stay on the stack, and later frames that reuse the region fault
// (a false positive). ASan handles it conservatively by unpoisoning the
// abandoned region (SvcLongjmpFix), whitelisting the whole current stack.

// LabelAddr materializes a label's absolute PC into dst (resolved at link
// time): the building block for computed control flow.
func (f *Function) LabelAddr(dst Reg, l Label) {
	f.emitFix(isa.Instr{Op: isa.OpMovI, Rd: uint8(dst)}, fixLabel, int(l))
}

// SetJmp saves the current SP and the resume label into the jmp_buf global
// {buf+0: sp, buf+8: resume pc}. Execution continues past the SetJmp; a
// later LongJmp transfers control to resume with the saved SP.
func (f *Function) SetJmp(buf *Global, resume Label) {
	f.Scope(func() {
		t := f.Reg()
		a := f.Reg()
		f.GlobalAddr(a, buf, 0)
		f.emit(isa.Instr{Op: isa.OpStore, Rs: uint8(a), Rt: isa.RSP, Imm: 0, Size: 8})
		f.LabelAddr(t, resume)
		f.emit(isa.Instr{Op: isa.OpStore, Rs: uint8(a), Rt: uint8(t), Imm: 8, Size: 8})
	})
}

// LongJmp restores the jmp_buf's SP and jumps to its resume PC. Under ASan
// the runtime first unpoisons the abandoned stack region [current SP, saved
// SP); under REST nothing can be repaired (the paper's open problem).
func (f *Function) LongJmp(buf *Global) {
	f.Scope(func() {
		a := f.Reg()
		t := f.Reg()
		f.GlobalAddr(a, buf, 0)
		if f.b.pass.Flavour == rt.ASan {
			// RArg0 = current (lower) SP, RArg1 = target (higher) SP.
			f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: isa.RSP})
			f.emit(isa.Instr{Op: isa.OpLoad, Rd: sim.RArg1, Rs: uint8(a), Imm: 0, Size: 8})
			f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcLongjmpFix})
			// The service call may clobber a's register bank? Registers are
			// preserved across services; re-materialize a for clarity only.
			f.GlobalAddr(a, buf, 0)
		}
		f.emit(isa.Instr{Op: isa.OpLoad, Rd: isa.RSP, Rs: uint8(a), Imm: 0, Size: 8})
		f.emit(isa.Instr{Op: isa.OpLoad, Rd: uint8(t), Rs: uint8(a), Imm: 8, Size: 8})
		f.emit(isa.Instr{Op: isa.OpCallR, Rs: uint8(t)})
	})
}
