package prog_test

import (
	"testing"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/prog"
	"rest/internal/world"
)

// runUnder builds and functionally runs a program under a pass.
func runUnder(t *testing.T, pass prog.PassConfig, mode core.Mode, build func(b *prog.Builder)) world.Outcome {
	t.Helper()
	w, err := world.Build(world.Spec{Pass: pass, Mode: mode, Width: core.Width(pass.TokenWidth)}, build)
	if err != nil {
		t.Fatalf("world.Build: %v", err)
	}
	out := w.RunFunctional()
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	return out
}

// allPasses are the benign-run pass configurations that must agree on
// results.
func allPasses() map[string]prog.PassConfig {
	return map[string]prog.PassConfig{
		"plain":        prog.Plain(),
		"asan":         prog.ASanFull(),
		"rest-full":    prog.RESTFull(64),
		"rest-heap":    prog.RESTHeap(64),
		"perfecthw":    prog.PerfectHWFull(),
		"rest-full-16": prog.RESTFull(16),
		"rest-full-32": prog.RESTFull(32),
	}
}

// sumProgram computes sum of i*i for i < 50 into the checksum.
func sumProgram(b *prog.Builder) {
	f := b.Func("main")
	n := f.Reg()
	sq := f.Reg()
	f.MovI(n, 50)
	f.ForRange(n, func(i prog.Reg) {
		f.Mul(sq, i, i)
		f.Checksum(sq)
	})
}

func TestChecksumAgreesAcrossPasses(t *testing.T) {
	want := uint64(0)
	for i := uint64(0); i < 50; i++ {
		want += i * i
	}
	for name, pass := range allPasses() {
		out := runUnder(t, pass, core.Secure, sumProgram)
		if out.Detected() {
			t.Errorf("%s: spurious detection: %s", name, out)
		}
		if out.Checksum != want {
			t.Errorf("%s: checksum = %d, want %d", name, out.Checksum, want)
		}
	}
}

// bufferProgram writes then reads back a stack buffer, in bounds.
func bufferProgram(b *prog.Builder) {
	f := b.Func("main")
	buf := f.Buffer(128, true)
	p := f.Reg()
	n := f.Reg()
	v := f.Reg()
	f.BufAddr(p, buf, 0)
	f.MovI(n, 16)
	f.ForRange(n, func(i prog.Reg) {
		t := f.Reg
		_ = t
		f.Store(p, 0, i, 8)
		f.AddI(p, p, 8)
	})
	f.BufAddr(p, buf, 0)
	f.ForRange(n, func(i prog.Reg) {
		f.Load(v, p, 0, 8)
		f.Checksum(v)
		f.AddI(p, p, 8)
	})
}

func TestStackBufferInBounds(t *testing.T) {
	want := uint64(0)
	for i := uint64(0); i < 16; i++ {
		want += i
	}
	for name, pass := range allPasses() {
		out := runUnder(t, pass, core.Secure, bufferProgram)
		if out.Detected() {
			t.Errorf("%s: spurious detection on in-bounds program: %s", name, out)
		}
		if out.Checksum != want {
			t.Errorf("%s: checksum = %d, want %d", name, out.Checksum, want)
		}
	}
}

// overflowProgram writes one element past a protected 64-byte stack buffer,
// sweeping linearly (the paper's overflow access pattern).
func overflowProgram(b *prog.Builder) {
	f := b.Func("main")
	buf := f.Buffer(64, true)
	p := f.Reg()
	n := f.Reg()
	f.BufAddr(p, buf, 0)
	f.MovI(n, 9) // 9 * 8B = 72B > 64B buffer
	f.ForRange(n, func(i prog.Reg) {
		f.Store(p, 0, i, 8)
		f.AddI(p, p, 8)
	})
}

func TestStackOverflowDetection(t *testing.T) {
	// Plain: silent corruption. ASan: software report. REST full: hardware
	// exception. REST heap-only: NOT detected (no stack protection).
	if out := runUnder(t, prog.Plain(), core.Secure, overflowProgram); out.Detected() {
		t.Errorf("plain: detected = %s, want silent", out)
	}
	out := runUnder(t, prog.ASanFull(), core.Secure, overflowProgram)
	if out.Violation == nil {
		t.Errorf("asan: no violation, got %s", out)
	}
	out = runUnder(t, prog.RESTFull(64), core.Secure, overflowProgram)
	if out.Exception == nil || out.Exception.Kind != core.ViolationStore {
		t.Errorf("rest-full: exception = %v, want store violation", out.Exception)
	}
	if out := runUnder(t, prog.RESTHeap(64), core.Secure, overflowProgram); out.Detected() {
		t.Errorf("rest-heap: detected stack overflow without stack protection: %s", out)
	}
}

// padWindowProgram overflows a 100-byte protected buffer by 4 bytes: with
// 64-byte tokens the write lands in the alignment pad, not the token — the
// false-negative window of §V-C. With 16-byte tokens (pad 12 bytes) the same
// +108..112 write crosses into the token and is caught... width 16 pads 100
// to 112, so a write at offset 104 lands in pad for w=16 too; use offset 112.
func padWindowProgram(off int64) func(b *prog.Builder) {
	return func(b *prog.Builder) {
		f := b.Func("main")
		buf := f.Buffer(100, true)
		p := f.Reg()
		v := f.Reg()
		f.MovI(v, 0x41)
		f.BufAddr(p, buf, 0)
		f.Store(p, off, v, 8)
	}
}

func TestPadFalseNegativeWindow(t *testing.T) {
	// 100-byte buffer, 64B tokens: padded to 128. A write at +104 lands in
	// the pad: undetected (the documented false negative).
	out := runUnder(t, prog.RESTFull(64), core.Secure, padWindowProgram(104))
	if out.Detected() {
		t.Errorf("64B tokens: pad write detected = %s, want false negative", out)
	}
	// Same write with 16-byte tokens: padded to 112, so +104 still pad...
	// but +112 hits the redzone for both widths.
	out = runUnder(t, prog.RESTFull(16), core.Secure, padWindowProgram(112))
	if out.Exception == nil {
		t.Errorf("16B tokens: redzone write not detected")
	}
	// Narrower tokens shrink the window: +104 write with 16B tokens is
	// still pad (112-aligned), but a +108 write crossing 112 IS caught.
	out = runUnder(t, prog.RESTFull(16), core.Secure, padWindowProgram(108))
	if out.Exception == nil {
		t.Errorf("16B tokens: straddling write at +108 not detected")
	}
	// With 64B tokens the same +108 write stays inside the pad (ends at
	// 116 < 128): the wider pad window misses it.
	out = runUnder(t, prog.RESTFull(64), core.Secure, padWindowProgram(108))
	if out.Detected() {
		t.Errorf("64B tokens: +108 write detected = %s, want miss", out)
	}
}

// heapProgram allocates, fills, reads back, frees.
func heapProgram(b *prog.Builder) {
	f := b.Func("main")
	p := f.Reg()
	n := f.Reg()
	v := f.Reg()
	q := f.Reg()
	f.CallMallocI(p, 256)
	f.MovI(n, 32)
	f.Mov(q, p)
	f.ForRange(n, func(i prog.Reg) {
		f.Store(q, 0, i, 8)
		f.AddI(q, q, 8)
	})
	f.Mov(q, p)
	f.ForRange(n, func(i prog.Reg) {
		f.Load(v, q, 0, 8)
		f.Checksum(v)
		f.AddI(q, q, 8)
	})
	f.CallFree(p)
}

func TestHeapProgramAllPasses(t *testing.T) {
	want := uint64(0)
	for i := uint64(0); i < 32; i++ {
		want += i
	}
	for name, pass := range allPasses() {
		out := runUnder(t, pass, core.Secure, heapProgram)
		if out.Detected() {
			t.Errorf("%s: spurious detection: %s", name, out)
		}
		if out.Checksum != want {
			t.Errorf("%s: checksum = %d, want %d", name, out.Checksum, want)
		}
	}
}

// heapOverflowProgram reads past a heap allocation.
func heapOverflowProgram(b *prog.Builder) {
	f := b.Func("main")
	p := f.Reg()
	v := f.Reg()
	f.CallMallocI(p, 64)
	f.Load(v, p, 64, 8) // one past the end
	f.Checksum(v)
}

func TestHeapOverflowDetection(t *testing.T) {
	if out := runUnder(t, prog.Plain(), core.Secure, heapOverflowProgram); out.Detected() {
		t.Errorf("plain: %s, want silent", out)
	}
	if out := runUnder(t, prog.ASanFull(), core.Secure, heapOverflowProgram); out.Violation == nil {
		t.Errorf("asan: %s, want violation", out)
	}
	// Heap protection needs no recompilation: the heap-only pass catches it.
	out := runUnder(t, prog.RESTHeap(64), core.Secure, heapOverflowProgram)
	if out.Exception == nil || out.Exception.Kind != core.ViolationLoad {
		t.Errorf("rest-heap: exception = %v, want load violation", out.Exception)
	}
}

// uafProgram frees then dereferences.
func uafProgram(b *prog.Builder) {
	f := b.Func("main")
	p := f.Reg()
	v := f.Reg()
	f.CallMallocI(p, 64)
	f.CallFree(p)
	f.Load(v, p, 0, 8)
	f.Checksum(v)
}

func TestUAFDetection(t *testing.T) {
	if out := runUnder(t, prog.Plain(), core.Secure, uafProgram); out.Detected() {
		t.Errorf("plain: %s, want silent", out)
	}
	if out := runUnder(t, prog.ASanFull(), core.Secure, uafProgram); out.Violation == nil {
		t.Errorf("asan: %s, want violation", out)
	}
	if out := runUnder(t, prog.RESTHeap(64), core.Secure, uafProgram); out.Exception == nil {
		t.Errorf("rest-heap: %s, want exception", out)
	}
}

// callProgram exercises call/ret with RA save across nested calls.
func callProgram(b *prog.Builder) {
	leaf := b.Func("leaf")
	{
		v := leaf.Reg()
		leaf.MovI(v, 7)
		leaf.Checksum(v)
	}
	mid := b.Func("mid")
	{
		mid.Call("leaf")
		mid.Call("leaf")
	}
	f := b.Func("main")
	n := f.Reg()
	f.MovI(n, 10)
	f.ForRange(n, func(i prog.Reg) {
		f.Call("mid")
	})
}

func TestNestedCalls(t *testing.T) {
	for name, pass := range allPasses() {
		out := runUnder(t, pass, core.Secure, callProgram)
		if out.Checksum != 140 {
			t.Errorf("%s: checksum = %d, want 140", name, out.Checksum)
		}
	}
}

// memcpyProgram copies between heap buffers.
func memcpyProgram(b *prog.Builder) {
	f := b.Func("main")
	src := f.Reg()
	dst := f.Reg()
	n := f.Reg()
	q := f.Reg()
	v := f.Reg()
	f.CallMallocI(src, 128)
	f.CallMallocI(dst, 128)
	f.MovI(n, 16)
	f.Mov(q, src)
	f.ForRange(n, func(i prog.Reg) {
		f.Store(q, 0, i, 8)
		f.AddI(q, q, 8)
	})
	f.MovI(n, 128)
	f.CallMemcpy(dst, src, n)
	f.Load(v, dst, 120, 8)
	f.Checksum(v) // expect 15
	f.CallFree(src)
	f.CallFree(dst)
}

func TestMemcpyAcrossPasses(t *testing.T) {
	for name, pass := range allPasses() {
		out := runUnder(t, pass, core.Secure, memcpyProgram)
		if out.Detected() {
			t.Errorf("%s: spurious detection: %s", name, out)
		}
		if out.Checksum != 15 {
			t.Errorf("%s: checksum = %d, want 15", name, out.Checksum)
		}
	}
}

func TestIfHelper(t *testing.T) {
	out := runUnder(t, prog.Plain(), core.Secure, func(b *prog.Builder) {
		f := b.Func("main")
		a := f.Reg()
		c := f.Reg()
		f.MovI(a, 5)
		f.MovI(c, 10)
		f.If(isa.OpBlt, a, c, func() {
			v := f.Reg()
			f.MovI(v, 1)
			f.Checksum(v)
		}, func() {
			v := f.Reg()
			f.MovI(v, 2)
			f.Checksum(v)
		})
		f.If(isa.OpBge, a, c, func() {
			v := f.Reg()
			f.MovI(v, 100)
			f.Checksum(v)
		}, nil)
	})
	if out.Checksum != 1 {
		t.Errorf("checksum = %d, want 1", out.Checksum)
	}
}

func TestInstrumentationDensity(t *testing.T) {
	// The ASan build must contain roughly 4 extra instructions per body
	// memory access; the REST build only prologue/epilogue arms.
	count := func(pass prog.PassConfig) (total int, arms int) {
		b := prog.NewBuilder(pass)
		bufferProgram(b)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range p.Instrs {
			if in.Op == isa.OpArm || in.Op == isa.OpDisarm {
				arms++
			}
		}
		return len(p.Instrs), arms
	}
	plainN, _ := count(prog.Plain())
	asanN, _ := count(prog.ASanFull())
	restN, restArms := count(prog.RESTFull(64))
	if asanN <= plainN+30 {
		t.Errorf("asan size %d not much larger than plain %d", asanN, plainN)
	}
	if restArms != 4 {
		t.Errorf("rest arms+disarms = %d, want 4 (2 redzones x arm+disarm)", restArms)
	}
	if restN >= asanN {
		t.Errorf("rest size %d not smaller than asan %d", restN, asanN)
	}
	_, heapArms := count(prog.RESTHeap(64))
	if heapArms != 0 {
		t.Errorf("rest-heap arms = %d, want 0", heapArms)
	}
}

func TestBuildErrors(t *testing.T) {
	b := prog.NewBuilder(prog.Plain())
	if _, err := b.Build(); err == nil {
		t.Error("build without main accepted")
	}
	b2 := prog.NewBuilder(prog.Plain())
	f := b2.Func("main")
	l := f.NewLabel()
	f.Jmp(l) // never bound
	if _, err := b2.Build(); err == nil {
		t.Error("unbound label accepted")
	}
}

func TestDebugModeDetectionStillWorks(t *testing.T) {
	out := runUnder(t, prog.RESTFull(64), core.Debug, overflowProgram)
	if out.Exception == nil {
		t.Fatal("debug mode missed overflow")
	}
	if !out.Exception.Precise {
		t.Error("debug-mode exception not precise")
	}
}
