package prog

import (
	"strings"
	"testing"

	"rest/internal/isa"
)

// The builder DSL is user-facing API: misuse must come back as an error
// from Build, never as a panic. Each case below used to crash.

func buildErr(t *testing.T, build func(b *Builder)) error {
	t.Helper()
	b := NewBuilder(Plain())
	build(b)
	_, err := b.Build()
	if err == nil {
		t.Fatalf("want a build error, got none")
	}
	return err
}

func TestDuplicateFunctionIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		b.Func("main")
		f := b.Func("main") // duplicate: recorded, orphan stays usable
		r := f.Reg()
		f.MovI(r, 1)
	})
	if !strings.Contains(err.Error(), "duplicate function") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestRegisterExhaustionIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		f := b.Func("main")
		for i := 0; i < 25; i++ {
			r := f.Reg()
			f.MovI(r, int64(i))
		}
	})
	if !strings.Contains(err.Error(), "out of registers") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestLateBufferIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		f := b.Func("main")
		r := f.Reg()
		f.MovI(r, 1)
		buf := f.Buffer(64, true) // after body code
		f.BufAddr(r, buf, 0)
	})
	if !strings.Contains(err.Error(), "Buffer() after body code") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestCallUndeclaredIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		f := b.Func("main")
		f.Call("no-such-function")
	})
	if !strings.Contains(err.Error(), "undeclared function") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestFuncAddrUndeclaredIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		f := b.Func("main")
		r := f.Reg()
		f.FuncAddr(r, "no-such-function")
	})
	if !strings.Contains(err.Error(), "undeclared function") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestIfNonBranchOpIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		f := b.Func("main")
		a, c := f.Reg(), f.Reg()
		f.If(isa.OpAdd, a, c, func() { f.MovI(a, 1) }, nil)
	})
	if !strings.Contains(err.Error(), "non-branch op") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestForeignBufferIsError(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		other := b.Func("other")
		buf := other.Buffer(64, true)
		f := b.Func("main")
		r := f.Reg()
		f.BufAddr(r, buf, 0) // buffer belongs to "other"
	})
	if !strings.Contains(err.Error(), "outside its function") {
		t.Errorf("wrong error: %v", err)
	}
}

// TestFirstErrorWins pins the recording contract: the first misuse is the
// one Build reports, later ones (often knock-on effects) don't mask it.
func TestFirstErrorWins(t *testing.T) {
	err := buildErr(t, func(b *Builder) {
		f := b.Func("main")
		f.Call("missing-one")
		f.Call("missing-two")
		b.Func("main")
	})
	if !strings.Contains(err.Error(), "missing-one") {
		t.Errorf("first error masked: %v", err)
	}
}

// TestErrAccessor checks the misuse is visible before Build for callers
// that want to fail fast.
func TestErrAccessor(t *testing.T) {
	b := NewBuilder(Plain())
	if b.Err() != nil {
		t.Fatalf("fresh builder reports error: %v", b.Err())
	}
	f := b.Func("main")
	f.Call("nope")
	if b.Err() == nil {
		t.Errorf("Err() nil after misuse")
	}
}
