package prog

import (
	"rest/internal/isa"
	"rest/internal/layout"
	"rest/internal/rt"
	"rest/internal/shadow"
	"rest/internal/sim"
)

// Instrumentation scratch registers (owned by inserted code, never handed
// out by Reg()).
const (
	scr0 = sim.RScr0
	scr1 = sim.RScr1
)

// RRes is the checksum register workloads accumulate into.
const RRes = Reg(sim.RRes)

// SP is the stack pointer register handle.
const SP = Reg(isa.RSP)

// frameCode generates the prologue and epilogue for a frame of the given
// size, including pass-specific stack protection:
//
//	REST full:  arm each redzone chunk in the prologue, disarm in the
//	            epilogue (Figure 6A).
//	ASan full:  poison redzone shadow in the prologue (stack-frame setup
//	            overhead, Figure 3 component 2), unpoison in the epilogue.
//	PerfectHW:  one plain store per would-be arm/disarm.
func (f *Function) frameCode(frame uint64) (pro, epi []isa.Instr) {
	// addi sp, sp, -frame
	pro = append(pro, isa.Instr{Op: isa.OpAddI, Rd: isa.RSP, Rs: isa.RSP, Imm: -int64(frame)})
	if f.usesRA {
		pro = append(pro, isa.Instr{Op: isa.OpStore, Rs: isa.RSP, Rt: isa.RRA, Imm: int64(f.raOff), Size: 8})
	}
	// Callee-saved registers: every register this function allocates is
	// preserved across it, so callers may keep values in registers over
	// calls (the only cross-call channel besides the stack is RArg0..3).
	if f.name != "main" {
		for r := uint8(1); r < f.maxReg; r++ {
			slot := int64(f.regSaveOff + uint64(r-1)*8)
			pro = append(pro, isa.Instr{Op: isa.OpStore, Rs: isa.RSP, Rt: r, Imm: slot, Size: 8})
			epi = append(epi, isa.Instr{Op: isa.OpLoad, Rd: r, Rs: isa.RSP, Imm: slot, Size: 8})
		}
	}

	pass := f.b.pass
	if pass.StackProtection {
		for _, buf := range f.buffers {
			if !buf.Protected {
				continue
			}
			pro = append(pro, f.protectCode(buf, true)...)
			epi = append(epi, f.protectCode(buf, false)...)
		}
	}

	if f.usesRA {
		epi = append(epi, isa.Instr{Op: isa.OpLoad, Rd: isa.RRA, Rs: isa.RSP, Imm: int64(f.raOff), Size: 8})
	}
	epi = append(epi, isa.Instr{Op: isa.OpAddI, Rd: isa.RSP, Rs: isa.RSP, Imm: int64(frame)})
	if f.name == "main" {
		epi = append(epi, isa.Instr{Op: isa.OpHalt})
	} else {
		epi = append(epi, isa.Instr{Op: isa.OpRet})
	}
	return pro, epi
}

// protectCode emits the redzone installation (install=true) or removal code
// for one protected buffer.
func (f *Function) protectCode(buf *Buffer, install bool) []isa.Instr {
	pass := f.b.pass
	var out []isa.Instr
	forEachChunk := func(rzOff uint64, emit func(off int64)) {
		step := pass.TokenWidth
		if pass.Flavour == rt.ASan || pass.Flavour == rt.PerfectHW {
			step = 64
		}
		for o := uint64(0); o < pass.RedzoneBytes; o += step {
			emit(int64(rzOff + o))
		}
	}

	switch pass.Flavour {
	case rt.REST:
		op := isa.OpArm
		if !install {
			op = isa.OpDisarm
		}
		forEachChunk(buf.rzOff1, func(off int64) {
			out = append(out, isa.Instr{Op: op, Rs: isa.RSP, Imm: off})
		})
		forEachChunk(buf.rzOff2, func(off int64) {
			out = append(out, isa.Instr{Op: op, Rs: isa.RSP, Imm: off})
		})

	case rt.PerfectHW:
		forEachChunk(buf.rzOff1, func(off int64) {
			out = append(out, isa.Instr{Op: isa.OpStore, Rs: isa.RSP, Rt: isa.RZero, Imm: off, Size: 8})
		})
		forEachChunk(buf.rzOff2, func(off int64) {
			out = append(out, isa.Instr{Op: isa.OpStore, Rs: isa.RSP, Rt: isa.RZero, Imm: off, Size: 8})
		})

	case rt.ASan:
		// Poison/unpoison one 8-byte shadow word per 64 redzone bytes:
		//   addi s0, sp, rzOff ; shri s0, s0, 3 ; movi s1, pattern ;
		//   store8 [s0 + ShadowBase], s1
		pattern := int64(0)
		if install {
			p := uint64(shadow.StackMidRZ)
			pattern = int64(p * 0x0101010101010101)
		}
		shadowStore := func(off int64, size uint8, val int64) []isa.Instr {
			return []isa.Instr{
				{Op: isa.OpAddI, Rd: scr0, Rs: isa.RSP, Imm: off},
				{Op: isa.OpShrI, Rd: scr0, Rs: scr0, Imm: 3},
				{Op: isa.OpMovI, Rd: scr1, Imm: val},
				{Op: isa.OpStore, Rs: scr0, Rt: scr1, Imm: int64(layout.ShadowBase), Size: size},
			}
		}
		forEachChunk(buf.rzOff1, func(off int64) { out = append(out, shadowStore(off, 8, pattern)...) })
		forEachChunk(buf.rzOff2, func(off int64) { out = append(out, shadowStore(off, 8, pattern)...) })
		// ASan poisons the alignment pad [Size, Padded) too, at shadow-byte
		// (8-application-byte) granularity, including the partial-granule
		// length byte — this is why ASan catches pad-window spills that
		// 64-byte tokens cannot (§V-C "False Negatives").
		payload := int64(buf.off)
		partial := int64(buf.Size % 8)
		if partial != 0 {
			granule := payload + int64(buf.Size) - partial
			v := int64(0)
			if install {
				v = partial // shadow value k: first k bytes addressable
			}
			out = append(out, shadowStore(granule, 1, v)...)
		}
		padVal := int64(0)
		if install {
			padVal = int64(shadow.StackMidRZ)
		}
		for g := payload + int64((buf.Size+7)&^7); g < payload+int64(buf.Padded); g += 8 {
			out = append(out, shadowStore(g, 1, padVal)...)
		}
	}
	return out
}

// --- Scalar and control-flow helpers (thin wrappers over the ISA) ---

// MovI sets dst to an immediate.
func (f *Function) MovI(dst Reg, v int64) {
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: uint8(dst), Imm: v})
}

// Mov copies src to dst.
func (f *Function) Mov(dst, src Reg) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: uint8(dst), Rs: uint8(src)})
}

// Op3 emits a three-register ALU operation.
func (f *Function) Op3(op isa.Op, dst, a, b Reg) {
	f.emit(isa.Instr{Op: op, Rd: uint8(dst), Rs: uint8(a), Rt: uint8(b)})
}

// Add, Sub, Mul, Xor are common Op3 shorthands.
func (f *Function) Add(dst, a, b Reg) { f.Op3(isa.OpAdd, dst, a, b) }

// Sub emits dst = a - b.
func (f *Function) Sub(dst, a, b Reg) { f.Op3(isa.OpSub, dst, a, b) }

// Mul emits dst = a * b.
func (f *Function) Mul(dst, a, b Reg) { f.Op3(isa.OpMul, dst, a, b) }

// Xor emits dst = a ^ b.
func (f *Function) Xor(dst, a, b Reg) { f.Op3(isa.OpXor, dst, a, b) }

// OpI emits a register-immediate ALU operation.
func (f *Function) OpI(op isa.Op, dst, a Reg, imm int64) {
	f.emit(isa.Instr{Op: op, Rd: uint8(dst), Rs: uint8(a), Imm: imm})
}

// AddI emits dst = a + imm.
func (f *Function) AddI(dst, a Reg, imm int64) { f.OpI(isa.OpAddI, dst, a, imm) }

// AndI emits dst = a & imm.
func (f *Function) AndI(dst, a Reg, imm int64) { f.OpI(isa.OpAndI, dst, a, imm) }

// ShlI and ShrI emit shifts by an immediate.
func (f *Function) ShlI(dst, a Reg, imm int64) { f.OpI(isa.OpShlI, dst, a, imm) }

// ShrI emits dst = a >> imm.
func (f *Function) ShrI(dst, a Reg, imm int64) { f.OpI(isa.OpShrI, dst, a, imm) }

// Branch emits a conditional branch to a label.
func (f *Function) Branch(op isa.Op, a, b Reg, l Label) {
	f.emitFix(isa.Instr{Op: op, Rs: uint8(a), Rt: uint8(b)}, fixLabel, int(l))
}

// Jmp emits an unconditional jump to a label.
func (f *Function) Jmp(l Label) {
	f.emitFix(isa.Instr{Op: isa.OpJmp}, fixLabel, int(l))
}

// Call emits a call to another function by name (resolved at link time).
func (f *Function) Call(name string) {
	f.usesRA = true
	idx := -1
	for i, fn := range f.b.funcs {
		if fn.name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		f.b.fail("prog: %s: call to undeclared function %q", f.name, name)
		return
	}
	f.emitFix(isa.Instr{Op: isa.OpCall}, fixCall, idx)
}

// FuncAddr materializes a function's entry address into dst (resolved at
// link time): the building block for indirect calls and dispatch tables.
func (f *Function) FuncAddr(dst Reg, name string) {
	idx := -1
	for i, fn := range f.b.funcs {
		if fn.name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		f.b.fail("prog: %s: address of undeclared function %q", f.name, name)
		return
	}
	f.emitFix(isa.Instr{Op: isa.OpMovI, Rd: uint8(dst)}, fixCall, idx)
}

// CallR emits an indirect call through the register tgt.
func (f *Function) CallR(tgt Reg) {
	f.usesRA = true
	f.emit(isa.Instr{Op: isa.OpCallR, Rs: uint8(tgt)})
}

// Nop emits a no-op (cycle filler for compute-bound workload shaping).
func (f *Function) Nop() { f.emit(isa.Instr{Op: isa.OpNop}) }

// ForRange emits for i := 0; i < n; i++ { body(i) }. The index register and
// any registers the body allocates are lexically scoped to the loop: they
// return to the pool when ForRange returns.
func (f *Function) ForRange(n Reg, body func(i Reg)) {
	save := f.nextReg
	i := f.Reg()
	f.MovI(i, 0)
	top := f.NewLabel()
	done := f.NewLabel()
	f.Bind(top)
	f.Branch(isa.OpBgeu, i, n, done)
	body(i)
	f.AddI(i, i, 1)
	f.Jmp(top)
	f.Bind(done)
	f.nextReg = save
}

// Scope runs body with lexically scoped register allocation: registers the
// body allocates return to the pool afterwards.
func (f *Function) Scope(body func()) {
	save := f.nextReg
	body()
	f.nextReg = save
}

// ForRangeI is ForRange with a constant trip count.
func (f *Function) ForRangeI(n int64, body func(i Reg)) {
	save := f.nextReg
	nr := f.Reg()
	f.MovI(nr, n)
	f.ForRange(nr, body)
	f.nextReg = save
}

// If emits if a <op> b { then } else { els } (els may be nil). op must be a
// branch opcode; anything else is recorded as a build error.
func (f *Function) If(op isa.Op, a, b Reg, then func(), els func()) {
	inv, ok := invertBranch(op)
	if !ok {
		f.b.fail("prog: %s: If() with non-branch op %v", f.name, op)
		return
	}
	elseL := f.NewLabel()
	endL := f.NewLabel()
	f.Branch(inv, a, b, elseL)
	then()
	f.Jmp(endL)
	f.Bind(elseL)
	if els != nil {
		els()
	}
	f.Bind(endL)
}

func invertBranch(op isa.Op) (isa.Op, bool) {
	switch op {
	case isa.OpBeq:
		return isa.OpBne, true
	case isa.OpBne:
		return isa.OpBeq, true
	case isa.OpBlt:
		return isa.OpBge, true
	case isa.OpBge:
		return isa.OpBlt, true
	case isa.OpBltu:
		return isa.OpBgeu, true
	case isa.OpBgeu:
		return isa.OpBltu, true
	}
	return op, false
}

// Checksum accumulates a value into the result register (used to verify that
// plain/ASan/REST builds of a workload compute identical results).
func (f *Function) Checksum(v Reg) {
	f.emit(isa.Instr{Op: isa.OpAdd, Rd: sim.RRes, Rs: sim.RRes, Rt: uint8(v)})
}

// --- Memory operations (instrumented under AccessChecks) ---

// BufAddr materializes a buffer's payload address (+off) into dst. The
// payload offset is resolved at link time, once the pass has laid out the
// frame (redzones shift payloads).
func (f *Function) BufAddr(dst Reg, buf *Buffer, off int64) {
	if buf.fn != f {
		f.b.fail("prog: %s: buffer of %s used outside its function", f.name, buf.fn.name)
		return
	}
	idx := -1
	for i, bf := range f.buffers {
		if bf == buf {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Orphan from a rejected Buffer() declaration; the root cause is
		// already recorded.
		f.b.fail("prog: %s: address of undeclared buffer", f.name)
		return
	}
	f.emitFix(isa.Instr{Op: isa.OpAddI, Rd: uint8(dst), Rs: isa.RSP, Imm: off}, fixBuf, idx)
}

// Load emits dst = mem[base+off] with pass instrumentation.
func (f *Function) Load(dst, base Reg, off int64, size uint8) {
	f.checkedAccess(base, off, size, false)
	f.emit(isa.Instr{Op: isa.OpLoad, Rd: uint8(dst), Rs: uint8(base), Imm: off, Size: size})
}

// Store emits mem[base+off] = src with pass instrumentation.
func (f *Function) Store(base Reg, off int64, src Reg, size uint8) {
	f.checkedAccess(base, off, size, true)
	f.emit(isa.Instr{Op: isa.OpStore, Rs: uint8(base), Rt: uint8(src), Imm: off, Size: size})
}

// checkedAccess inserts ASan's inline fast-path check:
//
//	addi  s0, base, off        ; effective address
//	shri  s1, s0, 3
//	load1 s1, [s1 + ShadowBase]
//	beq   s1, r0, skip
//	mov   a0, s0 ; movi a1, size ; movi a2, isStore ; rtcall AsanSlow
//	skip:
//
// Four instructions on the hot path, matching ASan's real instrumentation
// density (Figure 3 component 3).
func (f *Function) checkedAccess(base Reg, off int64, size uint8, isStore bool) {
	if !f.b.pass.AccessChecks {
		return
	}
	skip := f.NewLabel()
	st := int64(0)
	if isStore {
		st = 1
	}
	f.emit(isa.Instr{Op: isa.OpAddI, Rd: scr0, Rs: uint8(base), Imm: off})
	f.emit(isa.Instr{Op: isa.OpShrI, Rd: scr1, Rs: scr0, Imm: 3})
	f.emit(isa.Instr{Op: isa.OpLoad, Rd: scr1, Rs: scr1, Imm: int64(layout.ShadowBase), Size: 1})
	f.Branch(isa.OpBeq, Reg(scr1), Reg(isa.RZero), skip)
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: scr0})
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: sim.RArg1, Imm: int64(size)})
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: sim.RArg2, Imm: st})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcAsanSlow})
	f.Bind(skip)
}

// --- Runtime-call helpers ---

// CallMallocI allocates size bytes, leaving the pointer in dst.
func (f *Function) CallMallocI(dst Reg, size int64) {
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: sim.RArg0, Imm: size})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcMalloc})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: uint8(dst), Rs: sim.RArg0})
}

// CallMalloc allocates size (register) bytes.
func (f *Function) CallMalloc(dst, size Reg) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: uint8(size)})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcMalloc})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: uint8(dst), Rs: sim.RArg0})
}

// CallFree frees the pointer in ptr.
func (f *Function) CallFree(ptr Reg) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: uint8(ptr)})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcFree})
}

// CallCallocI allocates n zeroed bytes, leaving the pointer in dst.
func (f *Function) CallCallocI(dst Reg, n int64) {
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: sim.RArg0, Imm: n})
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: sim.RArg1, Imm: 1})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcCalloc})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: uint8(dst), Rs: sim.RArg0})
}

// CallRealloc resizes the allocation in ptr to n bytes, leaving the new
// pointer in dst.
func (f *Function) CallRealloc(dst, ptr Reg, n int64) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: uint8(ptr)})
	f.emit(isa.Instr{Op: isa.OpMovI, Rd: sim.RArg1, Imm: n})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcRealloc})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: uint8(dst), Rs: sim.RArg0})
}

// CallMemcpy copies n bytes from src to dst (libc call; intercepted under
// ASan at run time).
func (f *Function) CallMemcpy(dst, src, n Reg) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: uint8(dst)})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg1, Rs: uint8(src)})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg2, Rs: uint8(n)})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcMemcpy})
}

// CallStrcpy copies the NUL-terminated string at src to dst.
func (f *Function) CallStrcpy(dst, src Reg) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: uint8(dst)})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg1, Rs: uint8(src)})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcStrcpy})
}

// CallMemset fills n bytes at dst with the byte in val.
func (f *Function) CallMemset(dst, val, n Reg) {
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg0, Rs: uint8(dst)})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg1, Rs: uint8(val)})
	f.emit(isa.Instr{Op: isa.OpMov, Rd: sim.RArg2, Rs: uint8(n)})
	f.emit(isa.Instr{Op: isa.OpRTCall, Imm: sim.SvcMemset})
}

// RawArm emits an ARM instruction (attack-suite and example use).
func (f *Function) RawArm(base Reg, off int64) {
	f.emit(isa.Instr{Op: isa.OpArm, Rs: uint8(base), Imm: off})
}

// RawDisarm emits a DISARM instruction.
func (f *Function) RawDisarm(base Reg, off int64) {
	f.emit(isa.Instr{Op: isa.OpDisarm, Rs: uint8(base), Imm: off})
}
