package alloc

import "rest/internal/obs"

// Probes is the allocator's hook set into the observability plane. The
// counters mirror the existing Stats fields and flush once at end of run;
// the quarantine-depth histogram is the one genuinely live hook — it
// observes the quarantine's byte depth after every free, a distribution no
// end-of-run snapshot can reconstruct. A nil *Probes disables everything.
type Probes struct {
	Mallocs        *obs.Counter
	Frees          *obs.Counter
	DoubleFrees    *obs.Counter
	InvalidFrees   *obs.Counter
	QuarantinePops *obs.Counter
	BytesRequested *obs.Counter
	// RedzoneBytes counts total redzone bytes installed (2 sides per
	// malloc), the paper's §VI-C memory-overhead component.
	RedzoneBytes *obs.Counter
	// TokenArms/TokenDisarms count the tracker's arm/disarm operations
	// (REST flavours only; flushed via the policy at end of run).
	TokenArms    *obs.Counter
	TokenDisarms *obs.Counter
	// PeakLiveBytes / PeakQuarantineBytes are high-water gauges.
	PeakLiveBytes       *obs.Gauge
	PeakQuarantineBytes *obs.Gauge
	// QuarantineDepth is the quarantine's byte depth observed at every
	// free that parks a chunk.
	QuarantineDepth *obs.Histogram
}

// NewProbes registers the alloc metric set in r (nil r -> nil probes). The
// quarantine-depth bounds bracket the default 256KB cap.
func NewProbes(r *obs.Registry) *Probes {
	if r == nil {
		return nil
	}
	return &Probes{
		Mallocs:             r.Counter("alloc.mallocs"),
		Frees:               r.Counter("alloc.frees"),
		DoubleFrees:         r.Counter("alloc.double_frees"),
		InvalidFrees:        r.Counter("alloc.invalid_frees"),
		QuarantinePops:      r.Counter("alloc.quarantine_pops"),
		BytesRequested:      r.Counter("alloc.bytes_requested"),
		RedzoneBytes:        r.Counter("alloc.redzone_bytes"),
		TokenArms:           r.Counter("alloc.token_arms"),
		TokenDisarms:        r.Counter("alloc.token_disarms"),
		PeakLiveBytes:       r.Gauge("alloc.peak_live_bytes"),
		PeakQuarantineBytes: r.Gauge("alloc.peak_quarantine_bytes"),
		QuarantineDepth:     r.Histogram("alloc.quarantine_depth_bytes", 0, 4096, 16384, 65536, 262144, 1<<20),
	}
}

// SetProbes attaches an observability probe set (nil = off). Call before
// the first allocation.
func (e *Engine) SetProbes(p *Probes) { e.probes = p }

// tokenOps is the optional policy extension FlushProbes uses to read the
// arm/disarm totals (the REST policy forwards its tracker's counters).
type tokenOps interface {
	TokenOps() (arms, disarms uint64)
}

// FlushProbes publishes the end-of-run allocator statistics. Idempotent;
// called by world teardown.
func (e *Engine) FlushProbes() {
	p := e.probes
	if p == nil || e.probesFlushed {
		return
	}
	e.probesFlushed = true
	p.Mallocs.Add(e.stats.Mallocs)
	p.Frees.Add(e.stats.Frees)
	p.DoubleFrees.Add(e.stats.DoubleFrees)
	p.InvalidFrees.Add(e.stats.InvalidFrees)
	p.QuarantinePops.Add(e.stats.QuarantinePops)
	p.BytesRequested.Add(e.stats.BytesRequested)
	p.RedzoneBytes.Add(2 * e.rz * e.stats.Mallocs)
	p.PeakLiveBytes.Set(e.stats.PeakBytesLive)
	if to, ok := e.policy.(tokenOps); ok {
		arms, disarms := to.TokenOps()
		p.TokenArms.Add(arms)
		p.TokenDisarms.Add(disarms)
	}
}
