package alloc

import (
	"rest/internal/core"
	"rest/internal/shadow"
	"rest/internal/sim"
)

// Default sizing. The redzone is one full cache line per side, matching
// Figure 6; the quarantine capacity is scaled to simulation footprints (the
// paper inherits ASan's quarantine, whose size is a runtime knob there too).
const (
	DefaultRedzone       = 64
	DefaultQuarantineCap = 256 << 10
)

// --- Libc (plain baseline) ---

// LibcPolicy is the conventional fast allocator: no redzones, no
// quarantine, immediate reuse.
type LibcPolicy struct{}

// Name implements Policy.
func (LibcPolicy) Name() string { return "libc" }

// AllocAnnotate implements Policy (no protection).
func (LibcPolicy) AllocAnnotate(*sim.Machine, *Chunk) error { return nil }

// FreeAnnotate implements Policy.
func (LibcPolicy) FreeAnnotate(*sim.Machine, *Chunk) error { return nil }

// PopAnnotate implements Policy.
func (LibcPolicy) PopAnnotate(*sim.Machine, *Chunk) error { return nil }

// MetadataOps implements Policy: a lean allocator.
func (LibcPolicy) MetadataOps() (int, int) { return 6, 4 }

// ReportsFreeErrors implements Policy: classic libc corrupts silently.
func (LibcPolicy) ReportsFreeErrors() bool { return false }

// NewLibc builds the plain allocator.
func NewLibc() (*Engine, error) {
	return NewEngine(Config{Policy: LibcPolicy{}, Align: 16})
}

// --- ASan ---

// ASanPolicy poisons redzones and freed payloads in shadow memory.
type ASanPolicy struct {
	Shadow *shadow.Map
}

// Name implements Policy.
func (ASanPolicy) Name() string { return "asan" }

// poisonRange poisons [addr, addr+n) in the shadow map and charges the
// corresponding shadow stores (one 8-byte shadow store covers 64
// application bytes).
func (p ASanPolicy) poisonRange(m *sim.Machine, id int64, addr, n uint64, val byte) error {
	p.Shadow.Poison(addr, n, val)
	for a := addr; a < addr+n; a += 64 {
		if exc := m.RTTouch(id, shadow.Addr(a), 8, true); exc != nil {
			return exc
		}
	}
	return nil
}

func (p ASanPolicy) unpoisonRange(m *sim.Machine, id int64, addr, n uint64) error {
	p.Shadow.Unpoison(addr, n)
	for a := addr; a < addr+n; a += 64 {
		if exc := m.RTTouch(id, shadow.Addr(a), 8, true); exc != nil {
			return exc
		}
	}
	return nil
}

// AllocAnnotate implements Policy: poison both redzones (and the metadata
// header, which redzones shield from the program) and unpoison the payload.
func (p ASanPolicy) AllocAnnotate(m *sim.Machine, c *Chunk) error {
	if err := p.poisonRange(m, sim.SvcMalloc, c.Header, HeaderBytes+c.RZ, shadow.HeapLeftRZ); err != nil {
		return err
	}
	if err := p.unpoisonRange(m, sim.SvcMalloc, c.Payload, c.Padded); err != nil {
		return err
	}
	return p.poisonRange(m, sim.SvcMalloc, c.Payload+c.Padded, c.RZ, shadow.HeapRightRZ)
}

// FreeAnnotate implements Policy: poison the payload as freed.
func (p ASanPolicy) FreeAnnotate(m *sim.Machine, c *Chunk) error {
	return p.poisonRange(m, sim.SvcFree, c.Payload, c.Padded, shadow.FreedHeap)
}

// PopAnnotate implements Policy: ASan's invariant keeps free-pool chunks
// poisoned, so leaving quarantine costs nothing.
func (ASanPolicy) PopAnnotate(*sim.Machine, *Chunk) error { return nil }

// MetadataOps implements Policy: ASan's allocator maintains per-size-class
// caches, quarantine accounting and allocation stats.
func (ASanPolicy) MetadataOps() (int, int) { return 18, 14 }

// ReportsFreeErrors implements Policy: ASan reports free errors.
func (ASanPolicy) ReportsFreeErrors() bool { return true }

// NewASan builds the ASan allocator over a shadow map.
func NewASan(s *shadow.Map) (*Engine, error) {
	return NewEngine(Config{
		Policy:        ASanPolicy{Shadow: s},
		Align:         16,
		RedzoneBytes:  DefaultRedzone,
		QuarantineCap: DefaultQuarantineCap,
	})
}

// --- REST ---

// RESTPolicy arms redzones and freed payloads with tokens (Figure 6B). With
// PerfectHW set, every arm/disarm is replaced by a single regular store —
// the paper's zero-cost-hardware limit study.
type RESTPolicy struct {
	Tracker   *core.TokenTracker
	PerfectHW bool
}

// Name implements Policy.
func (p RESTPolicy) Name() string {
	if p.PerfectHW {
		return "rest-perfecthw"
	}
	return "rest"
}

// TokenOps reports the tracker's arm/disarm totals for the observability
// flush (0/0 under PerfectHW, which replaces token ops with plain stores).
func (p RESTPolicy) TokenOps() (arms, disarms uint64) {
	if p.Tracker == nil {
		return 0, 0
	}
	return p.Tracker.Arms, p.Tracker.Disarms
}

func (p RESTPolicy) width() uint64 {
	if p.Tracker == nil {
		return 64 // PerfectHW runs on stock hardware: cost model only
	}
	return uint64(p.Tracker.Register().Width())
}

func (p RESTPolicy) armRange(m *sim.Machine, id int64, addr, n uint64) error {
	w := p.width()
	for a := addr; a < addr+n; a += w {
		if p.PerfectHW {
			if exc := m.RTStore(id, a, 8, 0); exc != nil {
				return exc
			}
			continue
		}
		if exc := m.RTArm(id, a); exc != nil {
			return exc
		}
	}
	return nil
}

func (p RESTPolicy) disarmRange(m *sim.Machine, id int64, addr, n uint64) error {
	w := p.width()
	for a := addr; a < addr+n; a += w {
		if p.PerfectHW {
			if exc := m.RTStore(id, a, 8, 0); exc != nil {
				return exc
			}
			continue
		}
		if exc := m.RTDisarm(id, a); exc != nil {
			return exc
		}
	}
	return nil
}

// AllocAnnotate implements Policy: arm both redzones. The payload arrives
// zeroed (free-pool-zeroed invariant), so no payload work is needed.
func (p RESTPolicy) AllocAnnotate(m *sim.Machine, c *Chunk) error {
	if err := p.armRange(m, sim.SvcMalloc, c.Payload-c.RZ, c.RZ); err != nil {
		return err
	}
	return p.armRange(m, sim.SvcMalloc, c.Payload+c.Padded, c.RZ)
}

// FreeAnnotate implements Policy: fill the freed payload with tokens before
// quarantining (Figure 6B).
func (p RESTPolicy) FreeAnnotate(m *sim.Machine, c *Chunk) error {
	return p.armRange(m, sim.SvcFree, c.Payload, c.Padded)
}

// PopAnnotate implements Policy: disarm payload and redzones; disarm zeroes,
// establishing the zeroed free pool (the paper's relaxed invariant, which
// also prevents uninitialized-data leaks on reallocation).
func (p RESTPolicy) PopAnnotate(m *sim.Machine, c *Chunk) error {
	if err := p.disarmRange(m, sim.SvcFree, c.Payload-c.RZ, c.RZ); err != nil {
		return err
	}
	if err := p.disarmRange(m, sim.SvcFree, c.Payload, c.Padded); err != nil {
		return err
	}
	return p.disarmRange(m, sim.SvcFree, c.Payload+c.Padded, c.RZ)
}

// GapAnnotate implements GapAnnotater: random inter-chunk slack is armed
// ("sprinkled" tokens, §V-C), so layout-guessing jumps land on tokens.
func (p RESTPolicy) GapAnnotate(m *sim.Machine, addr, n uint64) error {
	return p.armRange(m, sim.SvcMalloc, addr, n)
}

// MetadataOps implements Policy: REST reuses the ASan allocator structure
// (§IV-A "We chose to use the ASan allocator for convenience").
func (RESTPolicy) MetadataOps() (int, int) { return 18, 14 }

// ReportsFreeErrors implements Policy: the security allocator reports.
func (RESTPolicy) ReportsFreeErrors() bool { return true }

// NewREST builds the REST allocator over a token tracker. Alignment is the
// token width so payloads and redzones are armable.
func NewREST(tr *core.TokenTracker) (*Engine, error) {
	return NewEngine(Config{
		Policy:        RESTPolicy{Tracker: tr},
		Align:         uint64(tr.Register().Width()),
		RedzoneBytes:  DefaultRedzone,
		QuarantineCap: DefaultQuarantineCap,
	})
}

// NewPerfectHW builds the REST allocator cost model for stock hardware.
func NewPerfectHW() (*Engine, error) {
	return NewEngine(Config{
		Policy:        RESTPolicy{PerfectHW: true},
		Align:         64,
		RedzoneBytes:  DefaultRedzone,
		QuarantineCap: DefaultQuarantineCap,
	})
}
