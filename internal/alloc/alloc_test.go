package alloc

import (
	"math/rand"
	"testing"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/mem"
	"rest/internal/shadow"
	"rest/internal/sim"
)

// newMachine builds a bare machine for exercising allocators directly.
func newMachine(t *testing.T, tracker *core.TokenTracker, m *mem.Memory) *sim.Machine {
	t.Helper()
	mach, err := sim.New(sim.Config{Mem: m, Tracker: tracker},
		[]isa.Instr{{Op: isa.OpHalt}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

func newRESTWorld(t *testing.T, w core.Width) (*sim.Machine, *core.TokenTracker, *Engine) {
	t.Helper()
	reg, err := core.NewTokenRegister(w, core.Secure, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	tr := core.NewTokenTracker(reg, m)
	mach := newMachine(t, tr, m)
	eng, err := NewREST(tr)
	if err != nil {
		t.Fatal(err)
	}
	return mach, tr, eng
}

func newASanWorld(t *testing.T) (*sim.Machine, *shadow.Map, *Engine) {
	t.Helper()
	m := mem.New()
	sh := shadow.New(m)
	mach := newMachine(t, nil, m)
	eng, err := NewASan(sh)
	if err != nil {
		t.Fatal(err)
	}
	return mach, sh, eng
}

func TestLibcMallocFreeReuse(t *testing.T) {
	mach := newMachine(t, nil, mem.New())
	eng, err := NewLibc()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := eng.Malloc(mach, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p1%16 != 0 {
		t.Errorf("payload %#x not 16-aligned", p1)
	}
	if err := eng.Free(mach, p1); err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Malloc(mach, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Errorf("libc did not reuse freed chunk immediately: %#x != %#x", p2, p1)
	}
}

func TestLibcNoRedzones(t *testing.T) {
	mach := newMachine(t, nil, mem.New())
	eng, _ := NewLibc()
	p1, _ := eng.Malloc(mach, 64)
	p2, _ := eng.Malloc(mach, 64)
	// Chunks are header-separated only.
	if p2-p1 != HeaderBytes+64 {
		t.Errorf("libc chunk stride = %d, want %d", p2-p1, HeaderBytes+64)
	}
}

func TestASanRedzonesPoisoned(t *testing.T) {
	mach, sh, eng := newASanWorld(t)
	p, err := eng.Malloc(mach, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sh.Check(p, 8); !ok {
		t.Error("payload poisoned after malloc")
	}
	if ok, pv := sh.Check(p-8, 8); ok || pv != shadow.HeapLeftRZ {
		t.Errorf("left redzone not poisoned (ok=%v pv=%#x)", ok, pv)
	}
	// Padded size is 112 for a 100-byte request (16-alignment).
	if ok, pv := sh.Check(p+112, 8); ok || pv != shadow.HeapRightRZ {
		t.Errorf("right redzone not poisoned (ok=%v pv=%#x)", ok, pv)
	}
}

func TestASanFreePoisonsAndQuarantines(t *testing.T) {
	mach, sh, eng := newASanWorld(t)
	p, _ := eng.Malloc(mach, 64)
	if err := eng.Free(mach, p); err != nil {
		t.Fatal(err)
	}
	if ok, pv := sh.Check(p, 8); ok || pv != shadow.FreedHeap {
		t.Errorf("freed payload not poisoned (ok=%v pv=%#x)", ok, pv)
	}
	if len(eng.Quarantined()) != 1 {
		t.Errorf("quarantine len = %d, want 1", len(eng.Quarantined()))
	}
	// No immediate reuse.
	p2, _ := eng.Malloc(mach, 64)
	if p2 == p {
		t.Error("ASan reused freed chunk immediately")
	}
}

func TestASanQuarantineEviction(t *testing.T) {
	mach, _, eng := newASanWorld(t)
	// Churn enough to exceed the 256KB cap with 4KB chunks.
	ptrs := make([]uint64, 0, 100)
	for i := 0; i < 100; i++ {
		p, err := eng.Malloc(mach, 4096)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := eng.Free(mach, p); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.QuarantinePops == 0 {
		t.Error("no quarantine pops after exceeding capacity")
	}
	if st.QuarantineBytes > DefaultQuarantineCap {
		t.Errorf("quarantine bytes %d over cap", st.QuarantineBytes)
	}
	if len(eng.FreePool()) == 0 {
		t.Error("free pool empty after quarantine pops")
	}
}

func TestRESTRedzonesArmed(t *testing.T) {
	mach, tr, eng := newRESTWorld(t, core.Width64)
	p, err := eng.Malloc(mach, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p%64 != 0 {
		t.Errorf("REST payload %#x not token-aligned", p)
	}
	if !tr.Armed(p - 1) {
		t.Error("left redzone not armed")
	}
	if tr.Armed(p) || tr.Armed(p+100) {
		t.Error("payload armed after malloc")
	}
	// Padded to 128 for a 100-byte request.
	if !tr.Armed(p + 128) {
		t.Error("right redzone not armed")
	}
	if err := tr.VerifyConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRESTFreeArmsPayload(t *testing.T) {
	mach, tr, eng := newRESTWorld(t, core.Width64)
	p, _ := eng.Malloc(mach, 256)
	if err := eng.Free(mach, p); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 256; off += 64 {
		if !tr.Armed(p + off) {
			t.Fatalf("freed payload chunk at +%d not armed", off)
		}
	}
}

func TestRESTQuarantinePopZeroes(t *testing.T) {
	mach, tr, eng := newRESTWorld(t, core.Width64)
	mm := mach.Mem
	// Allocate, dirty, free, then churn past the quarantine cap.
	p, _ := eng.Malloc(mach, 4096)
	mm.WriteUint(p, 8, 0x4141414141414141)
	if err := eng.Free(mach, p); err != nil {
		t.Fatal(err)
	}
	// Churn with a different size class so p is never reallocated before
	// we inspect it.
	for i := 0; i < 80; i++ {
		q, err := eng.Malloc(mach, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Free(mach, q); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().QuarantinePops == 0 {
		t.Fatal("chunk never left quarantine")
	}
	// The popped chunk's payload must be zeroed (free-pool-zeroed
	// invariant: no uninitialized-data leaks) and unarmed.
	if tr.Armed(p) {
		t.Error("popped chunk still armed")
	}
	if got := mm.ReadUint(p, 8); got != 0 {
		t.Errorf("popped chunk payload = %#x, want 0 (zeroed free pool)", got)
	}
	if err := tr.VerifyConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRESTReallocationFromPool(t *testing.T) {
	mach, tr, eng := newRESTWorld(t, core.Width64)
	ptrs := make([]uint64, 0, 90)
	for i := 0; i < 90; i++ {
		p, _ := eng.Malloc(mach, 4096)
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := eng.Free(mach, p); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().QuarantinePops == 0 {
		t.Fatal("no pops")
	}
	before := eng.Stats().Mallocs
	p, err := eng.Malloc(mach, 4096)
	if err != nil {
		t.Fatal(err)
	}
	_ = before
	// Reallocated chunk: redzones armed again, payload clean.
	if !tr.Armed(p-1) || !tr.Armed(p+4096) {
		t.Error("reallocated chunk redzones not armed")
	}
	if tr.Armed(p) {
		t.Error("reallocated payload armed")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	for _, mk := range []func() (*sim.Machine, *Engine){
		func() (*sim.Machine, *Engine) { m, _, e := newASanWorld(t); return m, e },
		func() (*sim.Machine, *Engine) { m, _, e := newRESTWorld(t, core.Width64); return m, e },
	} {
		mach, eng := mk()
		p, _ := eng.Malloc(mach, 64)
		if err := eng.Free(mach, p); err != nil {
			t.Fatal(err)
		}
		err := eng.Free(mach, p)
		v, ok := err.(*sim.Violation)
		if !ok || v.What != "double free" {
			t.Errorf("%s: double free -> %v, want violation", eng.Policy().Name(), err)
		}
		if eng.Stats().DoubleFrees != 1 {
			t.Errorf("%s: DoubleFrees = %d, want 1", eng.Policy().Name(), eng.Stats().DoubleFrees)
		}
	}
}

func TestInvalidFreeDetected(t *testing.T) {
	mach, _, eng := newASanWorld(t)
	err := eng.Free(mach, 0x2345_6780)
	if v, ok := err.(*sim.Violation); !ok || v.What != "invalid free" {
		t.Errorf("invalid free -> %v, want violation", err)
	}
}

func TestPerfectHWEmitsPlainStores(t *testing.T) {
	m := mem.New()
	mach := newMachine(t, nil, m) // stock hardware: no tracker
	eng, err := NewPerfectHW()
	if err != nil {
		t.Fatal(err)
	}
	before := mach.RTOps
	p, err := eng.Malloc(mach, 128)
	if err != nil {
		t.Fatal(err)
	}
	if mach.RTOps == before {
		t.Error("no runtime micro-ops emitted")
	}
	if err := eng.Free(mach, p); err != nil {
		t.Fatal(err)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{Policy: nil, Align: 16}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewEngine(Config{Policy: LibcPolicy{}, Align: 24}); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
}

// Property: under random malloc/free churn the engine maintains (a) no
// overlapping live chunks, (b) REST tracker/content consistency, and (c)
// the arming invariants for live, quarantined and free chunks.
func TestRESTInvariantsUnderChurn(t *testing.T) {
	mach, tr, eng := newRESTWorld(t, core.Width64)
	r := rand.New(rand.NewSource(77))
	var livePtrs []uint64
	for step := 0; step < 3000; step++ {
		if len(livePtrs) == 0 || r.Intn(2) == 0 {
			size := uint64(1 + r.Intn(2000))
			p, err := eng.Malloc(mach, size)
			if err != nil {
				t.Fatal(err)
			}
			livePtrs = append(livePtrs, p)
		} else {
			i := r.Intn(len(livePtrs))
			if err := eng.Free(mach, livePtrs[i]); err != nil {
				t.Fatal(err)
			}
			livePtrs = append(livePtrs[:i], livePtrs[i+1:]...)
		}
	}
	if err := eng.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.LiveChunks() {
		if !tr.Armed(c.Payload-1) || !tr.Armed(c.Payload+c.Padded) {
			t.Fatalf("live chunk %#x redzones not armed", c.Payload)
		}
		if tr.Armed(c.Payload) {
			t.Fatalf("live chunk %#x payload armed", c.Payload)
		}
	}
	for _, c := range eng.Quarantined() {
		if !tr.Armed(c.Payload) {
			t.Fatalf("quarantined chunk %#x payload not armed", c.Payload)
		}
	}
	for _, c := range eng.FreePool() {
		if tr.Armed(c.Payload) || tr.Armed(c.Payload-1) || tr.Armed(c.Payload+c.Padded) {
			t.Fatalf("free-pool chunk %#x still armed", c.Payload)
		}
	}
}

func TestASanInvariantsUnderChurn(t *testing.T) {
	mach, sh, eng := newASanWorld(t)
	r := rand.New(rand.NewSource(78))
	var livePtrs []uint64
	for step := 0; step < 3000; step++ {
		if len(livePtrs) == 0 || r.Intn(2) == 0 {
			p, err := eng.Malloc(mach, uint64(1+r.Intn(2000)))
			if err != nil {
				t.Fatal(err)
			}
			livePtrs = append(livePtrs, p)
		} else {
			i := r.Intn(len(livePtrs))
			if err := eng.Free(mach, livePtrs[i]); err != nil {
				t.Fatal(err)
			}
			livePtrs = append(livePtrs[:i], livePtrs[i+1:]...)
		}
	}
	if err := eng.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.LiveChunks() {
		if ok, _ := sh.Check(c.Payload, 8); !ok {
			t.Fatalf("live chunk %#x payload poisoned", c.Payload)
		}
		if ok, _ := sh.Check(c.Payload-8, 8); ok {
			t.Fatalf("live chunk %#x left redzone not poisoned", c.Payload)
		}
	}
	// ASan invariant: quarantine AND free pool stay poisoned.
	for _, c := range eng.Quarantined() {
		if ok, _ := sh.Check(c.Payload, 8); ok {
			t.Fatalf("quarantined chunk %#x not poisoned", c.Payload)
		}
	}
	for _, c := range eng.FreePool() {
		if ok, _ := sh.Check(c.Payload, 8); ok {
			t.Fatalf("free-pool chunk %#x not poisoned", c.Payload)
		}
	}
}

func TestStatsTracking(t *testing.T) {
	mach, _, eng := newASanWorld(t)
	p1, _ := eng.Malloc(mach, 100)
	p2, _ := eng.Malloc(mach, 200)
	eng.Free(mach, p1)
	st := eng.Stats()
	if st.Mallocs != 2 || st.Frees != 1 {
		t.Errorf("mallocs/frees = %d/%d, want 2/1", st.Mallocs, st.Frees)
	}
	if st.BytesRequested != 300 {
		t.Errorf("BytesRequested = %d, want 300", st.BytesRequested)
	}
	if st.PeakBytesLive < st.BytesLive {
		t.Error("peak < live")
	}
	_ = p2
}
