// Package alloc implements the three heap allocators the evaluation
// compares (paper §II, §IV-A, Figure 6):
//
//   - Libc: a conventional size-class freelist allocator, the "plain"
//     baseline, tuned for speed, with immediate reuse of freed memory.
//   - ASan: AddressSanitizer's security-oriented allocator: poisoned
//     redzones around every allocation, freed chunks poisoned and parked in
//     a FIFO quarantine (no immediate reuse), shadow bookkeeping on every
//     transition. Free-pool chunks stay poisoned.
//   - REST: the paper's adaptation of the ASan allocator: redzones are
//     armed with tokens instead of shadow poison, freed chunks are
//     token-filled and quarantined, and — the paper's relaxed invariant —
//     the free pool is *zeroed* rather than blacklisted (disarm zeroes),
//     which also prevents uninitialized-data leaks (§IV-A, §V-C).
//   - PerfectHW: the REST allocator with every arm/disarm replaced by one
//     regular store, the paper's zero-cost-hardware limit study (§VI-B).
//
// Every operation routes its memory touches through the machine's RT*
// helpers, so allocator cost is part of the simulated instruction stream
// rather than an assumed constant.
package alloc

import (
	"fmt"
	"math/rand"

	"rest/internal/layout"
	"rest/internal/sim"
)

// HeaderBytes is the in-memory chunk header region (size + state word live
// in simulated memory; it is kept one token width wide so payloads stay
// token-aligned).
const HeaderBytes = 64

// Chunk states stored in the header's state word.
const (
	stateLive  = 0x11CE
	stateFreed = 0xDEAD
)

// Chunk describes one heap chunk.
type Chunk struct {
	Header  uint64 // address of the header region
	Payload uint64 // address returned to the program
	Req     uint64 // requested size
	Padded  uint64 // payload size after alignment padding
	RZ      uint64 // redzone bytes on each side (0 for libc)
	state   int
}

// end returns the first address past the chunk (header + left rz + payload
// + right rz).
func (c *Chunk) end() uint64 {
	return c.Payload + c.Padded + c.RZ
}

// Policy customizes the engine per allocator flavour.
type Policy interface {
	// Name identifies the allocator in stats and errors.
	Name() string
	// AllocAnnotate installs protection around a chunk being handed out.
	AllocAnnotate(m *sim.Machine, c *Chunk) error
	// FreeAnnotate blacklists a chunk entering the quarantine.
	FreeAnnotate(m *sim.Machine, c *Chunk) error
	// PopAnnotate prepares a chunk leaving the quarantine for the free pool.
	PopAnnotate(m *sim.Machine, c *Chunk) error
	// MetadataOps returns extra bookkeeping micro-ops (ALU) charged per
	// malloc and free, reflecting the allocator's structural complexity
	// (ASan's allocator maintains per-thread caches, stats and quarantine
	// accounting that the libc baseline does not).
	MetadataOps() (malloc, free int)
	// ReportsFreeErrors selects whether double/invalid frees are reported
	// (security allocators) or silently corrupt state (classic libc).
	ReportsFreeErrors() bool
}

// Stats counts allocator activity.
type Stats struct {
	Mallocs         uint64
	Frees           uint64
	DoubleFrees     uint64
	InvalidFrees    uint64
	QuarantinePops  uint64
	BytesRequested  uint64
	BytesLive       uint64
	PeakBytesLive   uint64
	QuarantineBytes uint64
}

// GapAnnotater is an optional Policy extension: blacklist the random slack
// the randomizing allocator leaves between chunks ("sprinkle arbitrary
// tokens across the data region", §V-C Predictability).
type GapAnnotater interface {
	GapAnnotate(m *sim.Machine, addr, n uint64) error
}

// Engine is the common freelist machinery shared by all flavours.
type Engine struct {
	policy Policy
	align  uint64
	rz     uint64
	qcap   uint64 // quarantine capacity in bytes; 0 = no quarantine

	gapRNG  *rand.Rand // nil = deterministic layout
	maxGaps int        // max random gap in align units

	brk        uint64
	free       map[uint64][]*Chunk // padded size -> chunks
	live       map[uint64]*Chunk   // payload -> chunk
	quarantine []*Chunk
	qbytes     uint64

	stats         Stats
	probes        *Probes
	probesFlushed bool
}

// Config parameterizes an Engine.
type Config struct {
	Policy        Policy
	Align         uint64 // payload alignment (and padding granularity)
	RedzoneBytes  uint64
	QuarantineCap uint64
}

// NewEngine builds an allocator engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("alloc: nil policy")
	}
	if cfg.Align == 0 || cfg.Align&(cfg.Align-1) != 0 {
		return nil, fmt.Errorf("alloc: alignment %d not a power of two", cfg.Align)
	}
	return &Engine{
		policy: cfg.Policy,
		align:  cfg.Align,
		rz:     cfg.RedzoneBytes,
		qcap:   cfg.QuarantineCap,
		brk:    layout.HeapBase,
		free:   make(map[uint64][]*Chunk),
		live:   make(map[uint64]*Chunk),
	}, nil
}

// Stats returns a snapshot of allocator statistics.
func (e *Engine) Stats() Stats { return e.stats }

// SetQuarantineCap overrides the quarantine capacity (ablation studies; call
// before the first allocation).
func (e *Engine) SetQuarantineCap(n uint64) { e.qcap = n }

// SetRedzone overrides the per-side redzone size (ablation studies; must be
// a multiple of the token width; call before the first allocation).
func (e *Engine) SetRedzone(n uint64) { e.rz = n }

// RandomizeLayout enables heap layout randomization (§V-C Predictability):
// fresh chunks are separated by random slack of up to maxGapUnits alignment
// units, and — when the policy supports it — the slack itself is
// blacklisted (sprinkled tokens), so attackers who jump over redzones using
// a precomputed stride land on a token instead of the neighbouring chunk.
func (e *Engine) RandomizeLayout(seed int64, maxGapUnits int) {
	e.gapRNG = rand.New(rand.NewSource(seed))
	e.maxGaps = maxGapUnits
}

// Policy exposes the engine's policy (tests).
func (e *Engine) Policy() Policy { return e.policy }

// Live reports whether ptr is a live payload address.
func (e *Engine) Live(ptr uint64) bool { _, ok := e.live[ptr]; return ok }

// SizeOf returns the requested size of a live allocation.
func (e *Engine) SizeOf(ptr uint64) (uint64, bool) {
	c, ok := e.live[ptr]
	if !ok {
		return 0, false
	}
	return c.Req, true
}

// LiveChunks returns the live chunks (tests and invariant checks).
func (e *Engine) LiveChunks() []*Chunk {
	out := make([]*Chunk, 0, len(e.live))
	for _, c := range e.live {
		out = append(out, c)
	}
	return out
}

// Quarantined returns the quarantined chunks (tests).
func (e *Engine) Quarantined() []*Chunk { return e.quarantine }

// FreePool returns the free-pool chunks (tests).
func (e *Engine) FreePool() []*Chunk {
	var out []*Chunk
	for _, l := range e.free {
		out = append(out, l...)
	}
	return out
}

func (e *Engine) pad(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + e.align - 1) &^ (e.align - 1)
}

// Malloc allocates size bytes and returns the payload address.
func (e *Engine) Malloc(m *sim.Machine, size uint64) (uint64, error) {
	mOps, _ := e.policy.MetadataOps()
	m.RTALU(sim.SvcMalloc, mOps)

	padded := e.pad(size)
	var c *Chunk
	if list := e.free[padded]; len(list) > 0 {
		// Freelist hit: pop head (list-head load + next-pointer load).
		c = list[len(list)-1]
		e.free[padded] = list[:len(list)-1]
		if _, exc := m.RTLoad(sim.SvcMalloc, c.Header+16, 8); exc != nil {
			return 0, exc
		}
	} else {
		// Carve from the wilderness, with randomized slack when enabled.
		if e.gapRNG != nil && e.maxGaps > 0 {
			gap := uint64(e.gapRNG.Intn(e.maxGaps+1)) * e.align
			if gap > 0 {
				if ga, ok := e.policy.(GapAnnotater); ok {
					if err := ga.GapAnnotate(m, e.brk, gap); err != nil {
						return 0, err
					}
				}
				e.brk += gap
			}
		}
		c = &Chunk{
			Header: e.brk,
			RZ:     e.rz,
			Padded: padded,
		}
		c.Payload = c.Header + HeaderBytes + e.rz
		e.brk = c.Payload + padded + e.rz
		if e.brk > layout.HeapLimit {
			return 0, fmt.Errorf("alloc(%s): out of heap", e.policy.Name())
		}
		m.RTALU(sim.SvcMalloc, 2)
	}
	c.Req = size
	c.state = stateLive

	// Header writes: size and state words.
	if exc := m.RTStore(sim.SvcMalloc, c.Header, 8, size); exc != nil {
		return 0, exc
	}
	if exc := m.RTStore(sim.SvcMalloc, c.Header+8, 8, stateLive); exc != nil {
		return 0, exc
	}
	if err := e.policy.AllocAnnotate(m, c); err != nil {
		return 0, err
	}

	e.live[c.Payload] = c
	e.stats.Mallocs++
	e.stats.BytesRequested += size
	e.stats.BytesLive += padded
	if e.stats.BytesLive > e.stats.PeakBytesLive {
		e.stats.PeakBytesLive = e.stats.BytesLive
	}
	return c.Payload, nil
}

// Free releases a payload pointer. Double frees and invalid frees are
// reported as allocator-detected violations.
func (e *Engine) Free(m *sim.Machine, ptr uint64) error {
	_, fOps := e.policy.MetadataOps()
	m.RTALU(sim.SvcFree, fOps)

	c, ok := e.live[ptr]
	if !ok {
		// Header state probe: the allocator reads the state word of what
		// the caller claims is a chunk.
		hdr := ptr - HeaderBytes - e.rz
		if _, exc := m.RTLoad(sim.SvcFree, hdr+8, 8); exc != nil {
			return exc
		}
		for _, q := range e.quarantine {
			if q.Payload == ptr {
				e.stats.DoubleFrees++
				if e.policy.ReportsFreeErrors() {
					return &sim.Violation{Tool: e.policy.Name(), What: "double free", Addr: ptr}
				}
				return nil
			}
		}
		e.stats.InvalidFrees++
		if e.policy.ReportsFreeErrors() {
			return &sim.Violation{Tool: e.policy.Name(), What: "invalid free", Addr: ptr}
		}
		// Classic libc: the bogus free silently corrupts freelist state
		// (modelled as a metadata write; the chunk may be handed out twice).
		if fc, isFree := e.findFreeChunk(ptr); isFree {
			e.free[fc.Padded] = append(e.free[fc.Padded], fc)
		}
		return nil
	}

	// Verify and flip the state word.
	if _, exc := m.RTLoad(sim.SvcFree, c.Header+8, 8); exc != nil {
		return exc
	}
	if exc := m.RTStore(sim.SvcFree, c.Header+8, 8, stateFreed); exc != nil {
		return exc
	}
	c.state = stateFreed
	delete(e.live, ptr)
	e.stats.Frees++
	e.stats.BytesLive -= c.Padded

	if err := e.policy.FreeAnnotate(m, c); err != nil {
		return err
	}

	if e.qcap == 0 {
		// No quarantine: immediate reuse (libc behaviour).
		return e.toFreePool(m, c)
	}
	e.quarantine = append(e.quarantine, c)
	e.qbytes += c.Padded
	e.stats.QuarantineBytes = e.qbytes
	if e.probes != nil {
		// Live hook: the depth distribution over time is not recoverable
		// from an end-of-run snapshot.
		e.probes.QuarantineDepth.Observe(e.qbytes)
		e.probes.PeakQuarantineBytes.Set(e.qbytes)
	}
	// Quarantine-link stores.
	if exc := m.RTStore(sim.SvcFree, c.Header+16, 8, 0); exc != nil {
		return exc
	}

	// Evict oldest quarantine entries once over capacity.
	for e.qbytes > e.qcap && len(e.quarantine) > 0 {
		old := e.quarantine[0]
		e.quarantine = e.quarantine[1:]
		e.qbytes -= old.Padded
		e.stats.QuarantinePops++
		if err := e.policy.PopAnnotate(m, old); err != nil {
			return err
		}
		if err := e.toFreePool(m, old); err != nil {
			return err
		}
	}
	e.stats.QuarantineBytes = e.qbytes
	return nil
}

func (e *Engine) toFreePool(m *sim.Machine, c *Chunk) error {
	// Freelist push: head load + link store.
	if _, exc := m.RTLoad(sim.SvcFree, c.Header+16, 8); exc != nil {
		return exc
	}
	if exc := m.RTStore(sim.SvcFree, c.Header+16, 8, 0); exc != nil {
		return exc
	}
	e.free[c.Padded] = append(e.free[c.Padded], c)
	return nil
}

// findFreeChunk locates a free-pool chunk by payload address.
func (e *Engine) findFreeChunk(ptr uint64) (*Chunk, bool) {
	for _, list := range e.free {
		for _, c := range list {
			if c.Payload == ptr {
				return c, true
			}
		}
	}
	return nil, false
}

// CheckNoOverlap verifies that no two live chunks overlap and that every
// chunk lies inside the heap (invariant for property tests).
func (e *Engine) CheckNoOverlap() error {
	chunks := e.LiveChunks()
	for i, a := range chunks {
		if a.Header < layout.HeapBase || a.end() > layout.HeapLimit {
			return fmt.Errorf("alloc: chunk %#x outside heap", a.Payload)
		}
		for _, b := range chunks[i+1:] {
			if a.Header < b.end() && b.Header < a.end() {
				return fmt.Errorf("alloc: chunks %#x and %#x overlap", a.Payload, b.Payload)
			}
		}
	}
	return nil
}
