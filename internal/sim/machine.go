// Package sim is the functional (architectural) simulator. It executes
// programs instruction by instruction, enforces REST semantics through the
// token tracker, hosts runtime services (allocators, libc interceptors),
// and produces the dynamic trace consumed by the timing model.
package sim

import (
	"fmt"
	"time"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/layout"
	"rest/internal/mem"
	"rest/internal/trace"
)

// Runtime service identifiers. A program invokes a service with OpRTCall;
// arguments are passed in registers RArg0..RArg3 and the result is returned
// in RArg0. These model calls into runtime-library code (allocator, libc):
// the service mutates simulated memory and injects its memory micro-ops into
// the trace so its cost is modelled (DESIGN.md decision 3).
const (
	SvcMalloc   = 1 // RArg0 = size           -> RArg0 = ptr
	SvcFree     = 2 // RArg0 = ptr
	SvcMemcpy   = 3 // RArg0 = dst, RArg1 = src, RArg2 = n
	SvcMemset   = 4 // RArg0 = dst, RArg1 = byte, RArg2 = n
	SvcAsanSlow = 5 // RArg0 = addr, RArg1 = size, RArg2 = isStore (ASan slow-path check)
	SvcExit     = 6 // terminate cleanly
	// SvcLongjmpFix is ASan's conservative longjmp handling (§V-C
	// "Handling setjmp/longjmp"): unpoison the stack region being skipped,
	// [RArg0, RArg1). REST has no equivalent (it keeps no log of armed
	// stack locations), which is exactly the incompatibility the paper
	// documents; under REST flavours the service is a no-op.
	SvcLongjmpFix = 7
	SvcCalloc     = 8  // RArg0 = n, RArg1 = elemSize -> RArg0 = zeroed ptr
	SvcRealloc    = 9  // RArg0 = ptr, RArg1 = newSize -> RArg0 = new ptr
	SvcStrcpy     = 10 // RArg0 = dst, RArg1 = src (NUL-terminated) -> RArg0 = dst
	SvcStrlen     = 11 // RArg0 = s -> RArg0 = length
)

// Register linkage conventions. The compiler reserves RArg0..RArg3 plus the
// instrumentation scratch registers for runtime calls and inserted checks;
// workload codegen allocates from the remaining general registers.
const (
	RArg0 = 20
	RArg1 = 21
	RArg2 = 22
	RArg3 = 23
	// RScr0..RScr2 are scratch registers owned by instrumentation passes.
	RScr0 = 24
	RScr1 = 25
	RScr2 = 26
	// RRes is where workloads accumulate their result checksum; the harness
	// compares it across plain/ASan/REST binaries of the same workload.
	RRes = 27
)

// RTCodeBase is the synthetic code region runtime micro-ops report PCs in,
// so instruction fetch of runtime-library code is modelled through the L1-I.
const RTCodeBase uint64 = 0x0080_0000

// Runtime implements the runtime services for one binary flavour
// (plain/libc, ASan, REST, PerfectHW). Call must use the Machine's RT*
// helpers for every memory touch so costs reach the trace.
type Runtime interface {
	// Call executes service id. Returning a non-nil error terminates the
	// program with a software-detected violation (e.g. an ASan report).
	Call(id int64, m *Machine) error
}

// Config configures a functional machine.
type Config struct {
	// Mem is the machine's memory. When Tracker is non-nil it must be the
	// same memory the tracker was constructed over (token content and
	// program data live in one image). Nil allocates a fresh memory.
	Mem *mem.Memory
	// Tracker enables REST hardware semantics when non-nil. Programs that
	// execute ARM/DISARM without a tracker fault immediately (the
	// instructions are undefined on a non-REST machine).
	Tracker *core.TokenTracker
	// Runtime provides the runtime services; nil panics on the first RTCall.
	Runtime Runtime
	// MaxInstructions aborts runaway programs (0 = 500M).
	MaxInstructions uint64
	// Deadline is the wall-clock watchdog: a run still executing past it is
	// aborted with a *BudgetExceededError. The clock is polled once every
	// deadlineCheckStride user instructions, so enforcement lags by at most
	// that many instructions. Zero disables the watchdog — runs without one
	// stay perfectly deterministic.
	Deadline time.Time
	// Probes hooks the machine into the observability plane (nil = off;
	// every hook site is a single nil check).
	Probes *Probes
	// Engine selects the execution engine (see engine.go). The zero value
	// EngineAuto resolves to the decoded-block engine; EngineRef forces the
	// single-step reference interpreter. Both produce byte-identical
	// observables — the differential test wall pins it.
	Engine Engine
}

// deadlineCheckStride is how many user instructions run between wall-clock
// polls (a time.Now() every instruction would dominate the simulator).
const deadlineCheckStride = 4096

// BudgetExceededError aborts a run that outlived one of its watchdog
// budgets. It is a simulation error (Machine.Err), not a memory-safety
// detection: the harness converts it into an annotated hole in the sweep.
type BudgetExceededError struct {
	Resource string // "instructions" or "wall-clock"
	Limit    string // human-readable budget that was exhausted
	Instrs   uint64 // user instructions retired when the watchdog fired
}

// Error implements the error interface.
func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("sim: %s budget exceeded (%s) after %d instructions",
		e.Resource, e.Limit, e.Instrs)
}

// Violation is a software-detected memory-safety report (ASan's equivalent
// of the hardware REST exception).
type Violation struct {
	Tool string // "asan"
	What string
	Addr uint64
	PC   uint64
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: %s at addr=%#x pc=%#x", v.Tool, v.What, v.Addr, v.PC)
}

// Machine is the architectural machine state plus the trace generator. It
// implements trace.Reader: each Next() call retires one committed-path
// entry.
type Machine struct {
	Mem  *mem.Memory
	Regs [isa.NumRegs]uint64
	PC   uint64

	cfg     Config
	prog    []isa.Instr
	base    uint64
	pending []trace.Entry
	pendPos int
	seq     uint64

	halted        bool
	exc           *core.Exception
	violation     *Violation
	runErr        error
	probesFlushed bool

	// bc is the decoded-block cache; nil on the reference engine.
	bc *blockCache
	// traceOn gates trace-entry generation. Run() on the block engine
	// clears it so functional-only runs skip entry construction entirely;
	// counters, registers, memory and fault state are maintained either way.
	traceOn bool
	// hasDeadline caches !cfg.Deadline.IsZero() off the per-step path.
	hasDeadline bool

	rtPC      uint64
	rtPCCount uint64

	// Stats.
	UserInstrs uint64
	RTOps      uint64
}

// New builds a machine, loads the encoded program image at layout.CodeBase,
// and points the PC at entry (an instruction index into prog).
func New(cfg Config, prog []isa.Instr, entry int) (*Machine, error) {
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = 500_000_000
	}
	if entry < 0 || entry >= len(prog) {
		return nil, fmt.Errorf("sim: entry %d out of range [0,%d)", entry, len(prog))
	}
	if cfg.Tracker != nil && cfg.Mem == nil {
		return nil, fmt.Errorf("sim: REST machine requires the tracker's memory in Config.Mem")
	}
	// Reject malformed instructions at the boundary so execution never
	// reaches memory with an invalid access size (the mem package treats
	// that as an unreachable invariant and panics). prog.Build validates its
	// own output, but raw instruction slices also arrive here from the
	// assembler and from API users.
	for i, in := range prog {
		if err := in.Valid(); err != nil {
			return nil, fmt.Errorf("sim: instruction %d (%s): %w", i, in, err)
		}
	}
	m := cfg.Mem
	if m == nil {
		m = mem.New()
	}
	img, err := isa.EncodeProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	mach := &Machine{
		Mem:         m,
		cfg:         cfg,
		prog:        prog,
		base:        layout.CodeBase,
		traceOn:     true,
		hasDeadline: !cfg.Deadline.IsZero(),
	}
	mach.Mem.Write(mach.base, img)
	if cfg.Engine.resolve() == EngineBlocks {
		mach.bc = &blockCache{blocks: make([]*block, len(prog))}
		// Precise invalidation: any write overlapping the code image —
		// user store, runtime-service store, or a token write from
		// tracker Arm/Disarm — drops the decoded blocks it covers.
		// Installed after the image write above so loading the program
		// does not count as an invalidation.
		bc, base := mach.bc, mach.base
		end := base + uint64(len(prog))*isa.InstrBytes
		mach.Mem.Watch(base, end, func(lo, hi uint64) { bc.invalidate(base, lo, hi) })
	}
	mach.PC = mach.base + uint64(entry)*isa.InstrBytes
	mach.Regs[isa.RSP] = layout.StackTop
	mach.Regs[isa.RFP] = layout.StackTop
	return mach, nil
}

// Tracker returns the REST tracker, or nil on a non-REST machine.
func (m *Machine) Tracker() *core.TokenTracker { return m.cfg.Tracker }

// Halted reports whether execution has ended (halt, exception, violation or
// instruction-cap abort).
func (m *Machine) Halted() bool { return m.halted }

// Exception returns the REST exception that ended the run, if any.
func (m *Machine) Exception() *core.Exception { return m.exc }

// SWViolation returns the software-detected (ASan) violation, if any.
func (m *Machine) SWViolation() *Violation { return m.violation }

// Err returns an internal simulation error (bad opcode, missing runtime),
// distinct from memory-safety detections.
func (m *Machine) Err() error { return m.runErr }

// Checksum returns the workload result register, used to assert that plain,
// ASan and REST builds of one workload compute the same answer.
func (m *Machine) Checksum() uint64 { return m.Regs[RRes] }

// Next implements trace.Reader: it retires the next committed-path entry.
func (m *Machine) Next() (trace.Entry, bool) {
	for {
		if m.pendPos < len(m.pending) {
			e := m.pending[m.pendPos]
			m.pendPos++
			if m.pendPos == len(m.pending) {
				m.pending = m.pending[:0]
				m.pendPos = 0
			}
			return e, true
		}
		if m.halted {
			m.FlushProbes()
			return trace.Entry{}, false
		}
		if m.watchdogStop() {
			m.FlushProbes()
			return trace.Entry{}, false
		}
		if m.bc != nil {
			m.stepBlocks()
		} else {
			m.step()
		}
	}
}

// watchdogStop performs the pre-step watchdog checks: the instruction
// budget, then (at stride points) the wall-clock deadline. When a budget is
// exhausted it halts the machine with the corresponding BudgetExceededError
// and returns true. Shared by Next() and the untraced fast loop so both
// engines abort at identical instruction counts.
func (m *Machine) watchdogStop() bool {
	if m.UserInstrs >= m.cfg.MaxInstructions {
		m.halted = true
		m.runErr = &BudgetExceededError{
			Resource: "instructions",
			Limit:    fmt.Sprintf("cap %d", m.cfg.MaxInstructions),
			Instrs:   m.UserInstrs,
		}
		if p := m.cfg.Probes; p != nil {
			p.WatchdogTrips.Inc()
		}
		return true
	}
	if m.hasDeadline && m.UserInstrs%deadlineCheckStride == 0 &&
		time.Now().After(m.cfg.Deadline) {
		m.halted = true
		m.runErr = &BudgetExceededError{
			Resource: "wall-clock",
			Limit:    "deadline passed",
			Instrs:   m.UserInstrs,
		}
		if p := m.cfg.Probes; p != nil {
			p.WatchdogTrips.Inc()
		}
		return true
	}
	return false
}

// Run drains the machine without keeping the trace (functional-only runs).
// On the block engine this takes an untraced fast path: trace entries are
// never constructed, which is the bulk of the per-instruction cost; the
// architectural state, counters and fault verdicts are identical to a
// traced run (the engine differential tests pin it).
func (m *Machine) Run() {
	if m.bc == nil || m.pendPos < len(m.pending) {
		// Reference engine, or a partially drained traced run: finish
		// through the traced path so entry numbering stays consistent.
		for {
			if _, ok := m.Next(); !ok {
				return
			}
		}
	}
	m.traceOn = false
	for !m.halted && !m.watchdogStop() {
		m.stepBlocks()
	}
	m.traceOn = true
	m.FlushProbes()
}

func (m *Machine) emit(e trace.Entry) {
	if !m.traceOn {
		return
	}
	e.Seq = m.seq
	m.seq++
	m.pending = append(m.pending, e)
}

func (m *Machine) fetch() (isa.Instr, bool) {
	idx := (m.PC - m.base) / isa.InstrBytes
	if m.PC < m.base || idx >= uint64(len(m.prog)) || (m.PC-m.base)%isa.InstrBytes != 0 {
		m.halted = true
		m.runErr = fmt.Errorf("sim: PC %#x outside program", m.PC)
		return isa.Instr{}, false
	}
	return m.prog[idx], true
}

func (m *Machine) reg(i uint8) uint64 {
	if i == isa.RZero {
		return 0
	}
	return m.Regs[i]
}

func (m *Machine) setReg(i uint8, v uint64) {
	if i != isa.RZero {
		m.Regs[i] = v
	}
}

// step executes one user instruction, appending its trace entry (plus any
// runtime micro-ops it triggers) to the pending queue.
func (m *Machine) step() {
	in, ok := m.fetch()
	if !ok {
		return
	}
	pc := m.PC
	next := pc + isa.InstrBytes
	e := trace.Entry{PC: pc, Op: in.Op, Kind: trace.KindUser, Dst: in.DstReg()}
	e.Src1, e.Src2 = in.SrcRegs()
	m.UserInstrs++

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		m.halted = true
	case isa.OpMovI:
		m.setReg(in.Rd, uint64(in.Imm))
	case isa.OpMov:
		m.setReg(in.Rd, m.reg(in.Rs))
	case isa.OpAdd:
		m.setReg(in.Rd, m.reg(in.Rs)+m.reg(in.Rt))
	case isa.OpSub:
		m.setReg(in.Rd, m.reg(in.Rs)-m.reg(in.Rt))
	case isa.OpMul:
		m.setReg(in.Rd, m.reg(in.Rs)*m.reg(in.Rt))
	case isa.OpDiv:
		d := m.reg(in.Rt)
		if d == 0 {
			m.setReg(in.Rd, ^uint64(0))
		} else {
			m.setReg(in.Rd, m.reg(in.Rs)/d)
		}
	case isa.OpRem:
		d := m.reg(in.Rt)
		if d == 0 {
			m.setReg(in.Rd, m.reg(in.Rs))
		} else {
			m.setReg(in.Rd, m.reg(in.Rs)%d)
		}
	case isa.OpAnd:
		m.setReg(in.Rd, m.reg(in.Rs)&m.reg(in.Rt))
	case isa.OpOr:
		m.setReg(in.Rd, m.reg(in.Rs)|m.reg(in.Rt))
	case isa.OpXor:
		m.setReg(in.Rd, m.reg(in.Rs)^m.reg(in.Rt))
	case isa.OpShl:
		m.setReg(in.Rd, m.reg(in.Rs)<<(m.reg(in.Rt)&63))
	case isa.OpShr:
		m.setReg(in.Rd, m.reg(in.Rs)>>(m.reg(in.Rt)&63))
	case isa.OpAddI:
		m.setReg(in.Rd, m.reg(in.Rs)+uint64(in.Imm))
	case isa.OpMulI:
		m.setReg(in.Rd, m.reg(in.Rs)*uint64(in.Imm))
	case isa.OpAndI:
		m.setReg(in.Rd, m.reg(in.Rs)&uint64(in.Imm))
	case isa.OpOrI:
		m.setReg(in.Rd, m.reg(in.Rs)|uint64(in.Imm))
	case isa.OpXorI:
		m.setReg(in.Rd, m.reg(in.Rs)^uint64(in.Imm))
	case isa.OpShlI:
		m.setReg(in.Rd, m.reg(in.Rs)<<(uint64(in.Imm)&63))
	case isa.OpShrI:
		m.setReg(in.Rd, m.reg(in.Rs)>>(uint64(in.Imm)&63))

	case isa.OpLoad:
		addr := m.reg(in.Rs) + uint64(in.Imm)
		e.Addr, e.Size = addr, in.Size
		if exc := m.checkREST(addr, in.Size, false, pc); exc != nil {
			e.Faults = true
			m.raise(exc)
			m.emit(e)
			return
		}
		m.setReg(in.Rd, m.Mem.ReadUint(addr, in.Size))
	case isa.OpStore:
		addr := m.reg(in.Rs) + uint64(in.Imm)
		e.Addr, e.Size = addr, in.Size
		if exc := m.checkREST(addr, in.Size, true, pc); exc != nil {
			e.Faults = true
			m.raise(exc)
			m.emit(e)
			return
		}
		m.Mem.WriteUint(addr, in.Size, m.reg(in.Rt))

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		taken := evalBranch(in.Op, m.reg(in.Rs), m.reg(in.Rt))
		e.Taken = taken
		e.Target = uint64(in.Imm)
		if taken {
			next = uint64(in.Imm)
		}
	case isa.OpJmp:
		e.Taken, e.Target = true, uint64(in.Imm)
		next = uint64(in.Imm)
	case isa.OpCall:
		m.setReg(isa.RRA, next)
		e.Taken, e.Target = true, uint64(in.Imm)
		next = uint64(in.Imm)
	case isa.OpCallR:
		tgt := m.reg(in.Rs)
		m.setReg(isa.RRA, next)
		e.Taken, e.Target = true, tgt
		next = tgt
	case isa.OpRet:
		tgt := m.reg(isa.RRA)
		e.Taken, e.Target = true, tgt
		next = tgt

	case isa.OpArm:
		addr := m.reg(in.Rs) + uint64(in.Imm)
		e.Addr = addr
		if m.cfg.Tracker == nil {
			m.runErr = fmt.Errorf("sim: ARM executed on non-REST machine at pc=%#x", pc)
			m.halted = true
			return
		}
		e.Size = uint8(m.cfg.Tracker.Register().Width())
		if exc := m.cfg.Tracker.Arm(addr, pc); exc != nil {
			e.Faults = true
			m.raise(exc)
			m.emit(e)
			return
		}
	case isa.OpDisarm:
		addr := m.reg(in.Rs) + uint64(in.Imm)
		e.Addr = addr
		if m.cfg.Tracker == nil {
			m.runErr = fmt.Errorf("sim: DISARM executed on non-REST machine at pc=%#x", pc)
			m.halted = true
			return
		}
		e.Size = uint8(m.cfg.Tracker.Register().Width())
		if exc := m.cfg.Tracker.Disarm(addr, pc); exc != nil {
			e.Faults = true
			m.raise(exc)
			m.emit(e)
			return
		}

	case isa.OpRTCall:
		if m.cfg.Runtime == nil {
			m.runErr = fmt.Errorf("sim: RTCall %d with no runtime at pc=%#x", in.Imm, pc)
			m.halted = true
			return
		}
		m.emit(e) // the call instruction itself
		m.PC = next
		if err := m.cfg.Runtime.Call(in.Imm, m); err != nil {
			if v, ok := err.(*Violation); ok {
				m.violation = v
				if p := m.cfg.Probes; p != nil {
					p.SWViolations.Inc()
				}
			} else if exc, ok := err.(*core.Exception); ok {
				m.raise(exc)
			} else {
				m.runErr = err
			}
			m.halted = true
		}
		return

	default:
		m.runErr = fmt.Errorf("sim: unimplemented opcode %v at pc=%#x", in.Op, pc)
		m.halted = true
		return
	}

	m.emit(e)
	m.PC = next
}

func (m *Machine) raise(exc *core.Exception) {
	m.exc = exc
	m.halted = true
	if p := m.cfg.Probes; p != nil {
		p.RESTExceptions.Inc()
	}
}

// checkREST applies the hardware token check to a regular access.
func (m *Machine) checkREST(addr uint64, size uint8, isStore bool, pc uint64) *core.Exception {
	if m.cfg.Tracker == nil {
		return nil
	}
	return m.cfg.Tracker.CheckAccess(addr, size, isStore, pc)
}

func evalBranch(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int64(a) < int64(b)
	case isa.OpBge:
		return int64(a) >= int64(b)
	case isa.OpBltu:
		return a < b
	case isa.OpBgeu:
		return a >= b
	}
	return false
}
