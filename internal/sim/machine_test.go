package sim

import (
	"math/rand"
	"testing"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/layout"
	"rest/internal/mem"
	"rest/internal/trace"
)

// stubRuntime records calls and optionally performs scripted behaviour.
type stubRuntime struct {
	calls []int64
	fn    func(id int64, m *Machine) error
}

func (s *stubRuntime) Call(id int64, m *Machine) error {
	s.calls = append(s.calls, id)
	if s.fn != nil {
		return s.fn(id, m)
	}
	return nil
}

func run(t *testing.T, cfg Config, prog []isa.Instr) *Machine {
	t.Helper()
	m, err := New(cfg, prog, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.Run()
	return m
}

func TestArithmetic(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 6},
		{Op: isa.OpMovI, Rd: 2, Imm: 7},
		{Op: isa.OpMul, Rd: 3, Rs: 1, Rt: 2},
		{Op: isa.OpAddI, Rd: 3, Rs: 3, Imm: 1},
		{Op: isa.OpMov, Rd: RRes, Rs: 3},
		{Op: isa.OpHalt},
	}
	m := run(t, Config{}, prog)
	if m.Err() != nil {
		t.Fatalf("Err: %v", m.Err())
	}
	if m.Checksum() != 43 {
		t.Errorf("checksum = %d, want 43", m.Checksum())
	}
}

func TestDivByZeroDefined(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 10},
		{Op: isa.OpDiv, Rd: 2, Rs: 1, Rt: 3}, // r3 == 0
		{Op: isa.OpRem, Rd: 4, Rs: 1, Rt: 3},
		{Op: isa.OpHalt},
	}
	m := run(t, Config{}, prog)
	if m.Regs[2] != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all-ones", m.Regs[2])
	}
	if m.Regs[4] != 10 {
		t.Errorf("rem by zero = %d, want dividend", m.Regs[4])
	}
}

func TestLoopSum(t *testing.T) {
	// for i = 0; i < 100; i++ { sum += i }
	base := uint64(layout.CodeBase)
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 0},                                    // i
		{Op: isa.OpMovI, Rd: 2, Imm: 0},                                    // sum
		{Op: isa.OpMovI, Rd: 3, Imm: 100},                                  // limit
		{Op: isa.OpAdd, Rd: 2, Rs: 2, Rt: 1},                               // loop:
		{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1},                             //
		{Op: isa.OpBlt, Rs: 1, Rt: 3, Imm: int64(base + 3*isa.InstrBytes)}, //
		{Op: isa.OpMov, Rd: RRes, Rs: 2},                                   //
		{Op: isa.OpHalt},                                                   //
	}
	m := run(t, Config{}, prog)
	if m.Checksum() != 4950 {
		t.Errorf("sum = %d, want 4950", m.Checksum())
	}
}

func TestLoadStore(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpMovI, Rd: 2, Imm: 0x11223344},
		{Op: isa.OpStore, Rs: 1, Rt: 2, Imm: 8, Size: 4},
		{Op: isa.OpLoad, Rd: 3, Rs: 1, Imm: 8, Size: 2},
		{Op: isa.OpMov, Rd: RRes, Rs: 3},
		{Op: isa.OpHalt},
	}
	m := run(t, Config{}, prog)
	if m.Checksum() != 0x3344 {
		t.Errorf("loaded = %#x, want 0x3344", m.Checksum())
	}
}

func TestCallRet(t *testing.T) {
	base := uint64(layout.CodeBase)
	prog := []isa.Instr{
		{Op: isa.OpCall, Imm: int64(base + 3*isa.InstrBytes)}, // call f
		{Op: isa.OpMov, Rd: RRes, Rs: 1},
		{Op: isa.OpHalt},
		// f: r1 = 99; ret
		{Op: isa.OpMovI, Rd: 1, Imm: 99},
		{Op: isa.OpRet},
	}
	m := run(t, Config{}, prog)
	if m.Checksum() != 99 {
		t.Errorf("checksum = %d, want 99", m.Checksum())
	}
}

func newRESTConfig(t *testing.T, w core.Width, mode core.Mode) Config {
	t.Helper()
	reg, err := core.NewTokenRegister(w, mode, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	return Config{Mem: m, Tracker: core.NewTokenTracker(reg, m)}
}

func TestArmDisarmInstr(t *testing.T) {
	cfg := newRESTConfig(t, core.Width64, core.Secure)
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpDisarm, Rs: 1},
		{Op: isa.OpHalt},
	}
	m := run(t, cfg, prog)
	if m.Exception() != nil {
		t.Fatalf("exception: %v", m.Exception())
	}
	if cfg.Tracker.Arms != 1 || cfg.Tracker.Disarms != 1 {
		t.Errorf("arms/disarms = %d/%d, want 1/1", cfg.Tracker.Arms, cfg.Tracker.Disarms)
	}
}

func TestLoadTokenFaults(t *testing.T) {
	cfg := newRESTConfig(t, core.Width64, core.Secure)
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpLoad, Rd: 2, Rs: 1, Imm: 16, Size: 8},
		{Op: isa.OpHalt},
	}
	m := run(t, cfg, prog)
	exc := m.Exception()
	if exc == nil || exc.Kind != core.ViolationLoad {
		t.Fatalf("exception = %v, want load violation", exc)
	}
	// The faulting entry is marked in the trace.
	m2, _ := New(cfg, prog, 0)
	// Re-running on the same tracker: the token is still armed from the
	// first run, so the second ARM is idempotent and the load still faults.
	entries := trace.Collect(m2)
	last := entries[len(entries)-1]
	if !last.Faults || last.Op != isa.OpLoad {
		t.Errorf("last entry = %+v, want faulting load", last)
	}
}

func TestStoreTokenFaults(t *testing.T) {
	cfg := newRESTConfig(t, core.Width64, core.Secure)
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpStore, Rs: 1, Rt: 2, Imm: 0, Size: 1},
		{Op: isa.OpHalt},
	}
	m := run(t, cfg, prog)
	if exc := m.Exception(); exc == nil || exc.Kind != core.ViolationStore {
		t.Fatalf("exception = %v, want store violation", exc)
	}
}

func TestDisarmUnarmedFaults(t *testing.T) {
	cfg := newRESTConfig(t, core.Width64, core.Secure)
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpDisarm, Rs: 1},
		{Op: isa.OpHalt},
	}
	m := run(t, cfg, prog)
	if exc := m.Exception(); exc == nil || exc.Kind != core.ViolationDisarmUnarmed {
		t.Fatalf("exception = %v, want disarm-unarmed", exc)
	}
}

func TestArmOnNonRESTMachineErrors(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpHalt},
	}
	m := run(t, Config{}, prog)
	if m.Err() == nil {
		t.Error("ARM on non-REST machine: want error")
	}
}

func TestRTCallDispatch(t *testing.T) {
	rt := &stubRuntime{fn: func(id int64, m *Machine) error {
		m.SetRet(m.Arg(0) * 2)
		return nil
	}}
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: RArg0, Imm: 21},
		{Op: isa.OpRTCall, Imm: SvcMalloc},
		{Op: isa.OpMov, Rd: RRes, Rs: RArg0},
		{Op: isa.OpHalt},
	}
	m := run(t, Config{Runtime: rt}, prog)
	if len(rt.calls) != 1 || rt.calls[0] != SvcMalloc {
		t.Fatalf("calls = %v, want [1]", rt.calls)
	}
	if m.Checksum() != 42 {
		t.Errorf("checksum = %d, want 42", m.Checksum())
	}
}

func TestRTCallWithoutRuntimeErrors(t *testing.T) {
	prog := []isa.Instr{{Op: isa.OpRTCall, Imm: SvcMalloc}, {Op: isa.OpHalt}}
	m := run(t, Config{}, prog)
	if m.Err() == nil {
		t.Error("RTCall with no runtime: want error")
	}
}

func TestRuntimeViolationHalts(t *testing.T) {
	rt := &stubRuntime{fn: func(id int64, m *Machine) error {
		return &Violation{Tool: "asan", What: "heap-buffer-overflow", Addr: 0x1}
	}}
	prog := []isa.Instr{{Op: isa.OpRTCall, Imm: SvcAsanSlow}, {Op: isa.OpHalt}}
	m := run(t, Config{Runtime: rt}, prog)
	if m.SWViolation() == nil {
		t.Fatal("want software violation")
	}
	if m.SWViolation().Error() == "" {
		t.Error("violation has empty message")
	}
}

func TestRuntimeMicroOpsEmitted(t *testing.T) {
	rt := &stubRuntime{fn: func(id int64, m *Machine) error {
		if _, exc := m.RTLoad(id, layout.GlobalBase, 8); exc != nil {
			return exc
		}
		if exc := m.RTStore(id, layout.GlobalBase+8, 8, 7); exc != nil {
			return exc
		}
		m.RTALU(id, 3)
		return nil
	}}
	prog := []isa.Instr{{Op: isa.OpRTCall, Imm: SvcMalloc}, {Op: isa.OpHalt}}
	m, err := New(Config{Runtime: rt}, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := trace.Collect(m)
	var rtOps, loads, stores int
	for _, e := range entries {
		if e.Kind == trace.KindRuntime {
			rtOps++
			if e.Op == isa.OpLoad {
				loads++
			}
			if e.Op == isa.OpStore {
				stores++
			}
			if e.PC < RTCodeBase {
				t.Errorf("runtime op PC %#x below RTCodeBase", e.PC)
			}
		}
	}
	if rtOps != 5 || loads != 1 || stores != 1 {
		t.Errorf("rtOps/loads/stores = %d/%d/%d, want 5/1/1", rtOps, loads, stores)
	}
	if m.RTOps != 5 {
		t.Errorf("RTOps = %d, want 5", m.RTOps)
	}
}

func TestRuntimeAccessChecked(t *testing.T) {
	cfg := newRESTConfig(t, core.Width64, core.Secure)
	cfg.Runtime = &stubRuntime{fn: func(id int64, m *Machine) error {
		_, exc := m.RTLoad(id, layout.GlobalBase, 8)
		if exc != nil {
			return exc
		}
		return nil
	}}
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpRTCall, Imm: SvcMemcpy},
		{Op: isa.OpHalt},
	}
	m := run(t, cfg, prog)
	if exc := m.Exception(); exc == nil || exc.Kind != core.ViolationLoad {
		t.Fatalf("exception = %v, want load violation from runtime access", exc)
	}
}

func TestInstructionCap(t *testing.T) {
	base := uint64(layout.CodeBase)
	prog := []isa.Instr{{Op: isa.OpJmp, Imm: int64(base)}} // infinite loop
	m, err := New(Config{MaxInstructions: 1000}, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if m.Err() == nil {
		t.Error("infinite loop: want cap error")
	}
	if m.UserInstrs > 1001 {
		t.Errorf("UserInstrs = %d, want <= 1001", m.UserInstrs)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 1},
		{Op: isa.OpMovI, Rd: 2, Imm: 2},
		{Op: isa.OpAdd, Rd: 3, Rs: 1, Rt: 2},
		{Op: isa.OpHalt},
	}
	m, _ := New(Config{}, prog, 0)
	entries := trace.Collect(m)
	for i, e := range entries {
		if e.Seq != uint64(i) {
			t.Fatalf("entry %d has Seq %d", i, e.Seq)
		}
	}
	if len(entries) != 4 {
		t.Errorf("trace length = %d, want 4", len(entries))
	}
}

func TestBadEntry(t *testing.T) {
	if _, err := New(Config{}, []isa.Instr{{Op: isa.OpHalt}}, 5); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestPCOutsideProgram(t *testing.T) {
	prog := []isa.Instr{{Op: isa.OpJmp, Imm: 0x10}} // jump outside image
	m := run(t, Config{}, prog)
	if m.Err() == nil {
		t.Error("PC escape: want error")
	}
}

func TestBranchEvaluation(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b uint64
		want bool
	}{
		{isa.OpBeq, 5, 5, true},
		{isa.OpBeq, 5, 6, false},
		{isa.OpBne, 5, 6, true},
		{isa.OpBlt, ^uint64(0), 1, true}, // -1 < 1 signed
		{isa.OpBge, 1, ^uint64(0), true}, // 1 >= -1 signed
		{isa.OpBltu, 1, ^uint64(0), true},
		{isa.OpBgeu, ^uint64(0), 1, true},
	}
	for _, c := range cases {
		if got := evalBranch(c.op, c.a, c.b); got != c.want {
			t.Errorf("evalBranch(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}
