package sim

import "rest/internal/obs"

// Probes is the functional simulator's hook set into the observability
// plane: the architectural events the paper's claims are argued from.
// A nil *Probes disables all of them; hook sites guard with one nil check,
// so a machine without observability pays nothing measurable.
type Probes struct {
	// UserInstructions / RuntimeOps are flushed once at end of run from the
	// machine's existing counters (zero hot-path cost).
	UserInstructions *obs.Counter
	RuntimeOps       *obs.Counter
	// RESTExceptions counts raised hardware exceptions; SWViolations counts
	// software (ASan/allocator) reports; WatchdogTrips counts budget aborts.
	RESTExceptions *obs.Counter
	SWViolations   *obs.Counter
	WatchdogTrips  *obs.Counter

	// reg is kept for lazy registration: the sim.blockcache.* counters are
	// created at flush time and only when the decoded-block engine actually
	// ran, so reference-engine metric snapshots carry no extra rows and the
	// two engines' registries differ in nothing else (the differential
	// tests strip the sim.blockcache. prefix before comparing, mirroring
	// the harness.trace_cache. precedent).
	reg *obs.Registry
}

// NewProbes registers the sim metric set in r (nil r -> nil probes, the
// disabled fast path).
func NewProbes(r *obs.Registry) *Probes {
	if r == nil {
		return nil
	}
	return &Probes{
		UserInstructions: r.Counter("sim.user_instructions"),
		RuntimeOps:       r.Counter("sim.runtime_ops"),
		RESTExceptions:   r.Counter("sim.rest_exceptions"),
		SWViolations:     r.Counter("sim.sw_violations"),
		WatchdogTrips:    r.Counter("sim.watchdog_trips"),
		reg:              r,
	}
}

// FlushProbes publishes the machine's end-of-run counters into the probe
// set. Idempotent; called when the machine halts and again defensively by
// world teardown (the timing model may stop pulling the trace early on an
// exception, leaving the halt path unreached).
func (m *Machine) FlushProbes() {
	p := m.cfg.Probes
	if p == nil || m.probesFlushed {
		return
	}
	m.probesFlushed = true
	p.UserInstructions.Add(m.UserInstrs)
	p.RuntimeOps.Add(m.RTOps)
	if bc := m.bc; bc != nil && p.reg != nil {
		p.reg.Counter("sim.blockcache.hits").Add(bc.hits)
		p.reg.Counter("sim.blockcache.misses").Add(bc.misses)
		p.reg.Counter("sim.blockcache.invalidations").Add(bc.invalidations)
		p.reg.Counter("sim.blockcache.decoded_bytes").Add(bc.decodedBytes)
	}
}
