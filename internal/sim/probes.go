package sim

import "rest/internal/obs"

// Probes is the functional simulator's hook set into the observability
// plane: the architectural events the paper's claims are argued from.
// A nil *Probes disables all of them; hook sites guard with one nil check,
// so a machine without observability pays nothing measurable.
type Probes struct {
	// UserInstructions / RuntimeOps are flushed once at end of run from the
	// machine's existing counters (zero hot-path cost).
	UserInstructions *obs.Counter
	RuntimeOps       *obs.Counter
	// RESTExceptions counts raised hardware exceptions; SWViolations counts
	// software (ASan/allocator) reports; WatchdogTrips counts budget aborts.
	RESTExceptions *obs.Counter
	SWViolations   *obs.Counter
	WatchdogTrips  *obs.Counter
}

// NewProbes registers the sim metric set in r (nil r -> nil probes, the
// disabled fast path).
func NewProbes(r *obs.Registry) *Probes {
	if r == nil {
		return nil
	}
	return &Probes{
		UserInstructions: r.Counter("sim.user_instructions"),
		RuntimeOps:       r.Counter("sim.runtime_ops"),
		RESTExceptions:   r.Counter("sim.rest_exceptions"),
		SWViolations:     r.Counter("sim.sw_violations"),
		WatchdogTrips:    r.Counter("sim.watchdog_trips"),
	}
}

// FlushProbes publishes the machine's end-of-run counters into the probe
// set. Idempotent; called when the machine halts and again defensively by
// world teardown (the timing model may stop pulling the trace early on an
// exception, leaving the halt path unreached).
func (m *Machine) FlushProbes() {
	p := m.cfg.Probes
	if p == nil || m.probesFlushed {
		return
	}
	m.probesFlushed = true
	p.UserInstructions.Add(m.UserInstrs)
	p.RuntimeOps.Add(m.RTOps)
}
