package sim

import (
	"testing"

	"rest/internal/isa"
	"rest/internal/layout"
)

// The fuzz half of the decoded-block engine's test wall. Both targets are
// differential: whatever program the fuzzer synthesizes, the block engine
// must (a) never panic and (b) produce the byte-identical trace, registers,
// memory digest and verdict as the reference interpreter. FuzzBlockDecode
// stresses the decoder and dispatch loop over arbitrary instruction mixes;
// FuzzBlockInvalidate stresses precise invalidation by synthesizing
// programs that store into their own code image mid-run.
//
// Run continuously with:
//
//	go test -fuzz=FuzzBlockDecode -fuzztime=30s ./internal/sim
//	go test -fuzz=FuzzBlockInvalidate -fuzztime=30s ./internal/sim
//
// (make fuzz-short runs both briefly; seed corpora live in testdata/fuzz.)

// fuzzProgram reinterprets raw fuzz bytes as a program: byte 0 is a flag
// word, the rest is chopped into InstrBytes chunks and decoded, skipping
// chunks the ISA rejects. The decoded instructions are re-validated through
// sim.New exactly like assembler output.
func fuzzProgram(data []byte) (flags byte, prog []isa.Instr) {
	if len(data) == 0 {
		return 0, nil
	}
	flags, data = data[0], data[1:]
	for len(data) >= isa.InstrBytes && len(prog) < 256 {
		in, err := isa.Decode(data[:isa.InstrBytes])
		data = data[isa.InstrBytes:]
		if err != nil {
			continue
		}
		prog = append(prog, in)
	}
	return flags, prog
}

// runDiff builds a ref/blocks machine pair over mk, runs both to completion
// through the traced reader, and asserts byte-identical observables. The
// instruction budget keeps fuzzer-found infinite loops bounded; the budget
// itself is part of the differential (both engines must trip it at the
// same instruction).
func runDiff(t *testing.T, mk mkCfg, prog []isa.Instr) {
	t.Helper()
	budgeted := func() Config {
		cfg := mk()
		cfg.MaxInstructions = 2048
		return cfg
	}
	ref, err := New(withEngine(budgeted(), EngineRef), prog, 0)
	if err != nil {
		// Invalid program: both constructors must agree.
		if _, berr := New(withEngine(budgeted(), EngineBlocks), prog, 0); berr == nil {
			t.Fatalf("New: ref rejected (%v) but blocks accepted", err)
		}
		return
	}
	blk, err := New(withEngine(budgeted(), EngineBlocks), prog, 0)
	if err != nil {
		t.Fatalf("New(blocks): %v", err)
	}
	for i := 0; ; i++ {
		re, rok := ref.Next()
		be, bok := blk.Next()
		if rok != bok {
			t.Fatalf("stream length diverges at entry %d: ref ok=%v blk ok=%v", i, rok, bok)
		}
		if !rok {
			break
		}
		if re != be {
			t.Fatalf("trace entry %d diverges:\n ref=%+v\n blk=%+v", i, re, be)
		}
	}
	assertSameState(t, ref, blk)
	assertCacheCoherent(t, blk)
}

func FuzzBlockDecode(f *testing.F) {
	// Seed with a representative mix: straight-line ALU, a loop, memory
	// traffic, ARM/DISARM, an RTCall, and deliberately malformed chunks.
	seed := func(flags byte, prog []isa.Instr) {
		buf := []byte{flags}
		for _, in := range prog {
			var enc [isa.InstrBytes]byte
			if err := isa.Encode(in, enc[:]); err != nil {
				f.Fatal(err)
			}
			buf = append(buf, enc[:]...)
		}
		f.Add(buf)
	}
	seed(0, []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 41},
		{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.OpMov, Rd: RRes, Rs: 1},
		{Op: isa.OpHalt},
	})
	seed(1, []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpLoad, Rd: 2, Rs: 1, Imm: 32, Size: 8},
		{Op: isa.OpDisarm, Rs: 1},
		{Op: isa.OpHalt},
	})
	seed(0, []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 10},
		{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: -1},
		{Op: isa.OpBne, Rs: 1, Imm: int64(layout.CodeBase + isa.InstrBytes)},
		{Op: isa.OpRTCall, Imm: 3},
		{Op: isa.OpHalt},
	})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF}) // malformed tail
	f.Fuzz(func(t *testing.T, data []byte) {
		flags, prog := fuzzProgram(data)
		if len(prog) == 0 {
			return
		}
		var mk mkCfg = plainCfg
		if flags&1 != 0 {
			mk = restCfg(int64(flags))
		}
		runDiff(t, mk, prog)
	})
}

func FuzzBlockInvalidate(f *testing.F) {
	// Input bytes are consumed in (site, value) pairs, each synthesizing a
	// store into the program's own code image. The stores themselves live
	// in that image, so executing them decodes blocks that later writes
	// (including token writes when the low flag bit arms a code chunk)
	// must drop again.
	f.Add([]byte{0, 3, 0xAA, 9, 0x55})
	f.Add([]byte{1, 0, 0xFF})
	f.Add([]byte{2, 7, 0x01, 7, 0x02, 7, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		flags, data := data[0], data[1:]
		var prog []isa.Instr
		nStores := len(data) / 2
		if nStores > 24 {
			nStores = 24
		}
		// Final image length: 3 instrs per store plus an epilogue of 6.
		progLen := uint64(nStores*3 + 6)
		imgBytes := progLen * isa.InstrBytes
		for i := 0; i < nStores; i++ {
			site := uint64(data[2*i]) % imgBytes
			val := int64(data[2*i+1])
			size := uint8(1) << (uint(val) % 4)
			prog = append(prog,
				isa.Instr{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.CodeBase + site)},
				isa.Instr{Op: isa.OpMovI, Rd: 2, Imm: val},
				isa.Instr{Op: isa.OpStore, Rs: 1, Rt: 2, Size: size},
			)
		}
		base := int64(layout.CodeBase)
		// Epilogue: optionally arm a token-aligned chunk of the image, then
		// take one backward branch so already-decoded (and by now possibly
		// invalidated) blocks re-execute from fresh decodes.
		prog = append(prog,
			isa.Instr{Op: isa.OpMovI, Rd: 3, Imm: base},
			isa.Instr{Op: isa.OpArm, Rs: 3},
			isa.Instr{Op: isa.OpAddI, Rd: 4, Rs: 4, Imm: 1},
			isa.Instr{Op: isa.OpMovI, Rd: 5, Imm: 2},
			isa.Instr{Op: isa.OpBlt, Rs: 4, Rt: 5, Imm: base + int64(len(prog))*isa.InstrBytes},
			isa.Instr{Op: isa.OpHalt},
		)
		var mk mkCfg = plainCfg
		if flags&1 != 0 {
			mk = restCfg(int64(flags) + 100)
		}
		runDiff(t, mk, prog)
	})
}
