package sim

import (
	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/trace"
)

// Runtime micro-op helpers. Runtime services (allocators, interceptors) must
// route every memory touch and every meaningful unit of computation through
// these so their cost appears in the dynamic trace and flows through the
// pipeline and cache models exactly like user code. REST checks apply to
// runtime accesses too: the hardware cannot tell library code from program
// code — which is precisely the composability argument of §V-C.

// rtNextPC produces a synthetic PC within the runtime-code region for
// service id, cycling over a small footprint so runtime instruction fetch
// behaves like a resident library hot loop.
func (m *Machine) rtNextPC(id int64) uint64 {
	pc := RTCodeBase + uint64(id)*4096 + (m.rtPCCount%200)*isa.InstrBytes
	m.rtPCCount++
	return pc
}

// rtEmit appends a runtime micro-op.
func (m *Machine) rtEmit(e trace.Entry) {
	e.Kind = trace.KindRuntime
	m.RTOps++
	m.emit(e)
}

// RTLoad performs a checked runtime load of size bytes at addr, emitting a
// load micro-op. It returns the loaded value, or the REST exception if the
// access touched a token.
func (m *Machine) RTLoad(id int64, addr uint64, size uint8) (uint64, *core.Exception) {
	pc := m.rtNextPC(id)
	e := trace.Entry{PC: pc, Op: isa.OpLoad, Addr: addr, Size: size, Dst: RScr0, Src1: isa.NoReg, Src2: isa.NoReg}
	if exc := m.checkREST(addr, size, false, pc); exc != nil {
		e.Faults = true
		m.rtEmit(e)
		return 0, exc
	}
	m.rtEmit(e)
	return m.Mem.ReadUint(addr, size), nil
}

// RTStore performs a checked runtime store, emitting a store micro-op.
func (m *Machine) RTStore(id int64, addr uint64, size uint8, v uint64) *core.Exception {
	pc := m.rtNextPC(id)
	e := trace.Entry{PC: pc, Op: isa.OpStore, Addr: addr, Size: size, Dst: isa.NoReg, Src1: RScr0, Src2: isa.NoReg}
	if exc := m.checkREST(addr, size, true, pc); exc != nil {
		e.Faults = true
		m.rtEmit(e)
		return exc
	}
	m.rtEmit(e)
	m.Mem.WriteUint(addr, size, v)
	return nil
}

// RTArm executes an ARM on behalf of runtime code (the REST allocator).
func (m *Machine) RTArm(id int64, addr uint64) *core.Exception {
	pc := m.rtNextPC(id)
	w := uint8(m.cfg.Tracker.Register().Width())
	e := trace.Entry{PC: pc, Op: isa.OpArm, Addr: addr, Size: w, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if exc := m.cfg.Tracker.Arm(addr, pc); exc != nil {
		e.Faults = true
		m.rtEmit(e)
		return exc
	}
	m.rtEmit(e)
	return nil
}

// RTDisarm executes a DISARM on behalf of runtime code.
func (m *Machine) RTDisarm(id int64, addr uint64) *core.Exception {
	pc := m.rtNextPC(id)
	w := uint8(m.cfg.Tracker.Register().Width())
	e := trace.Entry{PC: pc, Op: isa.OpDisarm, Addr: addr, Size: w, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if exc := m.cfg.Tracker.Disarm(addr, pc); exc != nil {
		e.Faults = true
		m.rtEmit(e)
		return exc
	}
	m.rtEmit(e)
	return nil
}

// RTTouch emits a checked load or store micro-op for timing purposes without
// moving data. Runtime services use it when the functional mutation is
// performed through a higher-level facility (e.g. the shadow map) whose byte
// pattern an 8-byte store could not reproduce exactly.
func (m *Machine) RTTouch(id int64, addr uint64, size uint8, isStore bool) *core.Exception {
	pc := m.rtNextPC(id)
	op := isa.OpLoad
	dst, src := uint8(RScr0), uint8(isa.NoReg)
	if isStore {
		op = isa.OpStore
		dst, src = isa.NoReg, RScr0
	}
	e := trace.Entry{PC: pc, Op: op, Addr: addr, Size: size, Dst: dst, Src1: src, Src2: isa.NoReg}
	if exc := m.checkREST(addr, size, isStore, pc); exc != nil {
		e.Faults = true
		m.rtEmit(e)
		return exc
	}
	m.rtEmit(e)
	return nil
}

// RTALU emits n ALU micro-ops modelling runtime computation (pointer
// arithmetic, size-class math, loop control) that touches no memory.
func (m *Machine) RTALU(id int64, n int) {
	for i := 0; i < n; i++ {
		m.rtEmit(trace.Entry{PC: m.rtNextPC(id), Op: isa.OpAddI, Dst: RScr0, Src1: RScr0, Src2: isa.NoReg})
	}
}

// Arg returns runtime-call argument i (0..3).
func (m *Machine) Arg(i int) uint64 { return m.Regs[RArg0+i] }

// SetRet sets the runtime-call return value.
func (m *Machine) SetRet(v uint64) { m.Regs[RArg0] = v }

// HaltClean terminates the program as if it executed HALT (used by SvcExit).
func (m *Machine) HaltClean() { m.halted = true }
