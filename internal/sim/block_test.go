package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/layout"
	"rest/internal/mem"
	"rest/internal/obs"
	"rest/internal/trace"
)

// The sim-level differential wall for the decoded-block engine: every test
// here runs the same program under EngineRef and EngineBlocks over
// identically seeded (but independent) state and asserts that every
// observable — the full trace including Seq numbering, registers, PC,
// counters, memory digest, and the error/exception/violation verdict — is
// byte-identical. The harness-level engine differentials extend the same
// assertion to full workload sweeps; this file covers the simulator's
// corner semantics (faults, watchdogs, self-modifying writes, block
// boundaries) at a granularity where a divergence pinpoints the handler.

// mkCfg builds one Config per call so the two engines never share memory,
// trackers or probes.
type mkCfg func() Config

func plainCfg() Config { return Config{} }

func restCfg(seed int64) mkCfg {
	return func() Config {
		reg, err := core.NewTokenRegister(core.Width64, core.Secure, rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		m := mem.New()
		return Config{Mem: m, Tracker: core.NewTokenTracker(reg, m)}
	}
}

func withEngine(cfg Config, e Engine) Config {
	cfg.Engine = e
	return cfg
}

func newPair(t testing.TB, mk mkCfg, prog []isa.Instr) (ref, blk *Machine) {
	t.Helper()
	ref, err := New(withEngine(mk(), EngineRef), prog, 0)
	if err != nil {
		t.Fatalf("New(ref): %v", err)
	}
	blk, err = New(withEngine(mk(), EngineBlocks), prog, 0)
	if err != nil {
		t.Fatalf("New(blocks): %v", err)
	}
	return ref, blk
}

// errString canonicalizes an error for comparison (nil-safe).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// assertSameState compares every architectural observable of the two
// machines after their runs ended.
func assertSameState(t testing.TB, ref, blk *Machine) {
	t.Helper()
	if ref.Regs != blk.Regs {
		t.Errorf("registers diverge:\n ref=%v\n blk=%v", ref.Regs, blk.Regs)
	}
	if ref.PC != blk.PC {
		t.Errorf("PC diverges: ref=%#x blk=%#x", ref.PC, blk.PC)
	}
	if ref.UserInstrs != blk.UserInstrs {
		t.Errorf("UserInstrs diverges: ref=%d blk=%d", ref.UserInstrs, blk.UserInstrs)
	}
	if ref.RTOps != blk.RTOps {
		t.Errorf("RTOps diverges: ref=%d blk=%d", ref.RTOps, blk.RTOps)
	}
	if ref.Halted() != blk.Halted() {
		t.Errorf("halted diverges: ref=%v blk=%v", ref.Halted(), blk.Halted())
	}
	if got, want := errString(blk.Err()), errString(ref.Err()); got != want {
		t.Errorf("Err diverges: ref=%q blk=%q", want, got)
	}
	if !reflect.DeepEqual(ref.Exception(), blk.Exception()) {
		t.Errorf("exception diverges: ref=%v blk=%v", ref.Exception(), blk.Exception())
	}
	if !reflect.DeepEqual(ref.SWViolation(), blk.SWViolation()) {
		t.Errorf("violation diverges: ref=%v blk=%v", ref.SWViolation(), blk.SWViolation())
	}
	if rd, bd := ref.Mem.Digest(), blk.Mem.Digest(); rd != bd {
		t.Errorf("memory digest diverges: ref=%#x blk=%#x", rd, bd)
	}
}

// assertCacheCoherent proves no cached block could ever replay stale
// decodings: every retained entry must equal a fresh decode of the same
// instruction slot.
func assertCacheCoherent(t testing.TB, m *Machine) {
	t.Helper()
	if m.bc == nil {
		return
	}
	for idx, b := range m.bc.blocks {
		if b == nil {
			continue
		}
		for i := range b.entries {
			want := m.decodeEntry(idx + i)
			if !reflect.DeepEqual(b.entries[i], want) {
				t.Fatalf("stale cached entry at prog[%d] (block %d):\n cached=%+v\n  fresh=%+v",
					idx+i, idx, b.entries[i], want)
			}
		}
	}
}

// diffTraced drives both machines as trace readers and asserts identical
// streams and final state. Returns the blocks machine for extra checks.
func diffTraced(t testing.TB, mk mkCfg, prog []isa.Instr) *Machine {
	t.Helper()
	ref, blk := newPair(t, mk, prog)
	re := trace.Collect(ref)
	be := trace.Collect(blk)
	if len(re) != len(be) {
		t.Fatalf("trace length diverges: ref=%d blk=%d", len(re), len(be))
	}
	for i := range re {
		if re[i] != be[i] {
			t.Fatalf("trace entry %d diverges:\n ref=%+v\n blk=%+v", i, re[i], be[i])
		}
	}
	assertSameState(t, ref, blk)
	assertCacheCoherent(t, blk)
	return blk
}

// diffUntraced runs both machines through Run() — the block engine's
// untraced fast path — and asserts identical final state.
func diffUntraced(t testing.TB, mk mkCfg, prog []isa.Instr) *Machine {
	t.Helper()
	ref, blk := newPair(t, mk, prog)
	ref.Run()
	blk.Run()
	assertSameState(t, ref, blk)
	assertCacheCoherent(t, blk)
	return blk
}

func diffBoth(t *testing.T, mk mkCfg, prog []isa.Instr) *Machine {
	t.Helper()
	diffUntraced(t, mk, prog)
	return diffTraced(t, mk, prog)
}

func TestBlocksALUAndBranches(t *testing.T) {
	// A loop exercising every ALU shape, div/rem-by-zero semantics, shift
	// masking, writes to R0 (decode strength-reduces them to nops — the
	// trace must still carry the original op) and all branch directions.
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 0},        // i = 0
		{Op: isa.OpMovI, Rd: 2, Imm: 0},        // acc = 0
		{Op: isa.OpAddI, Rd: 2, Rs: 2, Imm: 3}, // loop body
		{Op: isa.OpMul, Rd: 3, Rs: 2, Rt: 2},
		{Op: isa.OpDiv, Rd: 4, Rs: 3, Rt: 1}, // div by zero on first pass
		{Op: isa.OpRem, Rd: 5, Rs: 3, Rt: 1},
		{Op: isa.OpShl, Rd: 6, Rs: 2, Rt: 3},    // shift count masked
		{Op: isa.OpShrI, Rd: 7, Rs: 6, Imm: 65}, // immediate shift masked
		{Op: isa.OpAdd, Rd: 0, Rs: 2, Rt: 3},    // write to R0: architectural nop
		{Op: isa.OpXor, Rd: 8, Rs: 6, Rt: 7},
		{Op: isa.OpAnd, Rd: 9, Rs: 8, Rt: 2},
		{Op: isa.OpOr, Rd: 10, Rs: 9, Rt: 5},
		{Op: isa.OpSub, Rd: 11, Rs: 10, Rt: 4},
		{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.OpMovI, Rd: 12, Imm: 10},
		{Op: isa.OpBlt, Rs: 1, Rt: 12, Imm: int64(layout.CodeBase + 2*isa.InstrBytes)},
		{Op: isa.OpMov, Rd: RRes, Rs: 11},
		{Op: isa.OpHalt},
	}
	blk := diffBoth(t, plainCfg, prog)
	if blk.bc.hits == 0 {
		t.Errorf("block cache saw no hits over a 10-iteration loop")
	}
}

func TestBlocksCallRet(t *testing.T) {
	base := uint64(layout.CodeBase)
	prog := []isa.Instr{
		{Op: isa.OpCall, Imm: int64(base + 4*isa.InstrBytes)}, // call f
		{Op: isa.OpMov, Rd: RRes, Rs: 1},
		{Op: isa.OpJmp, Imm: int64(base + 3*isa.InstrBytes)},
		{Op: isa.OpHalt},
		// f: r1 = 7 via callr-reachable code, then ret
		{Op: isa.OpMovI, Rd: 1, Imm: 7},
		{Op: isa.OpRet},
	}
	diffBoth(t, plainCfg, prog)
}

func TestBlocksMemoryAndStack(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpMovI, Rd: 2, Imm: 0x1122334455667788},
		{Op: isa.OpStore, Rs: 1, Rt: 2, Size: 8},
		{Op: isa.OpLoad, Rd: 3, Rs: 1, Size: 4},
		{Op: isa.OpStore, Rs: isa.RSP, Rt: 3, Imm: -8, Size: 8},
		{Op: isa.OpLoad, Rd: 4, Rs: isa.RSP, Imm: -8, Size: 2},
		{Op: isa.OpLoad, Rd: 0, Rs: 1, Size: 1}, // load to R0: check+trace still happen
		{Op: isa.OpMov, Rd: RRes, Rs: 4},
		{Op: isa.OpHalt},
	}
	diffBoth(t, plainCfg, prog)
	diffBoth(t, restCfg(11), prog)
}

func TestBlocksRESTFaults(t *testing.T) {
	arm := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpLoad, Rd: 2, Rs: 1, Imm: 16, Size: 8}, // token hit -> fault
		{Op: isa.OpHalt},
	}
	blk := diffBoth(t, restCfg(3), arm)
	if blk.Exception() == nil {
		t.Fatalf("expected a REST exception")
	}

	disarmUnarmed := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpDisarm, Rs: 1}, // nothing armed -> fault
		{Op: isa.OpHalt},
	}
	diffBoth(t, restCfg(4), disarmUnarmed)

	storeFault := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpStore, Rs: 1, Rt: 1, Imm: 8, Size: 8},
		{Op: isa.OpHalt},
	}
	diffBoth(t, restCfg(5), storeFault)
}

func TestBlocksArmWithoutTracker(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
		{Op: isa.OpArm, Rs: 1},
		{Op: isa.OpHalt},
	}
	blk := diffBoth(t, plainCfg, prog)
	if blk.Err() == nil {
		t.Fatalf("expected a run error for ARM on a non-REST machine")
	}
	prog[1].Op = isa.OpDisarm
	diffBoth(t, plainCfg, prog)
}

func TestBlocksPCOutsideProgram(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpJmp, Imm: 0x10}, // wild jump off the image
		{Op: isa.OpHalt},
	}
	blk := diffBoth(t, plainCfg, prog)
	if blk.Err() == nil {
		t.Fatalf("expected PC-outside-program error")
	}
	// Misaligned PC and falling off the end of the program.
	diffBoth(t, plainCfg, []isa.Instr{
		{Op: isa.OpJmp, Imm: int64(layout.CodeBase + 8)},
		{Op: isa.OpHalt},
	})
	diffBoth(t, plainCfg, []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 1},
		{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1}, // last instr, no halt
	})
}

func TestBlocksRuntimeCalls(t *testing.T) {
	mk := func(fn func(id int64, m *Machine) error) mkCfg {
		return func() Config {
			return Config{Runtime: &stubRuntime{fn: fn}}
		}
	}
	// Runtime service that emits micro-ops of every RT kind.
	busy := func(id int64, m *Machine) error {
		m.RTALU(id, 3)
		if exc := m.RTStore(id, layout.GlobalBase, 8, 0xDEAD); exc != nil {
			return exc
		}
		if _, exc := m.RTLoad(id, layout.GlobalBase, 8); exc != nil {
			return exc
		}
		m.SetRet(uint64(id) * 10)
		return nil
	}
	prog := []isa.Instr{
		{Op: isa.OpRTCall, Imm: 5},
		{Op: isa.OpMov, Rd: RRes, Rs: RArg0},
		{Op: isa.OpRTCall, Imm: 2},
		{Op: isa.OpHalt},
	}
	diffBoth(t, mk(busy), prog)

	// Violation, exception and plain-error returns from the runtime.
	viol := func(id int64, m *Machine) error {
		return &Violation{Tool: "asan", What: "stub", Addr: 4, PC: m.PC}
	}
	diffBoth(t, mk(viol), prog)
	plainErr := func(id int64, m *Machine) error { return errors.New("stub runtime failure") }
	diffBoth(t, mk(plainErr), prog)

	// No runtime at all: RTCall is a run error on both engines.
	diffBoth(t, plainCfg, prog)
}

func TestBlocksSelfModifyingStore(t *testing.T) {
	// The program overwrites its own image mid-run. Both engines keep
	// executing the original instruction slice (execution reads the
	// decoded program, not the memory image — a simulator convention the
	// engines must share), and the block engine must additionally drop the
	// decoded blocks covering the written bytes.
	target := int64(layout.CodeBase + 6*isa.InstrBytes)
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: target},
		{Op: isa.OpMovI, Rd: 2, Imm: -1},
		{Op: isa.OpStore, Rs: 1, Rt: 2, Size: 8}, // clobber prog[6]'s encoding
		{Op: isa.OpMovI, Rd: 3, Imm: 5},
		{Op: isa.OpAddI, Rd: 3, Rs: 3, Imm: 1},
		{Op: isa.OpMov, Rd: RRes, Rs: 3},
		{Op: isa.OpHalt}, // the clobbered slot: still executes as HALT
	}
	blk := diffBoth(t, plainCfg, prog)
	if blk.bc.invalidations == 0 {
		t.Errorf("store into the code image did not invalidate any block")
	}
	if blk.Checksum() != 6 {
		t.Errorf("checksum = %d, want 6", blk.Checksum())
	}
}

func TestBlocksArmIntoCodeImage(t *testing.T) {
	// ARM writes a token into the code image over a block that has already
	// been decoded and executed: the tracker's memory write must funnel
	// through the watch and drop the covering block, and the verdicts must
	// stay identical. The armed chunk (64-byte aligned => instruction index
	// 4) sits inside the block starting at index 3, which the initial jump
	// executes (and therefore decodes) before the ARM lands on it.
	base := int64(layout.CodeBase)
	prog := []isa.Instr{
		{Op: isa.OpJmp, Imm: base + 3*isa.InstrBytes}, // 0: decode [3..5] first
		{Op: isa.OpNop}, // 1
		{Op: isa.OpJmp, Imm: base + 6*isa.InstrBytes},         // 2
		{Op: isa.OpMovI, Rd: 3, Imm: 1},                       // 3: block covering idx 4
		{Op: isa.OpNop},                                       // 4: the armed chunk
		{Op: isa.OpJmp, Imm: base + 1*isa.InstrBytes},         // 5
		{Op: isa.OpMovI, Rd: 1, Imm: base + 4*isa.InstrBytes}, // 6
		{Op: isa.OpArm, Rs: 1},                                // 7: clobbers idx 4..7
		{Op: isa.OpMovI, Rd: 2, Imm: 9},                       // 8
		{Op: isa.OpMov, Rd: RRes, Rs: 2},                      // 9
		{Op: isa.OpHalt},                                      // 10
	}
	blk := diffBoth(t, restCfg(7), prog)
	if blk.Exception() != nil || blk.Err() != nil {
		t.Fatalf("unexpected stop: exc=%v err=%v", blk.Exception(), blk.Err())
	}
	if blk.bc.invalidations == 0 {
		t.Errorf("token write over a decoded block did not invalidate it")
	}
}

func TestBlocksInstructionBudgetMidBlock(t *testing.T) {
	// A straight-line run longer than the budget: the watchdog must fire
	// at the identical instruction count, with the identical partial
	// trace, on both engines — the budget boundary lands mid-block.
	prog := make([]isa.Instr, 0, 12)
	for i := 0; i < 10; i++ {
		prog = append(prog, isa.Instr{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1})
	}
	prog = append(prog, isa.Instr{Op: isa.OpHalt})
	for _, budget := range []uint64{1, 3, 7, 10, 11} {
		mk := func() Config { return Config{MaxInstructions: budget} }
		blk := diffBoth(t, mk, prog)
		var be *BudgetExceededError
		if budget <= 10 {
			if !errors.As(blk.Err(), &be) || be.Instrs != budget {
				t.Errorf("budget %d: err = %v, want BudgetExceededError at %d instrs",
					budget, blk.Err(), budget)
			}
		} else if blk.Err() != nil {
			t.Errorf("budget %d: unexpected error %v", budget, blk.Err())
		}
	}
}

func TestBlocksDeadlineAbort(t *testing.T) {
	// An already-expired deadline aborts both engines at the first stride
	// point (instruction 0) with the identical error.
	mk := func() Config { return Config{Deadline: time.Now().Add(-time.Hour)} }
	prog := []isa.Instr{
		{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.OpHalt},
	}
	blk := diffBoth(t, mk, prog)
	var be *BudgetExceededError
	if !errors.As(blk.Err(), &be) || be.Resource != "wall-clock" {
		t.Fatalf("err = %v, want wall-clock BudgetExceededError", blk.Err())
	}
}

func TestBlocksMixedNextThenRun(t *testing.T) {
	// Drain a few entries through the traced path, then finish with Run():
	// the block engine must pick up exactly where the traced run left off.
	prog := []isa.Instr{
		{Op: isa.OpMovI, Rd: 1, Imm: 2},
		{Op: isa.OpMovI, Rd: 2, Imm: 3},
		{Op: isa.OpMul, Rd: 3, Rs: 1, Rt: 2},
		{Op: isa.OpMov, Rd: RRes, Rs: 3},
		{Op: isa.OpHalt},
	}
	ref, blk := newPair(t, plainCfg, prog)
	for i := 0; i < 2; i++ {
		re, rok := ref.Next()
		be, bok := blk.Next()
		if rok != bok || re != be {
			t.Fatalf("entry %d diverges: ref=%+v(%v) blk=%+v(%v)", i, re, rok, be, bok)
		}
	}
	ref.Run()
	blk.Run()
	assertSameState(t, ref, blk)
	if blk.Checksum() != 6 {
		t.Errorf("checksum = %d, want 6", blk.Checksum())
	}
}

func TestBlockCacheCountersFlushToRegistry(t *testing.T) {
	// sim.blockcache.* counters appear in the registry only when the block
	// engine ran; the reference engine's snapshot carries no such rows.
	run := func(e Engine) map[string]uint64 {
		reg := obs.NewRegistry()
		cfg := Config{Probes: NewProbes(reg), Engine: e}
		prog := []isa.Instr{
			{Op: isa.OpMovI, Rd: 1, Imm: 1},
			{Op: isa.OpHalt},
		}
		m, err := New(cfg, prog, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		out := make(map[string]uint64)
		for _, mt := range reg.Snapshot() {
			if mt.Type == "counter" {
				out[mt.Name] = mt.Value
			}
		}
		return out
	}
	refSnap := run(EngineRef)
	blkSnap := run(EngineBlocks)
	if _, ok := refSnap["sim.blockcache.misses"]; ok {
		t.Errorf("reference engine registered blockcache counters: %v", refSnap)
	}
	if n, ok := blkSnap["sim.blockcache.misses"]; !ok || n == 0 {
		t.Errorf("block engine did not publish blockcache misses: %v", blkSnap)
	}
	// Everything except the blockcache rows must match between engines.
	for k, v := range refSnap {
		if blkSnap[k] != v {
			t.Errorf("counter %s diverges: ref=%d blk=%d", k, v, blkSnap[k])
		}
	}
}

// TestBlocksWatchdogLeavesCacheConsistent is the regression test for the
// mid-run-error class (ISSUE 6 satellite: PR 5's decoder nil-deref
// pattern): an error that stops execution mid-block — watchdog, fault, or
// runtime failure — must leave the block cache coherent and the machine
// politely halted (further Next() calls return false, never panic), so the
// harness can degrade the cell to a hole.
func TestBlocksWatchdogLeavesCacheConsistent(t *testing.T) {
	progs := map[string][]isa.Instr{
		"budget": func() []isa.Instr {
			var p []isa.Instr
			for i := 0; i < 20; i++ {
				p = append(p, isa.Instr{Op: isa.OpAddI, Rd: 1, Rs: 1, Imm: 1})
			}
			return append(p, isa.Instr{Op: isa.OpHalt})
		}(),
		"fault": {
			{Op: isa.OpMovI, Rd: 1, Imm: int64(layout.GlobalBase)},
			{Op: isa.OpArm, Rs: 1},
			{Op: isa.OpLoad, Rd: 2, Rs: 1, Imm: 8, Size: 8},
			{Op: isa.OpHalt},
		},
		"wild-pc": {
			{Op: isa.OpJmp, Imm: 0},
		},
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			var cfg Config
			if name == "fault" {
				cfg = restCfg(9)()
			} else if name == "budget" {
				cfg = Config{MaxInstructions: 5}
			}
			cfg.Engine = EngineBlocks
			m, err := New(cfg, prog, 0)
			if err != nil {
				t.Fatal(err)
			}
			m.Run()
			if !m.Halted() {
				t.Fatalf("machine did not halt")
			}
			assertCacheCoherent(t, m)
			// The machine stays quiescent: no panic, no more entries.
			for i := 0; i < 3; i++ {
				if _, ok := m.Next(); ok {
					t.Fatalf("halted machine produced an entry")
				}
			}
		})
	}
}

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineAuto, true},
		{"auto", EngineAuto, true},
		{"ref", EngineRef, true},
		{"blocks", EngineBlocks, true},
		{"fast", 0, false},
	}
	for _, c := range cases {
		got, err := ParseEngine(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if EngineAuto.resolve() != EngineBlocks {
		t.Errorf("EngineAuto must resolve to EngineBlocks")
	}
	for _, e := range []Engine{EngineAuto, EngineRef, EngineBlocks} {
		if e.String() == "" {
			t.Errorf("engine %d has empty name", e)
		}
	}
}
