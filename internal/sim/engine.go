package sim

import "fmt"

// Engine selects the execution machinery behind a Machine. Both engines
// implement identical architectural semantics — every trace entry, register
// value, memory byte, counter and fault verdict is byte-identical between
// them — so the choice is purely a speed/simplicity trade-off. The
// differential test wall (sim block tests, harness engine differentials,
// the block fuzzers) pins the equivalence; any change to either engine must
// keep it green.
type Engine uint8

const (
	// EngineAuto resolves to the default engine, currently EngineBlocks.
	// The zero value, so existing callers transparently pick up the fast
	// engine while -engine=ref stays one flag away.
	EngineAuto Engine = iota
	// EngineRef is the single-step reference interpreter: one
	// fetch/decode/switch per instruction. It is the semantic ground truth
	// and is kept unoptimized on purpose so it stays auditable.
	EngineRef
	// EngineBlocks is the decoded-basic-block engine: straight-line runs
	// are pre-decoded once into dense handler/operand entries and then
	// dispatched in a tight loop, with precise invalidation on writes into
	// the code image (see block.go).
	EngineBlocks
)

// String names the engine the way the -engine flag spells it.
func (e Engine) String() string {
	switch e {
	case EngineRef:
		return "ref"
	case EngineBlocks:
		return "blocks"
	default:
		return "auto"
	}
}

// ParseEngine parses a -engine flag value. The empty string and "auto"
// select EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "ref":
		return EngineRef, nil
	case "blocks":
		return EngineBlocks, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (valid: ref, blocks, auto)", s)
}

// resolve maps EngineAuto to the concrete default engine.
func (e Engine) resolve() Engine {
	if e == EngineAuto {
		return EngineBlocks
	}
	return e
}
