package sim

import (
	"fmt"

	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/trace"
)

// The decoded-basic-block engine (EngineBlocks).
//
// The reference interpreter pays a fetch (PC arithmetic + bounds check), a
// full operand extraction (DstReg/SrcRegs) and a 40-way opcode switch for
// every dynamic instruction. This engine pays those costs once per static
// instruction: straight-line runs are decoded into dense []bEntry slices
// whose entries carry a pre-resolved handler code, pre-extracted operands
// and a pre-built trace.Entry template, then executed in a tight dispatch
// loop. Blocks terminate at every opcode whose successor is dynamic or
// whose effects can reach the code image (isa.Op.EndsBlock: branches, HALT,
// RTCALL, ARM, DISARM) and at maxBlockLen.
//
// Equivalence contract: every observable — trace entries (including Seq
// numbering), registers, memory, counters, watchdog errors and fault
// verdicts — is byte-identical to the reference engine. Two properties make
// that hold by construction:
//
//  1. Blocks decode from m.prog, the same immutable instruction slice the
//     reference engine fetches from. A write into the code image therefore
//     cannot make the two engines execute different instructions: both keep
//     executing the original program (DESIGN.md documents this simulator
//     convention). Invalidation below is cache hygiene — it guarantees a
//     decoded entry is never retained for a region whose backing image
//     changed — not a correctness crutch.
//  2. The watchdog budget is checked before every entry, exactly where the
//     reference engine checks it between steps, so a budget abort fires at
//     the identical instruction count with the pending queue in the
//     identical state.
//
// Invalidation: a Machine with this engine installs a mem.Watch over the
// code image [base, base+len(prog)*16). Any write overlapping it — a user
// store, a runtime-service store, or a token write from tracker Arm/Disarm
// — drops every cached block overlapping the written bytes and bumps the
// cache generation. The dispatch loop re-checks the generation between
// entries and bails back to a fresh lookup, so a mid-block invalidation can
// never keep executing a dropped block.

// maxBlockLen caps decoded block length. It bounds both the pending-queue
// growth per dispatch and the backward scan an invalidation must make to
// find blocks overlapping a written range.
const maxBlockLen = 64

// exec is a pre-resolved handler code: the decode-time residue of the
// reference interpreter's opcode switch. Decode strength-reduces where the
// static operands allow it (ALU writes to R0 become xNop; a machine without
// a tracker resolves loads/stores to unchecked variants and ARM/DISARM to
// their fault handlers; a machine without a runtime resolves RTCALL the
// same way).
type exec uint8

const (
	xNop exec = iota
	xHalt
	xMovI
	xMov
	xAdd
	xSub
	xMul
	xDiv
	xRem
	xAnd
	xOr
	xXor
	xShl
	xShr
	xAddI
	xMulI
	xAndI
	xOrI
	xXorI
	xShlI
	xShrI
	xLoad      // token-checked (tracker present)
	xLoadFast  // unchecked (no tracker)
	xStore     // token-checked
	xStoreFast // unchecked
	xBeq
	xBne
	xBlt
	xBge
	xBltu
	xBgeu
	xJmp
	xCall
	xCallR
	xRet
	xArm
	xDisarm
	xArmNoTracker
	xDisarmNoTracker
	xRTCall
	xRTCallNoRuntime
	xBadOp
)

// bEntry is one decoded instruction: handler code, extracted operands, and
// the trace-entry template with every statically-known field (PC, Op, Kind,
// Dst, Src1, Src2, and Size for ARM/DISARM) pre-filled. Handlers copy the
// template and patch only the dynamic fields (Addr/Size/Taken/Target/
// Faults) before emitting.
type bEntry struct {
	tmpl trace.Entry
	exec exec
	rd   uint8
	rs   uint8
	rt   uint8
	size uint8
	imm  uint64
}

// block is one decoded straight-line run.
type block struct {
	entries []bEntry
}

// blockCache maps a starting instruction index to its decoded block. A
// block decoded at index k covers prog[k : k+len(entries)); suffix blocks
// (a jump landing mid-run) decode their own entries, so slots are
// independent.
type blockCache struct {
	blocks []*block
	// gen counts invalidations; the dispatch loop snapshots it and bails
	// to a fresh lookup when it moves mid-block.
	gen uint64

	// Counters, published as sim.blockcache.* by FlushProbes (only when
	// this engine ran, so reference-engine metric snapshots are unchanged).
	hits          uint64
	misses        uint64
	invalidations uint64
	decodedBytes  uint64
}

// invalidate drops every cached block overlapping the written byte range
// [lo, hi) and bumps the generation. base is the code image base address.
// Only called for writes overlapping the code image (the mem.Watch bounds
// guarantee it), so the index math cannot underflow past the clamps.
func (bc *blockCache) invalidate(base, lo, hi uint64) {
	if hi <= base {
		return
	}
	loIdx := 0
	if lo > base {
		loIdx = int((lo - base) / isa.InstrBytes)
	}
	hiIdx := int((hi - 1 - base) / isa.InstrBytes)
	if hiIdx >= len(bc.blocks) {
		hiIdx = len(bc.blocks) - 1
	}
	start := loIdx - maxBlockLen + 1
	if start < 0 {
		start = 0
	}
	for s := start; s <= hiIdx; s++ {
		if b := bc.blocks[s]; b != nil && s+len(b.entries) > loIdx {
			bc.blocks[s] = nil
			bc.invalidations++
		}
	}
	bc.gen++
}

// execFor resolves an instruction to its handler code at decode time.
func (m *Machine) execFor(in isa.Instr) exec {
	// Pure ALU writes to the hardwired zero register are architectural
	// no-ops: operand reads have no side effects and the write is
	// discarded. (Loads are excluded — they must still perform the token
	// check and report Addr in the trace.)
	aluToZero := in.Rd == isa.RZero
	switch in.Op {
	case isa.OpNop:
		return xNop
	case isa.OpHalt:
		return xHalt
	case isa.OpMovI:
		if aluToZero {
			return xNop
		}
		return xMovI
	case isa.OpMov:
		if aluToZero {
			return xNop
		}
		return xMov
	case isa.OpAdd:
		if aluToZero {
			return xNop
		}
		return xAdd
	case isa.OpSub:
		if aluToZero {
			return xNop
		}
		return xSub
	case isa.OpMul:
		if aluToZero {
			return xNop
		}
		return xMul
	case isa.OpDiv:
		if aluToZero {
			return xNop
		}
		return xDiv
	case isa.OpRem:
		if aluToZero {
			return xNop
		}
		return xRem
	case isa.OpAnd:
		if aluToZero {
			return xNop
		}
		return xAnd
	case isa.OpOr:
		if aluToZero {
			return xNop
		}
		return xOr
	case isa.OpXor:
		if aluToZero {
			return xNop
		}
		return xXor
	case isa.OpShl:
		if aluToZero {
			return xNop
		}
		return xShl
	case isa.OpShr:
		if aluToZero {
			return xNop
		}
		return xShr
	case isa.OpAddI:
		if aluToZero {
			return xNop
		}
		return xAddI
	case isa.OpMulI:
		if aluToZero {
			return xNop
		}
		return xMulI
	case isa.OpAndI:
		if aluToZero {
			return xNop
		}
		return xAndI
	case isa.OpOrI:
		if aluToZero {
			return xNop
		}
		return xOrI
	case isa.OpXorI:
		if aluToZero {
			return xNop
		}
		return xXorI
	case isa.OpShlI:
		if aluToZero {
			return xNop
		}
		return xShlI
	case isa.OpShrI:
		if aluToZero {
			return xNop
		}
		return xShrI
	case isa.OpLoad:
		if m.cfg.Tracker == nil {
			return xLoadFast
		}
		return xLoad
	case isa.OpStore:
		if m.cfg.Tracker == nil {
			return xStoreFast
		}
		return xStore
	case isa.OpBeq:
		return xBeq
	case isa.OpBne:
		return xBne
	case isa.OpBlt:
		return xBlt
	case isa.OpBge:
		return xBge
	case isa.OpBltu:
		return xBltu
	case isa.OpBgeu:
		return xBgeu
	case isa.OpJmp:
		return xJmp
	case isa.OpCall:
		return xCall
	case isa.OpCallR:
		return xCallR
	case isa.OpRet:
		return xRet
	case isa.OpArm:
		if m.cfg.Tracker == nil {
			return xArmNoTracker
		}
		return xArm
	case isa.OpDisarm:
		if m.cfg.Tracker == nil {
			return xDisarmNoTracker
		}
		return xDisarm
	case isa.OpRTCall:
		if m.cfg.Runtime == nil {
			return xRTCallNoRuntime
		}
		return xRTCall
	default:
		return xBadOp
	}
}

// decodeEntry decodes prog[j] into a bEntry (shared by the engine and the
// fuzz/consistency tests, which re-decode to prove cached blocks stale-free).
func (m *Machine) decodeEntry(j int) bEntry {
	in := m.prog[j]
	en := bEntry{
		exec: m.execFor(in),
		rd:   in.Rd,
		rs:   in.Rs,
		rt:   in.Rt,
		size: in.Size,
		imm:  uint64(in.Imm),
	}
	pc := m.base + uint64(j)*isa.InstrBytes
	en.tmpl = trace.Entry{PC: pc, Op: in.Op, Kind: trace.KindUser, Dst: in.DstReg()}
	en.tmpl.Src1, en.tmpl.Src2 = in.SrcRegs()
	if (in.Op == isa.OpArm || in.Op == isa.OpDisarm) && m.cfg.Tracker != nil {
		en.tmpl.Size = uint8(m.cfg.Tracker.Register().Width())
	}
	return en
}

// decodeBlock decodes the straight-line run starting at instruction index
// idx and installs it in the cache.
func (m *Machine) decodeBlock(idx int) *block {
	b := &block{entries: make([]bEntry, 0, 8)}
	for j := idx; j < len(m.prog) && len(b.entries) < maxBlockLen; j++ {
		b.entries = append(b.entries, m.decodeEntry(j))
		if m.prog[j].Op.EndsBlock() {
			break
		}
	}
	m.bc.blocks[idx] = b
	m.bc.misses++
	m.bc.decodedBytes += uint64(len(b.entries)) * isa.InstrBytes
	return b
}

// pcIndex maps the current PC to an instruction index, halting with the
// reference engine's exact fetch error when the PC left the program.
func (m *Machine) pcIndex() (int, bool) {
	idx := (m.PC - m.base) / isa.InstrBytes
	if m.PC < m.base || idx >= uint64(len(m.prog)) || (m.PC-m.base)%isa.InstrBytes != 0 {
		m.halted = true
		m.runErr = fmt.Errorf("sim: PC %#x outside program", m.PC)
		return 0, false
	}
	return int(idx), true
}

// stepBlocks is the decoded-block engine's unit of progress: look up (or
// decode) the block at PC and dispatch its entries until the block ends,
// something halts/faults, the budget is about to be exceeded, or the cache
// generation moves (mid-block invalidation). The caller has already
// performed the pre-step watchdog checks for the first entry; the loop
// repeats them before every subsequent entry so stops land on the exact
// instruction boundaries the reference engine stops on. Every early return
// leaves m.PC at the next unexecuted instruction (or at the faulting one,
// matching the reference engine's no-advance-on-fault rule).
func (m *Machine) stepBlocks() {
	idx, ok := m.pcIndex()
	if !ok {
		return
	}
	b := m.bc.blocks[idx]
	if b == nil {
		b = m.decodeBlock(idx)
	} else {
		m.bc.hits++
	}
	gen := m.bc.gen
	n := len(b.entries)
	for i := 0; i < n; i++ {
		if !m.execEntry(&b.entries[i]) {
			return
		}
		if i+1 < n {
			// Pre-step checks for the next entry, mirroring Next()'s
			// order. The deadline itself is polled by the caller (after
			// the pending queue drains, as in the reference engine); here
			// we only stop at its stride points. execEntry guarantees
			// progress, so stopping can never livelock.
			if m.UserInstrs >= m.cfg.MaxInstructions {
				m.PC = b.entries[i+1].tmpl.PC
				return
			}
			if m.hasDeadline && m.UserInstrs%deadlineCheckStride == 0 {
				m.PC = b.entries[i+1].tmpl.PC
				return
			}
			if m.bc.gen != gen {
				m.PC = b.entries[i+1].tmpl.PC
				return
			}
		}
	}
	// Fell off the end of a block whose last entry is not a terminator
	// (end of program or a maxBlockLen split): continue at the next
	// sequential instruction.
	m.PC = b.entries[n-1].tmpl.PC + isa.InstrBytes
}

// execEntry dispatches one decoded entry. It returns true when execution
// fell through to the next sequential entry; false ends the block (control
// transfer, halt, fault, or error). Fall-through handlers do not update
// m.PC — the dispatch loop materializes it only at stop points — but every
// false return leaves m.PC exactly where the reference engine would.
func (m *Machine) execEntry(en *bEntry) bool {
	m.UserInstrs++
	switch en.exec {
	case xNop:
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xHalt:
		m.halted = true
		if m.traceOn {
			m.emit(en.tmpl)
		}
		m.PC = en.tmpl.PC + isa.InstrBytes
		return false
	case xMovI:
		m.Regs[en.rd] = en.imm
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xMov:
		m.Regs[en.rd] = m.Regs[en.rs]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xAdd:
		m.Regs[en.rd] = m.Regs[en.rs] + m.Regs[en.rt]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xSub:
		m.Regs[en.rd] = m.Regs[en.rs] - m.Regs[en.rt]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xMul:
		m.Regs[en.rd] = m.Regs[en.rs] * m.Regs[en.rt]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xDiv:
		if d := m.Regs[en.rt]; d == 0 {
			m.Regs[en.rd] = ^uint64(0)
		} else {
			m.Regs[en.rd] = m.Regs[en.rs] / d
		}
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xRem:
		if d := m.Regs[en.rt]; d == 0 {
			m.Regs[en.rd] = m.Regs[en.rs]
		} else {
			m.Regs[en.rd] = m.Regs[en.rs] % d
		}
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xAnd:
		m.Regs[en.rd] = m.Regs[en.rs] & m.Regs[en.rt]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xOr:
		m.Regs[en.rd] = m.Regs[en.rs] | m.Regs[en.rt]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xXor:
		m.Regs[en.rd] = m.Regs[en.rs] ^ m.Regs[en.rt]
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xShl:
		m.Regs[en.rd] = m.Regs[en.rs] << (m.Regs[en.rt] & 63)
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xShr:
		m.Regs[en.rd] = m.Regs[en.rs] >> (m.Regs[en.rt] & 63)
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xAddI:
		m.Regs[en.rd] = m.Regs[en.rs] + en.imm
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xMulI:
		m.Regs[en.rd] = m.Regs[en.rs] * en.imm
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xAndI:
		m.Regs[en.rd] = m.Regs[en.rs] & en.imm
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xOrI:
		m.Regs[en.rd] = m.Regs[en.rs] | en.imm
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xXorI:
		m.Regs[en.rd] = m.Regs[en.rs] ^ en.imm
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xShlI:
		m.Regs[en.rd] = m.Regs[en.rs] << (en.imm & 63)
		if m.traceOn {
			m.emit(en.tmpl)
		}
	case xShrI:
		m.Regs[en.rd] = m.Regs[en.rs] >> (en.imm & 63)
		if m.traceOn {
			m.emit(en.tmpl)
		}

	case xLoad:
		addr := m.Regs[en.rs] + en.imm
		if exc := m.cfg.Tracker.CheckAccess(addr, en.size, false, en.tmpl.PC); exc != nil {
			m.PC = en.tmpl.PC
			m.raise(exc)
			if m.traceOn {
				e := en.tmpl
				e.Addr, e.Size, e.Faults = addr, en.size, true
				m.emit(e)
			}
			return false
		}
		v := m.Mem.ReadUint(addr, en.size)
		if en.rd != isa.RZero {
			m.Regs[en.rd] = v
		}
		if m.traceOn {
			e := en.tmpl
			e.Addr, e.Size = addr, en.size
			m.emit(e)
		}
	case xLoadFast:
		addr := m.Regs[en.rs] + en.imm
		v := m.Mem.ReadUint(addr, en.size)
		if en.rd != isa.RZero {
			m.Regs[en.rd] = v
		}
		if m.traceOn {
			e := en.tmpl
			e.Addr, e.Size = addr, en.size
			m.emit(e)
		}
	case xStore:
		addr := m.Regs[en.rs] + en.imm
		if exc := m.cfg.Tracker.CheckAccess(addr, en.size, true, en.tmpl.PC); exc != nil {
			m.PC = en.tmpl.PC
			m.raise(exc)
			if m.traceOn {
				e := en.tmpl
				e.Addr, e.Size, e.Faults = addr, en.size, true
				m.emit(e)
			}
			return false
		}
		m.Mem.WriteUint(addr, en.size, m.Regs[en.rt])
		if m.traceOn {
			e := en.tmpl
			e.Addr, e.Size = addr, en.size
			m.emit(e)
		}
	case xStoreFast:
		addr := m.Regs[en.rs] + en.imm
		m.Mem.WriteUint(addr, en.size, m.Regs[en.rt])
		if m.traceOn {
			e := en.tmpl
			e.Addr, e.Size = addr, en.size
			m.emit(e)
		}

	case xBeq:
		m.branchTo(en, m.Regs[en.rs] == m.Regs[en.rt])
		return false
	case xBne:
		m.branchTo(en, m.Regs[en.rs] != m.Regs[en.rt])
		return false
	case xBlt:
		m.branchTo(en, int64(m.Regs[en.rs]) < int64(m.Regs[en.rt]))
		return false
	case xBge:
		m.branchTo(en, int64(m.Regs[en.rs]) >= int64(m.Regs[en.rt]))
		return false
	case xBltu:
		m.branchTo(en, m.Regs[en.rs] < m.Regs[en.rt])
		return false
	case xBgeu:
		m.branchTo(en, m.Regs[en.rs] >= m.Regs[en.rt])
		return false
	case xJmp:
		if m.traceOn {
			e := en.tmpl
			e.Taken, e.Target = true, en.imm
			m.emit(e)
		}
		m.PC = en.imm
		return false
	case xCall:
		m.Regs[isa.RRA] = en.tmpl.PC + isa.InstrBytes
		if m.traceOn {
			e := en.tmpl
			e.Taken, e.Target = true, en.imm
			m.emit(e)
		}
		m.PC = en.imm
		return false
	case xCallR:
		tgt := m.Regs[en.rs]
		m.Regs[isa.RRA] = en.tmpl.PC + isa.InstrBytes
		if m.traceOn {
			e := en.tmpl
			e.Taken, e.Target = true, tgt
			m.emit(e)
		}
		m.PC = tgt
		return false
	case xRet:
		tgt := m.Regs[isa.RRA]
		if m.traceOn {
			e := en.tmpl
			e.Taken, e.Target = true, tgt
			m.emit(e)
		}
		m.PC = tgt
		return false

	case xArm:
		addr := m.Regs[en.rs] + en.imm
		if exc := m.cfg.Tracker.Arm(addr, en.tmpl.PC); exc != nil {
			m.PC = en.tmpl.PC
			m.raise(exc)
			if m.traceOn {
				e := en.tmpl
				e.Addr, e.Faults = addr, true
				m.emit(e)
			}
			return false
		}
		if m.traceOn {
			e := en.tmpl
			e.Addr = addr
			m.emit(e)
		}
		m.PC = en.tmpl.PC + isa.InstrBytes
		return false
	case xDisarm:
		addr := m.Regs[en.rs] + en.imm
		if exc := m.cfg.Tracker.Disarm(addr, en.tmpl.PC); exc != nil {
			m.PC = en.tmpl.PC
			m.raise(exc)
			if m.traceOn {
				e := en.tmpl
				e.Addr, e.Faults = addr, true
				m.emit(e)
			}
			return false
		}
		if m.traceOn {
			e := en.tmpl
			e.Addr = addr
			m.emit(e)
		}
		m.PC = en.tmpl.PC + isa.InstrBytes
		return false
	case xArmNoTracker:
		m.PC = en.tmpl.PC
		m.runErr = fmt.Errorf("sim: ARM executed on non-REST machine at pc=%#x", en.tmpl.PC)
		m.halted = true
		return false
	case xDisarmNoTracker:
		m.PC = en.tmpl.PC
		m.runErr = fmt.Errorf("sim: DISARM executed on non-REST machine at pc=%#x", en.tmpl.PC)
		m.halted = true
		return false

	case xRTCall:
		if m.traceOn {
			m.emit(en.tmpl) // the call instruction itself
		}
		m.PC = en.tmpl.PC + isa.InstrBytes
		if err := m.cfg.Runtime.Call(int64(en.imm), m); err != nil {
			if v, ok := err.(*Violation); ok {
				m.violation = v
				if p := m.cfg.Probes; p != nil {
					p.SWViolations.Inc()
				}
			} else if exc, ok := err.(*core.Exception); ok {
				m.raise(exc)
			} else {
				m.runErr = err
			}
			m.halted = true
		}
		return false
	case xRTCallNoRuntime:
		m.PC = en.tmpl.PC
		m.runErr = fmt.Errorf("sim: RTCall %d with no runtime at pc=%#x", int64(en.imm), en.tmpl.PC)
		m.halted = true
		return false

	default:
		m.PC = en.tmpl.PC
		m.runErr = fmt.Errorf("sim: unimplemented opcode %v at pc=%#x", en.tmpl.Op, en.tmpl.PC)
		m.halted = true
		return false
	}
	return true
}

// branchTo resolves a conditional branch: emit with the outcome, then set
// the PC (the reference engine always records Target, taken or not).
func (m *Machine) branchTo(en *bEntry, taken bool) {
	if m.traceOn {
		e := en.tmpl
		e.Taken, e.Target = taken, en.imm
		m.emit(e)
	}
	if taken {
		m.PC = en.imm
	} else {
		m.PC = en.tmpl.PC + isa.InstrBytes
	}
}
