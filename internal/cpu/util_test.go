package cpu

import (
	"math/rand"
	"sort"
	"testing"

	"rest/internal/isa"
)

func opStore() isa.Op  { return isa.OpStore }
func opArm() isa.Op    { return isa.OpArm }
func opDisarm() isa.Op { return isa.OpDisarm }

func TestSlotTableBandwidth(t *testing.T) {
	s := newSlotTable(2)
	// Three reservations at the same cycle: third spills to the next.
	if got := s.reserve(10); got != 10 {
		t.Errorf("first = %d, want 10", got)
	}
	if got := s.reserve(10); got != 10 {
		t.Errorf("second = %d, want 10", got)
	}
	if got := s.reserve(10); got != 11 {
		t.Errorf("third = %d, want 11", got)
	}
	// Later cycle resets the count.
	if got := s.reserve(100); got != 100 {
		t.Errorf("later = %d, want 100", got)
	}
}

func TestSlotTableNeverBeforeRequest(t *testing.T) {
	s := newSlotTable(1)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		at := uint64(r.Intn(100000))
		got := s.reserve(at)
		if got < at {
			t.Fatalf("reserve(%d) = %d (before request)", at, got)
		}
	}
}

func TestRingFIFOConstraint(t *testing.T) {
	r := newRing(3)
	// First three allocations see zero constraints.
	for i, free := range []uint64{10, 20, 30} {
		if c := r.next(free); c != 0 {
			t.Errorf("alloc %d constraint = %d, want 0", i, c)
		}
	}
	// Fourth sees the first's free time, and so on.
	if c := r.next(40); c != 10 {
		t.Errorf("constraint = %d, want 10", c)
	}
	if c := r.peek(); c != 20 {
		t.Errorf("peek = %d, want 20", c)
	}
	if c := r.next(50); c != 20 {
		t.Errorf("constraint = %d, want 20", c)
	}
}

func TestMinHeapOrdering(t *testing.T) {
	h := &minHeap{}
	r := rand.New(rand.NewSource(9))
	var vals []uint64
	for i := 0; i < 500; i++ {
		v := uint64(r.Intn(10000))
		vals = append(vals, v)
		h.push(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, want := range vals {
		if got := h.pop(); got != want {
			t.Fatalf("pop %d = %d, want %d", i, got, want)
		}
	}
	if h.len() != 0 {
		t.Errorf("heap not empty: %d", h.len())
	}
}

func TestMax64(t *testing.T) {
	if max64(3, 5) != 5 || max64(5, 3) != 5 || max64(4, 4) != 4 {
		t.Error("max64 broken")
	}
}

func TestScanSQSemantics(t *testing.T) {
	sq := []sqEntry{
		{addr: 0x100, size: 8, op: opStore(), dataReady: 5, writeDone: 100},
		{addr: 0x200, size: 64, op: opArm(), dataReady: 6, writeDone: 100},
	}
	// Full containment by the regular store forwards.
	fwd, conflict, armHit := scanSQ(sq, 0x100, 8, 10)
	if fwd == nil || conflict != nil || armHit {
		t.Errorf("containment: fwd=%v conflict=%v arm=%v", fwd, conflict, armHit)
	}
	// Overlap with the ARM raises.
	_, _, armHit = scanSQ(sq, 0x210, 8, 10)
	if !armHit {
		t.Error("load overlapping in-flight arm not flagged")
	}
	// Drained entries (writeDone <= now) are invisible.
	fwd, _, armHit = scanSQ(sq, 0x100, 8, 200)
	if fwd != nil || armHit {
		t.Error("drained entries still matched")
	}
	// Partial overlap conflicts.
	_, conflict, _ = scanSQ(sq, 0x104, 8, 10)
	if conflict == nil {
		t.Error("partial overlap not flagged as conflict")
	}
}

func TestScanSQDisarm(t *testing.T) {
	sq := []sqEntry{{addr: 0x300, size: 64, op: opDisarm(), writeDone: 100}}
	if !scanSQDisarm(sq, 0x300, 10) {
		t.Error("in-flight disarm not matched")
	}
	if scanSQDisarm(sq, 0x340, 10) {
		t.Error("different chunk matched")
	}
	if scanSQDisarm(sq, 0x300, 200) {
		t.Error("drained disarm matched")
	}
}
