package cpu

import (
	"testing"

	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/mem"
	"rest/internal/trace"
)

func newPipeline(t *testing.T, mode core.Mode, tokens cache.TokenSource) *Pipeline {
	t.Helper()
	h, err := cache.NewHierarchy(cache.DefaultHierConfig(), tokens)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = mode
	return New(cfg, h, bpred.New(bpred.Config{}))
}

// seqEntries builds n entries of op at consecutive PCs with given dep shape.
func aluChain(n int, dependent bool) []trace.Entry {
	es := make([]trace.Entry, n)
	for i := range es {
		src := uint8(isa.NoReg)
		dst := uint8(1 + i%16)
		if dependent {
			dst = 1
			src = 1
		}
		// PCs cycle over a small loop body so instruction fetch stays warm.
		es[i] = trace.Entry{
			Seq: uint64(i), PC: 0x400000 + uint64(i%64)*16, Op: isa.OpAddI,
			Dst: dst, Src1: src, Src2: isa.NoReg,
		}
	}
	return es
}

func TestIndependentALUHighIPC(t *testing.T) {
	p := newPipeline(t, core.Secure, nil)
	st := p.Run(trace.NewSliceReader(aluChain(20000, false)))
	if st.IPC < 4 {
		t.Errorf("independent-ALU IPC = %.2f, want >= 4", st.IPC)
	}
	if st.Instructions != 20000 {
		t.Errorf("Instructions = %d, want 20000", st.Instructions)
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	p := newPipeline(t, core.Secure, nil)
	st := p.Run(trace.NewSliceReader(aluChain(20000, true)))
	if st.IPC > 1.2 || st.IPC < 0.8 {
		t.Errorf("dependent-chain IPC = %.2f, want ~1", st.IPC)
	}
}

func TestLoadMissSlowerThanHit(t *testing.T) {
	mk := func(stride uint64, n int) []trace.Entry {
		es := make([]trace.Entry, n)
		for i := range es {
			es[i] = trace.Entry{
				PC: 0x400000 + uint64(i%64)*16, Op: isa.OpLoad,
				Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg,
				Addr: 0x2000_0000 + uint64(i)*stride, Size: 8,
			}
			// Make each load depend on the previous (pointer chase).
			if i > 0 {
				es[i].Src1 = 1
			}
		}
		return es
	}
	pHit := newPipeline(t, core.Secure, nil)
	hit := pHit.Run(trace.NewSliceReader(mk(0, 3000))) // same line every time
	pMiss := newPipeline(t, core.Secure, nil)
	miss := pMiss.Run(trace.NewSliceReader(mk(4096, 3000))) // new row-ish line every time
	if miss.Cycles < hit.Cycles*5 {
		t.Errorf("chased misses (%d cyc) not >> chased hits (%d cyc)", miss.Cycles, hit.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// Store to addr, immediately load it back: the load must forward and
	// complete far faster than a cache round trip, and the counter ticks.
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpStore, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x2000_0000, Size: 8},
		{PC: 0x400010, Op: isa.OpLoad, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x2000_0000, Size: 8},
	}
	p := newPipeline(t, core.Secure, nil)
	st := p.Run(trace.NewSliceReader(es))
	if st.LSQForwardings != 1 {
		t.Errorf("LSQForwardings = %d, want 1", st.LSQForwardings)
	}
}

func TestLoadForwardingFromArmRaises(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpArm, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x2000_0000, Size: 64},
		{PC: 0x400010, Op: isa.OpLoad, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x2000_0010, Size: 8},
	}
	p := newPipeline(t, core.Secure, nil)
	st := p.Run(trace.NewSliceReader(es))
	if st.Exception == nil || st.Exception.Kind != core.ViolationForwarding {
		t.Fatalf("exception = %v, want forwarding violation", st.Exception)
	}
	if !st.LSQViolation {
		t.Error("LSQViolation flag not set")
	}
}

func TestStoreOverInflightArmRaises(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpArm, Addr: 0x2000_0000, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x400010, Op: isa.OpStore, Addr: 0x2000_0020, Size: 8, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	p := newPipeline(t, core.Secure, nil)
	st := p.Run(trace.NewSliceReader(es))
	if st.Exception == nil || st.Exception.Kind != core.ViolationStoreInflightArm {
		t.Fatalf("exception = %v, want store-over-arm violation", st.Exception)
	}
}

func TestDoubleDisarmInLSQRaises(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpDisarm, Addr: 0x2000_0000, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x400010, Op: isa.OpDisarm, Addr: 0x2000_0000, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	p := newPipeline(t, core.Secure, nil)
	st := p.Run(trace.NewSliceReader(es))
	if st.Exception == nil || st.Exception.Kind != core.ViolationDoubleDisarm {
		t.Fatalf("exception = %v, want double-disarm violation", st.Exception)
	}
}

// storeHeavy builds a store-dominated trace with cache-missing addresses.
func storeHeavy(n int) []trace.Entry {
	es := make([]trace.Entry, n)
	for i := range es {
		es[i] = trace.Entry{
			PC: 0x400000 + uint64(i%128)*16, Op: isa.OpStore,
			Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x2000_0000 + uint64(i)*4096, Size: 8,
		}
	}
	return es
}

func TestDebugModeSlowerOnStores(t *testing.T) {
	sec := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(storeHeavy(3000)))
	dbg := newPipeline(t, core.Debug, nil).Run(trace.NewSliceReader(storeHeavy(3000)))
	if dbg.Cycles <= sec.Cycles {
		t.Errorf("debug cycles (%d) not slower than secure (%d)", dbg.Cycles, sec.Cycles)
	}
	if sec.ROBStoreBlockCycles != 0 {
		t.Errorf("secure ROBStoreBlockCycles = %d, want 0", sec.ROBStoreBlockCycles)
	}
	if dbg.ROBStoreBlockCycles == 0 {
		t.Error("debug ROBStoreBlockCycles = 0, want > 0")
	}
	// §VI-B: ROB blocked-by-store cycles about an order of magnitude higher
	// in debug mode.
	if dbg.ROBStoreBlockCycles < 10*(sec.ROBStoreBlockCycles+1) {
		t.Errorf("debug store-block (%d) not >> secure (%d)",
			dbg.ROBStoreBlockCycles, sec.ROBStoreBlockCycles)
	}
}

func branchTrace(n int, pattern func(i int) bool) []trace.Entry {
	es := make([]trace.Entry, 0, 2*n)
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		taken := pattern(i)
		tgt := pc + 64*16
		es = append(es,
			trace.Entry{PC: pc, Op: isa.OpAddI, Dst: 1, Src1: 1, Src2: isa.NoReg},
			trace.Entry{PC: pc + 16, Op: isa.OpBeq, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: taken, Target: tgt},
		)
	}
	return es
}

func TestMispredictionCostsCycles(t *testing.T) {
	biased := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(
		branchTrace(5000, func(i int) bool { return true })))
	random := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(
		branchTrace(5000, func(i int) bool { return i*2654435761%97 < 48 })))
	if random.Mispredicts <= biased.Mispredicts {
		t.Errorf("random mispredicts (%d) not > biased (%d)", random.Mispredicts, biased.Mispredicts)
	}
	if random.Cycles <= biased.Cycles {
		t.Errorf("random-branch cycles (%d) not > biased (%d)", random.Cycles, biased.Cycles)
	}
}

func TestFaultingLoadSecureImprecise(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpAddI, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x400010, Op: isa.OpLoad, Dst: 2, Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x2000_0000, Size: 8, Faults: true},
	}
	st := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(es))
	if st.Exception == nil {
		t.Fatal("no exception")
	}
	if st.Exception.Precise {
		t.Error("secure-mode exception reported precise")
	}
	if st.Exception.Kind != core.ViolationLoad {
		t.Errorf("kind = %v, want load violation", st.Exception.Kind)
	}
	// The faulting load missed: with critical-word-first the load retires on
	// the critical word while the detector's verdict lands at fill
	// completion — a nonzero detection lag (§III-B "Exception Reporting").
	if st.Exception.DetectLagCycles == 0 {
		t.Error("secure-mode missing-load violation has zero detection lag")
	}
}

func TestDebugModeHoldsSuspiciousLoads(t *testing.T) {
	// Debug mode: the faulting load is held at the MSHR until the whole
	// line is checked, so the exception is precise with zero lag.
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpLoad, Dst: 2, Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x2000_0000, Size: 8, Faults: true},
	}
	st := newPipeline(t, core.Debug, nil).Run(trace.NewSliceReader(es))
	if st.Exception == nil || !st.Exception.Precise {
		t.Fatalf("exception = %+v, want precise", st.Exception)
	}
	if st.Exception.DetectLagCycles != 0 {
		t.Errorf("debug-mode lag = %d, want 0", st.Exception.DetectLagCycles)
	}
}

func TestFaultingStoreDebugPrecise(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpStore, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x2000_0000, Size: 8, Faults: true},
	}
	st := newPipeline(t, core.Debug, nil).Run(trace.NewSliceReader(es))
	if st.Exception == nil || !st.Exception.Precise {
		t.Fatalf("exception = %+v, want precise", st.Exception)
	}
	if st.Exception.DetectLagCycles != 0 {
		t.Errorf("precise exception has detection lag %d", st.Exception.DetectLagCycles)
	}
}

func TestTokenHitDetectedByCacheDetector(t *testing.T) {
	// Real tracker-backed hierarchy: arm a line architecturally, then run a
	// trace whose load touches it. The cache detector must observe the token
	// even though the trace entry already carries Faults from the
	// architectural check.
	tr, m := trackerForTest(t)
	_ = m
	tr.Arm(0x2000_0040, 0)
	p := newPipeline(t, core.Secure, tr)
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpLoad, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x2000_0050, Size: 8, Faults: true},
	}
	st := p.Run(trace.NewSliceReader(es))
	if st.Exception == nil || st.Exception.Kind != core.ViolationLoad {
		t.Fatalf("exception = %v, want load violation", st.Exception)
	}
	if p.hier.L1D.Stats.TokenHits != 1 {
		t.Errorf("L1D TokenHits = %d, want 1 (detector agreement)", p.hier.L1D.Stats.TokenHits)
	}
	if p.hier.L1D.Stats.TokenFills != 1 {
		t.Errorf("L1D TokenFills = %d, want 1", p.hier.L1D.Stats.TokenFills)
	}
}

func TestROBLimitsFarMisses(t *testing.T) {
	// A long stream of independent loads to distinct lines: the ROB (192)
	// bounds how many can be in flight; ROBFullCycles should accumulate.
	es := make([]trace.Entry, 4000)
	for i := range es {
		es[i] = trace.Entry{
			PC: 0x400000 + uint64(i%32)*16, Op: isa.OpLoad, Dst: uint8(1 + i%8),
			Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x3000_0000 + uint64(i)*8192, Size: 8,
		}
	}
	st := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(es))
	if st.ROBFullCycles == 0 && st.LQFullCycles == 0 {
		t.Error("no ROB/LQ pressure recorded under a miss flood")
	}
}

func TestCommitOrderMonotone(t *testing.T) {
	// Cycles must be >= instructions/commit width.
	n := 10000
	st := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(aluChain(n, false)))
	if st.Cycles < uint64(n/8) {
		t.Errorf("cycles %d below commit-bandwidth bound %d", st.Cycles, n/8)
	}
}

func trackerForTest(t *testing.T) (*core.TokenTracker, interface{}) {
	t.Helper()
	reg, err := core.NewTokenRegister(core.Width64, core.Secure, nil)
	if err != nil {
		t.Fatal(err)
	}
	mm := memNew()
	return core.NewTokenTracker(reg, mm), mm
}

func memNew() *mem.Memory { return mem.New() }
