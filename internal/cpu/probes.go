package cpu

import "rest/internal/obs"

// probeSampleStride is how many committed entries pass between occupancy
// samples. The occupancy scans are O(structure size), so sampling keeps the
// enabled-probes cost bounded; the stride is a power of two for a cheap
// mask test on the fast path.
const probeSampleStride = 64

// Probes is the timing model's hook set into the observability plane. The
// counters are flushed once from the run's final Stats (zero hot-path
// cost); the occupancy histograms are sampled live every probeSampleStride
// committed entries. A nil *Probes disables everything.
type Probes struct {
	Cycles              *obs.Counter
	Instructions        *obs.Counter
	UserInstructions    *obs.Counter
	RuntimeOps          *obs.Counter
	Flushes             *obs.Counter // branch mispredicts = pipeline flushes
	BranchLookups       *obs.Counter
	LSQForwardings      *obs.Counter
	ROBFullCycles       *obs.Counter
	IQFullCycles        *obs.Counter
	LQFullCycles        *obs.Counter
	SQFullCycles        *obs.Counter
	ROBStoreBlockCycles *obs.Counter

	// Occupancy histograms, sampled at dispatch (out-of-order core only;
	// the in-order core has no windows to measure).
	ROBOccupancy *obs.Histogram
	IQOccupancy  *obs.Histogram
	LQOccupancy  *obs.Histogram
	SQOccupancy  *obs.Histogram
}

// NewProbes registers the cpu metric set in r (nil r -> nil probes). The
// histogram bounds cover the Table II structure sizes (192-entry ROB,
// 64-entry IQ, 32-entry LQ/SQ); occupancy above the top bound lands in the
// +inf bucket, so resized cores still record correctly.
func NewProbes(r *obs.Registry) *Probes {
	if r == nil {
		return nil
	}
	return &Probes{
		Cycles:              r.Counter("cpu.cycles"),
		Instructions:        r.Counter("cpu.instructions"),
		UserInstructions:    r.Counter("cpu.user_instructions"),
		RuntimeOps:          r.Counter("cpu.runtime_ops"),
		Flushes:             r.Counter("cpu.flushes"),
		BranchLookups:       r.Counter("cpu.branch_lookups"),
		LSQForwardings:      r.Counter("cpu.lsq_forwardings"),
		ROBFullCycles:       r.Counter("cpu.rob_full_cycles"),
		IQFullCycles:        r.Counter("cpu.iq_full_cycles"),
		LQFullCycles:        r.Counter("cpu.lq_full_cycles"),
		SQFullCycles:        r.Counter("cpu.sq_full_cycles"),
		ROBStoreBlockCycles: r.Counter("cpu.rob_store_block_cycles"),
		ROBOccupancy:        r.Histogram("cpu.rob_occupancy", 0, 24, 48, 96, 144, 192),
		IQOccupancy:         r.Histogram("cpu.iq_occupancy", 0, 8, 16, 32, 48, 64),
		LQOccupancy:         r.Histogram("cpu.lq_occupancy", 0, 4, 8, 16, 24, 32),
		SQOccupancy:         r.Histogram("cpu.sq_occupancy", 0, 4, 8, 16, 24, 32),
	}
}

// record flushes a finished run's Stats into the counters. Nil-safe; called
// once at the end of Pipeline.Run / InOrder.Run.
func (p *Probes) record(st *Stats) {
	if p == nil {
		return
	}
	p.Cycles.Add(st.Cycles)
	p.Instructions.Add(st.Instructions)
	p.UserInstructions.Add(st.UserInstrs)
	p.RuntimeOps.Add(st.RuntimeOps)
	p.Flushes.Add(st.Mispredicts)
	p.BranchLookups.Add(st.BranchLookups)
	p.LSQForwardings.Add(st.LSQForwardings)
	p.ROBFullCycles.Add(st.ROBFullCycles)
	p.IQFullCycles.Add(st.IQFullCycles)
	p.LQFullCycles.Add(st.LQFullCycles)
	p.SQFullCycles.Add(st.SQFullCycles)
	p.ROBStoreBlockCycles.Add(st.ROBStoreBlockCycles)
}

// sample records one occupancy observation of every window structure at
// dispatch cycle d. Nil-safe.
func (p *Probes) sample(d uint64, rob, lq, sq *ring, iq *minHeap) {
	if p == nil {
		return
	}
	p.ROBOccupancy.Observe(rob.occupancy(d))
	p.IQOccupancy.Observe(iq.occupancy(d))
	p.LQOccupancy.Observe(lq.occupancy(d))
	p.SQOccupancy.Observe(sq.occupancy(d))
}
