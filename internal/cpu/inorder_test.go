package cpu

import (
	"testing"

	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/trace"
)

func newInOrder(t *testing.T, mode core.Mode) *InOrder {
	t.Helper()
	h, err := cache.NewHierarchy(cache.DefaultHierConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = mode
	return NewInOrder(cfg, h, bpred.New(bpred.Config{}))
}

func TestInOrderIPCAtMostOne(t *testing.T) {
	p := newInOrder(t, core.Secure)
	st := p.Run(trace.NewSliceReader(aluChain(20000, false)))
	if st.IPC > 1.0 {
		t.Errorf("in-order IPC = %.2f, want <= 1", st.IPC)
	}
	if st.Instructions != 20000 {
		t.Errorf("instructions = %d, want 20000", st.Instructions)
	}
}

func TestInOrderSlowerThanOoO(t *testing.T) {
	// On an ILP-rich stream the OoO core must be several times faster.
	entries := aluChain(20000, false)
	inSt := newInOrder(t, core.Secure).Run(trace.NewSliceReader(entries))
	ooSt := newPipeline(t, core.Secure, nil).Run(trace.NewSliceReader(entries))
	if inSt.Cycles < 3*ooSt.Cycles {
		t.Errorf("in-order (%d cyc) not >> OoO (%d cyc)", inSt.Cycles, ooSt.Cycles)
	}
}

func TestInOrderBlockingLoads(t *testing.T) {
	// Pointer-chase misses dominate completely on a blocking-load core.
	es := make([]trace.Entry, 500)
	for i := range es {
		es[i] = trace.Entry{
			PC: 0x400000 + uint64(i%32)*16, Op: isa.OpLoad, Dst: 1, Src1: 1,
			Src2: isa.NoReg, Addr: 0x3000_0000 + uint64(i)*8192, Size: 8,
		}
	}
	st := newInOrder(t, core.Secure).Run(trace.NewSliceReader(es))
	if st.Cycles < 500*50 {
		t.Errorf("miss-chain cycles = %d, want >= %d", st.Cycles, 500*50)
	}
}

func TestInOrderPreciseExceptions(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpLoad, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: 0x2000_0000, Size: 8, Faults: true},
	}
	st := newInOrder(t, core.Secure).Run(trace.NewSliceReader(es))
	if st.Exception == nil || !st.Exception.Precise {
		t.Fatalf("exception = %+v, want precise (in-order is always precise)", st.Exception)
	}
}

func TestInOrderArmDisarm(t *testing.T) {
	es := []trace.Entry{
		{PC: 0x400000, Op: isa.OpArm, Addr: 0x2000_0000, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x400010, Op: isa.OpDisarm, Addr: 0x2000_0000, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{PC: 0x400020, Op: isa.OpAddI, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	st := newInOrder(t, core.Secure).Run(trace.NewSliceReader(es))
	if st.Exception != nil {
		t.Fatalf("benign arm/disarm raised: %v", st.Exception)
	}
	if st.Instructions != 3 {
		t.Errorf("instructions = %d, want 3", st.Instructions)
	}
}

func TestInOrderMispredictPenalty(t *testing.T) {
	biased := newInOrder(t, core.Secure).Run(trace.NewSliceReader(
		branchTrace(3000, func(i int) bool { return true })))
	random := newInOrder(t, core.Secure).Run(trace.NewSliceReader(
		branchTrace(3000, func(i int) bool { return i*2654435761%97 < 48 })))
	if random.Cycles <= biased.Cycles {
		t.Errorf("random-branch cycles (%d) not > biased (%d)", random.Cycles, biased.Cycles)
	}
}
