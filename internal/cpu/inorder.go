package cpu

import (
	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/trace"
)

// InOrder is the simple in-order core model. The paper's Figure 3 breakdown
// was measured "on an in-order core" (footnote 1) with the Table II memory
// configuration; this model provides that machine: single-issue, stall-on-
// use, blocking loads, with the same caches, DRAM and branch predictor as
// the out-of-order model.
type InOrder struct {
	cfg    Config
	hier   *cache.Hierarchy
	pred   *bpred.Predictor
	probes *Probes
}

// NewInOrder builds the in-order core over a hierarchy and predictor. Width
// fields of cfg are ignored (single issue); latencies and Mode apply.
func NewInOrder(cfg Config, hier *cache.Hierarchy, pred *bpred.Predictor) *InOrder {
	cfg.applyDefaults()
	return &InOrder{cfg: cfg, hier: hier, pred: pred}
}

// SetProbes attaches an observability probe set (nil = off). The in-order
// core records the counter metrics only — it has no window structures for
// the occupancy histograms. Call before Run.
func (p *InOrder) SetProbes(pr *Probes) { p.probes = pr }

// Run replays the trace through the in-order pipeline and returns timing
// statistics. Loads block until data returns; stores write through the
// L1-D at execute (there is no ROB, so secure/debug differ only in
// exception precision, which is always achievable in order).
func (p *InOrder) Run(r trace.Reader) *Stats {
	cfg := p.cfg
	st := &Stats{}

	var regReady [isa.NumRegs]uint64
	var now uint64
	lastFetchLine := ^uint64(0)

	// Same batched pull as the out-of-order model: one interface call per
	// buffer when the reader is a trace Replayer.
	var ebuf [256]trace.Entry
	var ebn, ebi int
	br, batched := r.(trace.BatchReader)

	for {
		var e *trace.Entry
		if batched {
			if ebi == ebn {
				ebn = br.ReadBatch(ebuf[:])
				ebi = 0
				if ebn == 0 {
					break
				}
			}
			e = &ebuf[ebi]
			ebi++
		} else {
			ev, ok := r.Next()
			if !ok {
				break
			}
			e = &ev
		}
		st.Instructions++
		if e.Kind == trace.KindUser {
			st.UserInstrs++
		} else {
			st.RuntimeOps++
		}

		// Fetch: one instruction per cycle, I-cache modelled per line.
		now++
		line := e.PC &^ (cache.LineBytes - 1)
		if line != lastFetchLine {
			done := p.hier.FetchInstr(now, e.PC)
			if done > now+2 {
				now = done
			}
			lastFetchLine = line
		}

		// Stall-on-use: wait for source operands.
		if e.Src1 != isa.NoReg && regReady[e.Src1] > now {
			now = regReady[e.Src1]
		}
		if e.Src2 != isa.NoReg && regReady[e.Src2] > now {
			now = regReady[e.Src2]
		}

		var complete uint64
		var detect uint64
		switch e.Op.Class() {
		case isa.ClassLoad:
			res := p.hier.L1D.Load(now, e.Addr, e.Size)
			complete = res.Done
			if res.TokenHit || e.Faults {
				detect = res.FillDone
			}
			now = complete // blocking load (critical word releases it)
		case isa.ClassStore:
			res := p.hier.L1D.Store(now, e.Addr, e.Size)
			complete = now + 1
			if res.TokenHit || e.Faults {
				detect = res.Done
			}
		case isa.ClassArm:
			res := p.hier.L1D.Arm(now, e.Addr)
			complete = res.Done
			if e.Faults {
				detect = res.Done
			}
			now = complete
		case isa.ClassDisarm:
			res, okD := p.hier.L1D.Disarm(now, e.Addr)
			complete = res.Done
			if !okD || e.Faults {
				detect = res.Done
			}
			now = complete
		case isa.ClassMul:
			complete = now + cfg.MulLat
		case isa.ClassDiv:
			complete = now + cfg.DivLat
		default:
			complete = now + cfg.ALULat
		}

		if e.Dst != isa.NoReg {
			regReady[e.Dst] = complete
		}

		if e.Op.IsBranch() {
			st.BranchLookups++
			if p.pred.Resolve(e.PC, e.Op, e.Taken, e.Target, e.PC+isa.InstrBytes) {
				st.Mispredicts++
				// In-order redirect: flush the (short) front end.
				now += cfg.FrontendDepth
			}
			lastFetchLine = ^uint64(0)
		}

		if e.Faults || detect != 0 {
			exc := &core.Exception{Addr: e.Addr, PC: e.PC, Kind: faultKind(e.Op)}
			// In-order execution always provides precise exceptions.
			exc.Precise = true
			st.Exception = exc
			if detect > now {
				now = detect
			}
			break
		}
	}

	st.Cycles = now
	if st.Cycles > 0 {
		st.IPC = float64(st.Instructions) / float64(st.Cycles)
	}
	p.probes.record(st)
	return st
}
