// Package cpu is the out-of-order timing model. It replays the dynamic
// trace produced by the functional simulator through an 8-wide machine with
// the structure sizes of Table II (192-entry ROB, 64-entry IQ, 32-entry LQ
// and SQ, L-TAGE-class branch prediction) over the cache hierarchy.
//
// The model is dependency-timed rather than cycle-stepped: each instruction's
// fetch, dispatch, issue, completion and commit cycles are derived from its
// register dependences, structural-resource constraints (FIFO-freed ROB, LQ
// and SQ rings; out-of-order-freed IQ via a min-heap of issue cycles),
// per-cycle bandwidth tables, branch-redirect points, and memory-system
// response times. This computes the same steady-state behaviour as a
// cycle-stepped model at a fraction of the cost, which is what lets the full
// Figure 7/8 matrices run as ordinary Go benchmarks.
//
// REST microarchitecture (paper §III-B):
//
//   - ARM and DISARM are handled as stores in the LSQ but never forward
//     their (implicit, secret) value: a load that would forward from an
//     in-flight ARM raises a privileged REST exception, as do a store aimed
//     at an in-flight ARM's location and a DISARM matching an in-flight
//     DISARM (Table I, LSQ column).
//   - In secure mode stores commit eagerly; a token hit detected at the
//     cache after retirement yields an imprecise exception whose detection
//     lag is reported.
//   - In debug mode store commit is delayed until the write completes at the
//     L1-D — the dominant source of debug-mode slowdown (§VI-B) — and
//     exceptions are precise.
package cpu

import (
	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/trace"
)

// Config sizes the core per Table II.
type Config struct {
	FetchWidth  int // 8
	IssueWidth  int // 8
	CommitWidth int // 8
	ROBSize     int // 192
	IQSize      int // 64
	LQSize      int // 32
	SQSize      int // 32

	FrontendDepth   uint64 // fetch->dispatch stages (default 6)
	RedirectPenalty uint64 // extra cycles after branch resolution (default 2)

	LoadPorts  int // L1-D read ports per cycle (default 2)
	StorePorts int // L1-D write ports per cycle (default 1)

	ALULat uint64 // default 1
	MulLat uint64 // default 3
	DivLat uint64 // default 12

	Mode core.Mode

	// SerializeArmDisarm models the simple-but-slow alternative the paper
	// rejects (§III-B "LSQ Modification"): instead of the split matching
	// logic in the LSQ, ensure an ARM/DISARM is the only in-flight
	// instruction — drain the window before it and refetch after it.
	SerializeArmDisarm bool
}

// DefaultConfig returns the Table II core configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth: 8, IssueWidth: 8, CommitWidth: 8,
		ROBSize: 192, IQSize: 64, LQSize: 32, SQSize: 32,
		FrontendDepth: 6, RedirectPenalty: 2,
		LoadPorts: 2, StorePorts: 1,
		ALULat: 1, MulLat: 3, DivLat: 12,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.FetchWidth == 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.ROBSize == 0 {
		c.ROBSize = d.ROBSize
	}
	if c.IQSize == 0 {
		c.IQSize = d.IQSize
	}
	if c.LQSize == 0 {
		c.LQSize = d.LQSize
	}
	if c.SQSize == 0 {
		c.SQSize = d.SQSize
	}
	if c.FrontendDepth == 0 {
		c.FrontendDepth = d.FrontendDepth
	}
	if c.RedirectPenalty == 0 {
		c.RedirectPenalty = d.RedirectPenalty
	}
	if c.LoadPorts == 0 {
		c.LoadPorts = d.LoadPorts
	}
	if c.StorePorts == 0 {
		c.StorePorts = d.StorePorts
	}
	if c.ALULat == 0 {
		c.ALULat = d.ALULat
	}
	if c.MulLat == 0 {
		c.MulLat = d.MulLat
	}
	if c.DivLat == 0 {
		c.DivLat = d.DivLat
	}
}

// Stats is the timing-run result.
type Stats struct {
	Cycles       uint64
	Instructions uint64 // all committed entries (user + runtime)
	UserInstrs   uint64
	RuntimeOps   uint64
	IPC          float64

	Mispredicts    uint64
	BranchLookups  uint64
	LSQForwardings uint64

	// Structural-stall accounting (cycles of dispatch delay attributed to
	// each full structure; §VI-B reports IQ-full behaviour).
	ROBFullCycles uint64
	IQFullCycles  uint64
	LQFullCycles  uint64
	SQFullCycles  uint64

	// ROBStoreBlockCycles accumulates cycles the ROB head was held by a
	// store waiting for write completion (debug mode; ~0 in secure mode).
	ROBStoreBlockCycles uint64

	// Exception reports the REST exception, with DetectLagCycles and
	// precision resolved per mode.
	Exception *core.Exception
	// LSQViolation is set when the violation was detected by the LSQ
	// matching logic rather than the cache detector.
	LSQViolation bool
}

// sqEntry is an in-flight store-queue entry used for forwarding checks.
type sqEntry struct {
	addr      uint64
	size      uint8
	op        isa.Op
	dataReady uint64 // cycle store data is available for forwarding
	writeDone uint64 // cycle the store leaves the SQ (write completed)
}

// Pipeline is a single-use timing model instance.
type Pipeline struct {
	cfg    Config
	hier   *cache.Hierarchy
	pred   *bpred.Predictor
	probes *Probes
}

// New builds a pipeline over a hierarchy and predictor.
func New(cfg Config, hier *cache.Hierarchy, pred *bpred.Predictor) *Pipeline {
	cfg.applyDefaults()
	return &Pipeline{cfg: cfg, hier: hier, pred: pred}
}

// SetProbes attaches an observability probe set (nil = off). Call before
// Run.
func (p *Pipeline) SetProbes(pr *Probes) { p.probes = pr }

// Run replays the trace and returns timing statistics.
func (p *Pipeline) Run(r trace.Reader) *Stats {
	cfg := p.cfg
	st := &Stats{}

	fetchSlots := newSlotTable(cfg.FetchWidth)
	issueSlots := newSlotTable(cfg.IssueWidth)
	commitSlots := newSlotTable(cfg.CommitWidth)
	loadPorts := newSlotTable(cfg.LoadPorts)
	storePorts := newSlotTable(cfg.StorePorts)

	rob := newRing(cfg.ROBSize)
	lq := newRing(cfg.LQSize)
	sq := newRing(cfg.SQSize)
	iq := &minHeap{}

	var regReady [isa.NumRegs]uint64
	var fetchReady uint64
	lastFetchLine := ^uint64(0)
	var lastCommit uint64

	// Recent stores for forwarding; bounded by SQ size. The window slides
	// through a fixed backing array and is compacted to the front when it
	// reaches the end, so steady-state store traffic never touches the
	// allocator (an append-and-reslice window reallocates every SQSize
	// stores, which showed up as memmove + GC churn in replay profiles).
	sqBack := make([]sqEntry, 4*cfg.SQSize)
	sqStart, sqEnd := 0, 0
	sqLive := sqBack[:0]

	// Pull entries in batches when the reader supports it (the trace
	// Replayer does): one interface call per buffer instead of per entry.
	// The Replayer's ReadBatch contract keeps its token shadow exact under
	// this read-ahead.
	var ebuf [256]trace.Entry
	var ebn, ebi int
	br, batched := r.(trace.BatchReader)

	for {
		var e *trace.Entry
		if batched {
			if ebi == ebn {
				ebn = br.ReadBatch(ebuf[:])
				ebi = 0
				if ebn == 0 {
					break
				}
			}
			e = &ebuf[ebi]
			ebi++
		} else {
			ev, ok := r.Next()
			if !ok {
				break
			}
			e = &ev
		}
		st.Instructions++
		if e.Kind == trace.KindUser {
			st.UserInstrs++
		} else {
			st.RuntimeOps++
		}

		// --- Fetch ---
		f := fetchSlots.reserve(fetchReady)
		line := e.PC &^ (cache.LineBytes - 1)
		if line != lastFetchLine {
			done := p.hier.FetchInstr(f, e.PC)
			if done > f+2 { // beyond pipelined hit latency: I-miss stall
				f = fetchSlots.reserve(done)
			}
			lastFetchLine = line
		}
		if f > fetchReady {
			fetchReady = f
		}

		// --- Dispatch (rename + structural allocation) ---
		d := f + cfg.FrontendDepth
		// f is non-decreasing across instructions, so every future scanSQ
		// query uses at = issue >= (f' + FrontendDepth) + 1 >= d + 1. (d
		// itself may be raised by structural constraints below, and those
		// raises do not carry to the next instruction, so the safe prune
		// bound is captured here, before them.)
		sqPruneAt := d + 1
		if c := rob.peek(); c > d {
			st.ROBFullCycles += c - d
			d = c
		}
		iqFull := iq.len() >= cfg.IQSize
		if iqFull {
			// The IQ entry that frees is the one with the earliest issue
			// cycle; it is replaced (not popped and re-pushed) with this
			// instruction's issue cycle once that is known, below.
			if m := iq.peekMin(); m > d {
				st.IQFullCycles += m - d
				d = m
			}
		}
		// Occupancy probes, sampled at dispatch: how full each window
		// structure is at cycle d. Deterministic (a function of the trace
		// and the timing model alone) and off the fast path when disabled.
		if p.probes != nil && st.Instructions&(probeSampleStride-1) == 0 {
			p.probes.sample(d, rob, lq, sq, iq)
		}
		isLoad := e.Op == isa.OpLoad
		isStoreLike := e.Op == isa.OpStore || e.Op == isa.OpArm || e.Op == isa.OpDisarm
		isArmLike := e.Op == isa.OpArm || e.Op == isa.OpDisarm
		if cfg.SerializeArmDisarm && isArmLike && lastCommit > d {
			// Pipeline drain: nothing older may be in flight.
			d = lastCommit
		}
		if isLoad {
			if c := lq.peek(); c > d {
				st.LQFullCycles += c - d
				d = c
			}
		}
		if isStoreLike {
			if c := sq.peek(); c > d {
				st.SQFullCycles += c - d
				d = c
			}
		}
		if isLoad || isStoreLike {
			// Prune stores that can never match another scan: an entry whose
			// write completed by sqPruneAt is invisible to this and every
			// future scan (all query at issue >= sqPruneAt). This keeps the
			// scanned window at the handful of genuinely in-flight stores
			// instead of the full SQ history.
			for sqStart < sqEnd && sqBack[sqStart].writeDone <= sqPruneAt {
				sqStart++
			}
			sqLive = sqBack[sqStart:sqEnd]
		}

		// --- Issue ---
		ready := d + 1
		if e.Src1 != isa.NoReg && regReady[e.Src1] > ready {
			ready = regReady[e.Src1]
		}
		if e.Src2 != isa.NoReg && regReady[e.Src2] > ready {
			ready = regReady[e.Src2]
		}
		issue := issueSlots.reserve(ready)

		// --- Execute ---
		var complete uint64
		var detect uint64 // cycle a REST violation is observed at the cache
		lsqViolation := false

		switch e.Op.Class() {
		case isa.ClassLoad:
			issue = loadPorts.reserve(issue)
			fwd, conflict, armHit := scanSQ(sqLive, e.Addr, e.Size, issue)
			switch {
			case armHit:
				// Load "hits" an in-flight ARM: the forwarding path would
				// leak the token, so the LSQ raises instead (§III-B).
				lsqViolation = true
				complete = issue + 1
				detect = complete
			case fwd != nil:
				st.LSQForwardings++
				complete = max64(issue, fwd.dataReady) + 1
			case conflict != nil:
				// Partial overlap: conservatively wait for the store to
				// drain, then access the cache.
				at := max64(issue, conflict.writeDone)
				res := p.hier.L1D.Load(at, e.Addr, e.Size)
				complete = p.loadComplete(res, &detect, e.Faults)
			default:
				res := p.hier.L1D.Load(issue, e.Addr, e.Size)
				complete = p.loadComplete(res, &detect, e.Faults)
			}

		case isa.ClassStore, isa.ClassArm, isa.ClassDisarm:
			// Address/data into the SQ.
			complete = issue + 1
			_, _, armHit := scanSQ(sqLive, e.Addr, e.Size, issue)
			if e.Op == isa.OpStore && armHit {
				lsqViolation = true
				detect = complete
			}
			if e.Op == isa.OpDisarm && scanSQDisarm(sqLive, e.Addr, issue) {
				lsqViolation = true
				detect = complete
			}

		case isa.ClassMul:
			complete = issue + cfg.MulLat
		case isa.ClassDiv:
			complete = issue + cfg.DivLat
		default:
			complete = issue + cfg.ALULat
		}

		if e.Dst != isa.NoReg {
			regReady[e.Dst] = complete
		}

		// --- Commit (in order) ---
		c := max64(lastCommit, complete+1)
		c = commitSlots.reserve(c)

		var writeDone uint64
		if isStoreLike && !lsqViolation {
			// The write to the L1-D happens at commit.
			wstart := storePorts.reserve(c)
			resHit := false
			switch e.Op {
			case isa.OpStore:
				res := p.hier.L1D.Store(wstart, e.Addr, e.Size)
				writeDone = res.Done
				resHit = res.Hit
				if res.TokenHit || e.Faults {
					detect = res.Done
				}
			case isa.OpArm:
				res := p.hier.L1D.Arm(wstart, e.Addr)
				writeDone = res.Done
				resHit = res.Hit
				if e.Faults { // misaligned arm: precise invalid-instr exception
					detect = res.Done
				}
			case isa.OpDisarm:
				res, okDisarm := p.hier.L1D.Disarm(wstart, e.Addr)
				writeDone = res.Done
				resHit = res.Hit
				if !okDisarm || e.Faults {
					detect = res.Done
				}
			}
			if cfg.Mode == core.Debug {
				// Precise exceptions: the store may not leave the ROB until
				// the L1-D has acknowledged the write and its token check.
				// On a hit the ack (tag + token-bit check) returns the next
				// cycle; on a miss the whole line must arrive first, which
				// is where debug mode's order-of-magnitude ROB blocking
				// comes from (§VI-B).
				ack := writeDone
				if resHit {
					// Hit: the token bit lives in the tag array, so the
					// check completes at commit without waiting for the data
					// port; only missing lines hold the ROB head until the
					// fill (and its token check) completes.
					ack = c
				}
				if ack > c {
					st.ROBStoreBlockCycles += ack - c
					c = ack
				}
			}
		}
		lastCommit = c

		// Record structure exits.
		rob.next(c)
		if iqFull {
			iq.replaceMin(issue)
		} else {
			iq.push(issue)
		}
		if isLoad {
			lq.next(c)
		}
		if isStoreLike {
			free := max64(c, writeDone)
			sq.next(free)
			if sqEnd == len(sqBack) {
				copy(sqBack, sqBack[sqStart:sqEnd])
				sqEnd -= sqStart
				sqStart = 0
			}
			sqBack[sqEnd] = sqEntry{addr: e.Addr, size: e.Size, op: e.Op, dataReady: complete, writeDone: free}
			sqEnd++
			if sqEnd-sqStart > cfg.SQSize {
				sqStart++
			}
			sqLive = sqBack[sqStart:sqEnd]
		}

		if cfg.SerializeArmDisarm && isArmLike {
			// Refill: younger instructions refetch after the arm completes.
			done := max64(c, writeDone)
			if done > fetchReady {
				fetchReady = done
			}
		}

		// --- Branch resolution ---
		if e.Op.IsBranch() {
			st.BranchLookups++
			if p.pred.Resolve(e.PC, e.Op, e.Taken, e.Target, e.PC+isa.InstrBytes) {
				st.Mispredicts++
				redirect := complete + cfg.RedirectPenalty
				if redirect > fetchReady {
					fetchReady = redirect
				}
				lastFetchLine = ^uint64(0)
			}
		}

		// --- Exception reporting ---
		if e.Faults || lsqViolation {
			exc := &core.Exception{Addr: e.Addr, PC: e.PC}
			if lsqViolation {
				switch e.Op {
				case isa.OpLoad:
					exc.Kind = core.ViolationForwarding
				case isa.OpStore:
					exc.Kind = core.ViolationStoreInflightArm
				default:
					exc.Kind = core.ViolationDoubleDisarm
				}
			} else {
				exc.Kind = faultKind(e.Op)
			}
			if detect == 0 {
				detect = c
			}
			if cfg.Mode == core.Debug {
				exc.Precise = true
				if detect > c {
					// Precision guarantee: hold commit to the detection.
					lastCommit = detect
				}
			} else {
				exc.Precise = false
				if detect > c {
					exc.DetectLagCycles = detect - c
				}
			}
			st.Exception = exc
			st.LSQViolation = lsqViolation
			break
		}
	}

	st.Cycles = lastCommit
	if st.Cycles > 0 {
		st.IPC = float64(st.Instructions) / float64(st.Cycles)
	}
	p.probes.record(st)
	return st
}

// loadComplete resolves a load's completion cycle under the mode's
// critical-word-first policy (§III-B): secure mode releases the load at the
// critical word and reports any token verdict at fill completion (the
// imprecise-exception detection lag); debug mode holds loads whose line
// carries token chunks at the MSHR until the whole line has been checked.
func (p *Pipeline) loadComplete(res cache.AccessResult, detect *uint64, faults bool) uint64 {
	complete := res.Done
	if res.TokenHit || faults {
		*detect = res.FillDone
		if p.cfg.Mode == core.Debug {
			complete = res.FillDone
		}
	}
	return complete
}

// scanSQ searches the live store-queue entries (oldest to youngest; all are
// older than the current access) for address matches against [addr,
// addr+size). It returns the youngest fully-covering regular store still in
// flight at cycle `at` (forwarding source), the youngest partially
// overlapping in-flight store (ordering conflict), and whether any matching
// in-flight entry is an ARM (REST violation).
func scanSQ(sqLive []sqEntry, addr uint64, size uint8, at uint64) (fwd, conflict *sqEntry, armHit bool) {
	end := addr + uint64(size)
	for i := len(sqLive) - 1; i >= 0; i-- {
		s := &sqLive[i]
		if s.writeDone <= at {
			continue // already drained to the cache
		}
		sEnd := s.addr + uint64(s.size)
		if end <= s.addr || addr >= sEnd {
			continue // disjoint
		}
		if s.op == isa.OpArm {
			// The REST matching logic splits the comparison into a line
			// match plus an offset match; any line overlap with an ARM trips
			// the violation check regardless of exact bytes.
			return nil, nil, true
		}
		if s.op == isa.OpDisarm {
			// Disarmed (zeroed) data may forward normally; treat as a
			// regular store for ordering purposes.
		}
		if s.addr <= addr && sEnd >= end && s.op == isa.OpStore {
			if fwd == nil {
				fwd = s
			}
			return fwd, nil, false
		}
		if conflict == nil {
			conflict = s
			return nil, conflict, false
		}
	}
	return nil, nil, false
}

// scanSQDisarm reports whether an in-flight DISARM for the same token chunk
// is present (double-disarm check, Table I).
func scanSQDisarm(sqLive []sqEntry, addr uint64, at uint64) bool {
	for i := len(sqLive) - 1; i >= 0; i-- {
		s := &sqLive[i]
		if s.writeDone <= at || s.op != isa.OpDisarm {
			continue
		}
		if s.addr == addr {
			return true
		}
	}
	return false
}

func faultKind(op isa.Op) core.ViolationKind {
	switch op {
	case isa.OpLoad:
		return core.ViolationLoad
	case isa.OpStore:
		return core.ViolationStore
	case isa.OpArm:
		return core.ViolationMisaligned
	case isa.OpDisarm:
		return core.ViolationDisarmUnarmed
	}
	return core.ViolationLoad
}
