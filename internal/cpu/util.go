package cpu

// slotTable enforces per-cycle bandwidth limits (fetch/issue/commit widths,
// cache ports) without a cycle-by-cycle loop. reserve(at) returns the first
// cycle >= at with a free slot and consumes it. The table is a hash-free
// direct-mapped window over recent cycles; a collision with a *future*
// reservation (rare, and only possible across > window cycles of skew) is
// treated as free, which can only under-count bandwidth pressure slightly.
type slotTable struct {
	width uint16
	mask  uint64 // window-1; the window is a power of two so % becomes &
	cyc   []uint64
	cnt   []uint16
}

func newSlotTable(width int) *slotTable {
	const window = 8192 // must stay a power of two (mask indexing)
	return &slotTable{
		width: uint16(width), mask: window - 1,
		cyc: make([]uint64, window), cnt: make([]uint16, window),
	}
}

func (s *slotTable) reserve(at uint64) uint64 {
	for {
		idx := at & s.mask
		switch {
		case s.cyc[idx] != at:
			if s.cyc[idx] > at {
				// Future reservation occupies this index; treat as free.
				return at
			}
			s.cyc[idx] = at
			s.cnt[idx] = 1
			return at
		case s.cnt[idx] < s.width:
			s.cnt[idx]++
			return at
		default:
			at++
		}
	}
}

// ring tracks the completion cycles of the last N entries of a FIFO-freed
// resource (ROB, LQ, SQ): entry i can allocate only once entry i-N has
// freed. get returns the constraint for the next allocation; set records the
// new entry's free cycle.
type ring struct {
	buf []uint64
	idx int // next slot to recycle; wraps without division (sizes like 192 aren't powers of two)
}

func newRing(n int) *ring { return &ring{buf: make([]uint64, n)} }

// next returns the cycle the oldest entry frees (0 while not full) and
// advances, recording freeAt for the new entry.
func (r *ring) next(freeAt uint64) (constraint uint64) {
	constraint = r.buf[r.idx]
	r.buf[r.idx] = freeAt
	r.idx++
	if r.idx == len(r.buf) {
		r.idx = 0
	}
	return constraint
}

// peek returns the constraint without advancing.
func (r *ring) peek() uint64 {
	return r.buf[r.idx]
}

// occupancy counts entries still allocated at cycle now (free cycle in the
// future). O(size); used only by the sampled occupancy probes, never on the
// per-instruction fast path.
func (r *ring) occupancy(now uint64) uint64 {
	var n uint64
	for _, free := range r.buf {
		if free > now {
			n++
		}
	}
	return n
}

// minHeap is a small min-heap of cycles, used for IQ occupancy (entries
// leave the IQ out of order, at issue).
type minHeap struct {
	a []uint64
}

func (h *minHeap) push(v uint64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) pop() uint64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < last && h.a[l] < h.a[sm] {
			sm = l
		}
		if r < last && h.a[r] < h.a[sm] {
			sm = r
		}
		if sm == i {
			break
		}
		h.a[i], h.a[sm] = h.a[sm], h.a[i]
		i = sm
	}
	return v
}

// peekMin returns the minimum without removing it.
func (h *minHeap) peekMin() uint64 { return h.a[0] }

// replaceMin overwrites the minimum with v and restores heap order with a
// single hole-percolating sift-down. Equivalent to pop-then-push(v), which
// the dispatch stage does once per instruction in steady state, at roughly
// half the cost (one traversal, one write per level instead of swaps). Only
// the value multiset is observable (min extraction, occupancy), so the
// different internal layout cannot change timing results.
func (h *minHeap) replaceMin(v uint64) {
	a := h.a
	n := len(a)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && a[r] < a[l] {
			l = r
		}
		if a[l] >= v {
			break
		}
		a[i] = a[l]
		i = l
	}
	a[i] = v
}

func (h *minHeap) len() int { return len(h.a) }

// occupancy counts entries that have not yet left (issue cycle in the
// future). O(size); sampled-probe use only, like ring.occupancy.
func (h *minHeap) occupancy(now uint64) uint64 {
	var n uint64
	for _, v := range h.a {
		if v > now {
			n++
		}
	}
	return n
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
