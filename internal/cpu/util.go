package cpu

// slotTable enforces per-cycle bandwidth limits (fetch/issue/commit widths,
// cache ports) without a cycle-by-cycle loop. reserve(at) returns the first
// cycle >= at with a free slot and consumes it. The table is a hash-free
// direct-mapped window over recent cycles; a collision with a *future*
// reservation (rare, and only possible across > window cycles of skew) is
// treated as free, which can only under-count bandwidth pressure slightly.
type slotTable struct {
	width uint16
	cyc   []uint64
	cnt   []uint16
}

func newSlotTable(width int) *slotTable {
	const window = 8192
	return &slotTable{width: uint16(width), cyc: make([]uint64, window), cnt: make([]uint16, window)}
}

func (s *slotTable) reserve(at uint64) uint64 {
	for {
		idx := at % uint64(len(s.cyc))
		switch {
		case s.cyc[idx] != at:
			if s.cyc[idx] > at {
				// Future reservation occupies this index; treat as free.
				return at
			}
			s.cyc[idx] = at
			s.cnt[idx] = 1
			return at
		case s.cnt[idx] < s.width:
			s.cnt[idx]++
			return at
		default:
			at++
		}
	}
}

// ring tracks the completion cycles of the last N entries of a FIFO-freed
// resource (ROB, LQ, SQ): entry i can allocate only once entry i-N has
// freed. get returns the constraint for the next allocation; set records the
// new entry's free cycle.
type ring struct {
	buf  []uint64
	head uint64
}

func newRing(n int) *ring { return &ring{buf: make([]uint64, n)} }

// next returns the cycle the oldest entry frees (0 while not full) and
// advances, recording freeAt for the new entry.
func (r *ring) next(freeAt uint64) (constraint uint64) {
	idx := r.head % uint64(len(r.buf))
	constraint = r.buf[idx]
	r.buf[idx] = freeAt
	r.head++
	return constraint
}

// peek returns the constraint without advancing.
func (r *ring) peek() uint64 {
	return r.buf[r.head%uint64(len(r.buf))]
}

// occupancy counts entries still allocated at cycle now (free cycle in the
// future). O(size); used only by the sampled occupancy probes, never on the
// per-instruction fast path.
func (r *ring) occupancy(now uint64) uint64 {
	var n uint64
	for _, free := range r.buf {
		if free > now {
			n++
		}
	}
	return n
}

// minHeap is a small min-heap of cycles, used for IQ occupancy (entries
// leave the IQ out of order, at issue).
type minHeap struct {
	a []uint64
}

func (h *minHeap) push(v uint64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) pop() uint64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < last && h.a[l] < h.a[sm] {
			sm = l
		}
		if r < last && h.a[r] < h.a[sm] {
			sm = r
		}
		if sm == i {
			break
		}
		h.a[i], h.a[sm] = h.a[sm], h.a[i]
		i = sm
	}
	return v
}

func (h *minHeap) len() int { return len(h.a) }

// occupancy counts entries that have not yet left (issue cycle in the
// future). O(size); sampled-probe use only, like ring.occupancy.
func (h *minHeap) occupancy(now uint64) uint64 {
	var n uint64
	for _, v := range h.a {
		if v > now {
			n++
		}
	}
	return n
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
