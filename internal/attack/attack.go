// Package attack implements the memory-safety violation suite used to
// evaluate detection coverage (paper §I Listing 1, §V, Figure 1): spatial
// attacks (linear overflow/underflow on stack and heap, the Heartbleed
// over-read, jump-over-redzone targeted access) and temporal attacks
// (use-after-free read/write, double free, use-after-quarantine-recycle).
//
// Each attack is a complete program built under any pass; Expected describes
// which defenses should catch it, so the suite simultaneously documents
// detection coverage and the known false-negative windows (§V-C).
package attack

import (
	"rest/internal/prog"
)

// Expectation describes which configurations must detect the attack.
type Expectation struct {
	Plain    bool // always false: the baseline detects nothing
	ASan     bool
	RESTFull bool
	RESTHeap bool
}

// Attack is one adversarial program.
type Attack struct {
	Name        string
	Description string
	Expected    Expectation
	Build       func(b *prog.Builder)
}

// All returns the attack suite.
func All() []Attack {
	return []Attack{
		heartbleed(),
		stackLinearOverflow(),
		stackUnderflow(),
		heapLinearOverflowWrite(),
		heapOverflowRead(),
		heapUnderflowWrite(),
		uafRead(),
		uafWrite(),
		doubleFree(),
		uafAfterRecycle(),
		jumpOverRedzone(),
		padSpill(),
		useAfterReturn(),
		strcpyOverflow(),
	}
}

// strcpyOverflow is the classic unbounded string copy: an attacker-supplied
// string longer than the destination buffer (the interceptor target the
// paper names in §II).
func strcpyOverflow() Attack {
	return Attack{
		Name: "strcpy-overflow",
		Description: "unbounded strcpy of a long attacker string into a " +
			"64-byte heap buffer",
		Expected: Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			src := f.Reg()
			dst := f.Reg()
			v := f.Reg()
			// Attacker string: 256 non-NUL bytes, NUL-terminated.
			f.CallMallocI(src, 320)
			f.MovI(v, 0x41)
			f.ForRangeI(256, func(i prog.Reg) {
				p := f.Reg()
				f.Add(p, src, i)
				f.Store(p, 0, v, 1)
			})
			f.Store(src, 256, prog.Reg(0), 1) // NUL
			// Undersized destination.
			f.CallMallocI(dst, 64)
			f.CallStrcpy(dst, src)
			f.Load(v, dst, 0, 8)
			f.Checksum(v)
		},
	}
}

// useAfterReturn dereferences a pointer into a frame that has returned. The
// REST epilogue correctly DISARMED the redzones (a frame must leave a clean
// stack for its successors, Figure 6A), so the stale access hits plain
// memory: use-after-return is outside REST's stack protection scope, as it
// is for default-configuration ASan.
func useAfterReturn() Attack {
	return Attack{
		Name: "use-after-return",
		Description: "dereference a saved pointer into a returned frame " +
			"(outside scope: epilogues must disarm, so nothing marks dead frames)",
		Expected: Expectation{},
		Build: func(b *prog.Builder) {
			stash := b.Global(64, false)

			callee := b.Func("callee")
			{
				buf := callee.Buffer(128, true)
				p := callee.Reg()
				g := callee.Reg()
				v := callee.Reg()
				callee.MovI(v, 0xDEAD)
				callee.BufAddr(p, buf, 0)
				callee.Store(p, 0, v, 8)
				// Leak the frame pointer into a global.
				callee.GlobalAddr(g, stash, 0)
				callee.Store(g, 0, p, 8)
			}

			f := b.Func("main")
			g := f.Reg()
			p := f.Reg()
			v := f.Reg()
			f.Call("callee")
			f.GlobalAddr(g, stash, 0)
			f.Load(p, g, 0, 8) // dangling pointer into the dead frame
			f.Load(v, p, 0, 8)
			f.Checksum(v)
		},
	}
}

// ByName looks an attack up.
func ByName(name string) (Attack, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return Attack{}, false
}

// heartbleed reproduces Listing 1: an attacker-controlled length drives a
// memcpy past the end of a small heap buffer, leaking adjacent memory
// (passwords in Figure 1). A read-only attack: canaries would not catch it.
func heartbleed() Attack {
	return Attack{
		Name: "heartbleed",
		Description: "attacker-controlled memcpy length over-reads a heap buffer " +
			"(CVE-2014-0160 shape, Listing 1)",
		Expected: Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			payload := f.Reg()
			src := f.Reg()
			dst := f.Reg()
			secret := f.Reg()
			v := f.Reg()
			// The "SSL record": an 18-byte-ish request buffer.
			f.CallMallocI(src, 64)
			// A neighbouring allocation holding sensitive data.
			f.CallMallocI(secret, 64)
			f.MovI(v, 0x5EC4E7)
			f.Store(secret, 0, v, 8)
			// Response buffer sized by the attacker-controlled length.
			f.MovI(payload, 512) // claims 512 bytes; src holds 64
			f.CallMalloc(dst, payload)
			// memcpy(buffer, p, payload): the vulnerable copy.
			f.CallMemcpy(dst, src, payload)
			// Exfiltrate (only reached if undetected).
			f.Load(v, dst, 0, 8)
			f.Checksum(v)
		},
	}
}

// stackLinearOverflow sweeps writes past a protected stack buffer.
func stackLinearOverflow() Attack {
	return Attack{
		Name:        "stack-linear-overflow",
		Description: "loop writes past the end of a stack array into the redzone",
		Expected:    Expectation{ASan: true, RESTFull: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			buf := f.Buffer(128, true)
			p := f.Reg()
			f.BufAddr(p, buf, 0)
			f.ForRangeI(20, func(i prog.Reg) { // 160 bytes into a 128B buffer
				f.Store(p, 0, i, 8)
				f.AddI(p, p, 8)
			})
		},
	}
}

// stackUnderflow writes before the start of a protected stack buffer.
func stackUnderflow() Attack {
	return Attack{
		Name:        "stack-underflow",
		Description: "write below the start of a stack array (left redzone)",
		Expected:    Expectation{ASan: true, RESTFull: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			buf := f.Buffer(128, true)
			p := f.Reg()
			v := f.Reg()
			f.MovI(v, 0x41)
			f.BufAddr(p, buf, -8)
			f.Store(p, 0, v, 8)
		},
	}
}

// heapLinearOverflowWrite sweeps writes past a heap allocation.
func heapLinearOverflowWrite() Attack {
	return Attack{
		Name:        "heap-linear-overflow-write",
		Description: "loop writes past the end of a heap chunk into the redzone",
		Expected:    Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			q := f.Reg()
			f.CallMallocI(p, 128)
			f.Mov(q, p)
			f.ForRangeI(24, func(i prog.Reg) { // 192 bytes into 128
				f.Store(q, 0, i, 8)
				f.AddI(q, q, 8)
			})
		},
	}
}

// heapOverflowRead reads one word past a heap allocation (silent info leak).
func heapOverflowRead() Attack {
	return Attack{
		Name:        "heap-overflow-read",
		Description: "single out-of-bounds read one word past a heap chunk",
		Expected:    Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			v := f.Reg()
			f.CallMallocI(p, 64)
			f.Load(v, p, 64, 8)
			f.Checksum(v)
		},
	}
}

// heapUnderflowWrite corrupts allocator metadata below the chunk.
func heapUnderflowWrite() Attack {
	return Attack{
		Name:        "heap-underflow-write",
		Description: "write below a heap chunk (metadata/left-redzone corruption)",
		Expected:    Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			v := f.Reg()
			f.CallMallocI(p, 64)
			f.MovI(v, 0xBAD)
			f.Store(p, -8, v, 8)
		},
	}
}

// uafRead dereferences a dangling pointer.
func uafRead() Attack {
	return Attack{
		Name:        "uaf-read",
		Description: "read through a dangling pointer after free",
		Expected:    Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			v := f.Reg()
			f.CallMallocI(p, 256)
			f.CallFree(p)
			f.Load(v, p, 128, 8)
			f.Checksum(v)
		},
	}
}

// uafWrite writes through a dangling pointer.
func uafWrite() Attack {
	return Attack{
		Name:        "uaf-write",
		Description: "write through a dangling pointer after free",
		Expected:    Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			v := f.Reg()
			f.CallMallocI(p, 256)
			f.CallFree(p)
			f.MovI(v, 0x41414141)
			f.Store(p, 0, v, 8)
		},
	}
}

// doubleFree frees the same chunk twice.
func doubleFree() Attack {
	return Attack{
		Name:        "double-free",
		Description: "free the same pointer twice",
		Expected:    Expectation{ASan: true, RESTFull: true, RESTHeap: true},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			f.CallMallocI(p, 64)
			f.CallFree(p)
			f.CallFree(p)
		},
	}
}

// uafAfterRecycle exercises the documented temporal false-negative window
// (§V-C "Temporal Protection"): after the freed chunk leaves quarantine and
// is reallocated, a dangling-pointer access is indistinguishable from a
// legitimate access to the new allocation. No defense catches it.
func uafAfterRecycle() Attack {
	return Attack{
		Name: "uaf-after-recycle",
		Description: "dangling access after the chunk cycles through quarantine " +
			"and is reallocated (documented temporal window, §V-C)",
		Expected: Expectation{},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			v := f.Reg()
			f.CallMallocI(p, 4096)
			f.CallFree(p)
			// Churn a different size class far past the 256KB quarantine cap
			// so p is evicted to the free pool without being re-consumed by the
			// churn itself.
			f.ForRangeI(100, func(prog.Reg) {
				q := f.Reg()
				f.CallMallocI(q, 8192)
				f.CallFree(q)
			})
			// Reallocate p's size class; the allocator hands p back.
			q := f.Reg()
			f.CallMallocI(q, 4096)
			// Dangling access through the ORIGINAL pointer.
			f.Load(v, p, 0, 8)
			f.Checksum(v)
			f.CallFree(q)
		},
	}
}

// jumpOverRedzone is the targeted (non-linear) spatial attack the tripwire
// approach cannot see (§V-C "Predictability", §VII): the corrupted pointer
// skips the redzone entirely and lands in the adjacent allocation.
func jumpOverRedzone() Attack {
	return Attack{
		Name: "jump-over-redzone",
		Description: "targeted access skips the redzone into a neighbouring " +
			"chunk (tripwire blind spot; needs layout randomization)",
		Expected: Expectation{},
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			p := f.Reg()
			q := f.Reg()
			v := f.Reg()
			f.CallMallocI(p, 128)
			f.CallMallocI(q, 128)
			// Attacker computes the stride between chunks and jumps straight
			// into q via p (no redzone touch). The stride equals the chunk
			// spacing: header + redzones + padded payload.
			f.Sub(v, q, p)
			f.Add(v, v, p) // v = q computed from p
			f.Load(v, v, 0, 8)
			f.Checksum(v)
		},
	}
}

// padSpill writes into the alignment pad between a protected buffer and its
// right redzone: the spatial false-negative window (§V-C "False Negatives").
func padSpill() Attack {
	return Attack{
		Name: "pad-spill",
		Description: "overflow lands in the token-alignment pad, short of the " +
			"redzone (documented false negative; narrower tokens shrink it)",
		Expected: Expectation{ASan: true}, // ASan's 8-byte shadow granularity catches it
		Build: func(b *prog.Builder) {
			f := b.Func("main")
			buf := f.Buffer(100, true) // pads to 128 under 64B tokens
			p := f.Reg()
			v := f.Reg()
			f.MovI(v, 0x41)
			f.BufAddr(p, buf, 104) // inside [100,128) pad window
			f.Store(p, 0, v, 8)
		},
	}
}
