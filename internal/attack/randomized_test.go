package attack_test

import (
	"testing"

	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/world"
)

// precomputedStrideJump models the §V-C layout-knowledge attacker: it jumps
// from one allocation to where the *deterministic* allocator would place
// the next (header 64 + redzone 64 + padded 128 + redzone 64 = 320 bytes),
// never touching the redzone in between.
func precomputedStrideJump(b *prog.Builder) {
	f := b.Func("main")
	p := f.Reg()
	q := f.Reg()
	v := f.Reg()
	f.CallMallocI(p, 128)
	f.CallMallocI(q, 128)
	f.MovI(v, 0x41)
	// Deterministic-layout stride; under randomization this lands in the
	// sprinkled slack instead of q.
	f.Store(p, 320, v, 8)
	f.Load(v, p, 320, 8)
	f.Checksum(v)
}

func TestDeterministicLayoutIsJumpable(t *testing.T) {
	// The documented tripwire blind spot: with a predictable layout, the
	// precomputed jump lands exactly in the neighbouring chunk.
	w, err := world.Build(world.Spec{Pass: prog.RESTHeap(64), Mode: core.Secure},
		precomputedStrideJump)
	if err != nil {
		t.Fatal(err)
	}
	out := w.RunFunctional()
	if out.Detected() {
		t.Fatalf("deterministic layout detected the jump: %s", out)
	}
	if out.Checksum != 0x41 {
		t.Errorf("jump did not land in the neighbour (checksum %#x)", out.Checksum)
	}
}

func TestRandomizedLayoutCatchesPrecomputedJump(t *testing.T) {
	// §V-C's recommended mitigations: layout randomization plus sprinkled
	// tokens in the slack. The fixed-stride jump must now be caught for
	// most layouts (whenever a non-zero gap displaced the neighbour).
	caught := 0
	const trials = 24
	for seed := int64(0); seed < trials; seed++ {
		s := seed
		w, err := world.Build(world.Spec{
			Pass: prog.RESTHeap(64), Mode: core.Secure, RandomizeHeap: &s,
		}, precomputedStrideJump)
		if err != nil {
			t.Fatal(err)
		}
		out := w.RunFunctional()
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.Exception != nil {
			caught++
		}
	}
	if caught < trials/2 {
		t.Errorf("randomized+sprinkled layout caught %d/%d precomputed jumps, want >= %d",
			caught, trials, trials/2)
	}
	t.Logf("caught %d/%d precomputed-stride jumps under randomization", caught, trials)
}

func TestRandomizedLayoutBenignUnaffected(t *testing.T) {
	// Randomization must not break correct programs.
	benign := func(b *prog.Builder) {
		f := b.Func("main")
		p := f.Reg()
		v := f.Reg()
		f.ForRangeI(50, func(i prog.Reg) {
			f.CallMallocI(p, 96)
			f.Store(p, 0, i, 8)
			f.Load(v, p, 0, 8)
			f.Checksum(v)
			f.CallFree(p)
		})
	}
	s := int64(7)
	w, err := world.Build(world.Spec{
		Pass: prog.RESTHeap(64), Mode: core.Secure, RandomizeHeap: &s,
	}, benign)
	if err != nil {
		t.Fatal(err)
	}
	out := w.RunFunctional()
	if out.Detected() || out.Err != nil {
		t.Fatalf("benign program under randomization: %s", out)
	}
	if err := w.Tracker.VerifyConsistency(); err != nil {
		t.Error(err)
	}
}
