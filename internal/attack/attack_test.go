package attack_test

import (
	"testing"

	"rest/internal/attack"
	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/world"
)

// detection runs an attack under a pass and reports whether it was caught.
func detection(t *testing.T, a attack.Attack, pass prog.PassConfig, mode core.Mode) (bool, world.Outcome) {
	t.Helper()
	w, err := world.Build(world.Spec{Pass: pass, Mode: mode}, a.Build)
	if err != nil {
		t.Fatalf("%s: world.Build: %v", a.Name, err)
	}
	out := w.RunFunctional()
	if out.Err != nil {
		t.Fatalf("%s: run error: %v", a.Name, out.Err)
	}
	return out.Detected(), out
}

func TestSuiteMatchesExpectations(t *testing.T) {
	for _, a := range attack.All() {
		cases := []struct {
			name string
			pass prog.PassConfig
			want bool
		}{
			{"plain", prog.Plain(), a.Expected.Plain},
			{"asan", prog.ASanFull(), a.Expected.ASan},
			{"rest-full", prog.RESTFull(64), a.Expected.RESTFull},
			{"rest-heap", prog.RESTHeap(64), a.Expected.RESTHeap},
		}
		for _, c := range cases {
			got, out := detection(t, a, c.pass, core.Secure)
			if got != c.want {
				t.Errorf("%s under %s: detected=%v (%s), want %v",
					a.Name, c.name, got, out, c.want)
			}
		}
	}
}

func TestHeartbleedDetails(t *testing.T) {
	a, ok := attack.ByName("heartbleed")
	if !ok {
		t.Fatal("heartbleed missing")
	}
	// Plain: the over-read silently succeeds and "leaks" (checksum is the
	// neighbouring data).
	got, out := detection(t, a, prog.Plain(), core.Secure)
	if got {
		t.Errorf("plain detected heartbleed: %s", out)
	}
	// REST heap-only (legacy binary): hardware load violation mid-memcpy.
	got, out = detection(t, a, prog.RESTHeap(64), core.Secure)
	if !got || out.Exception == nil || out.Exception.Kind != core.ViolationLoad {
		t.Errorf("rest-heap heartbleed: %s, want hardware load violation", out)
	}
	// Debug mode: same detection, precise.
	_, out = detection(t, a, prog.RESTHeap(64), core.Debug)
	if out.Exception == nil || !out.Exception.Precise {
		t.Errorf("debug-mode heartbleed exception not precise: %v", out.Exception)
	}
}

func TestUAFKinds(t *testing.T) {
	for _, name := range []string{"uaf-read", "uaf-write"} {
		a, _ := attack.ByName(name)
		_, out := detection(t, a, prog.RESTHeap(64), core.Secure)
		if out.Exception == nil {
			t.Fatalf("%s: no REST exception", name)
		}
		want := core.ViolationLoad
		if name == "uaf-write" {
			want = core.ViolationStore
		}
		if out.Exception.Kind != want {
			t.Errorf("%s: kind = %v, want %v", name, out.Exception.Kind, want)
		}
	}
}

func TestDoubleFreeReportedByAllocator(t *testing.T) {
	a, _ := attack.ByName("double-free")
	_, out := detection(t, a, prog.RESTHeap(64), core.Secure)
	if out.Violation == nil || out.Violation.What != "double free" {
		t.Errorf("double-free outcome: %s", out)
	}
}

func TestRecycleWindowDocumented(t *testing.T) {
	// The §V-C temporal window: after quarantine recycling no defense
	// detects the dangling access — this test pins the documented gap.
	a, _ := attack.ByName("uaf-after-recycle")
	for _, pass := range []prog.PassConfig{prog.ASanFull(), prog.RESTHeap(64)} {
		got, out := detection(t, a, pass, core.Secure)
		if got {
			t.Errorf("uaf-after-recycle unexpectedly detected under %s: %s",
				pass.Flavour, out)
		}
	}
}

func TestPadSpillWidthSensitivity(t *testing.T) {
	// 64B tokens miss the pad spill; ASan's byte-granular shadow catches it.
	a, _ := attack.ByName("pad-spill")
	if got, _ := detection(t, a, prog.RESTFull(64), core.Secure); got {
		t.Error("pad-spill detected with 64B tokens, want documented miss")
	}
	if got, out := detection(t, a, prog.ASanFull(), core.Secure); !got {
		t.Errorf("pad-spill not detected by ASan: %s", out)
	}
}

func TestSuiteComplete(t *testing.T) {
	if len(attack.All()) < 13 {
		t.Errorf("attack suite has %d entries, want >= 13", len(attack.All()))
	}
	if _, ok := attack.ByName("nope"); ok {
		t.Error("ByName(nope) found something")
	}
	for _, a := range attack.All() {
		if a.Description == "" {
			t.Errorf("%s: empty description", a.Name)
		}
		if a.Expected.Plain {
			t.Errorf("%s: expects plain to detect (baseline detects nothing)", a.Name)
		}
	}
}
