// Package layout fixes the simulated address-space layout shared by the
// compiler, allocators, shadow map and simulators.
//
// The layout mirrors a conventional Unix process image (the paper simulates
// 32-bit i386 binaries under gem5 syscall emulation; we keep the same
// regions at slightly roomier 64-bit addresses):
//
//	code    0x0040_0000
//	globals 0x1000_0000
//	heap    0x2000_0000 .. 0x3fff_ffff (grows up)
//	shadow  0x4000_0000 .. 0x5fff_ffff (ASan only: f(a) = (a>>3) + ShadowBase)
//	stack   0x7fff_f000 (grows down)
package layout

// Region base addresses and extents.
const (
	CodeBase   = 0x0040_0000
	GlobalBase = 0x1000_0000
	HeapBase   = 0x2000_0000
	HeapLimit  = 0x3fff_ffff
	ShadowBase = 0x4000_0000
	StackTop   = 0x7fff_f000
	StackLimit = 0x7000_0000 // lowest legal stack address
)

// InHeap reports whether addr lies in the heap region.
func InHeap(addr uint64) bool { return addr >= HeapBase && addr <= HeapLimit }

// InStack reports whether addr lies in the stack region.
func InStack(addr uint64) bool { return addr >= StackLimit && addr < StackTop }

// InShadow reports whether addr lies in the ASan shadow region.
func InShadow(addr uint64) bool { return addr >= ShadowBase && addr < ShadowBase+0x2000_0000 }
