package layout

import "testing"

func TestRegionPredicates(t *testing.T) {
	if !InHeap(HeapBase) || !InHeap(HeapLimit) {
		t.Error("heap bounds not in heap")
	}
	if InHeap(HeapBase-1) || InHeap(HeapLimit+1) {
		t.Error("non-heap addresses in heap")
	}
	if !InStack(StackTop-8) || InStack(StackTop) {
		t.Error("stack top handling wrong")
	}
	if !InStack(StackLimit) || InStack(StackLimit-1) {
		t.Error("stack limit handling wrong")
	}
	if !InShadow(ShadowBase) || InShadow(ShadowBase-1) {
		t.Error("shadow base handling wrong")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	// Shadow of heap and stack must land inside the shadow region and not
	// collide with any program region.
	for _, a := range []uint64{HeapBase, HeapLimit, StackTop - 8, StackLimit} {
		sh := (a >> 3) + ShadowBase
		if !InShadow(sh) {
			t.Errorf("shadow of %#x = %#x outside shadow region", a, sh)
		}
		if InHeap(sh) || InStack(sh) {
			t.Errorf("shadow of %#x collides with a program region", a)
		}
	}
	if CodeBase >= GlobalBase || GlobalBase >= HeapBase || HeapLimit >= ShadowBase {
		t.Error("region ordering broken")
	}
}
