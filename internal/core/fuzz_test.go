package core

import (
	"bytes"
	"math/rand"
	"testing"

	"rest/internal/mem"
)

// FuzzTokenDetector throws arbitrary line contents and token configurations
// at the fill-time content detector. Properties pinned:
//
//  1. the detector never panics, whatever the line holds;
//  2. it flags exactly the chunks whose content equals the token value
//     (checked against an independent byte-compare oracle);
//  3. every chunk the fuzzer plants the token into is flagged;
//  4. the mask is a pure function of the line — any address inside the
//     line resolves to the same mask;
//  5. the architectural armed-set view agrees with the content view when
//     all planting goes through Arm (the tracker's core invariant).
func FuzzTokenDetector(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), []byte{})
	f.Add(int64(42), uint8(2), uint8(0b0001), []byte("some line contents"))
	f.Add(int64(7), uint8(1), uint8(0b1010), bytes.Repeat([]byte{0xFF}, 64))
	f.Add(int64(-3), uint8(4), uint8(0b1111), bytes.Repeat([]byte{0x00}, 80))
	f.Fuzz(func(t *testing.T, seed int64, widthSel, plant uint8, data []byte) {
		widths := []Width{Width16, Width32, Width64}
		w := widths[int(widthSel)%len(widths)]
		reg, err := NewTokenRegister(w, Secure, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("NewTokenRegister(%d): %v", w, err)
		}
		m := mem.New()
		trk := NewTokenTracker(reg, m)

		// Fill the line with fuzzer-chosen content, then plant the token in
		// the chunks selected by plant's low bits — through Arm, so the
		// armed set stays the architectural mirror of the content.
		const base = uint64(0x7000_0000)
		var line [LineBytes]byte
		copy(line[:], data)
		m.Write(base, line[:])
		chunks := w.ChunksPerLine()
		for i := 0; i < chunks; i++ {
			if plant&(1<<i) != 0 {
				if exc := trk.Arm(base+uint64(i)*uint64(w), 0); exc != nil {
					t.Fatalf("Arm(chunk %d): %v", i, exc)
				}
			}
		}

		mask := trk.LineTokenMask(base)

		// Oracle: independent byte-compare of each chunk against the token.
		var want uint8
		tok := reg.Value()
		buf := make([]byte, int(w))
		for i := 0; i < chunks; i++ {
			m.Read(base+uint64(i)*uint64(w), buf)
			if bytes.Equal(buf, tok) {
				want |= 1 << i
			}
		}
		if mask != want {
			t.Errorf("width %d plant %04b: mask %04b, oracle %04b", w, plant, mask, want)
		}
		if mask&(plant&(1<<chunks-1)) != plant&(1<<chunks-1) {
			t.Errorf("width %d: planted chunks %04b not all flagged in %04b", w, plant, mask)
		}

		// Pure function of the line: any interior address gives the same mask.
		off := uint64(0)
		if len(data) > 0 {
			off = uint64(data[0]) % LineBytes
		}
		if got := trk.LineTokenMask(base + off); got != mask {
			t.Errorf("mask differs at interior address +%d: %04b vs %04b", off, got, mask)
		}

		// Content view and armed-set view must coincide (arms went through
		// the tracker; fuzz data colliding with a 128+ bit token is beyond
		// the fuzzer's reach).
		if armed := trk.ArmedMaskForLine(base); armed != mask {
			t.Errorf("armed-set mask %04b diverges from content mask %04b", armed, mask)
		}

		// The architectural checker must not panic on arbitrary access
		// shapes, and must flag accesses that overlap a flagged chunk.
		size := uint8(1 + off%8)
		exc := trk.CheckAccess(base+off, size, plant&1 != 0, 0x40_0000)
		first := int(off / uint64(w))
		last := int((off + uint64(size) - 1) / uint64(w))
		overlaps := false
		for i := first; i <= last && i < chunks; i++ {
			if mask&(1<<i) != 0 {
				overlaps = true
			}
		}
		if overlaps && exc == nil {
			t.Errorf("access +%d size %d overlaps flagged chunk but raised nothing", off, size)
		}
		if !overlaps && exc != nil {
			t.Errorf("access +%d size %d overlaps nothing but raised %v", off, size, exc)
		}
	})
}
