package core

import (
	"fmt"

	"rest/internal/mem"
)

// TokenTracker enforces architectural REST semantics over a memory image: it
// executes ARM and DISARM, answers "does this access touch a token?", and
// keeps the token content in memory consistent with its armed set.
//
// Hardware equivalence: the armed set is exactly the information the L1-D
// token bits plus the fill-time content detector reconstruct. Because Arm
// writes the token value into memory and Disarm zeroes it, membership in the
// armed set and content-equality with the token register coincide (checked
// by TestTrackerContentEquivalence).
type TokenTracker struct {
	reg   *TokenRegister
	m     *mem.Memory
	armed map[uint64]struct{} // keys are token-width-aligned chunk addresses

	// Stats.
	Arms    uint64
	Disarms uint64
	Checks  uint64
}

// NewTokenTracker binds a tracker to a token register and memory image.
func NewTokenTracker(reg *TokenRegister, m *mem.Memory) *TokenTracker {
	return &TokenTracker{reg: reg, m: m, armed: make(map[uint64]struct{})}
}

// Register returns the bound token register.
func (t *TokenTracker) Register() *TokenRegister { return t.reg }

// Arm plants a token at addr (§III-A). addr must be token-width aligned.
// Re-arming an already-armed chunk is idempotent in the architecture (the
// line simply still holds the token).
func (t *TokenTracker) Arm(addr, pc uint64) *Exception {
	if !t.reg.Aligned(addr) {
		return &Exception{Kind: ViolationMisaligned, Addr: addr, PC: pc, Precise: true}
	}
	t.m.Write(addr, t.reg.value)
	t.armed[addr] = struct{}{}
	t.Arms++
	return nil
}

// Disarm removes the token at addr, zeroing the chunk (§III-A/B: disarm
// "overwrites a token ... with the value zero" and faults if no token is
// present, preventing brute-force disarms, §V-C).
func (t *TokenTracker) Disarm(addr, pc uint64) *Exception {
	if !t.reg.Aligned(addr) {
		return &Exception{Kind: ViolationMisaligned, Addr: addr, PC: pc, Precise: true}
	}
	if _, ok := t.armed[addr]; !ok {
		return &Exception{Kind: ViolationDisarmUnarmed, Addr: addr, PC: pc, Precise: true}
	}
	t.m.Zero(addr, uint64(t.reg.width))
	delete(t.armed, addr)
	t.Disarms++
	return nil
}

// Armed reports whether the token-width chunk containing addr is armed.
func (t *TokenTracker) Armed(addr uint64) bool {
	_, ok := t.armed[t.reg.Align(addr)]
	return ok
}

// CheckAccess tests whether a size-byte access at addr touches any armed
// chunk, returning the violation (load or store flavoured) or nil. This is
// the architectural contract the cache-level detector implements in the
// timing model.
func (t *TokenTracker) CheckAccess(addr uint64, size uint8, isStore bool, pc uint64) *Exception {
	t.Checks++
	if len(t.armed) == 0 {
		return nil
	}
	w := uint64(t.reg.width)
	first := t.reg.Align(addr)
	last := t.reg.Align(addr + uint64(size) - 1)
	for a := first; a <= last; a += w {
		if _, ok := t.armed[a]; ok {
			kind := ViolationLoad
			if isStore {
				kind = ViolationStore
			}
			// Precision is resolved by the timing model; architecturally we
			// report the faulting chunk.
			return &Exception{Kind: kind, Addr: a, PC: pc, Precise: t.reg.mode == Debug}
		}
	}
	return nil
}

// LineTokenMask reconstructs the per-chunk token bits for the 64-byte line
// containing addr, exactly as the fill-time content detector would: by
// comparing each token-width chunk of line content against the token value.
// Bit i corresponds to chunk i of the line.
func (t *TokenTracker) LineTokenMask(lineAddr uint64) uint8 {
	lineAddr &^= LineBytes - 1
	var mask uint8
	w := uint64(t.reg.width)
	for i := 0; i < t.reg.width.ChunksPerLine(); i++ {
		if t.reg.MatchesMem(t.m, lineAddr+uint64(i)*w) {
			mask |= 1 << i
		}
	}
	return mask
}

// ArmedMaskForLine returns the same mask from the armed set instead of
// memory content; the two must agree (property-tested) as long as all token
// manipulation goes through Arm/Disarm.
func (t *TokenTracker) ArmedMaskForLine(lineAddr uint64) uint8 {
	lineAddr &^= LineBytes - 1
	var mask uint8
	w := uint64(t.reg.width)
	for i := 0; i < t.reg.width.ChunksPerLine(); i++ {
		if _, ok := t.armed[lineAddr+uint64(i)*w]; ok {
			mask |= 1 << i
		}
	}
	return mask
}

// ChunksPerLine reports how many token chunks one cache line holds; together
// with LineTokenMask this satisfies the timing model's TokenSource contract.
func (t *TokenTracker) ChunksPerLine() int { return t.reg.width.ChunksPerLine() }

// ArmedCount reports how many chunks are currently armed.
func (t *TokenTracker) ArmedCount() int { return len(t.armed) }

// ArmedChunks returns the addresses of all armed chunks (order undefined).
// Used by the OS layer (§IV-B) when cloning processes or rotating tokens:
// each armed chunk must be re-written with the new context's token value.
func (t *TokenTracker) ArmedChunks() []uint64 {
	out := make([]uint64, 0, len(t.armed))
	for a := range t.armed {
		out = append(out, a)
	}
	return out
}

// Rebind atomically rewrites every armed chunk with the register's current
// token value (after a Rotate) and keeps the armed set intact. This is the
// privileged re-arming pass OS code performs on token rotation or when
// adopting a cloned address space.
func (t *TokenTracker) Rebind() {
	for a := range t.armed {
		t.m.Write(a, t.reg.value)
	}
}

// ArmRange arms every token-width chunk in [addr, addr+n). addr and n must
// be token-width aligned. It is the building block for redzone installation
// and quarantine fills.
func (t *TokenTracker) ArmRange(addr, n, pc uint64) *Exception {
	w := uint64(t.reg.width)
	if addr%w != 0 || n%w != 0 {
		return &Exception{Kind: ViolationMisaligned, Addr: addr, PC: pc, Precise: true}
	}
	for a := addr; a < addr+n; a += w {
		if exc := t.Arm(a, pc); exc != nil {
			return exc
		}
	}
	return nil
}

// DisarmRange disarms every token-width chunk in [addr, addr+n).
func (t *TokenTracker) DisarmRange(addr, n, pc uint64) *Exception {
	w := uint64(t.reg.width)
	if addr%w != 0 || n%w != 0 {
		return &Exception{Kind: ViolationMisaligned, Addr: addr, PC: pc, Precise: true}
	}
	for a := addr; a < addr+n; a += w {
		if exc := t.Disarm(a, pc); exc != nil {
			return exc
		}
	}
	return nil
}

// --- Fault-injection primitives (internal/fault) ---
//
// The injectors below deliberately break the content/tracker invariant the
// way real hardware faults would, then re-derive the armed set from memory
// content — exactly what the fill-time detector does. They exist so the §V
// failure-mode analysis (token corruption, collisions, token-bit loss) can
// be reproduced as executable scenarios; nothing on the normal Arm/Disarm
// path calls them.

// InjectBitFlip flips bit (0..7) of the byte at addr directly in memory,
// modelling a DRAM/cache-line bit flip that no store instruction carried
// (and which therefore no detector saw). The armed set is then resynced
// from content for the affected chunk, because that is all the hardware
// ever knows: a corrupted token no longer matches the token register, so
// the fill-time detector silently stops flagging the chunk (§V-B). It
// returns true when the flip changed the chunk's armed status.
func (t *TokenTracker) InjectBitFlip(addr uint64, bit uint) bool {
	b := t.m.Byte(addr)
	t.m.SetByte(addr, b^(1<<(bit&7)))
	return t.ResyncChunk(addr)
}

// InjectTokenWrite copies the secret token value into the chunk containing
// addr without going through Arm, modelling a token-value collision: program
// data that happens to equal the token (§V-B estimates the probability at
// 2^-128 or less; the injector forces the coincidence). The detector will
// flag the chunk on the next fill even though no redzone lives there.
func (t *TokenTracker) InjectTokenWrite(addr uint64) {
	a := t.reg.Align(addr)
	t.m.Write(a, t.reg.value)
	t.ResyncChunk(a)
}

// InjectTokenDrop zeroes the chunk containing addr directly in memory,
// modelling a writeback packet that lost the token value (token-bit loss on
// eviction: the metadata bit existed only at the L1-D, and the fault dropped
// the materialized token from the outgoing line). The chunk silently leaves
// the armed set — protection is gone and nothing was reported.
func (t *TokenTracker) InjectTokenDrop(addr uint64) {
	a := t.reg.Align(addr)
	t.m.Zero(a, uint64(t.reg.width))
	t.ResyncChunk(a)
}

// ResyncChunk re-derives the armed status of the chunk containing addr from
// memory content, the way a fill-time detector pass over the line would. It
// returns true when the status changed. This is the hardware-faithful
// repair step after any content mutation that bypassed Arm/Disarm.
func (t *TokenTracker) ResyncChunk(addr uint64) bool {
	a := t.reg.Align(addr)
	_, was := t.armed[a]
	is := t.reg.MatchesMem(t.m, a)
	switch {
	case is && !was:
		t.armed[a] = struct{}{}
	case !is && was:
		delete(t.armed, a)
	}
	return is != was
}

// VerifyConsistency exhaustively checks the tracker/content invariant for
// every armed chunk and returns an error naming the first divergence. Used
// by tests and the harness's self-check mode.
func (t *TokenTracker) VerifyConsistency() error {
	for a := range t.armed {
		if !t.reg.MatchesMem(t.m, a) {
			return fmt.Errorf("core: chunk %#x armed but memory does not hold token", a)
		}
	}
	return nil
}
