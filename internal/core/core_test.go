package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rest/internal/mem"
)

func newTracker(t *testing.T, w Width, mode Mode) (*TokenTracker, *mem.Memory) {
	t.Helper()
	reg, err := NewTokenRegister(w, mode, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("NewTokenRegister: %v", err)
	}
	m := mem.New()
	return NewTokenTracker(reg, m), m
}

func TestWidthValid(t *testing.T) {
	for _, w := range []Width{Width16, Width32, Width64} {
		if !w.Valid() {
			t.Errorf("Width %d should be valid", w)
		}
	}
	for _, w := range []Width{0, 8, 24, 128} {
		if w.Valid() {
			t.Errorf("Width %d should be invalid", w)
		}
	}
	if Width64.ChunksPerLine() != 1 || Width32.ChunksPerLine() != 2 || Width16.ChunksPerLine() != 4 {
		t.Error("ChunksPerLine wrong")
	}
}

func TestNewTokenRegisterRejectsBadWidth(t *testing.T) {
	if _, err := NewTokenRegister(Width(8), Secure, nil); err == nil {
		t.Error("expected error for width 8")
	}
}

func TestTokenValueNonZeroAndWidth(t *testing.T) {
	reg, err := NewTokenRegister(Width32, Secure, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Value()) != 32 {
		t.Errorf("token value len = %d, want 32", len(reg.Value()))
	}
	if allZero(reg.Value()) {
		t.Error("token value is all zero")
	}
	old := append([]byte(nil), reg.Value()...)
	reg.Rotate(rand.New(rand.NewSource(9)))
	if allZero(reg.Value()) {
		t.Error("rotated token is all zero")
	}
	same := true
	for i := range old {
		if old[i] != reg.Value()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("Rotate did not change token value")
	}
}

func TestModeString(t *testing.T) {
	if Secure.String() != "secure" || Debug.String() != "debug" {
		t.Error("mode names wrong")
	}
}

func TestArmWritesTokenToMemory(t *testing.T) {
	tr, m := newTracker(t, Width64, Secure)
	if exc := tr.Arm(0x1000, 1); exc != nil {
		t.Fatalf("Arm: %v", exc)
	}
	if !m.Equal(0x1000, tr.Register().Value()) {
		t.Error("memory does not contain token after Arm")
	}
	if !tr.Armed(0x1000) || !tr.Armed(0x103f) {
		t.Error("Armed() false within armed chunk")
	}
	if tr.Armed(0x1040) {
		t.Error("Armed() true outside armed chunk")
	}
}

func TestArmMisaligned(t *testing.T) {
	tr, _ := newTracker(t, Width64, Secure)
	exc := tr.Arm(0x1008, 1)
	if exc == nil || exc.Kind != ViolationMisaligned {
		t.Fatalf("Arm(misaligned) = %v, want misaligned exception", exc)
	}
	if !exc.Precise {
		t.Error("misaligned arm exception must be precise")
	}
}

func TestDisarmZeroesAndClears(t *testing.T) {
	tr, m := newTracker(t, Width64, Secure)
	tr.Arm(0x2000, 1)
	if exc := tr.Disarm(0x2000, 2); exc != nil {
		t.Fatalf("Disarm: %v", exc)
	}
	if tr.Armed(0x2000) {
		t.Error("still armed after disarm")
	}
	if !m.Equal(0x2000, make([]byte, 64)) {
		t.Error("chunk not zeroed after disarm")
	}
}

func TestDisarmUnarmedFaults(t *testing.T) {
	tr, _ := newTracker(t, Width64, Secure)
	exc := tr.Disarm(0x3000, 1)
	if exc == nil || exc.Kind != ViolationDisarmUnarmed {
		t.Fatalf("Disarm(unarmed) = %v, want disarm-unarmed exception", exc)
	}
}

func TestCheckAccess(t *testing.T) {
	tr, _ := newTracker(t, Width64, Secure)
	tr.Arm(0x1000, 1)

	// Loads and stores inside the chunk fault with the right kinds.
	if exc := tr.CheckAccess(0x1010, 8, false, 5); exc == nil || exc.Kind != ViolationLoad {
		t.Errorf("load in token = %v, want load violation", exc)
	}
	if exc := tr.CheckAccess(0x1010, 8, true, 5); exc == nil || exc.Kind != ViolationStore {
		t.Errorf("store in token = %v, want store violation", exc)
	}
	// Access straddling into the chunk faults.
	if exc := tr.CheckAccess(0xffc, 8, false, 5); exc == nil {
		t.Error("straddling access not detected")
	}
	// Access just outside does not fault.
	if exc := tr.CheckAccess(0xff8, 8, false, 5); exc != nil {
		t.Errorf("access before token faulted: %v", exc)
	}
	if exc := tr.CheckAccess(0x1040, 8, false, 5); exc != nil {
		t.Errorf("access after token faulted: %v", exc)
	}
}

func TestCheckAccessPrecisionByMode(t *testing.T) {
	trS, _ := newTracker(t, Width64, Secure)
	trS.Arm(0x1000, 1)
	if exc := trS.CheckAccess(0x1000, 1, false, 1); exc.Precise {
		t.Error("secure-mode violation reported precise")
	}
	trD, _ := newTracker(t, Width64, Debug)
	trD.Arm(0x1000, 1)
	if exc := trD.CheckAccess(0x1000, 1, false, 1); !exc.Precise {
		t.Error("debug-mode violation reported imprecise")
	}
}

func TestSubLineWidths(t *testing.T) {
	tr, _ := newTracker(t, Width16, Secure)
	tr.Arm(0x1010, 1) // second 16B chunk of the line

	// Access to the armed chunk faults.
	if exc := tr.CheckAccess(0x1018, 4, false, 1); exc == nil {
		t.Error("access to armed 16B chunk not detected")
	}
	// Access to a different chunk of the same line does not fault: the
	// per-chunk token bits give chunk granularity (§III-B token widths).
	if exc := tr.CheckAccess(0x1000, 8, false, 1); exc != nil {
		t.Errorf("access to unarmed chunk of same line faulted: %v", exc)
	}
	if exc := tr.CheckAccess(0x1020, 8, true, 1); exc != nil {
		t.Errorf("access to unarmed chunk of same line faulted: %v", exc)
	}
}

func TestLineTokenMask(t *testing.T) {
	tr, _ := newTracker(t, Width16, Secure)
	tr.Arm(0x1000, 1)
	tr.Arm(0x1030, 1)
	want := uint8(0b1001)
	if got := tr.LineTokenMask(0x1000); got != want {
		t.Errorf("LineTokenMask = %04b, want %04b", got, want)
	}
	if got := tr.ArmedMaskForLine(0x1017); got != want {
		t.Errorf("ArmedMaskForLine = %04b, want %04b", got, want)
	}
}

func TestArmDisarmRange(t *testing.T) {
	tr, _ := newTracker(t, Width32, Secure)
	if exc := tr.ArmRange(0x2000, 128, 1); exc != nil {
		t.Fatalf("ArmRange: %v", exc)
	}
	if tr.ArmedCount() != 4 {
		t.Errorf("ArmedCount = %d, want 4", tr.ArmedCount())
	}
	if exc := tr.DisarmRange(0x2000, 128, 1); exc != nil {
		t.Fatalf("DisarmRange: %v", exc)
	}
	if tr.ArmedCount() != 0 {
		t.Errorf("ArmedCount after disarm = %d, want 0", tr.ArmedCount())
	}
	if exc := tr.ArmRange(0x2010, 32, 1); exc == nil || exc.Kind != ViolationMisaligned {
		t.Errorf("misaligned ArmRange = %v, want misaligned", exc)
	}
}

// Property (DESIGN.md decision 2): after any random sequence of arm/disarm
// operations, the armed set and the memory content agree chunk-for-chunk.
func TestTrackerContentEquivalence(t *testing.T) {
	for _, w := range []Width{Width16, Width32, Width64} {
		reg, _ := NewTokenRegister(w, Secure, rand.New(rand.NewSource(int64(w))))
		m := mem.New()
		tr := NewTokenTracker(reg, m)
		r := rand.New(rand.NewSource(99))
		f := func() bool {
			addr := uint64(r.Intn(64)) * uint64(w) // stay in a small arena
			if r.Intn(2) == 0 {
				tr.Arm(addr, 0)
			} else {
				tr.Disarm(addr, 0) // may fault; ignored
			}
			// Check every chunk of the arena both ways.
			for a := uint64(0); a < 64*uint64(w); a += uint64(w) {
				contentIsToken := m.Equal(a, reg.Value())
				if tr.Armed(a) != contentIsToken {
					return false
				}
			}
			return tr.VerifyConsistency() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

// Property: LineTokenMask (content view) equals ArmedMaskForLine (set view)
// for random arm patterns.
func TestMaskEquivalenceProperty(t *testing.T) {
	tr, _ := newTracker(t, Width16, Secure)
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		line := uint64(r.Intn(32)) * LineBytes
		chunk := line + uint64(r.Intn(4))*16
		if r.Intn(2) == 0 {
			tr.Arm(chunk, 0)
		} else {
			tr.Disarm(chunk, 0)
		}
		return tr.LineTokenMask(line) == tr.ArmedMaskForLine(line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExceptionError(t *testing.T) {
	e := &Exception{Kind: ViolationLoad, Addr: 0x1000, PC: 0x400000, Precise: false}
	s := e.Error()
	if s == "" || e.Kind.String() != "load touched token" {
		t.Errorf("unexpected exception formatting: %q", s)
	}
	if ViolationKind(100).String() == "" {
		t.Error("unknown violation kind has empty string")
	}
}

func TestStatsCounting(t *testing.T) {
	tr, _ := newTracker(t, Width64, Secure)
	tr.Arm(0, 0)
	tr.Arm(64, 0)
	tr.Disarm(0, 0)
	tr.CheckAccess(64, 8, false, 0)
	if tr.Arms != 2 || tr.Disarms != 1 || tr.Checks != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/1/1", tr.Arms, tr.Disarms, tr.Checks)
	}
}
