// Package core implements the REST primitive — the paper's primary
// contribution (§III, §V-B).
//
// REST is a single hardware-held secret: a very large random value (the
// token) whose width is a fraction of a cache line (16, 32 or 64 bytes).
// Software plants tokens with the ARM instruction and removes them with
// DISARM; any regular load or store that touches a token raises a privileged
// REST exception. Detection is content-based: the L1-D fill path compares
// incoming line data against the token configuration register and marks
// matching chunks with per-line token bits.
//
// This package holds the token configuration register (value, width, mode),
// the REST exception type, the content detector, and the TokenTracker — the
// architectural ground truth of which chunks are armed. The tracker is an
// acceleration structure over memory content: the invariant
//
//	tracker.Armed(a) ⇔ memory[align(a) : align(a)+W] == token
//
// is enforced by construction (Arm writes the token, Disarm zeroes it) and
// checked by property tests.
package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"rest/internal/mem"
)

// Width is a supported token width in bytes (§III-B "Modifying Token Width").
type Width int

// Supported token widths. The default is a full 64-byte cache line; 32- and
// 16-byte tokens trade overprovisioned secrecy for finer pad granularity.
const (
	Width16 Width = 16
	Width32 Width = 32
	Width64 Width = 64
)

// Valid reports whether w is one of the architecturally supported widths.
func (w Width) Valid() bool { return w == Width16 || w == Width32 || w == Width64 }

// ChunksPerLine reports how many token chunks fit in one 64-byte cache line
// (and hence how many token bits each L1-D line carries: 1, 2 or 4).
func (w Width) ChunksPerLine() int { return LineBytes / int(w) }

// LineBytes is the cache line size of the machine (Table II).
const LineBytes = 64

// Mode selects exception precision (§III-A, §III-B "Exception Reporting").
type Mode uint8

const (
	// Secure mode is the deployment mode: stores commit eagerly and REST
	// exceptions may be imprecise (reported after the offending instruction
	// retired). It is the fast mode.
	Secure Mode = iota
	// Debug mode guarantees precise exceptions: store commit is delayed
	// until write completion and loads are held at the MSHRs while a
	// partial token match is possible.
	Debug
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Debug {
		return "debug"
	}
	return "secure"
}

// ViolationKind classifies REST exceptions.
type ViolationKind uint8

// Exception causes, mirroring §III-A and Table I.
const (
	// ViolationLoad: a load touched an armed chunk.
	ViolationLoad ViolationKind = iota
	// ViolationStore: a store touched an armed chunk.
	ViolationStore
	// ViolationDisarmUnarmed: DISARM of a location holding no token.
	ViolationDisarmUnarmed
	// ViolationForwarding: a load would have forwarded from an in-flight
	// ARM in the store queue (§III-B "LSQ Modification").
	ViolationForwarding
	// ViolationStoreInflightArm: a store aimed at a location with an
	// in-flight ARM in the store queue (Table I, Store/LSQ row).
	ViolationStoreInflightArm
	// ViolationDoubleDisarm: a DISARM matching an in-flight DISARM for the
	// same location in the store queue (Table I, Disarm/LSQ row).
	ViolationDoubleDisarm
	// ViolationMisaligned: ARM/DISARM address not token-width aligned
	// ("precise invalid REST instruction exception", §III-A).
	ViolationMisaligned
)

var violationNames = [...]string{
	ViolationLoad:             "load touched token",
	ViolationStore:            "store touched token",
	ViolationDisarmUnarmed:    "disarm of unarmed location",
	ViolationForwarding:       "load would forward in-flight arm",
	ViolationStoreInflightArm: "store over in-flight arm",
	ViolationDoubleDisarm:     "disarm over in-flight disarm",
	ViolationMisaligned:       "misaligned arm/disarm",
}

// String returns a description of the violation kind.
func (k ViolationKind) String() string {
	if int(k) < len(violationNames) {
		return violationNames[k]
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// Exception is the privileged REST memory-safety exception. It is handled at
// the next higher privilege level; within the simulation it terminates the
// target program. Precise records whether architectural state at the faulting
// instruction is recoverable (always true in debug mode; in secure mode the
// offending instruction may already have retired).
type Exception struct {
	Kind    ViolationKind
	Addr    uint64 // faulting data address
	PC      uint64 // faulting instruction (0 if unattributable)
	Precise bool
	// DetectLagCycles is the number of cycles between the offending
	// instruction's retirement and the exception report (secure mode only;
	// 0 when precise). Filled in by the timing model.
	DetectLagCycles uint64
}

// Error implements the error interface.
func (e *Exception) Error() string {
	prec := "imprecise"
	if e.Precise {
		prec = "precise"
	}
	return fmt.Sprintf("REST exception: %s at addr=%#x pc=%#x (%s)", e.Kind, e.Addr, e.PC, prec)
}

// TokenRegister is the privileged token configuration register (§III-A). It
// holds the secret token value, the configured width, and the mode bit. It
// is written by higher-privileged code via memory-mapped stores; user-level
// code can never read it.
type TokenRegister struct {
	value []byte
	width Width
	mode  Mode
	// words caches value as little-endian uint64 words (2/4/8 for the three
	// widths) so content comparison — the fill-time detector's hot path —
	// runs as word compares instead of byte loops. Rebuilt on Rotate.
	words []uint64
}

// NewTokenRegister draws a fresh random token of the given width from rng.
// A nil rng uses a fixed-seed source (deterministic simulations).
func NewTokenRegister(w Width, mode Mode, rng *rand.Rand) (*TokenRegister, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("core: invalid token width %d", w)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5EC7_70CE))
	}
	v := make([]byte, w)
	for {
		rng.Read(v)
		// An all-zero token would collide with zero-initialized data; the
		// probability is 2^-128 at minimum but a real implementation would
		// redraw, so we do too.
		if !allZero(v) {
			break
		}
	}
	t := &TokenRegister{value: v, width: w, mode: mode}
	t.rebuildWords()
	return t, nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Width returns the configured token width.
func (t *TokenRegister) Width() Width { return t.width }

// Mode returns the configured exception mode.
func (t *TokenRegister) Mode() Mode { return t.mode }

// SetMode flips the mode bit (a privileged operation; exposed for the
// harness, which plays the role of the higher privilege level).
func (t *TokenRegister) SetMode(m Mode) { t.mode = m }

// Value exposes the token bytes to the hardware-side detector. The software
// side of the simulation must never read this; the compiler passes and
// allocators only ever use Arm/Disarm.
func (t *TokenRegister) Value() []byte { return t.value }

// Rotate draws a fresh token value (the paper suggests rotating at reboot,
// §IV-B). Rotation is only sound while no tokens are planted.
func (t *TokenRegister) Rotate(rng *rand.Rand) {
	if rng == nil {
		rng = rand.New(rand.NewSource(0x0DD5))
	}
	for {
		rng.Read(t.value)
		if !allZero(t.value) {
			t.rebuildWords()
			return
		}
	}
}

// rebuildWords refreshes the word-compare cache from the token bytes.
func (t *TokenRegister) rebuildWords() {
	t.words = t.words[:0]
	for i := 0; i < len(t.value); i += 8 {
		t.words = append(t.words, binary.LittleEndian.Uint64(t.value[i:]))
	}
}

// MatchesMem reports whether the token-width chunk at addr in m holds the
// token value, compared eight bytes at a time (8×uint64 compares for the
// full-line 64-byte width). It is the content detector's hot path: every
// L1-D fill consults it once per chunk via LineTokenMask.
func (t *TokenRegister) MatchesMem(m *mem.Memory, addr uint64) bool {
	var buf [int(Width64)]byte
	b := buf[:t.width]
	m.Read(addr, b)
	for i, w := range t.words {
		if binary.LittleEndian.Uint64(b[i*8:]) != w {
			return false
		}
	}
	return true
}

// Align returns addr rounded down to token-width alignment.
func (t *TokenRegister) Align(addr uint64) uint64 {
	return addr &^ (uint64(t.width) - 1)
}

// Aligned reports whether addr is token-width aligned.
func (t *TokenRegister) Aligned(addr uint64) bool {
	return addr&(uint64(t.width)-1) == 0
}
