package core

import (
	"math/rand"
	"testing"

	"rest/internal/mem"
)

// MatchesMem is an optimized spelling of mem.Equal(addr, t.Value()); these
// tests pin the equivalence exhaustively enough that the word-compare path
// can never silently diverge from the byte path.

func TestMatchesMemEquivalence(t *testing.T) {
	for _, w := range []Width{Width16, Width32, Width64} {
		reg, err := NewTokenRegister(w, Secure, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		addr := uint64(0x4000)
		check := func(what string) {
			t.Helper()
			want := m.Equal(addr, reg.Value())
			if got := reg.MatchesMem(m, addr); got != want {
				t.Errorf("width %d, %s: MatchesMem = %v, mem.Equal = %v", w, what, got, want)
			}
		}
		check("unwritten (zero) memory")
		m.Write(addr, reg.Value())
		check("exact token in memory")
		// Flip each byte of the chunk in turn: every position must be seen by
		// the word compares.
		for i := 0; i < int(w); i++ {
			m.SetByte(addr+uint64(i), m.Byte(addr+uint64(i))^0x80)
			check("corrupted byte")
			m.SetByte(addr+uint64(i), m.Byte(addr+uint64(i))^0x80)
		}
		check("restored token")
		// Rotation must rebuild the word cache: the old value no longer
		// matches, the new one does.
		reg.Rotate(rand.New(rand.NewSource(7)))
		check("stale value after rotate")
		m.Write(addr, reg.Value())
		check("rotated token in memory")
		// Chunks straddling a page boundary exercise MatchesMem's buffered
		// read against mem.Equal's chunked loop.
		addr = uint64(mem.PageSize) - uint64(w)/2
		m.Write(addr, reg.Value())
		check("page-straddling token")
	}
}

// BenchmarkTokenCompare measures the fill-path content check on an armed
// full-line chunk (the always-match worst case: all eight words compared).
func BenchmarkTokenCompare(b *testing.B) {
	reg, err := NewTokenRegister(Width64, Secure, nil)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.New()
	m.Write(0x4000, reg.Value())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !reg.MatchesMem(m, 0x4000) {
			b.Fatal("armed chunk did not match")
		}
	}
}
