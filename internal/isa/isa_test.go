package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" {
		t.Errorf("OpAdd.String() = %q, want %q", OpAdd.String(), "add")
	}
	if OpArm.String() != "arm" {
		t.Errorf("OpArm.String() = %q, want %q", OpArm.String(), "arm")
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op String() = %q, want to contain 200", got)
	}
}

func TestOpClass(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpNop, ClassNop},
		{OpHalt, ClassNop},
		{OpAdd, ClassALU},
		{OpMovI, ClassALU},
		{OpMul, ClassMul},
		{OpDiv, ClassDiv},
		{OpRem, ClassDiv},
		{OpLoad, ClassLoad},
		{OpStore, ClassStore},
		{OpBeq, ClassBranch},
		{OpRet, ClassBranch},
		{OpCall, ClassBranch},
		{OpArm, ClassArm},
		{OpDisarm, ClassDisarm},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%s.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestIsMem(t *testing.T) {
	for _, op := range []Op{OpLoad, OpStore, OpArm, OpDisarm} {
		if !op.IsMem() {
			t.Errorf("%s.IsMem() = false, want true", op)
		}
	}
	for _, op := range []Op{OpAdd, OpBeq, OpNop, OpCall} {
		if op.IsMem() {
			t.Errorf("%s.IsMem() = true, want false", op)
		}
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Op{OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpCall, OpCallR, OpRet} {
		if !op.IsBranch() {
			t.Errorf("%s.IsBranch() = false, want true", op)
		}
	}
	if OpAdd.IsBranch() {
		t.Error("OpAdd.IsBranch() = true, want false")
	}
	if !OpBeq.IsCondBranch() || OpJmp.IsCondBranch() {
		t.Error("IsCondBranch misclassifies beq/jmp")
	}
}

func TestDstSrcRegs(t *testing.T) {
	in := Instr{Op: OpAdd, Rd: 3, Rs: 4, Rt: 5}
	if in.DstReg() != 3 {
		t.Errorf("add DstReg = %d, want 3", in.DstReg())
	}
	a, b := in.SrcRegs()
	if a != 4 || b != 5 {
		t.Errorf("add SrcRegs = %d,%d, want 4,5", a, b)
	}

	// Writes to R0 have no architectural destination.
	in = Instr{Op: OpMovI, Rd: RZero, Imm: 7}
	if in.DstReg() != NoReg {
		t.Errorf("movi r0 DstReg = %d, want NoReg", in.DstReg())
	}

	// Call defines RA.
	in = Instr{Op: OpCall, Imm: 0x1000}
	if in.DstReg() != RRA {
		t.Errorf("call DstReg = %d, want RA", in.DstReg())
	}

	// Ret reads RA.
	in = Instr{Op: OpRet}
	a, b = in.SrcRegs()
	if a != RRA || b != NoReg {
		t.Errorf("ret SrcRegs = %d,%d, want RA,NoReg", a, b)
	}

	// Store reads base and data, defines nothing.
	in = Instr{Op: OpStore, Rs: 7, Rt: 8, Size: 8}
	if in.DstReg() != NoReg {
		t.Errorf("store DstReg = %d, want NoReg", in.DstReg())
	}
	a, b = in.SrcRegs()
	if a != 7 || b != 8 {
		t.Errorf("store SrcRegs = %d,%d, want 7,8", a, b)
	}

	// R0 sources are reported as always-ready (NoReg).
	in = Instr{Op: OpAdd, Rd: 1, Rs: RZero, Rt: RZero}
	a, b = in.SrcRegs()
	if a != NoReg || b != NoReg {
		t.Errorf("add r0,r0 SrcRegs = %d,%d, want NoReg,NoReg", a, b)
	}
}

func TestValid(t *testing.T) {
	good := []Instr{
		{Op: OpNop},
		{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpLoad, Rd: 1, Rs: 2, Size: 8},
		{Op: OpStore, Rs: 1, Rt: 2, Size: 1},
		{Op: OpArm, Rs: 5},
	}
	for _, in := range good {
		if err := in.Valid(); err != nil {
			t.Errorf("Valid(%s) = %v, want nil", in, err)
		}
	}
	bad := []Instr{
		{Op: OpAdd, Rd: 40, Rs: 2, Rt: 3},
		{Op: OpLoad, Rd: 1, Rs: 2, Size: 3},
		{Op: OpStore, Rs: 1, Rt: 2, Size: 0},
		{Op: Op(250)},
	}
	for _, in := range bad {
		if err := in.Valid(); err == nil {
			t.Errorf("Valid(%+v) = nil, want error", in)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := []Instr{
		{Op: OpMovI, Rd: 1, Imm: -42},
		{Op: OpLoad, Rd: 2, Rs: 1, Imm: 0x1000, Size: 4},
		{Op: OpStore, Rs: 1, Rt: 2, Imm: -8, Size: 8},
		{Op: OpArm, Rs: 3, Imm: 64},
		{Op: OpDisarm, Rs: 3, Imm: 64},
		{Op: OpBeq, Rs: 1, Rt: 2, Imm: 0x400040},
		{Op: OpHalt},
	}
	img, err := EncodeProgram(prog)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	if len(img) != len(prog)*InstrBytes {
		t.Fatalf("image size = %d, want %d", len(img), len(prog)*InstrBytes)
	}
	back, err := DecodeProgram(img)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Errorf("instr %d: round trip %+v != %+v", i, prog[i], back[i])
		}
	}
}

// randomValidInstr draws a structurally valid instruction.
func randomValidInstr(r *rand.Rand) Instr {
	for {
		in := Instr{
			Op:  Op(r.Intn(NumOps)),
			Rd:  uint8(r.Intn(NumRegs)),
			Rs:  uint8(r.Intn(NumRegs)),
			Rt:  uint8(r.Intn(NumRegs)),
			Imm: r.Int63() - r.Int63(),
		}
		if in.Op == OpLoad || in.Op == OpStore {
			in.Size = []uint8{1, 2, 4, 8}[r.Intn(4)]
		}
		if in.Valid() == nil {
			return in
		}
	}
}

// Property: encode∘decode is the identity on valid instructions.
func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomValidInstr(r)
		var buf [InstrBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			return false
		}
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 4)); err == nil {
		t.Error("Decode(short) = nil error")
	}
	var buf [InstrBytes]byte
	buf[0] = 255 // invalid opcode
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode(bad op) = nil error")
	}
	if _, err := DecodeProgram(make([]byte, InstrBytes+1)); err == nil {
		t.Error("DecodeProgram(misaligned) = nil error")
	}
	if err := Encode(Instr{Op: OpNop}, make([]byte, 2)); err == nil {
		t.Error("Encode(short dst) = nil error")
	}
	if _, err := EncodeProgram([]Instr{{Op: Op(240)}}); err == nil {
		t.Error("EncodeProgram(bad instr) = nil error")
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpLoad, Rd: 1, Rs: 2, Imm: 8, Size: 4}, "load4 r1, [r2+8]"},
		{Instr{Op: OpStore, Rs: 2, Rt: 3, Imm: -8, Size: 8}, "store8 [r2-8], r3"},
		{Instr{Op: OpArm, Rs: 5, Imm: 0}, "arm [r5+0]"},
		{Instr{Op: OpMovI, Rd: 7, Imm: 9}, "movi r7, 9"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, "add r1, r2, r3"},
		{Instr{Op: OpRTCall, Imm: 2}, "rtcall 2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
