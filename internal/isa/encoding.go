package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding: 16 bytes per instruction, little endian.
//
//	byte 0    opcode
//	byte 1    rd
//	byte 2    rs
//	byte 3    rt
//	byte 4    size
//	bytes 5-7 reserved (zero)
//	bytes 8-15 imm (two's-complement int64)
//
// A fixed-width encoding keeps instruction fetch modelling trivial (a 64B
// I-cache line holds exactly four instructions) at the cost of code density,
// which is irrelevant to the experiments.

// Encode writes the instruction into dst, which must be at least InstrBytes
// long. It returns an error for malformed instructions.
func Encode(in Instr, dst []byte) error {
	if len(dst) < InstrBytes {
		return fmt.Errorf("isa: encode buffer too small: %d < %d", len(dst), InstrBytes)
	}
	if err := in.Valid(); err != nil {
		return err
	}
	dst[0] = uint8(in.Op)
	dst[1] = in.Rd
	dst[2] = in.Rs
	dst[3] = in.Rt
	dst[4] = in.Size
	dst[5], dst[6], dst[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(dst[8:16], uint64(in.Imm))
	return nil
}

// Decode reads one instruction from src (at least InstrBytes long).
func Decode(src []byte) (Instr, error) {
	if len(src) < InstrBytes {
		return Instr{}, fmt.Errorf("isa: decode buffer too small: %d < %d", len(src), InstrBytes)
	}
	in := Instr{
		Op:   Op(src[0]),
		Rd:   src[1],
		Rs:   src[2],
		Rt:   src[3],
		Size: src[4],
		Imm:  int64(binary.LittleEndian.Uint64(src[8:16])),
	}
	if err := in.Valid(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

// EncodeProgram encodes a whole instruction sequence contiguously.
func EncodeProgram(prog []Instr) ([]byte, error) {
	out := make([]byte, len(prog)*InstrBytes)
	for i, in := range prog {
		if err := Encode(in, out[i*InstrBytes:]); err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeProgram decodes a contiguous instruction image.
func DecodeProgram(img []byte) ([]Instr, error) {
	if len(img)%InstrBytes != 0 {
		return nil, fmt.Errorf("isa: image length %d not a multiple of %d", len(img), InstrBytes)
	}
	prog := make([]Instr, 0, len(img)/InstrBytes)
	for off := 0; off < len(img); off += InstrBytes {
		in, err := Decode(img[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: at offset %d: %w", off, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}
