// Package isa defines the instruction set of the simulated machine.
//
// The paper (REST, ISCA 2018) implements arm/disarm by appropriating x86
// encodings inside gem5; the mechanism itself is ISA-agnostic, so we use a
// compact RISC-style ISA: 32 general 64-bit registers, loads and stores of
// 1/2/4/8 bytes, the usual ALU and control-flow operations, and the two REST
// instructions ARM and DISARM (§III-A of the paper). Instructions have a
// fixed 16-byte binary encoding (see encoding.go) so programs occupy
// simulated memory and instruction fetch can be modelled through the L1-I
// cache.
package isa

import "fmt"

// Register names. R0 is hardwired to zero; SP/FP/RA follow RISC convention.
const (
	RZero = 0  // always reads zero, writes discarded
	RSP   = 29 // stack pointer
	RFP   = 30 // frame pointer
	RRA   = 31 // return address (link register)

	// NumRegs is the architectural register count.
	NumRegs = 32

	// NoReg marks an unused register slot in an instruction or trace entry.
	NoReg = 0xFF
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. Grouped by class; Class() derives the execution class.
const (
	OpNop Op = iota
	OpHalt

	// ALU register-register.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// ALU register-immediate. Rd = Rs <op> Imm.
	OpAddI
	OpMulI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI

	// Moves. OpMovI: Rd = Imm. OpMov: Rd = Rs.
	OpMovI
	OpMov

	// Memory. OpLoad: Rd = mem[Rs+Imm] (Size bytes, zero-extended).
	// OpStore: mem[Rs+Imm] = Rt (Size bytes).
	OpLoad
	OpStore

	// Branches compare Rs to Rt and jump to Imm (absolute address).
	OpBeq
	OpBne
	OpBlt // signed
	OpBge // signed
	OpBltu
	OpBgeu

	// Unconditional control flow. OpJmp: pc = Imm. OpCall: RA = pc+16,
	// pc = Imm. OpCallR: RA = pc+16, pc = Rs. OpRet: pc = RA.
	OpJmp
	OpCall
	OpCallR
	OpRet

	// REST primitive (paper §III-A). ARM stores the (implicit) token at the
	// token-width-aligned address Rs+Imm. DISARM overwrites the token at
	// Rs+Imm with zero, faulting if no token is present.
	OpArm
	OpDisarm

	// OpRTCall invokes a simulator runtime service (allocator, interceptor);
	// Imm selects the service. It stands in for a call into runtime-library
	// code: the service executes functionally and injects its own memory
	// micro-ops into the dynamic trace so its cost is modelled faithfully.
	OpRTCall

	numOps
)

// NumOps reports the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpOrI: "ori",
	OpXorI: "xori", OpShlI: "shli", OpShrI: "shri",
	OpMovI: "movi", OpMov: "mov",
	OpLoad: "load", OpStore: "store",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpCall: "call", OpCallR: "callr", OpRet: "ret",
	OpArm: "arm", OpDisarm: "disarm",
	OpRTCall: "rtcall",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class partitions opcodes by execution resource and latency.
type Class uint8

// Execution classes used by the timing model.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassArm    // functionally a store (paper §III-B, "LSQ Modification")
	ClassDisarm // functionally a store
	ClassOther
)

// Class reports the execution class of the opcode.
func (o Op) Class() Class {
	switch o {
	case OpNop, OpHalt:
		return ClassNop
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpMovI, OpMov:
		return ClassALU
	case OpMul, OpMulI:
		return ClassMul
	case OpDiv, OpRem:
		return ClassDiv
	case OpLoad:
		return ClassLoad
	case OpStore:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpCall, OpCallR, OpRet:
		return ClassBranch
	case OpArm:
		return ClassArm
	case OpDisarm:
		return ClassDisarm
	default:
		return ClassOther
	}
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// EndsBlock reports whether the opcode terminates a decoded basic block in
// the simulator's block engine: control transfers (the successor is
// dynamic), HALT, runtime calls (the service can mutate arbitrary machine
// state), and the REST effect points ARM/DISARM (token writes can land
// anywhere, including over decoded code).
func (o Op) EndsBlock() bool {
	switch o {
	case OpHalt, OpRTCall, OpArm, OpDisarm:
		return true
	}
	return o.IsBranch()
}

// IsMem reports whether the opcode accesses data memory (including the REST
// instructions, which are wide stores microarchitecturally).
func (o Op) IsMem() bool {
	switch o.Class() {
	case ClassLoad, ClassStore, ClassArm, ClassDisarm:
		return true
	}
	return false
}

// Instr is one decoded instruction.
//
// Field usage by class:
//
//	ALU rr:  Rd = Rs <op> Rt
//	ALU ri:  Rd = Rs <op> Imm
//	movi:    Rd = Imm
//	load:    Rd = mem[Rs+Imm], Size bytes
//	store:   mem[Rs+Imm] = Rt, Size bytes
//	branch:  if Rs <cmp> Rt { pc = Imm }
//	call:    Imm = target; callr: Rs = target
//	arm/disarm: address = Rs+Imm
//	rtcall:  Imm = runtime service id
type Instr struct {
	Op   Op
	Rd   uint8
	Rs   uint8
	Rt   uint8
	Size uint8 // load/store access size: 1, 2, 4 or 8
	Imm  int64
}

// InstrBytes is the fixed encoded size of one instruction in simulated
// memory. PCs advance by this amount.
const InstrBytes = 16

// Valid performs a structural sanity check and returns a descriptive error
// for malformed instructions (bad register indices or access sizes).
func (in Instr) Valid() error {
	checkReg := func(name string, r uint8, used bool) error {
		if used && r >= NumRegs {
			return fmt.Errorf("isa: %s: register %s=%d out of range", in.Op, name, r)
		}
		return nil
	}
	d, s, t := in.usesRegs()
	if err := checkReg("rd", in.Rd, d); err != nil {
		return err
	}
	if err := checkReg("rs", in.Rs, s); err != nil {
		return err
	}
	if err := checkReg("rt", in.Rt, t); err != nil {
		return err
	}
	if in.Op == OpLoad || in.Op == OpStore {
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("isa: %s: invalid access size %d", in.Op, in.Size)
		}
	}
	if in.Op >= numOps {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	return nil
}

// usesRegs reports which register fields are meaningful for the opcode.
func (in Instr) usesRegs() (rd, rs, rt bool) {
	switch in.Op {
	case OpNop, OpHalt, OpJmp, OpCall, OpRTCall:
		return false, false, false
	case OpRet:
		return false, false, false
	case OpMovI:
		return true, false, false
	case OpMov:
		return true, true, false
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI:
		return true, true, false
	case OpLoad:
		return true, true, false
	case OpStore:
		return false, true, true
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return false, true, true
	case OpCallR:
		return false, true, false
	case OpArm, OpDisarm:
		return false, true, false
	default: // ALU rr
		return true, true, true
	}
}

// DstReg returns the destination register index, or NoReg if none. Writes to
// R0 are treated as having no destination.
func (in Instr) DstReg() uint8 {
	d, _, _ := in.usesRegs()
	if in.Op == OpCall || in.Op == OpCallR {
		return RRA
	}
	if !d || in.Rd == RZero {
		return NoReg
	}
	return in.Rd
}

// SrcRegs returns the source register indices (NoReg where unused). R0 is
// reported as NoReg since it is always ready.
func (in Instr) SrcRegs() (a, b uint8) {
	_, s, t := in.usesRegs()
	a, b = NoReg, NoReg
	if s && in.Rs != RZero {
		a = in.Rs
	}
	if t && in.Rt != RZero {
		b = in.Rt
	}
	if in.Op == OpRet {
		a = RRA
	}
	return a, b
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return in.Op.String()
	case OpMovI:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs)
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load%d r%d, [r%d%+d]", in.Size, in.Rd, in.Rs, in.Imm)
	case OpStore:
		return fmt.Sprintf("store%d [r%d%+d], r%d", in.Size, in.Rs, in.Imm, in.Rt)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s r%d, r%d, 0x%x", in.Op, in.Rs, in.Rt, uint64(in.Imm))
	case OpJmp, OpCall:
		return fmt.Sprintf("%s 0x%x", in.Op, uint64(in.Imm))
	case OpCallR:
		return fmt.Sprintf("callr r%d", in.Rs)
	case OpArm, OpDisarm:
		return fmt.Sprintf("%s [r%d%+d]", in.Op, in.Rs, in.Imm)
	case OpRTCall:
		return fmt.Sprintf("rtcall %d", in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	}
}
