package isa

import (
	"bytes"
	"testing"
)

// FuzzEncodeDecode fuzzes the binary instruction codec with arbitrary
// bytes: Decode must never panic, anything it accepts must survive an
// encode→decode round-trip unchanged, and re-encoding must be canonical
// (reserved bytes zeroed).
func FuzzEncodeDecode(f *testing.F) {
	// Seed corpus: one valid encoding per instruction shape, plus
	// malformed inputs (short buffer, bad opcode, bad access size).
	seeds := []Instr{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMovI, Rd: 1, Imm: -1},
		{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpLoad, Rd: 4, Rs: 5, Imm: 64, Size: 8},
		{Op: OpStore, Rs: 6, Rt: 7, Imm: -64, Size: 1},
		{Op: OpArm, Rs: 8, Imm: 128},
		{Op: OpDisarm, Rs: 8, Imm: 128},
		{Op: OpBeq, Rs: 9, Rt: 10, Imm: 0x400100},
		{Op: OpRTCall, Imm: 2},
	}
	for _, in := range seeds {
		var buf [InstrBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			f.Fatalf("seed %v does not encode: %v", in, err)
		}
		f.Add(buf[:])
	}
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, InstrBytes))
	bad := make([]byte, InstrBytes)
	bad[0] = uint8(OpLoad)
	bad[4] = 3 // invalid access size
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if verr := in.Valid(); verr != nil {
			t.Fatalf("Decode accepted invalid instruction %v: %v", in, verr)
		}
		var buf [InstrBytes]byte
		if err := Encode(in, buf[:]); err != nil {
			t.Fatalf("decoded instruction %v does not re-encode: %v", in, err)
		}
		back, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("re-encoded instruction %v does not decode: %v", in, err)
		}
		if back != in {
			t.Fatalf("round-trip changed the instruction: %v -> %v", in, back)
		}
		if buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
			t.Fatalf("encoding is not canonical: reserved bytes %v", buf[5:8])
		}
	})
}

// FuzzDecodeProgram fuzzes the whole-image decoder: it must never panic, and
// any accepted image must round-trip through EncodeProgram.
func FuzzDecodeProgram(f *testing.F) {
	img, err := EncodeProgram([]Instr{
		{Op: OpMovI, Rd: 1, Imm: 10},
		{Op: OpAddI, Rd: 1, Rs: 1, Imm: -1},
		{Op: OpBne, Rs: 1, Rt: 0, Imm: 0x400010},
		{Op: OpHalt},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:InstrBytes+1]) // misaligned
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := DecodeProgram(data)
		if err != nil {
			return
		}
		out, err := EncodeProgram(prog)
		if err != nil {
			t.Fatalf("decoded program does not re-encode: %v", err)
		}
		back, err := DecodeProgram(out)
		if err != nil {
			t.Fatalf("re-encoded program does not decode: %v", err)
		}
		if len(back) != len(prog) {
			t.Fatalf("round-trip changed program length: %d -> %d", len(prog), len(back))
		}
		for i := range prog {
			if back[i] != prog[i] {
				t.Fatalf("round-trip changed instruction %d: %v -> %v", i, prog[i], back[i])
			}
		}
	})
}
