package trace

import (
	"reflect"
	"testing"

	"rest/internal/isa"
)

// sampleEntries exercises every column: register ops, memory ops with
// addresses and sizes, taken/untaken branches, runtime micro-ops and a
// faulting ARM.
func sampleEntries() []Entry {
	return []Entry{
		{Seq: 0, PC: 0x1000, Op: isa.OpAdd, Dst: 3, Src1: 1, Src2: 2},
		{Seq: 1, PC: 0x1004, Op: isa.OpLoad, Dst: 4, Src1: 3, Addr: 0xbeef0, Size: 8},
		{Seq: 2, PC: 0x1008, Op: isa.OpBeq, Src1: 4, Taken: true, Target: 0x2000},
		{Seq: 3, PC: 0x2000, Op: isa.OpStore, Src1: 4, Src2: 5, Addr: 0xbeef8, Size: 4},
		{Seq: 4, PC: 0x2004, Op: isa.OpRTCall, Dst: isa.NoReg},
		{Seq: 5, PC: 0xf000, Op: isa.OpArm, Kind: KindRuntime, Addr: 0xc0c0, Size: 64},
		{Seq: 6, PC: 0xf004, Op: isa.OpDisarm, Kind: KindRuntime, Addr: 0xc100, Faults: true},
		{Seq: 7, PC: 0x2008, Op: isa.OpBeq, Taken: false, Target: 0x3000},
		{Seq: 8, PC: 0x200c, Op: isa.OpHalt},
	}
}

func TestRecorderRoundtrip(t *testing.T) {
	es := sampleEntries()
	rec := NewRecorder(0, 0)
	if n := rec.AppendFrom(NewSliceReader(es)); n != len(es) {
		t.Fatalf("AppendFrom consumed %d entries, want %d", n, len(es))
	}
	if rec.Len() != len(es) {
		t.Fatalf("Len = %d, want %d", rec.Len(), len(es))
	}
	if rec.Bytes() != uint64(len(es))*entryBytes {
		t.Errorf("Bytes = %d, want %d", rec.Bytes(), len(es)*entryBytes)
	}
	for i, want := range es {
		if got := rec.At(i); !reflect.DeepEqual(got, want) {
			t.Errorf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
	if got := Collect(rec.Replayer()); !reflect.DeepEqual(got, es) {
		t.Errorf("Replayer stream = %+v, want %+v", got, es)
	}
}

func TestTeePassthrough(t *testing.T) {
	es := sampleEntries()
	rec := NewRecorder(0, 0)
	got := Collect(Tee(NewSliceReader(es), rec))
	if !reflect.DeepEqual(got, es) {
		t.Errorf("tee altered the stream: %+v", got)
	}
	if rec.Len() != len(es) {
		t.Fatalf("tee recorded %d entries, want %d", rec.Len(), len(es))
	}
	if !reflect.DeepEqual(Collect(rec.Replayer()), es) {
		t.Errorf("tee recording does not replay to the original stream")
	}
}

func TestRecorderOverflow(t *testing.T) {
	rec := NewRecorder(0, 3*entryBytes)
	es := sampleEntries()
	rec.AppendFrom(NewSliceReader(es))
	if !rec.Overflowed() {
		t.Fatal("limit did not trip")
	}
	if rec.Len() != 0 || rec.Bytes() != 0 {
		t.Errorf("overflowed recorder kept %d entries / %d bytes", rec.Len(), rec.Bytes())
	}
	// Further appends are ignored, not resurrected.
	rec.Append(es[0])
	if rec.Len() != 0 || !rec.Overflowed() {
		t.Error("overflowed recorder accepted a later Append")
	}
	defer func() {
		if recover() == nil {
			t.Error("Replayer on overflowed recorder did not panic")
		}
	}()
	rec.Replayer()
}

func TestRecorderLimitExact(t *testing.T) {
	// A limit that exactly fits N entries must not trip on entry N.
	rec := NewRecorder(0, 3*entryBytes)
	es := sampleEntries()[:3]
	rec.AppendFrom(NewSliceReader(es))
	if rec.Overflowed() {
		t.Fatal("limit tripped on a trace that exactly fits")
	}
	if rec.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rec.Len())
	}
}

// TestReplayerTokenShadow drives the batch-lookahead shadow through a
// synthetic trace shaped like machine output — user instructions each
// followed by their runtime micro-ops — and checks the mask the timing model
// would observe at every position.
func TestReplayerTokenShadow(t *testing.T) {
	const w = 8 // 8-byte tokens: 8 chunks per 64-byte line
	line := uint64(0x40)
	es := []Entry{
		// Batch 0: a user RTCall that arms chunks 0 and 2 of the line.
		{Op: isa.OpRTCall, Kind: KindUser},
		{Op: isa.OpArm, Kind: KindRuntime, Addr: line + 0*w},
		{Op: isa.OpArm, Kind: KindRuntime, Addr: line + 2*w},
		// Batch 1: plain user instruction, no token traffic.
		{Op: isa.OpAdd, Kind: KindUser},
		// Batch 2: disarms chunk 0; a faulting DISARM of chunk 2 must NOT
		// apply (the machine raised before mutating the tracker).
		{Op: isa.OpRTCall, Kind: KindUser},
		{Op: isa.OpDisarm, Kind: KindRuntime, Addr: line + 0*w},
		{Op: isa.OpDisarm, Kind: KindRuntime, Addr: line + 2*w, Faults: true},
		// Batch 3: end.
		{Op: isa.OpHalt, Kind: KindUser},
	}
	// wantMask[i] is the line's mask observed after yielding entry i: the
	// whole batch's effects land before its first entry is yielded.
	wantMask := []uint8{
		0b101, 0b101, 0b101, // batch 0 already applied at its first entry
		0b101,               // batch 1 leaves it alone
		0b100, 0b100, 0b100, // batch 2: chunk 0 gone, faulting chunk 2 stays
		0b100,
	}
	rec := NewRecorder(w, 0)
	rec.AppendFrom(NewSliceReader(es))
	rp := rec.Replayer()
	if rp.ChunksPerLine() != 8 {
		t.Fatalf("ChunksPerLine = %d, want 8", rp.ChunksPerLine())
	}
	for i := range es {
		if _, ok := rp.Next(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if got := rp.LineTokenMask(line); got != wantMask[i] {
			t.Errorf("after entry %d: LineTokenMask = %#b, want %#b", i, got, wantMask[i])
		}
		// Unrelated lines stay empty; unaligned addresses resolve to the line.
		if got := rp.LineTokenMask(0x1000); got != 0 {
			t.Errorf("after entry %d: unrelated line mask = %#b", i, got)
		}
		if got := rp.LineTokenMask(line + 17); got != wantMask[i] {
			t.Errorf("after entry %d: unaligned lookup mask = %#b, want %#b", i, got, wantMask[i])
		}
	}
	if _, ok := rp.Next(); ok {
		t.Error("stream did not end")
	}
}

// TestReplayerNoShadow pins the non-REST fast path: width 0 means no armed
// set and an always-zero mask.
func TestReplayerNoShadow(t *testing.T) {
	rec := NewRecorder(0, 0)
	rec.AppendFrom(NewSliceReader(sampleEntries()))
	rp := rec.Replayer()
	if rp.ChunksPerLine() != 0 {
		t.Errorf("ChunksPerLine = %d, want 0", rp.ChunksPerLine())
	}
	for {
		if _, ok := rp.Next(); !ok {
			break
		}
		if rp.LineTokenMask(0xc0c0) != 0 {
			t.Fatal("token shadow active on a width-0 trace")
		}
	}
}

// TestConcurrentReplayers pins the shared-Recorder contract: the columns are
// read-only after capture, so independent Replayers may stream concurrently
// (run under -race to make this meaningful).
func TestConcurrentReplayers(t *testing.T) {
	rec := NewRecorder(8, 0)
	rec.AppendFrom(NewSliceReader(sampleEntries()))
	done := make(chan []Entry, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- Collect(rec.Replayer()) }()
	}
	want := sampleEntries()
	for i := 0; i < 4; i++ {
		if got := <-done; !reflect.DeepEqual(got, want) {
			t.Errorf("concurrent replay diverged: %+v", got)
		}
	}
}

// BenchmarkReplayerNext pins the hot loop's allocation contract: replaying an
// entry must not allocate. The benchmark fails loudly in review if
// allocs/op ever leaves zero.
func BenchmarkReplayerNext(b *testing.B) {
	rec := NewRecorder(8, 0)
	es := make([]Entry, 4096)
	for i := range es {
		switch i % 8 {
		case 0:
			es[i] = Entry{Op: isa.OpRTCall, Kind: KindUser, PC: uint64(i)}
		case 1:
			es[i] = Entry{Op: isa.OpArm, Kind: KindRuntime, Addr: uint64(i) * 8}
		case 3:
			es[i] = Entry{Op: isa.OpLoad, Kind: KindUser, Addr: uint64(i) * 16, Size: 8}
		default:
			es[i] = Entry{Op: isa.OpAdd, Kind: KindUser, PC: uint64(i)}
		}
	}
	rec.AppendFrom(NewSliceReader(es))
	b.ReportAllocs()
	b.ResetTimer()
	rp := rec.Replayer()
	for i := 0; i < b.N; i++ {
		e, ok := rp.Next()
		if !ok {
			b.StopTimer()
			rp = rec.Replayer()
			b.StartTimer()
			continue
		}
		if e.PC == ^uint64(0) {
			b.Fatal("unreachable, defeats dead-code elimination")
		}
	}
}
