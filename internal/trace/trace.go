// Package trace defines the dynamic instruction stream that connects the
// functional simulator to the out-of-order timing model.
//
// The functional simulator executes the program architecturally and emits
// one Entry per committed-path instruction, carrying everything the timing
// model needs: the opcode class, register dependences, resolved memory
// address/size, and branch outcome. Runtime services (allocator calls,
// interceptors) inject their own entries marked Runtime so their cost flows
// through the same pipeline and cache model as user code (DESIGN.md
// decision 3).
package trace

import "rest/internal/isa"

// Kind distinguishes ordinary program instructions from runtime-service
// micro-ops.
type Kind uint8

// Entry kinds.
const (
	// KindUser is an instruction fetched from the program image.
	KindUser Kind = iota
	// KindRuntime is a micro-op injected by a runtime service (allocator
	// metadata walk, shadow poisoning, token arm/disarm, interceptor check).
	// Runtime micro-ops have synthetic PCs inside the runtime code region
	// and participate fully in pipeline and cache modelling.
	KindRuntime
)

// Entry is one dynamic instruction on the committed path.
type Entry struct {
	Seq uint64 // dynamic instruction number, starting at 0
	PC  uint64
	Op  isa.Op

	Kind Kind

	// Register dependences (isa.NoReg where absent). The timing model uses
	// these for wakeup/scheduling; values are already resolved functionally.
	Dst  uint8
	Src1 uint8
	Src2 uint8

	// Memory operation fields (valid when Op.IsMem()).
	Addr uint64
	Size uint8

	// Branch fields (valid when Op.IsBranch()).
	Taken  bool
	Target uint64

	// REST: set when the architectural simulator determined this entry
	// raises a REST exception (the timing model decides when it is
	// reported, per mode).
	Faults bool
}

// IsMem reports whether the entry accesses data memory.
func (e *Entry) IsMem() bool { return e.Op.IsMem() }

// Reader yields the dynamic trace one entry at a time.
//
// Next returns (entry, true) until the stream ends; after the final entry it
// returns (Entry{}, false). Implementations are single-use.
type Reader interface {
	Next() (Entry, bool)
}

// BatchReader is an optional Reader extension for consumers that can accept
// entries many at a time, saving an interface call per entry on hot replay
// loops. ReadBatch fills buf with the next consecutive entries and returns
// the count written; 0 means the stream is exhausted. Mixing Next and
// ReadBatch is allowed — both advance the same cursor. Implementations that
// also expose position-dependent state (the Replayer's token shadow) must
// keep that state consistent with the entries the consumer has been handed,
// not merely with the read cursor.
type BatchReader interface {
	Reader
	ReadBatch(buf []Entry) int
}

// SliceReader adapts a materialized trace to the Reader interface.
type SliceReader struct {
	entries []Entry
	pos     int
}

// NewSliceReader wraps entries.
func NewSliceReader(entries []Entry) *SliceReader {
	return &SliceReader{entries: entries}
}

// Next implements Reader.
func (r *SliceReader) Next() (Entry, bool) {
	if r.pos >= len(r.entries) {
		return Entry{}, false
	}
	e := r.entries[r.pos]
	r.pos++
	return e, true
}

// Collect drains a Reader into a slice (testing convenience; real runs
// stream to bound memory).
func Collect(r Reader) []Entry {
	var out []Entry
	for {
		e, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
