package trace

import (
	"testing"

	"rest/internal/isa"
)

func TestSliceReader(t *testing.T) {
	es := []Entry{
		{Seq: 0, Op: isa.OpAdd},
		{Seq: 1, Op: isa.OpLoad, Addr: 0x100, Size: 8},
		{Seq: 2, Op: isa.OpHalt},
	}
	r := NewSliceReader(es)
	for i := range es {
		e, ok := r.Next()
		if !ok {
			t.Fatalf("Next %d returned !ok", i)
		}
		if e.Seq != es[i].Seq {
			t.Errorf("entry %d Seq = %d", i, e.Seq)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("reader did not end")
	}
	// Drained readers stay drained.
	if _, ok := r.Next(); ok {
		t.Error("reader resurrected")
	}
}

func TestCollect(t *testing.T) {
	es := []Entry{{Seq: 0}, {Seq: 1}}
	got := Collect(NewSliceReader(es))
	if len(got) != 2 || got[1].Seq != 1 {
		t.Errorf("Collect = %+v", got)
	}
	if got := Collect(NewSliceReader(nil)); got != nil {
		t.Errorf("Collect(empty) = %v, want nil", got)
	}
}

func TestEntryIsMem(t *testing.T) {
	if !(&Entry{Op: isa.OpLoad}).IsMem() {
		t.Error("load entry not mem")
	}
	if !(&Entry{Op: isa.OpArm}).IsMem() {
		t.Error("arm entry not mem")
	}
	if (&Entry{Op: isa.OpAdd}).IsMem() {
		t.Error("add entry is mem")
	}
}
