package trace

import (
	"sync"

	"rest/internal/isa"
)

// Capture/replay: a Recorder packs a dynamic trace into struct-of-arrays
// storage while it streams past, and a Replayer feeds it back through the
// timing model without re-running the functional simulator.
//
// Replay must be bit-exact, which is subtle in one place: the L1-D fill-time
// content detector consults the architectural token state (which chunks of a
// line currently hold the token) while the trace streams. During a live run
// that state lives in core.TokenTracker; during replay no machine exists, so
// the Replayer reconstructs it as a shadow armed set driven by the ARM/DISARM
// entries of the trace itself. The reconstruction is valid because of the
// content/tracker invariant (a chunk holds the token value iff it is in the
// armed set — see core.TokenTracker) and because the functional machine runs
// ahead of the timing model by exactly one batch: Machine.Next executes one
// user instruction fully (including any runtime service it calls) before the
// pipeline sees the batch's first entry. The Replayer mirrors that lookahead:
// entering a batch — a KindUser entry plus its trailing KindRuntime micro-ops
// — it applies every non-faulting ARM/DISARM of the whole batch to the shadow
// set before yielding the batch's first entry. TestReplayerTokenShadow and
// the harness replay differential tests pin the equivalence.

// lineBytes is the cache line size the token shadow is reconstructed at
// (same 64-byte geometry as core.LineBytes/cache.LineBytes).
const lineBytes = 64

// entryBytes is the Recorder's storage cost per entry: a packed recEntry
// (three uint64 words plus seven bytes, padded to alignment). Seq is not
// stored — it equals the entry's index.
const entryBytes = 32

const (
	flagTaken  = 1 << 0
	flagFaults = 1 << 1
)

// Recorder storage is a list of fixed-size column blocks rather than flat
// slices: appends never copy what is already recorded (flat columns re-copy
// the whole multi-megabyte trace every time append outgrows its backing
// array, which dominated capture cost), and indexing is a shift and a mask.
// The block is sized so the offset is provably in range after masking, which
// also lets the compiler drop bounds checks on the hot replay path.
const (
	blockShift   = 16
	blockEntries = 1 << blockShift
	blockMask    = blockEntries - 1
)

// recEntry is the packed stored form of one Entry (32 bytes; Seq is implied
// by position, Taken/Faults fold into flags). A block appends with a single
// struct store and replays with a single struct load, where split columns
// cost ten scattered accesses per entry.
type recEntry struct {
	pc, addr, target                    uint64
	op, kind, dst, src1, src2, sz, flags uint8
}

type recBlock [blockEntries]recEntry

// blockPool recycles the 2 MiB blocks across captures: a sweep that captures
// dozens of traces otherwise pays fresh-page zeroing for every one. Blocks
// come back dirty, which is safe — every entry slot at index < Len() is
// written before it can be read, and slots past Len() are never read.
var blockPool = sync.Pool{New: func() any { return new(recBlock) }}

// Recorder captures a dynamic trace in compact struct-of-arrays form. Append
// it entries directly, drain a Reader into it with AppendFrom, or splice it
// into a streaming run with Tee. A byte limit (SetLimit) turns runaway
// captures into an explicit Overflowed state instead of unbounded memory.
// The zero value records with no token shadow and no limit; use NewRecorder
// to configure both.
type Recorder struct {
	tokenWidth uint64
	limit      uint64
	limitN     int // limit in entries (limit/entryBytes); 0 = unlimited
	overflowed bool

	n      int
	blocks []*recBlock

	// Effect index, built during capture for REST traces (tokenWidth != 0):
	// the positions of the batches whose non-faulting ARM/DISARM entries
	// change the replay token shadow, with the effects themselves hoisted
	// into a side list. Replay then never scans the trace for effects — it
	// jumps from one indexed batch start to the next and applies the ops
	// directly (see Replayer.syncBatch).
	curBatch   int        // start index of the batch currently being appended
	effBatches []effBatch // ascending by pos; ranges into effOps
	effOps     []effOp
}

// effBatch marks one effect-carrying batch: pos is the batch's start index in
// the trace, end is the exclusive upper bound of its ops in effOps (its lower
// bound is the previous effBatch's end).
type effBatch struct {
	pos, end int
}

// effOp is one shadow mutation: arm (set) or disarm (clear) of the chunk at
// addr.
type effOp struct {
	addr uint64
	arm  bool
}

// NewRecorder returns a Recorder for a trace whose ARM/DISARM entries operate
// on tokenWidth-byte chunks (0 for traces from non-REST worlds) and that
// refuses to grow past limitBytes of column storage (0 = unlimited).
func NewRecorder(tokenWidth uint64, limitBytes uint64) *Recorder {
	return &Recorder{tokenWidth: tokenWidth, limit: limitBytes, limitN: int(limitBytes / entryBytes)}
}

// TokenWidth reports the token width the trace was recorded under (0 when
// the source world had no REST hardware).
func (r *Recorder) TokenWidth() uint64 { return r.tokenWidth }

// Len reports how many entries are recorded.
func (r *Recorder) Len() int { return r.n }

// Bytes reports the column storage the recorded entries occupy.
func (r *Recorder) Bytes() uint64 { return uint64(r.n) * entryBytes }

// Overflowed reports whether a byte limit stopped the capture; an overflowed
// Recorder has dropped its contents and ignores further Appends.
func (r *Recorder) Overflowed() bool { return r.overflowed }

// Append records one entry. Entries must arrive in stream order; Seq is not
// stored (it is always the entry's index, which is how Machine assigns it).
func (r *Recorder) Append(e Entry) {
	if r.overflowed {
		return
	}
	if r.limitN != 0 && r.n >= r.limitN {
		// Drop everything: a partial trace must never be replayed, and
		// keeping the blocks would defeat the point of the limit.
		r.Release()
		r.overflowed = true
		return
	}
	var fl uint8
	if e.Taken {
		fl |= flagTaken
	}
	if e.Faults {
		fl |= flagFaults
	}
	if e.Kind == KindUser {
		r.curBatch = r.n
	}
	if r.tokenWidth != 0 && !e.Faults && (e.Op == isa.OpArm || e.Op == isa.OpDisarm) {
		if k := len(r.effBatches) - 1; k >= 0 && r.effBatches[k].pos == r.curBatch {
			r.effBatches[k].end++
		} else {
			r.effBatches = append(r.effBatches, effBatch{pos: r.curBatch, end: len(r.effOps) + 1})
		}
		r.effOps = append(r.effOps, effOp{addr: e.Addr, arm: e.Op == isa.OpArm})
	}
	off := r.n & blockMask
	if off == 0 {
		r.blocks = append(r.blocks, blockPool.Get().(*recBlock))
	}
	r.blocks[r.n>>blockShift][off] = recEntry{
		pc: e.PC, addr: e.Addr, target: e.Target,
		op: uint8(e.Op), kind: uint8(e.Kind),
		dst: e.Dst, src1: e.Src1, src2: e.Src2, sz: e.Size, flags: fl,
	}
	r.n++
}

// Release returns the Recorder's blocks to the shared pool and empties it.
// The caller must guarantee no Replayer over this Recorder is still in use:
// released blocks are recycled and overwritten by later captures. Releasing
// is optional — an unreleased Recorder is ordinary garbage — but a sweep
// that captures many traces avoids refaulting fresh pages by releasing each
// one at its last use.
func (r *Recorder) Release() {
	for _, b := range r.blocks {
		blockPool.Put(b)
	}
	r.blocks = nil
	r.n = 0
	r.curBatch = 0
	r.effBatches = nil
	r.effOps = nil
}

// AppendFrom drains src into the Recorder and reports how many entries it
// consumed (src is a single-use Reader, so they are consumed regardless of
// overflow).
func (r *Recorder) AppendFrom(src Reader) int {
	n := 0
	for {
		e, ok := src.Next()
		if !ok {
			return n
		}
		r.Append(e)
		n++
	}
}

// At reconstructs entry i.
func (r *Recorder) At(i int) Entry {
	s := &r.blocks[i>>blockShift][i&blockMask]
	return Entry{
		Seq:    uint64(i),
		PC:     s.pc,
		Op:     isa.Op(s.op),
		Kind:   Kind(s.kind),
		Dst:    s.dst,
		Src1:   s.src1,
		Src2:   s.src2,
		Addr:   s.addr,
		Size:   s.sz,
		Taken:  s.flags&flagTaken != 0,
		Faults: s.flags&flagFaults != 0,
		Target: s.target,
	}
}

// tee mirrors a streaming Reader into a Recorder.
type tee struct {
	r   Reader
	rec *Recorder
}

// Tee returns a Reader that yields src's entries unchanged while recording
// each one into rec. When rec carries no token shadow (tokenWidth 0) the
// returned Reader also implements BatchReader: with no ARM/DISARM effects to
// keep in lockstep, letting the consumer buffer entries ahead of the machine
// is unobservable, and the batch path saves an interface dispatch per entry
// during capture. REST captures stay entry-at-a-time — there the live
// TokenTracker is the detector's source, and the pipeline may only run one
// batch behind it (see the package comment).
func Tee(src Reader, rec *Recorder) Reader {
	if rec.tokenWidth == 0 {
		return &batchTee{tee{r: src, rec: rec}}
	}
	return &tee{r: src, rec: rec}
}

// Next implements Reader.
func (t *tee) Next() (Entry, bool) {
	e, ok := t.r.Next()
	if ok {
		t.rec.Append(e)
	}
	return e, ok
}

// batchTee is the shadow-free capture tee (see Tee).
type batchTee struct{ tee }

// ReadBatch implements BatchReader.
func (t *batchTee) ReadBatch(buf []Entry) int {
	n := 0
	for n < len(buf) {
		e, ok := t.r.Next()
		if !ok {
			break
		}
		t.rec.Append(e)
		buf[n] = e
		n++
	}
	return n
}

// Replayer streams a recorded trace back out, allocation-free per entry, and
// doubles as the cache hierarchy's TokenSource: it reconstructs the armed
// token state the fill-time content detector would have observed at each
// point of the original run (see the package comment above for why the
// batch-lookahead shadow is exact). Like every Reader it is single-use;
// create one per replay with Recorder.Replayer. Concurrent Replayers over
// one shared Recorder are safe — the columns are never written after
// capture — but an individual Replayer is not goroutine-safe.
type Replayer struct {
	rec     *Recorder
	pos     int
	applied int // start of the next effect-carrying batch (or rec.n)
	effIdx  int // next effBatch to apply
	chunks  int
	armed   map[uint64]struct{}
}

// Replayer returns a fresh Replayer positioned at the start of the trace.
// It panics on an overflowed Recorder — an incomplete trace must never reach
// the timing model.
func (r *Recorder) Replayer() *Replayer {
	if r.overflowed {
		panic("trace: Replayer on overflowed Recorder")
	}
	rp := &Replayer{rec: r, applied: r.n}
	if r.tokenWidth != 0 {
		rp.chunks = lineBytes / int(r.tokenWidth)
		rp.armed = make(map[uint64]struct{})
		if len(r.effBatches) > 0 {
			rp.applied = r.effBatches[0].pos
		}
	}
	return rp
}

// Next implements Reader. On entering a new batch (a KindUser entry and its
// trailing runtime micro-ops) it first applies the whole batch's non-faulting
// ARM/DISARM effects to the token shadow, reproducing the functional
// machine's one-batch lookahead over the timing model.
func (rp *Replayer) Next() (Entry, bool) {
	if rp.pos >= rp.rec.n {
		return Entry{}, false
	}
	if rp.pos >= rp.applied {
		rp.syncBatch()
	}
	e := rp.rec.At(rp.pos)
	rp.pos++
	return e, true
}

// syncBatch applies the token effects of the indexed batch at rp.pos (the
// invariant "reads never cross rp.applied" guarantees rp.pos is exactly that
// batch's start), then advances rp.applied to the next effect-carrying
// batch's start. Skipping effect-free batches is exact — applying nothing is
// the same whenever it happens — and it is what lets ReadBatch hand out long
// straight runs between ARM/DISARM points. The effect index is built at
// capture time, so replay touches only the effects themselves, never the
// trace in between.
func (rp *Replayer) syncBatch() {
	r := rp.rec
	if rp.armed == nil || rp.effIdx >= len(r.effBatches) {
		rp.applied = r.n
		return
	}
	eb := r.effBatches[rp.effIdx]
	start := 0
	if rp.effIdx > 0 {
		start = r.effBatches[rp.effIdx-1].end
	}
	for _, op := range r.effOps[start:eb.end] {
		if op.arm {
			rp.armed[op.addr] = struct{}{}
		} else {
			delete(rp.armed, op.addr)
		}
	}
	rp.effIdx++
	if rp.effIdx < len(r.effBatches) {
		rp.applied = r.effBatches[rp.effIdx].pos
	} else {
		rp.applied = r.n
	}
}

// ReadBatch implements BatchReader: it fills buf with consecutive entries
// and returns how many it wrote (0 when the trace is exhausted). The token
// shadow stays exact under read-ahead because a batch that would change the
// armed set (a non-faulting ARM or DISARM anywhere in it) is only ever
// yielded at the start of a ReadBatch call: every entry the consumer still
// holds buffered then belongs to batches without token effects, so the
// shadow the cache detector observes is the same as under entry-at-a-time
// Next.
func (rp *Replayer) ReadBatch(buf []Entry) int {
	r := rp.rec
	n := 0
	for n < len(buf) && rp.pos < r.n {
		if rp.pos >= rp.applied {
			// rp.pos sits on an effect-carrying batch: it may only be
			// yielded at the start of a ReadBatch call (see above), so an
			// in-progress call stops here.
			if n > 0 {
				break
			}
			rp.syncBatch()
		}
		// Copy the straight run bounded by the shadow sync point, the
		// current block's edge and the buffer, with the block pointer and
		// sequence arithmetic hoisted out of the entry loop.
		end := rp.applied
		if end > r.n {
			end = r.n
		}
		if lim := rp.pos + (len(buf) - n); lim < end {
			end = lim
		}
		if edge := (rp.pos | blockMask) + 1; edge < end {
			end = edge
		}
		b := r.blocks[rp.pos>>blockShift]
		for i := rp.pos & blockMask; rp.pos < end; i++ {
			s := &b[i]
			buf[n] = Entry{
				Seq:    uint64(rp.pos),
				PC:     s.pc,
				Op:     isa.Op(s.op),
				Kind:   Kind(s.kind),
				Dst:    s.dst,
				Src1:   s.src1,
				Src2:   s.src2,
				Addr:   s.addr,
				Size:   s.sz,
				Taken:  s.flags&flagTaken != 0,
				Faults: s.flags&flagFaults != 0,
				Target: s.target,
			}
			rp.pos++
			n++
		}
	}
	return n
}

// LineTokenMask implements the cache hierarchy's TokenSource over the shadow
// armed set: bit i is set when chunk i of the 64-byte line at lineAddr is
// armed at the current replay position.
func (rp *Replayer) LineTokenMask(lineAddr uint64) uint8 {
	if len(rp.armed) == 0 {
		return 0
	}
	lineAddr &^= lineBytes - 1
	var mask uint8
	w := rp.rec.tokenWidth
	for i := 0; i < rp.chunks; i++ {
		if _, ok := rp.armed[lineAddr+uint64(i)*w]; ok {
			mask |= 1 << i
		}
	}
	return mask
}

// ChunksPerLine implements TokenSource.
func (rp *Replayer) ChunksPerLine() int { return rp.chunks }
