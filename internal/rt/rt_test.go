package rt

import (
	"math/rand"
	"testing"

	"rest/internal/alloc"
	"rest/internal/core"
	"rest/internal/isa"
	"rest/internal/mem"
	"rest/internal/shadow"
	"rest/internal/sim"
)

// world bundles a machine with a runtime of the given flavour.
func world(t *testing.T, f Flavour) (*sim.Machine, *Runtime) {
	t.Helper()
	m := mem.New()
	var tr *core.TokenTracker
	if f == REST {
		reg, err := core.NewTokenRegister(core.Width64, core.Secure, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatal(err)
		}
		tr = core.NewTokenTracker(reg, m)
	}
	var sh *shadow.Map
	var eng *alloc.Engine
	var err error
	switch f {
	case Plain:
		eng, err = alloc.NewLibc()
	case ASan:
		sh = shadow.New(m)
		eng, err = alloc.NewASan(sh)
	case REST:
		eng, err = alloc.NewREST(tr)
	case PerfectHW:
		eng, err = alloc.NewPerfectHW()
	}
	if err != nil {
		t.Fatal(err)
	}
	r := New(f, eng, sh)
	mach, err := sim.New(sim.Config{Mem: m, Tracker: tr, Runtime: r},
		[]isa.Instr{{Op: isa.OpHalt}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return mach, r
}

func mustMalloc(t *testing.T, mach *sim.Machine, r *Runtime, n uint64) uint64 {
	t.Helper()
	mach.Regs[sim.RArg0] = n
	if err := r.Call(sim.SvcMalloc, mach); err != nil {
		t.Fatal(err)
	}
	return mach.Regs[sim.RArg0]
}

func callMemcpy(mach *sim.Machine, r *Runtime, dst, src, n uint64) error {
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1], mach.Regs[sim.RArg2] = dst, src, n
	return r.Call(sim.SvcMemcpy, mach)
}

func TestMallocFreeService(t *testing.T) {
	for _, f := range []Flavour{Plain, ASan, REST, PerfectHW} {
		mach, r := world(t, f)
		p := mustMalloc(t, mach, r, 128)
		if p == 0 {
			t.Fatalf("%s: malloc returned 0", f)
		}
		mach.Regs[sim.RArg0] = p
		if err := r.Call(sim.SvcFree, mach); err != nil {
			t.Fatalf("%s: free: %v", f, err)
		}
	}
}

func TestMemcpyCopiesData(t *testing.T) {
	mach, r := world(t, Plain)
	src := mustMalloc(t, mach, r, 64)
	dst := mustMalloc(t, mach, r, 64)
	for i := uint64(0); i < 64; i++ {
		mach.Mem.SetByte(src+i, byte(i*7))
	}
	if err := callMemcpy(mach, r, dst, src, 61); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 61; i++ {
		if got := mach.Mem.Byte(dst + i); got != byte(i*7) {
			t.Fatalf("dst[%d] = %d, want %d", i, got, byte(i*7))
		}
	}
	if mach.Mem.Byte(dst+61) != 0 {
		t.Error("memcpy wrote past n")
	}
}

func TestMemsetFills(t *testing.T) {
	mach, r := world(t, Plain)
	dst := mustMalloc(t, mach, r, 64)
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1], mach.Regs[sim.RArg2] = dst, 0xAB, 33
	if err := r.Call(sim.SvcMemset, mach); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 33; i++ {
		if mach.Mem.Byte(dst+i) != 0xAB {
			t.Fatalf("dst[%d] not set", i)
		}
	}
	if mach.Mem.Byte(dst+33) != 0 {
		t.Error("memset wrote past n")
	}
}

func TestASanMemcpyInterceptorCatchesOverread(t *testing.T) {
	mach, r := world(t, ASan)
	src := mustMalloc(t, mach, r, 64)
	dst := mustMalloc(t, mach, r, 256)
	// Heartbleed shape: copy more than src holds.
	err := callMemcpy(mach, r, dst, src, 128)
	v, ok := err.(*sim.Violation)
	if !ok {
		t.Fatalf("over-read memcpy -> %v, want asan violation", err)
	}
	if v.Tool != "asan" {
		t.Errorf("tool = %s, want asan", v.Tool)
	}
}

func TestRESTMemcpyHitsTokenMidCopy(t *testing.T) {
	mach, r := world(t, REST)
	src := mustMalloc(t, mach, r, 64)
	dst := mustMalloc(t, mach, r, 256)
	// No interceptor: the copy's own loads run into the right redzone token.
	err := callMemcpy(mach, r, dst, src, 128)
	exc, ok := err.(*core.Exception)
	if !ok {
		t.Fatalf("over-read memcpy -> %v, want REST exception", err)
	}
	if exc.Kind != core.ViolationLoad {
		t.Errorf("kind = %v, want load violation", exc.Kind)
	}
	if r.MemcpyCalls != 1 {
		t.Errorf("MemcpyCalls = %d, want 1", r.MemcpyCalls)
	}
}

func TestPlainMemcpyOverreadUndetected(t *testing.T) {
	mach, r := world(t, Plain)
	src := mustMalloc(t, mach, r, 64)
	dst := mustMalloc(t, mach, r, 256)
	if err := callMemcpy(mach, r, dst, src, 128); err != nil {
		t.Fatalf("plain memcpy unexpectedly detected the over-read: %v", err)
	}
}

func TestASanUAFThroughMemcpy(t *testing.T) {
	mach, r := world(t, ASan)
	p := mustMalloc(t, mach, r, 64)
	dst := mustMalloc(t, mach, r, 64)
	mach.Regs[sim.RArg0] = p
	if err := r.Call(sim.SvcFree, mach); err != nil {
		t.Fatal(err)
	}
	err := callMemcpy(mach, r, dst, p, 32)
	if _, ok := err.(*sim.Violation); !ok {
		t.Fatalf("UAF memcpy -> %v, want violation", err)
	}
}

func TestRESTUAFThroughMemcpy(t *testing.T) {
	mach, r := world(t, REST)
	p := mustMalloc(t, mach, r, 64)
	dst := mustMalloc(t, mach, r, 64)
	mach.Regs[sim.RArg0] = p
	if err := r.Call(sim.SvcFree, mach); err != nil {
		t.Fatal(err)
	}
	err := callMemcpy(mach, r, dst, p, 32)
	if _, ok := err.(*core.Exception); !ok {
		t.Fatalf("UAF memcpy -> %v, want REST exception", err)
	}
}

func TestAsanSlowCheck(t *testing.T) {
	mach, r := world(t, ASan)
	p := mustMalloc(t, mach, r, 64)
	// In-bounds: slow check passes.
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1], mach.Regs[sim.RArg2] = p, 8, 0
	if err := r.Call(sim.SvcAsanSlow, mach); err != nil {
		t.Fatalf("in-bounds slow check: %v", err)
	}
	// Out of bounds into the right redzone.
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1], mach.Regs[sim.RArg2] = p+64, 8, 1
	err := r.Call(sim.SvcAsanSlow, mach)
	v, ok := err.(*sim.Violation)
	if !ok {
		t.Fatalf("OOB slow check -> %v, want violation", err)
	}
	if v.What != "heap-buffer-overflow write" {
		t.Errorf("what = %q", v.What)
	}
	if r.SlowChecks != 2 {
		t.Errorf("SlowChecks = %d, want 2", r.SlowChecks)
	}
}

func TestAsanSlowCheckUAFKind(t *testing.T) {
	mach, r := world(t, ASan)
	p := mustMalloc(t, mach, r, 64)
	mach.Regs[sim.RArg0] = p
	if err := r.Call(sim.SvcFree, mach); err != nil {
		t.Fatal(err)
	}
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1], mach.Regs[sim.RArg2] = p, 8, 0
	err := r.Call(sim.SvcAsanSlow, mach)
	v, ok := err.(*sim.Violation)
	if !ok || v.What != "heap-use-after-free read" {
		t.Fatalf("UAF slow check -> %v", err)
	}
}

func TestExitService(t *testing.T) {
	mach, r := world(t, Plain)
	if err := r.Call(sim.SvcExit, mach); err != nil {
		t.Fatal(err)
	}
	if !mach.Halted() {
		t.Error("machine not halted after SvcExit")
	}
}

func TestUnknownService(t *testing.T) {
	mach, r := world(t, Plain)
	if err := r.Call(999, mach); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestInterceptorCostCharged(t *testing.T) {
	// ASan memcpy must emit more micro-ops than plain for the same copy
	// (the shadow walk), REST must not.
	ops := func(f Flavour) uint64 {
		mach, r := world(t, f)
		src := mustMalloc(t, mach, r, 256)
		dst := mustMalloc(t, mach, r, 256)
		before := mach.RTOps
		if err := callMemcpy(mach, r, dst, src, 256); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		return mach.RTOps - before
	}
	plain := ops(Plain)
	asan := ops(ASan)
	rest := ops(REST)
	if asan <= plain {
		t.Errorf("asan memcpy ops (%d) not > plain (%d)", asan, plain)
	}
	if rest != plain {
		t.Errorf("rest memcpy ops (%d) != plain (%d): REST adds no interceptor work", rest, plain)
	}
}
