package rt

import (
	"testing"

	"rest/internal/core"
	"rest/internal/sim"
)

func callCalloc(mach *sim.Machine, r *Runtime, n, elem uint64) (uint64, error) {
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1] = n, elem
	err := r.Call(sim.SvcCalloc, mach)
	return mach.Regs[sim.RArg0], err
}

func callRealloc(mach *sim.Machine, r *Runtime, ptr, n uint64) (uint64, error) {
	mach.Regs[sim.RArg0], mach.Regs[sim.RArg1] = ptr, n
	err := r.Call(sim.SvcRealloc, mach)
	return mach.Regs[sim.RArg0], err
}

func TestCallocZeroes(t *testing.T) {
	for _, f := range []Flavour{Plain, ASan, REST} {
		mach, r := world(t, f)
		// Dirty a future allocation site by allocating, writing, freeing,
		// then calloc'ing the same size class.
		p := mustMalloc(t, mach, r, 128)
		mach.Mem.WriteUint(p, 8, 0xFFFF_FFFF)
		mach.Regs[sim.RArg0] = p
		if err := r.Call(sim.SvcFree, mach); err != nil {
			t.Fatalf("%s: free: %v", f, err)
		}
		q, err := callCalloc(mach, r, 16, 8)
		if err != nil {
			t.Fatalf("%s: calloc: %v", f, err)
		}
		for off := uint64(0); off < 128; off += 8 {
			if got := mach.Mem.ReadUint(q+off, 8); got != 0 {
				t.Fatalf("%s: calloc memory at +%d = %#x, want 0", f, off, got)
			}
		}
	}
}

func TestCallocOverflowRejected(t *testing.T) {
	mach, r := world(t, ASan)
	if _, err := callCalloc(mach, r, 1<<33, 1<<33); err == nil {
		t.Error("calloc size overflow accepted")
	}
}

func TestReallocPreservesPrefix(t *testing.T) {
	mach, r := world(t, REST)
	p := mustMalloc(t, mach, r, 64)
	for off := uint64(0); off < 64; off += 8 {
		mach.Mem.WriteUint(p+off, 8, off+1)
	}
	q, err := callRealloc(mach, r, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Error("realloc grew in place into the redzone?!")
	}
	for off := uint64(0); off < 64; off += 8 {
		if got := mach.Mem.ReadUint(q+off, 8); got != off+1 {
			t.Fatalf("prefix at +%d = %d, want %d", off, got, off+1)
		}
	}
	// The old chunk is quarantined: dangling reads hit tokens.
	mach2, r2 := world(t, REST)
	p2 := mustMalloc(t, mach2, r2, 64)
	q2, err := callRealloc(mach2, r2, p2, 256)
	if err != nil || q2 == 0 {
		t.Fatal(err)
	}
	if _, exc := mach2.RTLoad(sim.SvcMemcpy, p2, 8); exc == nil {
		t.Error("read through pre-realloc pointer not detected")
	} else if exc.Kind != core.ViolationLoad {
		t.Errorf("kind = %v", exc.Kind)
	}
}

func TestReallocShrink(t *testing.T) {
	mach, r := world(t, Plain)
	p := mustMalloc(t, mach, r, 256)
	mach.Mem.WriteUint(p, 8, 42)
	q, err := callRealloc(mach, r, p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := mach.Mem.ReadUint(q, 8); got != 42 {
		t.Errorf("shrunk realloc lost data: %d", got)
	}
}

func TestReallocInvalidPointer(t *testing.T) {
	mach, r := world(t, ASan)
	if _, err := callRealloc(mach, r, 0x1234_5678, 64); err == nil {
		t.Error("realloc of bogus pointer accepted")
	}
}

func TestReallocNilIsMalloc(t *testing.T) {
	mach, r := world(t, Plain)
	q, err := callRealloc(mach, r, 0, 64)
	if err != nil || q == 0 {
		t.Errorf("realloc(nil) = %#x, %v", q, err)
	}
}
