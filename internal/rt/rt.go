// Package rt implements the runtime-service layer (sim.Runtime) for each
// binary flavour the evaluation compares:
//
//   - Plain: libc allocator, raw memcpy/memset.
//   - ASan: ASan allocator; memcpy/memset interceptors that range-check both
//     buffers against shadow before copying (the paper's overhead source #4,
//     "API intercept"); the inline instrumentation's slow-path check service.
//   - REST: REST allocator; *no* interceptors — the hardware checks the
//     copy's own loads and stores against tokens (§V-C Composability).
//   - PerfectHW: REST software with arm/disarm costed as single stores.
//
// Interceptor toggles exist so Figure 3's component breakdown can enable
// ASan's pieces one at a time.
package rt

import (
	"fmt"

	"rest/internal/alloc"
	"rest/internal/shadow"
	"rest/internal/sim"
)

// Flavour names a runtime configuration.
type Flavour string

// The four runtime flavours.
const (
	Plain     Flavour = "plain"
	ASan      Flavour = "asan"
	REST      Flavour = "rest"
	PerfectHW Flavour = "perfecthw"
)

// Runtime dispatches runtime services to an allocator and the flavour's
// libc-call semantics.
type Runtime struct {
	Flavour Flavour
	Alloc   *alloc.Engine
	Shadow  *shadow.Map // ASan only

	// InterceptLibc enables ASan's memcpy/memset shadow range checks
	// (default true for ASan; Figure 3 toggles it).
	InterceptLibc bool

	// Stats.
	MemcpyCalls uint64
	MemsetCalls uint64
	SlowChecks  uint64
}

// New builds a runtime for the flavour.
func New(f Flavour, a *alloc.Engine, sh *shadow.Map) *Runtime {
	return &Runtime{
		Flavour:       f,
		Alloc:         a,
		Shadow:        sh,
		InterceptLibc: f == ASan,
	}
}

// Call implements sim.Runtime.
func (r *Runtime) Call(id int64, m *sim.Machine) error {
	switch id {
	case sim.SvcMalloc:
		ptr, err := r.Alloc.Malloc(m, m.Arg(0))
		if err != nil {
			return err
		}
		m.SetRet(ptr)
		return nil

	case sim.SvcFree:
		return r.Alloc.Free(m, m.Arg(0))

	case sim.SvcMemcpy:
		return r.memcpy(m, m.Arg(0), m.Arg(1), m.Arg(2))

	case sim.SvcMemset:
		return r.memset(m, m.Arg(0), byte(m.Arg(1)), m.Arg(2))

	case sim.SvcAsanSlow:
		return r.asanSlowCheck(m, m.Arg(0), uint8(m.Arg(1)), m.Arg(2) != 0)

	case sim.SvcExit:
		m.HaltClean()
		return nil

	case sim.SvcLongjmpFix:
		return r.longjmpFix(m, m.Arg(0), m.Arg(1))

	case sim.SvcCalloc:
		return r.calloc(m, m.Arg(0), m.Arg(1))

	case sim.SvcRealloc:
		return r.realloc(m, m.Arg(0), m.Arg(1))

	case sim.SvcStrcpy:
		return r.strcpy(m, m.Arg(0), m.Arg(1))

	case sim.SvcStrlen:
		n, err := r.strlen(m, m.Arg(0))
		if err != nil {
			return err
		}
		m.SetRet(n)
		return nil

	default:
		return fmt.Errorf("rt: unknown service %d", id)
	}
}

// rangeCheck is ASan's interceptor check: walk the shadow of [addr, addr+n)
// (one shadow load per 8 application bytes) and report the first poisoned
// byte touched.
func (r *Runtime) rangeCheck(m *sim.Machine, id int64, addr, n uint64, what string) error {
	if n == 0 {
		return nil
	}
	end := addr + n - 1
	for gran := addr / shadow.Granularity; gran <= end/shadow.Granularity; gran++ {
		if exc := m.RTTouch(id, shadow.Addr(gran*shadow.Granularity), 1, false); exc != nil {
			return exc
		}
	}
	if ok, _ := r.Shadow.Check(addr, 1); !ok {
		return &sim.Violation{Tool: "asan", What: what, Addr: addr}
	}
	// Check the full range functionally (the walk above charged the cost).
	for a := addr; a <= end; a += shadow.Granularity {
		hi := a + shadow.Granularity - 1
		if hi > end {
			hi = end
		}
		if ok, _ := r.Shadow.Check(a, uint8(hi-a+1)); !ok {
			return &sim.Violation{Tool: "asan", What: what, Addr: a}
		}
	}
	return nil
}

// memcpy copies n bytes with 8-byte micro-ops. Under ASan the interceptor
// range-checks src and dst first; under REST the copy's own accesses hit any
// token in the way and fault mid-copy, exactly like hardware.
func (r *Runtime) memcpy(m *sim.Machine, dst, src, n uint64) error {
	r.MemcpyCalls++
	if r.InterceptLibc && r.Shadow != nil {
		if err := r.rangeCheck(m, sim.SvcMemcpy, src, n, "memcpy src out of bounds"); err != nil {
			return err
		}
		if err := r.rangeCheck(m, sim.SvcMemcpy, dst, n, "memcpy dst out of bounds"); err != nil {
			return err
		}
	}
	for off := uint64(0); off < n; {
		step := uint8(8)
		if n-off < 8 {
			step = uint8(n - off)
			if step == 0 {
				break
			}
			// Sub-8 tail: byte copies.
			step = 1
		}
		v, exc := m.RTLoad(sim.SvcMemcpy, src+off, step)
		if exc != nil {
			return exc
		}
		if exc := m.RTStore(sim.SvcMemcpy, dst+off, step, v); exc != nil {
			return exc
		}
		off += uint64(step)
	}
	return nil
}

// memset fills n bytes with 8-byte micro-ops.
func (r *Runtime) memset(m *sim.Machine, dst uint64, b byte, n uint64) error {
	r.MemsetCalls++
	if r.InterceptLibc && r.Shadow != nil {
		if err := r.rangeCheck(m, sim.SvcMemset, dst, n, "memset out of bounds"); err != nil {
			return err
		}
	}
	pat := uint64(b) * 0x0101010101010101
	for off := uint64(0); off < n; {
		step := uint8(8)
		if n-off < 8 {
			step = 1
		}
		if exc := m.RTStore(sim.SvcMemset, dst+off, step, pat); exc != nil {
			return exc
		}
		off += uint64(step)
	}
	return nil
}

// calloc allocates n*elem zeroed bytes. The REST allocator's free pool is
// already zeroed (the paper's relaxed invariant), so fresh and recycled
// chunks alike need no clearing there; the libc/ASan paths pay the memset.
func (r *Runtime) calloc(m *sim.Machine, n, elem uint64) error {
	total := n * elem
	if elem != 0 && total/elem != n {
		return &sim.Violation{Tool: string(r.Flavour), What: "calloc overflow", Addr: 0}
	}
	ptr, err := r.Alloc.Malloc(m, total)
	if err != nil {
		return err
	}
	if r.Flavour != REST {
		if err := r.memset(m, ptr, 0, total); err != nil {
			return err
		}
	}
	m.SetRet(ptr)
	return nil
}

// realloc grows/shrinks an allocation: allocate, copy min(old,new), free.
// Under ASan/REST the copy is checked/token-checked like any other memcpy.
func (r *Runtime) realloc(m *sim.Machine, ptr, newSize uint64) error {
	if ptr == 0 {
		return r.Call(sim.SvcMalloc, m)
	}
	oldSize, ok := r.Alloc.SizeOf(ptr)
	if !ok {
		return &sim.Violation{Tool: string(r.Flavour), What: "realloc of invalid pointer", Addr: ptr}
	}
	np, err := r.Alloc.Malloc(m, newSize)
	if err != nil {
		return err
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	if err := r.memcpy(m, np, ptr, n); err != nil {
		return err
	}
	if err := r.Alloc.Free(m, ptr); err != nil {
		return err
	}
	m.SetRet(np)
	return nil
}

// strlen walks src byte by byte until NUL (each byte read is a checked
// micro-op, so REST faults if the scan runs into a token).
func (r *Runtime) strlen(m *sim.Machine, s uint64) (uint64, error) {
	for n := uint64(0); ; n++ {
		v, exc := m.RTLoad(sim.SvcStrlen, s+n, 1)
		if exc != nil {
			return 0, exc
		}
		if v == 0 {
			return n, nil
		}
	}
}

// strcpy is the classic unbounded copy the paper names as an interceptor
// target ("e.g., strcpy and memcpy", §II). Under ASan the interceptor
// measures the source string and range-checks both buffers before copying;
// under REST the copy's own accesses hit any token bookend mid-copy.
func (r *Runtime) strcpy(m *sim.Machine, dst, src uint64) error {
	if r.InterceptLibc && r.Shadow != nil {
		n, err := r.strlen(m, src)
		if err != nil {
			return err
		}
		if err := r.rangeCheck(m, sim.SvcStrcpy, src, n+1, "strcpy src out of bounds"); err != nil {
			return err
		}
		if err := r.rangeCheck(m, sim.SvcStrcpy, dst, n+1, "strcpy dst out of bounds"); err != nil {
			return err
		}
	}
	for off := uint64(0); ; off++ {
		v, exc := m.RTLoad(sim.SvcStrcpy, src+off, 1)
		if exc != nil {
			return exc
		}
		if exc := m.RTStore(sim.SvcStrcpy, dst+off, 1, v); exc != nil {
			return exc
		}
		if v == 0 {
			m.SetRet(dst)
			return nil
		}
	}
}

// longjmpFix implements ASan's conservative setjmp/longjmp handling (§V-C):
// the stack region [lo, hi) being abandoned by the longjmp is unpoisoned
// wholesale, whitelisting any stale redzones left by skipped epilogues. The
// REST flavour cannot do this — it has no record of armed stack chunks and
// must not guess (brute-force disarms fault) — so the documented
// incompatibility stands: REST-full binaries that longjmp over armed frames
// will false-positive later.
func (r *Runtime) longjmpFix(m *sim.Machine, lo, hi uint64) error {
	if r.Flavour != ASan || r.Shadow == nil || hi <= lo {
		return nil
	}
	r.Shadow.Unpoison(lo, hi-lo)
	for a := lo; a < hi; a += 64 {
		if exc := m.RTTouch(sim.SvcLongjmpFix, shadow.Addr(a), 8, true); exc != nil {
			return exc
		}
	}
	return nil
}

// asanSlowCheck is the out-of-line half of ASan's inline check: invoked when
// the fast path saw a non-zero shadow byte.
func (r *Runtime) asanSlowCheck(m *sim.Machine, addr uint64, size uint8, isStore bool) error {
	r.SlowChecks++
	if r.Shadow == nil {
		return fmt.Errorf("rt: asan slow check without shadow")
	}
	m.RTALU(sim.SvcAsanSlow, 2)
	if ok, poison := r.Shadow.Check(addr, size); !ok {
		what := "heap-buffer-overflow read"
		switch {
		case poison == shadow.FreedHeap && isStore:
			what = "heap-use-after-free write"
		case poison == shadow.FreedHeap:
			what = "heap-use-after-free read"
		case isStore:
			what = "heap-buffer-overflow write"
		}
		if poison == shadow.StackLeftRZ || poison == shadow.StackMidRZ || poison == shadow.StackRightRZ {
			what = "stack-buffer-overflow"
		}
		return &sim.Violation{Tool: "asan", What: what, Addr: addr}
	}
	return nil
}
