package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeeds builds the interesting starting shapes: valid files in both
// block encodings, an empty trace, a version-skewed header, and classic
// mutations (truncation, bit flip, hostile lengths). The committed corpus
// under testdata/fuzz/FuzzTraceDecode mirrors these (see
// TestWriteFuzzCorpus).
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	encode := func(n int, tokenWidth uint64, compress bool) []byte {
		rec := testTrace(n, tokenWidth)
		defer rec.Release()
		var buf bytes.Buffer
		if err := encodeTrace(&buf, rec, SumID("fuzz-seed"), 42, compress); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	validRaw := encode(64, 8, false)
	validZ := encode(64, 8, true)
	seeds = append(seeds, validRaw, validZ, encode(0, 0, false))

	seeds = append(seeds, validRaw[:len(validRaw)/2]) // truncated mid-block
	seeds = append(seeds, validRaw[:traceHeaderLen])  // header only, entries promised

	flip := bytes.Clone(validZ)
	flip[len(flip)-3] ^= 0x10
	seeds = append(seeds, flip)

	skew := bytes.Clone(validRaw)
	binary.LittleEndian.PutUint32(skew[8:12], FormatVersion+9)
	binary.LittleEndian.PutUint32(skew[76:80], crc32.ChecksumIEEE(skew[:76]))
	seeds = append(seeds, skew)

	hostile := bytes.Clone(validRaw)
	binary.LittleEndian.PutUint64(hostile[24:32], 1<<60) // absurd entry count
	binary.LittleEndian.PutUint32(hostile[76:80], crc32.ChecksumIEEE(hostile[:76]))
	seeds = append(seeds, hostile)

	seeds = append(seeds, []byte{}, []byte(traceMagic))
	return seeds
}

// FuzzTraceDecode is the robustness contract in executable form: decodeTrace
// must map arbitrary bytes to either a fully valid Recorder or a typed error
// (*CorruptError / *VersionError) — never a panic, never an untyped failure.
func FuzzTraceDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, err := decodeTrace(bytes.NewReader(data), nil)
		if err != nil {
			if rec != nil {
				t.Fatal("non-nil recorder alongside an error")
			}
			var cerr *CorruptError
			var verr *VersionError
			if !errors.As(err, &cerr) && !errors.As(err, &verr) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must re-encode: the recorder is structurally
		// sound, not just non-crashing.
		defer rec.Release()
		var buf bytes.Buffer
		if err := encodeTrace(&buf, rec, SumID("fuzz-reencode"), 0, false); err != nil {
			t.Fatalf("decoded recorder does not re-encode: %v", err)
		}
	})
}

var writeCorpus = flag.Bool("write-fuzz-corpus", false, "regenerate testdata/fuzz/FuzzTraceDecode seed files")

// TestWriteFuzzCorpus materializes fuzzSeeds as a committed corpus in the
// `go test fuzz v1` encoding, so `go test -fuzz` and plain `go test` start
// from the same shapes on a fresh checkout. Run with -write-fuzz-corpus to
// regenerate.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceDecode")
	if *writeCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	names, err := os.ReadDir(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("fuzz corpus missing (regenerate with -write-fuzz-corpus): %v", err)
	}
}
