package persist

import (
	"sync"
	"time"
)

// MemBackend is an in-memory Backend: the test fake, and the reference
// implementation of the protocol's semantics (atomic puts, typed errors,
// advisory locks). An optional capacity cap makes it return ErrNoSpace
// deterministically, which is how out-of-space handling is unit-tested
// without filling a real filesystem.
type MemBackend struct {
	mu    sync.Mutex
	objs  map[string][]byte    // kind+"/"+name -> payload (copied both ways)
	mods  map[string]time.Time // kind+"/"+name -> last publish time
	locks map[string]time.Time // lock name -> acquire time
	cap   int64                // total payload byte cap; 0 = unlimited
	used  int64
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{
		objs:  make(map[string][]byte),
		mods:  make(map[string]time.Time),
		locks: make(map[string]time.Time),
	}
}

// SetCapacity caps the backend's total payload bytes; a Put that would exceed
// it returns ErrNoSpace. 0 removes the cap.
func (b *MemBackend) SetCapacity(n int64) {
	b.mu.Lock()
	b.cap = n
	b.mu.Unlock()
}

// Len reports the number of resident objects of one kind.
func (b *MemBackend) Len(kind string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for k := range b.objs {
		if len(k) > len(kind) && k[:len(kind)] == kind && k[len(kind)] == '/' {
			n++
		}
	}
	return n
}

func memKey(kind, name string) string { return kind + "/" + name }

// Get returns a copy of the object's payload.
func (b *MemBackend) Get(kind, name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.objs[memKey(kind, name)]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put publishes a copy of the payload (atomic by construction: the map swap
// happens under the lock, so readers see old bytes or new, never a mix).
func (b *MemBackend) Put(kind, name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := memKey(kind, name)
	old := int64(len(b.objs[key]))
	if b.cap > 0 && b.used-old+int64(len(data)) > b.cap {
		return ErrNoSpace
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.objs[key] = cp
	b.mods[key] = time.Now()
	b.used += int64(len(data)) - old
	return nil
}

// Delete removes the object; absent objects are a no-op.
func (b *MemBackend) Delete(kind, name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := memKey(kind, name)
	b.used -= int64(len(b.objs[key]))
	delete(b.objs, key)
	delete(b.mods, key)
	return nil
}

// List enumerates one kind's resident objects.
func (b *MemBackend) List(kind string) ([]Stat, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Stat
	prefix := kind + "/"
	for k, data := range b.objs {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, Stat{Name: k[len(prefix):], Bytes: int64(len(data)), ModTime: b.mods[k]})
		}
	}
	return out, nil
}

// TryLock acquires the advisory named lock.
func (b *MemBackend) TryLock(name string) (func(), error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, held := b.locks[name]; held {
		return nil, ErrLockHeld
	}
	b.locks[name] = time.Now()
	return func() {
		b.mu.Lock()
		delete(b.locks, name)
		b.mu.Unlock()
	}, nil
}

// LockAge reports how long the named lock has been held.
func (b *MemBackend) LockAge(name string) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	at, held := b.locks[name]
	if !held {
		return 0, ErrNotFound
	}
	return time.Since(at), nil
}

// BreakLock force-releases the named lock.
func (b *MemBackend) BreakLock(name string) error {
	b.mu.Lock()
	delete(b.locks, name)
	b.mu.Unlock()
	return nil
}
