// The hardening middlewares: composable Backend wrappers that turn a flaky
// store into one whose only failure mode is "miss". Stack order (outermost
// first) is breaker → retry → timeout → chaos → real backend, so that
//
//   - the retry layer never wastes attempts on a breaker that already knows
//     the backend is down (ErrBreakerOpen is produced above it), and
//   - the breaker counts post-retry outcomes: it trips only when an op
//     failed even after its retries, i.e. on sustained unavailability.
//
// Only *UnavailableError is ever retried. ErrNotFound is an answer,
// ErrNoSpace is final for the write that hit it, ErrLockHeld is a lost race;
// retrying any of them would be wrong, not just wasteful.
package persist

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Hardening defaults: applied when the corresponding Options field is 0
// (a negative value disables the layer entirely).
const (
	// DefaultRetries is the bounded retry budget per op beyond the first
	// attempt.
	DefaultRetries = 2
	// DefaultRetryBase is the first backoff step; attempt n sleeps
	// base·2ⁿ plus up to base of seeded jitter.
	DefaultRetryBase = 2 * time.Millisecond
	// DefaultBreakerThreshold is the consecutive-failure count that trips
	// the circuit breaker open.
	DefaultBreakerThreshold = 8
	// DefaultBreakerCooldown is how long an open breaker fast-fails before
	// half-opening for a probe.
	DefaultBreakerCooldown = time.Second
)

// StackStats is the hardening stack's live counter set, shared by every
// layer of one stack and exported to the persist.retry.* / persist.breaker.*
// / persist.chaos.* obs namespaces. All fields are atomic; snapshot with
// Snapshot.
type StackStats struct {
	RetryAttempts atomic.Uint64 // ops that entered the retry layer
	Retries       atomic.Uint64 // individual re-attempts after a transient failure
	RetryGiveups  atomic.Uint64 // ops still failing after the full budget

	Timeouts atomic.Uint64 // ops cut off by the per-op timeout

	BreakerTrips      atomic.Uint64 // closed/half-open → open transitions
	BreakerRejects    atomic.Uint64 // ops fast-failed while open
	BreakerProbes     atomic.Uint64 // half-open probe attempts
	BreakerRecoveries atomic.Uint64 // half-open → closed transitions

	ChaosErrs       atomic.Uint64 // injected transient errors
	ChaosTorn       atomic.Uint64 // injected torn writes
	ChaosCorrupt    atomic.Uint64 // injected payload bit flips
	ChaosNoSpace    atomic.Uint64 // injected ErrNoSpace
	ChaosLatency    atomic.Uint64 // injected latency spikes
	ChaosLockStalls atomic.Uint64 // injected lock-acquire stalls
}

// StackCounters is a point-in-time snapshot of StackStats.
type StackCounters struct {
	RetryAttempts, Retries, RetryGiveups                           uint64
	Timeouts                                                       uint64
	BreakerTrips, BreakerRejects, BreakerProbes, BreakerRecoveries uint64
	ChaosErrs, ChaosTorn, ChaosCorrupt, ChaosNoSpace               uint64
	ChaosLatency, ChaosLockStalls                                  uint64
}

// Snapshot reads every counter.
func (s *StackStats) Snapshot() StackCounters {
	return StackCounters{
		RetryAttempts:     s.RetryAttempts.Load(),
		Retries:           s.Retries.Load(),
		RetryGiveups:      s.RetryGiveups.Load(),
		Timeouts:          s.Timeouts.Load(),
		BreakerTrips:      s.BreakerTrips.Load(),
		BreakerRejects:    s.BreakerRejects.Load(),
		BreakerProbes:     s.BreakerProbes.Load(),
		BreakerRecoveries: s.BreakerRecoveries.Load(),
		ChaosErrs:         s.ChaosErrs.Load(),
		ChaosTorn:         s.ChaosTorn.Load(),
		ChaosCorrupt:      s.ChaosCorrupt.Load(),
		ChaosNoSpace:      s.ChaosNoSpace.Load(),
		ChaosLatency:      s.ChaosLatency.Load(),
		ChaosLockStalls:   s.ChaosLockStalls.Load(),
	}
}

// hardenStack assembles the configured middleware stack around inner. The
// order is fixed (see the package comment above); each layer is skipped when
// its Options field disables it.
func hardenStack(inner Backend, opt Options, st *StackStats) Backend {
	b := inner
	if opt.Chaos != nil {
		b = NewChaos(b, opt.Chaos, st)
	}
	if opt.OpTimeout > 0 {
		b = newTimeoutBackend(b, opt.OpTimeout, st)
	}
	retries, base := opt.Retries, opt.RetryBase
	if retries == 0 {
		retries = DefaultRetries
	}
	if base <= 0 {
		base = DefaultRetryBase
	}
	if retries > 0 {
		seed := opt.RetrySeed
		if seed == 0 {
			seed = 1
		}
		b = newRetryBackend(b, retries, base, seed, st)
	}
	threshold, cooldown := opt.BreakerThreshold, opt.BreakerCooldown
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if threshold > 0 {
		b = newBreakerBackend(b, threshold, cooldown, st)
	}
	return b
}

// retryable reports whether an error is worth another attempt: only the
// transient *UnavailableError class qualifies.
func retryable(err error) bool {
	var ue *UnavailableError
	return errors.As(err, &ue)
}

// retryBackend re-attempts transient failures with exponential backoff and
// seeded jitter. Lock operations pass through untouched: ErrLockHeld is a
// lost race, and an unavailable lock plane fails open at the Cache layer.
type retryBackend struct {
	inner Backend
	max   int // re-attempts after the first try
	base  time.Duration
	st    *StackStats

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetryBackend(inner Backend, max int, base time.Duration, seed uint64, st *StackStats) *retryBackend {
	return &retryBackend{
		inner: inner, max: max, base: base, st: st,
		rng: rand.New(rand.NewSource(int64(seed))),
	}
}

// jitter draws a seeded uniform duration in [0, base).
func (r *retryBackend) jitter() time.Duration {
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(r.base)))
	r.mu.Unlock()
	return d
}

// do runs op with the retry budget. The backoff before re-attempt n
// (0-based) is base·2ⁿ plus jitter.
func (r *retryBackend) do(op func() error) error {
	r.st.RetryAttempts.Add(1)
	err := op()
	for n := 0; n < r.max && retryable(err); n++ {
		time.Sleep(r.base<<uint(n) + r.jitter())
		r.st.Retries.Add(1)
		err = op()
	}
	if retryable(err) {
		r.st.RetryGiveups.Add(1)
	}
	return err
}

func (r *retryBackend) Get(kind, name string) (data []byte, err error) {
	err = r.do(func() error { data, err = r.inner.Get(kind, name); return err })
	return data, err
}

func (r *retryBackend) Put(kind, name string, data []byte) error {
	return r.do(func() error { return r.inner.Put(kind, name, data) })
}

func (r *retryBackend) Delete(kind, name string) error {
	return r.do(func() error { return r.inner.Delete(kind, name) })
}

func (r *retryBackend) List(kind string) (out []Stat, err error) {
	err = r.do(func() error { out, err = r.inner.List(kind) ; return err })
	return out, err
}

func (r *retryBackend) TryLock(name string) (func(), error) { return r.inner.TryLock(name) }
func (r *retryBackend) LockAge(name string) (time.Duration, error) {
	return r.inner.LockAge(name)
}
func (r *retryBackend) BreakLock(name string) error { return r.inner.BreakLock(name) }

// timeoutBackend bounds each object op's wall-clock time. An op that blows
// its budget returns *UnavailableError immediately; the underlying call is
// left to finish (and be discarded) in the background, since a hung disk
// cannot be cancelled from userspace. Lock ops are exempt: they are already
// bounded polls at the Cache layer.
type timeoutBackend struct {
	inner Backend
	d     time.Duration
	st    *StackStats
}

func newTimeoutBackend(inner Backend, d time.Duration, st *StackStats) *timeoutBackend {
	return &timeoutBackend{inner: inner, d: d, st: st}
}

func (t *timeoutBackend) do(op, kind, name string, fn func() error) error {
	done := make(chan error, 1)
	go func() { done <- fn() }()
	timer := time.NewTimer(t.d)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		t.st.Timeouts.Add(1)
		return unavailable(op, kind, name, errors.New("operation timed out"))
	}
}

func (t *timeoutBackend) Get(kind, name string) (data []byte, err error) {
	werr := t.do("get", kind, name, func() error {
		var e error
		data, e = t.inner.Get(kind, name)
		return e
	})
	if werr != nil {
		return nil, werr
	}
	return data, nil
}

func (t *timeoutBackend) Put(kind, name string, data []byte) error {
	return t.do("put", kind, name, func() error { return t.inner.Put(kind, name, data) })
}

func (t *timeoutBackend) Delete(kind, name string) error {
	return t.do("delete", kind, name, func() error { return t.inner.Delete(kind, name) })
}

func (t *timeoutBackend) List(kind string) (out []Stat, err error) {
	werr := t.do("list", kind, "", func() error {
		var e error
		out, e = t.inner.List(kind)
		return e
	})
	if werr != nil {
		return nil, werr
	}
	return out, nil
}

func (t *timeoutBackend) TryLock(name string) (func(), error) { return t.inner.TryLock(name) }
func (t *timeoutBackend) LockAge(name string) (time.Duration, error) {
	return t.inner.LockAge(name)
}
func (t *timeoutBackend) BreakLock(name string) error { return t.inner.BreakLock(name) }

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerBackend is the per-backend circuit breaker. threshold consecutive
// transient failures trip it open; while open every op fast-fails with
// ErrBreakerOpen (no backend touch, no retry — the layer sits outermost).
// After cooldown the next op becomes the half-open probe: its success closes
// the breaker, its failure re-trips the full cooldown. Lock ops bypass the
// breaker entirely — they fail open at the Cache layer and must never be
// able to wedge it.
type breakerBackend struct {
	inner     Backend
	threshold int
	cooldown  time.Duration
	st        *StackStats
	now       func() time.Time // injectable for deterministic tests

	mu       sync.Mutex
	state    int
	fails    int  // consecutive transient failures while closed
	probing  bool // a half-open probe is in flight
	openedAt time.Time
}

func newBreakerBackend(inner Backend, threshold int, cooldown time.Duration, st *StackStats) *breakerBackend {
	return &breakerBackend{
		inner: inner, threshold: threshold, cooldown: cooldown, st: st,
		state: breakerClosed, now: time.Now,
	}
}

// admit decides whether an op may proceed. It returns ErrBreakerOpen for
// fast-fail, and probe=true when the op is the half-open probe.
func (b *breakerBackend) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.st.BreakerRejects.Add(1)
			return false, ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.st.BreakerProbes.Add(1)
		return true, nil
	default: // half-open
		if b.probing {
			b.st.BreakerRejects.Add(1)
			return false, ErrBreakerOpen
		}
		b.probing = true
		b.st.BreakerProbes.Add(1)
		return true, nil
	}
}

// settle records an op's outcome. Only transient unavailability counts as
// failure: ErrNotFound, ErrNoSpace and nil all prove the backend reachable.
func (b *breakerBackend) settle(probe bool, err error) {
	failed := retryable(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if failed {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.st.BreakerTrips.Add(1)
		} else {
			b.state = breakerClosed
			b.fails = 0
			b.st.BreakerRecoveries.Add(1)
		}
		return
	}
	if b.state != breakerClosed {
		return // an op admitted before the trip; its outcome is stale
	}
	if !failed {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.st.BreakerTrips.Add(1)
	}
}

func (b *breakerBackend) do(fn func() error) error {
	probe, err := b.admit()
	if err != nil {
		return err
	}
	err = fn()
	b.settle(probe, err)
	return err
}

func (b *breakerBackend) Get(kind, name string) (data []byte, err error) {
	werr := b.do(func() error {
		var e error
		data, e = b.inner.Get(kind, name)
		return e
	})
	if werr != nil {
		return nil, werr
	}
	return data, nil
}

func (b *breakerBackend) Put(kind, name string, data []byte) error {
	return b.do(func() error { return b.inner.Put(kind, name, data) })
}

func (b *breakerBackend) Delete(kind, name string) error {
	return b.do(func() error { return b.inner.Delete(kind, name) })
}

func (b *breakerBackend) List(kind string) (out []Stat, err error) {
	werr := b.do(func() error {
		var e error
		out, e = b.inner.List(kind)
		return e
	})
	if werr != nil {
		return nil, werr
	}
	return out, nil
}

func (b *breakerBackend) TryLock(name string) (func(), error) { return b.inner.TryLock(name) }
func (b *breakerBackend) LockAge(name string) (time.Duration, error) {
	return b.inner.LockAge(name)
}
func (b *breakerBackend) BreakLock(name string) error { return b.inner.BreakLock(name) }
