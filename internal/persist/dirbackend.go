package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// DirBackend is the local-directory Backend: the PR-5 on-disk layout
// (traces/<id>.trc, results/<id>.res, locks/<name>.lock, manifest.json at
// the root) behind the storage protocol. Puts are atomic — temp + fsync +
// rename + directory fsync — so a crash can publish at worst nothing, and
// every os-level failure is classified into the typed taxonomy before it
// leaves this file: a missing object is ErrNotFound, a full disk is
// ErrNoSpace, anything else transient is *UnavailableError.
type DirBackend struct {
	dir      string
	readOnly bool
}

// NewDirBackend attaches to (and in read-write mode creates) the directory
// layout. Read-write opens sweep stale temp files left by crashed writers;
// read-only opens require the directory to exist and never write anything.
func NewDirBackend(dir string, readOnly bool) (*DirBackend, error) {
	if readOnly {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("persist: read-only cache dir %s does not exist", dir)
		}
		return &DirBackend{dir: dir, readOnly: true}, nil
	}
	for _, sub := range []string{"", "traces", "results", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	b := &DirBackend{dir: dir}
	b.sweepTemps()
	return b, nil
}

// Dir returns the backing directory.
func (b *DirBackend) Dir() string { return b.dir }

// kindDir maps an object kind to its subdirectory ("" = the root).
func kindDir(kind string) string {
	switch kind {
	case kindTrace:
		return "traces"
	case kindResult:
		return "results"
	default:
		return ""
	}
}

// kindExt maps an object kind to its file extension.
func kindExt(kind string) string {
	switch kind {
	case kindTrace:
		return traceExt
	case kindResult:
		return resultExt
	default:
		return ""
	}
}

// path returns the final file path of an object.
func (b *DirBackend) path(kind, name string) string {
	return filepath.Join(b.dir, kindDir(kind), name+kindExt(kind))
}

// lockPath returns the lock file path for a named lock.
func (b *DirBackend) lockPath(name string) string {
	return filepath.Join(b.dir, "locks", name+".lock")
}

// classify maps an os error onto the typed taxonomy.
func classify(op, kind, name string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, os.ErrNotExist):
		return ErrNotFound
	case errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT):
		return ErrNoSpace
	default:
		return unavailable(op, kind, name, err)
	}
}

// sweepTemps removes leftovers of writers that crashed mid-put: temp files
// are always named <final>.tmp.<pid>, and a rename that never happened means
// the object was never published.
func (b *DirBackend) sweepTemps() {
	for _, sub := range []string{".", "traces", "results"} {
		names, err := os.ReadDir(filepath.Join(b.dir, sub))
		if err != nil {
			continue
		}
		for _, de := range names {
			if strings.Contains(de.Name(), ".tmp.") || de.Name() == manifestName+".tmp" {
				os.Remove(filepath.Join(b.dir, sub, de.Name()))
			}
		}
	}
}

// Get reads one object whole.
func (b *DirBackend) Get(kind, name string) ([]byte, error) {
	raw, err := os.ReadFile(b.path(kind, name))
	if err != nil {
		return nil, classify("get", kind, name, err)
	}
	return raw, nil
}

// Put atomically publishes one object: write a pid-suffixed temp, fsync it,
// rename over the final name, fsync the directory. A failure at any step
// removes the temp so nothing partial is ever visible under the final name.
func (b *DirBackend) Put(kind, name string, data []byte) error {
	final := b.path(kind, name)
	tmp := fmt.Sprintf("%s.tmp.%d", final, os.Getpid())
	if err := writeFileSync(tmp, data); err != nil {
		return classify("put", kind, name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return classify("put", kind, name, err)
	}
	syncDir(filepath.Dir(final))
	return nil
}

// Delete removes one object; an already-absent object is a no-op.
func (b *DirBackend) Delete(kind, name string) error {
	err := os.Remove(b.path(kind, name))
	if err == nil || errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return classify("delete", kind, name, err)
}

// List enumerates one kind's resident objects, skipping in-flight temps.
func (b *DirBackend) List(kind string) ([]Stat, error) {
	names, err := os.ReadDir(filepath.Join(b.dir, kindDir(kind)))
	if err != nil {
		return nil, classify("list", kind, "", err)
	}
	ext := kindExt(kind)
	var out []Stat
	for _, de := range names {
		name, ok := strings.CutSuffix(de.Name(), ext)
		if !ok || strings.Contains(de.Name(), ".tmp.") || de.IsDir() {
			continue
		}
		if ext == "" && (de.Name() == manifestName+".tmp" || strings.HasSuffix(de.Name(), ".lock")) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, Stat{Name: name, Bytes: info.Size(), ModTime: info.ModTime()})
	}
	return out, nil
}

// TryLock acquires the named lock via an O_EXCL lock file carrying the
// holder's pid. The mtime doubles as the lock's age for stale-steal.
func (b *DirBackend) TryLock(name string) (func(), error) {
	path := b.lockPath(name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		fmt.Fprintf(f, "%d\n", os.Getpid())
		f.Close()
		return func() { os.Remove(path) }, nil
	}
	if errors.Is(err, os.ErrExist) {
		return nil, ErrLockHeld
	}
	return nil, classify("lock", "", name, err)
}

// LockAge reports how long the named lock has been held.
func (b *DirBackend) LockAge(name string) (time.Duration, error) {
	fi, err := os.Stat(b.lockPath(name))
	if err != nil {
		return 0, classify("lock", "", name, err)
	}
	return time.Since(fi.ModTime()), nil
}

// BreakLock force-releases the named lock.
func (b *DirBackend) BreakLock(name string) error {
	err := os.Remove(b.lockPath(name))
	if err == nil || errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return classify("lock", "", name, err)
}
