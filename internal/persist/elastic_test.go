// The elastic scheduling surface's proof obligations: the server's epoch
// plane must bump on scheduling-relevant state (markers, lock grants, lock
// releases) and only that, the long-poll must park and wake rather than
// spin, the read-through cache must serve immutable kinds from memory
// without ever going stale or leaking a mutable slice, leases must make
// stale-takeover observable to the dispossessed holder, and the Cache-level
// claim/marker/wait primitives must compose those planes with the package's
// fail-open posture.
package persist

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestCacheServerEpoch pins what moves the epoch: meta puts, lock grants and
// lock releases bump it; artifact traffic (trace/result puts, gets, lists)
// does not — bulk transfers must not wake parked workers.
func TestCacheServerEpoch(t *testing.T) {
	t.Parallel()
	hb := newHTTPBackend(t, newCacheServer(t, NewMemBackend()))

	epoch := func() uint64 {
		t.Helper()
		e, err := hb.EpochWait(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0 := epoch()

	if err := hb.Put(kindTrace, "t1", []byte("bulk")); err != nil {
		t.Fatal(err)
	}
	if err := hb.Put(kindResult, "r1", []byte("bulk")); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Get(kindTrace, "t1"); err != nil {
		t.Fatal(err)
	}
	if got := epoch(); got != e0 {
		t.Fatalf("artifact traffic moved the epoch: %d -> %d", e0, got)
	}

	if err := hb.Put(kindMeta, "marker-1", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	e1 := epoch()
	if e1 <= e0 {
		t.Fatalf("meta put did not bump the epoch: %d -> %d", e0, e1)
	}
	rel, err := hb.TryLock("claim-1")
	if err != nil {
		t.Fatal(err)
	}
	e2 := epoch()
	if e2 <= e1 {
		t.Fatalf("lock grant did not bump the epoch: %d -> %d", e1, e2)
	}
	rel()
	if e3 := epoch(); e3 <= e2 {
		t.Fatalf("lock release did not bump the epoch: %d -> %d", e2, e3)
	}
}

// TestCacheServerEpochLongPoll pins the park-and-wake behavior: a waiter
// behind the current epoch returns immediately, a waiter at the current
// epoch parks until a scheduling event, and a bounded wait expires on its
// own rather than hanging.
func TestCacheServerEpochLongPoll(t *testing.T) {
	t.Parallel()
	hb := newHTTPBackend(t, newCacheServer(t, NewMemBackend()))

	if err := hb.Put(kindMeta, "m0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	cur, err := hb.EpochWait(0, 0)
	if err != nil || cur == 0 {
		t.Fatalf("current epoch: %d, %v", cur, err)
	}

	// Behind: returns without waiting.
	start := time.Now()
	if e, err := hb.EpochWait(cur-1, 10*time.Second); err != nil || e < cur {
		t.Fatalf("stale waiter: %d, %v", e, err)
	} else if time.Since(start) > 5*time.Second {
		t.Fatalf("stale waiter parked anyway")
	}

	// Current: parks, then wakes on the next meta put.
	woke := make(chan uint64, 1)
	go func() {
		e, _ := hb.EpochWait(cur, 10*time.Second)
		woke <- e
	}()
	time.Sleep(20 * time.Millisecond) // let the poll park
	if err := hb.Put(kindMeta, "m1", []byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-woke:
		if e <= cur {
			t.Fatalf("woken waiter saw no progress: %d <= %d", e, cur)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke after a meta put")
	}

	// Bounded: a short wait with no traffic expires with the same epoch.
	e2, err := hb.EpochWait(cur+1, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if e2 > cur+1 {
		t.Fatalf("idle wait invented progress: %d", e2)
	}
}

// TestHTTPBackendReadCache pins the warm-path memory tier: immutable kinds
// (traces, results) are served from memory on re-read, callers get private
// copies, the meta namespace is never cached (markers and the manifest are
// mutable), and the byte bound evicts LRU-first.
func TestHTTPBackendReadCache(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	hb := newHTTPBackend(t, url)

	body := []byte("trace-bytes")
	if err := hb.Put(kindTrace, "a", body); err != nil {
		t.Fatal(err)
	}
	got1, err := hb.Get(kindTrace, "a")
	if err != nil || !bytes.Equal(got1, body) {
		t.Fatalf("cold get: %q, %v", got1, err)
	}
	wireGets := hb.Counters().Gets
	got2, err := hb.Get(kindTrace, "a")
	if err != nil || !bytes.Equal(got2, body) {
		t.Fatalf("warm get: %q, %v", got2, err)
	}
	c := hb.Counters()
	if c.Gets != wireGets {
		t.Fatalf("warm get went to the wire: %d -> %d wire gets", wireGets, c.Gets)
	}
	if c.ReadHits != 1 || c.ReadMisses != 1 || c.ReadSavedBytes != uint64(len(body)) {
		t.Fatalf("read cache counters: hits=%d misses=%d saved=%d", c.ReadHits, c.ReadMisses, c.ReadSavedBytes)
	}

	// A caller mutating its slice must not poison later reads.
	got2[0] = 'X'
	got3, err := hb.Get(kindTrace, "a")
	if err != nil || !bytes.Equal(got3, body) {
		t.Fatalf("cached bytes poisoned by a caller mutation: %q, %v", got3, err)
	}

	// A local overwrite invalidates the cached body: the Backend contract
	// allows same-name replacement even though the artifact tiers are
	// content-addressed in practice.
	if err := hb.Put(kindTrace, "a", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if got, err := hb.Get(kindTrace, "a"); err != nil || string(got) != "replaced" {
		t.Fatalf("read cache served stale bytes after an overwrite: %q, %v", got, err)
	}
	// Meta objects are mutable coordination state: never served from memory.
	if err := hb.Put(kindMeta, "m", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Get(kindMeta, "m"); err != nil {
		t.Fatal(err)
	}
	if err := hb.Put(kindMeta, "m", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err := hb.Get(kindMeta, "m"); err != nil || string(got) != "v2" {
		t.Fatalf("meta read served stale cached bytes: %q, %v", got, err)
	}

	// Disabled outright with a negative bound: every get is a wire get.
	off, err := NewHTTPBackend(url, HTTPOptions{RenewEvery: -1, ReadCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.Get(kindTrace, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Get(kindTrace, "a"); err != nil {
		t.Fatal(err)
	}
	if c := off.Counters(); c.Gets != 2 || c.ReadHits != 0 {
		t.Fatalf("disabled cache still caching: wire=%d hits=%d", c.Gets, c.ReadHits)
	}
}

// TestHTTPBackendReadCacheEviction pins the byte bound: the LRU entry goes
// first, and an object larger than the whole bound is never admitted.
func TestHTTPBackendReadCacheEviction(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	hb, err := NewHTTPBackend(url, HTTPOptions{RenewEvery: -1, ReadCacheBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 40)
	for _, name := range []string{"a", "b", "c"} {
		if err := hb.Put(kindTrace, name, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := hb.Get(kindTrace, name); err != nil {
			t.Fatal(err)
		}
	}
	// a/b/c at 40B each against a 100B bound: "a" must have been evicted.
	wire := hb.Counters().Gets
	if _, err := hb.Get(kindTrace, "c"); err != nil {
		t.Fatal(err)
	}
	if hb.Counters().Gets != wire {
		t.Fatalf("most-recent entry evicted")
	}
	if _, err := hb.Get(kindTrace, "a"); err != nil {
		t.Fatal(err)
	}
	if hb.Counters().Gets != wire+1 {
		t.Fatalf("LRU entry not evicted")
	}

	// Oversized: passes through without ever being admitted.
	big := bytes.Repeat([]byte("y"), 200)
	if err := hb.Put(kindTrace, "big", big); err != nil {
		t.Fatal(err)
	}
	wire = hb.Counters().Gets
	if _, err := hb.Get(kindTrace, "big"); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Get(kindTrace, "big"); err != nil {
		t.Fatal(err)
	}
	if hb.Counters().Gets != wire+2 {
		t.Fatalf("oversized object was cached")
	}
}

// TestHTTPBackendTryLease pins the dispossession story: a holder whose lease
// is stolen (break + re-grant, the stale-takeover sequence) learns about it
// from its next Renew — typed ErrLeaseLost, Lost() readable — and its late
// Release cannot evict the thief.
func TestHTTPBackendTryLease(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	victim := newHTTPBackend(t, url)
	thief := newHTTPBackend(t, url)

	lease, err := victim.TryLease("unit-7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := thief.TryLease("unit-7"); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second lease on a held lock: %v", err)
	}
	if err := lease.Renew(); err != nil {
		t.Fatalf("renew while held: %v", err)
	}
	select {
	case <-lease.Lost():
		t.Fatal("Lost() readable while the lease is held")
	default:
	}

	// The takeover: a peer judges the holder dead, breaks, re-acquires.
	if err := thief.BreakLock("unit-7"); err != nil {
		t.Fatal(err)
	}
	stolen, err := thief.TryLease("unit-7")
	if err != nil {
		t.Fatalf("re-acquire after break: %v", err)
	}
	if err := lease.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("victim's renew after the steal: want ErrLeaseLost, got %v", err)
	}
	select {
	case <-lease.Lost():
	case <-time.After(time.Second):
		t.Fatal("Lost() not readable after a failed renewal")
	}
	lease.Release()
	lease.Release() // idempotent
	if err := stolen.Renew(); err != nil {
		t.Fatalf("victim's late release evicted the thief: %v", err)
	}
	stolen.Release()
}

// TestCacheTryClaimDir pins the claim plane over the local directory store:
// fresh grants win, fresh holders contend, stale holders are stolen with
// Stolen set, and read-only caches claim trivially.
func TestCacheTryClaimDir(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := Open(dir, Options{StaleLockAge: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, Options{StaleLockAge: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	claim, ok := a.TryClaim("claim-u1")
	if !ok || claim.Stolen {
		t.Fatalf("fresh claim: ok=%t stolen=%t", ok, claim != nil && claim.Stolen)
	}
	if err := claim.Renew(); err != nil {
		t.Fatalf("dir claims renew trivially: %v", err)
	}
	if _, ok := b.TryClaim("claim-u1"); ok {
		t.Fatal("fresh holder was dispossessed")
	}
	if b.Counters().LockContended == 0 {
		t.Fatal("contended claim not counted")
	}

	// The holder goes silent past StaleLockAge: the peer steals.
	waitFor(t, "claim to stale out", func() bool {
		st, ok := b.TryClaim("claim-u1")
		if ok {
			if !st.Stolen {
				t.Fatal("stale takeover not marked Stolen")
			}
			st.Release()
		}
		return ok
	})
	claim.Release() // late release by the presumed-dead holder: harmless

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if cl, ok := ro.TryClaim("claim-u2"); !ok {
		t.Fatal("read-only cache must claim trivially")
	} else {
		cl.Release()
	}
	if err := ro.PutMarker("m", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only marker put: %v", err)
	}
}

// TestCacheTryClaimHTTPSteal pins the full elastic dispossession over the
// wire: a stale holder is stolen through TryClaim (Stolen set) and then
// observes the loss on its next synchronous Renew.
func TestCacheTryClaimHTTPSteal(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	open := func() *Cache {
		hb := newHTTPBackend(t, url)
		c, err := OpenBackend(hb, Options{StaleLockAge: 60 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	victim, thief := open(), open()

	claim, ok := victim.TryClaim("claim-u9")
	if !ok || claim.Stolen {
		t.Fatalf("fresh claim: ok=%t", ok)
	}
	if _, ok := thief.TryClaim("claim-u9"); ok {
		t.Fatal("fresh lease was dispossessed")
	}
	waitFor(t, "lease to stale out", func() bool {
		st, ok := thief.TryClaim("claim-u9")
		if ok && !st.Stolen {
			t.Fatal("stale takeover not marked Stolen")
		}
		return ok
	})
	if err := claim.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("victim's renew after the steal: want ErrLeaseLost, got %v", err)
	}
	select {
	case <-claim.Lost():
	case <-time.After(time.Second):
		t.Fatal("claim loss not observable")
	}
	claim.Release()
}

// TestCacheMarkers pins the marker namespace: round-trip, typed miss,
// sorted prefix listing, and independence from the artifact byte cap.
func TestCacheMarkers(t *testing.T) {
	t.Parallel()
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.GetMarker("absent"); !errors.Is(err, ErrMiss) {
		t.Fatalf("absent marker: want ErrMiss, got %v", err)
	}
	for i := 3; i >= 0; i-- {
		name := fmt.Sprintf("elastic-g1-u%03d", i)
		if err := c.PutMarker(name, []byte(fmt.Sprintf(`{"unit":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PutMarker("other-g2-u000", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetMarker("elastic-g1-u002")
	if err != nil || string(got) != `{"unit":2}` {
		t.Fatalf("marker round-trip: %q, %v", got, err)
	}
	names, err := c.ListMarkers("elastic-g1-")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 || names[0] != "elastic-g1-u000" || names[3] != "elastic-g1-u003" {
		t.Fatalf("prefix listing: %v", names)
	}
}

// TestCacheWaitChange pins the no-epoch fallback: a directory store cannot
// park, so the wait is a bounded sleep whose return value forces a rescan.
func TestCacheWaitChange(t *testing.T) {
	t.Parallel()
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if e := c.WaitChange(5, 10*time.Millisecond); e != 6 {
		t.Fatalf("dir fallback epoch: want 6, got %d", e)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dir fallback overslept")
	}
}
