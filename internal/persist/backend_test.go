package persist

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// backendConformance is the protocol contract every Backend implementation
// must satisfy; it runs identically over the directory store and the
// in-memory fake so the fake stays an honest stand-in.
func backendConformance(t *testing.T, b Backend) {
	t.Helper()

	// Absent objects are ErrNotFound, not an os error in disguise.
	if _, err := b.Get(kindTrace, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent): want ErrNotFound, got %v", err)
	}

	// Put/Get round-trips bytes exactly; a second Put replaces.
	want := []byte("payload-one")
	if err := b.Put(kindTrace, "obj", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := b.Get(kindTrace, "obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get: got %q, %v; want %q", got, err, want)
	}
	want2 := []byte("payload-two-longer")
	if err := b.Put(kindTrace, "obj", want2); err != nil {
		t.Fatalf("Put(replace): %v", err)
	}
	if got, _ := b.Get(kindTrace, "obj"); !bytes.Equal(got, want2) {
		t.Fatalf("Get after replace: got %q want %q", got, want2)
	}

	// Kinds are separate namespaces.
	if _, err := b.Get(kindResult, "obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("kinds share a namespace: %v", err)
	}
	if err := b.Put(kindResult, "obj", []byte("res")); err != nil {
		t.Fatalf("Put(result): %v", err)
	}

	// List sees exactly the resident objects of one kind, with sizes.
	stats, err := b.List(kindTrace)
	if err != nil || len(stats) != 1 {
		t.Fatalf("List(trace): %v, %v", stats, err)
	}
	if stats[0].Name != "obj" || stats[0].Bytes != int64(len(want2)) {
		t.Fatalf("List stat: %+v", stats[0])
	}

	// Delete is effective and idempotent.
	if err := b.Delete(kindTrace, "obj"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := b.Delete(kindTrace, "obj"); err != nil {
		t.Fatalf("Delete(absent) should be a no-op: %v", err)
	}
	if _, err := b.Get(kindTrace, "obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}

	// Locks: exclusive, aged, breakable, releasable.
	if _, err := b.LockAge("l"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LockAge(unheld): want ErrNotFound, got %v", err)
	}
	rel, err := b.TryLock("l")
	if err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if _, err := b.TryLock("l"); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second TryLock: want ErrLockHeld, got %v", err)
	}
	if age, err := b.LockAge("l"); err != nil || age < 0 {
		t.Fatalf("LockAge(held): %v, %v", age, err)
	}
	rel()
	if _, err := b.LockAge("l"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LockAge after release: %v", err)
	}
	rel2, err := b.TryLock("l")
	if err != nil {
		t.Fatalf("TryLock after release: %v", err)
	}
	if err := b.BreakLock("l"); err != nil {
		t.Fatalf("BreakLock: %v", err)
	}
	if rel3, err := b.TryLock("l"); err != nil {
		t.Fatalf("TryLock after break: %v", err)
	} else {
		rel3()
	}
	rel2() // releasing a broken lock must not blow up
}

func TestDirBackendConformance(t *testing.T) {
	t.Parallel()
	b, err := NewDirBackend(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	backendConformance(t, b)
}

func TestMemBackendConformance(t *testing.T) {
	t.Parallel()
	backendConformance(t, NewMemBackend())
}

func TestMemBackendNoSpace(t *testing.T) {
	t.Parallel()
	b := NewMemBackend()
	b.SetCapacity(10)
	if err := b.Put(kindTrace, "a", []byte("12345")); err != nil {
		t.Fatalf("Put under cap: %v", err)
	}
	if err := b.Put(kindTrace, "b", []byte("123456")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Put past cap: want ErrNoSpace, got %v", err)
	}
	// Replacing an object accounts for the bytes it frees.
	if err := b.Put(kindTrace, "a", []byte("1234567890")); err != nil {
		t.Fatalf("Put(replace) within cap: %v", err)
	}
}

// TestChaosSpecGrammar pins the -cache-chaos spec grammar: every key, the
// rate shorthand, override ordering, and the rejections.
func TestChaosSpecGrammar(t *testing.T) {
	t.Parallel()
	spec, err := ParseChaosSpec("seed=7,rate=0.5,latency=0.25,delay=5ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if spec.Seed != 7 || spec.Err != 0.5 || spec.Torn != 0.5 || spec.Corrupt != 0.5 ||
		spec.NoSpace != 0.5 || spec.LockStall != 0.5 || spec.Latency != 0.25 ||
		spec.Delay != 5*time.Millisecond {
		t.Fatalf("spec fields: %+v", spec)
	}
	// Individual keys override the shorthand regardless of order.
	spec, err = ParseChaosSpec("err=0.9,rate=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Err != 0.1 {
		t.Fatalf("later rate should override earlier err: %+v", spec)
	}
	spec, err = ParseChaosSpec("rate=0.1,err=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Err != 0.9 || spec.Torn != 0.1 {
		t.Fatalf("later err should override earlier rate: %+v", spec)
	}
	for _, bad := range []string{
		"", "rate", "rate=", "rate=-0.1", "rate=1.5", "seed=x", "bogus=1",
		"delay=-5ms", "delay=fast", "err=2",
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("ParseChaosSpec(%q) should fail", bad)
		}
	}
}

// TestChaosDeterminism pins seeded reproducibility: the same spec over the
// same single-threaded op sequence injects the identical fault pattern.
func TestChaosDeterminism(t *testing.T) {
	t.Parallel()
	run := func() []string {
		spec := &ChaosSpec{Seed: 42, Err: 0.5, Delay: time.Microsecond}
		ch := NewChaos(NewMemBackend(), spec, nil)
		var outcomes []string
		for i := 0; i < 64; i++ {
			err := ch.Put(kindTrace, fmt.Sprintf("o%d", i), []byte("x"))
			outcomes = append(outcomes, fmt.Sprintf("put%d:%v", i, err))
			_, err = ch.Get(kindTrace, fmt.Sprintf("o%d", i))
			outcomes = append(outcomes, fmt.Sprintf("get%d:%v", i, err))
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverges at op %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestChaosFaultClasses drives each fault class at probability 1 and checks
// the injected failure has the right shape and is counted.
func TestChaosFaultClasses(t *testing.T) {
	t.Parallel()

	t.Run("err", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		ch := NewChaos(NewMemBackend(), &ChaosSpec{Err: 1}, st)
		if err := ch.Put(kindTrace, "o", []byte("x")); !IsUnavailable(err) {
			t.Fatalf("want unavailable, got %v", err)
		}
		if _, err := ch.Get(kindTrace, "o"); !IsUnavailable(err) {
			t.Fatalf("want unavailable, got %v", err)
		}
		if _, err := ch.List(kindTrace); !IsUnavailable(err) {
			t.Fatalf("want unavailable, got %v", err)
		}
		if st.ChaosErrs.Load() != 3 {
			t.Fatalf("ChaosErrs = %d, want 3", st.ChaosErrs.Load())
		}
	})

	t.Run("nospace", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		ch := NewChaos(NewMemBackend(), &ChaosSpec{NoSpace: 1}, st)
		if err := ch.Put(kindTrace, "o", []byte("x")); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("want ErrNoSpace, got %v", err)
		}
		if st.ChaosNoSpace.Load() != 1 {
			t.Fatalf("ChaosNoSpace = %d", st.ChaosNoSpace.Load())
		}
	})

	t.Run("torn", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		inner := NewMemBackend()
		ch := NewChaos(inner, &ChaosSpec{Torn: 1}, st)
		payload := []byte("a-long-enough-payload-to-tear")
		if err := ch.Put(kindTrace, "o", payload); !IsUnavailable(err) {
			t.Fatalf("torn put should fail unavailable, got %v", err)
		}
		// The inner backend holds a strict prefix: the torn file a crashed
		// non-atomic writer would leave behind.
		got, err := inner.Get(kindTrace, "o")
		if err != nil {
			t.Fatalf("torn put left nothing behind: %v", err)
		}
		if len(got) >= len(payload) || !bytes.Equal(got, payload[:len(got)]) {
			t.Fatalf("torn remnant is not a strict prefix: %d/%d bytes", len(got), len(payload))
		}
		if st.ChaosTorn.Load() != 1 {
			t.Fatalf("ChaosTorn = %d", st.ChaosTorn.Load())
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		inner := NewMemBackend()
		payload := []byte("pristine-bytes")
		if err := inner.Put(kindTrace, "o", payload); err != nil {
			t.Fatal(err)
		}
		ch := NewChaos(inner, &ChaosSpec{Corrupt: 1}, st)
		got, err := ch.Get(kindTrace, "o")
		if err != nil {
			t.Fatalf("corrupt get should succeed: %v", err)
		}
		if bytes.Equal(got, payload) {
			t.Fatalf("corrupt get returned pristine bytes")
		}
		diff := 0
		for i := range got {
			for b := uint(0); b < 8; b++ {
				if (got[i]^payload[i])&(1<<b) != 0 {
					diff++
				}
			}
		}
		if diff != 1 {
			t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
		}
		if st.ChaosCorrupt.Load() != 1 {
			t.Fatalf("ChaosCorrupt = %d", st.ChaosCorrupt.Load())
		}
	})

	t.Run("latency-and-lockstall", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		ch := NewChaos(NewMemBackend(), &ChaosSpec{Latency: 1, LockStall: 1, Delay: time.Microsecond}, st)
		if err := ch.Put(kindTrace, "o", []byte("x")); err != nil {
			t.Fatalf("latency-only put should succeed: %v", err)
		}
		rel, err := ch.TryLock("l")
		if err != nil {
			t.Fatalf("lockstall-only TryLock should succeed: %v", err)
		}
		rel()
		if st.ChaosLatency.Load() == 0 || st.ChaosLockStalls.Load() == 0 {
			t.Fatalf("stalls not counted: %+v", st.Snapshot())
		}
	})
}

// flakyBackend fails every object op with a transient error until failures
// is exhausted, then delegates.
type flakyBackend struct {
	Backend
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flakyBackend) tryFail(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failures > 0 {
		f.failures--
		return unavailable(op, "", "", errors.New("flaky"))
	}
	return nil
}

func (f *flakyBackend) Get(kind, name string) ([]byte, error) {
	if err := f.tryFail("get"); err != nil {
		return nil, err
	}
	return f.Backend.Get(kind, name)
}

func (f *flakyBackend) Put(kind, name string, data []byte) error {
	if err := f.tryFail("put"); err != nil {
		return err
	}
	return f.Backend.Put(kind, name, data)
}

// TestRetryBackend pins the retry policy: transient failures are re-attempted
// up to the budget, terminal errors never are, and the counters record it.
func TestRetryBackend(t *testing.T) {
	t.Parallel()

	t.Run("recovers within budget", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		fb := &flakyBackend{Backend: NewMemBackend(), failures: 2}
		rb := newRetryBackend(fb, 2, time.Microsecond, 1, st)
		if err := rb.Put(kindTrace, "o", []byte("x")); err != nil {
			t.Fatalf("put should recover after retries: %v", err)
		}
		if got, err := rb.Get(kindTrace, "o"); err != nil || !bytes.Equal(got, []byte("x")) {
			t.Fatalf("get after recovery: %q, %v", got, err)
		}
		if st.Retries.Load() != 2 || st.RetryGiveups.Load() != 0 {
			t.Fatalf("retry counters: %+v", st.Snapshot())
		}
	})

	t.Run("gives up past budget", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		fb := &flakyBackend{Backend: NewMemBackend(), failures: 10}
		rb := newRetryBackend(fb, 2, time.Microsecond, 1, st)
		if err := rb.Put(kindTrace, "o", []byte("x")); !IsUnavailable(err) {
			t.Fatalf("want unavailable after exhausted budget, got %v", err)
		}
		if fb.calls != 3 { // 1 attempt + 2 retries
			t.Fatalf("backend saw %d calls, want 3", fb.calls)
		}
		if st.RetryGiveups.Load() != 1 {
			t.Fatalf("giveups: %+v", st.Snapshot())
		}
	})

	t.Run("terminal errors not retried", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		mb := NewMemBackend()
		mb.SetCapacity(1)
		rb := newRetryBackend(mb, 5, time.Microsecond, 1, st)
		if _, err := rb.Get(kindTrace, "absent"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
		if err := rb.Put(kindTrace, "big", []byte("too-big")); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("want ErrNoSpace, got %v", err)
		}
		if st.Retries.Load() != 0 {
			t.Fatalf("terminal errors were retried: %+v", st.Snapshot())
		}
	})
}

// slowBackend blocks every Get until released.
type slowBackend struct {
	Backend
	gate chan struct{}
}

func (s *slowBackend) Get(kind, name string) ([]byte, error) {
	<-s.gate
	return s.Backend.Get(kind, name)
}

// TestTimeoutBackend pins the per-op timeout: a hung op degrades to
// *UnavailableError without blocking the caller.
func TestTimeoutBackend(t *testing.T) {
	t.Parallel()
	st := &StackStats{}
	sb := &slowBackend{Backend: NewMemBackend(), gate: make(chan struct{})}
	tb := newTimeoutBackend(sb, 5*time.Millisecond, st)
	start := time.Now()
	_, err := tb.Get(kindTrace, "o")
	if !IsUnavailable(err) {
		t.Fatalf("want unavailable on timeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout did not bound the op")
	}
	if st.Timeouts.Load() != 1 {
		t.Fatalf("Timeouts = %d", st.Timeouts.Load())
	}
	close(sb.gate) // release the background goroutine
	// A fast op passes through untouched.
	if err := tb.Put(kindTrace, "o", []byte("x")); err != nil {
		t.Fatalf("fast put: %v", err)
	}
	if got, err := tb.Get(kindTrace, "o"); err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("fast get: %q, %v", got, err)
	}
}

// TestBreakerLifecycle drives the circuit breaker through its full state
// machine with an injected clock: consecutive failures trip it, an open
// breaker fast-fails without touching the backend, the cooldown admits one
// half-open probe, a failed probe re-trips, a successful probe recloses —
// and every transition is visible in the counters.
func TestBreakerLifecycle(t *testing.T) {
	t.Parallel()
	st := &StackStats{}
	fb := &flakyBackend{Backend: NewMemBackend(), failures: 1000}
	bb := newBreakerBackend(fb, 3, time.Minute, st)
	now := time.Unix(1000, 0)
	bb.now = func() time.Time { return now }

	// Three consecutive transient failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := bb.Get(kindTrace, "o"); !IsUnavailable(err) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if st.BreakerTrips.Load() != 1 {
		t.Fatalf("trips after threshold: %+v", st.Snapshot())
	}

	// Open: fast-fail with ErrBreakerOpen, backend untouched.
	callsBefore := fb.calls
	for i := 0; i < 5; i++ {
		if _, err := bb.Get(kindTrace, "o"); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open breaker let an op through: %v", err)
		}
	}
	if fb.calls != callsBefore {
		t.Fatalf("open breaker touched the backend %d times", fb.calls-callsBefore)
	}
	if st.BreakerRejects.Load() != 5 {
		t.Fatalf("rejects: %+v", st.Snapshot())
	}

	// Cooldown elapses; the next op is the half-open probe. It fails (the
	// backend is still down), so the breaker re-trips for a full cooldown.
	now = now.Add(2 * time.Minute)
	if _, err := bb.Get(kindTrace, "o"); !IsUnavailable(err) {
		t.Fatalf("probe should reach the backend and fail: %v", err)
	}
	if st.BreakerProbes.Load() != 1 || st.BreakerTrips.Load() != 2 {
		t.Fatalf("failed probe should re-trip: %+v", st.Snapshot())
	}
	if _, err := bb.Get(kindTrace, "o"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker should be open again after failed probe: %v", err)
	}

	// The backend heals; after another cooldown the probe succeeds
	// (ErrNotFound proves the backend reachable) and the breaker recloses.
	fb.mu.Lock()
	fb.failures = 0
	fb.mu.Unlock()
	now = now.Add(2 * time.Minute)
	if _, err := bb.Get(kindTrace, "o"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("healed probe: want ErrNotFound, got %v", err)
	}
	if st.BreakerProbes.Load() != 2 || st.BreakerRecoveries.Load() != 1 {
		t.Fatalf("recovery not recorded: %+v", st.Snapshot())
	}
	// Closed again: ordinary ops flow.
	if err := bb.Put(kindTrace, "o", []byte("x")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if got, err := bb.Get(kindTrace, "o"); err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("get after recovery: %q, %v", got, err)
	}
}

// TestBreakerHalfOpenSingleProbe pins that a half-open breaker admits exactly
// one probe: concurrent calls while the probe is in flight fast-fail.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	t.Parallel()
	st := &StackStats{}
	gate := &slowBackend{Backend: NewMemBackend(), gate: make(chan struct{})}
	bb := newBreakerBackend(&failingThen{inner: gate}, 1, time.Minute, st)
	now := time.Unix(1000, 0)
	bb.now = func() time.Time { return now }

	// Trip it.
	if _, err := bb.Get(kindTrace, "o"); !IsUnavailable(err) {
		t.Fatalf("trip: %v", err)
	}
	now = now.Add(2 * time.Minute)

	// First call becomes the probe and blocks on the gate; a second call
	// while it is in flight must fast-fail, not become a second probe.
	probeDone := make(chan error, 1)
	go func() {
		_, err := bb.Get(kindTrace, "o")
		probeDone <- err
	}()
	// Wait until the probe is inside the backend (registered as probing).
	for i := 0; ; i++ {
		bb.mu.Lock()
		probing := bb.probing
		bb.mu.Unlock()
		if probing {
			break
		}
		if i > 10000 {
			t.Fatalf("probe never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := bb.Get(kindTrace, "o"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second half-open call should fast-fail: %v", err)
	}
	close(gate.gate)
	if err := <-probeDone; !errors.Is(err, ErrNotFound) {
		t.Fatalf("probe outcome: %v", err)
	}
	if st.BreakerProbes.Load() != 1 || st.BreakerRecoveries.Load() != 1 {
		t.Fatalf("probe accounting: %+v", st.Snapshot())
	}
}

// failingThen fails its first object op, then delegates forever.
type failingThen struct {
	inner Backend
	mu    sync.Mutex
	done  bool
}

func (f *failingThen) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		f.done = true
		return unavailable("get", "", "", errors.New("first call fails"))
	}
	return nil
}

func (f *failingThen) Get(kind, name string) ([]byte, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.inner.Get(kind, name)
}
func (f *failingThen) Put(kind, name string, data []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Put(kind, name, data)
}
func (f *failingThen) Delete(kind, name string) error         { return f.inner.Delete(kind, name) }
func (f *failingThen) List(kind string) ([]Stat, error)       { return f.inner.List(kind) }
func (f *failingThen) TryLock(name string) (func(), error)    { return f.inner.TryLock(name) }
func (f *failingThen) LockAge(name string) (time.Duration, error) {
	return f.inner.LockAge(name)
}
func (f *failingThen) BreakLock(name string) error { return f.inner.BreakLock(name) }

// TestCacheOverMemBackend runs the full Cache result-tier path over the
// in-memory fake: OpenBackend, store, load, counters — no directory at all.
func TestCacheOverMemBackend(t *testing.T) {
	t.Parallel()
	mb := NewMemBackend()
	c, err := OpenBackend(mb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := SumID("mem-result")
	want := &CellResult{Checksum: 0xfeed}
	if err := c.StoreResult(id, want); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	got, err := c.LoadResult(id)
	if err != nil || got.Checksum != want.Checksum {
		t.Fatalf("LoadResult: %+v, %v", got, err)
	}
	if _, err := c.LoadResult(SumID("other")); !errors.Is(err, ErrMiss) {
		t.Fatalf("miss: %v", err)
	}
	if mb.Len(kindResult) != 1 {
		t.Fatalf("backend holds %d results", mb.Len(kindResult))
	}
	// A second Cache over the same backend adopts the entry via List.
	c2, err := OpenBackend(mb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c2.LoadResult(id); err != nil || got.Checksum != want.Checksum {
		t.Fatalf("second cache LoadResult: %+v, %v", got, err)
	}
}

// TestCacheLockFailOpen pins the no-stranded-waiter guarantee: when the lock
// plane itself is unavailable, TryLock elects the caller leader and
// WaitUnlocked returns immediately — a broken backend can only ever cost a
// duplicate capture, never a stall.
func TestCacheLockFailOpen(t *testing.T) {
	t.Parallel()
	c, err := OpenBackend(NewMemBackend(), Options{
		Chaos:     &ChaosSpec{Err: 1},
		Retries:   -1,
		LockWait:  10 * time.Second, // would be a visible stall if waited
		RetrySeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := SumID("lock-fail-open")
	start := time.Now()
	release, ok := c.TryLock(id)
	if !ok {
		t.Fatalf("unavailable lock plane must fail open to leader")
	}
	release()
	c.WaitUnlocked(id)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lock ops stalled %v under a dead lock plane", elapsed)
	}
}

// TestCacheChaosFullRate proves the Cache API never panics and always
// returns typed errors with every fault class at probability 1.
func TestCacheChaosFullRate(t *testing.T) {
	t.Parallel()
	c, err := OpenBackend(NewMemBackend(), Options{
		Chaos:            &ChaosSpec{Err: 1, Torn: 1, Corrupt: 1, NoSpace: 1, LockStall: 1, Delay: time.Microsecond},
		Retries:          -1,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := SumID("chaos-full")
	if err := c.StoreResult(id, &CellResult{Checksum: 1}); err == nil {
		t.Fatalf("store under total chaos should fail")
	}
	if _, err := c.LoadResult(id); err == nil {
		t.Fatalf("load under total chaos should fail")
	}
	if rel, ok := c.TryLock(id); !ok {
		t.Fatalf("lock must fail open")
	} else {
		rel()
	}
	s := c.StackCounters()
	if s.ChaosErrs == 0 && s.ChaosNoSpace == 0 {
		t.Fatalf("chaos injected nothing: %+v", s)
	}
	if got := c.Counters(); got.Unavailable == 0 {
		t.Fatalf("degraded ops not counted: %+v", got)
	}
}
