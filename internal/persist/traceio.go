// The trace store's binary format (version 1).
//
// A trace file is a header followed by a sequence of entry blocks:
//
//	header (80 bytes):
//	  [0:8)    magic "RESTTRC\n"
//	  [8:12)   format version, uint32 LE
//	  [12:16)  flags, uint32 LE (bit 0: blocks are flate-compressed)
//	  [16:24)  token width, uint64 LE (0 = no REST token shadow)
//	  [24:32)  entry count, uint64 LE
//	  [32:40)  outcome checksum, uint64 LE (the captured run's Checksum)
//	  [40:72)  functional identity digest (the file's own content address)
//	  [72:76)  reserved, zero
//	  [76:80)  CRC-32 (IEEE) of bytes [0:76)
//	block (12-byte header + payload), repeated until entry count is reached:
//	  [0:4)    entries in this block, uint32 LE (1..16384)
//	  [4:8)    payload length, uint32 LE
//	  [8:12)   CRC-32 (IEEE) of the payload bytes as stored
//	  [12:..)  payload: entries packed 31 bytes each
//	           (pc,addr,target u64 LE; op,kind,dst,src1,src2,size,flags u8;
//	           flags bit0 = branch taken, bit1 = faults),
//	           flate-compressed when the header flag says so
//
// All multi-byte integers are little-endian. The payload CRC is computed
// over the stored (possibly compressed) bytes and checked before inflation,
// so a bit flip anywhere in a block is caught without trusting the flate
// stream; the header CRC covers every field that governs parsing. Decoding
// never panics on arbitrary input — every malformed shape maps to a typed
// error (FuzzTraceDecode pins that) — and appends into the same pooled
// block storage live captures use, so replay from disk stays free of
// per-entry allocation.
package persist

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"rest/internal/isa"
	"rest/internal/trace"
)

const (
	traceExt   = ".trc"
	traceMagic = "RESTTRC\n"

	traceHeaderLen   = 80
	blockHeaderLen   = 12
	diskBlockEntries = 16384 // entries per block: 16384 × 31 B ≈ 496 KiB raw
	packedEntryLen   = 31

	flagCompressed = 1 << 0

	packedFlagTaken  = 1 << 0
	packedFlagFaults = 1 << 1
)

// maxPayloadLen bounds a block's stored payload. Flate output can exceed its
// input on incompressible data only marginally; double the raw size is far
// past any legitimate block and small enough to keep a hostile length field
// from ballooning reads.
const maxPayloadLen = 2 * diskBlockEntries * packedEntryLen

// blockBufPool recycles the per-block scratch buffers (raw and stored forms)
// so streaming a trace in or out allocates per block at most, never per
// entry, and usually not at all after warm-up.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxPayloadLen)
		return &b
	},
}

// flateWriterPool recycles compressors across blocks and files.
var flateWriterPool = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// flateReaderPool recycles decompressors; flate.NewReader's concrete type
// implements flate.Resetter.
var flateReaderPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// StoreTrace writes a captured recording into the trace store under its
// functional identity digest, atomically, and admits it to the manifest,
// evicting older entries if the byte cap demands. checksum is the captured
// run's outcome checksum, replayed verbatim.
func (c *Cache) StoreTrace(id ID, rec *trace.Recorder, checksum uint64) error {
	if c.opt.ReadOnly {
		return ErrReadOnly
	}
	if rec.Overflowed() {
		return errors.New("persist: refusing to store an overflowed (partial) trace")
	}
	var buf bytes.Buffer
	buf.Grow(traceHeaderLen + rec.Len()*packedEntryLen/2)
	if err := encodeTrace(&buf, rec, id, checksum, !c.opt.NoCompress); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := c.b.Put(kindTrace, id.String(), buf.Bytes()); err != nil {
		c.unavailableSeen(err)
		return err
	}
	return c.admit(kindTrace, id, int64(buf.Len()))
}

// LoadTrace reads the trace stored under id into a fresh Recorder, returning
// it with the captured outcome checksum. A missing file is ErrMiss; a
// damaged one is *CorruptError (and is deleted in read-write mode); a file
// from another format generation is *VersionError (deleted likewise — it can
// never be read again); a backend that could not answer is *UnavailableError
// or ErrBreakerOpen. Every one of them means "recompute" to the caller. The
// returned Recorder owns pooled blocks; release it via
// trace.Recorder.Release at last use exactly like a live capture.
func (c *Cache) LoadTrace(id ID) (*trace.Recorder, uint64, error) {
	path := c.path(kindTrace, id)
	raw, err := c.b.Get(kindTrace, id.String())
	if err != nil {
		c.unavailableSeen(err)
		c.mu.Lock()
		c.c.TraceMisses++
		c.mu.Unlock()
		if errors.Is(err, ErrNotFound) {
			return nil, 0, ErrMiss
		}
		return nil, 0, err
	}
	rec, checksum, derr := decodeTrace(bytes.NewReader(raw), &id)
	if derr != nil {
		var verr *VersionError
		if errors.As(derr, &verr) {
			verr.Path = path
		}
		var cerr *CorruptError
		if errors.As(derr, &cerr) {
			cerr.Path = path
		}
		c.discard(kindTrace, id)
		c.mu.Lock()
		c.c.TraceMisses++
		c.mu.Unlock()
		return nil, 0, derr
	}
	c.touch(kindTrace, id)
	c.mu.Lock()
	c.c.TraceHits++
	c.mu.Unlock()
	return rec, checksum, nil
}

// encodeTrace writes the version-1 trace format.
func encodeTrace(w io.Writer, rec *trace.Recorder, id ID, checksum uint64, compress bool) error {
	var hdr [traceHeaderLen]byte
	copy(hdr[0:8], traceMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	var flags uint32
	if compress {
		flags |= flagCompressed
	}
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], rec.TokenWidth())
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(rec.Len()))
	binary.LittleEndian.PutUint64(hdr[32:40], checksum)
	copy(hdr[40:72], id[:])
	binary.LittleEndian.PutUint32(hdr[76:80], crc32.ChecksumIEEE(hdr[:76]))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	rawp := blockBufPool.Get().(*[]byte)
	defer blockBufPool.Put(rawp)
	raw := *rawp
	var fw *flate.Writer
	if compress {
		fw = flateWriterPool.Get().(*flate.Writer)
		defer flateWriterPool.Put(fw)
	}
	var compressed bytes.Buffer
	for base := 0; base < rec.Len(); base += diskBlockEntries {
		n := rec.Len() - base
		if n > diskBlockEntries {
			n = diskBlockEntries
		}
		for i := 0; i < n; i++ {
			packEntry(raw[i*packedEntryLen:(i+1)*packedEntryLen], rec.At(base+i))
		}
		payload := raw[:n*packedEntryLen]
		if compress {
			compressed.Reset()
			fw.Reset(&compressed)
			if _, err := fw.Write(payload); err != nil {
				return err
			}
			if err := fw.Close(); err != nil {
				return err
			}
			payload = compressed.Bytes()
		}
		var bh [blockHeaderLen]byte
		binary.LittleEndian.PutUint32(bh[0:4], uint32(n))
		binary.LittleEndian.PutUint32(bh[4:8], uint32(len(payload)))
		binary.LittleEndian.PutUint32(bh[8:12], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// corrupt builds a *CorruptError with the path left for the caller to fill.
func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// decodeTrace reads the version-1 trace format into a fresh Recorder. wantID
// non-nil additionally binds the file to its content address (a renamed or
// cross-copied file is corruption, not a silently wrong replay). On any
// error the partially built Recorder is released and nil returned. It reads
// arbitrary untrusted bytes without panicking; FuzzTraceDecode enforces
// that.
func decodeTrace(r io.Reader, wantID *ID) (rec *trace.Recorder, checksum uint64, err error) {
	var hdr [traceHeaderLen]byte
	if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
		return nil, 0, corrupt("short header: %v", rerr)
	}
	if string(hdr[0:8]) != traceMagic {
		return nil, 0, corrupt("bad magic %q", hdr[0:8])
	}
	if got := binary.LittleEndian.Uint32(hdr[76:80]); got != crc32.ChecksumIEEE(hdr[:76]) {
		return nil, 0, corrupt("header CRC mismatch")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return nil, 0, &VersionError{Got: v}
	}
	flags := binary.LittleEndian.Uint32(hdr[12:16])
	if flags&^uint32(flagCompressed) != 0 {
		return nil, 0, corrupt("unknown flags %#x", flags)
	}
	tokenWidth := binary.LittleEndian.Uint64(hdr[16:24])
	count := binary.LittleEndian.Uint64(hdr[24:32])
	checksum = binary.LittleEndian.Uint64(hdr[32:40])
	if wantID != nil && !bytes.Equal(hdr[40:72], wantID[:]) {
		return nil, 0, corrupt("identity digest does not match the file's address")
	}

	rawp := blockBufPool.Get().(*[]byte)
	defer blockBufPool.Put(rawp)
	storedp := blockBufPool.Get().(*[]byte)
	defer blockBufPool.Put(storedp)

	// Build into a local, not the named return: the error returns below
	// write nil into rec, and the cleanup must still release the blocks the
	// partial decode pulled from the pool.
	out := trace.NewRecorder(tokenWidth, 0)
	defer func() {
		if err != nil {
			out.Release()
		}
	}()
	var got uint64
	for got < count {
		var bh [blockHeaderLen]byte
		if _, rerr := io.ReadFull(r, bh[:]); rerr != nil {
			return nil, 0, corrupt("short block header at entry %d: %v", got, rerr)
		}
		n := binary.LittleEndian.Uint32(bh[0:4])
		plen := binary.LittleEndian.Uint32(bh[4:8])
		wantCRC := binary.LittleEndian.Uint32(bh[8:12])
		if n == 0 || n > diskBlockEntries || uint64(n) > count-got {
			return nil, 0, corrupt("block entry count %d out of range", n)
		}
		if plen == 0 || plen > maxPayloadLen {
			return nil, 0, corrupt("block payload length %d out of range", plen)
		}
		stored := (*storedp)[:plen]
		if _, rerr := io.ReadFull(r, stored); rerr != nil {
			return nil, 0, corrupt("short block payload at entry %d: %v", got, rerr)
		}
		if crc32.ChecksumIEEE(stored) != wantCRC {
			return nil, 0, corrupt("block CRC mismatch at entry %d", got)
		}
		payload := stored
		rawLen := int(n) * packedEntryLen
		if flags&flagCompressed != 0 {
			fr := flateReaderPool.Get().(io.ReadCloser)
			fr.(flate.Resetter).Reset(bytes.NewReader(stored), nil)
			buf := (*rawp)[:rawLen]
			_, ierr := io.ReadFull(fr, buf)
			var extra [1]byte
			if ierr == nil {
				if _, eerr := fr.Read(extra[:]); eerr != io.EOF {
					ierr = errors.New("trailing bytes in compressed block")
				}
			}
			flateReaderPool.Put(fr)
			if ierr != nil {
				return nil, 0, corrupt("block inflate at entry %d: %v", got, ierr)
			}
			payload = buf
		} else if int(plen) != rawLen {
			return nil, 0, corrupt("raw block length %d != %d entries", plen, n)
		}
		for i := 0; i < int(n); i++ {
			out.Append(unpackEntry(payload[i*packedEntryLen : (i+1)*packedEntryLen]))
		}
		got += uint64(n)
	}
	var extra [1]byte
	if _, rerr := r.Read(extra[:]); rerr != io.EOF {
		return nil, 0, corrupt("trailing bytes after final block")
	}
	return out, checksum, nil
}

// packEntry stores one trace entry in its 31-byte packed form (Seq is
// implied by position, exactly as in the in-memory Recorder).
func packEntry(b []byte, e trace.Entry) {
	binary.LittleEndian.PutUint64(b[0:8], e.PC)
	binary.LittleEndian.PutUint64(b[8:16], e.Addr)
	binary.LittleEndian.PutUint64(b[16:24], e.Target)
	b[24] = uint8(e.Op)
	b[25] = uint8(e.Kind)
	b[26] = e.Dst
	b[27] = e.Src1
	b[28] = e.Src2
	b[29] = e.Size
	var fl uint8
	if e.Taken {
		fl |= packedFlagTaken
	}
	if e.Faults {
		fl |= packedFlagFaults
	}
	b[30] = fl
}

// unpackEntry is packEntry's inverse. Seq is assigned by the Recorder's
// Append position, matching the capture-time convention.
func unpackEntry(b []byte) trace.Entry {
	return trace.Entry{
		PC:     binary.LittleEndian.Uint64(b[0:8]),
		Addr:   binary.LittleEndian.Uint64(b[8:16]),
		Target: binary.LittleEndian.Uint64(b[16:24]),
		Op:     isa.Op(b[24]),
		Kind:   trace.Kind(b[25]),
		Dst:    b[26],
		Src1:   b[27],
		Src2:   b[28],
		Size:   b[29],
		Taken:  b[30]&packedFlagTaken != 0,
		Faults: b[30]&packedFlagFaults != 0,
	}
}
