// The network face of the storage protocol: CacheServer exposes any Backend
// over a small JSON/octet-stream HTTP API, so several sweep processes — on
// one machine or many — can share a single content-addressed artifact store.
//
// The API is deliberately dumb: objects move as opaque bytes (the codec CRCs
// above the protocol catch damage, exactly as they do for a local disk), and
// the only stateful part is the lock plane. Backend locks are crash-surviving
// markers with no expiry, which is the right shape for a local directory but
// wrong across a network — a client that dies silently would pin its lock
// until someone inspects the machine. The server therefore hands out *leases*
// over the backend's locks: acquiring returns an opaque lease token, the
// holder renews it periodically, and the advertised lock age is the time
// since the last renewal. A client that dies stops renewing, its lease ages
// past StaleLockAge, and any other client steals it through the ordinary
// BreakLock path — the abandoned-leader recovery story is unchanged, it just
// measures liveness instead of file mtimes.
//
//	GET    /cache/v1/                     service identity (health check)
//	GET    /cache/v1/obj/{kind}/{name}    object payload (404 when absent)
//	PUT    /cache/v1/obj/{kind}/{name}    atomic publish (507 when full)
//	DELETE /cache/v1/obj/{kind}/{name}    idempotent remove
//	GET    /cache/v1/list/{kind}          JSON [{name,bytes,mod_unix_ns}]
//	POST   /cache/v1/lock/{name}          acquire → {"lease":...} (423 held);
//	                                      with ?lease=T renews (409 lost)
//	GET    /cache/v1/lock/{name}          {"age_ns":N} (404 unheld)
//	DELETE /cache/v1/lock/{name}?lease=T  release (409 not the holder)
//	DELETE /cache/v1/lock/{name}          break (stale-lock recovery)
//	GET    /cache/v1/epoch                {"epoch":N}; with ?after=E&wait_ms=M
//	                                      long-polls until epoch > E or M ms
//
// The epoch is a monotonic change counter over the store's scheduling state:
// it bumps on every meta publish and every lock grant/release/break. Idle
// elastic workers long-poll it instead of spinning on list/lock probes —
// one cheap parked request per worker replaces a polling storm, and the
// response still carries the current epoch so a missed bump can never
// deadlock a client (it just re-polls with the newer value).
package persist

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxObjectBytes bounds one uploaded object; far above any real artifact
// (traces cap at 64 MiB) but small enough that a confused client cannot
// exhaust the server's memory with one request.
const maxObjectBytes = 256 << 20

// CacheServer serves a Backend over HTTP. Safe for concurrent use; one
// server instance owns the lease table for every lock it grants.
type CacheServer struct {
	b   Backend
	now func() time.Time // injectable for deterministic tests

	mu        sync.Mutex
	leases    map[string]*serverLease // lock name → active lease
	seq       uint64
	epoch     uint64        // scheduling-state change counter
	epochWait chan struct{} // closed and replaced on every bump
}

// serverLease is one granted lock lease: the backend lock's release hook plus
// the liveness clock its advertised age is measured against.
type serverLease struct {
	token   string
	renewed time.Time
	release func()
}

// NewCacheServer wraps a Backend for HTTP serving.
func NewCacheServer(b Backend) *CacheServer {
	return &CacheServer{
		b: b, now: time.Now,
		leases:    make(map[string]*serverLease),
		epochWait: make(chan struct{}),
	}
}

// SetNow injects the clock lease liveness is measured against. Tests only:
// call before serving requests, never while the server is live.
func (s *CacheServer) SetNow(now func() time.Time) { s.now = now }

// bumpEpoch records a scheduling-state change and wakes every parked
// epoch long-poll.
func (s *CacheServer) bumpEpoch() {
	s.mu.Lock()
	s.epoch++
	close(s.epochWait)
	s.epochWait = make(chan struct{})
	s.mu.Unlock()
}

// Register mounts the /cache/v1/ routes on mux.
func (s *CacheServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /cache/v1/{$}", s.handleRoot)
	mux.HandleFunc("GET /cache/v1/obj/{kind}/{name}", s.handleGet)
	mux.HandleFunc("PUT /cache/v1/obj/{kind}/{name}", s.handlePut)
	mux.HandleFunc("DELETE /cache/v1/obj/{kind}/{name}", s.handleObjDelete)
	mux.HandleFunc("GET /cache/v1/list/{kind}", s.handleList)
	mux.HandleFunc("POST /cache/v1/lock/{name}", s.handleLockAcquire)
	mux.HandleFunc("GET /cache/v1/lock/{name}", s.handleLockAge)
	mux.HandleFunc("DELETE /cache/v1/lock/{name}", s.handleLockDelete)
	mux.HandleFunc("GET /cache/v1/epoch", s.handleEpoch)
}

// wireStat is Stat's JSON shape (ModTime as unix nanoseconds so the
// round-trip is exact and locale-free).
type wireStat struct {
	Name      string `json:"name"`
	Bytes     int64  `json:"bytes"`
	ModUnixNS int64  `json:"mod_unix_ns"`
}

// wireLease and wireAge are the lock plane's JSON responses; wireEpoch is
// the scheduling-change counter's.
type wireLease struct {
	Lease string `json:"lease"`
}
type wireAge struct {
	AgeNS int64 `json:"age_ns"`
}
type wireEpoch struct {
	Epoch uint64 `json:"epoch"`
}

// statusFor maps the typed error taxonomy onto HTTP statuses; the client
// maps them straight back, so the taxonomy survives the wire.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNoSpace):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrLockHeld):
		return http.StatusLocked
	default:
		return http.StatusServiceUnavailable
	}
}

func (s *CacheServer) fail(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), statusFor(err))
}

// checkKind and checkName keep the server from ever touching a path the
// backend did not define: kinds are the protocol's three namespaces, names
// are single path segments with no traversal tricks.
func checkKind(w http.ResponseWriter, kind string) bool {
	switch kind {
	case kindTrace, kindResult, kindMeta:
		return true
	}
	http.Error(w, fmt.Sprintf("unknown object kind %q", kind), http.StatusBadRequest)
	return false
}

func checkName(w http.ResponseWriter, name string) bool {
	if name == "" || len(name) > 256 || strings.ContainsAny(name, "/\\") ||
		name == "." || name == ".." || strings.HasPrefix(name, ".") {
		http.Error(w, fmt.Sprintf("invalid object name %q", name), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Write(raw)
}

func (s *CacheServer) handleRoot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"service": "rest-cache", "format_version": FormatVersion})
}

func (s *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	kind, name := r.PathValue("kind"), r.PathValue("name")
	if !checkKind(w, kind) || !checkName(w, name) {
		return
	}
	data, err := s.b.Get(kind, name)
	if err != nil {
		s.fail(w, err)
		return
	}
	// An explicit Content-Length lets the client detect torn responses (a
	// server or proxy dying mid-body) before the payload ever reaches the
	// codec layer.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (s *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	kind, name := r.PathValue("kind"), r.PathValue("name")
	if !checkKind(w, kind) || !checkName(w, name) {
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
	if err != nil {
		// The client vanished mid-upload: nothing was published (the backend
		// Put below never ran), which is exactly the atomicity contract.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > maxObjectBytes {
		http.Error(w, "object exceeds the server's size bound", http.StatusRequestEntityTooLarge)
		return
	}
	if err := s.b.Put(kind, name, data); err != nil {
		s.fail(w, err)
		return
	}
	if kind == kindMeta {
		// Meta objects carry scheduling state (manifests, completion
		// markers); trace/result bodies do not, and skipping them keeps
		// bulk artifact traffic from waking parked pollers.
		s.bumpEpoch()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) handleObjDelete(w http.ResponseWriter, r *http.Request) {
	kind, name := r.PathValue("kind"), r.PathValue("name")
	if !checkKind(w, kind) || !checkName(w, name) {
		return
	}
	if err := s.b.Delete(kind, name); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) handleList(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	if !checkKind(w, kind) {
		return
	}
	stats, err := s.b.List(kind)
	if err != nil {
		s.fail(w, err)
		return
	}
	out := make([]wireStat, 0, len(stats))
	for _, st := range stats {
		out = append(out, wireStat{Name: st.Name, Bytes: st.Bytes, ModUnixNS: st.ModTime.UnixNano()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

// newToken mints an unguessable lease token. The sequence number alone makes
// tokens unique; the random suffix keeps one client from forging another's.
func (s *CacheServer) newToken() string {
	s.seq++
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return fmt.Sprintf("%d-%s", s.seq, hex.EncodeToString(b[:]))
}

func (s *CacheServer) handleLockAcquire(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !checkName(w, name) {
		return
	}
	if lease := r.URL.Query().Get("lease"); lease != "" {
		// Renewal: only the current holder's token resets the liveness clock.
		s.mu.Lock()
		l := s.leases[name]
		if l == nil || l.token != lease {
			s.mu.Unlock()
			http.Error(w, "lease lost", http.StatusConflict)
			return
		}
		l.renewed = s.now()
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.mu.Lock()
	if _, held := s.leases[name]; held {
		s.mu.Unlock()
		s.fail(w, ErrLockHeld)
		return
	}
	s.mu.Unlock()
	release, err := s.b.TryLock(name)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.mu.Lock()
	// Two concurrent acquires both passing the map check serialize on the
	// backend lock, so at most one reaches here per grant.
	tok := s.newToken()
	s.leases[name] = &serverLease{token: tok, renewed: s.now(), release: release}
	s.mu.Unlock()
	s.bumpEpoch()
	writeJSON(w, wireLease{Lease: tok})
}

func (s *CacheServer) handleLockAge(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !checkName(w, name) {
		return
	}
	s.mu.Lock()
	l := s.leases[name]
	var age time.Duration
	if l != nil {
		age = s.now().Sub(l.renewed)
	}
	s.mu.Unlock()
	if l != nil {
		writeJSON(w, wireAge{AgeNS: int64(age)})
		return
	}
	// No lease: delegate, so locks surviving a server restart (directory
	// lock files) still age out through the same recovery path.
	age, err := s.b.LockAge(name)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, wireAge{AgeNS: int64(age)})
}

func (s *CacheServer) handleLockDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !checkName(w, name) {
		return
	}
	lease := r.URL.Query().Get("lease")
	s.mu.Lock()
	l := s.leases[name]
	if lease != "" && l != nil && l.token != lease {
		// Someone else holds the lock now (ours was stolen and re-granted):
		// their lease must survive our late release.
		s.mu.Unlock()
		http.Error(w, "not the holder", http.StatusConflict)
		return
	}
	delete(s.leases, name)
	s.mu.Unlock()
	if l != nil {
		l.release()
	} else if lease == "" {
		// Break with no lease on the books: clear any backend-level lock
		// (a server-restart leftover).
		if err := s.b.BreakLock(name); err != nil && !errors.Is(err, ErrNotFound) {
			s.fail(w, err)
			return
		}
	}
	s.bumpEpoch()
	w.WriteHeader(http.StatusNoContent)
}

// maxEpochWait caps one long-poll; clients re-issue, so a short cap only
// costs an extra round trip, never a missed wake.
const maxEpochWait = 30 * time.Second

func (s *CacheServer) handleEpoch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	waitMS, _ := strconv.ParseInt(q.Get("wait_ms"), 10, 64)
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxEpochWait {
		wait = maxEpochWait
	}
	var deadline <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		deadline = t.C
	}
	for {
		s.mu.Lock()
		e, ch := s.epoch, s.epochWait
		s.mu.Unlock()
		if e > after || wait <= 0 {
			writeJSON(w, wireEpoch{Epoch: e})
			return
		}
		select {
		case <-ch:
		case <-deadline:
			writeJSON(w, wireEpoch{Epoch: e})
			return
		case <-r.Context().Done():
			return
		}
	}
}
