package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rest/internal/cpu"
	"rest/internal/isa"
	"rest/internal/trace"
)

// testTrace builds a deterministic recorder exercising every packed field:
// memory ops with addresses and sizes, taken and fallthrough branches with
// targets, faulting entries, the full register byte range.
func testTrace(n int, tokenWidth uint64) *trace.Recorder {
	rec := trace.NewRecorder(tokenWidth, 0)
	for i := 0; i < n; i++ {
		e := trace.Entry{
			PC:   0x400000 + uint64(i)*4,
			Op:   isa.Op(i % 7),
			Kind: trace.Kind(i % 2),
			Dst:  uint8(i % 251),
			Src1: uint8((i * 3) % 253),
			Src2: uint8((i * 7) % 254),
		}
		switch i % 3 {
		case 0:
			e.Addr = 0xdead0000 + uint64(i)*8
			e.Size = uint8(1 << (i % 4))
		case 1:
			e.Taken = i%2 == 0
			e.Target = 0x500000 + uint64(i)
		case 2:
			e.Faults = i%5 == 0
		}
		rec.Append(e)
	}
	return rec
}

func assertTraceEqual(t *testing.T, want, got *trace.Recorder) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("length: want %d got %d", want.Len(), got.Len())
	}
	if want.TokenWidth() != got.TokenWidth() {
		t.Fatalf("token width: want %d got %d", want.TokenWidth(), got.TokenWidth())
	}
	for i := 0; i < want.Len(); i++ {
		if w, g := want.At(i), got.At(i); w != g {
			t.Fatalf("entry %d: want %+v got %+v", i, w, g)
		}
	}
}

func TestTraceCodecRoundTrip(t *testing.T) {
	for _, tt := range []struct {
		name string
		opt  Options
	}{
		{"compressed", Options{}},
		{"raw", Options{NoCompress: true}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Open(t.TempDir(), tt.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// Spans multiple blocks (> diskBlockEntries entries).
			rec := testTrace(diskBlockEntries+1234, 8)
			id := SumID("round-trip/" + tt.name)
			if err := c.StoreTrace(id, rec, 0xfeedface); err != nil {
				t.Fatal(err)
			}
			got, checksum, err := c.LoadTrace(id)
			if err != nil {
				t.Fatal(err)
			}
			defer got.Release()
			if checksum != 0xfeedface {
				t.Fatalf("checksum: got %#x", checksum)
			}
			assertTraceEqual(t, rec, got)
			cc := c.Counters()
			if cc.TraceHits != 1 || cc.Stores != 1 {
				t.Fatalf("counters: %+v", cc)
			}
		})
	}
}

// TestTraceDecodeEveryByteFlip flips one bit in every byte position of a
// stored trace file and demands a typed error each time: the format has no
// byte whose silent mutation can survive validation, in either block
// encoding.
func TestTraceDecodeEveryByteFlip(t *testing.T) {
	for _, tt := range []struct {
		name string
		opt  Options
	}{
		{"compressed", Options{}},
		{"raw", Options{NoCompress: true}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Open(t.TempDir(), tt.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rec := testTrace(100, 8)
			id := SumID("flip/" + tt.name)
			if err := c.StoreTrace(id, rec, 7); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(c.path(kindTrace, id))
			if err != nil {
				t.Fatal(err)
			}
			for i := range raw {
				mut := bytes.Clone(raw)
				mut[i] ^= 0x40
				got, _, derr := decodeTrace(bytes.NewReader(mut), &id)
				if derr == nil {
					got.Release()
					t.Fatalf("flip at byte %d/%d decoded successfully", i, len(raw))
				}
				var cerr *CorruptError
				var verr *VersionError
				if !errors.As(derr, &cerr) && !errors.As(derr, &verr) {
					t.Fatalf("flip at byte %d: untyped error %v", i, derr)
				}
			}
		})
	}
}

// TestTraceDecodeTruncation truncates a stored trace at every prefix length
// and demands a typed error, never a short replay.
func TestTraceDecodeTruncation(t *testing.T) {
	c, err := Open(t.TempDir(), Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := testTrace(50, 0)
	id := SumID("trunc")
	if err := c.StoreTrace(id, rec, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.path(kindTrace, id))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		got, _, derr := decodeTrace(bytes.NewReader(raw[:n]), &id)
		if derr == nil {
			got.Release()
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(raw))
		}
		var cerr *CorruptError
		if !errors.As(derr, &cerr) {
			t.Fatalf("truncation to %d: untyped error %v", n, derr)
		}
	}
}

func testStats() cpu.Stats {
	return cpu.Stats{
		Cycles: 123456, Instructions: 100000, UserInstrs: 90000, RuntimeOps: 10000,
		IPC:         0.8100000000000001, // an IEEE-754 value that must round-trip bit-exactly
		Mispredicts: 321, BranchLookups: 4567, LSQForwardings: 89,
		ROBFullCycles: 11, IQFullCycles: 22, LQFullCycles: 33, SQFullCycles: 44,
		ROBStoreBlockCycles: 55,
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := SumID("result-round-trip")
	in := &CellResult{Stats: testStats(), Checksum: 0xabcdef0123456789}
	if err := c.StoreResult(id, in); err != nil {
		t.Fatal(err)
	}
	out, err := c.LoadResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}
	if math.Float64bits(in.Stats.IPC) != math.Float64bits(out.Stats.IPC) {
		t.Fatal("IPC not bit-exact")
	}
}

func TestResultDecodeEveryByteFlip(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := SumID("result-flip")
	if err := c.StoreResult(id, &CellResult{Stats: testStats(), Checksum: 9}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.path(kindResult, id))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != resultFileLen {
		t.Fatalf("result file is %d bytes, want %d", len(raw), resultFileLen)
	}
	for i := range raw {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x40
		if _, derr := decodeResult(mut, &id); derr == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
	}
}

// TestResultCodecCoversStats pins the codec to the exact field set of
// cpu.Stats: a new field fails this test until packStats/unpackStats learn
// it and FormatVersion is bumped, which is what keeps old files from being
// silently misread as complete.
func TestResultCodecCoversStats(t *testing.T) {
	known := map[string]bool{
		"Cycles": true, "Instructions": true, "UserInstrs": true, "RuntimeOps": true,
		"IPC": true, "Mispredicts": true, "BranchLookups": true, "LSQForwardings": true,
		"ROBFullCycles": true, "IQFullCycles": true, "LQFullCycles": true, "SQFullCycles": true,
		"ROBStoreBlockCycles": true,
		// Not packed as uint64 slots, but handled explicitly: Exception is
		// nil by the clean-cells-only rule (StoreResult enforces it) and
		// LSQViolation is the format's detection byte.
		"Exception": true, "LSQViolation": true,
	}
	st := reflect.TypeOf(cpu.Stats{})
	if st.NumField() != len(known) {
		t.Fatalf("cpu.Stats has %d fields, codec knows %d — update the result codec and bump FormatVersion", st.NumField(), len(known))
	}
	for i := 0; i < st.NumField(); i++ {
		if !known[st.Field(i).Name] {
			t.Fatalf("cpu.Stats field %q is unknown to the result codec — update it and bump FormatVersion", st.Field(i).Name)
		}
	}
	if resultFileLen != 8+4+32+resultNumFields*8+1+8+4 {
		t.Fatalf("resultFileLen %d inconsistent with layout", resultFileLen)
	}
}

func TestStoreResultRefusesDetections(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := testStats()
	bad.LSQViolation = true
	if err := c.StoreResult(SumID("bad"), &CellResult{Stats: bad}); err == nil {
		t.Fatal("stored a detected cell result")
	}
	if cc := c.Counters(); cc.Stores != 0 || cc.Entries != 0 {
		t.Fatalf("counters after refused store: %+v", cc)
	}
}

// TestLRUEviction fills a capped cache and checks the oldest-used entries
// fall out first, that a hit refreshes recency, and that an entry larger
// than the whole cap is rejected outright.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{MaxBytes: 3 * int64(resultFileLen), NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := make([]ID, 4)
	for i := range ids {
		ids[i] = SumID(fmt.Sprintf("lru-%d", i))
	}
	// Recency is time.Now-based; consecutive stores get strictly ordered
	// UnixNano stamps on any clock with ns resolution, but force distinct
	// stamps explicitly to keep the test hermetic.
	for i := 0; i < 3; i++ {
		if err := c.StoreResult(ids[i], &CellResult{Stats: testStats()}); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	for i := 0; i < 3; i++ {
		c.entries[kindResult+"/"+ids[i].String()].LastUse = int64(1000 + i)
	}
	c.mu.Unlock()
	// Touch ids[0]: it becomes the most recent, so ids[1] is now oldest.
	if _, err := c.LoadResult(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreResult(ids[3], &CellResult{Stats: testStats()}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.path(kindResult, ids[1])); !os.IsNotExist(err) {
		t.Fatal("ids[1] (least recently used) was not evicted")
	}
	for _, keep := range []int{0, 2, 3} {
		if _, err := os.Stat(c.path(kindResult, ids[keep])); err != nil {
			t.Fatalf("ids[%d] should have survived: %v", keep, err)
		}
	}
	cc := c.Counters()
	if cc.Evictions != 1 || cc.Entries != 3 || cc.Bytes != uint64(3*resultFileLen) {
		t.Fatalf("counters: %+v", cc)
	}

	// An entry alone exceeding the cap is rejected, not admitted.
	big, err := Open(t.TempDir(), Options{MaxBytes: 10, NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if err := big.StoreResult(SumID("too-big"), &CellResult{Stats: testStats()}); err != nil {
		t.Fatal(err)
	}
	bc := big.Counters()
	if bc.Rejected != 1 || bc.Entries != 0 || bc.Bytes != 0 {
		t.Fatalf("oversized store counters: %+v", bc)
	}
	if _, err := os.Stat(big.path(kindResult, SumID("too-big"))); !os.IsNotExist(err) {
		t.Fatal("oversized entry left on disk")
	}
}

// TestManifestCrashRecovery simulates a writer that died mid-store (stray
// temp files, a half-written manifest, a manifest gone entirely) and checks
// a fresh Open recovers the full store from the files alone.
func TestManifestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	tid, rid := SumID("crash-trace"), SumID("crash-result")
	if err := c.StoreTrace(tid, testTrace(10, 0), 3); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreResult(rid, &CellResult{Stats: testStats()}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// The crash: stray temp files and a torn manifest replacement.
	for _, stray := range []string{
		filepath.Join(dir, "traces", "deadbeef.trc.tmp.12345"),
		filepath.Join(dir, "results", "deadbeef.res.tmp.12345"),
		filepath.Join(dir, manifestName+".tmp"),
	} {
		if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, stray := range []string{
		filepath.Join(dir, "traces", "deadbeef.trc.tmp.12345"),
		filepath.Join(dir, "results", "deadbeef.res.tmp.12345"),
		filepath.Join(dir, manifestName+".tmp"),
	} {
		if _, err := os.Stat(stray); !os.IsNotExist(err) {
			t.Fatalf("stray temp %s survived reopen", stray)
		}
	}
	if cc := re.Counters(); cc.Entries != 2 {
		t.Fatalf("reconcile adopted %d entries, want 2 (%+v)", cc.Entries, cc)
	}
	if rec, checksum, err := re.LoadTrace(tid); err != nil || checksum != 3 {
		t.Fatalf("trace lost after crash: %v (checksum %d)", err, checksum)
	} else {
		rec.Release()
	}
	if _, err := re.LoadResult(rid); err != nil {
		t.Fatalf("result lost after crash: %v", err)
	}

	// Losing the manifest entirely costs nothing but recency either.
	re.Close()
	os.Remove(filepath.Join(dir, manifestName))
	re2, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if cc := re2.Counters(); cc.Entries != 2 {
		t.Fatalf("manifest-less reconcile adopted %d entries, want 2", cc.Entries)
	}
}

// TestConcurrentCachesSingleFlight drives two Cache handles on one directory
// (the two-process case) through contended capture locks and simultaneous
// stores, then checks the manifest survived as valid JSON covering every
// file.
func TestConcurrentCachesSingleFlight(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The capture lock is exclusive across handles and reusable after
	// release.
	id := SumID("flight")
	relA, ok := a.TryLock(id)
	if !ok {
		t.Fatal("first TryLock should lead")
	}
	if _, ok := b.TryLock(id); ok {
		t.Fatal("second handle stole a held lock")
	}
	relA()
	relB, ok := b.TryLock(id)
	if !ok {
		t.Fatal("released lock not reacquirable")
	}
	relB()

	// Hammer both handles with concurrent stores and loads of interleaved
	// identities; single-flight each identity via TryLock exactly as the
	// harness does.
	const n = 24
	var wg sync.WaitGroup
	for w, c := range []*Cache{a, b} {
		wg.Add(1)
		go func(w int, c *Cache) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				kid := SumID(fmt.Sprintf("conc-%d", i))
				if release, lead := c.TryLock(kid); lead {
					if err := c.StoreTrace(kid, testTrace(5+i, 0), uint64(i)); err != nil {
						t.Errorf("worker %d store %d: %v", w, i, err)
					}
					release()
				} else {
					c.WaitUnlocked(kid)
				}
				if rec, _, err := c.LoadTrace(kid); err == nil {
					rec.Release()
				} else if !errors.Is(err, ErrMiss) {
					t.Errorf("worker %d load %d: %v", w, i, err)
				}
			}
		}(w, c)
	}
	wg.Wait()
	a.Close()
	b.Close()

	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest corrupted by concurrent flushes: %v", err)
	}
	if m.Version != FormatVersion {
		t.Fatalf("manifest version %d", m.Version)
	}
	fresh, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for i := 0; i < n; i++ {
		kid := SumID(fmt.Sprintf("conc-%d", i))
		rec, checksum, err := fresh.LoadTrace(kid)
		if err != nil {
			t.Fatalf("identity %d missing after concurrent run: %v", i, err)
		}
		if checksum != uint64(i) || rec.Len() != 5+i {
			t.Fatalf("identity %d: checksum %d len %d", i, checksum, rec.Len())
		}
		rec.Release()
	}
}

func TestReadOnlySemantics(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	id := SumID("ro")
	if err := rw.StoreTrace(id, testTrace(5, 0), 1); err != nil {
		t.Fatal(err)
	}
	rw.Close()

	// Corrupt the stored file; read-only must report it but leave it alone.
	path := rw.path(kindTrace, id)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.StoreTrace(SumID("other"), testTrace(1, 0), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only store: %v", err)
	}
	if err := ro.StoreResult(SumID("other"), &CellResult{Stats: testStats()}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only result store: %v", err)
	}
	var cerr *CorruptError
	if _, _, err := ro.LoadTrace(id); !errors.As(err, &cerr) {
		t.Fatalf("corrupt load in ro mode: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("read-only cache deleted a corrupt file")
	}
	if cc := ro.Counters(); cc.Corruptions != 1 {
		t.Fatalf("counters: %+v", cc)
	}

	// A read-write reopen deletes it on sight.
	rw2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw2.Close()
	if _, _, err := rw2.LoadTrace(id); !errors.As(err, &cerr) {
		t.Fatalf("corrupt load in rw mode: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("read-write cache left a corrupt file in place")
	}

	if _, err := Open(filepath.Join(dir, "nope"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only Open of a missing directory succeeded")
	}
}

// patchVersion rewrites a trace file header's format version and repairs the
// header CRC so only the version gate can object.
func patchVersion(t *testing.T, raw []byte, v uint32) []byte {
	t.Helper()
	mut := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(mut[8:12], v)
	binary.LittleEndian.PutUint32(mut[76:80], crc32.ChecksumIEEE(mut[:76]))
	return mut
}

// TestVersionSkewRejected proves a structurally perfect file from another
// format generation is refused with *VersionError — and that the cache-level
// load turns it into a clean recompute (file deleted, miss counted), never a
// misread.
func TestVersionSkewRejected(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := SumID("skew")
	if err := c.StoreTrace(id, testTrace(20, 4), 5); err != nil {
		t.Fatal(err)
	}
	path := c.path(kindTrace, id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, patchVersion(t, raw, FormatVersion+1), 0o644); err != nil {
		t.Fatal(err)
	}

	var verr *VersionError
	if _, _, err := c.LoadTrace(id); !errors.As(err, &verr) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if verr.Got != FormatVersion+1 {
		t.Fatalf("VersionError.Got = %d", verr.Got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("version-skewed file not deleted in rw mode")
	}
	// The recompute path: the identity is now a plain miss and storable
	// again.
	if _, _, err := c.LoadTrace(id); !errors.Is(err, ErrMiss) {
		t.Fatalf("after rejection: %v", err)
	}
	if err := c.StoreTrace(id, testTrace(20, 4), 5); err != nil {
		t.Fatal(err)
	}
	if rec, checksum, err := c.LoadTrace(id); err != nil || checksum != 5 {
		t.Fatalf("rewrite after rejection: %v", err)
	} else {
		rec.Release()
	}

	// Same gate on the result tier.
	rid := SumID("skew-result")
	if err := c.StoreResult(rid, &CellResult{Stats: testStats()}); err != nil {
		t.Fatal(err)
	}
	rpath := c.path(kindResult, rid)
	rraw, _ := os.ReadFile(rpath)
	mut := bytes.Clone(rraw)
	binary.LittleEndian.PutUint32(mut[8:12], FormatVersion+3)
	os.WriteFile(rpath, mut, 0o644)
	if _, err := c.LoadResult(rid); !errors.As(err, &verr) {
		t.Fatalf("result version skew: %v", err)
	}
}
