// Package persist is the content-addressed artifact cache behind the
// harness's trace cache: it makes repeated sweeps incremental across
// processes. It holds two tiers —
//
//   - the trace store (traces/<id>.trc): captured dynamic traces in a
//     versioned binary format (see traceio.go), keyed by a cell's functional
//     identity digest, so a later run replays a prior run's capture instead
//     of re-executing the functional simulator;
//   - the result store (results/<id>.res): memoized cpu.Stats and outcome
//     checksums keyed by the full identity (functional digest × timing
//     config digest), so a repeated cell skips even the replay.
//
// Storage is pluggable: the cache sits on the Backend protocol (backend.go)
// — the local directory store by default, an in-memory fake in tests, and a
// chaos-wrapped stack when fault injection is on — hardened by retry,
// timeout and circuit-breaker middleware (middleware.go).
//
// Robustness contract: nothing in this package is ever allowed to turn a
// sweep into a hard failure. Every load returns a typed error — ErrMiss for
// an absent entry, *CorruptError for a damaged file (deleted on sight in
// read-write mode), *VersionError for a format from another era,
// *UnavailableError (or ErrBreakerOpen) for a backend that could not answer
// — and the harness answers all of them the same way: recompute, and
// rewrite the entry. The manifest is crash-safe (write temp + fsync +
// rename; a corrupt or missing manifest is rebuilt by scanning the store),
// stores are atomic, the byte cap is enforced by least-recently-used
// eviction, and cross-process capture duplication is suppressed by advisory
// lock files that always fail open. Only the stdlib is used.
package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FormatVersion is the on-disk format generation, shared by the trace and
// result codecs and recorded in every file header. Bump it whenever the
// encoded byte layout changes — or whenever the simulator changes in a way
// that alters captured traces or timing results — and every existing cache
// entry is cleanly rejected (recomputed and rewritten), never misread.
const FormatVersion = 1

// ID is a content address: the SHA-256 digest of a canonical identity
// string. Files are named by its hex form.
type ID [sha256.Size]byte

// SumID digests a canonical identity string into an ID.
func SumID(s string) ID { return sha256.Sum256([]byte(s)) }

// String returns the hex form used in file names.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ErrMiss reports an entry absent from the store (the ordinary cold-cache
// case, as opposed to a corrupt or version-skewed one).
var ErrMiss = errors.New("persist: cache miss")

// ErrReadOnly reports a store attempt on a read-only cache.
var ErrReadOnly = errors.New("persist: cache is read-only")

// CorruptError is a cache file that failed validation: truncated, a CRC
// mismatch, an impossible length, a digest that does not match its name.
// In read-write mode the offending file is deleted before the error is
// returned, so the recompute that follows rewrites a clean entry.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("persist: corrupt cache file %s: %s", e.Path, e.Reason)
}

// VersionError is a structurally sound cache file written by a different
// format generation. It is rejected without being read further; callers
// recompute exactly as on a miss.
type VersionError struct {
	Path string
	Got  uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("persist: cache file %s has format version %d (this build reads %d)",
		e.Path, e.Got, FormatVersion)
}

// DefaultMaxBytes is the byte cap restbench applies to a persistent cache
// unless -cache-max-bytes overrides it: 2 GiB comfortably holds the full
// experiment grid at the default scales while still bounding disk use.
const DefaultMaxBytes = 2 << 30

// Options configures Open / OpenBackend.
type Options struct {
	// MaxBytes caps the store's payload bytes; storing past it evicts
	// least-recently-used entries first. 0 = unlimited.
	MaxBytes int64
	// ReadOnly opens the cache without ever writing: no stores, no
	// evictions, no manifest rewrites, no lock files, and corrupt files are
	// reported but left in place. The directory must already exist.
	ReadOnly bool
	// NoCompress stores trace blocks raw instead of flate-compressed
	// (reads always follow the file's own header flag).
	NoCompress bool
	// LockWait bounds how long WaitUnlocked blocks on another process's
	// capture lock before giving up (default 60s).
	LockWait time.Duration
	// StaleLockAge is the age past which an abandoned lock file (a crashed
	// leader) is stolen (default 10m).
	StaleLockAge time.Duration

	// Chaos, when non-nil, wraps the backend with the seeded fault injector
	// (chaos.go). Test and drill use only.
	Chaos *ChaosSpec
	// Retries is the bounded retry budget per backend op beyond the first
	// attempt: 0 = DefaultRetries, negative = retries disabled.
	Retries int
	// RetryBase is the first backoff step; re-attempt n sleeps base·2ⁿ plus
	// up to base of seeded jitter. 0 = DefaultRetryBase.
	RetryBase time.Duration
	// RetrySeed seeds the backoff jitter (0 = 1), so hardened-path tests
	// are reproducible.
	RetrySeed uint64
	// OpTimeout bounds each backend object op's wall-clock time; a blown
	// budget degrades to a miss. 0 = no per-op timeout (the default: the
	// local disk backend has no hang modes worth a goroutine per op).
	OpTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker: 0 = DefaultBreakerThreshold, negative = no breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fast-fails before
	// half-opening for a probe. 0 = DefaultBreakerCooldown.
	BreakerCooldown time.Duration
}

// Counters is a point-in-time snapshot of the cache's activity, exported to
// the harness.diskcache.* metric namespace and restbench's stderr summary.
type Counters struct {
	TraceHits, TraceMisses   uint64
	ResultHits, ResultMisses uint64
	Stores                   uint64
	Evictions                uint64
	Corruptions              uint64
	Rejected                 uint64 // single entries larger than the whole cap
	LockWaits                uint64
	LockWaitNs               uint64 // wall-clock time spent in WaitUnlocked
	LockContended            uint64 // TryLock races lost to another holder
	Unavailable              uint64 // ops degraded by backend unavailability
	Bytes                    uint64 // resident payload bytes
	Entries                  uint64 // resident entry count
}

const (
	kindTrace  = "trace"
	kindResult = "result"

	manifestName = "manifest.json"
	manifestLock = "manifest"
)

// entry is one resident cache file's manifest record.
type entry struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Bytes   int64  `json:"bytes"`
	LastUse int64  `json:"last_use"` // unix nanoseconds; LRU eviction order
}

func (e *entry) key() string { return e.Kind + "/" + e.ID }

// manifest is the on-disk index. It is advisory: the backend's objects are
// the truth, and Open reconciles the two (objects missing from the manifest
// are adopted, manifest rows whose object vanished are dropped), so a lost
// or corrupt manifest costs only LRU recency, never correctness.
type manifest struct {
	Version int      `json:"version"`
	Entries []*entry `json:"entries"`
}

// Cache is one process's handle on a cache store. Safe for concurrent use;
// several processes may share one directory (stores are atomic, manifest
// rewrites merge with the on-disk state under an advisory lock).
type Cache struct {
	b     Backend      // the hardened stack every op goes through
	dirb  *DirBackend  // non-nil when the raw backend is the local directory
	httpb *HTTPBackend // non-nil when the raw backend is a remote cache server
	dir   string       // the directory path ("" for non-directory backends)
	opt   Options
	stack *StackStats

	mu      sync.Mutex
	entries map[string]*entry
	total   int64
	dirty   bool // in-memory recency not yet flushed
	c       Counters
}

// Open attaches to (and in read-write mode creates) a cache directory,
// hardened by the default middleware stack. A missing or corrupt manifest is
// rebuilt from the files present; stale temporary files from crashed writers
// are swept in read-write mode.
func Open(dir string, opt Options) (*Cache, error) {
	db, err := NewDirBackend(dir, opt.ReadOnly)
	if err != nil {
		return nil, err
	}
	return openBackend(db, db, opt)
}

// OpenBackend attaches to an arbitrary Backend, hardened by the configured
// middleware stack. The backend must already be usable (OpenBackend creates
// no directories).
func OpenBackend(b Backend, opt Options) (*Cache, error) {
	db, _ := b.(*DirBackend)
	return openBackend(b, db, opt)
}

func openBackend(raw Backend, db *DirBackend, opt Options) (*Cache, error) {
	if opt.LockWait <= 0 {
		opt.LockWait = 60 * time.Second
	}
	if opt.StaleLockAge <= 0 {
		opt.StaleLockAge = 10 * time.Minute
	}
	st := &StackStats{}
	c := &Cache{
		b: hardenStack(raw, opt, st), dirb: db, opt: opt, stack: st,
		entries: make(map[string]*entry),
	}
	if db != nil {
		c.dir = db.dir
	}
	c.httpb, _ = raw.(*HTTPBackend)
	c.loadManifest()
	c.reconcile()
	return c, nil
}

// ReadOnly reports whether the cache rejects writes.
func (c *Cache) ReadOnly() bool { return c.opt.ReadOnly }

// Dir returns the cache directory ("" when the backend is not the local
// directory store).
func (c *Cache) Dir() string { return c.dir }

// Counters returns a snapshot of the cache's activity.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.c
	out.Bytes = uint64(c.total)
	out.Entries = uint64(len(c.entries))
	return out
}

// StackCounters returns a snapshot of the hardening stack's activity (retry,
// timeout, breaker and chaos counters).
func (c *Cache) StackCounters() StackCounters { return c.stack.Snapshot() }

// HTTPCounters returns the remote backend's wire counters; ok is false when
// the cache is not backed by an HTTP cache server.
func (c *Cache) HTTPCounters() (HTTPCounters, bool) {
	if c.httpb == nil {
		return HTTPCounters{}, false
	}
	return c.httpb.Counters(), true
}

// Close flushes the manifest (recency updates included). The cache remains
// usable after Close; it exists so a process's LRU observations survive it.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opt.ReadOnly || !c.dirty {
		return nil
	}
	return c.flushManifestLocked()
}

// unavailableSeen counts one degraded op when err is transient backend
// unavailability (and not a plain miss).
func (c *Cache) unavailableSeen(err error) {
	if IsUnavailable(err) {
		c.mu.Lock()
		c.c.Unavailable++
		c.mu.Unlock()
	}
}

// loadManifest reads the manifest if it is present and sane; any failure
// just leaves the index empty for reconcile to rebuild.
func (c *Cache) loadManifest() {
	raw, err := c.b.Get(kindMeta, manifestName)
	if err != nil {
		c.unavailableSeen(err)
		return
	}
	var m manifest
	if json.Unmarshal(raw, &m) != nil || m.Version != FormatVersion {
		return
	}
	for _, e := range m.Entries {
		if e != nil && e.ID != "" && (e.Kind == kindTrace || e.Kind == kindResult) {
			c.entries[e.key()] = e
		}
	}
}

// reconcile makes the backend's objects the source of truth: rows whose
// object is gone are dropped, objects the manifest never heard of are
// adopted with their stat size and mtime recency.
func (c *Cache) reconcile() {
	seen := make(map[string]bool)
	for _, kind := range []string{kindTrace, kindResult} {
		stats, err := c.b.List(kind)
		if err != nil {
			c.unavailableSeen(err)
			continue
		}
		for _, st := range stats {
			key := kind + "/" + st.Name
			seen[key] = true
			if e, ok := c.entries[key]; ok {
				e.Bytes = st.Bytes
				continue
			}
			c.entries[key] = &entry{
				ID: st.Name, Kind: kind,
				Bytes: st.Bytes, LastUse: st.ModTime.UnixNano(),
			}
		}
	}
	c.total = 0
	for key, e := range c.entries {
		if !seen[key] {
			delete(c.entries, key)
			continue
		}
		c.total += e.Bytes
	}
}

// path returns the final file path of an entry. Only meaningful for
// directory-backed caches (tests and tooling reach into the layout with it).
func (c *Cache) path(kind string, id ID) string {
	switch kind {
	case kindTrace:
		return filepath.Join(c.dir, "traces", id.String()+traceExt)
	default:
		return filepath.Join(c.dir, "results", id.String()+resultExt)
	}
}

// touch bumps an entry's recency in memory; the update reaches disk with
// the next flush (a crash in between costs recency only).
func (c *Cache) touch(kind string, id ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[kind+"/"+id.String()]; ok {
		e.LastUse = time.Now().UnixNano()
		c.dirty = true
	}
}

// discard handles a failed load: the corruption is counted and, in
// read-write mode, the damaged object is deleted so the recompute that
// follows publishes a clean replacement.
func (c *Cache) discard(kind string, id ID) {
	c.mu.Lock()
	c.c.Corruptions++
	if c.opt.ReadOnly {
		c.mu.Unlock()
		return
	}
	key := kind + "/" + id.String()
	if e, ok := c.entries[key]; ok {
		c.total -= e.Bytes
		delete(c.entries, key)
		c.dirty = true
	}
	c.mu.Unlock()
	if err := c.b.Delete(kind, id.String()); err != nil {
		c.unavailableSeen(err)
	}
}

// admit publishes a freshly stored object into the index, evicting
// least-recently-used entries until the byte cap holds again, and flushes
// the manifest. Caller must not hold mu.
func (c *Cache) admit(kind string, id ID, size int64) error {
	c.mu.Lock()
	key := kind + "/" + id.String()
	if old, ok := c.entries[key]; ok {
		c.total -= old.Bytes
	}
	e := &entry{ID: id.String(), Kind: kind, Bytes: size, LastUse: time.Now().UnixNano()}
	c.entries[key] = e
	c.total += size
	c.c.Stores++
	var victimKinds, victimIDs []string
	if c.opt.MaxBytes > 0 {
		var victims []*entry
		for _, v := range c.entries {
			if v != e {
				victims = append(victims, v)
			}
		}
		// Oldest use first; ties broken by key so eviction order is stable.
		sort.Slice(victims, func(i, j int) bool {
			if victims[i].LastUse != victims[j].LastUse {
				return victims[i].LastUse < victims[j].LastUse
			}
			return victims[i].key() < victims[j].key()
		})
		for c.total > c.opt.MaxBytes && len(victims) > 0 {
			v := victims[0]
			victims = victims[1:]
			c.total -= v.Bytes
			delete(c.entries, v.key())
			c.c.Evictions++
			victimKinds = append(victimKinds, v.Kind)
			victimIDs = append(victimIDs, v.ID)
		}
		if c.total > c.opt.MaxBytes {
			// The new entry alone exceeds the whole cap: storing it was
			// pointless, undo it.
			c.total -= e.Bytes
			delete(c.entries, key)
			c.c.Stores--
			c.c.Rejected++
			c.mu.Unlock()
			for i := range victimIDs {
				c.b.Delete(victimKinds[i], victimIDs[i])
			}
			c.b.Delete(kind, id.String())
			return nil
		}
	}
	err := c.flushManifestLocked()
	c.mu.Unlock()
	for i := range victimIDs {
		if derr := c.b.Delete(victimKinds[i], victimIDs[i]); derr != nil {
			c.unavailableSeen(derr)
		}
	}
	return err
}

// flushManifestLocked writes the index crash-safely, merging with whatever
// another process published since we last read it: union by key, newest
// recency wins, rows for vanished objects drop. The merge runs under the
// manifest lock so two flushing processes serialize instead of clobbering
// each other. Caller holds mu.
func (c *Cache) flushManifestLocked() error {
	unlock := c.lockManifest()
	defer unlock()

	merged := make(map[string]*entry, len(c.entries))
	for k, e := range c.entries {
		cp := *e
		merged[k] = &cp
	}
	if raw, err := c.b.Get(kindMeta, manifestName); err == nil {
		var disk manifest
		if json.Unmarshal(raw, &disk) == nil && disk.Version == FormatVersion {
			// Adopt rows for objects we have not seen, but only those whose
			// object actually exists (one List per kind, not a stat per row).
			exists := make(map[string]bool)
			for _, kind := range []string{kindTrace, kindResult} {
				if stats, lerr := c.b.List(kind); lerr == nil {
					for _, st := range stats {
						exists[kind+"/"+st.Name] = true
					}
				}
			}
			for _, e := range disk.Entries {
				if e == nil {
					continue
				}
				if have, ok := merged[e.key()]; ok {
					if e.LastUse > have.LastUse {
						have.LastUse = e.LastUse
					}
					continue
				}
				if exists[e.key()] {
					merged[e.key()] = e
				}
			}
		}
	}
	m := manifest{Version: FormatVersion}
	for _, e := range merged {
		m.Entries = append(m.Entries, e)
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].key() < m.Entries[j].key() })
	raw, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := c.b.Put(kindMeta, manifestName, append(raw, '\n')); err != nil {
		// Caller holds mu: bump the counter directly (unavailableSeen locks).
		if IsUnavailable(err) {
			c.c.Unavailable++
		}
		return err
	}
	c.dirty = false
	return nil
}

// lockManifest serializes manifest rewrites across processes. Contention is
// rare and short (one JSON rewrite), so waiting is a tight bounded poll;
// locks older than StaleLockAge are stolen, and a lock plane that cannot
// answer fails open (the manifest put is still atomic — we only risk losing
// a merge, which self-heals at the next reconcile). Caller holds mu.
func (c *Cache) lockManifest() (unlock func()) {
	deadline := time.Now().Add(c.opt.LockWait)
	for {
		release, err := c.b.TryLock(manifestLock)
		if err == nil {
			return release
		}
		if !errors.Is(err, ErrLockHeld) {
			if IsUnavailable(err) {
				c.c.Unavailable++
			}
			return func() {}
		}
		if age, aerr := c.b.LockAge(manifestLock); aerr == nil && age > c.opt.StaleLockAge {
			c.b.BreakLock(manifestLock)
			continue
		}
		if time.Now().After(deadline) {
			return func() {}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TryLock attempts the single-flight capture lock for an identity; ok
// reports whether this process is now the leader (call release when the
// capture is stored or abandoned). A read-only cache never creates lock
// files and reports every caller a leader, since there is nothing to store.
// Locks left by crashed leaders are stolen once StaleLockAge old, and a lock
// plane that cannot answer fails open: the caller proceeds as leader, at
// worst duplicating a capture, never stalling one.
func (c *Cache) TryLock(id ID) (release func(), ok bool) {
	if c.opt.ReadOnly {
		return func() {}, true
	}
	rel, err := c.b.TryLock(id.String())
	if err == nil {
		return rel, true
	}
	if !errors.Is(err, ErrLockHeld) {
		c.unavailableSeen(err)
		return func() {}, true
	}
	if age, aerr := c.b.LockAge(id.String()); aerr == nil && age > c.opt.StaleLockAge {
		c.b.BreakLock(id.String())
		if rel, err := c.b.TryLock(id.String()); err == nil {
			return rel, true
		}
	}
	c.mu.Lock()
	c.c.LockContended++
	c.mu.Unlock()
	return nil, false
}

// WaitUnlocked blocks until another process's capture lock for id is
// released, stolen, or LockWait elapses. The caller retries its load either
// way; a timeout merely means a duplicate capture, never a wrong result. A
// lock plane that cannot answer ends the wait immediately (fail open).
func (c *Cache) WaitUnlocked(id ID) {
	start := time.Now()
	c.mu.Lock()
	c.c.LockWaits++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.c.LockWaitNs += uint64(time.Since(start))
		c.mu.Unlock()
	}()
	deadline := time.Now().Add(c.opt.LockWait)
	for time.Now().Before(deadline) {
		age, err := c.b.LockAge(id.String())
		if err != nil {
			c.unavailableSeen(err)
			return
		}
		if age > c.opt.StaleLockAge {
			c.b.BreakLock(id.String())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- Elastic scheduling surface ---
//
// The work-stealing sweep pool (internal/harness's elastic scheduler) needs
// three small primitives beyond the artifact tiers: claims (unit locks whose
// loss is observable), markers (tiny meta objects recording completed
// units), and a change wait (so idle workers park instead of poll-spinning).
// All three ride the existing planes — locks, the meta namespace, and the
// HTTP server's epoch counter — with the same fail-open posture: a plane
// that cannot answer degrades to duplicate work, never to a stall or a
// wrong byte.

// Claim is one held unit claim. Lost() is readable once the underlying
// lease has been stolen by a stale-takeover (the holder was presumed dead);
// a holder observing loss must abandon the unit without publishing its
// completion marker. Claims over backends with no lease plane (the local
// directory store) can never observe loss: Lost() blocks forever and
// staleness is judged by lock-file age alone.
type Claim struct {
	// Stolen reports that this claim was acquired by breaking a stale
	// holder's lock — the pool-level "steal" the elastic counters track.
	Stolen bool

	lost    <-chan struct{}
	renew   func() error
	release func()
}

// Lost is readable once the claim's lease has been stolen. For claims with
// no lease plane it is nil — receiving from it blocks forever, which is the
// correct select behavior.
func (cl *Claim) Lost() <-chan struct{} { return cl.lost }

// Renew refreshes the claim's liveness clock once, synchronously, returning
// ErrLeaseLost when the lease has been stolen. Claims with no lease plane
// renew trivially (nil error). Auto-renewal (when enabled on the backend)
// makes calling this optional; it exists for deterministic tests and for
// cheap between-cell loss checks.
func (cl *Claim) Renew() error {
	if cl.renew == nil {
		return nil
	}
	return cl.renew()
}

// Release gives the claim back. Idempotent and best-effort, like every
// lock release in this package.
func (cl *Claim) Release() { cl.release() }

// TryClaim attempts to claim name on the lock plane: fresh grants win,
// stale holders (age past StaleLockAge) are broken and re-acquired, fresh
// holders lose (nil, false). An unavailable lock plane fails open — the
// caller proceeds as claimant, at worst duplicating a unit's compute; the
// publication stays idempotent so bytes never differ. Read-only caches
// claim nothing and everything: there is no store to protect.
func (c *Cache) TryClaim(name string) (*Claim, bool) {
	noop := &Claim{release: func() {}}
	if c.opt.ReadOnly {
		return noop, true
	}
	if c.httpb != nil {
		if l, err := c.httpb.TryLease(name); err == nil {
			return &Claim{lost: l.Lost(), renew: l.Renew, release: l.Release}, true
		} else if !errors.Is(err, ErrLockHeld) {
			c.unavailableSeen(err)
			return noop, true
		}
	} else {
		if rel, err := c.b.TryLock(name); err == nil {
			return &Claim{release: rel}, true
		} else if !errors.Is(err, ErrLockHeld) {
			c.unavailableSeen(err)
			return noop, true
		}
	}
	if age, aerr := c.b.LockAge(name); aerr == nil && age > c.opt.StaleLockAge {
		c.b.BreakLock(name)
		if c.httpb != nil {
			if l, err := c.httpb.TryLease(name); err == nil {
				return &Claim{Stolen: true, lost: l.Lost(), renew: l.Renew, release: l.Release}, true
			}
		} else if rel, err := c.b.TryLock(name); err == nil {
			return &Claim{Stolen: true, release: rel}, true
		}
	}
	c.mu.Lock()
	c.c.LockContended++
	c.mu.Unlock()
	return nil, false
}

// PutMarker publishes a small coordination object in the meta namespace.
// Markers live beside the manifest: outside the artifact tiers, exempt from
// the byte cap and eviction, named by the caller (content-addressed names
// make publication idempotent — two workers writing the same marker write
// the same bytes).
func (c *Cache) PutMarker(name string, data []byte) error {
	if c.opt.ReadOnly {
		return ErrReadOnly
	}
	if err := c.b.Put(kindMeta, name, data); err != nil {
		c.unavailableSeen(err)
		return err
	}
	return nil
}

// GetMarker loads one marker; ErrMiss when absent.
func (c *Cache) GetMarker(name string) ([]byte, error) {
	raw, err := c.b.Get(kindMeta, name)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, ErrMiss
		}
		c.unavailableSeen(err)
		return nil, err
	}
	return raw, nil
}

// ListMarkers returns the sorted names of every marker with the given
// prefix. An unavailable backend returns the error (the caller's scan loop
// retries); a healthy empty store returns an empty slice.
func (c *Cache) ListMarkers(prefix string) ([]string, error) {
	stats, err := c.b.List(kindMeta)
	if err != nil {
		c.unavailableSeen(err)
		return nil, err
	}
	var names []string
	for _, st := range stats {
		if strings.HasPrefix(st.Name, prefix) {
			names = append(names, st.Name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// dirPollCap bounds one WaitChange sleep when there is no epoch plane to
// park on: a re-list every so often is the directory store's only way to
// see another process's progress.
const dirPollCap = 100 * time.Millisecond

// WaitChange parks until the store's scheduling state may have advanced
// past epoch after, or max elapses, and returns the epoch to pass next
// time. Backed by the HTTP server's long-poll when available; otherwise a
// bounded sleep whose return value always forces the caller to rescan.
func (c *Cache) WaitChange(after uint64, max time.Duration) uint64 {
	if c.httpb != nil {
		if e, err := c.httpb.EpochWait(after, max); err == nil {
			return e
		}
	}
	d := max
	if d > dirPollCap {
		d = dirPollCap
	}
	if d > 0 {
		time.Sleep(d)
	}
	return after + 1
}

// writeFileSync writes data to path and fsyncs it before closing, so the
// rename that follows publishes fully durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: not every platform supports it, and losing it only risks the
// entry reverting to absent, which the cache treats as a miss.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
