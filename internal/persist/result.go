// The result store's binary format (version 1).
//
// A result file memoizes one sweep cell's timing outcome — the cpu.Stats a
// replay (or stream) of that exact (functional identity × timing config)
// pair produces, plus the run's outcome checksum — so a warm sweep skips
// even the replay:
//
//	[0:8)    magic "RESTRES\n"
//	[8:12)   format version, uint32 LE
//	[12:44)  full identity digest (the file's own content address)
//	[44:..)  the stats fields, fixed width, in the order of resultFields
//	         (uint64 LE each; IPC stored as its IEEE-754 bit pattern so the
//	         round trip is bit-exact), then LSQViolation as one byte and the
//	         outcome checksum as uint64 LE
//	[-4:)    CRC-32 (IEEE) of everything before it
//
// Only fully clean cells are stored (no error, no detection), so the
// Exception pointer inside cpu.Stats is nil by construction; StoreResult
// refuses anything else rather than silently dropping it. If cpu.Stats ever
// grows a field, TestResultCodecCoversStats fails until the codec learns it
// and FormatVersion is bumped — the version gate is what keeps stale files
// from being misread as current ones.
package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"rest/internal/cpu"
)

const (
	resultExt   = ".res"
	resultMagic = "RESTRES\n"
)

// CellResult is the memoized outcome of one clean sweep cell.
type CellResult struct {
	Stats    cpu.Stats
	Checksum uint64 // the run's world.Outcome.Checksum
}

// resultNumFields is the number of uint64 slots the codec packs from
// cpu.Stats; see packStats for the order.
const resultNumFields = 13

const resultFileLen = 8 + 4 + 32 + resultNumFields*8 + 1 + 8 + 4

// packStats lays out the numeric stats fields in their fixed codec order.
func packStats(b []byte, s *cpu.Stats) {
	fields := [resultNumFields]uint64{
		s.Cycles, s.Instructions, s.UserInstrs, s.RuntimeOps,
		math.Float64bits(s.IPC),
		s.Mispredicts, s.BranchLookups, s.LSQForwardings,
		s.ROBFullCycles, s.IQFullCycles, s.LQFullCycles, s.SQFullCycles,
		s.ROBStoreBlockCycles,
	}
	for i, v := range fields {
		binary.LittleEndian.PutUint64(b[i*8:(i+1)*8], v)
	}
}

// unpackStats is packStats's inverse.
func unpackStats(b []byte) cpu.Stats {
	var f [resultNumFields]uint64
	for i := range f {
		f[i] = binary.LittleEndian.Uint64(b[i*8 : (i+1)*8])
	}
	return cpu.Stats{
		Cycles: f[0], Instructions: f[1], UserInstrs: f[2], RuntimeOps: f[3],
		IPC:         math.Float64frombits(f[4]),
		Mispredicts: f[5], BranchLookups: f[6], LSQForwardings: f[7],
		ROBFullCycles: f[8], IQFullCycles: f[9], LQFullCycles: f[10], SQFullCycles: f[11],
		ROBStoreBlockCycles: f[12],
	}
}

// StoreResult memoizes one clean cell outcome under its full identity
// digest, atomically, and admits it to the manifest.
func (c *Cache) StoreResult(id ID, r *CellResult) error {
	if c.opt.ReadOnly {
		return ErrReadOnly
	}
	if r.Stats.Exception != nil || r.Stats.LSQViolation {
		return errors.New("persist: refusing to store a detected (non-clean) cell result")
	}
	buf := make([]byte, resultFileLen)
	copy(buf[0:8], resultMagic)
	binary.LittleEndian.PutUint32(buf[8:12], FormatVersion)
	copy(buf[12:44], id[:])
	packStats(buf[44:], &r.Stats)
	off := 44 + resultNumFields*8
	buf[off] = 0 // LSQViolation, always false for a clean cell
	binary.LittleEndian.PutUint64(buf[off+1:off+9], r.Checksum)
	binary.LittleEndian.PutUint32(buf[off+9:off+13], crc32.ChecksumIEEE(buf[:off+9]))

	if err := c.b.Put(kindResult, id.String(), buf); err != nil {
		c.unavailableSeen(err)
		return err
	}
	return c.admit(kindResult, id, int64(len(buf)))
}

// LoadResult reads the memoized outcome stored under id. Misses return
// ErrMiss; damaged files return *CorruptError (deleted in read-write mode);
// files of another format generation return *VersionError; a backend that
// could not answer returns *UnavailableError or ErrBreakerOpen. Every one
// of them means "recompute" to the caller.
func (c *Cache) LoadResult(id ID) (*CellResult, error) {
	path := c.path(kindResult, id)
	raw, err := c.b.Get(kindResult, id.String())
	if err != nil {
		c.unavailableSeen(err)
		c.mu.Lock()
		c.c.ResultMisses++
		c.mu.Unlock()
		if errors.Is(err, ErrNotFound) {
			return nil, ErrMiss
		}
		return nil, err
	}
	r, derr := decodeResult(raw, &id)
	if derr != nil {
		var verr *VersionError
		if errors.As(derr, &verr) {
			verr.Path = path
		}
		var cerr *CorruptError
		if errors.As(derr, &cerr) {
			cerr.Path = path
		}
		c.discard(kindResult, id)
		c.mu.Lock()
		c.c.ResultMisses++
		c.mu.Unlock()
		return nil, derr
	}
	c.touch(kindResult, id)
	c.mu.Lock()
	c.c.ResultHits++
	c.mu.Unlock()
	return r, nil
}

// decodeResult parses and validates one result file.
func decodeResult(raw []byte, wantID *ID) (*CellResult, error) {
	if len(raw) < 12 {
		return nil, corrupt("short result file (%d bytes)", len(raw))
	}
	if string(raw[0:8]) != resultMagic {
		return nil, corrupt("bad magic %q", raw[0:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != FormatVersion {
		return nil, &VersionError{Got: v}
	}
	if len(raw) != resultFileLen {
		return nil, corrupt("result file is %d bytes, want %d", len(raw), resultFileLen)
	}
	if got := binary.LittleEndian.Uint32(raw[resultFileLen-4:]); got != crc32.ChecksumIEEE(raw[:resultFileLen-4]) {
		return nil, corrupt("CRC mismatch")
	}
	if wantID != nil {
		var id ID
		copy(id[:], raw[12:44])
		if id != *wantID {
			return nil, corrupt("identity digest does not match the file's address")
		}
	}
	off := 44 + resultNumFields*8
	if raw[off] != 0 {
		return nil, corrupt("stored result claims a detection; only clean cells are cacheable")
	}
	return &CellResult{
		Stats:    unpackStats(raw[44:off]),
		Checksum: binary.LittleEndian.Uint64(raw[off+1 : off+9]),
	}, nil
}
