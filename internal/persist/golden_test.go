package persist

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rest/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

const goldenChecksum = 0x5ec0de5ec0de

// goldenTrace is the fixed recording behind testdata/golden_v1.trc. It is
// stored uncompressed so the committed bytes depend only on this format, not
// on any compressor's output across Go releases.
func goldenTrace() *trace.Recorder {
	return testTrace(300, 8)
}

func goldenID() ID { return SumID("golden-v1") }

// TestGoldenV1TraceFile pins the committed version-1 artifact three ways:
// today's encoder still produces those exact bytes, today's decoder still
// reads them back to the original recording, and a version bump turns the
// same file into a clean *VersionError rejection (the recompute path), never
// a crash or a misread. This is the compatibility contract a cache on disk
// survives across releases by.
func TestGoldenV1TraceFile(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.trc")
	rec := goldenTrace()
	defer rec.Release()
	var buf bytes.Buffer
	if err := encodeTrace(&buf, rec, goldenID(), goldenChecksum, false); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(committed, buf.Bytes()) {
		t.Fatalf("encoder no longer reproduces the committed v1 bytes (%d vs %d bytes) — if the format changed, bump FormatVersion and regenerate with -update", len(buf.Bytes()), len(committed))
	}

	id := goldenID()
	got, checksum, err := decodeTrace(bytes.NewReader(committed), &id)
	if err != nil {
		t.Fatalf("decoder no longer reads the committed v1 file: %v", err)
	}
	defer got.Release()
	if checksum != goldenChecksum {
		t.Fatalf("checksum %#x", checksum)
	}
	assertTraceEqual(t, rec, got)

	// The same bytes stamped with a future format generation must be
	// refused up front.
	var verr *VersionError
	if _, _, err := decodeTrace(bytes.NewReader(patchVersion(t, committed, FormatVersion+1)), &id); !errors.As(err, &verr) {
		t.Fatalf("version-bumped golden file: want *VersionError, got %v", err)
	}

	// End to end through a cache directory: a version-skewed file behaves
	// exactly like a miss after its one rejection.
	dir := t.TempDir()
	c, err := Open(dir, Options{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := os.WriteFile(c.path(kindTrace, id), patchVersion(t, committed, FormatVersion+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.LoadTrace(id); !errors.As(err, &verr) {
		t.Fatalf("cache load of skewed file: %v", err)
	}
	if _, _, err := c.LoadTrace(id); !errors.Is(err, ErrMiss) {
		t.Fatalf("second load after rejection: %v", err)
	}
	if cc := c.Counters(); cc.Corruptions != 1 {
		t.Fatalf("rejection not counted: %+v", cc)
	}
}
