// The HTTP storage plane's proof obligations: the client/server pair must be
// indistinguishable from a local Backend (the shared conformance suite), the
// typed error taxonomy must survive the wire in both directions, network-only
// fault classes (torn responses, mid-request disconnects, dead servers) must
// surface as transient unavailability so the hardening stack and fail-open
// lock semantics keep working, and the two network-only mechanisms — single-
// flight get coalescing and lock leases with liveness renewal — must behave.
package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newCacheServer starts a CacheServer over b and returns its base URL.
func newCacheServer(t *testing.T, b Backend) string {
	t.Helper()
	mux := http.NewServeMux()
	NewCacheServer(b).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// newHTTPBackend dials url with lease auto-renewal disabled (tests that need
// the renewer construct their own).
func newHTTPBackend(t *testing.T, url string) *HTTPBackend {
	t.Helper()
	hb, err := NewHTTPBackend(url, HTTPOptions{RenewEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return hb
}

// TestHTTPBackendConformance runs the shared Backend contract over the wire:
// a CacheServer on MemBackend must be indistinguishable from MemBackend.
func TestHTTPBackendConformance(t *testing.T) {
	t.Parallel()
	backendConformance(t, newHTTPBackend(t, newCacheServer(t, NewMemBackend())))
}

// TestHTTPBackendURLValidation pins NewHTTPBackend's argument checking and
// base-path normalization.
func TestHTTPBackendURLValidation(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{"", "127.0.0.1:7070", "ftp://host", "http://", "://x"} {
		if _, err := NewHTTPBackend(bad, HTTPOptions{}); err == nil {
			t.Errorf("NewHTTPBackend(%q) should fail", bad)
		}
	}
	hb, err := NewHTTPBackend("http://127.0.0.1:7070///", HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hb.base != "http://127.0.0.1:7070" {
		t.Fatalf("trailing slashes not trimmed: %q", hb.base)
	}
}

// TestHTTPBackendErrorTaxonomy pins the status↔error mapping in both
// directions: ENOSPC and lock-held cross the wire typed, and every op against
// a dead server degrades to *UnavailableError (the class the retry layer and
// the fail-open lock path act on), never to a panic or an untyped error.
func TestHTTPBackendErrorTaxonomy(t *testing.T) {
	t.Parallel()
	mb := NewMemBackend()
	mb.SetCapacity(4)
	hb := newHTTPBackend(t, newCacheServer(t, mb))

	if err := hb.Put(kindTrace, "big", []byte("way-too-large")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Put over capacity: want ErrNoSpace, got %v", err)
	}
	rel, err := hb.TryLock("held")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hb.TryLock("held"); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second TryLock: want ErrLockHeld, got %v", err)
	}
	rel()

	// Unknown kinds are rejected by the server before touching the backend.
	if _, err := hb.Get("bogus", "x"); !IsUnavailable(err) {
		t.Fatalf("Get(bogus kind): want unavailable, got %v", err)
	}

	// A dead server: every op is transient unavailability.
	mux := http.NewServeMux()
	NewCacheServer(NewMemBackend()).Register(mux)
	dead := httptest.NewServer(mux)
	hbDead := newHTTPBackend(t, dead.URL)
	dead.Close()
	if _, err := hbDead.Get(kindTrace, "o"); !IsUnavailable(err) {
		t.Fatalf("Get(dead server): %v", err)
	}
	if err := hbDead.Put(kindTrace, "o", []byte("x")); !IsUnavailable(err) {
		t.Fatalf("Put(dead server): %v", err)
	}
	if err := hbDead.Delete(kindTrace, "o"); !IsUnavailable(err) {
		t.Fatalf("Delete(dead server): %v", err)
	}
	if _, err := hbDead.List(kindTrace); !IsUnavailable(err) {
		t.Fatalf("List(dead server): %v", err)
	}
	if _, err := hbDead.TryLock("l"); !IsUnavailable(err) {
		t.Fatalf("TryLock(dead server): %v", err)
	}
	if _, err := hbDead.LockAge("l"); !IsUnavailable(err) {
		t.Fatalf("LockAge(dead server): %v", err)
	}
	if err := hbDead.BreakLock("l"); !IsUnavailable(err) {
		t.Fatalf("BreakLock(dead server): %v", err)
	}
	if got := hbDead.Counters(); got.TransportErrs == 0 {
		t.Fatalf("transport errors not counted: %+v", got)
	}
}

// TestHTTPBackendTornResponse pins the torn-response fault class: a server
// that declares more bytes than it delivers (dying mid-body behind a
// keep-alive connection) must surface as transient unavailability, never as
// short payload bytes handed to the codec.
func TestHTTPBackendTornResponse(t *testing.T) {
	t.Parallel()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/v1/obj/{kind}/{name}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "4096")
		w.Write([]byte("only-these-bytes"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	hb := newHTTPBackend(t, ts.URL)
	if _, err := hb.Get(kindTrace, "o"); !IsUnavailable(err) {
		t.Fatalf("torn response: want unavailable, got %v", err)
	}
	if got := hb.Counters(); got.TransportErrs == 0 {
		t.Fatalf("torn response not counted as a transport error: %+v", got)
	}
}

// TestHTTPBackendMidRequestDisconnect pins the mid-request-disconnect fault
// class, both flavors: the connection dying after the headers (partial body)
// and dying before any response at all.
func TestHTTPBackendMidRequestDisconnect(t *testing.T) {
	t.Parallel()
	var afterHeaders atomic.Bool // the handler outlives each round's client error
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/v1/obj/{kind}/{name}", func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		if afterHeaders.Load() {
			io.WriteString(conn, "HTTP/1.1 200 OK\r\nContent-Length: 512\r\n\r\npartial-body")
		}
		conn.Close()
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	hb := newHTTPBackend(t, ts.URL)

	for _, ah := range []bool{false, true} {
		afterHeaders.Store(ah)
		if _, err := hb.Get(kindTrace, "o"); !IsUnavailable(err) {
			t.Fatalf("disconnect (afterHeaders=%v): want unavailable, got %v", ah, err)
		}
	}
	if got := hb.Counters(); got.TransportErrs < 2 {
		t.Fatalf("disconnects not counted: %+v", got)
	}
}

// gatedCountBackend counts Gets and holds each one until the gate opens, so
// the coalescing test can pile followers onto a known-in-flight leader.
type gatedCountBackend struct {
	Backend
	gate chan struct{}
	mu   sync.Mutex
	gets int
}

func (g *gatedCountBackend) Get(kind, name string) ([]byte, error) {
	g.mu.Lock()
	g.gets++
	g.mu.Unlock()
	<-g.gate
	return g.Backend.Get(kind, name)
}

// TestHTTPBackendSingleFlight pins the wire-level get coalescing: N
// concurrent Gets for one object make exactly one server request, every
// caller sees the same bytes in a private slice, and the followers' wait
// time is accounted.
func TestHTTPBackendSingleFlight(t *testing.T) {
	t.Parallel()
	inner := NewMemBackend()
	payload := []byte("shared-artifact-bytes")
	if err := inner.Put(kindTrace, "obj", payload); err != nil {
		t.Fatal(err)
	}
	gc := &gatedCountBackend{Backend: inner, gate: make(chan struct{})}
	// The read-through memory cache would serve repeat gets without a wire
	// request; this test is about the wire, so it runs with the cache off.
	hb, err := NewHTTPBackend(newCacheServer(t, gc), HTTPOptions{RenewEvery: -1, ReadCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}

	const followers = 4
	results := make(chan []byte, followers+1)
	errs := make(chan error, followers+1)
	get := func() {
		got, err := hb.Get(kindTrace, "obj")
		results <- got
		errs <- err
	}
	go get() // the leader; blocks on the server-side gate
	waitFor(t, "leader in flight", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.inflight) == 1
	})
	for i := 0; i < followers; i++ {
		go get()
	}
	waitFor(t, "followers latched", func() bool {
		return hb.Counters().Coalesced == followers
	})
	close(gc.gate)

	var got [][]byte
	for i := 0; i < followers+1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("coalesced get: %v", err)
		}
		got = append(got, <-results)
	}
	for i, g := range got {
		if !bytes.Equal(g, payload) {
			t.Fatalf("caller %d got %q", i, g)
		}
	}
	// Slices are private: scribbling on one must not alias another.
	got[0][0] ^= 0xff
	for i := 1; i < len(got); i++ {
		if !bytes.Equal(got[i], payload) {
			t.Fatalf("caller %d shares caller 0's slice", i)
		}
	}

	gc.mu.Lock()
	serverGets := gc.gets
	gc.mu.Unlock()
	if serverGets != 1 {
		t.Fatalf("server saw %d gets, want 1", serverGets)
	}
	c := hb.Counters()
	if c.Gets != 1 || c.Coalesced != followers || c.CoalescedWaitNs == 0 {
		t.Fatalf("coalescing counters: %+v", c)
	}

	// The flight is gone afterwards: the next Get goes to the wire.
	if _, err := hb.Get(kindTrace, "obj"); err != nil {
		t.Fatal(err)
	}
	if hb.Counters().Gets != 2 {
		t.Fatalf("post-flight get did not hit the wire")
	}
}

// waitFor polls cond until true or the deadline, failing the test on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPBackendLockLease pins the lease protocol: renewal keeps a live
// holder's lock young (so it is never mistaken for abandoned), a holder that
// stops renewing ages out and is stolen through the ordinary BreakLock path,
// and a late release after the steal is a harmless no-op that cannot evict
// the new holder.
func TestHTTPBackendLockLease(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	renewing, err := NewHTTPBackend(url, HTTPOptions{RenewEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	silent := newHTTPBackend(t, url)

	// A renewing holder stays young.
	rel, err := renewing.TryLock("alive")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	age, err := silent.LockAge("alive")
	if err != nil {
		t.Fatal(err)
	}
	if age >= 350*time.Millisecond {
		t.Fatalf("renewals did not keep the lease young: age %v", age)
	}
	if renewing.Counters().Renews == 0 {
		t.Fatalf("renewer never ran")
	}
	rel()
	if _, err := silent.LockAge("alive"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lease survived release: %v", err)
	}

	// A holder that stops renewing ages out and is stolen.
	relDead, err := silent.TryLock("abandoned")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if age, err := silent.LockAge("abandoned"); err != nil || age < 40*time.Millisecond {
		t.Fatalf("silent lease not aging: %v, %v", age, err)
	}
	if err := silent.BreakLock("abandoned"); err != nil {
		t.Fatalf("steal: %v", err)
	}
	relNew, err := silent.TryLock("abandoned")
	if err != nil {
		t.Fatalf("lock not stealable after break: %v", err)
	}
	relDead() // the presumed-dead holder's late release
	if _, err := silent.LockAge("abandoned"); err != nil {
		t.Fatalf("late release evicted the new holder's lease: %v", err)
	}
	relNew()
}

// TestCacheServerRestartLockRecovery pins the server-restart story: a lock
// file left in a DirBackend by a previous server life is visible through a
// fresh server (no lease on the books), ages by file mtime, and is breakable.
func TestCacheServerRestartLockRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	db, err := NewDirBackend(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.TryLock("leftover"); err != nil {
		t.Fatal(err) // deliberately never released: the crashed server's state
	}

	db2, err := NewDirBackend(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	hb := newHTTPBackend(t, newCacheServer(t, db2))
	if _, err := hb.TryLock("leftover"); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("leftover lock invisible through fresh server: %v", err)
	}
	if age, err := hb.LockAge("leftover"); err != nil || age < 0 {
		t.Fatalf("leftover lock age: %v, %v", age, err)
	}
	if err := hb.BreakLock("leftover"); err != nil {
		t.Fatal(err)
	}
	rel, err := hb.TryLock("leftover")
	if err != nil {
		t.Fatalf("lock not recoverable after break: %v", err)
	}
	rel()
}

// TestCacheOverHTTPBackend runs the full Cache result tier across the wire:
// store through one client, adopt and load through a second client process'
// worth of state, counters visible via HTTPCounters.
func TestCacheOverHTTPBackend(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	c, err := OpenBackend(newHTTPBackend(t, url), Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := SumID("http-result")
	want := &CellResult{Checksum: 0xbeef}
	if err := c.StoreResult(id, want); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	if got, err := c.LoadResult(id); err != nil || got.Checksum != want.Checksum {
		t.Fatalf("LoadResult: %+v, %v", got, err)
	}
	if _, err := c.LoadResult(SumID("other")); !errors.Is(err, ErrMiss) {
		t.Fatalf("miss: %v", err)
	}
	if hc, ok := c.HTTPCounters(); !ok || hc.Puts == 0 || hc.Gets == 0 {
		t.Fatalf("HTTPCounters: %+v, %v", hc, ok)
	}

	// A second Cache (a fresh process) adopts the entry via List.
	c2, err := OpenBackend(newHTTPBackend(t, url), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c2.LoadResult(id); err != nil || got.Checksum != want.Checksum {
		t.Fatalf("second cache LoadResult: %+v, %v", got, err)
	}

	// A directory-backed cache reports no HTTP counters.
	cd, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cd.HTTPCounters(); ok {
		t.Fatalf("directory cache claims HTTP counters")
	}
}

// TestCacheLockFailOpenOverDeadServer pins the distributed no-stranded-waiter
// guarantee: with the cache server gone, TryLock elects the caller leader and
// WaitUnlocked returns without waiting out LockWait.
func TestCacheLockFailOpenOverDeadServer(t *testing.T) {
	t.Parallel()
	mux := http.NewServeMux()
	NewCacheServer(NewMemBackend()).Register(mux)
	ts := httptest.NewServer(mux)
	hb := newHTTPBackend(t, ts.URL)
	c, err := OpenBackend(hb, Options{
		Retries:  -1,
		LockWait: 10 * time.Second, // a visible stall if anything waited
	})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	id := SumID("dead-server-lock")
	start := time.Now()
	release, ok := c.TryLock(id)
	if !ok {
		t.Fatalf("dead lock plane must fail open to leader")
	}
	release()
	c.WaitUnlocked(id)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lock ops stalled %v against a dead server", elapsed)
	}
}

// TestHTTPBackendChaos runs the chaos injector on both sides of the wire.
// Client-side: the PR 7 injector wraps HTTPBackend under the middleware
// stack exactly as it wraps a directory. Server-side: a CacheServer over a
// chaotic backend turns injected faults into 5xx responses that come back
// typed. Neither panics; locks fail open; degraded ops are counted.
func TestHTTPBackendChaos(t *testing.T) {
	t.Parallel()

	t.Run("client-side", func(t *testing.T) {
		t.Parallel()
		hb := newHTTPBackend(t, newCacheServer(t, NewMemBackend()))
		c, err := OpenBackend(hb, Options{
			Chaos:            &ChaosSpec{Err: 1, Torn: 1, Corrupt: 1, NoSpace: 1, LockStall: 1, Delay: time.Microsecond},
			Retries:          -1,
			BreakerThreshold: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		id := SumID("chaos-over-http")
		if err := c.StoreResult(id, &CellResult{Checksum: 1}); err == nil {
			t.Fatalf("store under total chaos should fail")
		}
		if _, err := c.LoadResult(id); err == nil {
			t.Fatalf("load under total chaos should fail")
		}
		if rel, ok := c.TryLock(id); !ok {
			t.Fatalf("lock must fail open")
		} else {
			rel()
		}
		s := c.StackCounters()
		if s.ChaosErrs == 0 && s.ChaosNoSpace == 0 {
			t.Fatalf("chaos injected nothing: %+v", s)
		}
	})

	t.Run("server-side", func(t *testing.T) {
		t.Parallel()
		st := &StackStats{}
		ch := NewChaos(NewMemBackend(), &ChaosSpec{Err: 0.5, NoSpace: 0.5, Seed: 11}, st)
		hb := newHTTPBackend(t, newCacheServer(t, ch))
		var sawUnavailable, sawNoSpace, sawOK bool
		for i := 0; i < 64; i++ {
			err := hb.Put(kindTrace, fmt.Sprintf("o%d", i), []byte("payload"))
			switch {
			case err == nil:
				sawOK = true
			case errors.Is(err, ErrNoSpace):
				sawNoSpace = true
			case IsUnavailable(err):
				sawUnavailable = true
			default:
				t.Fatalf("untyped error escaped the wire: %v", err)
			}
		}
		if !sawUnavailable || !sawNoSpace || !sawOK {
			t.Fatalf("fault mix not observed: unavailable=%v nospace=%v ok=%v",
				sawUnavailable, sawNoSpace, sawOK)
		}
	})
}

// TestCacheServerValidation pins the request validation that keeps a
// DirBackend-backed server inside its own directory: unknown kinds and
// malformed names are rejected with 400 before any backend call.
func TestCacheServerValidation(t *testing.T) {
	t.Parallel()
	url := newCacheServer(t, NewMemBackend())
	for _, tc := range []struct {
		method, path string
	}{
		{"GET", "/cache/v1/obj/bogus/name"},
		{"PUT", "/cache/v1/obj/locks/escape"},
		{"GET", "/cache/v1/list/bogus"},
		{"GET", "/cache/v1/obj/trace/" + "%2e%2e"},
		{"POST", "/cache/v1/lock/.hidden"},
	} {
		req, err := http.NewRequest(tc.method, url+tc.path, bytes.NewReader([]byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", tc.method, tc.path, resp.StatusCode)
		}
	}

	// The health route answers with the service identity.
	resp, err := http.Get(url + "/cache/v1/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("rest-cache")) {
		t.Fatalf("health route: %d %q", resp.StatusCode, body)
	}
}
