// HTTPBackend speaks the CacheServer wire protocol and presents it as an
// ordinary Backend, so a remote artifact store slots under the hardening
// stack (breaker → retry → timeout) exactly like a local directory: every
// transport or server failure surfaces as *UnavailableError (the only class
// the retry layer touches), 404/507/423 map straight back onto the typed
// taxonomy, and lock failures stay fail-open at the Cache layer.
//
// Two network-only concerns live here rather than in the middleware:
//
//   - Single-flight gets. Parallel sweep workers routinely ask for the same
//     artifact at the same moment (every worker warming the same trace).
//     Identical concurrent Gets coalesce onto one wire request; followers
//     wait for the leader's bytes and receive a private copy. The wait time
//     is accounted (CoalescedWaitNs) so the stderr summary can show it.
//
//   - Lock leases. The server grants leases that expire when the holder
//     stops renewing; TryLock starts a background renewer that keeps the
//     lease young until release. A killed process simply stops renewing and
//     the server-side age grows until another client steals the lock — the
//     same abandoned-leader recovery as local lock files.
package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLockRenew is how often a held lock lease is refreshed. It must sit
// well under Options.StaleLockAge (default 10m) so a live holder is never
// mistaken for a dead one.
const DefaultLockRenew = 15 * time.Second

// HTTPOptions tunes an HTTPBackend.
type HTTPOptions struct {
	// Client overrides the HTTP client (nil = a pooled keep-alive client).
	Client *http.Client
	// RenewEvery overrides the lock lease renewal period. Zero means
	// DefaultLockRenew; negative disables auto-renewal (tests).
	RenewEvery time.Duration
}

// HTTPBackend is a Backend served by a remote CacheServer.
type HTTPBackend struct {
	base  string // e.g. "http://127.0.0.1:7070", no trailing slash
	hc    *http.Client
	renew time.Duration
	st    httpStats

	mu       sync.Mutex
	inflight map[string]*getCall // kind/name → in-progress wire Get
}

// getCall is one in-flight wire Get that followers can latch onto.
type getCall struct {
	done chan struct{}
	data []byte
	err  error
}

// httpStats are the backend's wire counters (persist.httpbackend.* in sweep
// metrics). Atomics: Gets race with each other by design.
type httpStats struct {
	gets, puts, deletes, lists       atomic.Uint64
	lockOps, renews                  atomic.Uint64
	coalesced, coalescedWaitNs       atomic.Uint64
	transportErrs, bytesIn, bytesOut atomic.Uint64
}

// HTTPCounters is a point-in-time snapshot of an HTTPBackend's wire traffic.
type HTTPCounters struct {
	Gets, Puts, Deletes, Lists uint64 // wire requests by verb
	LockOps                    uint64 // acquires + releases + breaks + age probes
	Renews                     uint64 // lease renewal attempts
	Coalesced                  uint64 // Gets served from another caller's flight
	CoalescedWaitNs            uint64 // total time spent waiting on those flights
	TransportErrs              uint64 // requests that died before a status arrived
	BytesIn, BytesOut          uint64 // payload bytes received / sent
}

// NewHTTPBackend connects to a CacheServer at baseURL (scheme://host[:port],
// any path prefix before /cache/v1/ is kept). It performs no I/O; the first
// request discovers whether the server is reachable.
func NewHTTPBackend(baseURL string, opt HTTPOptions) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("persist: bad cache URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("persist: cache URL %q must be http(s)://host[:port]", baseURL)
	}
	hc := opt.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	renew := opt.RenewEvery
	if renew == 0 {
		renew = DefaultLockRenew
	}
	base := u.Scheme + "://" + u.Host + u.Path
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &HTTPBackend{
		base:     base,
		hc:       hc,
		renew:    renew,
		inflight: make(map[string]*getCall),
	}, nil
}

// Counters snapshots the wire traffic so far.
func (b *HTTPBackend) Counters() HTTPCounters {
	return HTTPCounters{
		Gets:            b.st.gets.Load(),
		Puts:            b.st.puts.Load(),
		Deletes:         b.st.deletes.Load(),
		Lists:           b.st.lists.Load(),
		LockOps:         b.st.lockOps.Load(),
		Renews:          b.st.renews.Load(),
		Coalesced:       b.st.coalesced.Load(),
		CoalescedWaitNs: b.st.coalescedWaitNs.Load(),
		TransportErrs:   b.st.transportErrs.Load(),
		BytesIn:         b.st.bytesIn.Load(),
		BytesOut:        b.st.bytesOut.Load(),
	}
}

// do performs one wire request and returns (status, body, nil), or a non-nil
// error when no well-formed response arrived (connection refused, reset
// mid-body, or a body shorter than its declared Content-Length — the torn
// response a dying server or proxy produces).
func (b *HTTPBackend) do(method, path string, q url.Values, body []byte) (int, []byte, error) {
	u := b.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		b.st.transportErrs.Add(1)
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.st.transportErrs.Add(1)
		return 0, nil, fmt.Errorf("reading response: %w", err)
	}
	if resp.ContentLength >= 0 && int64(len(data)) != resp.ContentLength {
		b.st.transportErrs.Add(1)
		return 0, nil, fmt.Errorf("torn response: read %d of %d declared bytes", len(data), resp.ContentLength)
	}
	b.st.bytesIn.Add(uint64(len(data)))
	b.st.bytesOut.Add(uint64(len(body)))
	return resp.StatusCode, data, nil
}

// statusErr summarizes an unexpected status for the Unavailable cause chain.
func statusErr(status int, body []byte) error {
	msg := string(bytes.TrimSpace(body))
	if len(msg) > 120 {
		msg = msg[:120]
	}
	if msg == "" {
		return fmt.Errorf("server returned %d", status)
	}
	return fmt.Errorf("server returned %d: %s", status, msg)
}

func objPath(kind, name string) string {
	return "/cache/v1/obj/" + url.PathEscape(kind) + "/" + url.PathEscape(name)
}

func lockPath(name string) string {
	return "/cache/v1/lock/" + url.PathEscape(name)
}

// Get fetches one object, coalescing concurrent identical requests onto a
// single wire round trip.
func (b *HTTPBackend) Get(kind, name string) ([]byte, error) {
	key := kind + "/" + name
	b.mu.Lock()
	if c, ok := b.inflight[key]; ok {
		b.mu.Unlock()
		b.st.coalesced.Add(1)
		start := time.Now()
		<-c.done
		b.st.coalescedWaitNs.Add(uint64(time.Since(start)))
		if c.err != nil {
			return nil, c.err
		}
		out := make([]byte, len(c.data))
		copy(out, c.data)
		return out, nil
	}
	c := &getCall{done: make(chan struct{})}
	b.inflight[key] = c
	b.mu.Unlock()

	c.data, c.err = b.getWire(kind, name)
	b.mu.Lock()
	delete(b.inflight, key)
	b.mu.Unlock()
	close(c.done)
	// The leader keeps the original slice; only followers copy.
	return c.data, c.err
}

func (b *HTTPBackend) getWire(kind, name string) ([]byte, error) {
	b.st.gets.Add(1)
	status, data, err := b.do(http.MethodGet, objPath(kind, name), nil, nil)
	if err != nil {
		return nil, unavailable("get", kind, name, err)
	}
	switch status {
	case http.StatusOK:
		return data, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, unavailable("get", kind, name, statusErr(status, data))
	}
}

// Put publishes one object.
func (b *HTTPBackend) Put(kind, name string, data []byte) error {
	b.st.puts.Add(1)
	status, body, err := b.do(http.MethodPut, objPath(kind, name), nil, data)
	if err != nil {
		return unavailable("put", kind, name, err)
	}
	switch status {
	case http.StatusNoContent:
		return nil
	case http.StatusInsufficientStorage:
		return ErrNoSpace
	default:
		return unavailable("put", kind, name, statusErr(status, body))
	}
}

// Delete removes one object; absent objects are not an error.
func (b *HTTPBackend) Delete(kind, name string) error {
	b.st.deletes.Add(1)
	status, body, err := b.do(http.MethodDelete, objPath(kind, name), nil, nil)
	if err != nil {
		return unavailable("delete", kind, name, err)
	}
	switch status {
	case http.StatusNoContent, http.StatusNotFound:
		return nil
	default:
		return unavailable("delete", kind, name, statusErr(status, body))
	}
}

// List enumerates one kind.
func (b *HTTPBackend) List(kind string) ([]Stat, error) {
	b.st.lists.Add(1)
	status, data, err := b.do(http.MethodGet, "/cache/v1/list/"+url.PathEscape(kind), nil, nil)
	if err != nil {
		return nil, unavailable("list", kind, "", err)
	}
	if status != http.StatusOK {
		return nil, unavailable("list", kind, "", statusErr(status, data))
	}
	var wire []wireStat
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, unavailable("list", kind, "", fmt.Errorf("malformed listing: %w", err))
	}
	out := make([]Stat, 0, len(wire))
	for _, ws := range wire {
		out = append(out, Stat{Name: ws.Name, Bytes: ws.Bytes, ModTime: time.Unix(0, ws.ModUnixNS)})
	}
	return out, nil
}

// TryLock acquires a lease on name. On success the returned release function
// stops the renewer and releases the lease (best-effort: release after a
// steal or a dead server must never blow up — the lease ages out anyway).
func (b *HTTPBackend) TryLock(name string) (func(), error) {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodPost, lockPath(name), nil, nil)
	if err != nil {
		return nil, unavailable("lock", "", name, err)
	}
	switch status {
	case http.StatusOK:
		var wl wireLease
		if json.Unmarshal(data, &wl) != nil || wl.Lease == "" {
			return nil, unavailable("lock", "", name, errors.New("malformed lease grant"))
		}
		return b.holdLease(name, wl.Lease), nil
	case http.StatusLocked:
		return nil, ErrLockHeld
	default:
		return nil, unavailable("lock", "", name, statusErr(status, data))
	}
}

// holdLease starts the background renewer (when enabled) and returns the
// idempotent release hook.
func (b *HTTPBackend) holdLease(name, lease string) func() {
	stop := make(chan struct{})
	renewerDone := make(chan struct{})
	if b.renew > 0 {
		go func() {
			defer close(renewerDone)
			t := time.NewTicker(b.renew)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					b.st.renews.Add(1)
					q := url.Values{"lease": {lease}}
					status, _, err := b.do(http.MethodPost, lockPath(name), q, nil)
					if err == nil && status == http.StatusConflict {
						// Lease stolen (we were presumed dead): stop renewing;
						// the eventual release is a harmless no-op.
						return
					}
				}
			}
		}()
	} else {
		close(renewerDone)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			<-renewerDone
			b.st.lockOps.Add(1)
			q := url.Values{"lease": {lease}}
			b.do(http.MethodDelete, lockPath(name), q, nil) // best-effort
		})
	}
}

// LockAge reports how long the current lease on name has gone unrenewed.
func (b *HTTPBackend) LockAge(name string) (time.Duration, error) {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodGet, lockPath(name), nil, nil)
	if err != nil {
		return 0, unavailable("lockage", "", name, err)
	}
	switch status {
	case http.StatusOK:
		var wa wireAge
		if err := json.Unmarshal(data, &wa); err != nil {
			return 0, unavailable("lockage", "", name, fmt.Errorf("malformed age: %w", err))
		}
		return time.Duration(wa.AgeNS), nil
	case http.StatusNotFound:
		return 0, ErrNotFound
	default:
		return 0, unavailable("lockage", "", name, statusErr(status, data))
	}
}

// BreakLock force-releases name's lease (stale-holder recovery).
func (b *HTTPBackend) BreakLock(name string) error {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodDelete, lockPath(name), nil, nil)
	if err != nil {
		return unavailable("breaklock", "", name, err)
	}
	switch status {
	case http.StatusNoContent, http.StatusNotFound:
		return nil
	default:
		return unavailable("breaklock", "", name, statusErr(status, data))
	}
}
