// HTTPBackend speaks the CacheServer wire protocol and presents it as an
// ordinary Backend, so a remote artifact store slots under the hardening
// stack (breaker → retry → timeout) exactly like a local directory: every
// transport or server failure surfaces as *UnavailableError (the only class
// the retry layer touches), 404/507/423 map straight back onto the typed
// taxonomy, and lock failures stay fail-open at the Cache layer.
//
// Two network-only concerns live here rather than in the middleware:
//
//   - Single-flight gets. Parallel sweep workers routinely ask for the same
//     artifact at the same moment (every worker warming the same trace).
//     Identical concurrent Gets coalesce onto one wire request; followers
//     wait for the leader's bytes and receive a private copy. The wait time
//     is accounted (CoalescedWaitNs) so the stderr summary can show it.
//
//   - Lock leases. The server grants leases that expire when the holder
//     stops renewing; TryLock starts a background renewer that keeps the
//     lease young until release. A killed process simply stops renewing and
//     the server-side age grows until another client steals the lock — the
//     same abandoned-leader recovery as local lock files.
package persist

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLockRenew is how often a held lock lease is refreshed. It must sit
// well under Options.StaleLockAge (default 10m) so a live holder is never
// mistaken for a dead one.
const DefaultLockRenew = 15 * time.Second

// DefaultReadCacheBytes bounds the client-side read-through cache. Cell
// results are small (a sweep's worth fits in a few MiB); one default-sized
// trace block is 2 MiB, so the default holds a healthy working set without
// competing with the sweep's own memory.
const DefaultReadCacheBytes = 64 << 20

// HTTPOptions tunes an HTTPBackend.
type HTTPOptions struct {
	// Client overrides the HTTP client (nil = a pooled keep-alive client).
	Client *http.Client
	// RenewEvery overrides the lock lease renewal period. Zero means
	// DefaultLockRenew; negative disables auto-renewal (tests).
	RenewEvery time.Duration
	// ReadCacheBytes bounds the client-side read-through memory cache over
	// trace and result objects. Zero means DefaultReadCacheBytes; negative
	// disables the cache.
	ReadCacheBytes int64
}

// HTTPBackend is a Backend served by a remote CacheServer.
type HTTPBackend struct {
	base  string // e.g. "http://127.0.0.1:7070", no trailing slash
	hc    *http.Client
	renew time.Duration
	st    httpStats

	mu       sync.Mutex
	inflight map[string]*getCall // kind/name → in-progress wire Get

	// Read-through cache over immutable object kinds. Content addressing
	// makes entries immutable — a name never maps to different bytes — so
	// there is no invalidation, only LRU eviction under rcMax.
	rcMax  int64
	rcMu   sync.Mutex
	rcSize int64
	rc     map[string]*list.Element // kind/name → rcList element
	rcList *list.List               // front = most recently used
}

// rcEntry is one cached object body.
type rcEntry struct {
	key  string
	data []byte
}

// cacheableKind reports whether an object kind's bodies are safe to serve
// from memory. Meta objects (manifests, completion markers) mutate in place
// and must always cross the wire.
func cacheableKind(kind string) bool {
	return kind == kindTrace || kind == kindResult
}

// getCall is one in-flight wire Get that followers can latch onto.
type getCall struct {
	done chan struct{}
	data []byte
	err  error
}

// httpStats are the backend's wire counters (persist.httpbackend.* in sweep
// metrics). Atomics: Gets race with each other by design.
type httpStats struct {
	gets, puts, deletes, lists       atomic.Uint64
	lockOps, renews                  atomic.Uint64
	coalesced, coalescedWaitNs       atomic.Uint64
	transportErrs, bytesIn, bytesOut atomic.Uint64
	readHits, readMisses, readSaved  atomic.Uint64
}

// HTTPCounters is a point-in-time snapshot of an HTTPBackend's wire traffic.
type HTTPCounters struct {
	Gets, Puts, Deletes, Lists uint64 // wire requests by verb
	LockOps                    uint64 // acquires + releases + breaks + age probes
	Renews                     uint64 // lease renewal attempts
	Coalesced                  uint64 // Gets served from another caller's flight
	CoalescedWaitNs            uint64 // total time spent waiting on those flights
	TransportErrs              uint64 // requests that died before a status arrived
	BytesIn, BytesOut          uint64 // payload bytes received / sent
	ReadHits                   uint64 // Gets served from the read-through cache
	ReadMisses                 uint64 // cacheable Gets that had to cross the wire
	ReadSavedBytes             uint64 // payload bytes served without a wire trip
}

// NewHTTPBackend connects to a CacheServer at baseURL (scheme://host[:port],
// any path prefix before /cache/v1/ is kept). It performs no I/O; the first
// request discovers whether the server is reachable.
func NewHTTPBackend(baseURL string, opt HTTPOptions) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("persist: bad cache URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("persist: cache URL %q must be http(s)://host[:port]", baseURL)
	}
	hc := opt.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	renew := opt.RenewEvery
	if renew == 0 {
		renew = DefaultLockRenew
	}
	rcMax := opt.ReadCacheBytes
	if rcMax == 0 {
		rcMax = DefaultReadCacheBytes
	}
	if rcMax < 0 {
		rcMax = 0
	}
	base := u.Scheme + "://" + u.Host + u.Path
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &HTTPBackend{
		base:     base,
		hc:       hc,
		renew:    renew,
		inflight: make(map[string]*getCall),
		rcMax:    rcMax,
		rc:       make(map[string]*list.Element),
		rcList:   list.New(),
	}, nil
}

// Counters snapshots the wire traffic so far.
func (b *HTTPBackend) Counters() HTTPCounters {
	return HTTPCounters{
		Gets:            b.st.gets.Load(),
		Puts:            b.st.puts.Load(),
		Deletes:         b.st.deletes.Load(),
		Lists:           b.st.lists.Load(),
		LockOps:         b.st.lockOps.Load(),
		Renews:          b.st.renews.Load(),
		Coalesced:       b.st.coalesced.Load(),
		CoalescedWaitNs: b.st.coalescedWaitNs.Load(),
		TransportErrs:   b.st.transportErrs.Load(),
		BytesIn:         b.st.bytesIn.Load(),
		BytesOut:        b.st.bytesOut.Load(),
		ReadHits:        b.st.readHits.Load(),
		ReadMisses:      b.st.readMisses.Load(),
		ReadSavedBytes:  b.st.readSaved.Load(),
	}
}

// do performs one wire request and returns (status, body, nil), or a non-nil
// error when no well-formed response arrived (connection refused, reset
// mid-body, or a body shorter than its declared Content-Length — the torn
// response a dying server or proxy produces).
func (b *HTTPBackend) do(method, path string, q url.Values, body []byte) (int, []byte, error) {
	u := b.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		b.st.transportErrs.Add(1)
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.st.transportErrs.Add(1)
		return 0, nil, fmt.Errorf("reading response: %w", err)
	}
	if resp.ContentLength >= 0 && int64(len(data)) != resp.ContentLength {
		b.st.transportErrs.Add(1)
		return 0, nil, fmt.Errorf("torn response: read %d of %d declared bytes", len(data), resp.ContentLength)
	}
	b.st.bytesIn.Add(uint64(len(data)))
	b.st.bytesOut.Add(uint64(len(body)))
	return resp.StatusCode, data, nil
}

// statusErr summarizes an unexpected status for the Unavailable cause chain.
func statusErr(status int, body []byte) error {
	msg := string(bytes.TrimSpace(body))
	if len(msg) > 120 {
		msg = msg[:120]
	}
	if msg == "" {
		return fmt.Errorf("server returned %d", status)
	}
	return fmt.Errorf("server returned %d: %s", status, msg)
}

func objPath(kind, name string) string {
	return "/cache/v1/obj/" + url.PathEscape(kind) + "/" + url.PathEscape(name)
}

func lockPath(name string) string {
	return "/cache/v1/lock/" + url.PathEscape(name)
}

// rcGet returns a private copy of a cached body, or nil on miss. The copy
// keeps the resident slice unreachable from callers: whatever the codec
// layer does with its bytes, the cache stays poison-free.
func (b *HTTPBackend) rcGet(key string) []byte {
	if b.rcMax == 0 {
		return nil
	}
	b.rcMu.Lock()
	defer b.rcMu.Unlock()
	el, ok := b.rc[key]
	if !ok {
		return nil
	}
	b.rcList.MoveToFront(el)
	data := el.Value.(*rcEntry).data
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// rcPut caches a private copy of body under key, evicting LRU entries to
// stay under the byte bound. Oversized objects simply aren't cached.
func (b *HTTPBackend) rcPut(key string, body []byte) {
	if b.rcMax == 0 || int64(len(body)) > b.rcMax {
		return
	}
	data := make([]byte, len(body))
	copy(data, body)
	b.rcMu.Lock()
	defer b.rcMu.Unlock()
	if _, ok := b.rc[key]; ok {
		return // content-addressed: an existing entry is already these bytes
	}
	b.rc[key] = b.rcList.PushFront(&rcEntry{key: key, data: data})
	b.rcSize += int64(len(data))
	for b.rcSize > b.rcMax {
		el := b.rcList.Back()
		ent := el.Value.(*rcEntry)
		b.rcList.Remove(el)
		delete(b.rc, ent.key)
		b.rcSize -= int64(len(ent.data))
	}
}

// rcDrop invalidates one cached body. The artifact tiers are content-
// addressed, so a same-name overwrite with different bytes "cannot happen" —
// but the Backend contract allows it, and this client's own writes are free
// to keep the memory tier honest.
func (b *HTTPBackend) rcDrop(key string) {
	if b.rcMax == 0 {
		return
	}
	b.rcMu.Lock()
	defer b.rcMu.Unlock()
	if el, ok := b.rc[key]; ok {
		ent := el.Value.(*rcEntry)
		b.rcList.Remove(el)
		delete(b.rc, ent.key)
		b.rcSize -= int64(len(ent.data))
	}
}

// Get fetches one object — from the read-through cache when the kind is
// immutable, coalescing concurrent identical wire requests otherwise.
func (b *HTTPBackend) Get(kind, name string) ([]byte, error) {
	key := kind + "/" + name
	if cacheableKind(kind) {
		if data := b.rcGet(key); data != nil {
			b.st.readHits.Add(1)
			b.st.readSaved.Add(uint64(len(data)))
			return data, nil
		}
		b.st.readMisses.Add(1)
	}
	b.mu.Lock()
	if c, ok := b.inflight[key]; ok {
		b.mu.Unlock()
		b.st.coalesced.Add(1)
		start := time.Now()
		<-c.done
		b.st.coalescedWaitNs.Add(uint64(time.Since(start)))
		if c.err != nil {
			return nil, c.err
		}
		out := make([]byte, len(c.data))
		copy(out, c.data)
		return out, nil
	}
	c := &getCall{done: make(chan struct{})}
	b.inflight[key] = c
	b.mu.Unlock()

	c.data, c.err = b.getWire(kind, name)
	b.mu.Lock()
	delete(b.inflight, key)
	b.mu.Unlock()
	close(c.done)
	if c.err == nil && cacheableKind(kind) {
		b.rcPut(key, c.data)
	}
	// The leader keeps the original slice; only followers copy.
	return c.data, c.err
}

func (b *HTTPBackend) getWire(kind, name string) ([]byte, error) {
	b.st.gets.Add(1)
	status, data, err := b.do(http.MethodGet, objPath(kind, name), nil, nil)
	if err != nil {
		return nil, unavailable("get", kind, name, err)
	}
	switch status {
	case http.StatusOK:
		return data, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, unavailable("get", kind, name, statusErr(status, data))
	}
}

// Put publishes one object.
func (b *HTTPBackend) Put(kind, name string, data []byte) error {
	b.st.puts.Add(1)
	if cacheableKind(kind) {
		b.rcDrop(kind + "/" + name)
	}
	status, body, err := b.do(http.MethodPut, objPath(kind, name), nil, data)
	if err != nil {
		return unavailable("put", kind, name, err)
	}
	switch status {
	case http.StatusNoContent:
		return nil
	case http.StatusInsufficientStorage:
		return ErrNoSpace
	default:
		return unavailable("put", kind, name, statusErr(status, body))
	}
}

// Delete removes one object; absent objects are not an error.
func (b *HTTPBackend) Delete(kind, name string) error {
	b.st.deletes.Add(1)
	if cacheableKind(kind) {
		b.rcDrop(kind + "/" + name)
	}
	status, body, err := b.do(http.MethodDelete, objPath(kind, name), nil, nil)
	if err != nil {
		return unavailable("delete", kind, name, err)
	}
	switch status {
	case http.StatusNoContent, http.StatusNotFound:
		return nil
	default:
		return unavailable("delete", kind, name, statusErr(status, body))
	}
}

// List enumerates one kind.
func (b *HTTPBackend) List(kind string) ([]Stat, error) {
	b.st.lists.Add(1)
	status, data, err := b.do(http.MethodGet, "/cache/v1/list/"+url.PathEscape(kind), nil, nil)
	if err != nil {
		return nil, unavailable("list", kind, "", err)
	}
	if status != http.StatusOK {
		return nil, unavailable("list", kind, "", statusErr(status, data))
	}
	var wire []wireStat
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, unavailable("list", kind, "", fmt.Errorf("malformed listing: %w", err))
	}
	out := make([]Stat, 0, len(wire))
	for _, ws := range wire {
		out = append(out, Stat{Name: ws.Name, Bytes: ws.Bytes, ModTime: time.Unix(0, ws.ModUnixNS)})
	}
	return out, nil
}

// TryLock acquires a lease on name. On success the returned release function
// stops the renewer and releases the lease (best-effort: release after a
// steal or a dead server must never blow up — the lease ages out anyway).
func (b *HTTPBackend) TryLock(name string) (func(), error) {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodPost, lockPath(name), nil, nil)
	if err != nil {
		return nil, unavailable("lock", "", name, err)
	}
	switch status {
	case http.StatusOK:
		var wl wireLease
		if json.Unmarshal(data, &wl) != nil || wl.Lease == "" {
			return nil, unavailable("lock", "", name, errors.New("malformed lease grant"))
		}
		return b.holdLease(name, wl.Lease), nil
	case http.StatusLocked:
		return nil, ErrLockHeld
	default:
		return nil, unavailable("lock", "", name, statusErr(status, data))
	}
}

// holdLease starts the background renewer (when enabled) and returns the
// idempotent release hook.
func (b *HTTPBackend) holdLease(name, lease string) func() {
	return b.newLease(name, lease).Release
}

// ErrLeaseLost reports that a lease renewal was rejected: the holder was
// presumed dead, its lock stolen and possibly re-granted. The only correct
// response is to abandon the protected work.
var ErrLeaseLost = errors.New("persist: lease lost to a stale-lock takeover")

// Lease is one held lock lease whose loss is observable: when a renewal is
// rejected (our liveness clock aged out and another client stole the lock),
// Lost() becomes readable and the holder must abandon the unit it was
// protecting — publishing under a lost lease races the thief.
type Lease struct {
	b    *HTTPBackend
	name string
	tok  string

	stop        chan struct{}
	renewerDone chan struct{}
	lost        chan struct{}
	lostOnce    sync.Once
	once        sync.Once
}

// newLease wires up the lease bookkeeping and, when auto-renewal is enabled,
// its background renewer.
func (b *HTTPBackend) newLease(name, tok string) *Lease {
	l := &Lease{
		b: b, name: name, tok: tok,
		stop:        make(chan struct{}),
		renewerDone: make(chan struct{}),
		lost:        make(chan struct{}),
	}
	if b.renew > 0 {
		go func() {
			defer close(l.renewerDone)
			t := time.NewTicker(b.renew)
			defer t.Stop()
			for {
				select {
				case <-l.stop:
					return
				case <-t.C:
					if err := l.Renew(); errors.Is(err, ErrLeaseLost) {
						return
					}
				}
			}
		}()
	} else {
		close(l.renewerDone)
	}
	return l
}

// Lost is readable once the lease has been stolen. It never fires for a
// lease released normally.
func (l *Lease) Lost() <-chan struct{} { return l.lost }

// Renew refreshes the lease's liveness clock once, synchronously. It
// returns ErrLeaseLost (and marks Lost) when the server no longer
// recognizes the token; transient failures return an Unavailable error and
// leave the lease's standing unknown — the next renewal decides.
func (l *Lease) Renew() error {
	l.b.st.renews.Add(1)
	q := url.Values{"lease": {l.tok}}
	status, data, err := l.b.do(http.MethodPost, lockPath(l.name), q, nil)
	if err != nil {
		return unavailable("renew", "", l.name, err)
	}
	switch status {
	case http.StatusNoContent:
		return nil
	case http.StatusConflict:
		l.lostOnce.Do(func() { close(l.lost) })
		return ErrLeaseLost
	default:
		return unavailable("renew", "", l.name, statusErr(status, data))
	}
}

// Release stops the renewer and gives the lease back (best-effort and
// idempotent: release after a steal or against a dead server must never
// blow up — the lease ages out regardless).
func (l *Lease) Release() {
	l.once.Do(func() {
		close(l.stop)
		<-l.renewerDone
		l.b.st.lockOps.Add(1)
		q := url.Values{"lease": {l.tok}}
		l.b.do(http.MethodDelete, lockPath(l.name), q, nil) // best-effort
	})
}

// TryLease is TryLock with the lease exposed, for callers that need to
// observe loss (the elastic scheduler) instead of just holding a lock.
func (b *HTTPBackend) TryLease(name string) (*Lease, error) {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodPost, lockPath(name), nil, nil)
	if err != nil {
		return nil, unavailable("lock", "", name, err)
	}
	switch status {
	case http.StatusOK:
		var wl wireLease
		if json.Unmarshal(data, &wl) != nil || wl.Lease == "" {
			return nil, unavailable("lock", "", name, errors.New("malformed lease grant"))
		}
		return b.newLease(name, wl.Lease), nil
	case http.StatusLocked:
		return nil, ErrLockHeld
	default:
		return nil, unavailable("lock", "", name, statusErr(status, data))
	}
}

// EpochWait long-polls the server's scheduling-state change counter: it
// returns as soon as the epoch exceeds after, or with the current epoch
// once max elapses. A zero max asks without parking.
func (b *HTTPBackend) EpochWait(after uint64, max time.Duration) (uint64, error) {
	q := url.Values{
		"after":   {strconv.FormatUint(after, 10)},
		"wait_ms": {strconv.FormatInt(max.Milliseconds(), 10)},
	}
	status, data, err := b.do(http.MethodGet, "/cache/v1/epoch", q, nil)
	if err != nil {
		return after, unavailable("epoch", "", "", err)
	}
	if status != http.StatusOK {
		return after, unavailable("epoch", "", "", statusErr(status, data))
	}
	var we wireEpoch
	if err := json.Unmarshal(data, &we); err != nil {
		return after, unavailable("epoch", "", "", fmt.Errorf("malformed epoch: %w", err))
	}
	return we.Epoch, nil
}

// LockAge reports how long the current lease on name has gone unrenewed.
func (b *HTTPBackend) LockAge(name string) (time.Duration, error) {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodGet, lockPath(name), nil, nil)
	if err != nil {
		return 0, unavailable("lockage", "", name, err)
	}
	switch status {
	case http.StatusOK:
		var wa wireAge
		if err := json.Unmarshal(data, &wa); err != nil {
			return 0, unavailable("lockage", "", name, fmt.Errorf("malformed age: %w", err))
		}
		return time.Duration(wa.AgeNS), nil
	case http.StatusNotFound:
		return 0, ErrNotFound
	default:
		return 0, unavailable("lockage", "", name, statusErr(status, data))
	}
}

// BreakLock force-releases name's lease (stale-holder recovery).
func (b *HTTPBackend) BreakLock(name string) error {
	b.st.lockOps.Add(1)
	status, data, err := b.do(http.MethodDelete, lockPath(name), nil, nil)
	if err != nil {
		return unavailable("breaklock", "", name, err)
	}
	switch status {
	case http.StatusNoContent, http.StatusNotFound:
		return nil
	default:
		return unavailable("breaklock", "", name, statusErr(status, data))
	}
}
