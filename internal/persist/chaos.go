// The deterministic fault injector: a Backend wrapper that makes storage
// misbehave on purpose, from a seeded RNG, so the degrade-to-recompute
// contract is provable instead of hoped-for. Six fault classes, each with an
// independent probability:
//
//   - err: the op fails with a transient *UnavailableError
//   - torn: a Put publishes only a prefix of the payload, then fails — the
//     crashed-mid-write shape an atomic rename normally forbids, which is
//     exactly what the codec CRCs and manifest recovery must catch
//   - corrupt: a Get's payload comes back with one bit flipped (the backend
//     "succeeded"; validation above must notice)
//   - nospace: a Put fails with ErrNoSpace
//   - latency: the op stalls for Delay before proceeding
//   - lockstall: a TryLock stalls for Delay before proceeding
//
// Spec grammar (restbench -cache-chaos): comma-separated key=value, e.g.
// "seed=7,rate=0.5" or "seed=7,err=0.1,torn=0.05,latency=0.2,delay=5ms".
// "rate=F" is shorthand setting err, torn, corrupt, nospace and lockstall
// all to F at once; individual keys override it in either order.
//
// Determinism: one seeded RNG drives every draw, so a single-threaded
// op sequence injects an identical fault pattern every run. Concurrent
// sweeps interleave draws nondeterministically — which is the point: the
// differential wall proves the report is byte-identical under ANY fault
// pattern, because every fault degrades to the same recompute.
package persist

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosSpec configures the fault injector. The zero value injects nothing.
type ChaosSpec struct {
	Seed      uint64        // RNG seed (0 = 1)
	Err       float64       // P(transient error) per op
	Torn      float64       // P(torn write) per Put
	Corrupt   float64       // P(bit-flipped payload) per Get
	NoSpace   float64       // P(ErrNoSpace) per Put
	Latency   float64       // P(latency spike) per op
	LockStall float64       // P(stall) per TryLock
	Delay     time.Duration // stall length for latency/lockstall (default 1ms)
}

// ParseChaosSpec parses the -cache-chaos grammar. An empty string is an
// error (callers should treat "flag absent" as "no chaos" themselves).
func ParseChaosSpec(s string) (*ChaosSpec, error) {
	spec := &ChaosSpec{}
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("persist: empty chaos spec")
	}
	prob := func(key, val string) (float64, error) {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return 0, fmt.Errorf("persist: chaos spec %s=%s: want a probability in [0,1]", key, val)
		}
		return f, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("persist: chaos spec field %q: want key=value", field)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("persist: chaos spec seed=%s: %v", val, err)
			}
		case "rate":
			var f float64
			if f, err = prob(key, val); err != nil {
				return nil, err
			}
			spec.Err, spec.Torn, spec.Corrupt, spec.NoSpace, spec.LockStall = f, f, f, f, f
		case "err":
			spec.Err, err = prob(key, val)
		case "torn":
			spec.Torn, err = prob(key, val)
		case "corrupt":
			spec.Corrupt, err = prob(key, val)
		case "nospace":
			spec.NoSpace, err = prob(key, val)
		case "latency":
			spec.Latency, err = prob(key, val)
		case "lockstall":
			spec.LockStall, err = prob(key, val)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
			if err != nil || spec.Delay < 0 {
				return nil, fmt.Errorf("persist: chaos spec delay=%s: want a non-negative duration", val)
			}
		default:
			return nil, fmt.Errorf("persist: chaos spec key %q unknown (want seed|rate|err|torn|corrupt|nospace|latency|lockstall|delay)", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// String renders the spec back in its own grammar (restbench echoes it).
func (s *ChaosSpec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("err", s.Err)
	add("torn", s.Torn)
	add("corrupt", s.Corrupt)
	add("nospace", s.NoSpace)
	add("latency", s.Latency)
	add("lockstall", s.LockStall)
	sort.Strings(parts)
	if s.Delay > 0 {
		parts = append(parts, "delay="+s.Delay.String())
	}
	return fmt.Sprintf("seed=%d,%s", s.Seed, strings.Join(parts, ","))
}

// Chaos wraps a Backend with seeded fault injection.
type Chaos struct {
	inner Backend
	spec  ChaosSpec
	st    *StackStats

	mu  sync.Mutex
	rng *rand.Rand
}

// NewChaos wraps inner with fault injection driven by spec. Injected faults
// are counted into st (nil allocates a private set).
func NewChaos(inner Backend, spec *ChaosSpec, st *StackStats) *Chaos {
	sp := *spec
	if st == nil {
		st = &StackStats{}
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Delay <= 0 {
		sp.Delay = time.Millisecond
	}
	return &Chaos{inner: inner, spec: sp, st: st, rng: rand.New(rand.NewSource(int64(sp.Seed)))}
}

// roll draws one uniform float under the injector's lock.
func (c *Chaos) roll() float64 {
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	return f
}

// intn draws one uniform int in [0,n) under the injector's lock.
func (c *Chaos) intn(n int) int {
	c.mu.Lock()
	v := c.rng.Intn(n)
	c.mu.Unlock()
	return v
}

// maybeStall injects a latency spike.
func (c *Chaos) maybeStall(p float64, counter *atomic.Uint64) bool {
	if p > 0 && c.roll() < p {
		counter.Add(1)
		time.Sleep(c.spec.Delay)
		return true
	}
	return false
}

func (c *Chaos) Get(kind, name string) ([]byte, error) {
	c.maybeStall(c.spec.Latency, &c.st.ChaosLatency)
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return nil, unavailable("get", kind, name, errInjected)
	}
	data, err := c.inner.Get(kind, name)
	if err == nil && len(data) > 0 && c.spec.Corrupt > 0 && c.roll() < c.spec.Corrupt {
		c.st.ChaosCorrupt.Add(1)
		bit := c.intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
	}
	return data, err
}

func (c *Chaos) Put(kind, name string, data []byte) error {
	c.maybeStall(c.spec.Latency, &c.st.ChaosLatency)
	if c.spec.NoSpace > 0 && c.roll() < c.spec.NoSpace {
		c.st.ChaosNoSpace.Add(1)
		return ErrNoSpace
	}
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return unavailable("put", kind, name, errInjected)
	}
	if c.spec.Torn > 0 && c.roll() < c.spec.Torn {
		// The crash-mid-write shape: a prefix of the payload lands under the
		// final name (as if a non-atomic writer died after some sectors), and
		// the writer itself sees a failure. Validation above must reject the
		// prefix; recovery must evict it.
		c.st.ChaosTorn.Add(1)
		if n := len(data); n > 1 {
			c.inner.Put(kind, name, data[:1+c.intn(n-1)])
		}
		return unavailable("put", kind, name, errTorn)
	}
	return c.inner.Put(kind, name, data)
}

func (c *Chaos) Delete(kind, name string) error {
	c.maybeStall(c.spec.Latency, &c.st.ChaosLatency)
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return unavailable("delete", kind, name, errInjected)
	}
	return c.inner.Delete(kind, name)
}

func (c *Chaos) List(kind string) ([]Stat, error) {
	c.maybeStall(c.spec.Latency, &c.st.ChaosLatency)
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return nil, unavailable("list", kind, "", errInjected)
	}
	return c.inner.List(kind)
}

func (c *Chaos) TryLock(name string) (func(), error) {
	c.maybeStall(c.spec.LockStall, &c.st.ChaosLockStalls)
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return nil, unavailable("lock", "", name, errInjected)
	}
	return c.inner.TryLock(name)
}

func (c *Chaos) LockAge(name string) (time.Duration, error) {
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return 0, unavailable("lock", "", name, errInjected)
	}
	return c.inner.LockAge(name)
}

func (c *Chaos) BreakLock(name string) error {
	if c.spec.Err > 0 && c.roll() < c.spec.Err {
		c.st.ChaosErrs.Add(1)
		return unavailable("lock", "", name, errInjected)
	}
	return c.inner.BreakLock(name)
}

var (
	errInjected = fmt.Errorf("injected chaos fault")
	errTorn     = fmt.Errorf("injected torn write")
)
