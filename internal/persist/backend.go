// The storage fault plane: a cache *protocol* instead of a directory.
//
// Backend is the byte-level contract the content-addressed cache sits on:
// get/put/delete/list by content hash plus advisory named locks. The local
// directory store (DirBackend), the in-memory test fake (MemBackend) and the
// deterministic fault injector (Chaos) all implement it, and the hardening
// middlewares (WithRetry, WithTimeout, WithBreaker) wrap any of them — so a
// future remote backend (an HTTP peer sharing one cache across machines)
// plugs in under the exact same robustness guarantees.
//
// The error taxonomy is the whole point. Every backend failure maps to one
// of four typed shapes, and the Cache above answers each the same way —
// degrade to recompute, never to a wrong byte or a stranded sweep:
//
//   - ErrNotFound: the object is absent. The ordinary cold-cache miss.
//   - *UnavailableError: a transient fault — I/O error, timeout, tripped
//     breaker. Retryable; after retries it still just means "miss".
//   - ErrNoSpace: the store is full. Final for this write; never retried.
//   - corruption is NOT a backend error: backends move opaque bytes, and
//     damage is caught above by the codec CRCs (*CorruptError), which is
//     what lets a hostile or torn payload never survive validation.
package persist

import (
	"errors"
	"fmt"
	"time"
)

// Object kinds a Backend stores. Trace and result objects are named by the
// hex form of their content address; meta objects (the manifest) by fixed
// file names.
const (
	// kindTrace and kindResult are declared in persist.go; kindMeta holds
	// the manifest and any future non-content-addressed index objects.
	kindMeta = "meta"
)

// ErrNotFound reports an object absent from a backend (the Cache translates
// it to ErrMiss at its own boundary).
var ErrNotFound = errors.New("persist: object not found")

// ErrNoSpace reports a backend out of storage space. It is final for the
// write that hit it: the hardening stack never retries it, and the Cache
// treats the store as advisory (the artifact is simply not persisted).
var ErrNoSpace = errors.New("persist: backend out of space")

// ErrLockHeld reports a TryLock that lost the race: another holder owns the
// named lock. Callers either wait (bounded) or proceed lock-free; the lock
// is advisory and only suppresses duplicate work.
var ErrLockHeld = errors.New("persist: lock already held")

// ErrBreakerOpen reports an operation rejected without reaching the backend
// because its circuit breaker is open (too many consecutive failures; see
// WithBreaker). It unwraps as an *UnavailableError would be treated: the
// caller degrades to recompute.
var ErrBreakerOpen = errors.New("persist: circuit breaker open")

// UnavailableError is a transient backend fault: an I/O error, a timed-out
// operation, an injected chaos fault. The retry middleware retries these
// (and only these); whatever survives the retries degrades to recompute.
type UnavailableError struct {
	Op   string // "get", "put", "delete", "list", "lock"
	Kind string // object kind, "" for lock ops
	Name string // object or lock name
	Err  error  // the underlying cause
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("persist: backend unavailable: %s %s/%s: %v", e.Op, e.Kind, e.Name, e.Err)
}

func (e *UnavailableError) Unwrap() error { return e.Err }

// unavailable wraps err as an *UnavailableError.
func unavailable(op, kind, name string, err error) error {
	return &UnavailableError{Op: op, Kind: kind, Name: name, Err: err}
}

// IsUnavailable reports whether err is a transient backend fault (including
// a tripped breaker): the class of failure that can only ever cost a
// recompute, never change a result.
func IsUnavailable(err error) bool {
	var ue *UnavailableError
	return errors.As(err, &ue) || errors.Is(err, ErrBreakerOpen)
}

// Stat describes one resident backend object.
type Stat struct {
	Name    string // object name (hex content address for trace/result kinds)
	Bytes   int64
	ModTime time.Time
}

// Backend is the pluggable storage protocol under the cache. Implementations
// must be safe for concurrent use and must publish Put atomically: a reader
// sees either the whole object or ErrNotFound, never a torn intermediate
// (the chaos wrapper deliberately violates this to model crashes, which is
// exactly what the codec CRCs exist to catch).
type Backend interface {
	// Get returns the object's payload. ErrNotFound when absent;
	// *UnavailableError on transient faults.
	Get(kind, name string) ([]byte, error)
	// Put atomically publishes the payload under kind/name, replacing any
	// previous object. ErrNoSpace when the store is full.
	Put(kind, name string, data []byte) error
	// Delete removes the object; deleting an absent object is not an error.
	Delete(kind, name string) error
	// List enumerates the resident objects of one kind.
	List(kind string) ([]Stat, error)
	// TryLock acquires the advisory named lock. On success the release
	// function drops it; ErrLockHeld reports another holder. Locks are
	// crash-surviving markers, not leases: holders that die leave them
	// behind, which is what LockAge + BreakLock exist to recover from.
	TryLock(name string) (release func(), err error)
	// LockAge reports how long the named lock has been held (ErrNotFound
	// when nobody holds it) so callers can steal abandoned ones.
	LockAge(name string) (time.Duration, error)
	// BreakLock force-releases the named lock (stale-lock recovery).
	BreakLock(name string) error
}
