package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rest/internal/prog"
	"rest/internal/sim"
	"rest/internal/workload"
)

// panickingWorkload crashes inside the program builder — deep under
// world.Build — the way a buggy workload generator would.
func panickingWorkload(name string) workload.Workload {
	return workload.Workload{
		Name:        name,
		Description: "panics during program construction (test fixture)",
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				panic("fixture: workload builder exploded")
			}
		},
	}
}

// spinningWorkload runs an unbounded loop, the fixture for both watchdogs.
func spinningWorkload(name string) workload.Workload {
	return workload.Workload{
		Name:        name,
		Description: "never terminates (test fixture)",
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				top := f.NewLabel()
				f.Bind(top)
				f.Nop()
				f.Jmp(top)
			}
		},
	}
}

// TestPanicBecomesCellError: a panicking cell must come back as a
// *PanicError carrying a stack trace, while its sibling cells survive and
// the failed cell becomes an annotated hole.
func TestPanicBecomesCellError(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{goodWorkload(t), panickingWorkload("crasher")}
	cfgs := []BinaryConfig{
		{Name: "plain", Pass: prog.Plain()},
		{Name: "secure-heap", Pass: prog.RESTHeap(64)},
	}
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 4})
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	if len(merr.Cells) != 2 { // crasher fails under both configs
		t.Fatalf("got %d cell errors, want 2: %v", len(merr.Cells), err)
	}
	for _, c := range merr.Cells {
		if c.Workload != "crasher" {
			t.Errorf("panic attributed to %s, want crasher", c.Workload)
		}
		var pe *PanicError
		if !errors.As(c.Err, &pe) {
			t.Fatalf("cell error is %T, want *PanicError", c.Err)
		}
		if pe.Value != "fixture: workload builder exploded" {
			t.Errorf("panic value %v lost", pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "panickingWorkload") {
			t.Errorf("stack trace does not reach the panic site:\n%s", pe.Stack)
		}
	}
	// Sibling survival: the healthy workload completed under both configs.
	for _, cfg := range []string{"plain", "secure-heap"} {
		if m.Cycles["lbm"][cfg] == 0 {
			t.Errorf("healthy cell lbm/%s did not survive the sibling panic", cfg)
		}
	}
	// The crashed cells are annotated holes with the panic reason.
	for _, cfg := range []string{"plain", "secure-heap"} {
		reason, ok := m.Hole("crasher", cfg)
		if !ok {
			t.Errorf("crasher/%s has no hole annotation", cfg)
		} else if !strings.Contains(reason, "panic:") {
			t.Errorf("hole reason %q does not name the panic", reason)
		}
	}
}

// TestPanicAggregationDeterministic: the aggregated MatrixError and the
// rendered partial matrix must be identical at any worker count — grid
// order, not completion order.
func TestPanicAggregationDeterministic(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{panickingWorkload("crash-a"), goodWorkload(t), panickingWorkload("crash-z")}
	cfgs := []BinaryConfig{
		{Name: "plain", Pass: prog.Plain()},
		{Name: "secure-heap", Pass: prog.RESTHeap(64)},
	}
	// Panic stack traces carry goroutine ids, so the full error text is not
	// comparable across runs; the cell coordinate sequence and the rendered
	// partial matrix (hole annotations included) must be.
	run := func(workers int) (string, string) {
		m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
			ParallelOptions{Workers: workers})
		var merr *MatrixError
		if !errors.As(err, &merr) {
			t.Fatalf("error is %T, want *MatrixError", err)
		}
		var order strings.Builder
		for _, c := range merr.Cells {
			fmt.Fprintf(&order, "%s/%s\n", c.Workload, c.Config)
		}
		return order.String(), m.RenderOverheadTable("t")
	}
	ord1, tab1 := run(1)
	ord4, tab4 := run(4)
	if ord1 != ord4 {
		t.Errorf("cell error order depends on worker count:\n%s\nvs\n%s", ord1, ord4)
	}
	if ord1 != "crash-a/plain\ncrash-a/secure-heap\ncrash-z/plain\ncrash-z/secure-heap\n" {
		t.Errorf("cell errors not in grid order:\n%s", ord1)
	}
	if tab1 != tab4 {
		t.Errorf("rendered matrix depends on worker count:\n%s\nvs\n%s", tab1, tab4)
	}
}

// TestCellInstrBudget: an over-budget cell must fail with the typed
// *sim.BudgetExceededError and become a watchdog-annotated hole.
func TestCellInstrBudget(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{spinningWorkload("spinner")}
	cfgs := []BinaryConfig{{Name: "plain", Pass: prog.Plain()}}
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 1, CellInstrBudget: 10_000})
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	var bud *sim.BudgetExceededError
	if !errors.As(merr, &bud) {
		t.Fatalf("cell error does not unwrap to *sim.BudgetExceededError: %v", err)
	}
	if bud.Resource != "instructions" {
		t.Errorf("budget resource %q, want instructions", bud.Resource)
	}
	reason, ok := m.Hole("spinner", "plain")
	if !ok || !strings.Contains(reason, "watchdog:") {
		t.Errorf("hole reason %q does not name the watchdog", reason)
	}
}

// TestCellTimeout: the wall-clock watchdog must cut a spinning cell loose
// and annotate the hole. (Sibling survival is pinned by the panic test —
// here every cell shares the timeout, so a slow-but-healthy sibling would
// be flaky under the race detector's ~10x slowdown.)
func TestCellTimeout(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{spinningWorkload("spinner")}
	cfgs := []BinaryConfig{{Name: "plain", Pass: prog.Plain()}}
	start := time.Now()
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 1, CellTimeout: time.Second})
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("watchdog did not fire; sweep took %v", elapsed)
	}
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	var bud *sim.BudgetExceededError
	if !errors.As(merr, &bud) {
		t.Fatalf("cell error does not unwrap to *sim.BudgetExceededError: %v", err)
	}
	if bud.Resource != "wall-clock" {
		t.Errorf("budget resource %q, want wall-clock", bud.Resource)
	}
	if _, ok := m.Hole("spinner", "plain"); !ok {
		t.Error("timed-out cell has no hole annotation")
	}
}

// TestContextDeadlineTightensCells: a caller deadline must reach the cells
// even when no explicit CellTimeout is set (the -timeout flag path).
func TestContextDeadlineTightensCells(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	wls := []workload.Workload{spinningWorkload("spinner")}
	cfgs := []BinaryConfig{{Name: "plain", Pass: prog.Plain()}}
	start := time.Now()
	_, err := RunMatrixParallel(ctx, wls, cfgs, 1, ParallelOptions{Workers: 1})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("context deadline did not reach the cell; sweep took %v", elapsed)
	}
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
}

// TestHoleRenderers: every renderer must mark holes explicitly — a gap can
// never pass for a zero.
func TestHoleRenderers(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{goodWorkload(t), panickingWorkload("crasher")}
	cfgs := []BinaryConfig{
		{Name: "plain", Pass: prog.Plain()},
		{Name: "secure-heap", Pass: prog.RESTHeap(64)},
	}
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 2})
	if err == nil {
		t.Fatal("want a MatrixError")
	}

	table := m.RenderOverheadTable("Figure 7 (partial)")
	if !strings.Contains(table, "hole") {
		t.Errorf("overhead table does not mark the hole:\n%s", table)
	}
	if !strings.Contains(table, "holes (") || !strings.Contains(table, "crasher/plain") {
		t.Errorf("overhead table lacks the hole footer:\n%s", table)
	}

	csv := m.CSV()
	for _, line := range strings.Split(csv, "\n") {
		if strings.HasPrefix(line, "crasher") && !strings.Contains(line, "NA") {
			t.Errorf("CSV renders the crashed row without NA markers: %q", line)
		}
	}

	chart := m.RenderBarChart("chart", 180)
	if !strings.Contains(chart, "hole:") {
		t.Errorf("bar chart does not mark the hole:\n%s", chart)
	}

	js, jerr := m.JSON("t", 1)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !strings.Contains(string(js), `"holes"`) {
		t.Errorf("JSON report omits the holes block:\n%s", js)
	}

	// Means must cover complete rows only: with the crasher row broken, the
	// weighted mean must equal the healthy row's overhead exactly.
	want := m.Overhead("lbm", "secure-heap")
	if got := m.WtdAriMeanOverhead("secure-heap"); got != want {
		t.Errorf("mean over holes: got %v, want the complete row's %v", got, want)
	}
}

// TestFig3PartialBreakdown: a Figure 3 sweep with a broken workload must
// still deliver the healthy workload's breakdown plus an annotated hole row.
func TestFig3PartialBreakdown(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{goodWorkload(t), panickingWorkload("crasher")}
	r, err := RunFig3Parallel(context.Background(), wls, 1, ParallelOptions{Workers: 2})
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	if r == nil {
		t.Fatal("no partial Fig3Result alongside the MatrixError")
	}
	if _, ok := r.Breakdown["lbm"]; !ok {
		t.Error("healthy workload missing from the partial breakdown")
	}
	if _, ok := r.Holes["crasher"]; !ok {
		t.Error("broken workload not annotated as a hole")
	}
	render := r.Render()
	if !strings.Contains(render, "hole") {
		t.Errorf("Fig3 render does not mark the hole:\n%s", render)
	}
	js, jerr := r.JSON()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !strings.Contains(string(js), `"hole"`) {
		t.Errorf("Fig3 JSON omits the hole:\n%s", js)
	}
}
