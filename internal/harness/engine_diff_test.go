package harness

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"rest/internal/attack"
	"rest/internal/core"
	"rest/internal/obs"
	"rest/internal/prog"
	"rest/internal/sim"
	"rest/internal/workload"
	"rest/internal/world"
)

// The harness half of the decoded-block engine's differential wall: the
// replay differentials (replay_test.go) pin trace-capture equivalence; the
// tests here pin that the block engine is invisible end to end — every
// sweep cell, report, metric row (minus the sim.blockcache.* counters that
// only the block engine owns) and fault/attack verdict is byte-identical
// to the reference interpreter's, at any worker count.

// stripBlockcache removes the block engine's private counters from a
// snapshot so the remainder can be compared across engines (the same
// carve-out TestSweepDeterminismWithTraceCache applies to the trace
// cache's counters).
func stripBlockcache(ms []obs.Metric) []obs.Metric {
	out := ms[:0:0]
	for _, m := range ms {
		if !strings.HasPrefix(m.Name, "sim.blockcache.") {
			out = append(out, m)
		}
	}
	return out
}

// assertEngineCellEqual compares a block-engine cell against its reference
// twin: identical cycles, stats, outcome, final memory image and metrics.
func assertEngineCellEqual(t *testing.T, ref, blk *RunResult) {
	t.Helper()
	if ref.Cycles != blk.Cycles {
		t.Errorf("cycles diverge: ref=%d blk=%d", ref.Cycles, blk.Cycles)
	}
	if !reflect.DeepEqual(ref.Stats, blk.Stats) {
		t.Errorf("stats diverge:\nref: %+v\nblk: %+v", ref.Stats, blk.Stats)
	}
	if ref.Outcome.String() != blk.Outcome.String() {
		t.Errorf("outcome diverges: ref=%s blk=%s", ref.Outcome, blk.Outcome)
	}
	if ref.Outcome.Checksum != blk.Outcome.Checksum {
		t.Errorf("checksum diverges: ref=%#x blk=%#x", ref.Outcome.Checksum, blk.Outcome.Checksum)
	}
	if ref.World != nil && blk.World != nil {
		rd := ref.World.Machine.Mem.Digest()
		bd := blk.World.Machine.Mem.Digest()
		if rd != bd {
			t.Errorf("final memory digest diverges: ref=%#x blk=%#x", rd, bd)
		}
	}
	switch {
	case ref.Obs == nil && blk.Obs == nil:
	case ref.Obs == nil || blk.Obs == nil:
		t.Errorf("metrics presence diverges")
	default:
		rs := stripBlockcache(ref.Obs.Snapshot())
		bs := stripBlockcache(blk.Obs.Snapshot())
		if !reflect.DeepEqual(rs, bs) {
			t.Errorf("metrics diverge beyond sim.blockcache.*:\nref: %+v\nblk: %+v", rs, bs)
		}
		// The reference cell must not have grown blockcache counters, and
		// the block cell must actually export them.
		if len(stripBlockcache(ref.Obs.Snapshot())) != len(ref.Obs.Snapshot()) {
			t.Errorf("reference cell exported sim.blockcache.* counters")
		}
		if len(bs) == len(blk.Obs.Snapshot()) {
			t.Errorf("block-engine cell exported no sim.blockcache.* counters")
		}
	}
}

// TestEngineDifferentialMatrix runs every (workload, config) cell of the
// Figure 7 + Figure 8 matrix once per engine and demands byte-identical
// observables. Under -short or the race detector a three-workload subset
// runs, same as the replay matrix.
func TestEngineDifferentialMatrix(t *testing.T) {
	t.Parallel()
	wls := workload.All()
	if testing.Short() || raceEnabled {
		wls = subset(t, "lbm", "xalanc", "hmmer")
	}
	cfgs := replayMatrixConfigs()
	for _, wl := range wls {
		for _, cfg := range cfgs {
			wl, cfg := wl, cfg
			t.Run(wl.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				ref, err := RunLimited(wl, cfg, 1, CellLimits{
					Metrics: true, NeedWorld: true, Engine: sim.EngineRef})
				if err != nil {
					t.Fatalf("ref run: %v", err)
				}
				blk, err := RunLimited(wl, cfg, 1, CellLimits{
					Metrics: true, NeedWorld: true, Engine: sim.EngineBlocks})
				if err != nil {
					t.Fatalf("blocks run: %v", err)
				}
				assertEngineCellEqual(t, ref, blk)
			})
		}
	}
}

// TestEngineDifferentialAttackSuite runs every §V attack — the runs that
// end in mid-block REST exceptions, allocator violations and debug-mode
// continuations — under both engines through the full timing model.
func TestEngineDifferentialAttackSuite(t *testing.T) {
	t.Parallel()
	cfgs := []BinaryConfig{
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
		{Name: "secure-heap", Pass: prog.RESTHeap(64), Mode: core.Secure},
		{Name: "asan", Pass: prog.ASanFull()},
	}
	for _, a := range attack.All() {
		for _, cfg := range cfgs {
			a, cfg := a, cfg
			t.Run(a.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				run := func(e sim.Engine) (*RunResult, error) {
					spec := world.Spec{
						Pass:   cfg.Pass,
						Mode:   cfg.Mode,
						Width:  core.Width(cfg.Pass.TokenWidth),
						Engine: e,
					}
					w, err := world.Build(spec, a.Build)
					if err != nil {
						return nil, err
					}
					stats, out := w.RunTimed()
					return &RunResult{Cycles: stats.Cycles, Stats: stats, Outcome: out, World: w}, nil
				}
				ref, err := run(sim.EngineRef)
				if err != nil {
					t.Fatalf("ref: %v", err)
				}
				blk, err := run(sim.EngineBlocks)
				if err != nil {
					t.Fatalf("blocks: %v", err)
				}
				assertEngineCellEqual(t, ref, blk)
				if ro, bo := ref.Outcome.Exception, blk.Outcome.Exception; (ro == nil) != (bo == nil) {
					t.Fatalf("exception presence diverges: ref=%v blk=%v", ro, bo)
				} else if ro != nil && *ro != *bo {
					t.Errorf("exception diverges: ref=%+v blk=%+v", ro, bo)
				}
			})
		}
	}
}

// TestEngineSweepByteIdentical pins the report contract: a full parallel
// sweep under the block engine renders byte-identical tables and CSVs to
// the reference sweep, and is itself byte-identical across worker counts.
func TestEngineSweepByteIdentical(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "sjeng", "xalanc")
	cfgs := Fig8SensitivityConfigs()
	ctx := context.Background()

	type rendering struct {
		table, csv, metrics string
	}
	render := func(e sim.Engine, workers int) rendering {
		t.Helper()
		opt := ParallelOptions{Workers: workers, Metrics: true, Engine: e}
		m, err := RunMatrixParallel(ctx, wls, cfgs, 1, opt)
		if err != nil {
			t.Fatalf("sweep (engine=%s workers=%d): %v", e, workers, err)
		}
		return rendering{
			table:   m.RenderOverheadTable("sensitivity"),
			csv:     m.CSV(),
			metrics: m.Metrics("fig8sens").CSV(),
		}
	}

	blocksJ1 := render(sim.EngineBlocks, 1)
	blocksJ4 := render(sim.EngineBlocks, 4)
	refJ4 := render(sim.EngineRef, 4)

	if blocksJ1 != blocksJ4 {
		t.Errorf("block-engine sweep not byte-identical across -j:\nj=1: %s\nj=4: %s",
			blocksJ1.table, blocksJ4.table)
	}
	if blocksJ4.table != refJ4.table || blocksJ4.csv != refJ4.csv {
		t.Errorf("engines render different sweeps:\nblocks: %s\nref: %s",
			blocksJ4.table, refJ4.table)
	}
	strip := func(csv string) string {
		var keep []string
		for _, line := range strings.Split(csv, "\n") {
			if !strings.Contains(line, "sim.blockcache.") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(blocksJ4.metrics) != strip(refJ4.metrics) {
		t.Errorf("engine metrics diverge beyond the sim.blockcache counters")
	}
	if strip(blocksJ4.metrics) == blocksJ4.metrics {
		t.Errorf("block-engine sweep exported no sim.blockcache.* counters")
	}
	if strip(refJ4.metrics) != refJ4.metrics {
		t.Errorf("reference sweep exported sim.blockcache.* counters")
	}
}

// TestEngineBudgetBecomesHole is the harness-level regression for the
// mid-run-error class: a block-engine cell that trips its instruction
// budget mid-block must degrade to an annotated hole — identical to the
// reference engine's — never panic the worker.
func TestEngineBudgetBecomesHole(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{spinningWorkload("spinner")}
	cfgs := []BinaryConfig{{Name: "plain", Pass: prog.Plain()}}
	holeFor := func(e sim.Engine) string {
		m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
			ParallelOptions{Workers: 1, CellInstrBudget: 10_000, Engine: e})
		var merr *MatrixError
		if !errors.As(err, &merr) {
			t.Fatalf("engine %s: error is %T, want *MatrixError", e, err)
		}
		var bud *sim.BudgetExceededError
		if !errors.As(merr, &bud) {
			t.Fatalf("engine %s: cell error does not unwrap to *sim.BudgetExceededError: %v", e, err)
		}
		if bud.Instrs != 10_000 {
			t.Errorf("engine %s: budget tripped at %d instrs, want exactly 10000", e, bud.Instrs)
		}
		reason, ok := m.Hole("spinner", "plain")
		if !ok {
			t.Fatalf("engine %s: over-budget cell has no hole annotation", e)
		}
		return reason
	}
	if ref, blk := holeFor(sim.EngineRef), holeFor(sim.EngineBlocks); ref != blk {
		t.Errorf("hole annotations diverge: ref=%q blk=%q", ref, blk)
	}
}
