package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"rest/internal/obs"
)

// MetricsReport is a sweep's observability export: the grid-order aggregate
// registry, every cell's private snapshot, and the hole annotations. Like the
// tables, it is byte-identical at any worker count — the renderers walk the
// grid in workload-major order and the aggregate is merged in that same
// order.
type MetricsReport struct {
	// Sweep names the experiment ("fig7", "fig8", "fig3", ...).
	Sweep string `json:"sweep"`
	// Aggregate is the sweep-level registry snapshot (cells merged in grid
	// order plus the harness.* counters).
	Aggregate []obs.Metric `json:"aggregate"`
	// Cells carries each completed cell's own snapshot in grid order.
	Cells []CellMetrics `json:"cells"`
	// Holes annotates cells with no metrics, with the reason, so a missing
	// cell can never pass for an all-zero one.
	Holes []MetricsHole `json:"holes,omitempty"`
}

// CellMetrics is one completed cell's metric snapshot.
type CellMetrics struct {
	Workload string       `json:"workload"`
	Config   string       `json:"config"`
	Metrics  []obs.Metric `json:"metrics"`
}

// MetricsHole annotates one metric-less cell.
type MetricsHole struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Reason   string `json:"reason"`
}

// Metrics builds the sweep's MetricsReport. It returns nil when the sweep ran
// without metrics enabled (Matrix.Obs is nil) — callers asked for an export
// surface that was never collected.
func (m *Matrix) Metrics(sweep string) *MetricsReport {
	if m.Obs == nil {
		return nil
	}
	r := &MetricsReport{Sweep: sweep, Aggregate: m.Obs.Snapshot()}
	for _, wl := range m.Workloads {
		for _, c := range m.Configs {
			if res := m.Results[wl][c]; res != nil && res.Obs != nil {
				r.Cells = append(r.Cells, CellMetrics{
					Workload: wl, Config: c, Metrics: res.Obs.Snapshot(),
				})
				continue
			}
			reason := "no metrics collected"
			if hr, ok := m.Hole(wl, c); ok {
				reason = hr
			}
			r.Holes = append(r.Holes, MetricsHole{Workload: wl, Config: c, Reason: reason})
		}
	}
	return r
}

// CSV renders the report as sweep,workload,config,metric,type,field,value
// rows. Aggregate rows use "(all)" for both workload and config; hole rows
// use the pseudo-metric "hole" with the quoted reason in the value column.
func (r *MetricsReport) CSV() string {
	var b strings.Builder
	b.WriteString("sweep,workload,config,metric,type,field,value\n")
	obs.CSVRows(&b, fmt.Sprintf("%s,(all),(all),", r.Sweep), r.Aggregate)
	for _, c := range r.Cells {
		obs.CSVRows(&b, fmt.Sprintf("%s,%s,%s,", r.Sweep, c.Workload, c.Config), c.Metrics)
	}
	for _, h := range r.Holes {
		fmt.Fprintf(&b, "%s,%s,%s,hole,hole,reason,%q\n", r.Sweep, h.Workload, h.Config, h.Reason)
	}
	return b.String()
}

// JSON renders the report as indented JSON (trailing newline included).
func (r *MetricsReport) JSON() (string, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}
