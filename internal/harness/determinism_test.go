package harness

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"rest/internal/prog"
)

// The determinism differential layer: the parallel sweep engine must be
// indistinguishable from the sequential reference at every worker count.
// Every cell is a self-contained deterministic simulation, so the whole
// grid — raw cycle matrices and every rendered report — has exactly one
// correct value; these tests pin parallel ≡ sequential byte-for-byte.

// determinismGrids are the swept grids the differential runs over: the
// Figure 7 configuration set and the Figure 8 token-width set, each over a
// workload subset chosen for varied alloc rates and access patterns.
func determinismGrids(t *testing.T) []struct {
	name  string
	grid  func() ([]BinaryConfig, []string)
	title string
} {
	t.Helper()
	return []struct {
		name  string
		grid  func() ([]BinaryConfig, []string)
		title string
	}{
		{
			name:  "fig7",
			title: "Figure 7 (determinism differential)",
			grid: func() ([]BinaryConfig, []string) {
				return Fig7Configs(), []string{"lbm", "xalanc", "bzip2"}
			},
		},
		{
			name:  "fig8",
			title: "Figure 8 (determinism differential)",
			grid: func() ([]BinaryConfig, []string) {
				cfgs := append(Fig8Configs(), BinaryConfig{Name: "plain", Pass: prog.Plain()})
				return cfgs, []string{"xalanc", "hmmer"}
			},
		},
	}
}

// TestRunMatrixParallelDeterminism proves the headline guarantee: for the
// same seed and scale, RunMatrixParallel at j=1, j=4 and j=GOMAXPROCS
// produces Cycles maps byte-identical to the sequential RunMatrix, and the
// rendered Figure 7/8 reports (overhead table + CSV) are identical strings.
func TestRunMatrixParallelDeterminism(t *testing.T) {
	t.Parallel()
	for _, g := range determinismGrids(t) {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			cfgs, names := g.grid()
			wls := subset(t, names...)
			seq, err := RunMatrix(wls, cfgs, 1)
			if err != nil {
				t.Fatalf("sequential reference: %v", err)
			}
			workers := []int{1, 4, runtime.GOMAXPROCS(0)}
			for _, j := range workers {
				j := j
				t.Run(fmt.Sprintf("j=%d", j), func(t *testing.T) {
					t.Parallel()
					par, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
						ParallelOptions{Workers: j})
					if err != nil {
						t.Fatalf("parallel sweep: %v", err)
					}
					if !reflect.DeepEqual(par.Cycles, seq.Cycles) {
						t.Errorf("cycle matrices differ:\nsequential: %v\nparallel:   %v",
							seq.Cycles, par.Cycles)
					}
					if !reflect.DeepEqual(par.Workloads, seq.Workloads) ||
						!reflect.DeepEqual(par.Configs, seq.Configs) {
						t.Errorf("grid iteration order differs: %v/%v vs %v/%v",
							par.Workloads, par.Configs, seq.Workloads, seq.Configs)
					}
					if got, want := par.RenderOverheadTable(g.title), seq.RenderOverheadTable(g.title); got != want {
						t.Errorf("rendered report differs:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
					}
					if got, want := par.CSV(), seq.CSV(); got != want {
						t.Errorf("CSV report differs:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
					}
				})
			}
		})
	}
}

// TestRunMatrixParallelRepeatable re-runs the same parallel sweep twice at
// an oversubscribed worker count: completion order genuinely varies between
// runs, the assembled matrices must not.
func TestRunMatrixParallelRepeatable(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "gcc")
	opt := ParallelOptions{Workers: 8}
	a, err := RunMatrixParallel(context.Background(), wls, Fig7Configs(), 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMatrixParallel(context.Background(), wls, Fig7Configs(), 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cycles, b.Cycles) {
		t.Errorf("two identical parallel sweeps disagree:\n%v\n%v", a.Cycles, b.Cycles)
	}
}

// TestFig3ParallelDeterminism pins the Figure 3 report path (which now runs
// on the parallel engine by default) against an explicit j=1 sweep.
func TestFig3ParallelDeterminism(t *testing.T) {
	t.Parallel()
	wls := subset(t, "xalanc", "lbm")
	one, err := RunFig3Parallel(context.Background(), wls, 1, ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunFig3Parallel(context.Background(), wls, 1, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Breakdown, many.Breakdown) ||
		!reflect.DeepEqual(one.Total, many.Total) {
		t.Errorf("Figure 3 breakdown differs across worker counts:\n%v\n%v",
			one.Breakdown, many.Breakdown)
	}
	if one.Render() != many.Render() {
		t.Error("Figure 3 rendered report differs across worker counts")
	}
}
