package harness

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rest/internal/persist"
)

// The elastic-pool contract: any number of -shard auto workers drain the
// grid exactly once between them (every unit ends with one completion
// marker), a merge over the shared store is byte-identical to a
// single-process sweep, killed workers are recovered by stale-lease steal
// with zero recomputation of already-published units, and a worker that
// loses a lease mid-unit abandons it without publishing a duplicate marker.

// elasticRender runs one elastic worker over the sensitivity grid and
// returns its stats plus the partial matrix.
func elasticRender(t *testing.T, tc *TraceCache, workers int) (ElasticStats, *Matrix) {
	t.Helper()
	var stats ElasticStats
	m, err := RunMatrixParallel(context.Background(), subset(t, "lbm"), Fig8SensitivityConfigs(), 1,
		ParallelOptions{Workers: workers, TraceCache: tc, Elastic: true,
			OnElastic: func(s ElasticStats) { stats = s }})
	if err != nil {
		t.Fatalf("elastic sweep: %v", err)
	}
	return stats, m
}

// TestElasticNeedsStore pins the precondition: the pool coordinates through
// the shared store, so Elastic without one is a configuration error, not a
// silent fallback.
func TestElasticNeedsStore(t *testing.T) {
	t.Parallel()
	_, err := RunMatrixParallel(context.Background(), subset(t, "lbm"), Fig8SensitivityConfigs()[:1], 1,
		ParallelOptions{Elastic: true})
	if err == nil || !strings.Contains(err.Error(), "shared store") {
		t.Fatalf("elastic without a store: %v", err)
	}
	_, err = RunMatrixParallel(context.Background(), subset(t, "lbm"), Fig8SensitivityConfigs()[:1], 1,
		ParallelOptions{Elastic: true, TraceCache: NewTraceCache()})
	if err == nil || !strings.Contains(err.Error(), "shared store") {
		t.Fatalf("elastic without a disk tier: %v", err)
	}
}

// TestElasticSoloDrain pins the one-worker pool: it claims every unit
// fresh, computes the whole grid, publishes one marker per unit, and a
// merge run over the store is byte-identical to the no-cache baseline.
func TestElasticSoloDrain(t *testing.T) {
	t.Parallel()
	baseline, _ := sensRender(t, NewTraceCache(), 1, Shard{})
	url := shardCacheServer(t)

	tc, pc := httpTC(t, url, persist.Options{})
	stats, m := elasticRender(t, tc, 2)
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	units := UnitCount(wls, cfgs, 1, 0)
	if stats.Units != units || stats.Done != units || stats.Claimed != units {
		t.Fatalf("solo pool did not drain cleanly: %+v (units %d)", stats, units)
	}
	if stats.Steals != 0 || stats.LeaseLost != 0 || stats.Skipped != 0 {
		t.Fatalf("solo pool saw contention out of nowhere: %+v", stats)
	}
	if stats.CellsRun != len(wls)*len(cfgs) {
		t.Fatalf("solo pool ran %d cells, want %d", stats.CellsRun, len(wls)*len(cfgs))
	}
	cells := 0
	for _, wl := range m.Workloads {
		cells += len(m.Cycles[wl])
	}
	if cells != len(wls)*len(cfgs) {
		t.Fatalf("solo matrix holds %d cells, want the full grid", cells)
	}
	markers, err := pc.ListMarkers(ElasticMarkerPrefix)
	if err != nil || len(markers) != units {
		t.Fatalf("markers after drain: %v, %v (want %d)", markers, err, units)
	}

	tcM, _ := httpTC(t, url, persist.Options{})
	merged, _ := sensRender(t, tcM, 4, Shard{})
	if merged != baseline {
		t.Fatalf("elastic merge differs from single-process baseline")
	}
}

// TestElasticPoolMergeByteIdentity is the multi-worker differential: three
// simulated worker processes (fresh TraceCache + Cache each, one shared
// HTTP store) drain the pool concurrently; between them every unit is done
// exactly once, and the merge is byte-identical to the baseline.
func TestElasticPoolMergeByteIdentity(t *testing.T) {
	t.Parallel()
	baseline, _ := sensRender(t, NewTraceCache(), 1, Shard{})
	url := shardCacheServer(t)

	const pool = 3
	stats := make([]ElasticStats, pool)
	var wg sync.WaitGroup
	for i := 0; i < pool; i++ {
		tc, _ := httpTC(t, url, persist.Options{})
		wg.Add(1)
		go func(i int, tc *TraceCache) {
			defer wg.Done()
			stats[i], _ = elasticRender(t, tc, 1)
		}(i, tc)
	}
	wg.Wait()

	units := UnitCount(subset(t, "lbm"), Fig8SensitivityConfigs(), 1, 0)
	done, claimed := 0, 0
	for _, s := range stats {
		done += s.Done
		claimed += s.Claimed
		if s.Units != units {
			t.Fatalf("worker disagreed on the unit count: %+v", s)
		}
	}
	// Exactly-once: markers are published under an exclusive claim, so the
	// pool-wide done tally is the unit count, not a multiple of it.
	if done != units {
		t.Fatalf("pool published %d completions for %d units: %+v", done, units, stats)
	}
	if claimed < units {
		t.Fatalf("pool claimed %d of %d units", claimed, units)
	}

	tcM, pcM := httpTC(t, url, persist.Options{})
	merged, _ := sensRender(t, tcM, 4, Shard{})
	if merged != baseline {
		t.Fatalf("pool merge differs from single-process baseline")
	}
	if c := pcM.Counters(); c.ResultHits == 0 {
		t.Fatalf("merge recomputed everything: %+v", c)
	}
}

// TestElasticSecondRunRecomputesNothing pins the published-unit guarantee
// from the ISSUE's acceptance gate: a unit whose marker is up is never
// recomputed. A second elastic pass over a drained store claims nothing and
// runs zero cells — the initial marker scan already accounts for the grid.
func TestElasticSecondRunRecomputesNothing(t *testing.T) {
	t.Parallel()
	url := shardCacheServer(t)
	tc1, _ := httpTC(t, url, persist.Options{})
	elasticRender(t, tc1, 2)

	tc2, pc2 := httpTC(t, url, persist.Options{})
	stats, m := elasticRender(t, tc2, 2)
	if stats.CellsRun != 0 || stats.Done != 0 {
		t.Fatalf("second pass recomputed published units: %+v", stats)
	}
	if len(m.Workloads) != 0 {
		t.Fatalf("second pass produced cells: %+v", m.Workloads)
	}
	if c := pc2.Counters(); c.Stores != 0 {
		t.Fatalf("second pass grew the store: %+v", c)
	}
}

// TestElasticKilledWorkerSteal pins recovery: a worker that died holding a
// unit claim (the lease is on the books, never renewed) is stolen once
// stale, and the pool still drains the full grid with that unit computed by
// the survivor.
func TestElasticKilledWorkerSteal(t *testing.T) {
	t.Parallel()
	url := shardCacheServer(t)

	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	units := elasticUnits(wls, cfgs, 1, 0)
	grid := elasticGridID(units, 1)

	// The dead worker: holds unit 0's claim, renews nothing, publishes
	// nothing.
	dead, err := persist.NewHTTPBackend(url, persist.HTTPOptions{RenewEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := dead.TryLease(elasticClaimName(grid, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	time.Sleep(60 * time.Millisecond)

	tc, _ := httpTC(t, url, persist.Options{StaleLockAge: 50 * time.Millisecond})
	stats, _ := elasticRender(t, tc, 2)
	if stats.Done != len(units) {
		t.Fatalf("survivor did not drain the grid: %+v", stats)
	}
	if stats.Steals == 0 {
		t.Fatalf("dead worker's claim was never stolen: %+v", stats)
	}
}

// TestElasticLeaseLostAbandons pins the renewal race from the other side: a
// worker that loses its lease mid-unit (it was presumed dead but wasn't)
// must abandon the unit — no completion marker, no overwrite of the
// thief's — while the rest of its pool run proceeds normally. The steal is
// injected deterministically from the first cell's completion hook, so no
// clocks or sleeps decide the outcome.
func TestElasticLeaseLostAbandons(t *testing.T) {
	t.Parallel()
	url := shardCacheServer(t)

	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	units := elasticUnits(wls, cfgs, 1, 0)
	grid := elasticGridID(units, 1)

	thief, err := persist.NewHTTPBackend(url, persist.HTTPOptions{RenewEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	// The victim: lease auto-renewal off, so the steal goes unnoticed until
	// the pre-publish synchronous renewal — the exact race under test.
	vb, err := persist.NewHTTPBackend(url, persist.HTTPOptions{RenewEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	vpc, err := persist.OpenBackend(vb, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vpc.Close() })
	vtc := NewTraceCache()
	vtc.AttachDisk(vpc)

	const thiefMarker = `{"worker":"thief"}`
	var once sync.Once
	var stolenUnit int
	var stats ElasticStats
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 1, TraceCache: vtc, Elastic: true,
			OnElastic: func(s ElasticStats) { stats = s },
			OnCell: func(ev CellEvent) {
				once.Do(func() {
					// Mid-unit, after the victim's first cell: a peer judges the
					// victim dead, breaks its lease, takes the unit over and
					// publishes its own completion marker.
					for ui, u := range units {
						for _, gi := range u.cells {
							if gi == ev.Index {
								stolenUnit = ui
							}
						}
					}
					name := elasticClaimName(grid, stolenUnit)
					if err := thief.BreakLock(name); err != nil {
						t.Errorf("thief break: %v", err)
					}
					l, err := thief.TryLease(name)
					if err != nil {
						t.Errorf("thief lease: %v", err)
						return
					}
					if err := thief.Put("meta", elasticMarkerName(grid, stolenUnit), []byte(thiefMarker)); err != nil {
						t.Errorf("thief marker: %v", err)
					}
					l.Release()
				})
			}})
	if err != nil {
		t.Fatalf("victim's pool run failed outright: %v", err)
	}
	if stats.LeaseLost != 1 {
		t.Fatalf("victim did not record the dispossession: %+v", stats)
	}
	if stats.Done != len(units)-1 {
		t.Fatalf("victim published %d of %d units despite losing one: %+v", stats.Done, len(units), stats)
	}
	// The thief's marker survives: the victim abandoned instead of
	// publishing a duplicate.
	raw, err := vpc.GetMarker(elasticMarkerName(grid, stolenUnit))
	if err != nil || string(raw) != thiefMarker {
		t.Fatalf("stolen unit's marker: %q, %v (want the thief's)", raw, err)
	}
	// The victim's own cells — including the stolen unit's, all computed
	// before the loss was observable — stay internally consistent, and a
	// merge over the store is still byte-identical to the baseline: the
	// duplicate compute was idempotent.
	if len(m.Workloads) == 0 {
		t.Fatalf("victim's partial matrix is empty")
	}
	baseline, _ := sensRender(t, NewTraceCache(), 1, Shard{})
	tcM, _ := httpTC(t, url, persist.Options{})
	merged, _ := sensRender(t, tcM, 4, Shard{})
	if merged != baseline {
		t.Fatalf("merge after the race differs from the baseline")
	}
}

// TestElasticChaosDrains pins the fault posture over the pool: with the
// storage fault plane injecting errors around every cache op, the pool
// still drains (fail-open claims at worst duplicate compute) and the merge
// stays byte-identical.
func TestElasticChaosDrains(t *testing.T) {
	t.Parallel()
	baseline, _ := sensRender(t, NewTraceCache(), 1, Shard{})
	url := shardCacheServer(t)

	spec, err := persist.ParseChaosSpec("seed=11,err=0.15,torn=0.05")
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := httpTC(t, url, persist.Options{Chaos: spec, Retries: 1})
	if _, err := RunMatrixParallel(context.Background(), subset(t, "lbm"), Fig8SensitivityConfigs(), 1,
		ParallelOptions{Workers: 2, TraceCache: tc, Elastic: true}); err != nil {
		t.Fatalf("elastic under chaos: %v", err)
	}

	tcM, _ := httpTC(t, url, persist.Options{})
	merged, _ := sensRender(t, tcM, 4, Shard{})
	if merged != baseline {
		t.Fatalf("chaos-elastic merge differs from the baseline")
	}
}

// TestElasticObsCounters pins the pool's observability surface: a metrics
// run exports the harness.elastic.* scheduling counters.
func TestElasticObsCounters(t *testing.T) {
	t.Parallel()
	url := shardCacheServer(t)
	tc, _ := httpTC(t, url, persist.Options{})
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 2, TraceCache: tc, Elastic: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	units := uint64(UnitCount(wls, cfgs, 1, 0))
	want := map[string]uint64{
		"harness.elastic.units":       units,
		"harness.elastic.claimed":     units,
		"harness.elastic.done":        units,
		"harness.elastic.steals":      0,
		"harness.elastic.lease_lost":  0,
		"harness.elastic.cells":       uint64(len(wls) * len(cfgs)),
		"harness.elastic.cells_total": uint64(len(wls) * len(cfgs)),
	}
	got := map[string]uint64{}
	for _, mt := range m.Obs.Snapshot() {
		got[mt.Name] = mt.Value
	}
	for name, v := range want {
		if g, ok := got[name]; !ok || g != v {
			t.Errorf("%s = %d (present=%t), want %d", name, g, ok, v)
		}
	}
}

// TestElasticUnitNumbering pins the unit enumeration against the static
// partition: first-appearance order over the grid, every cell in exactly
// one unit, and the grid ID scoping claims to one exact sweep.
func TestElasticUnitNumbering(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	units := elasticUnits(wls, cfgs, 1, 0)
	if len(units) == 0 || len(units) >= len(wls)*len(cfgs) {
		t.Fatalf("degenerate unit partition: %d units over %d cells", len(units), len(wls)*len(cfgs))
	}
	seen := map[int]bool{}
	prevFirst := -1
	for ui, u := range units {
		if len(u.cells) == 0 {
			t.Fatalf("unit %d has no cells", ui)
		}
		if u.cells[0] <= prevFirst {
			t.Fatalf("units not in first-appearance order: unit %d starts at cell %d after %d", ui, u.cells[0], prevFirst)
		}
		prevFirst = u.cells[0]
		for _, gi := range u.cells {
			if seen[gi] {
				t.Fatalf("cell %d in two units", gi)
			}
			seen[gi] = true
		}
	}
	if len(seen) != len(wls)*len(cfgs) {
		t.Fatalf("units cover %d of %d cells", len(seen), len(wls)*len(cfgs))
	}
	if UnitCount(wls, cfgs, 1, 0) != len(units) {
		t.Fatalf("UnitCount disagrees with the enumeration")
	}
	if elasticGridID(units, 1) == elasticGridID(units[:len(units)-1], 1) {
		t.Fatalf("grid ID insensitive to the unit list")
	}
	if elasticGridID(units, 1) != elasticGridID(units, 1) {
		t.Fatalf("grid ID not deterministic")
	}
}

// TestElasticCancellation pins the deadline story: a cancelled pool returns
// promptly (empty matrix or skipped holes) instead of hanging on the drain
// loop waiting for markers that will never land.
func TestElasticCancellation(t *testing.T) {
	t.Parallel()
	url := shardCacheServer(t)
	tc, _ := httpTC(t, url, persist.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunMatrixParallel(ctx, subset(t, "lbm"), Fig8SensitivityConfigs(), 1,
		ParallelOptions{Workers: 2, TraceCache: tc, Elastic: true})
	var merr *MatrixError
	if err != nil && !errors.As(err, &merr) {
		t.Fatalf("cancelled pool: %v", err)
	}
}
