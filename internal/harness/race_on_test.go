//go:build race

package harness

// raceEnabled reports whether this test binary was built with the race
// detector. The replay differential tests scale their workload coverage
// down under race the same way they do under -short: the detector
// multiplies simulation cost by an order of magnitude, and the
// interleaving coverage it buys does not grow with the workload count.
const raceEnabled = true
