package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"rest/internal/prog"
	"rest/internal/workload"
)

// Fig3Components are ASan's four overhead sources (paper Figure 3), applied
// cumulatively so each component's marginal cost can be stacked.
var Fig3Components = []string{
	"Allocator",
	"Stack Frame Setup",
	"Memory Access Validation",
	"API Intercept",
}

// fig3Configs returns the cumulative build levels: plain baseline, then one
// more ASan component per level. All levels run on the in-order core, as
// the paper's Figure 3 does (footnote 1).
func fig3Configs() []BinaryConfig {
	no := false
	yes := true
	return []BinaryConfig{
		{Name: "plain", Pass: prog.Plain(), InOrder: true},
		{Name: "alloc", Pass: prog.ASanComponents(false, false), InterceptLibc: &no, InOrder: true},
		{Name: "alloc+stack", Pass: prog.ASanComponents(true, false), InterceptLibc: &no, InOrder: true},
		{Name: "alloc+stack+checks", Pass: prog.ASanComponents(true, true), InterceptLibc: &no, InOrder: true},
		{Name: "asan-full", Pass: prog.ASanComponents(true, true), InterceptLibc: &yes, InOrder: true},
	}
}

// Fig3Result holds the component breakdown: Breakdown[workload][i] is the
// marginal overhead (percentage points over plain) of Fig3Components[i].
// Workloads with a failed/timed-out level have no breakdown; they appear in
// Holes[workload] with the first failing level's reason instead.
type Fig3Result struct {
	Workloads []string
	Breakdown map[string][]float64
	Total     map[string]float64
	Holes     map[string]string
	// Matrix is the underlying sweep (metrics/holes export surface).
	Matrix *Matrix
}

// Metrics exports the sweep's observability report (nil unless the sweep ran
// with ParallelOptions.Metrics).
func (r *Fig3Result) Metrics() *MetricsReport {
	if r.Matrix == nil {
		return nil
	}
	return r.Matrix.Metrics("fig3")
}

// RunFig3 regenerates Figure 3's ASan overhead breakdown on the parallel
// sweep engine at its default worker count. The context bounds the whole
// figure (cmd/restbench -timeout reaches every report path through it).
func RunFig3(ctx context.Context, wls []workload.Workload, scale int64) (*Fig3Result, error) {
	return RunFig3Parallel(ctx, wls, scale, ParallelOptions{})
}

// RunFig3Parallel is RunFig3 with explicit sweep options (cmd/restbench -j).
// A sweep with failed cells still returns the partial breakdown: the
// workloads whose five levels all completed are computed normally, the rest
// become annotated holes, and the *MatrixError comes back alongside so the
// caller chooses between strict and keep-going behaviour.
func RunFig3Parallel(ctx context.Context, wls []workload.Workload, scale int64, opt ParallelOptions) (*Fig3Result, error) {
	m, err := RunMatrixParallel(ctx, wls, fig3Configs(), scale, opt)
	var merr *MatrixError
	if err != nil && !errors.As(err, &merr) {
		return nil, err
	}
	res := &Fig3Result{
		Workloads: m.Workloads,
		Breakdown: make(map[string][]float64),
		Total:     make(map[string]float64),
		Matrix:    m,
	}
	levels := []string{"alloc", "alloc+stack", "alloc+stack+checks", "asan-full"}
	for _, wl := range m.Workloads {
		if reason, holed := fig3RowHole(m, wl, levels); holed {
			if res.Holes == nil {
				res.Holes = make(map[string]string)
			}
			res.Holes[wl] = reason
			continue
		}
		prev := 0.0
		parts := make([]float64, len(levels))
		for i, lv := range levels {
			ov := m.Overhead(wl, lv)
			parts[i] = ov - prev
			prev = ov
		}
		res.Breakdown[wl] = parts
		res.Total[wl] = prev
	}
	return res, err
}

// fig3RowHole reports whether a workload's breakdown is uncomputable (any of
// its cumulative levels or its baseline missing) and with which reason.
func fig3RowHole(m *Matrix, wl string, levels []string) (string, bool) {
	for _, lv := range append([]string{"plain"}, levels...) {
		if _, ok := m.Cycles[wl][lv]; ok {
			continue
		}
		if reason, ok := m.Hole(wl, lv); ok {
			return fmt.Sprintf("%s: %s", lv, reason), true
		}
		return fmt.Sprintf("%s: missing", lv), true
	}
	return "", false
}

// Render prints the stacked breakdown; workloads without one are rendered as
// explicit hole rows, never as zeros.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: breakdown of ASan overhead sources (% over plain/libc)\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, c := range Fig3Components {
		fmt.Fprintf(&b, "%26s", c)
	}
	fmt.Fprintf(&b, "%10s\n", "total")
	for _, wl := range r.Workloads {
		fmt.Fprintf(&b, "%-12s", wl)
		if reason, ok := r.Holes[wl]; ok {
			fmt.Fprintf(&b, "  hole (%s)\n", reason)
			continue
		}
		for _, v := range r.Breakdown[wl] {
			fmt.Fprintf(&b, "%25.1f%%", v)
		}
		fmt.Fprintf(&b, "%9.1f%%\n", r.Total[wl])
	}
	return b.String()
}
