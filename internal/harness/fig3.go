package harness

import (
	"context"
	"fmt"
	"strings"

	"rest/internal/prog"
	"rest/internal/workload"
)

// Fig3Components are ASan's four overhead sources (paper Figure 3), applied
// cumulatively so each component's marginal cost can be stacked.
var Fig3Components = []string{
	"Allocator",
	"Stack Frame Setup",
	"Memory Access Validation",
	"API Intercept",
}

// fig3Configs returns the cumulative build levels: plain baseline, then one
// more ASan component per level. All levels run on the in-order core, as
// the paper's Figure 3 does (footnote 1).
func fig3Configs() []BinaryConfig {
	no := false
	yes := true
	return []BinaryConfig{
		{Name: "plain", Pass: prog.Plain(), InOrder: true},
		{Name: "alloc", Pass: prog.ASanComponents(false, false), InterceptLibc: &no, InOrder: true},
		{Name: "alloc+stack", Pass: prog.ASanComponents(true, false), InterceptLibc: &no, InOrder: true},
		{Name: "alloc+stack+checks", Pass: prog.ASanComponents(true, true), InterceptLibc: &no, InOrder: true},
		{Name: "asan-full", Pass: prog.ASanComponents(true, true), InterceptLibc: &yes, InOrder: true},
	}
}

// Fig3Result holds the component breakdown: Breakdown[workload][i] is the
// marginal overhead (percentage points over plain) of Fig3Components[i].
type Fig3Result struct {
	Workloads []string
	Breakdown map[string][]float64
	Total     map[string]float64
}

// RunFig3 regenerates Figure 3's ASan overhead breakdown on the parallel
// sweep engine at its default worker count.
func RunFig3(wls []workload.Workload, scale int64) (*Fig3Result, error) {
	return RunFig3Parallel(context.Background(), wls, scale, ParallelOptions{})
}

// RunFig3Parallel is RunFig3 with explicit sweep options (cmd/restbench -j).
func RunFig3Parallel(ctx context.Context, wls []workload.Workload, scale int64, opt ParallelOptions) (*Fig3Result, error) {
	m, err := RunMatrixParallel(ctx, wls, fig3Configs(), scale, opt)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Workloads: m.Workloads,
		Breakdown: make(map[string][]float64),
		Total:     make(map[string]float64),
	}
	levels := []string{"alloc", "alloc+stack", "alloc+stack+checks", "asan-full"}
	for _, wl := range m.Workloads {
		prev := 0.0
		parts := make([]float64, len(levels))
		for i, lv := range levels {
			ov := m.Overhead(wl, lv)
			parts[i] = ov - prev
			prev = ov
		}
		res.Breakdown[wl] = parts
		res.Total[wl] = prev
	}
	return res, nil
}

// Render prints the stacked breakdown.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: breakdown of ASan overhead sources (% over plain/libc)\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, c := range Fig3Components {
		fmt.Fprintf(&b, "%26s", c)
	}
	fmt.Fprintf(&b, "%10s\n", "total")
	for _, wl := range r.Workloads {
		fmt.Fprintf(&b, "%-12s", wl)
		for _, v := range r.Breakdown[wl] {
			fmt.Fprintf(&b, "%25.1f%%", v)
		}
		fmt.Fprintf(&b, "%9.1f%%\n", r.Total[wl])
	}
	return b.String()
}
