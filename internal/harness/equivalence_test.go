package harness

import (
	"testing"

	"rest/internal/attack"
	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/workload"
	"rest/internal/world"
)

// The architectural-equivalence differential: the in-order core and the
// out-of-order core are timing models over the same architectural machine,
// so for any program and any instrumentation pass they must reach the same
// world.Outcome — same checksum, same exception kind and faulting address,
// or the same clean exit. Cycles may differ arbitrarily; architecture may
// not. A divergence here means a timing model leaked into architectural
// state (the bug class that would silently corrupt every figure).

// runOn builds and runs one (builder, config) pair on the selected core.
func runOn(t *testing.T, cfg BinaryConfig, build func(b *prog.Builder), inOrder bool) world.Outcome {
	t.Helper()
	w, err := world.Build(world.Spec{
		Pass:          cfg.Pass,
		Mode:          cfg.Mode,
		Width:         core.Width(cfg.Pass.TokenWidth),
		InterceptLibc: cfg.InterceptLibc,
		InOrder:       inOrder,
	}, build)
	if err != nil {
		t.Fatalf("world.Build(inorder=%v): %v", inOrder, err)
	}
	_, out := w.RunTimed()
	return out
}

// assertArchEqual compares the architectural fields of two outcomes,
// ignoring timing-resolved ones (exception precision and detection lag).
func assertArchEqual(t *testing.T, ooo, inord world.Outcome) {
	t.Helper()
	if (ooo.Err == nil) != (inord.Err == nil) {
		t.Fatalf("simulation error divergence: ooo=%v inorder=%v", ooo.Err, inord.Err)
	}
	if ooo.Checksum != inord.Checksum {
		t.Errorf("checksum divergence: ooo=%#x inorder=%#x", ooo.Checksum, inord.Checksum)
	}
	if (ooo.Exception == nil) != (inord.Exception == nil) {
		t.Fatalf("exception divergence: ooo=%v inorder=%v", ooo.Exception, inord.Exception)
	}
	if ooo.Exception != nil {
		if ooo.Exception.Kind != inord.Exception.Kind ||
			ooo.Exception.Addr != inord.Exception.Addr ||
			ooo.Exception.PC != inord.Exception.PC {
			t.Errorf("exception fields diverge: ooo=%v inorder=%v", ooo.Exception, inord.Exception)
		}
	}
	if (ooo.Violation == nil) != (inord.Violation == nil) {
		t.Fatalf("sw violation divergence: ooo=%v inorder=%v", ooo.Violation, inord.Violation)
	}
	if ooo.Violation != nil && *ooo.Violation != *inord.Violation {
		t.Errorf("sw violation fields diverge: ooo=%v inorder=%v", ooo.Violation, inord.Violation)
	}
}

// TestInOrderOoOEquivalenceWorkloads runs every workload under every Figure 7
// pass combination on both cores: all must exit cleanly with identical
// checksums. Under -short a varied three-workload subset runs instead.
func TestInOrderOoOEquivalenceWorkloads(t *testing.T) {
	t.Parallel()
	wls := workload.All()
	if testing.Short() {
		wls = subset(t, "lbm", "xalanc", "gobmk")
	}
	for _, wl := range wls {
		for _, cfg := range Fig7Configs() {
			wl, cfg := wl, cfg
			t.Run(wl.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				build := wl.Build(1)
				ooo := runOn(t, cfg, build, false)
				inord := runOn(t, cfg, build, true)
				if ooo.Err != nil {
					t.Fatalf("simulation error: %v", ooo.Err)
				}
				if ooo.Detected() || inord.Detected() {
					t.Fatalf("spurious detection: ooo=%s inorder=%s", ooo, inord)
				}
				assertArchEqual(t, ooo, inord)
			})
		}
	}
}

// TestInOrderOoOEquivalenceAttacks runs the §V attack suite under the REST
// and ASan passes on both cores: whichever exception or violation fires, its
// architectural identity (kind, faulting address, PC) must not depend on the
// core model, even when secure mode makes the *report* imprecise.
func TestInOrderOoOEquivalenceAttacks(t *testing.T) {
	t.Parallel()
	cfgs := []BinaryConfig{
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
		{Name: "secure-heap", Pass: prog.RESTHeap(64), Mode: core.Secure},
		{Name: "asan", Pass: prog.ASanFull()},
	}
	for _, a := range attack.All() {
		for _, cfg := range cfgs {
			a, cfg := a, cfg
			t.Run(a.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				ooo := runOn(t, cfg, a.Build, false)
				inord := runOn(t, cfg, a.Build, true)
				assertArchEqual(t, ooo, inord)
			})
		}
	}
}
