package harness

import (
	"fmt"
	"strconv"
	"strings"

	"rest/internal/workload"
)

// Shard selects a deterministic slice of a sweep grid for one process, the
// scale-out half of the distributed-sweep story: every process sees the same
// workload-major grid order, derives the same partition from it, and the
// shared artifact cache carries the results across processes. The partition
// is a pure function of the grid — no coordination, no registration, no
// ordering between shards — so shards can run on different machines, at
// different times, or twice (duplicate submissions are idempotent: content
// addressing makes the second run a cache hit).
//
// The partition unit is the functional identity, not the cell: all cells
// sharing one captured trace (the timing rows of a workload × flavour; see
// cellTraceKey) form one unit, numbered in first-appearance order, and every
// unit lands whole on exactly one shard. Splitting a unit would make several
// shards need the same capture, and the store's cross-process single-flight
// would then serialize the cold path through its capture locks — measured on
// the sensitivity grid, two cell-strided shards ran no faster than one.
// Units are dealt to shards in boustrophedon (snake) order rather than plain
// round-robin so that systematic cost differences between neighbouring
// units — a grid's flavours alternate, and instrumented builds simulate
// slower than plain ones — and any cost gradient along the workload axis
// both spread evenly across shards. For grids with no shared identities
// (every config functionally distinct) the unit is a single cell and this
// degrades to balanced cell-level dealing.
//
// The zero Shard is "no sharding": the full grid.
type Shard struct {
	// Index is the 0-based shard number, 0 ≤ Index < Count.
	Index int
	// Count is the total number of shards; 0 (or negative) disables sharding.
	Count int
}

// ParseShard parses the restbench "-shard i/n" spec (1-based on the wire,
// 0-based in the struct).
func ParseShard(spec string) (Shard, error) {
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("shard spec %q is not i/n (e.g. 2/4)", spec)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return Shard{}, fmt.Errorf("shard index %q is not an integer", i)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return Shard{}, fmt.Errorf("shard count %q is not an integer", n)
	}
	if cnt < 1 {
		return Shard{}, fmt.Errorf("shard count must be ≥ 1, got %d", cnt)
	}
	if idx < 1 || idx > cnt {
		return Shard{}, fmt.Errorf("shard index %d out of range 1..%d", idx, cnt)
	}
	return Shard{Index: idx - 1, Count: cnt}, nil
}

// Enabled reports whether the shard restricts the grid at all.
func (s Shard) Enabled() bool { return s.Count > 0 }

// Owns reports whether partition unit u (functional identities in
// first-appearance order; see ownership) belongs to this shard. Units are
// dealt in snake order: forward on even rounds, backward on odd ones, so any
// window of 2·Count consecutive units gives every shard exactly two.
func (s Shard) Owns(u int) bool {
	if !s.Enabled() {
		return true
	}
	p := u % s.Count
	if (u/s.Count)%2 == 1 {
		p = s.Count - 1 - p
	}
	return p == s.Index
}

// String renders the 1-based wire form ("2/4"), or "" when disabled.
func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index+1, s.Count)
}

// ownership maps every cell of the workload-major grid to whether this shard
// owns it. Cells sharing a functional identity (one captured trace) always
// resolve to the same owner — identities need not be adjacent in the grid
// (sensitivity grids alternate flavours), so units are tracked by key, not
// by run. This is the single source of truth for the partition: the sweep
// engine builds its cell list from it and PlanShard plans exactly the same
// slice.
func (s Shard) ownership(wls []workload.Workload, cfgs []BinaryConfig, scale int64, budget uint64) []bool {
	owns := make([]bool, len(wls)*len(cfgs))
	if !s.Enabled() {
		for i := range owns {
			owns[i] = true
		}
		return owns
	}
	units := make(map[traceKey]int)
	i := 0
	for _, wl := range wls {
		for _, cfg := range cfgs {
			k := cellTraceKey(wl.Name, cfg, scale, budget)
			u, seen := units[k]
			if !seen {
				u = len(units)
				units[k] = u
			}
			owns[i] = s.Owns(u)
			i++
		}
	}
	return owns
}
