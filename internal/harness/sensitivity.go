package harness

import (
	"context"

	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/prog"
	"rest/internal/workload"
)

// The Figure 8 timing-sensitivity sweep: the paper's headline overheads are
// produced by timing one fixed dynamic instruction stream under varying
// microarchitectural parameters (§VI). Each workload here runs two builds
// (plain and secure-full 64B) under nine timing variants, so every build's
// functional identity repeats nine times across the grid — the sweep the
// trace cache was built for: one capture, eight replays per build.

// Fig8SensitivityConfigs returns the timing-variant grid: {plain,
// secure-full} × nine timing points in two rows. The out-of-order row
// perturbs the Figure 8 machine (Table II baseline, single L1-D port pair,
// doubled L2 latency). The in-order row sweeps the memory hierarchy around
// the Figure 3 machine — the paper's overhead decomposition was measured on
// an in-order core (footnote 1), where REST's extra L1-D traffic is not
// hidden by the window, so the memory axes (L1/L2 latency, L2 capacity,
// DRAM timing, redirect penalty) are where its overhead sensitivity lives.
// Config names carry the variant suffix; the unsuffixed plain remains the
// overhead baseline.
func Fig8SensitivityConfigs() []BinaryConfig {
	ports1 := cpu.DefaultConfig()
	ports1.LoadPorts, ports1.StorePorts = 1, 1
	l2slow := cache.DefaultHierConfig()
	l2slow.L2.HitCycles *= 2
	l1slow := cache.DefaultHierConfig()
	l1slow.L1I.HitCycles *= 2
	l1slow.L1D.HitCycles *= 2
	l2half := cache.DefaultHierConfig()
	l2half.L2.SizeBytes >>= 1
	dramslow := cache.DefaultHierConfig()
	dramslow.DRAM.CASCycles = 56
	dramslow.DRAM.RPCycles = 56
	dramslow.DRAM.RASCycles = 140
	fe2 := cpu.DefaultConfig()
	fe2.FrontendDepth *= 2
	variants := []struct {
		suffix  string
		cpu     *cpu.Config
		hier    *cache.HierConfig
		inOrder bool
	}{
		// Out-of-order row: the Figure 8 machine.
		{suffix: ""},
		{suffix: "+p1", cpu: &ports1},
		{suffix: "+l2x2", hier: &l2slow},
		// In-order row: the Figure 3 machine, swept across the memory
		// hierarchy.
		{suffix: "+io", inOrder: true},
		{suffix: "+io-l1x2", hier: &l1slow, inOrder: true},
		{suffix: "+io-l2x2", hier: &l2slow, inOrder: true},
		{suffix: "+io-l2half", hier: &l2half, inOrder: true},
		{suffix: "+io-dram2x", hier: &dramslow, inOrder: true},
		{suffix: "+io-fe2", cpu: &fe2, inOrder: true},
	}
	var out []BinaryConfig
	for _, v := range variants {
		out = append(out,
			BinaryConfig{
				Name: "plain" + v.suffix, Pass: prog.Plain(),
				CPU: v.cpu, Hier: v.hier, InOrder: v.inOrder,
			},
			BinaryConfig{
				Name: "secure-full" + v.suffix, Pass: prog.RESTFull(64), Mode: core.Secure,
				CPU: v.cpu, Hier: v.hier, InOrder: v.inOrder,
			},
		)
	}
	return out
}

// RunFig8Sensitivity sweeps the sensitivity grid on the parallel engine
// (cmd/restbench -fig8sens). Overheads render against the unsuffixed plain
// baseline, so the variant columns read as absolute sensitivity of the whole
// (build × timing) point, matching how Figure 8 reports its bars.
func RunFig8Sensitivity(ctx context.Context, wls []workload.Workload, scale int64, opt ParallelOptions) (*Matrix, error) {
	return RunMatrixParallel(ctx, wls, Fig8SensitivityConfigs(), scale, opt)
}
