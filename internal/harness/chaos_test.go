package harness

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rest/internal/persist"
)

// The storage fault plane's harness-level contract: a sweep over a hardened,
// chaos-injected persistent cache must render byte-identical reports to a
// cache-off sweep at any worker count and any fault rate — every backend
// failure, injected or real, degrades to recompute. These tests are the
// "chaos differential wall" of the robustness story; the per-layer unit
// tests live in internal/persist.

// chaosRender runs the sensitivity sweep with one trace cache and returns
// the rendered table+CSV plus the matrix for cell-wise comparison.
func chaosRender(t *testing.T, tc *TraceCache, workers int) (string, *Matrix) {
	t.Helper()
	wls := subset(t, "lbm")
	m, err := RunMatrixParallel(context.Background(), wls, Fig8SensitivityConfigs(), 1,
		ParallelOptions{Workers: workers, TraceCache: tc})
	if err != nil {
		t.Fatalf("sweep (workers=%d): %v", workers, err)
	}
	return m.RenderOverheadTable("sensitivity") + m.CSV(), m
}

// TestDiskCacheChaosDifferentialWall sweeps the same grid with fault
// injection at 0%, 10%, 50% and 100% per-op rates, cold at -j 1 and warm at
// -j 4, and requires every rendering byte-identical to the cache-off
// baseline and every cell's stats exactly equal. At full fault rate it also
// requires the circuit breaker to have tripped (visible in the exported
// persist.breaker.* counters) and, at the end, that the hardening stack
// leaked no goroutines.
//
// Deliberately not parallel: the goroutine accounting at the end needs the
// package's parallel tests quiescent.
func TestDiskCacheChaosDifferentialWall(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	offRender, offM := chaosRender(t, NewTraceCache(), 4)

	for _, rate := range []float64{0, 0.1, 0.5, 1.0} {
		spec := &persist.ChaosSpec{
			Seed: uint64(1000*rate) + 7,
			Err:  rate, Torn: rate, Corrupt: rate, NoSpace: rate, LockStall: rate,
			Delay: 50 * time.Microsecond,
		}
		opt := persist.Options{
			Chaos:           spec,
			RetryBase:       100 * time.Microsecond,
			OpTimeout:       2 * time.Second,
			BreakerCooldown: 25 * time.Millisecond,
			LockWait:        time.Second,
		}
		dir := t.TempDir()

		coldTC, _ := diskTC(t, dir, opt)
		cold, _ := chaosRender(t, coldTC, 1)
		warmTC, warmPC := diskTC(t, dir, opt)
		warm, warmM := chaosRender(t, warmTC, 4)

		if cold != offRender {
			t.Errorf("rate=%g cold report diverges from cache-off:\noff:  %s\ncold: %s", rate, offRender, cold)
		}
		if warm != offRender {
			t.Errorf("rate=%g warm report diverges from cache-off:\noff:  %s\nwarm: %s", rate, offRender, warm)
		}
		for _, wl := range offM.Workloads {
			for _, cfg := range offM.Configs {
				got, want := warmM.Results[wl][cfg], offM.Results[wl][cfg]
				if got == nil || want == nil {
					t.Fatalf("rate=%g %s/%s: cell missing from a sweep", rate, wl, cfg)
				}
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Errorf("rate=%g %s/%s stats diverge:\nchaos: %+v\noff:   %+v",
						rate, wl, cfg, got.Stats, want.Stats)
				}
			}
		}

		s := warmPC.StackCounters()
		if s.RetryAttempts == 0 {
			t.Errorf("rate=%g: retry layer saw no ops: %+v", rate, s)
		}
		if rate == 0 {
			if s.ChaosErrs+s.ChaosTorn+s.ChaosCorrupt+s.ChaosNoSpace+s.ChaosLockStalls != 0 {
				t.Errorf("rate=0 injected faults: %+v", s)
			}
		} else if s.ChaosErrs == 0 {
			t.Errorf("rate=%g injected nothing: %+v", rate, s)
		}
		if rate == 1.0 {
			if s.BreakerTrips == 0 {
				t.Errorf("sustained full-rate faults never tripped the breaker: %+v", s)
			}
			if s.Retries == 0 || s.RetryGiveups == 0 {
				t.Errorf("full-rate faults never exhausted a retry budget: %+v", s)
			}
			// The transitions must be visible in the exported obs namespace.
			reg := newTestRegistry(t, warmTC)
			for _, name := range []string{
				"persist.breaker.trips", "persist.retry.giveups", "persist.chaos.errs",
			} {
				if reg[name] == 0 {
					t.Errorf("%s not exported to obs: %v", name, reg)
				}
			}
		}
	}

	// Everything the stack spawned (timeout watchers, retry sleeps) must be
	// gone once the sweeps are done.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= goroutinesBefore+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after settle",
				goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDiskCacheTornWriteCrashConsistency pins crash recovery end to end.
// Phase one simulates a writer dying mid-publish on every store: each
// artifact lands as a bare prefix under its final name. The next open must
// adopt, detect and evict every partial entry while the sweep recomputes to
// a byte-identical report, and the run after that must serve clean hits.
// Phase two tears the manifest itself mid-update and proves the open after
// it rebuilds the index from the store with no loss.
func TestDiskCacheTornWriteCrashConsistency(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	baseline, _ := chaosRender(t, NewTraceCache(), 2)

	// Phase one: every Put tears. Retries and the breaker are disabled so
	// every store attempt independently leaves its torn remnant behind.
	tornTC, _ := diskTC(t, dir, persist.Options{
		Chaos:            &persist.ChaosSpec{Torn: 1, Seed: 3},
		Retries:          -1,
		BreakerThreshold: -1,
	})
	torn, _ := chaosRender(t, tornTC, 2)
	if torn != baseline {
		t.Errorf("torn-write sweep changed the report:\nbase: %s\ntorn: %s", baseline, torn)
	}
	remnants := 0
	for _, sub := range []string{"traces", "results"} {
		files, err := filepath.Glob(filepath.Join(dir, sub, "*"))
		if err != nil {
			t.Fatal(err)
		}
		remnants += len(files)
	}
	if remnants == 0 {
		t.Fatalf("torn writes left no partial entries to recover from")
	}

	// Recovery: a clean open adopts the remnants, the sweep rejects each on
	// validation and recomputes, and the rewrites heal the store.
	healTC, healPC := diskTC(t, dir, persist.Options{})
	heal, _ := chaosRender(t, healTC, 2)
	if heal != baseline {
		t.Errorf("recovery sweep changed the report")
	}
	if c := healPC.Counters(); c.Corruptions == 0 || c.Stores == 0 {
		t.Errorf("recovery did not evict and rewrite the partial entries: %+v", c)
	}

	warmTC, warmPC := diskTC(t, dir, persist.Options{})
	warm, _ := chaosRender(t, warmTC, 2)
	if warm != baseline {
		t.Errorf("healed warm sweep changed the report")
	}
	if c := warmPC.Counters(); c.ResultHits == 0 || c.Corruptions != 0 {
		t.Errorf("store did not heal: %+v", c)
	}

	// Phase two: tear the manifest itself (the heal sweep wrote a real one)
	// and prove the next open rebuilds the index from the files.
	mpath := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("heal sweep left no manifest: %v", err)
	}
	if err := os.WriteFile(mpath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rebuiltTC, rebuiltPC := diskTC(t, dir, persist.Options{})
	rebuilt, _ := chaosRender(t, rebuiltTC, 2)
	if rebuilt != baseline {
		t.Errorf("post-torn-manifest sweep changed the report")
	}
	if c := rebuiltPC.Counters(); c.ResultHits == 0 {
		t.Errorf("torn manifest lost the store's entries: %+v", c)
	}
}

// TestDiskCacheVanishedDirMidSweep pins the degrade-to-recompute guarantee
// against the cache directory disappearing out from under an attached,
// already-open cache: every subsequent backend op fails, and the sweep must
// complete with no error and a byte-identical report — the restbench
// analogue of "exit 0".
func TestDiskCacheVanishedDirMidSweep(t *testing.T) {
	t.Parallel()
	baseline, baseM := chaosRender(t, NewTraceCache(), 2)

	dir := t.TempDir()
	coldTC, pc := diskTC(t, dir, persist.Options{})
	cold, _ := chaosRender(t, coldTC, 2)
	if cold != baseline {
		t.Errorf("cold sweep diverges from cache-off")
	}
	beforeGone := pc.Counters()

	// The directory vanishes while the cache handle stays attached.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	goneTC := NewTraceCache()
	goneTC.AttachDisk(pc)
	gone, goneM := chaosRender(t, goneTC, 2)
	if gone != baseline {
		t.Errorf("vanished-dir sweep changed the report:\nbase: %s\ngone: %s", baseline, gone)
	}
	for _, wl := range baseM.Workloads {
		for _, cfg := range baseM.Configs {
			got, want := goneM.Results[wl][cfg], baseM.Results[wl][cfg]
			if got == nil || want == nil {
				t.Fatalf("%s/%s: cell missing after the dir vanished", wl, cfg)
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Errorf("%s/%s stats diverge after the dir vanished", wl, cfg)
			}
		}
	}
	if c := pc.Counters(); c.ResultHits != beforeGone.ResultHits || c.TraceHits != beforeGone.TraceHits {
		t.Errorf("a vanished dir cannot serve hits: before %+v, after %+v", beforeGone, c)
	}
}
