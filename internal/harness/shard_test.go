package harness

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rest/internal/persist"
)

// The distributed-sweep contract: shard i/n runs exactly its slice of the
// grid, shards share artifacts through one cache store (exercised here over
// the real HTTP server/client pair), and a merge — a plain full-grid run over
// the shared store — renders byte-identical reports to a single-process
// sweep at any shard count, cold or warm, at any worker count. Killed or
// duplicated shards only ever cost recomputation, never correctness.

// TestShardPartitionMath pins the pure partition: the spec grammar, exact
// coverage (every cell owned by exactly one shard), and Size accounting.
func TestShardPartitionMath(t *testing.T) {
	t.Parallel()

	for spec, want := range map[string]Shard{
		"1/1": {0, 1}, "2/4": {1, 4}, " 3 / 3 ": {2, 3},
	} {
		got, err := ParseShard(spec)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, bad := range []string{"", "2", "0/4", "5/4", "-1/4", "1/0", "a/b", "1/2/3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) should fail", bad)
		}
	}

	if (Shard{}).Enabled() || !(Shard{Count: 1}).Enabled() {
		t.Fatalf("Enabled: zero value must be off, 1/1 must be on")
	}
	if (Shard{}).String() != "" || (Shard{Index: 1, Count: 4}).String() != "2/4" {
		t.Fatalf("String rendering broken")
	}

	// The unit deal: every unit has exactly one owner, and after any prefix
	// of units the per-shard counts differ by at most one (the snake deal
	// never lets a shard fall behind).
	for _, n := range []int{1, 2, 3, 7} {
		counts := make([]int, n)
		for u := 0; u < 40; u++ {
			owner := -1
			for k := 0; k < n; k++ {
				if (Shard{Index: k, Count: n}).Owns(u) {
					if owner >= 0 {
						t.Fatalf("unit %d owned by shards %d and %d (n=%d)", u, owner, k, n)
					}
					owner = k
				}
			}
			if owner < 0 {
				t.Fatalf("unit %d of n=%d has no owner", u, n)
			}
			counts[owner]++
			lo, hi := counts[0], counts[0]
			for _, c := range counts {
				lo, hi = min(lo, c), max(hi, c)
			}
			if hi-lo > 1 {
				t.Fatalf("after unit %d (n=%d) shard loads %v diverge by more than 1", u, n, counts)
			}
		}
	}
	if !(Shard{}).Owns(3) {
		t.Fatalf("disabled shard must own the full grid")
	}

	// The identity partition: over a real sensitivity grid every cell is
	// owned by exactly one shard, cells sharing a functional identity (one
	// captured trace) always land on the same shard even though the grid
	// alternates flavours, and the unit loads stay balanced.
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	for _, n := range []int{2, 4} {
		ownerOf := map[traceKey]int{}
		cellOwners := make([]int, len(wls)*len(cfgs))
		for i := range cellOwners {
			cellOwners[i] = -1
		}
		for k := 0; k < n; k++ {
			owns := (Shard{Index: k, Count: n}).ownership(wls, cfgs, 1, 0)
			i := 0
			for _, wl := range wls {
				for _, cfg := range cfgs {
					if owns[i] {
						if cellOwners[i] >= 0 {
							t.Fatalf("n=%d: cell %d owned by shards %d and %d", n, i, cellOwners[i], k)
						}
						cellOwners[i] = k
						key := cellTraceKey(wl.Name, cfg, 1, 0)
						if prev, seen := ownerOf[key]; seen && prev != k {
							t.Fatalf("n=%d: identity of cell %d split across shards %d and %d", n, i, prev, k)
						}
						ownerOf[key] = k
					}
					i++
				}
			}
		}
		for i, k := range cellOwners {
			if k < 0 {
				t.Fatalf("n=%d: cell %d has no owner", n, i)
			}
		}
	}
}

// shardCacheServer starts the real CacheServer over a shared MemBackend and
// returns its URL: the store every simulated shard process shares.
func shardCacheServer(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	persist.NewCacheServer(persist.NewMemBackend()).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// httpTC builds a fresh TraceCache + persist.Cache over the HTTP backend —
// one simulated shard process's worth of cache state.
func httpTC(t *testing.T, url string, opt persist.Options) (*TraceCache, *persist.Cache) {
	t.Helper()
	hb, err := persist.NewHTTPBackend(url, persist.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := persist.OpenBackend(hb, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	tc := NewTraceCache()
	tc.AttachDisk(pc)
	return tc, pc
}

// sensRender runs the sensitivity sweep (optionally one shard of it) and
// returns the rendered report plus the matrix.
func sensRender(t *testing.T, tc *TraceCache, workers int, shard Shard) (string, *Matrix) {
	t.Helper()
	wls := subset(t, "lbm")
	m, err := RunMatrixParallel(context.Background(), wls, Fig8SensitivityConfigs(), 1,
		ParallelOptions{Workers: workers, TraceCache: tc, Shard: shard})
	if err != nil {
		t.Fatalf("sweep (workers=%d, shard=%s): %v", workers, shard, err)
	}
	return m.RenderOverheadTable("sensitivity") + m.CSV(), m
}

// TestShardMergeByteIdentity is the distributed differential wall: shards of
// the Fig8 sensitivity sweep and the Fig3 sweep run as separate simulated
// processes (fresh TraceCache + fresh Cache per shard, all sharing one HTTP
// cache server), then a merge run assembles the full grid from the shared
// store. The merged report must be byte-identical to the single-process
// cache-off report — at 2 and 4 shards, merging cold (first assembly) and
// warm (repeat assembly), at j=1 and j=4.
func TestShardMergeByteIdentity(t *testing.T) {
	t.Parallel()
	baseline, _ := sensRender(t, NewTraceCache(), 1, Shard{})

	for _, n := range []int{2, 4} {
		url := shardCacheServer(t)

		// The shard processes: cold, j=1 for half the shards and j=4 for the
		// rest so in-shard parallelism is covered too.
		sawCells := 0
		for k := 0; k < n; k++ {
			workers := 1
			if k%2 == 1 {
				workers = 4
			}
			tc, _ := httpTC(t, url, persist.Options{})
			_, m := sensRender(t, tc, workers, Shard{Index: k, Count: n})
			for _, wl := range m.Workloads {
				sawCells += len(m.Cycles[wl])
			}
		}
		if want := len(Fig8SensitivityConfigs()); sawCells != want {
			t.Fatalf("n=%d: shards ran %d cells, want %d", n, sawCells, want)
		}

		// Cold merge (first assembly from shard artifacts), then warm merge,
		// at both worker counts.
		for _, workers := range []int{1, 4} {
			tc, pc := httpTC(t, url, persist.Options{})
			merged, _ := sensRender(t, tc, workers, Shard{})
			if merged != baseline {
				t.Fatalf("n=%d j=%d: merged report differs from single-process baseline", n, workers)
			}
			if c := pc.Counters(); c.ResultHits == 0 {
				t.Fatalf("n=%d j=%d: merge recomputed everything (result hits = 0): %+v", n, workers, c)
			}
		}
	}
}

// TestShardMergeFig3 runs the same differential for the Figure 3 report.
func TestShardMergeFig3(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	base, err := RunFig3Parallel(context.Background(), wls, 1, ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline := base.Render()

	url := shardCacheServer(t)
	for k := 0; k < 2; k++ {
		tc, _ := httpTC(t, url, persist.Options{})
		if _, err := RunFig3Parallel(context.Background(), wls, 1,
			ParallelOptions{Workers: 1, TraceCache: tc, Shard: Shard{Index: k, Count: 2}}); err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
	}
	tc, pc := httpTC(t, url, persist.Options{})
	merged, err := RunFig3Parallel(context.Background(), wls, 1,
		ParallelOptions{Workers: 4, TraceCache: tc})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Render() != baseline {
		t.Fatalf("merged Fig3 report differs from single-process baseline")
	}
	if c := pc.Counters(); c.ResultHits == 0 {
		t.Fatalf("Fig3 merge was not served from the shared store: %+v", c)
	}
}

// TestShardEmpty pins the n > units edge: a shard that owns no cells runs
// zero work, returns an empty (hole-free) matrix without error, reports
// owned=0 through OnPlan, and its renderers produce well-formed
// (header-only) output.
func TestShardEmpty(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()[:2] // two functional identities: units 0 and 1
	planOwned, planTotal := -1, -1
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 4, Shard: Shard{Index: 6, Count: 8},
			OnPlan: func(owned, total int) { planOwned, planTotal = owned, total }})
	if err != nil {
		t.Fatalf("empty shard must succeed: %v", err)
	}
	if len(m.Workloads) != 0 || len(m.Holes) != 0 {
		t.Fatalf("empty shard produced cells or holes: %+v", m)
	}
	if planOwned != 0 || planTotal != len(wls)*len(cfgs) {
		t.Fatalf("OnPlan reported %d of %d cells, want 0 of %d", planOwned, planTotal, len(wls)*len(cfgs))
	}
	if out := m.RenderOverheadTable("sensitivity") + m.CSV(); out == "" {
		t.Fatalf("empty-shard render produced nothing")
	}
}

// TestShardDuplicateSubmission pins idempotence: resubmitting a shard whose
// artifacts are already in the shared store is served entirely from the
// result tier — no recomputation, no new stored objects.
func TestShardDuplicateSubmission(t *testing.T) {
	t.Parallel()
	mb := persist.NewMemBackend()
	shard := Shard{Index: 0, Count: 2}

	memTC := func() (*TraceCache, *persist.Cache) {
		pc, err := persist.OpenBackend(mb, persist.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tc := NewTraceCache()
		tc.AttachDisk(pc)
		return tc, pc
	}

	tc1, _ := memTC()
	first, m1 := sensRender(t, tc1, 1, shard)
	objects := mb.Len("result")
	if objects == 0 {
		t.Fatalf("first submission stored nothing")
	}

	tc2, pc2 := memTC()
	second, _ := sensRender(t, tc2, 1, shard)
	if second != first {
		t.Fatalf("duplicate submission rendered differently")
	}
	cells := 0
	for _, wl := range m1.Workloads {
		cells += len(m1.Cycles[wl])
	}
	c := pc2.Counters()
	if c.ResultHits != uint64(cells) || c.Stores != 0 {
		t.Fatalf("duplicate submission not idempotent: %d cells, counters %+v", cells, c)
	}
	if mb.Len("result") != objects {
		t.Fatalf("duplicate submission grew the store: %d → %d objects", objects, mb.Len("result"))
	}
}

// TestShardKilledLeaderRecovery pins crash consistency: a shard killed
// mid-sweep leaves partial artifacts and possibly an abandoned capture lock;
// rerunning the shard completes from the partial artifacts (served cells are
// result hits), recomputes only what is missing, and takes over the
// abandoned lock once it is stale — the store ends up with exactly the full
// artifact set, no duplicates.
func TestShardKilledLeaderRecovery(t *testing.T) {
	t.Parallel()
	mb := persist.NewMemBackend()
	shard := Shard{Index: 0, Count: 2}
	opt := persist.Options{StaleLockAge: 50 * time.Millisecond, LockWait: 2 * time.Second}

	pc1, err := persist.OpenBackend(mb, opt)
	if err != nil {
		t.Fatal(err)
	}
	tc1 := NewTraceCache()
	tc1.AttachDisk(pc1)
	first, _ := sensRender(t, tc1, 1, shard)
	full := mb.Len("result")

	// The "kill": the dead process was mid-capture on its first cell, so that
	// cell's result and trace artifacts never landed and the capture lock it
	// held was abandoned. Every other artifact survives.
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	k0 := cellTraceKey(wls[0].Name, cfgs[0], 1, 0)
	if err := mb.Delete("result", resultIdentity(k0, cfgs[0]).String()); err != nil {
		t.Fatal(err)
	}
	fid := funcIdentity(k0)
	if err := mb.Delete("trace", fid.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.TryLock(fid.String()); err != nil {
		t.Fatal(err) // deliberately never released: the dead shard's lock
	}
	time.Sleep(60 * time.Millisecond) // let the abandoned lock go stale

	pc2, err := persist.OpenBackend(mb, opt)
	if err != nil {
		t.Fatal(err)
	}
	tc2 := NewTraceCache()
	tc2.AttachDisk(pc2)
	rerun, _ := sensRender(t, tc2, 1, shard)
	if rerun != first {
		t.Fatalf("rerun after kill rendered differently")
	}
	c := pc2.Counters()
	if c.ResultHits == 0 {
		t.Fatalf("rerun ignored the surviving artifacts: %+v", c)
	}
	if c.Stores == 0 {
		t.Fatalf("rerun recomputed nothing despite missing artifacts: %+v", c)
	}
	if got := mb.Len("result"); got != full {
		t.Fatalf("store not restored to the full artifact set: %d vs %d", got, full)
	}
	if _, err := mb.LockAge(fid.String()); err == nil {
		t.Fatalf("abandoned capture lock still held after takeover")
	}
}

// TestShardObsCounters pins the observability surface: a sharded metrics
// sweep exports harness.shard.* identity/coverage counters, and the disk
// export carries the persist.lock.* contention counters.
func TestShardObsCounters(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	shard := Shard{Index: 1, Count: 2}
	planOwned := -1
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 2, Metrics: true, Shard: shard,
			OnPlan: func(owned, _ int) { planOwned = owned }})
	if err != nil {
		t.Fatal(err)
	}
	grid := len(wls) * len(cfgs)
	if planOwned <= 0 || planOwned >= grid {
		t.Fatalf("OnPlan reported %d owned cells, want a strict slice of %d", planOwned, grid)
	}
	want := map[string]uint64{
		"harness.shard.index":       1,
		"harness.shard.count":       2,
		"harness.shard.cells":       uint64(planOwned),
		"harness.shard.cells_total": uint64(grid),
	}
	got := map[string]uint64{}
	for _, mt := range m.Obs.Snapshot() {
		got[mt.Name] = mt.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}

	// An unsharded metrics sweep carries no shard rows.
	m2, err := RunMatrixParallel(context.Background(), wls, Fig8SensitivityConfigs()[:1], 1,
		ParallelOptions{Workers: 1, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range m2.Obs.Snapshot() {
		if mt.Name == "harness.shard.index" || mt.Name == "harness.shard.count" {
			t.Errorf("unsharded sweep exported %s", mt.Name)
		}
	}

	// The disk-cache export includes the lock-plane counters.
	tc, _ := diskTC(t, t.TempDir(), persist.Options{})
	reg := newTestRegistry(t, tc)
	for _, name := range []string{"persist.lock.contended", "persist.lock.waits", "persist.lock.wait_ns"} {
		if _, ok := reg[name]; !ok {
			t.Errorf("recordDiskObs missing %s", name)
		}
	}
}
