package harness

import (
	"fmt"
	"strings"
)

// RenderBarChart draws the overhead matrix as horizontal ASCII bars, one
// group per benchmark — a terminal rendition of Figure 7/8's bar groups.
// Bars are clipped at clipPct (the paper clips at 180% and annotates the
// clipped values, which we reproduce).
func (m *Matrix) RenderBarChart(title string, clipPct float64) string {
	const width = 50
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "(bar = overhead over plain, full scale %.0f%%, '>' = clipped)\n\n", clipPct)
	for _, wl := range m.Workloads {
		fmt.Fprintf(&b, "%s\n", wl)
		for _, c := range m.Configs {
			if c == "plain" {
				continue
			}
			if !m.complete(wl, c) {
				reason, _ := m.Hole(wl, c)
				if reason == "" {
					reason, _ = m.Hole(wl, "plain")
				}
				fmt.Fprintf(&b, "  %-16s|%-*s|  hole: %s\n", c, width, "", reason)
				continue
			}
			ov := m.Overhead(wl, c)
			clipped := ov > clipPct
			frac := ov / clipPct
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			n := int(frac * width)
			bar := strings.Repeat("#", n)
			mark := " "
			if clipped {
				mark = ">"
			}
			fmt.Fprintf(&b, "  %-16s|%-*s|%s %6.1f%%\n", c, width, bar, mark, ov)
		}
	}
	return b.String()
}
