package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rest/internal/prog"
	"rest/internal/workload"
)

// overflowWorkload is a synthetic workload whose program reads one word past
// a heap allocation's 64-byte-rounded extent, landing in the bookend
// redzone. Plain builds complete (the word is unpoisoned simulated memory);
// any protecting pass flags the access, which the harness reports as a
// "spurious detection" cell error — the trigger the aggregation tests need.
func overflowWorkload(name string) workload.Workload {
	return workload.Workload{
		Name:        name,
		Description: "deliberate off-by-one heap read (test fixture)",
		Build: func(scale int64) func(b *prog.Builder) {
			return func(b *prog.Builder) {
				f := b.Func("main")
				p := f.Reg()
				v := f.Reg()
				f.CallMallocI(p, 16)
				f.Load(v, p, 64, 8)
				f.Checksum(v)
			}
		},
	}
}

func goodWorkload(t *testing.T) workload.Workload {
	t.Helper()
	wl, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestParallelErrorAggregation: with cancellation off, a poisoned cell must
// surface its error — workload and config names intact — while every other
// cell still completes and lands in the partial matrix.
func TestParallelErrorAggregation(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{goodWorkload(t), overflowWorkload("overflower")}
	cfgs := []BinaryConfig{
		{Name: "plain", Pass: prog.Plain()},
		{Name: "secure-heap", Pass: prog.RESTHeap(64)},
	}
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 2})
	if err == nil {
		t.Fatal("poisoned cell produced no error")
	}
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	if len(merr.Cells) != 1 || merr.Skipped != 0 {
		t.Fatalf("got %d cell errors, %d skipped; want 1, 0: %v",
			len(merr.Cells), merr.Skipped, err)
	}
	c := merr.Cells[0]
	if c.Workload != "overflower" || c.Config != "secure-heap" {
		t.Errorf("error attributed to %s/%s, want overflower/secure-heap", c.Workload, c.Config)
	}
	for _, want := range []string{"overflower", "secure-heap", "detect"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error %q missing %q", err.Error(), want)
		}
	}
	// The three healthy cells completed despite the failure.
	for _, cell := range []struct{ wl, cfg string }{
		{"lbm", "plain"}, {"lbm", "secure-heap"}, {"overflower", "plain"},
	} {
		if m.Cycles[cell.wl][cell.cfg] == 0 {
			t.Errorf("healthy cell %s/%s missing from partial matrix", cell.wl, cell.cfg)
		}
	}
	if _, ok := m.Results["overflower"]["secure-heap"]; ok {
		t.Error("failed cell has a result in the matrix")
	}
}

// TestParallelFailFast: with cancellation on and one worker, the grid is
// processed in order, so a failure in the first cell must skip all later
// cells deterministically.
func TestParallelFailFast(t *testing.T) {
	t.Parallel()
	wls := []workload.Workload{overflowWorkload("overflower"), goodWorkload(t)}
	cfgs := []BinaryConfig{
		{Name: "secure-heap", Pass: prog.RESTHeap(64)},
		{Name: "plain", Pass: prog.Plain()},
	}
	_, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 1, FailFast: true})
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	if len(merr.Cells) != 1 {
		t.Fatalf("got %d cell errors, want 1: %v", len(merr.Cells), err)
	}
	if merr.Skipped != 3 {
		t.Errorf("skipped %d cells after cancellation, want 3", merr.Skipped)
	}
	if !strings.Contains(err.Error(), "skipped after cancellation") {
		t.Errorf("aggregated error %q does not report the skips", err.Error())
	}
}

// TestParallelExternalCancellation: a context cancelled before the sweep
// starts must skip every cell and run nothing.
func TestParallelExternalCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := RunMatrixParallel(ctx, []workload.Workload{goodWorkload(t)},
		Fig7Configs(), 1, ParallelOptions{Workers: 2})
	var merr *MatrixError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	if merr.Skipped != len(Fig7Configs()) || len(merr.Cells) != 0 {
		t.Errorf("got %d skipped, %d errors; want all %d skipped",
			merr.Skipped, len(merr.Cells), len(Fig7Configs()))
	}
	if len(m.Cycles["lbm"]) != 0 {
		t.Error("cancelled sweep still produced results")
	}
}

// TestParallelWorkerDefaults pins the worker resolution rule.
func TestParallelWorkerDefaults(t *testing.T) {
	t.Parallel()
	if got := (ParallelOptions{}).EffectiveWorkers(); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
	if got := (ParallelOptions{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Errorf("explicit workers = %d, want 3", got)
	}
	if got := (ParallelOptions{Workers: -2}).EffectiveWorkers(); got < 1 {
		t.Errorf("negative workers resolved to %d, want >= 1", got)
	}
}

// TestParallelCellErrorUnwrap: errors.Is must see through the aggregation to
// the underlying cell error.
func TestParallelCellErrorUnwrap(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("boom")
	merr := &MatrixError{Cells: []*CellError{
		{Workload: "w", Config: "c", Err: sentinel},
	}}
	if !errors.Is(merr, sentinel) {
		t.Error("errors.Is does not reach the wrapped cell error")
	}
	var cerr *CellError
	if !errors.As(merr, &cerr) || cerr.Workload != "w" {
		t.Error("errors.As does not recover the *CellError")
	}
}
