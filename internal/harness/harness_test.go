package harness

import (
	"context"
	"strings"
	"testing"

	"rest/internal/workload"
)

func subset(t *testing.T, names ...string) []workload.Workload {
	t.Helper()
	out := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		wl, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wl)
	}
	return out
}

func TestRunSingle(t *testing.T) {
	wl, _ := workload.ByName("lbm")
	r, err := Run(wl, Fig7Configs()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Stats.Instructions == 0 {
		t.Error("empty run result")
	}
}

func TestMatrixOverheads(t *testing.T) {
	wls := subset(t, "lbm", "xalanc")
	m, err := RunMatrix(wls, Fig7Configs(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Shape assertions from the paper (Figure 7):
	// 1. ASan overhead must far exceed REST secure overhead everywhere.
	for _, wl := range m.Workloads {
		asan := m.Overhead(wl, "asan")
		secure := m.Overhead(wl, "secure-full")
		if asan <= secure {
			t.Errorf("%s: asan (%.1f%%) not > secure-full (%.1f%%)", wl, asan, secure)
		}
	}
	// 2. Allocation-sparse lbm has near-zero REST overhead; alloc-heavy
	//    xalanc pays more.
	if ov := m.Overhead("lbm", "secure-full"); ov > 5 {
		t.Errorf("lbm secure-full overhead = %.1f%%, want < 5%%", ov)
	}
	if m.Overhead("xalanc", "secure-full") <= m.Overhead("lbm", "secure-full") {
		t.Error("xalanc REST overhead not above lbm's")
	}
	// 3. Debug mode costs more than secure mode.
	for _, wl := range m.Workloads {
		if m.Overhead(wl, "debug-full") < m.Overhead(wl, "secure-full") {
			t.Errorf("%s: debug (%.1f%%) < secure (%.1f%%)",
				wl, m.Overhead(wl, "debug-full"), m.Overhead(wl, "secure-full"))
		}
	}
	// 4. PerfectHW ≈ secure (hardware cost ~0): within a few points.
	for _, wl := range m.Workloads {
		d := m.Overhead(wl, "secure-full") - m.Overhead(wl, "perfecthw-full")
		if d < -5 || d > 15 {
			t.Errorf("%s: secure-perfecthw gap = %.1f points, want small", wl, d)
		}
	}
	// 5. Full ≈ heap for REST (stack protection nearly free).
	for _, wl := range m.Workloads {
		d := m.Overhead(wl, "secure-full") - m.Overhead(wl, "secure-heap")
		if d < -5 || d > 10 {
			t.Errorf("%s: full-heap gap = %.1f points, want small", wl, d)
		}
	}

	// Means and renderers.
	if m.WtdAriMeanOverhead("asan") <= m.WtdAriMeanOverhead("secure-full") {
		t.Error("mean asan overhead not above mean REST secure overhead")
	}
	tbl := m.RenderOverheadTable("Figure 7 (subset)")
	if !strings.Contains(tbl, "WtdAriMean") || !strings.Contains(tbl, "GeoMean") {
		t.Error("rendered table missing mean rows")
	}
	csv := m.CSV()
	if !strings.Contains(csv, "lbm,") {
		t.Error("CSV missing workload row")
	}
}

func TestFig3Breakdown(t *testing.T) {
	wls := subset(t, "xalanc", "lbm")
	r, err := RunFig3(context.Background(), wls, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Access validation must be the dominant component for both (the
	// paper's "most persistent and grievous source of overhead").
	for _, wl := range r.Workloads {
		parts := r.Breakdown[wl]
		if len(parts) != 4 {
			t.Fatalf("%s: %d components", wl, len(parts))
		}
	}
	checks := r.Breakdown["lbm"][2]
	if checks <= r.Breakdown["lbm"][0] {
		t.Errorf("lbm: access validation (%.1f) not above allocator (%.1f)",
			checks, r.Breakdown["lbm"][0])
	}
	// Allocator component significant only for the alloc-heavy workload.
	if r.Breakdown["xalanc"][0] <= r.Breakdown["lbm"][0] {
		t.Errorf("xalanc allocator component (%.1f) not above lbm's (%.1f)",
			r.Breakdown["xalanc"][0], r.Breakdown["lbm"][0])
	}
	out := r.Render()
	if !strings.Contains(out, "Memory Access Validation") {
		t.Error("render missing component header")
	}
}

func TestTableIConformance(t *testing.T) {
	out, ok := RunTableI()
	if !ok {
		t.Errorf("Table I conformance failed:\n%s", out)
	}
	if !strings.Contains(out, "eviction") {
		t.Error("Table I output missing eviction row")
	}
}

func TestTableRenderers(t *testing.T) {
	if !strings.Contains(RenderTableII(), "192-entry ROB") {
		t.Error("Table II missing ROB size")
	}
	t3 := RenderTableIII()
	if !strings.Contains(t3, "REST") || !strings.Contains(t3, "CHERI") {
		t.Error("Table III missing rows")
	}
}

func TestMicroStats(t *testing.T) {
	wl, _ := workload.ByName("xalanc")
	s, err := RunMicroStats(context.Background(), wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	// §VI-B: debug mode blocks the ROB on stores far more than secure.
	if s.DebugROBStoreBlock <= s.SecureROBStoreBlock {
		t.Errorf("debug ROB store block (%d) not above secure (%d)",
			s.DebugROBStoreBlock, s.SecureROBStoreBlock)
	}
	if s.TokenL2MemPerKInstr < 0 {
		t.Error("negative token crossing rate")
	}
	if !strings.Contains(s.Render(), "ROB blocked-by-store") {
		t.Error("render missing stats")
	}
}

func TestFig8Widths(t *testing.T) {
	wls := subset(t, "xalanc")
	m, err := RunMatrix(wls, append(Fig8Configs(), BinaryConfig{Name: "plain"}), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: token width makes no significant performance difference.
	base := m.Overhead("xalanc", "64-full")
	for _, cfg := range []string{"16-full", "32-full"} {
		d := m.Overhead("xalanc", cfg) - base
		if d < -15 || d > 15 {
			t.Errorf("width config %s deviates %.1f points from 64-full", cfg, d)
		}
	}
}
