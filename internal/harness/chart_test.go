package harness

import (
	"strings"
	"testing"
)

// chartMatrix hand-builds a two-workload matrix exercising every bar-chart
// path: a normal bar, a clipped bar (> clipPct), a zero-overhead bar, a cell
// hole, and a workload whose plain baseline itself is a hole.
func chartMatrix() *Matrix {
	m := &Matrix{
		Workloads: []string{"alpha", "beta"},
		Configs:   []string{"plain", "asan", "secure-full"},
		Cycles: map[string]map[string]uint64{
			"alpha": {"plain": 1000, "asan": 3000, "secure-full": 1250},
			"beta":  {"asan": 4000},
		},
	}
	m.AddHole("alpha", "secure-full-x", "unused")
	m.AddHole("beta", "plain", "watchdog: wall_clock budget exceeded (1s)")
	m.AddHole("beta", "secure-full", "panic: boom")
	return m
}

// TestRenderBarChartGolden pins the chart byte-for-byte, including the holes
// path: a hole renders an empty bar with its reason (falling back to the
// plain baseline's reason when the baseline is the missing cell), and a bar
// past the clip threshold renders full-width with the '>' marker — never a
// silent zero in either case.
func TestRenderBarChartGolden(t *testing.T) {
	t.Parallel()
	got := chartMatrix().RenderBarChart("Figure 7 (golden)", 180)
	want := strings.Join([]string{
		"Figure 7 (golden)",
		"(bar = overhead over plain, full scale 180%, '>' = clipped)",
		"",
		"alpha",
		"  asan            |##################################################|>  200.0%",
		"  secure-full     |######                                            |    25.0%",
		"beta",
		"  asan            |                                                  |  hole: watchdog: wall_clock budget exceeded (1s)",
		"  secure-full     |                                                  |  hole: panic: boom",
		"",
	}, "\n")
	if got != want {
		t.Errorf("bar chart diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderBarChartFullMatrix checks the no-hole fast path renders every
// non-baseline config and no hole annotations.
func TestRenderBarChartFullMatrix(t *testing.T) {
	t.Parallel()
	m := &Matrix{
		Workloads: []string{"alpha"},
		Configs:   []string{"plain", "asan"},
		Cycles: map[string]map[string]uint64{
			"alpha": {"plain": 100, "asan": 190},
		},
	}
	got := m.RenderBarChart("t", 180)
	if strings.Contains(got, "hole") {
		t.Errorf("full matrix rendered a hole:\n%s", got)
	}
	if !strings.Contains(got, "90.0%") {
		t.Errorf("expected 90%% bar:\n%s", got)
	}
	if strings.Contains(got, "plain ") && strings.Count(got, "|") != 2 {
		t.Errorf("baseline must not get a bar:\n%s", got)
	}
}
