package harness

import (
	"sync"
	"time"

	"rest/internal/obs"
	"rest/internal/obs/otlp"
)

// TelemetryExporter is the streaming telemetry plane glued onto a sweep:
// it turns the engine's CellEvent stream into OTLP span lines on a
// subscriber Bus, keeps the obs.Live progress/metric state current, and
// answers live snapshot queries for the /otlp/metrics endpoint and the
// expvar "rest" key. restbench (-serve/-pprof), the telemetry differential
// tests and the exporter-overhead benchmark all share this one glue type,
// so what ships is what is measured.
//
// Everything here is read-only with respect to the sweep: the exporter
// hangs off ParallelOptions.OnCell (wall-clock facts, outside the
// determinism contract) and reads cache counters that are themselves
// snapshots. The byte-identical-report invariant therefore holds with any
// number of attached collectors — including stalled ones, because the Bus
// drops rather than blocks.
type TelemetryExporter struct {
	// Live carries progress counts and the merged live registry (also the
	// expvar payload). Created by NewTelemetryExporter.
	Live *obs.Live
	// Bus fans exported lines out to stream subscribers.
	Bus *otlp.Bus
	// Service names the OTLP resource.
	Service string
	// Start anchors every exported data point's start timestamp.
	Start time.Time
	// TraceCache/Disk, when attached, contribute live cache counters to
	// every snapshot (the same harness.trace_cache.* / harness.diskcache.*
	// / persist.* names the end-of-sweep aggregate records).
	TraceCache *TraceCache
	// Now is the export clock (nil = time.Now), injected in tests.
	Now func() time.Time
	// Shard, when enabled, stamps every snapshot with the process's slice of
	// a distributed sweep, so an attached -watch dashboard can tell which
	// shard it is looking at.
	Shard Shard

	mu     sync.Mutex
	totals map[string]int // per-sweep planned cell counts, for the live gauges
}

// NewTelemetryExporter builds an exporter for one restbench invocation.
func NewTelemetryExporter(service string, tc *TraceCache) *TelemetryExporter {
	return &TelemetryExporter{
		Live:       &obs.Live{},
		Bus:        otlp.NewBus(),
		Service:    service,
		Start:      time.Now(),
		TraceCache: tc,
	}
}

func (x *TelemetryExporter) now() time.Time {
	if x.Now != nil {
		return x.Now()
	}
	return time.Now()
}

// AddSweep registers one upcoming sweep's grid size (mirrors
// Live.AddTotal, which it also calls). Nil-safe.
func (x *TelemetryExporter) AddSweep(name string, cells int) {
	if x == nil {
		return
	}
	x.Live.AddTotal(cells)
	x.mu.Lock()
	if x.totals == nil {
		x.totals = make(map[string]int)
	}
	x.totals[name] += cells
	x.mu.Unlock()
}

// OnCell returns the event callback for one named sweep: each finished
// cell updates the Live state and is published as one OTLP span line.
// The returned func is safe for concurrent use (the Bus and Live carry the
// locks). Nil-safe: a nil exporter returns nil, disabling the stream.
func (x *TelemetryExporter) OnCell(sweep string) func(CellEvent) {
	if x == nil {
		return nil
	}
	res := otlp.ServiceResource(x.Service)
	return func(ev CellEvent) {
		ok := ev.Err == nil && !ev.Skipped
		x.Live.ObserveCell(ok)
		x.Live.MergeObs(ev.Obs)
		x.Bus.Publish(otlp.Line(otlp.EncodeSpans([]otlp.CellSpan{CellEventSpan(sweep, ev)}, res)))
	}
}

// CellEventSpan flattens one CellEvent into the exporter-facing span shape.
func CellEventSpan(sweep string, ev CellEvent) otlp.CellSpan {
	s := otlp.CellSpan{
		Sweep:    sweep,
		Worker:   ev.Worker,
		Index:    ev.Index,
		Total:    ev.Total,
		Workload: ev.Workload,
		Config:   ev.Config,
		Start:    ev.Start,
		End:      ev.End,
		Verdict:  "ok",
		Source:   ev.Source,
		Instrs:   ev.Instrs,
		Cycles:   ev.Cycles,
	}
	switch {
	case ev.Skipped:
		s.Verdict, s.Reason = "skipped", "sweep cancelled"
	case ev.Err != nil:
		s.Verdict, s.Reason = "hole", holeReason(ev.Err)
	}
	return s
}

// Snapshot assembles the live metric view every export surface serves: the
// merged per-cell registries (when the sweep collects them), the live
// progress gauges, and the cache planes' current counters. Nil-safe.
func (x *TelemetryExporter) Snapshot() []obs.Metric {
	if x == nil {
		return nil
	}
	reg := obs.NewRegistry()
	total, done, holes := x.Live.Progress()
	reg.Gauge("harness.live.cells_total").Set(uint64(total))
	reg.Gauge("harness.live.cells_done").Set(uint64(done))
	reg.Gauge("harness.live.cells_holes").Set(uint64(holes))
	published, dropped := x.Bus.Counters()
	reg.Counter("harness.live.stream_published").Add(published)
	reg.Counter("harness.live.stream_dropped").Add(dropped)
	if x.TraceCache != nil {
		x.TraceCache.recordObs(reg)
		x.TraceCache.recordDiskObs(reg)
	}
	if x.Shard.Enabled() {
		reg.Gauge("harness.shard.index").Set(uint64(x.Shard.Index))
		reg.Gauge("harness.shard.count").Set(uint64(x.Shard.Count))
	}
	// The live per-completion aggregate (cells merged as they finish; only
	// populated when the sweep collects per-cell registries). Cell
	// registries never carry harness.*/persist.* series, so this merge can
	// never double-count the counters recorded above.
	x.Live.MergeInto(reg)
	return reg.Snapshot()
}

// ProgressStats summarizes cache activity across the attached tiers for
// the stderr meter's "cache N% hit" field. Nil-safe.
func (x *TelemetryExporter) ProgressStats() obs.ProgressStats {
	if x == nil || x.TraceCache == nil {
		return obs.ProgressStats{}
	}
	hits, misses, _ := x.TraceCache.Counters()
	dc := x.TraceCache.DiskCounters()
	return obs.ProgressStats{
		CacheHits:    hits + dc.ResultHits + dc.TraceHits,
		CacheLookups: hits + misses + dc.ResultHits + dc.ResultMisses,
	}
}

// Source builds the HTTP export surface backed by this exporter.
func (x *TelemetryExporter) Source() *otlp.Source {
	return &otlp.Source{
		Service:  x.Service,
		Snapshot: x.Snapshot,
		Bus:      x.Bus,
		Start:    x.Start,
		Now:      x.Now,
	}
}
