package harness

import (
	"encoding/json"
	"fmt"

	"rest/internal/cache"
	"rest/internal/cpu"
	"rest/internal/obs"
	"rest/internal/persist"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// The persistent tier of the trace cache. PR 4's in-memory cache dies with
// the process: every restbench invocation re-captures and re-times the whole
// grid. AttachDisk extends it across processes with the two persist tiers:
//
//   - result store first: a cell whose full identity (functional identity ×
//     normalized timing config × format version) was ever completed cleanly
//     returns its memoized cpu.Stats without building a world at all, so a
//     second run of an unchanged sweep is almost pure I/O;
//   - trace store second: a cell whose functional identity was ever captured
//     replays the stored trace through its own timing model instead of
//     re-executing the functional simulator — the cross-process analogue of
//     the in-memory capture/replay sharing, including for identities the
//     plan says are unshared (which the in-memory tier bypasses).
//
// The determinism contract is unchanged: replay is bit-exact (the replay
// differential tests), the result codec round-trips cpu.Stats bit-exactly
// (IPC as IEEE-754 bits), and every disk failure — miss, corruption, version
// skew, lock timeout — degrades to recompute (and, in read-write mode,
// rewrite), so cold-cache, warm-cache and cache-off sweeps render
// byte-identical reports. The disk tiers stand aside for cells that need
// surfaces a file cannot carry: metric registries (CellLimits.Metrics) and
// live worlds (CellLimits.NeedWorld, the micro-stats path) — those cells
// run through the in-memory tier exactly as before.

// AttachDisk backs the trace cache with a persistent store. Read-only or
// read-write behaviour follows how the persist cache was opened. Call before
// the first sweep; the counters it accumulates surface as
// harness.diskcache.* metrics and via DiskCounters.
func (tc *TraceCache) AttachDisk(pc *persist.Cache) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.disk = pc
}

// DiskCounters reports the attached persistent store's activity (zero value
// when none is attached).
func (tc *TraceCache) DiskCounters() persist.Counters {
	tc.mu.Lock()
	pc := tc.disk
	tc.mu.Unlock()
	if pc == nil {
		return persist.Counters{}
	}
	return pc.Counters()
}

// diskFor resolves the disk tier for one cell. Cells that need per-cell
// metric registries or a live world bypass the disk: neither is stored in a
// file, and serving half a cell from disk would make warm and cold metric
// reports diverge.
func (tc *TraceCache) diskFor(lim CellLimits) *persist.Cache {
	if lim.Metrics {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.disk
}

// funcIdentity digests a cell's functional identity — the same fields as the
// in-memory traceKey, spelled canonically — into the trace store's content
// address. The format version is part of every file header rather than the
// digest, so a version bump invalidates without moving entries around.
func funcIdentity(k traceKey) persist.ID {
	return persist.SumID(fmt.Sprintf(
		"trace|wl=%s|scale=%d|flavour=%s|stack=%t|checks=%t|tw=%d|rz=%d|mode=%d|intercept=%d|budget=%d",
		k.workload, k.scale, k.pass.Flavour, k.pass.StackProtection, k.pass.AccessChecks,
		k.pass.TokenWidth, k.pass.RedzoneBytes, k.mode, k.intercept, k.budget))
}

// timingIdentity digests a cell's timing-only knobs: the core choice and the
// literal CPU/cache overrides (JSON keeps field order stable). Two spellings
// that differ only in defaulted fields digest differently — that can only
// cost a miss, never return a wrong result.
func timingIdentity(cfg BinaryConfig) string {
	cpuJSON, hierJSON := "default", "default"
	if cfg.CPU != nil {
		raw, _ := json.Marshal(cfg.CPU)
		cpuJSON = string(raw)
	}
	if cfg.Hier != nil {
		raw, _ := json.Marshal(cfg.Hier)
		hierJSON = string(raw)
	}
	return fmt.Sprintf("inorder=%t|cpu=%s|hier=%s", cfg.InOrder, cpuJSON, hierJSON)
}

// resultIdentity digests the full identity of one cell: its functional
// identity × its normalized timing configuration.
func resultIdentity(k traceKey, cfg BinaryConfig) persist.ID {
	return persist.SumID(fmt.Sprintf(
		"result|wl=%s|scale=%d|flavour=%s|stack=%t|checks=%t|tw=%d|rz=%d|mode=%d|intercept=%d|budget=%d|%s",
		k.workload, k.scale, k.pass.Flavour, k.pass.StackProtection, k.pass.AccessChecks,
		k.pass.TokenWidth, k.pass.RedzoneBytes, k.mode, k.intercept, k.budget,
		timingIdentity(cfg)))
}

// resultFromStore reconstructs a RunResult from a memoized cell outcome.
// World and Obs are nil by design: cells that need either never consult the
// result store (see diskFor and CellLimits.NeedWorld).
func resultFromStore(wl workload.Workload, cfg BinaryConfig, cr *persist.CellResult) *RunResult {
	stats := cr.Stats
	return &RunResult{
		Workload: wl.Name,
		Config:   cfg.Name,
		Cycles:   stats.Cycles,
		Stats:    &stats,
		Outcome:  world.Outcome{Checksum: cr.Checksum},
		Source:   "result-store",
	}
}

// storeResult memoizes one clean cell outcome; failures are advisory (the
// run already succeeded) and surface only as missing future hits.
func storeResult(disk *persist.Cache, rid persist.ID, res *RunResult) {
	if disk == nil || disk.ReadOnly() || res == nil || res.Stats == nil ||
		res.Stats.Exception != nil || res.Outcome.Detected() {
		return
	}
	_ = disk.StoreResult(rid, &persist.CellResult{
		Stats:    *res.Stats,
		Checksum: res.Outcome.Checksum,
	})
}

// loadDiskTrace pulls a stored capture for k into a fresh Recorder. Any
// failure — miss, corruption (counted and discarded by persist), version
// skew — comes back as ok=false and the caller recomputes.
func (tc *TraceCache) loadDiskTrace(disk *persist.Cache, k traceKey) (*trace.Recorder, world.Outcome, bool) {
	if disk == nil {
		return nil, world.Outcome{}, false
	}
	rec, checksum, err := disk.LoadTrace(funcIdentity(k))
	if err != nil {
		return nil, world.Outcome{}, false
	}
	return rec, world.Outcome{Checksum: checksum}, true
}

// replayLocal replays a disk-loaded capture for a cell outside the planned
// sharing (a bypass-role cell): the capture lives in a private entry and its
// pooled blocks are recycled as soon as the replay ends.
func replayLocal(wl workload.Workload, cfg BinaryConfig, lim CellLimits, rec *trace.Recorder, out world.Outcome) (*RunResult, error) {
	ent := &traceEntry{ok: true, rec: rec, outcome: out}
	res, err := runReplay(wl, cfg, lim, ent)
	rec.Release()
	if res != nil {
		res.Source = "disk-replay"
	}
	return res, err
}

// retain takes one extra reference on a capture entry so a disk write or a
// leader's own replay can outlive the waiters.
func (tc *TraceCache) retain(ent *traceEntry) {
	tc.mu.Lock()
	ent.refs++
	tc.mu.Unlock()
}

// runLeadFromDisk serves a planned leader from the trace store: the loaded
// capture is published for the waiting siblings exactly as a live capture
// would be, then replayed for the leader's own cell.
func (tc *TraceCache) runLeadFromDisk(wl workload.Workload, cfg BinaryConfig, lim CellLimits, ent *traceEntry, rec *trace.Recorder, out world.Outcome) (*RunResult, error) {
	tc.retain(ent)
	defer tc.release(ent)
	tc.publish(ent, rec, out, nil)
	res, err := runReplay(wl, cfg, lim, ent)
	if res != nil {
		res.Source = "disk-replay"
	}
	return res, err
}

// captureToDisk decides whether a capturing cell should persist its trace,
// and single-flights the capture across processes via the store's lock
// files. It returns the captureState to stream with, and an unlock hook to
// defer (a no-op when no lock is held). If another process finishes the
// same capture while we wait, the loaded trace is returned instead and the
// caller replays it.
func (tc *TraceCache) captureToDisk(disk *persist.Cache, k traceKey, cap *captureState) (st *captureState, loaded *trace.Recorder, out world.Outcome, unlock func()) {
	unlock = func() {}
	if disk == nil || disk.ReadOnly() {
		if cap.ent == nil {
			return nil, nil, world.Outcome{}, unlock // nothing to capture for
		}
		return cap, nil, world.Outcome{}, unlock
	}
	fid := funcIdentity(k)
	release, leader := disk.TryLock(fid)
	if !leader {
		// Another process is capturing this identity right now: wait it out
		// and reuse its work. On timeout (or a failed leader) capture
		// ourselves — last writer wins atomically, nothing corrupts.
		disk.WaitUnlocked(fid)
		if rec, o, ok := tc.loadDiskTrace(disk, k); ok {
			return nil, rec, o, unlock
		}
		if release, leader = disk.TryLock(fid); !leader {
			release = func() {}
		}
	}
	cap.disk, cap.fid = disk, fid
	return cap, nil, world.Outcome{}, release
}

// recordDiskObs exports the persistent store's counters into a sweep
// registry as harness.diskcache.* metrics. Like the in-memory counters they
// are the store's lifetime totals; unlike them they describe operational
// state (what happened to be on disk), so they are deliberately excluded
// from the byte-identical-reports contract — which is also why cells with
// metrics enabled never consult the disk (the counters then stay constant
// for the whole metrics run).
func (tc *TraceCache) recordDiskObs(r *obs.Registry) {
	tc.mu.Lock()
	pc := tc.disk
	tc.mu.Unlock()
	if pc == nil {
		return
	}
	c := pc.Counters()
	r.Counter("harness.diskcache.trace_hits").Add(c.TraceHits)
	r.Counter("harness.diskcache.trace_misses").Add(c.TraceMisses)
	r.Counter("harness.diskcache.result_hits").Add(c.ResultHits)
	r.Counter("harness.diskcache.result_misses").Add(c.ResultMisses)
	r.Counter("harness.diskcache.stores").Add(c.Stores)
	r.Counter("harness.diskcache.evictions").Add(c.Evictions)
	r.Counter("harness.diskcache.corruptions").Add(c.Corruptions)
	r.Counter("harness.diskcache.unavailable").Add(c.Unavailable)
	r.Counter("harness.diskcache.bytes").Add(c.Bytes)

	// The cross-process lock plane: how often this process raced another for
	// a capture lock and how long it spent waiting out other leaders.
	r.Counter("persist.lock.contended").Add(c.LockContended)
	r.Counter("persist.lock.waits").Add(c.LockWaits)
	r.Counter("persist.lock.wait_ns").Add(c.LockWaitNs)

	// Wire traffic when the store is a remote cache server (absent for a
	// local directory, so local metric dumps carry no dead rows).
	if hc, ok := pc.HTTPCounters(); ok {
		r.Counter("persist.httpbackend.gets").Add(hc.Gets)
		r.Counter("persist.httpbackend.puts").Add(hc.Puts)
		r.Counter("persist.httpbackend.deletes").Add(hc.Deletes)
		r.Counter("persist.httpbackend.lists").Add(hc.Lists)
		r.Counter("persist.httpbackend.lock_ops").Add(hc.LockOps)
		r.Counter("persist.httpbackend.renews").Add(hc.Renews)
		r.Counter("persist.httpbackend.coalesced").Add(hc.Coalesced)
		r.Counter("persist.httpbackend.coalesced_wait_ns").Add(hc.CoalescedWaitNs)
		r.Counter("persist.httpbackend.transport_errs").Add(hc.TransportErrs)
		r.Counter("persist.httpbackend.bytes_in").Add(hc.BytesIn)
		r.Counter("persist.httpbackend.bytes_out").Add(hc.BytesOut)
		r.Counter("persist.httpbackend.read_hits").Add(hc.ReadHits)
		r.Counter("persist.httpbackend.read_misses").Add(hc.ReadMisses)
		r.Counter("persist.httpbackend.read_saved_bytes").Add(hc.ReadSavedBytes)
	}

	// The hardening stack's own activity (same operational-state caveat).
	s := pc.StackCounters()
	r.Counter("persist.retry.attempts").Add(s.RetryAttempts)
	r.Counter("persist.retry.retries").Add(s.Retries)
	r.Counter("persist.retry.giveups").Add(s.RetryGiveups)
	r.Counter("persist.timeout.hits").Add(s.Timeouts)
	r.Counter("persist.breaker.trips").Add(s.BreakerTrips)
	r.Counter("persist.breaker.rejects").Add(s.BreakerRejects)
	r.Counter("persist.breaker.probes").Add(s.BreakerProbes)
	r.Counter("persist.breaker.recoveries").Add(s.BreakerRecoveries)
	r.Counter("persist.chaos.errs").Add(s.ChaosErrs)
	r.Counter("persist.chaos.torn").Add(s.ChaosTorn)
	r.Counter("persist.chaos.corrupt").Add(s.ChaosCorrupt)
	r.Counter("persist.chaos.nospace").Add(s.ChaosNoSpace)
	r.Counter("persist.chaos.latency").Add(s.ChaosLatency)
	r.Counter("persist.chaos.lockstalls").Add(s.ChaosLockStalls)
}

// Keep the compile-time dependency on cpu explicit: the result tier's whole
// contract is that a stored cpu.Stats round-trips bit-exactly.
var _ = cpu.Stats{}
var _ cache.TokenSource = (*trace.Replayer)(nil)
