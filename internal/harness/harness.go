// Package harness runs the paper's experiment matrix and regenerates every
// table and figure of the evaluation (§VI): Figure 3 (ASan overhead
// breakdown), Figure 7 (REST vs ASan overheads in all modes and scopes),
// Figure 8 (token-width sweep), Table I (semantics conformance), Table II
// (configuration) and Table III (qualitative comparison), plus the §VI-B
// microarchitectural statistics.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/prog"
	"rest/internal/workload"
	"rest/internal/world"
)

// BinaryConfig names one bar of Figure 7/8: a pass + mode combination.
type BinaryConfig struct {
	Name string
	Pass prog.PassConfig
	Mode core.Mode
	// InterceptLibc: nil = flavour default; Figure 3 toggles it.
	InterceptLibc *bool
	// InOrder selects the in-order core (Figure 3 was measured on one,
	// paper footnote 1).
	InOrder bool
}

// Fig7Configs returns the eight per-benchmark bars of Figure 7 (plain is
// the normalization baseline).
func Fig7Configs() []BinaryConfig {
	return []BinaryConfig{
		{Name: "plain", Pass: prog.Plain()},
		{Name: "asan", Pass: prog.ASanFull()},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "perfecthw-full", Pass: prog.PerfectHWFull()},
		{Name: "debug-heap", Pass: prog.RESTHeap(64), Mode: core.Debug},
		{Name: "secure-heap", Pass: prog.RESTHeap(64), Mode: core.Secure},
		{Name: "perfecthw-heap", Pass: prog.PerfectHWHeap()},
	}
}

// Fig8Configs returns the six token-width bars of Figure 8 (secure mode).
func Fig8Configs() []BinaryConfig {
	var out []BinaryConfig
	for _, w := range []uint64{16, 32, 64} {
		out = append(out,
			BinaryConfig{Name: fmt.Sprintf("%d-full", w), Pass: prog.RESTFull(w)},
			BinaryConfig{Name: fmt.Sprintf("%d-heap", w), Pass: prog.RESTHeap(w)},
		)
	}
	return out
}

// RunResult is one cell of the experiment matrix.
type RunResult struct {
	Workload string
	Config   string
	Cycles   uint64
	Stats    *cpu.Stats
	Outcome  world.Outcome
	World    *world.World
}

// Run executes one workload under one configuration at the given scale.
func Run(wl workload.Workload, cfg BinaryConfig, scale int64) (*RunResult, error) {
	w, err := world.Build(world.Spec{
		Pass:          cfg.Pass,
		Mode:          cfg.Mode,
		Width:         core.Width(cfg.Pass.TokenWidth),
		InterceptLibc: cfg.InterceptLibc,
		InOrder:       cfg.InOrder,
	}, wl.Build(scale))
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, err)
	}
	stats, out := w.RunTimed()
	if out.Err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %v", wl.Name, cfg.Name, out.Err)
	}
	if out.Detected() {
		return nil, fmt.Errorf("harness: %s/%s: spurious detection: %s", wl.Name, cfg.Name, out)
	}
	return &RunResult{
		Workload: wl.Name, Config: cfg.Name,
		Cycles: stats.Cycles, Stats: stats, Outcome: out, World: w,
	}, nil
}

// Matrix holds a full sweep: cycles[workload][config].
type Matrix struct {
	Workloads []string
	Configs   []string
	Cycles    map[string]map[string]uint64
	Results   map[string]map[string]*RunResult
}

// RunMatrix sweeps the workloads × configs grid strictly sequentially,
// stopping at the first failing cell. It is the reference implementation the
// determinism differential tests compare RunMatrixParallel against; the
// report paths use the parallel engine. Baseline ("plain") must be among the
// configs for overhead computation.
func RunMatrix(wls []workload.Workload, cfgs []BinaryConfig, scale int64) (*Matrix, error) {
	m := &Matrix{
		Cycles:  make(map[string]map[string]uint64),
		Results: make(map[string]map[string]*RunResult),
	}
	for _, c := range cfgs {
		m.Configs = append(m.Configs, c.Name)
	}
	for _, wl := range wls {
		m.Workloads = append(m.Workloads, wl.Name)
		m.Cycles[wl.Name] = make(map[string]uint64)
		m.Results[wl.Name] = make(map[string]*RunResult)
		for _, cfg := range cfgs {
			r, err := Run(wl, cfg, scale)
			if err != nil {
				return nil, err
			}
			m.Cycles[wl.Name][cfg.Name] = r.Cycles
			m.Results[wl.Name][cfg.Name] = r
		}
	}
	return m, nil
}

// Overhead returns the percent slowdown of config vs the plain baseline for
// one workload.
func (m *Matrix) Overhead(wl, config string) float64 {
	base := m.Cycles[wl]["plain"]
	if base == 0 {
		return 0
	}
	return (float64(m.Cycles[wl][config])/float64(base) - 1) * 100
}

// WtdAriMeanOverhead computes the paper's weighted arithmetic mean overhead
// (footnote 5): AriMean(normalized runtime × plain runtime / Σ plain
// runtimes) − 1, i.e. total-cycles ratio across the suite.
func (m *Matrix) WtdAriMeanOverhead(config string) float64 {
	var sumPlain, sumCfg float64
	for _, wl := range m.Workloads {
		sumPlain += float64(m.Cycles[wl]["plain"])
		sumCfg += float64(m.Cycles[wl][config])
	}
	if sumPlain == 0 {
		return 0
	}
	return (sumCfg/sumPlain - 1) * 100
}

// GeoMeanOverhead computes the geometric mean overhead (footnote 6):
// GeoMean(plain-normalized runtime) − 1.
func (m *Matrix) GeoMeanOverhead(config string) float64 {
	logSum := 0.0
	n := 0
	for _, wl := range m.Workloads {
		base := float64(m.Cycles[wl]["plain"])
		if base == 0 {
			continue
		}
		logSum += math.Log(float64(m.Cycles[wl][config]) / base)
		n++
	}
	if n == 0 {
		return 0
	}
	return (math.Exp(logSum/float64(n)) - 1) * 100
}

// RenderOverheadTable prints the matrix as percent overheads over plain,
// one row per workload plus the two means, matching Figure 7/8's layout.
func (m *Matrix) RenderOverheadTable(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	cfgs := make([]string, 0, len(m.Configs))
	for _, c := range m.Configs {
		if c != "plain" {
			cfgs = append(cfgs, c)
		}
	}
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteString("\n")
	for _, wl := range m.Workloads {
		fmt.Fprintf(&b, "%-12s", wl)
		for _, c := range cfgs {
			fmt.Fprintf(&b, "%15.1f%%", m.Overhead(wl, c))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s", "WtdAriMean")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%15.1f%%", m.WtdAriMeanOverhead(c))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "GeoMean")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%15.1f%%", m.GeoMeanOverhead(c))
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the raw cycle matrix as CSV.
func (m *Matrix) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, c := range m.Configs {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteString("\n")
	for _, wl := range m.Workloads {
		b.WriteString(wl)
		for _, c := range m.Configs {
			fmt.Fprintf(&b, ",%d", m.Cycles[wl][c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SortedConfigNames returns config names alphabetically (stable output).
func (m *Matrix) SortedConfigNames() []string {
	out := append([]string(nil), m.Configs...)
	sort.Strings(out)
	return out
}
