// Package harness runs the paper's experiment matrix and regenerates every
// table and figure of the evaluation (§VI): Figure 3 (ASan overhead
// breakdown), Figure 7 (REST vs ASan overheads in all modes and scopes),
// Figure 8 (token-width sweep), Table I (semantics conformance), Table II
// (configuration) and Table III (qualitative comparison), plus the §VI-B
// microarchitectural statistics.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/obs"
	"rest/internal/persist"
	"rest/internal/prog"
	"rest/internal/sim"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// BinaryConfig names one bar of Figure 7/8: a pass + mode combination, plus
// optional timing-model overrides for sensitivity sweeps. The pass, mode and
// libc fields define the cell's functional identity; CPU, Hier and InOrder
// are timing-only knobs — cells that differ only in those replay one shared
// captured trace when a TraceCache is active.
type BinaryConfig struct {
	Name string
	Pass prog.PassConfig
	Mode core.Mode
	// InterceptLibc: nil = flavour default; Figure 3 toggles it.
	InterceptLibc *bool
	// InOrder selects the in-order core (Figure 3 was measured on one,
	// paper footnote 1).
	InOrder bool
	// CPU overrides the out-of-order core configuration (nil = Table II
	// defaults).
	CPU *cpu.Config
	// Hier overrides the cache hierarchy (nil = Table II defaults).
	Hier *cache.HierConfig
}

// Fig7Configs returns the eight per-benchmark bars of Figure 7 (plain is
// the normalization baseline).
func Fig7Configs() []BinaryConfig {
	return []BinaryConfig{
		{Name: "plain", Pass: prog.Plain()},
		{Name: "asan", Pass: prog.ASanFull()},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "perfecthw-full", Pass: prog.PerfectHWFull()},
		{Name: "debug-heap", Pass: prog.RESTHeap(64), Mode: core.Debug},
		{Name: "secure-heap", Pass: prog.RESTHeap(64), Mode: core.Secure},
		{Name: "perfecthw-heap", Pass: prog.PerfectHWHeap()},
	}
}

// Fig8Configs returns the six token-width bars of Figure 8 (secure mode).
func Fig8Configs() []BinaryConfig {
	var out []BinaryConfig
	for _, w := range []uint64{16, 32, 64} {
		out = append(out,
			BinaryConfig{Name: fmt.Sprintf("%d-full", w), Pass: prog.RESTFull(w)},
			BinaryConfig{Name: fmt.Sprintf("%d-heap", w), Pass: prog.RESTHeap(w)},
		)
	}
	return out
}

// RunResult is one cell of the experiment matrix.
type RunResult struct {
	Workload string
	Config   string
	Cycles   uint64
	Stats    *cpu.Stats
	Outcome  world.Outcome
	World    *world.World
	// Obs is the cell's private metric registry (nil unless the cell ran
	// with CellLimits.Metrics). The sweep merges cell registries in grid
	// order into Matrix.Obs.
	Obs *obs.Registry
	// Source tags which execution path produced the result: "stream",
	// "capture", "replay", "disk-replay" or "result-store" (see
	// CellEvent.Source). Observability metadata only — every path returns
	// identical Stats/Outcome by the differential tests' contract.
	Source string
}

// CellLimits bounds one cell's execution: the watchdog budgets every sweep
// cell runs under. The zero value imposes nothing beyond the simulator's
// own runaway cap.
type CellLimits struct {
	// MaxInstructions caps the cell's simulated user instructions
	// (0 = sim default).
	MaxInstructions uint64
	// Timeout bounds the cell's wall clock (0 = none). A cell that exceeds
	// it fails with a *sim.BudgetExceededError.
	Timeout time.Duration
	// Metrics gives the cell a fresh obs.Registry, threaded through every
	// layer of its world; the result carries it in RunResult.Obs. Off by
	// default: a nil registry keeps every probe on its nil fast path.
	Metrics bool
	// NeedWorld declares that the caller reads RunResult.World after the
	// cell completes (the micro-stats tables do, for hierarchy counters).
	// Such a cell can never be served from the persistent result store —
	// a file carries stats, not a live world — so it replays or streams.
	NeedWorld bool
	// Engine selects the functional simulator's execution engine for the
	// cell (sim.EngineAuto = the decoded-block default, sim.EngineRef = the
	// single-step reference). Deliberately NOT part of any cache identity:
	// the engines produce byte-identical results, so a capture made under
	// one engine serves cells running under the other.
	Engine sim.Engine
}

// Run executes one workload under one configuration at the given scale.
func Run(wl workload.Workload, cfg BinaryConfig, scale int64) (*RunResult, error) {
	return RunLimited(wl, cfg, scale, CellLimits{})
}

// RunLimited is Run under explicit watchdog budgets.
func RunLimited(wl workload.Workload, cfg BinaryConfig, scale int64, lim CellLimits) (*RunResult, error) {
	return RunCached(wl, cfg, scale, lim, nil)
}

// RunCached is RunLimited through an optional trace cache: with a non-nil tc
// the cell captures, replays or bypasses per its planned role (see
// TraceCache); with nil it streams the functional simulator through the
// timing model the ordinary way. Either path returns identical results —
// the replay differential tests pin the equivalence.
func RunCached(wl workload.Workload, cfg BinaryConfig, scale int64, lim CellLimits, tc *TraceCache) (*RunResult, error) {
	if tc == nil {
		return runStreamed(wl, cfg, scale, lim, nil)
	}
	return tc.run(wl, cfg, scale, lim)
}

// captureState carries a leader cell's publishing obligation through
// runStreamed: however the run ends — publish, error or panic — the entry
// resolves exactly once, so waiters can never block forever. A nil ent is a
// disk-only capture (an identity unshared within this process): nothing is
// published, the recorder is recycled locally, and only the persistent
// store — when disk is set — receives the trace under fid.
type captureState struct {
	tc   *TraceCache
	ent  *traceEntry
	disk *persist.Cache
	fid  persist.ID
}

// runStreamed executes one cell against the live functional simulator. A
// non-nil cap additionally records the dynamic trace and publishes it (with
// the cell's outcome and functional metrics) for sibling cells to replay.
func runStreamed(wl workload.Workload, cfg BinaryConfig, scale int64, lim CellLimits, cap *captureState) (*RunResult, error) {
	var deadline time.Time
	if lim.Timeout > 0 {
		deadline = time.Now().Add(lim.Timeout)
	}
	var reg, funcObs *obs.Registry
	if lim.Metrics {
		reg = obs.NewRegistry()
		if cap != nil {
			// Split the planes so the functional half can be shared with
			// replaying siblings; reg gets it merged back below, keeping
			// this cell's registry identical to an unsplit one.
			funcObs = obs.NewRegistry()
		}
	}
	if cap != nil && cap.ent != nil {
		// Resolve the capture no matter how this function exits (including
		// a panic unwinding to the sweep engine's containment).
		defer cap.tc.fail(cap.ent)
	}
	w, err := world.Build(world.Spec{
		Pass:            cfg.Pass,
		Mode:            cfg.Mode,
		Width:           core.Width(cfg.Pass.TokenWidth),
		InterceptLibc:   cfg.InterceptLibc,
		InOrder:         cfg.InOrder,
		CPU:             cfg.CPU,
		Hier:            cfg.Hier,
		MaxInstructions: lim.MaxInstructions,
		Deadline:        deadline,
		Engine:          lim.Engine,
		Obs:             reg,
		FuncObs:         funcObs,
	}, wl.Build(scale))
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, err)
	}
	var stats *cpu.Stats
	var out world.Outcome
	if cap != nil {
		rec := trace.NewRecorder(captureTokenWidth(cfg.Pass), cap.tc.perTraceLimit)
		stats, out = w.RunTimedCapture(rec)
		clean := out.Err == nil && !out.Detected()
		if clean && cap.disk != nil && !rec.Overflowed() {
			// Persist before publishing: until publish the recorder is
			// exclusively ours, so the write can't race a waiter recycling
			// the blocks. A failed store is advisory (the run succeeded).
			_ = cap.disk.StoreTrace(cap.fid, rec, out.Checksum)
		}
		switch {
		case clean && cap.ent != nil:
			// Only fully clean runs publish: the trace is then provably
			// complete, which is what makes cross-timing replay exact.
			cap.tc.publish(cap.ent, rec, out, funcObs)
		case cap.ent == nil:
			// Disk-only capture: no siblings wait on it; recycle now.
			rec.Release()
		}
	} else {
		stats, out = w.RunTimed()
	}
	if funcObs != nil {
		if merr := reg.Merge(funcObs); merr != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, merr)
		}
	}
	if out.Err != nil {
		// %w, not %v: the sweep engine classifies watchdog kills by
		// unwrapping to *sim.BudgetExceededError.
		return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, out.Err)
	}
	if out.Detected() {
		return nil, fmt.Errorf("harness: %s/%s: spurious detection: %s", wl.Name, cfg.Name, out)
	}
	source := "stream"
	if cap != nil {
		source = "capture"
	}
	return &RunResult{
		Workload: wl.Name, Config: cfg.Name,
		Cycles: stats.Cycles, Stats: stats, Outcome: out, World: w,
		Obs: reg, Source: source,
	}, nil
}

// runReplay executes one cell by replaying a sibling's captured trace
// through this cell's own timing model. The functional layers never run:
// the outcome comes from the capture, the functional metrics are merged
// from the capture's registry, and the token shadow inside the Replayer
// stands in for the tracker as the fill-time detector's TokenSource.
func runReplay(wl workload.Workload, cfg BinaryConfig, lim CellLimits, ent *traceEntry) (*RunResult, error) {
	var reg *obs.Registry
	if lim.Metrics {
		reg = obs.NewRegistry()
	}
	rp := ent.rec.Replayer()
	var tokens cache.TokenSource
	if ent.rec.TokenWidth() != 0 {
		tokens = rp
	}
	w, err := world.BuildReplay(world.Spec{
		Pass:          cfg.Pass,
		Mode:          cfg.Mode,
		Width:         core.Width(cfg.Pass.TokenWidth),
		InterceptLibc: cfg.InterceptLibc,
		InOrder:       cfg.InOrder,
		CPU:           cfg.CPU,
		Hier:          cfg.Hier,
		Obs:           reg,
	}, tokens)
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, err)
	}
	stats, out := w.ReplayTimed(rp, ent.outcome)
	if reg != nil && ent.funcObs != nil {
		if merr := reg.Merge(ent.funcObs); merr != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, merr)
		}
	}
	// Parity with runStreamed's validation (a cached outcome is clean by
	// construction, so these are unreachable; kept so the two paths can
	// never diverge in what they accept).
	if out.Err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name, cfg.Name, out.Err)
	}
	if out.Detected() {
		return nil, fmt.Errorf("harness: %s/%s: spurious detection: %s", wl.Name, cfg.Name, out)
	}
	return &RunResult{
		Workload: wl.Name, Config: cfg.Name,
		Cycles: stats.Cycles, Stats: stats, Outcome: out, World: w,
		Obs: reg, Source: "replay",
	}, nil
}

// Matrix holds a full sweep: cycles[workload][config].
type Matrix struct {
	Workloads []string
	Configs   []string
	Cycles    map[string]map[string]uint64
	Results   map[string]map[string]*RunResult
	// Holes annotates cells with no result — failed, timed out or skipped —
	// as Holes[workload][config] = reason. A sweep that degrades gracefully
	// returns the partial matrix with its holes instead of aborting; every
	// renderer marks them explicitly so a gap can never pass for a zero.
	Holes map[string]map[string]string
	// Obs is the sweep-level metric registry: every cell's private registry
	// merged in grid order, plus harness.* sweep counters. Nil unless the
	// sweep ran with metrics enabled. Because cell registries are merged in
	// grid order (never completion order) and every merge operation is
	// commutative, the aggregate is byte-identical at any worker count.
	Obs *obs.Registry
}

// AddHole records why a cell has no result.
func (m *Matrix) AddHole(wl, config, reason string) {
	if m.Holes == nil {
		m.Holes = make(map[string]map[string]string)
	}
	if m.Holes[wl] == nil {
		m.Holes[wl] = make(map[string]string)
	}
	m.Holes[wl][config] = reason
}

// Hole reports the reason a cell has no result, if it is annotated.
func (m *Matrix) Hole(wl, config string) (string, bool) {
	r, ok := m.Holes[wl][config]
	return r, ok
}

// HoleCount reports how many cells of the sweep are annotated holes.
func (m *Matrix) HoleCount() int {
	n := 0
	for _, row := range m.Holes {
		n += len(row)
	}
	return n
}

// aggregateObs folds every cell's private registry into Matrix.Obs in grid
// order (workload-major, then config), then adds the sweep-level harness.*
// counters derived from the hole annotations. Grid-order merging plus
// commutative merge operations make the aggregate independent of cell
// completion order, so the sweep's metrics honour the same determinism
// contract as its tables: byte-identical at any -j.
func (m *Matrix) aggregateObs() error {
	agg := obs.NewRegistry()
	ok := agg.Counter("harness.cells_ok")
	hole := agg.Counter("harness.cells_hole")
	skipped := agg.Counter("harness.cells_skipped")
	watchdog := agg.Counter("harness.watchdog_trips")
	for _, wl := range m.Workloads {
		for _, c := range m.Configs {
			if r := m.Results[wl][c]; r != nil && r.Obs != nil {
				if err := agg.Merge(r.Obs); err != nil {
					return fmt.Errorf("harness: %s/%s: %w", wl, c, err)
				}
				ok.Inc()
				continue
			}
			if reason, isHole := m.Hole(wl, c); isHole {
				hole.Inc()
				if strings.HasPrefix(reason, "skipped") {
					skipped.Inc()
				}
				if strings.HasPrefix(reason, "watchdog") {
					watchdog.Inc()
				}
			}
		}
	}
	m.Obs = agg
	return nil
}

// RunMatrixObserved is RunMatrix with per-cell metric registries enabled and
// aggregated: the strictly sequential reference implementation the metrics
// determinism tests compare the parallel engine against.
func RunMatrixObserved(wls []workload.Workload, cfgs []BinaryConfig, scale int64) (*Matrix, error) {
	m := &Matrix{
		Cycles:  make(map[string]map[string]uint64),
		Results: make(map[string]map[string]*RunResult),
	}
	for _, c := range cfgs {
		m.Configs = append(m.Configs, c.Name)
	}
	for _, wl := range wls {
		m.Workloads = append(m.Workloads, wl.Name)
		m.Cycles[wl.Name] = make(map[string]uint64)
		m.Results[wl.Name] = make(map[string]*RunResult)
		for _, cfg := range cfgs {
			r, err := RunLimited(wl, cfg, scale, CellLimits{Metrics: true})
			if err != nil {
				return nil, err
			}
			m.Cycles[wl.Name][cfg.Name] = r.Cycles
			m.Results[wl.Name][cfg.Name] = r
		}
	}
	if err := m.aggregateObs(); err != nil {
		return nil, err
	}
	return m, nil
}

// complete reports whether workload wl has a result for config (and for the
// plain baseline, which every derived number needs).
func (m *Matrix) complete(wl, config string) bool {
	_, okCfg := m.Cycles[wl][config]
	_, okBase := m.Cycles[wl]["plain"]
	return okCfg && okBase
}

// RunMatrix sweeps the workloads × configs grid strictly sequentially,
// stopping at the first failing cell. It is the reference implementation the
// determinism differential tests compare RunMatrixParallel against; the
// report paths use the parallel engine. Baseline ("plain") must be among the
// configs for overhead computation.
func RunMatrix(wls []workload.Workload, cfgs []BinaryConfig, scale int64) (*Matrix, error) {
	m := &Matrix{
		Cycles:  make(map[string]map[string]uint64),
		Results: make(map[string]map[string]*RunResult),
	}
	for _, c := range cfgs {
		m.Configs = append(m.Configs, c.Name)
	}
	for _, wl := range wls {
		m.Workloads = append(m.Workloads, wl.Name)
		m.Cycles[wl.Name] = make(map[string]uint64)
		m.Results[wl.Name] = make(map[string]*RunResult)
		for _, cfg := range cfgs {
			r, err := Run(wl, cfg, scale)
			if err != nil {
				return nil, err
			}
			m.Cycles[wl.Name][cfg.Name] = r.Cycles
			m.Results[wl.Name][cfg.Name] = r
		}
	}
	return m, nil
}

// Overhead returns the percent slowdown of config vs the plain baseline for
// one workload.
func (m *Matrix) Overhead(wl, config string) float64 {
	base := m.Cycles[wl]["plain"]
	if base == 0 {
		return 0
	}
	return (float64(m.Cycles[wl][config])/float64(base) - 1) * 100
}

// WtdAriMeanOverhead computes the paper's weighted arithmetic mean overhead
// (footnote 5): AriMean(normalized runtime × plain runtime / Σ plain
// runtimes) − 1, i.e. total-cycles ratio across the suite. Workloads with a
// hole in either the config or the plain baseline are excluded (the mean is
// over the complete rows only; holes are annotated in the rendering).
func (m *Matrix) WtdAriMeanOverhead(config string) float64 {
	var sumPlain, sumCfg float64
	for _, wl := range m.Workloads {
		if !m.complete(wl, config) {
			continue
		}
		sumPlain += float64(m.Cycles[wl]["plain"])
		sumCfg += float64(m.Cycles[wl][config])
	}
	if sumPlain == 0 {
		return 0
	}
	return (sumCfg/sumPlain - 1) * 100
}

// GeoMeanOverhead computes the geometric mean overhead (footnote 6):
// GeoMean(plain-normalized runtime) − 1.
func (m *Matrix) GeoMeanOverhead(config string) float64 {
	logSum := 0.0
	n := 0
	for _, wl := range m.Workloads {
		if !m.complete(wl, config) {
			continue
		}
		base := float64(m.Cycles[wl]["plain"])
		if base == 0 {
			continue
		}
		logSum += math.Log(float64(m.Cycles[wl][config]) / base)
		n++
	}
	if n == 0 {
		return 0
	}
	return (math.Exp(logSum/float64(n)) - 1) * 100
}

// RenderOverheadTable prints the matrix as percent overheads over plain,
// one row per workload plus the two means, matching Figure 7/8's layout.
func (m *Matrix) RenderOverheadTable(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	cfgs := make([]string, 0, len(m.Configs))
	for _, c := range m.Configs {
		if c != "plain" {
			cfgs = append(cfgs, c)
		}
	}
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteString("\n")
	for _, wl := range m.Workloads {
		fmt.Fprintf(&b, "%-12s", wl)
		for _, c := range cfgs {
			if !m.complete(wl, c) {
				fmt.Fprintf(&b, "%16s", "hole")
				continue
			}
			fmt.Fprintf(&b, "%15.1f%%", m.Overhead(wl, c))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s", "WtdAriMean")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%15.1f%%", m.WtdAriMeanOverhead(c))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "GeoMean")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%15.1f%%", m.GeoMeanOverhead(c))
	}
	b.WriteString("\n")
	b.WriteString(m.renderHoles())
	return b.String()
}

// renderHoles appends the hole annotations (empty string for a full matrix).
// Rows follow grid order so the output is deterministic.
func (m *Matrix) renderHoles() string {
	if m.HoleCount() == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "holes (%d of %d cells; means cover complete rows only):\n",
		m.HoleCount(), len(m.Workloads)*len(m.Configs))
	for _, wl := range m.Workloads {
		for _, c := range m.Configs {
			if reason, ok := m.Hole(wl, c); ok {
				fmt.Fprintf(&b, "  %s/%s: %s\n", wl, c, reason)
			}
		}
	}
	return b.String()
}

// CSV renders the raw cycle matrix as CSV.
func (m *Matrix) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, c := range m.Configs {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteString("\n")
	for _, wl := range m.Workloads {
		b.WriteString(wl)
		for _, c := range m.Configs {
			if v, ok := m.Cycles[wl][c]; ok {
				fmt.Fprintf(&b, ",%d", v)
			} else {
				// Annotated hole: never render a missing cell as a number.
				b.WriteString(",NA")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SortedConfigNames returns config names alphabetically (stable output).
func (m *Matrix) SortedConfigNames() []string {
	out := append([]string(nil), m.Configs...)
	sort.Strings(out)
	return out
}
