package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"rest/internal/persist"
	"rest/internal/workload"
)

// The elastic sweep pool: work-stealing over the shared artifact store.
//
// Static sharding (shard.go) partitions the grid up front, so one slow or
// killed shard strands its slice and caps the pool at the slowest worker.
// The elastic scheduler replaces the partition with claims: every worker
// sees the same unit list (functional identities in first-appearance order,
// exactly the static partition's unit), and claims units one lease at a
// time on the store's lock plane. A completed unit is recorded by a tiny
// completion marker in the store's meta namespace; the grid is drained when
// every unit has one. Recovery is built from the same two primitives —
//
//   - a worker that dies stops renewing its leases, they age stale, and any
//     idle worker steals the units and recomputes only what the dead worker
//     never published (its finished cells are result-store hits);
//   - a worker whose lease is stolen while it still runs (it was presumed
//     dead but wasn't) observes the loss and abandons the unit without
//     publishing its marker — publishing under a lost lease would race the
//     thief. The cells it already computed are harmless: content-addressed
//     stores make duplicate publication idempotent, so bytes never differ.
//
// Idle workers do not poll-spin: they park on the store's epoch long-poll
// (persist.Cache.WaitChange) and wake when a marker lands or a lease moves.
// Every coordination failure fails open in the store's usual direction —
// an unanswerable lock plane grants the claim (worst case a duplicated
// unit), an unlistable meta namespace retries at the next wake — so chaos
// degrades the pool to recompute, never to a wrong byte or a hang.
//
// The unit of stealing is the functional identity, not the cell, for the
// same reason it is the static shard's partition unit: all cells of a unit
// share one captured trace, and splitting them across workers would
// serialize every worker on the store's single-flight capture locks.

// ElasticStats summarizes one worker's participation in an elastic pool.
type ElasticStats struct {
	Units      int // steal units in the grid
	Claimed    int // claims granted to this worker (incl. steals and skips)
	Steals     int // claims acquired by breaking a stale holder's lease
	Done       int // units this worker computed and marked complete
	Skipped    int // claims released because the unit was already marked
	LeaseLost  int // units abandoned after losing the lease mid-unit
	DrainWaits int // times this worker parked waiting on the pool
	CellsRun   int // grid cells this worker executed
}

// elasticUnit is one steal unit: a functional identity and the grid indices
// of the cells sharing it.
type elasticUnit struct {
	key   traceKey
	cells []int
}

// elasticUnits enumerates the grid's units in first-appearance order — the
// same numbering Shard.ownership deals from, so the elastic pool and the
// static partition agree on what a unit is.
func elasticUnits(wls []workload.Workload, cfgs []BinaryConfig, scale int64, budget uint64) []elasticUnit {
	index := make(map[traceKey]int)
	var units []elasticUnit
	i := 0
	for _, wl := range wls {
		for _, cfg := range cfgs {
			k := cellTraceKey(wl.Name, cfg, scale, budget)
			u, seen := index[k]
			if !seen {
				u = len(units)
				index[k] = u
				units = append(units, elasticUnit{key: k})
			}
			units[u].cells = append(units[u].cells, i)
			i++
		}
	}
	return units
}

// UnitCount reports how many steal units a grid partitions into. Exposed
// for benchmarks and tooling that watch a pool drain marker by marker.
func UnitCount(wls []workload.Workload, cfgs []BinaryConfig, scale int64, budget uint64) int {
	return len(elasticUnits(wls, cfgs, scale, budget))
}

// ElasticMarkerPrefix namespaces completion markers within the store's meta
// objects (beside the manifest, exempt from the byte cap and eviction).
const ElasticMarkerPrefix = "elastic-"

// elasticGridID digests the unit list so claim and marker names are scoped
// to one exact grid: two different sweeps sharing a store can both run
// elastically without touching each other's units.
func elasticGridID(units []elasticUnit, scale int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "elastic|v1|scale=%d|units=%d\n", scale, len(units))
	for _, u := range units {
		io.WriteString(h, funcIdentity(u.key).String())
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

func elasticMarkerName(grid string, u int) string {
	return fmt.Sprintf("%s%s-u%03d", ElasticMarkerPrefix, grid, u)
}

func elasticClaimName(grid string, u int) string {
	return fmt.Sprintf("claim-%s-u%03d", grid, u)
}

// elasticWaitBound caps one idle park. Short enough that stale-lease
// takeover is probed about once a second even when no epoch event fires
// (a killed worker produces none), long enough that a parked worker costs
// one request a second, not a polling storm.
const elasticWaitBound = time.Second

// unitResult is one finished (or abandoned) unit's report to the
// coordinator.
type unitResult struct {
	unit      int
	done      bool // completion marker published
	leaseLost bool
	cellsRun  int
}

// runMatrixElastic is RunMatrixParallel's work-stealing path (opt.Elastic).
// The returned Matrix holds the cells this worker computed — a pool
// worker's view is partial by construction, like a static shard's — and the
// full report is assembled by a warm merge run over the shared store.
func runMatrixElastic(ctx context.Context, wls []workload.Workload, cfgs []BinaryConfig, scale int64, opt ParallelOptions) (*Matrix, error) {
	tc := opt.TraceCache
	var store *persist.Cache
	if tc != nil {
		store = tc.diskStore()
	}
	if store == nil {
		return nil, errors.New("harness: an elastic sweep needs a trace cache with an attached shared store")
	}
	units := elasticUnits(wls, cfgs, scale, opt.CellInstrBudget)
	grid := elasticGridID(units, scale)
	gridTotal := len(wls) * len(cfgs)

	type gridCell struct {
		wl  workload.Workload
		cfg BinaryConfig
	}
	cells := make([]gridCell, 0, gridTotal)
	for _, wl := range wls {
		for _, cfg := range cfgs {
			cells = append(cells, gridCell{wl, cfg})
		}
	}

	now := opt.Now
	if now == nil {
		now = time.Now
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := opt.EffectiveWorkers()
	workerIDs := make(chan int, workers)
	for w := 0; w < workers; w++ {
		workerIDs <- w
	}

	// Outcome slots are indexed by grid position; distinct units never share
	// a cell, so writers cannot collide, and everything is read only after
	// the final wg.Wait.
	outcomes := make([]cellOutcome, gridTotal)
	computed := make([]bool, gridTotal)

	emit := func(worker, gi int, start, end time.Time, o cellOutcome) {
		if opt.OnCell == nil {
			return
		}
		ev := CellEvent{
			Worker: worker, Index: gi, Total: gridTotal,
			Workload: cells[gi].wl.Name, Config: cells[gi].cfg.Name,
			Start: start, End: end,
			Err: o.err, Skipped: o.skipped,
		}
		if o.res != nil {
			ev.Cycles = o.res.Cycles
			ev.Source = o.res.Source
			ev.Obs = o.res.Obs
			if o.res.Stats != nil {
				ev.Instrs = o.res.Stats.Instructions
			}
		}
		opt.OnCell(ev)
	}

	workerTag := fmt.Sprintf("pid-%d", os.Getpid())
	unitDone := make(chan unitResult, len(units))
	var wg sync.WaitGroup

	runUnit := func(ui int, claim *persist.Claim) {
		defer wg.Done()
		u := units[ui]
		tc.planUnit(u.key, len(u.cells))
		res := unitResult{unit: ui}
		cancelled := false
		var uwg sync.WaitGroup
		for _, gi := range u.cells {
			lost := false
			select {
			case <-claim.Lost():
				lost = true
			default:
			}
			if lost {
				// The lease was stolen: the thief owns this unit now. Forfeit
				// the remaining planned uses and leave the cells uncomputed —
				// whatever we already published is idempotent, and the marker
				// below stays unwritten.
				res.leaseLost = true
				tc.forfeit(u.key)
				continue
			}
			if cctx.Err() != nil {
				cancelled = true
				tc.forfeit(u.key)
				outcomes[gi] = cellOutcome{skipped: true}
				computed[gi] = true
				at := now()
				emit(0, gi, at, at, outcomes[gi])
				continue
			}
			w := <-workerIDs
			uwg.Add(1)
			res.cellsRun++
			go func(worker, gi int) {
				defer func() {
					workerIDs <- worker
					uwg.Done()
				}()
				lim := CellLimits{
					MaxInstructions: opt.CellInstrBudget,
					Timeout:         opt.CellTimeout,
					Metrics:         opt.Metrics,
					NeedWorld:       opt.NeedWorld,
					Engine:          opt.Engine,
				}
				if dl, ok := cctx.Deadline(); ok {
					rem := time.Until(dl)
					if rem <= 0 {
						tc.forfeit(u.key)
						outcomes[gi] = cellOutcome{skipped: true}
						computed[gi] = true
						at := now()
						emit(worker, gi, at, at, outcomes[gi])
						return
					}
					if lim.Timeout == 0 || rem < lim.Timeout {
						lim.Timeout = rem
					}
				}
				start := now()
				r, err := runCell(cells[gi].wl, cells[gi].cfg, scale, lim, tc)
				outcomes[gi] = cellOutcome{res: r, err: err}
				computed[gi] = true
				emit(worker, gi, start, now(), outcomes[gi])
				if err != nil && opt.FailFast {
					cancel()
				}
			}(w, gi)
		}
		uwg.Wait()
		if !res.leaseLost && !cancelled && cctx.Err() == nil {
			// One synchronous renewal right before publishing: a worker whose
			// lease was stolen since the last background renewal must not
			// mark the unit done (the thief is recomputing it). Any other
			// renewal failure fails open — an unanswerable lock plane never
			// blocks publication, it only risks a duplicate.
			if err := claim.Renew(); errors.Is(err, persist.ErrLeaseLost) {
				res.leaseLost = true
			} else {
				marker := fmt.Sprintf("{\"unit\":%d,\"cells\":%d,\"worker\":%q}\n",
					ui, len(u.cells), workerTag)
				if store.PutMarker(elasticMarkerName(grid, ui), []byte(marker)) == nil {
					res.done = true
				}
			}
		}
		claim.Release()
		unitDone <- res
	}

	// The wake goroutine turns the store's epoch long-poll into a channel
	// the coordinator can select on; without an epoch plane (a directory
	// store) WaitChange degrades to a bounded poll tick.
	wake := make(chan struct{}, 1)
	stopWake := make(chan struct{})
	go func() {
		var epoch uint64
		for {
			select {
			case <-stopWake:
				return
			default:
			}
			epoch = store.WaitChange(epoch, elasticWaitBound)
			select {
			case wake <- struct{}{}:
			case <-stopWake:
				return
			}
		}
	}()
	defer close(stopWake)

	stats := ElasticStats{Units: len(units)}
	markerDone := make([]bool, len(units))
	doneCount := 0
	inflight := make([]bool, len(units))
	slotsFree := workers

	scan := func() {
		names, err := store.ListMarkers(ElasticMarkerPrefix + grid + "-")
		if err != nil {
			return // transient: the next wake rescans
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			set[n] = true
		}
		for ui := range units {
			if !markerDone[ui] && set[elasticMarkerName(grid, ui)] {
				markerDone[ui] = true
				doneCount++
			}
		}
	}
	handle := func(r unitResult) {
		inflight[r.unit] = false
		slotsFree++
		stats.CellsRun += r.cellsRun
		if r.leaseLost {
			stats.LeaseLost++
		}
		if r.done {
			stats.Done++
			if !markerDone[r.unit] {
				markerDone[r.unit] = true
				doneCount++
			}
		}
	}
	drainFinished := func() {
		for {
			select {
			case r := <-unitDone:
				handle(r)
			default:
				return
			}
		}
	}

	scan()
	for doneCount < len(units) && cctx.Err() == nil {
		progress := false
		for ui := range units {
			if slotsFree == 0 {
				break
			}
			if markerDone[ui] || inflight[ui] {
				continue
			}
			claim, ok := store.TryClaim(elasticClaimName(grid, ui))
			if !ok {
				continue // a live worker holds it; steal only when stale
			}
			stats.Claimed++
			if claim.Stolen {
				stats.Steals++
			}
			// Re-check under the claim: the unit may have completed between
			// our last scan and this grant. This is what guarantees a
			// published unit is never recomputed — the marker goes up before
			// its claim goes down, so any later claimant sees it here.
			if _, err := store.GetMarker(elasticMarkerName(grid, ui)); err == nil {
				claim.Release()
				markerDone[ui] = true
				doneCount++
				stats.Skipped++
				progress = true
				continue
			}
			inflight[ui] = true
			slotsFree--
			progress = true
			wg.Add(1)
			go runUnit(ui, claim)
		}
		drainFinished()
		if doneCount >= len(units) || progress {
			continue
		}
		// Nothing claimable: every remaining unit is held by a live worker
		// (or the slots are full). Park until a unit finishes here or the
		// store's state moves (a marker lands, a lease ages out).
		select {
		case r := <-unitDone:
			handle(r)
		case <-wake:
			stats.DrainWaits++
			scan()
		case <-cctx.Done():
		}
	}
	wg.Wait()
	drainFinished()

	// Assemble this worker's computed cells in grid order (the same partial
	// view a static shard returns; merge reassembles the full report).
	m := &Matrix{
		Cycles:  make(map[string]map[string]uint64),
		Results: make(map[string]map[string]*RunResult),
	}
	for _, c := range cfgs {
		m.Configs = append(m.Configs, c.Name)
	}
	merr := &MatrixError{}
	for gi, c := range cells {
		if !computed[gi] {
			continue
		}
		if _, ok := m.Cycles[c.wl.Name]; !ok {
			m.Workloads = append(m.Workloads, c.wl.Name)
			m.Cycles[c.wl.Name] = make(map[string]uint64)
			m.Results[c.wl.Name] = make(map[string]*RunResult)
		}
		switch o := outcomes[gi]; {
		case o.skipped:
			merr.Skipped++
			m.AddHole(c.wl.Name, c.cfg.Name, "skipped (sweep cancelled)")
		case o.err != nil:
			merr.Cells = append(merr.Cells, &CellError{
				Workload: c.wl.Name, Config: c.cfg.Name, Err: o.err,
			})
			m.AddHole(c.wl.Name, c.cfg.Name, holeReason(o.err))
		default:
			m.Cycles[c.wl.Name][c.cfg.Name] = o.res.Cycles
			m.Results[c.wl.Name][c.cfg.Name] = o.res
		}
	}
	if opt.Metrics {
		if err := m.aggregateObs(); err != nil {
			merr.Cells = append(merr.Cells, &CellError{Err: err})
		}
		tc.recordObs(m.Obs)
		if m.Obs != nil {
			// Pool participation counters. Unlike the static shard counters
			// these describe scheduling (who claimed what when), so like the
			// disk counters they sit outside the byte-identical-reports
			// contract — which only ever applies to full-grid runs anyway.
			m.Obs.Counter("harness.elastic.units").Add(uint64(stats.Units))
			m.Obs.Counter("harness.elastic.claimed").Add(uint64(stats.Claimed))
			m.Obs.Counter("harness.elastic.steals").Add(uint64(stats.Steals))
			m.Obs.Counter("harness.elastic.done").Add(uint64(stats.Done))
			m.Obs.Counter("harness.elastic.skipped").Add(uint64(stats.Skipped))
			m.Obs.Counter("harness.elastic.lease_lost").Add(uint64(stats.LeaseLost))
			m.Obs.Counter("harness.elastic.drain_waits").Add(uint64(stats.DrainWaits))
			m.Obs.Counter("harness.elastic.cells").Add(uint64(stats.CellsRun))
			m.Obs.Counter("harness.elastic.cells_total").Add(uint64(gridTotal))
		}
	}
	if opt.OnElastic != nil {
		opt.OnElastic(stats)
	}
	if len(merr.Cells) > 0 || merr.Skipped > 0 {
		return m, merr
	}
	return m, nil
}
