package harness

import (
	"context"
	"fmt"
	"strings"

	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/isa"
	"rest/internal/prog"
	"rest/internal/trace"
	"rest/internal/workload"
)

// RenderTableII prints the simulation configuration (paper Table II).
func RenderTableII() string {
	return strings.TrimLeft(`
Table II: simulation base hardware configuration
Core
  Frequency   2 GHz
  BPred       TAGE (bimodal base + 12 tagged components), BTB, 32-entry RAS
  Fetch       8 wide, 64-entry IQ
  Issue       8 wide, 192-entry ROB
  Writeback   8 wide, 32-entry LQ, 32-entry SQ
Memory
  L1-I        64kB, 8-way, 2 cycles, 64B blocks, LRU, 4 MSHRs, no prefetch
  L1-D        64kB, 8-way, 2 cycles, 64B blocks, LRU, 8-entry write buffer,
              4 MSHRs, no prefetch  [+ REST: 1 token bit/chunk, detector]
  L2          2MB, 16-way, 20 cycles, 64B blocks, LRU, 8-entry write buffer,
              20 MSHRs, no prefetch
  Memory      DDR3-class, 8 banks, 8KB rows, CAS/RP 28 cyc, RAS 70 cyc,
              20 cyc/line bus occupancy at the 2 GHz core clock
`, "\n")
}

// tableIRow is one conformance check of Table I.
type tableIRow struct {
	Action   string
	Where    string // "LSQ", "hit" or "miss"
	Expected string
	Check    func() (string, bool)
}

// RunTableI executes a directed micro-sequence for every cell of Table I
// (actions × {LSQ, cache hit, cache miss}) against the real cache and
// pipeline models and reports observed behaviour.
func RunTableI() (string, bool) {
	rows := tableIRows()
	var b strings.Builder
	b.WriteString("Table I: REST semantics conformance (observed vs paper)\n")
	fmt.Fprintf(&b, "%-22s %-6s %-44s %s\n", "action", "where", "expected", "observed")
	allOK := true
	for _, r := range rows {
		obs, ok := r.Check()
		status := "OK"
		if !ok {
			status = "MISMATCH"
			allOK = false
		}
		fmt.Fprintf(&b, "%-22s %-6s %-44s %s [%s]\n", r.Action, r.Where, r.Expected, obs, status)
	}
	return b.String(), allOK
}

// tokenStub provides a scriptable TokenSource for cache-level checks.
type tokenStub struct{ masks map[uint64]uint8 }

func (t *tokenStub) LineTokenMask(lineAddr uint64) uint8 { return t.masks[lineAddr&^63] }
func (t *tokenStub) ChunksPerLine() int                  { return 1 }

func newL1D(tok cache.TokenSource) *cache.Cache {
	next := &flatLevel{lat: 50}
	c, err := cache.New(cache.Config{
		Name: "L1-D", SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4,
		WriteBuf: 8, RESTEnabled: true,
	}, next, tok)
	if err != nil {
		// Invariant assertion, not an error path: the config is a hardcoded
		// literal above, so cache.New can only fail if that literal is edited
		// into something invalid. No user input reaches this constructor.
		panic(err)
	}
	return c
}

type flatLevel struct {
	lat    uint64
	writes int
}

func (f *flatLevel) Access(now uint64, lineAddr uint64, write bool) uint64 {
	if write {
		f.writes++
	}
	return now + f.lat
}

func pipelineFor(mode core.Mode) *cpu.Pipeline {
	h, err := cache.NewHierarchy(cache.DefaultHierConfig(), &tokenStub{masks: map[uint64]uint8{}})
	if err != nil {
		// Invariant assertion: DefaultHierConfig is the Table II literal and
		// always valid; failure here means the defaults themselves broke.
		panic(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.Mode = mode
	return cpu.New(cfg, h, bpred.New(bpred.Config{}))
}

func tableIRows() []tableIRow {
	const addr = 0x2000_0000
	return []tableIRow{
		{
			Action: "arm", Where: "hit",
			Expected: "set token bit (single cycle)",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{}})
				c.Load(0, addr, 8)
				r := c.Arm(100, addr)
				m, _ := c.TokenMask(addr)
				return fmt.Sprintf("bit=%d lat=%d", m, r.Done-100), m == 1 && r.Done-100 == 1
			},
		},
		{
			Action: "arm", Where: "miss",
			Expected: "fetch line, set token bit",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{}})
				r := c.Arm(0, addr)
				m, ok := c.TokenMask(addr)
				return fmt.Sprintf("fetched=%v bit=%d", ok, m), ok && m == 1 && !r.Hit
			},
		},
		{
			Action: "disarm", Where: "hit",
			Expected: "clear line+bit if set, else exception",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{}})
				c.Arm(0, addr)
				_, okArmed := c.Disarm(100, addr)
				_, okUnarmed := c.Disarm(200, addr)
				return fmt.Sprintf("armed:ok=%v unarmed:raises=%v", okArmed, !okUnarmed),
					okArmed && !okUnarmed
			},
		},
		{
			Action: "disarm", Where: "miss",
			Expected: "fetch; token in memory -> proceed as hit",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{addr: 1}})
				_, ok := c.Disarm(0, addr)
				m, _ := c.TokenMask(addr)
				return fmt.Sprintf("ok=%v bit-after=%d", ok, m), ok && m == 0
			},
		},
		{
			Action: "disarm", Where: "LSQ",
			Expected: "exception if in-flight disarm matches",
			Check: func() (string, bool) {
				p := pipelineFor(core.Secure)
				st := p.Run(trace.NewSliceReader([]trace.Entry{
					{PC: 0x400000, Op: isa.OpDisarm, Addr: addr, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
					{PC: 0x400010, Op: isa.OpDisarm, Addr: addr, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
				}))
				got := st.Exception != nil && st.Exception.Kind == core.ViolationDoubleDisarm
				return fmt.Sprintf("exception=%v", got), got
			},
		},
		{
			Action: "load", Where: "hit",
			Expected: "exception if token bit set, else read",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{}})
				c.Arm(0, addr)
				r1 := c.Load(100, addr, 8)
				r2 := c.Load(200, addr+1024, 8)
				return fmt.Sprintf("token:hit=%v clean:hit=%v", r1.TokenHit, r2.TokenHit),
					r1.TokenHit && !r2.TokenHit
			},
		},
		{
			Action: "load", Where: "miss",
			Expected: "fetch, detector sets bit, exception",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{addr: 1}})
				r := c.Load(0, addr, 8)
				return fmt.Sprintf("tokenhit=%v", r.TokenHit), r.TokenHit
			},
		},
		{
			Action: "load", Where: "LSQ",
			Expected: "exception if value would forward from arm",
			Check: func() (string, bool) {
				p := pipelineFor(core.Secure)
				st := p.Run(trace.NewSliceReader([]trace.Entry{
					{PC: 0x400000, Op: isa.OpArm, Addr: addr, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
					{PC: 0x400010, Op: isa.OpLoad, Addr: addr + 8, Size: 8, Dst: 1, Src1: isa.NoReg, Src2: isa.NoReg},
				}))
				got := st.Exception != nil && st.Exception.Kind == core.ViolationForwarding
				return fmt.Sprintf("exception=%v", got), got
			},
		},
		{
			Action: "store (secure)", Where: "LSQ",
			Expected: "exception if SQ has arm for location",
			Check: func() (string, bool) {
				p := pipelineFor(core.Secure)
				st := p.Run(trace.NewSliceReader([]trace.Entry{
					{PC: 0x400000, Op: isa.OpArm, Addr: addr, Size: 64, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
					{PC: 0x400010, Op: isa.OpStore, Addr: addr + 8, Size: 8, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
				}))
				got := st.Exception != nil && st.Exception.Kind == core.ViolationStoreInflightArm
				return fmt.Sprintf("exception=%v", got), got
			},
		},
		{
			Action: "store", Where: "hit",
			Expected: "exception if token bit set, else write",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{}})
				c.Arm(0, addr)
				r1 := c.Store(100, addr+8, 8)
				r2 := c.Store(200, addr+2048, 8)
				return fmt.Sprintf("token:hit=%v clean:hit=%v", r1.TokenHit, r2.TokenHit),
					r1.TokenHit && !r2.TokenHit
			},
		},
		{
			Action: "store (debug)", Where: "miss",
			Expected: "commit delayed until L1-D ack",
			Check: func() (string, bool) {
				mk := func(mode core.Mode) uint64 {
					p := pipelineFor(mode)
					es := make([]trace.Entry, 200)
					for i := range es {
						es[i] = trace.Entry{PC: 0x400000 + uint64(i%32)*16, Op: isa.OpStore,
							Addr: 0x3000_0000 + uint64(i)*4096, Size: 8,
							Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
					}
					return p.Run(trace.NewSliceReader(es)).Cycles
				}
				sec, dbg := mk(core.Secure), mk(core.Debug)
				return fmt.Sprintf("secure=%d debug=%d cycles", sec, dbg), dbg > sec
			},
		},
		{
			Action: "eviction", Where: "hit",
			Expected: "token value filled into outgoing packet",
			Check: func() (string, bool) {
				c := newL1D(&tokenStub{masks: map[uint64]uint8{}})
				c.Arm(0, 0x0)
				c.Load(100, 0x800, 8)
				c.Load(300, 0x1000, 8) // evicts the token line
				return fmt.Sprintf("tokenEvicts=%d writebacks=%d",
						c.Stats.TokenEvicts, c.Stats.Writebacks),
					c.Stats.TokenEvicts == 1 && c.Stats.Writebacks >= 1
			},
		},
	}
}

// MicroStats reproduces the §VI-B microarchitectural observations for one
// workload: debug-vs-secure ROB store blocking, IQ pressure, and token
// traffic at the L2/memory interface per kilo-instruction.
type MicroStats struct {
	Workload            string
	SecureROBStoreBlock uint64
	DebugROBStoreBlock  uint64
	SecureIQFull        uint64
	DebugIQFull         uint64
	SecureROBFull       uint64
	DebugROBFull        uint64
	TokenL2MemPerKInstr float64
	TokenL1EvPerKInstr  float64
	// Matrix is the underlying two-cell sweep (metrics export surface).
	Matrix *Matrix
}

// Metrics exports the sweep's observability report (nil unless the sweep ran
// with ParallelOptions.Metrics).
func (s *MicroStats) Metrics() *MetricsReport {
	if s.Matrix == nil {
		return nil
	}
	return s.Matrix.Metrics("micro")
}

// RunMicroStats runs the secure and debug REST-full configurations for a
// workload and extracts the §VI-B statistics. The context bounds both runs
// (cmd/restbench -timeout reaches every report path through it).
func RunMicroStats(ctx context.Context, wl workload.Workload, scale int64) (*MicroStats, error) {
	return RunMicroStatsParallel(ctx, wl, scale, ParallelOptions{})
}

// RunMicroStatsParallel is RunMicroStats on the parallel sweep engine (the
// secure and debug runs are independent cells and proceed concurrently).
func RunMicroStatsParallel(ctx context.Context, wl workload.Workload, scale int64, opt ParallelOptions) (*MicroStats, error) {
	cfgs := []BinaryConfig{
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
	}
	// The hierarchy counters below read the cells' live worlds, which the
	// persistent result store cannot supply.
	opt.NeedWorld = true
	m, err := RunMatrixParallel(ctx, []workload.Workload{wl}, cfgs, scale, opt)
	if err != nil {
		return nil, err
	}
	sec := m.Results[wl.Name]["secure-full"]
	dbg := m.Results[wl.Name]["debug-full"]
	if sec == nil || dbg == nil {
		return nil, fmt.Errorf("harness: micro stats for %s: incomplete sweep", wl.Name)
	}
	kinstr := float64(sec.Stats.Instructions) / 1000
	return &MicroStats{
		Workload:            wl.Name,
		SecureROBStoreBlock: sec.Stats.ROBStoreBlockCycles,
		DebugROBStoreBlock:  dbg.Stats.ROBStoreBlockCycles,
		SecureIQFull:        sec.Stats.IQFullCycles,
		DebugIQFull:         dbg.Stats.IQFullCycles,
		SecureROBFull:       sec.Stats.ROBFullCycles,
		DebugROBFull:        dbg.Stats.ROBFullCycles,
		TokenL2MemPerKInstr: float64(sec.World.Hier.TokenL2MemCrossings()) / kinstr,
		TokenL1EvPerKInstr:  float64(sec.World.Hier.L1D.Stats.TokenEvicts) / kinstr,
		Matrix:              m,
	}, nil
}

// Render prints the §VI-B statistics.
func (s *MicroStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§VI-B microarchitectural statistics (%s)\n", s.Workload)
	fmt.Fprintf(&b, "  ROB blocked-by-store cycles: secure=%d debug=%d (x%.1f)\n",
		s.SecureROBStoreBlock, s.DebugROBStoreBlock,
		ratio(s.DebugROBStoreBlock, s.SecureROBStoreBlock))
	fmt.Fprintf(&b, "  IQ-full stall cycles:        secure=%d debug=%d (x%.1f)\n",
		s.SecureIQFull, s.DebugIQFull, ratio(s.DebugIQFull, s.SecureIQFull))
	fmt.Fprintf(&b, "  window(ROB)-full cycles:     secure=%d debug=%d (x%.1f)\n",
		s.SecureROBFull, s.DebugROBFull, ratio(s.DebugROBFull, s.SecureROBFull))
	fmt.Fprintf(&b, "  tokens crossing L2/memory:   %.4f per kilo-instruction\n",
		s.TokenL2MemPerKInstr)
	fmt.Fprintf(&b, "  token lines evicted at L1-D: %.4f per kilo-instruction\n",
		s.TokenL1EvPerKInstr)
	return b.String()
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		b = 1
	}
	return float64(a) / float64(b)
}

// RenderTableIII prints the paper's qualitative comparison of hardware
// memory-safety schemes (Table III) — static data reproduced for
// completeness of the artifact.
func RenderTableIII() string {
	type row struct{ name, spatial, temporal, shadow, compose, perf, hw string }
	rows := []row{
		{"Hardbound", "Complete", "None", "yes", "no", "Low", "uop injection, L1/TLB tags"},
		{"SafeProc", "Complete", "Complete", "no", "no", "Low", "CAMs, hash table + walker"},
		{"Watchdog", "Complete", "Complete", "yes", "no", "Moderate", "uop injection, lock-ID cache"},
		{"WatchdogLite", "Complete", "Complete", "yes", "no", "Moderate", "nominal"},
		{"Intel MPX", "Complete", "None", "no", "no*", "High", "not public"},
		{"HDFI", "Linear", "None", "yes", "yes", "Negligible", "wider buses, tag controller"},
		{"ADI", "Linear", "Until realloc", "no", "yes", "Negligible", "4b/line all levels"},
		{"CHERI", "Complete", "Complete", "no", "no", "Moderate", "capability coprocessor"},
		{"iWatcher", "n/a", "n/a", "no", "yes", "High", "per-byte line metadata"},
		{"Unlim. watchpoints", "n/a", "n/a", "no", "yes", "High", "range cache, metadata TLB"},
		{"SafeMem", "Linear", "None", "no", "yes", "High", "repurposed ECC"},
		{"MemTracker", "Linear", "Until realloc", "yes", "yes", "Low", "metadata caches, monitor"},
		{"ARM PA", "Targeted", "None", "no", "yes", "Negligible", "not public"},
		{"REST", "Linear", "Until realloc", "no", "yes", "Moderate", "1 bit/L1-D line, 1 comparator"},
	}
	var b strings.Builder
	b.WriteString("Table III: comparison of hardware memory-safety proposals\n")
	fmt.Fprintf(&b, "%-20s %-10s %-14s %-7s %-8s %-11s %s\n",
		"proposal", "spatial", "temporal", "shadow", "compose", "overhead", "hardware changes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-10s %-14s %-7s %-8s %-11s %s\n",
			r.name, r.spatial, r.temporal, r.shadow, r.compose, r.perf, r.hw)
	}
	b.WriteString("* MPX drops metadata when unprotected modules manipulate pointers\n")
	return b.String()
}

// RESTRow is Table III's REST row as structured data, checked against the
// implementation by TestTableIIIConsistency so the qualitative claims stay
// true as the code evolves.
type RESTClaims struct {
	SpatialPattern   string // "Linear": detects sweeps into redzones, not targeted jumps
	TemporalWindow   string // "Until realloc": quarantine, then the window closes
	NeedsShadowSpace bool   // no shadow memory
	Composable       bool   // uninstrumented code is still covered
	HardwareChanges  string
}

// TableIIIRESTRow returns the REST row of Table III.
func TableIIIRESTRow() RESTClaims {
	return RESTClaims{
		SpatialPattern:   "Linear",
		TemporalWindow:   "Until realloc",
		NeedsShadowSpace: false,
		Composable:       true,
		HardwareChanges:  "1 metadata bit per L1-D line, 1 comparator",
	}
}
