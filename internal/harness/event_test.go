package harness

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"rest/internal/obs"
	"rest/internal/obs/otlp"
	"rest/internal/persist"
)

// fig7Grid and sensGrid subset their sweep grids under the race detector,
// following the package convention of trimming sweep sizes when races are
// being checked (the assertions below need variety, not the full matrix).
func fig7Grid() []BinaryConfig {
	cfgs := Fig7Configs()
	if raceEnabled && len(cfgs) > 3 {
		cfgs = cfgs[:3]
	}
	return cfgs
}

func sensGrid() []BinaryConfig {
	cfgs := Fig8SensitivityConfigs()
	if raceEnabled {
		cfgs = cfgs[:len(cfgs)/2]
	}
	return cfgs
}

// collectEvents runs one sweep and returns its CellEvent stream in arrival
// order.
func collectEvents(t *testing.T, cfgs []BinaryConfig, opt ParallelOptions) []CellEvent {
	t.Helper()
	var mu sync.Mutex
	var evs []CellEvent
	opt.OnCell = func(ev CellEvent) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	}
	wls := subset(t, "lbm", "xalanc")
	if _, err := RunMatrixParallel(context.Background(), wls, cfgs, 1, opt); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return evs
}

// The event clock is injectable: every Start/End timestamp must come from
// opt.Now, making span exports byte-stable under test.
func TestCellEventInjectedClock(t *testing.T) {
	t.Parallel()
	base := time.Unix(1700000000, 0)
	var mu sync.Mutex
	tick := 0
	evs := collectEvents(t, fig7Grid(), ParallelOptions{
		Workers: 2,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			tick++
			return base.Add(time.Duration(tick) * time.Millisecond)
		},
	})
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range evs {
		if ev.Start.Before(base) || ev.End.Before(ev.Start) {
			t.Errorf("cell %s/%s: timestamps %v..%v not from injected clock",
				ev.Workload, ev.Config, ev.Start, ev.End)
		}
	}
}

// Source tags must follow the result's actual provenance through the cache
// tiers: live stream/capture/replay in memory, result-store and disk-replay
// across processes.
func TestCellEventSourceTags(t *testing.T) {
	t.Parallel()

	// No cache: every cell streams.
	for _, ev := range collectEvents(t, fig7Grid(), ParallelOptions{Workers: 2}) {
		if ev.Source != "stream" {
			t.Errorf("uncached cell %s/%s tagged %q, want stream", ev.Workload, ev.Config, ev.Source)
		}
	}

	// In-memory trace cache over a timing-only grid (the sharing the cache
	// exists for): captures and replays appear.
	tags := map[string]int{}
	for _, ev := range collectEvents(t, sensGrid(), ParallelOptions{Workers: 2, TraceCache: NewTraceCache()}) {
		tags[ev.Source]++
	}
	if tags["capture"] == 0 || tags["replay"] == 0 {
		t.Errorf("trace-cached sweep sources = %v, want captures and replays", tags)
	}
	if tags[""] > 0 {
		t.Errorf("successful cells with empty source: %v", tags)
	}

	// Warm persistent cache: a second sweep over the same grid must serve
	// from the result store (and the trace store for planned leaders).
	dir := t.TempDir()
	coldTC, _ := diskTC(t, dir, persist.Options{})
	collectEvents(t, sensGrid(), ParallelOptions{Workers: 2, TraceCache: coldTC})
	warmTC, _ := diskTC(t, dir, persist.Options{})
	warm := map[string]int{}
	for _, ev := range collectEvents(t, sensGrid(), ParallelOptions{Workers: 2, TraceCache: warmTC}) {
		warm[ev.Source]++
	}
	if warm["result-store"] == 0 {
		t.Errorf("warm sweep sources = %v, want result-store hits", warm)
	}
	if warm["stream"]+warm["capture"] > 0 {
		t.Errorf("warm sweep re-executed cells: %v", warm)
	}
}

// Obs rides the event stream only when the sweep collects metrics.
func TestCellEventObsAttachment(t *testing.T) {
	t.Parallel()
	for _, ev := range collectEvents(t, fig7Grid(), ParallelOptions{Workers: 2}) {
		if ev.Obs != nil {
			t.Fatalf("cell %s/%s carries a registry without Metrics", ev.Workload, ev.Config)
		}
	}
	for _, ev := range collectEvents(t, fig7Grid(), ParallelOptions{Workers: 2, Metrics: true}) {
		if ev.Obs == nil {
			t.Fatalf("cell %s/%s missing registry with Metrics on", ev.Workload, ev.Config)
		}
		findMetric(t, ev.Obs.Snapshot(), "sim.user_instructions")
	}
}

// The exporter glue end to end: events drive the live state, every published
// line validates, and the snapshot carries progress gauges plus cache
// counters.
func TestTelemetryExporterOnSweep(t *testing.T) {
	t.Parallel()
	tc := NewTraceCache()
	tel := NewTelemetryExporter("restbench-test", tc)
	sub := tel.Bus.Subscribe(4096)

	wls := subset(t, "lbm", "xalanc")
	cfgs := sensGrid()
	cells := len(wls) * len(cfgs)
	tel.AddSweep("fig7", cells)
	_, err := RunMatrixParallel(context.Background(), wls, cfgs, 1, ParallelOptions{
		Workers:    2,
		TraceCache: tc,
		Metrics:    true,
		OnCell:     tel.OnCell("fig7"),
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}

	total, done, holes := tel.Live.Progress()
	if total != cells || done != cells || holes != 0 {
		t.Errorf("live progress = %d/%d (%d holes), want %d/%d (0)", done, total, holes, cells, cells)
	}

	// Every streamed line is a valid OTLP document; one span per cell.
	tel.Bus.Unsubscribe(sub)
	spans := 0
	for line := range sub.C() {
		if err := otlp.ValidateLine(line); err != nil {
			t.Fatalf("published line invalid: %v\n%s", err, line)
		}
		if strings.Contains(string(line), "resourceSpans") {
			spans++
		}
	}
	if spans != cells {
		t.Errorf("published %d span lines, want %d", spans, cells)
	}
	if pub, dropped := tel.Bus.Counters(); pub != uint64(cells) || dropped != 0 {
		t.Errorf("bus counters = %d published, %d dropped; want %d, 0", pub, dropped, cells)
	}

	// The snapshot merges progress gauges, cache counters and the live
	// per-cell aggregate, and encodes to a valid document.
	snap := tel.Snapshot()
	if m := findMetric(t, snap, "harness.live.cells_done"); m.Value != uint64(cells) {
		t.Errorf("cells_done gauge = %d, want %d", m.Value, cells)
	}
	findMetric(t, snap, "harness.trace_cache.hits")
	findMetric(t, snap, "sim.user_instructions")
	doc := otlp.Line(otlp.EncodeMetrics(snap, otlp.ServiceResource("restbench-test"), time.Unix(0, 0), time.Unix(1, 0)))
	if err := otlp.ValidateMetrics(doc); err != nil {
		t.Fatalf("exporter snapshot does not encode to valid OTLP: %v", err)
	}

	// The meter stats roll up the cache tiers.
	if st := tel.ProgressStats(); st.CacheLookups == 0 || st.CacheHits == 0 {
		t.Errorf("progress stats empty after a cached sweep: %+v", st)
	}
}

// CellEventSpan flattens verdicts the way the dashboard expects.
func TestCellEventSpanVerdicts(t *testing.T) {
	t.Parallel()
	ok := CellEventSpan("fig7", CellEvent{Workload: "lbm", Config: "plain", Instrs: 5, Cycles: 9, Source: "stream"})
	if ok.Verdict != "ok" || ok.Reason != "" || ok.Cycles != 9 {
		t.Errorf("ok span: %+v", ok)
	}
	sk := CellEventSpan("fig7", CellEvent{Skipped: true})
	if sk.Verdict != "skipped" {
		t.Errorf("skipped span: %+v", sk)
	}
	hole := CellEventSpan("fig7", CellEvent{Err: context.DeadlineExceeded})
	if hole.Verdict != "hole" || hole.Reason == "" {
		t.Errorf("hole span: %+v", hole)
	}

	// A nil exporter disables the stream without branching at call sites.
	var nx *TelemetryExporter
	if nx.OnCell("fig7") != nil {
		t.Error("nil exporter returned a callback")
	}
	nx.AddSweep("fig7", 3)
	if s := nx.Snapshot(); s != nil {
		t.Errorf("nil exporter snapshot: %v", s)
	}
	if st := nx.ProgressStats(); st != (obs.ProgressStats{}) {
		t.Errorf("nil exporter stats: %+v", st)
	}
}
