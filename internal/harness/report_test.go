package harness

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"rest/internal/attack"
	"rest/internal/prog"
	"rest/internal/world"
)

func TestMatrixJSON(t *testing.T) {
	wls := subset(t, "lbm")
	m, err := RunMatrix(wls, Fig7Configs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.JSON("fig7", 1)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if rep.Title != "fig7" || rep.Scale != 1 {
		t.Errorf("header = %+v", rep)
	}
	if rep.Cycles["lbm"]["plain"] == 0 {
		t.Error("missing baseline cycles")
	}
	if _, ok := rep.OverheadPc["lbm"]["secure-full"]; !ok {
		t.Error("missing overhead cell")
	}
	if _, ok := rep.OverheadPc["lbm"]["plain"]; ok {
		t.Error("baseline has an overhead entry")
	}
	if _, ok := rep.WtdMeanPc["asan"]; !ok {
		t.Error("missing weighted mean")
	}
	if m.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestFig3JSON(t *testing.T) {
	r, err := RunFig3(context.Background(), subset(t, "lbm"), 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["benchmark"] != "lbm" {
		t.Errorf("rows = %v", rows)
	}
	comp := rows[0]["components_percent"].(map[string]interface{})
	if len(comp) != 4 {
		t.Errorf("components = %v", comp)
	}
}

func TestRenderBarChart(t *testing.T) {
	wls := subset(t, "lbm")
	m, err := RunMatrix(wls, Fig7Configs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	chart := m.RenderBarChart("Figure 7", 180)
	if !strings.Contains(chart, "lbm") || !strings.Contains(chart, "asan") {
		t.Error("chart missing rows")
	}
	if !strings.Contains(chart, "#") {
		t.Error("chart has no bars")
	}
}

// TestTableIIIConsistency verifies Table III's REST row against the actual
// behaviour of the implementation, via the attack suite's ground truth.
func TestTableIIIConsistency(t *testing.T) {
	claims := TableIIIRESTRow()
	if claims.NeedsShadowSpace {
		t.Error("claims say no shadow space; the REST flavour must not use one")
	}
	// Spatial = Linear: linear overflows caught, targeted jumps not.
	caught := attackDetected(t, "heap-linear-overflow-write")
	jumped := attackDetected(t, "jump-over-redzone")
	if !caught || jumped {
		t.Errorf("spatial pattern claim violated: linear=%v jump=%v", caught, jumped)
	}
	// Temporal = Until realloc: UAF caught, post-recycle not.
	uaf := attackDetected(t, "uaf-read")
	recycled := attackDetected(t, "uaf-after-recycle")
	if !uaf || recycled {
		t.Errorf("temporal window claim violated: uaf=%v recycled=%v", uaf, recycled)
	}
	// Composable: the heartbleed memcpy runs in UNINSTRUMENTED library code
	// and is still caught under heap-only REST.
	if !attackDetected(t, "heartbleed") {
		t.Error("composability claim violated: uninstrumented memcpy not covered")
	}
}

func attackDetected(t *testing.T, name string) bool {
	t.Helper()
	a, ok := attack.ByName(name)
	if !ok {
		t.Fatalf("unknown attack %q", name)
	}
	w, err := world.Build(world.Spec{Pass: prog.RESTHeap(64)}, a.Build)
	if err != nil {
		t.Fatal(err)
	}
	out := w.RunFunctional()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	return out.Detected()
}
