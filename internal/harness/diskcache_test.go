package harness

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rest/internal/attack"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/obs"
	"rest/internal/persist"
	"rest/internal/prog"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// The persistent-cache differential: a sweep served from disk — whether from
// the trace store (replay) or the result store (pure memoization) — must be
// indistinguishable from a cold or cache-off sweep: identical cpu.Stats,
// byte-identical reports, at any worker count. Corruption anywhere degrades
// to recompute, never to a wrong answer or a crash.

// openDisk opens a persist cache for tests, failing the test on error.
func openDisk(t *testing.T, dir string, opt persist.Options) *persist.Cache {
	t.Helper()
	pc, err := persist.Open(dir, opt)
	if err != nil {
		t.Fatalf("persist.Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc
}

// diskTC builds a TraceCache backed by a fresh persist.Cache on dir.
func diskTC(t *testing.T, dir string, opt persist.Options) (*TraceCache, *persist.Cache) {
	t.Helper()
	pc := openDisk(t, dir, opt)
	tc := NewTraceCache()
	tc.AttachDisk(pc)
	return tc, pc
}

// TestDiskCacheCellDifferential proves bit-exactness of both disk tiers,
// cell by cell, across the full Figure 7 + Figure 8 config matrix: a cell
// replayed from the on-disk trace store and a cell served from the result
// store both equal the streamed reference exactly.
func TestDiskCacheCellDifferential(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "xalanc")
	cfgs := replayMatrixConfigs()
	for _, wl := range wls {
		for _, cfg := range cfgs {
			wl, cfg := wl, cfg
			t.Run(wl.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				one := []workload.Workload{wl}
				pair := []BinaryConfig{cfg}

				streamed, err := RunLimited(wl, cfg, 1, CellLimits{})
				if err != nil {
					t.Fatalf("streamed run: %v", err)
				}

				// Cold: an unshared (bypass-role) cell captures to disk.
				tcCold, pcCold := diskTC(t, dir, persist.Options{})
				tcCold.Plan(one, pair, 1, 0)
				cold, err := RunCached(wl, cfg, 1, CellLimits{}, tcCold)
				if err != nil {
					t.Fatalf("cold run: %v", err)
				}
				assertCellEqual(t, streamed, cold)
				if c := pcCold.Counters(); c.Stores == 0 {
					t.Fatalf("cold run stored nothing: %+v", c)
				}

				// Warm, trace tier: NeedWorld keeps the result store out, so
				// the cell must replay the stored capture.
				tcTrace, pcTrace := diskTC(t, dir, persist.Options{})
				tcTrace.Plan(one, pair, 1, 0)
				viaTrace, err := RunCached(wl, cfg, 1, CellLimits{NeedWorld: true}, tcTrace)
				if err != nil {
					t.Fatalf("warm trace-tier run: %v", err)
				}
				assertCellEqual(t, streamed, viaTrace)
				if viaTrace.World == nil {
					t.Errorf("NeedWorld cell came back without a world")
				}
				if c := pcTrace.Counters(); c.TraceHits != 1 {
					t.Errorf("trace tier not exercised: %+v", c)
				}

				// Warm, result tier: the cell's stats come straight off disk.
				tcRes, pcRes := diskTC(t, dir, persist.Options{})
				tcRes.Plan(one, pair, 1, 0)
				viaResult, err := RunCached(wl, cfg, 1, CellLimits{}, tcRes)
				if err != nil {
					t.Fatalf("warm result-tier run: %v", err)
				}
				if c := pcRes.Counters(); c.ResultHits != 1 {
					t.Errorf("result tier not exercised: %+v", c)
				}
				if viaResult.Cycles != streamed.Cycles ||
					!reflect.DeepEqual(viaResult.Stats, streamed.Stats) ||
					viaResult.Outcome.Checksum != streamed.Outcome.Checksum {
					t.Errorf("result tier diverges:\nstreamed: %+v\nresult:   %+v",
						streamed.Stats, viaResult.Stats)
				}
				// The result tier must also have drained the plan.
				tcRes.mu.Lock()
				planned, entries := len(tcRes.plan), len(tcRes.entries)
				tcRes.mu.Unlock()
				if planned != 0 || entries != 0 {
					t.Errorf("result hit leaked plan state: %d keys, %d entries", planned, entries)
				}
			})
		}
	}
}

// TestDiskCacheSweepDifferential pins the report contract: the sensitivity
// sweep renders byte-identical tables and CSVs cold, warm and with the
// persistent cache off, at -j 1 and -j 4, and every warm cell's stats equal
// the cache-off cell's exactly.
func TestDiskCacheSweepDifferential(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "sjeng", "xalanc")
	cfgs := Fig8SensitivityConfigs()
	ctx := context.Background()
	dir := t.TempDir()

	type rendering struct {
		table, csv string
		m          *Matrix
	}
	render := func(tc *TraceCache, workers int) rendering {
		t.Helper()
		m, err := RunMatrixParallel(ctx, wls, cfgs, 1, ParallelOptions{Workers: workers, TraceCache: tc})
		if err != nil {
			t.Fatalf("sweep (workers=%d): %v", workers, err)
		}
		return rendering{m.RenderOverheadTable("sensitivity"), m.CSV(), m}
	}

	coldTC, _ := diskTC(t, dir, persist.Options{})
	cold := render(coldTC, 1)
	warmTC, warmPC := diskTC(t, dir, persist.Options{})
	warm := render(warmTC, 4)
	warmJ1TC, _ := diskTC(t, dir, persist.Options{})
	warmJ1 := render(warmJ1TC, 1)
	off := render(NewTraceCache(), 4)

	if c := warmPC.Counters(); c.ResultHits == 0 {
		t.Errorf("warm sweep never hit the result store: %+v", c)
	}
	for name, r := range map[string]rendering{"warm-j4": warm, "warm-j1": warmJ1, "off": off} {
		if r.table != cold.table || r.csv != cold.csv {
			t.Errorf("%s report diverges from cold:\ncold: %s\n%s:  %s", name, cold.table, name, r.table)
		}
	}
	for _, wl := range off.m.Workloads {
		for _, c := range off.m.Configs {
			got, want := warm.m.Results[wl][c], off.m.Results[wl][c]
			if got == nil || want == nil {
				t.Fatalf("%s/%s missing from a sweep", wl, c)
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Errorf("%s/%s stats diverge warm vs off:\nwarm: %+v\noff:  %+v", wl, c, got.Stats, want.Stats)
			}
		}
	}
}

// TestDiskCacheCorruptionRecovery damages every file of a warm cache — one
// flipped bit each — and proves the next sweep silently recomputes: reports
// stay byte-identical, harness.diskcache.corruptions counts the damage, and
// the rewritten files serve hits again on the run after that.
func TestDiskCacheCorruptionRecovery(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	ctx := context.Background()
	dir := t.TempDir()

	sweep := func(tc *TraceCache) string {
		t.Helper()
		m, err := RunMatrixParallel(ctx, wls, cfgs, 1, ParallelOptions{Workers: 2, TraceCache: tc})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return m.RenderOverheadTable("sensitivity") + m.CSV()
	}

	coldTC, _ := diskTC(t, dir, persist.Options{})
	cold := sweep(coldTC)

	// Flip one bit in every stored artifact.
	damaged := 0
	for _, sub := range []string{"traces", "results"} {
		files, err := filepath.Glob(filepath.Join(dir, sub, "*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x40
			if err := os.WriteFile(f, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			damaged++
		}
	}
	if damaged == 0 {
		t.Fatalf("cold sweep left nothing on disk to damage")
	}

	hurtTC, hurtPC := diskTC(t, dir, persist.Options{})
	hurt := sweep(hurtTC)
	if hurt != cold {
		t.Errorf("corrupted cache changed the report:\ncold: %s\nhurt: %s", cold, hurt)
	}
	c := hurtPC.Counters()
	if c.Corruptions == 0 {
		t.Errorf("no corruptions counted after damaging %d files: %+v", damaged, c)
	}
	reg := newTestRegistry(t, hurtTC)
	if got := reg["harness.diskcache.corruptions"]; got == 0 {
		t.Errorf("harness.diskcache.corruptions not exported: %v", reg)
	}

	// The damaged entries were recomputed and rewritten: hits again.
	healedTC, healedPC := diskTC(t, dir, persist.Options{})
	healed := sweep(healedTC)
	if healed != cold {
		t.Errorf("healed cache changed the report")
	}
	if hc := healedPC.Counters(); hc.ResultHits == 0 || hc.Corruptions != 0 {
		t.Errorf("cache did not heal: %+v", hc)
	}
}

// newTestRegistry snapshots recordDiskObs's export as a name→value map.
func newTestRegistry(t *testing.T, tc *TraceCache) map[string]uint64 {
	t.Helper()
	reg := obs.NewRegistry()
	tc.recordDiskObs(reg)
	out := map[string]uint64{}
	for _, c := range reg.Snapshot() {
		out[c.Name] = c.Value
	}
	return out
}

// TestDiskCacheMicroStats runs the §VI-B micro-stats path — whose cells read
// their live worlds and therefore must bypass the result store — cold and
// warm, asserting identical renderings with the warm run served by the trace
// store.
func TestDiskCacheMicroStats(t *testing.T) {
	t.Parallel()
	wl, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()

	coldTC, _ := diskTC(t, dir, persist.Options{})
	cold, err := RunMicroStatsParallel(ctx, wl, 1, ParallelOptions{TraceCache: coldTC})
	if err != nil {
		t.Fatalf("cold micro stats: %v", err)
	}
	warmTC, warmPC := diskTC(t, dir, persist.Options{})
	warm, err := RunMicroStatsParallel(ctx, wl, 1, ParallelOptions{TraceCache: warmTC})
	if err != nil {
		t.Fatalf("warm micro stats: %v", err)
	}
	if cold.Render() != warm.Render() {
		t.Errorf("micro stats diverge:\ncold: %s\nwarm: %s", cold.Render(), warm.Render())
	}
	if c := warmPC.Counters(); c.TraceHits == 0 || c.ResultHits != 0 {
		t.Errorf("micro-stats cells should replay traces, never load results: %+v", c)
	}
}

// TestDiskCacheMetricsBypass pins the metrics determinism story: cells with
// metric registries never touch the disk (functional registries are not
// persisted), so a metrics sweep renders identical metrics cold and warm.
func TestDiskCacheMetricsBypass(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	ctx := context.Background()
	dir := t.TempDir()

	metricsCSV := func(tc *TraceCache) string {
		t.Helper()
		m, err := RunMatrixParallel(ctx, wls, cfgs, 1, ParallelOptions{Workers: 2, Metrics: true, TraceCache: tc})
		if err != nil {
			t.Fatalf("metrics sweep: %v", err)
		}
		return m.Metrics("fig8sens").CSV()
	}

	coldTC, coldPC := diskTC(t, dir, persist.Options{})
	cold := metricsCSV(coldTC)
	if c := coldPC.Counters(); c.Stores != 0 || c.TraceMisses != 0 || c.ResultMisses != 0 {
		t.Errorf("metrics cells touched the disk cache: %+v", c)
	}
	warmTC, _ := diskTC(t, dir, persist.Options{})
	warm := metricsCSV(warmTC)
	if cold != warm {
		t.Errorf("metrics diverge cold vs warm:\ncold: %s\nwarm: %s", cold, warm)
	}
	if strings.Contains(cold, "harness.diskcache.") {
		t.Errorf("diskcache counters leaked into the deterministic metrics report")
	}
}

// TestDiskCacheReadOnly proves -cache-ro semantics at the harness layer: a
// read-only cache serves hits but never writes, and a read-only cache over
// an empty directory degrades every cell to an ordinary run.
func TestDiskCacheReadOnly(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig8SensitivityConfigs()
	ctx := context.Background()
	dir := t.TempDir()

	sweep := func(tc *TraceCache) string {
		t.Helper()
		m, err := RunMatrixParallel(ctx, wls, cfgs, 1, ParallelOptions{Workers: 2, TraceCache: tc})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return m.RenderOverheadTable("sensitivity")
	}

	// Read-only over an empty cache: everything recomputes, nothing lands.
	emptyDir := t.TempDir()
	roEmptyTC, roEmptyPC := diskTC(t, emptyDir, persist.Options{ReadOnly: true})
	roEmpty := sweep(roEmptyTC)
	if c := roEmptyPC.Counters(); c.Stores != 0 || c.TraceHits != 0 || c.ResultHits != 0 {
		t.Errorf("read-only cache wrote or hallucinated hits: %+v", c)
	}
	if ents, _ := filepath.Glob(filepath.Join(emptyDir, "*", "*")); len(ents) != 0 {
		t.Errorf("read-only cache left files behind: %v", ents)
	}

	coldTC, _ := diskTC(t, dir, persist.Options{})
	cold := sweep(coldTC)
	roTC, roPC := diskTC(t, dir, persist.Options{ReadOnly: true})
	ro := sweep(roTC)
	if ro != cold || roEmpty != cold {
		t.Errorf("read-only sweeps diverge from cold")
	}
	if c := roPC.Counters(); c.ResultHits == 0 || c.Stores != 0 {
		t.Errorf("warm read-only cache should hit without storing: %+v", c)
	}
}

// TestDiskTraceAttackRoundTrip stores each §V attack's capture — runs that
// end in exceptions and violations, the hardest traces for the token shadow —
// in the on-disk format and replays the loaded copy, asserting stats and
// outcome identical to the streamed run. (The harness itself never persists
// detected cells; this pins that the format would not be the weak link even
// for them.)
func TestDiskTraceAttackRoundTrip(t *testing.T) {
	t.Parallel()
	cfgs := []BinaryConfig{
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
		{Name: "asan", Pass: prog.ASanFull()},
	}
	for _, a := range attack.All() {
		for _, cfg := range cfgs {
			a, cfg := a, cfg
			t.Run(a.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				pc := openDisk(t, t.TempDir(), persist.Options{})
				spec := world.Spec{
					Pass:  cfg.Pass,
					Mode:  cfg.Mode,
					Width: core.Width(cfg.Pass.TokenWidth),
				}
				w, err := world.Build(spec, a.Build)
				if err != nil {
					t.Fatalf("world.Build: %v", err)
				}
				rec := trace.NewRecorder(captureTokenWidth(cfg.Pass), 0)
				wantStats, wantOut := w.RunTimedCapture(rec)

				id := persist.SumID("attack|" + a.Name + "|" + cfg.Name)
				if err := pc.StoreTrace(id, rec, wantOut.Checksum); err != nil {
					t.Fatalf("StoreTrace: %v", err)
				}
				rec.Release()
				loaded, checksum, err := pc.LoadTrace(id)
				if err != nil {
					t.Fatalf("LoadTrace: %v", err)
				}
				defer loaded.Release()
				if checksum != wantOut.Checksum {
					t.Errorf("checksum lost in round trip: %#x != %#x", checksum, wantOut.Checksum)
				}

				rp := loaded.Replayer()
				var tokens cache.TokenSource
				if loaded.TokenWidth() != 0 {
					tokens = rp
				}
				rw, err := world.BuildReplay(spec, tokens)
				if err != nil {
					t.Fatalf("world.BuildReplay: %v", err)
				}
				gotStats, gotOut := rw.ReplayTimed(rp, wantOut)
				if !reflect.DeepEqual(wantStats, gotStats) {
					t.Errorf("stats diverge after disk round trip:\nstreamed: %+v\nreplayed: %+v", wantStats, gotStats)
				}
				if wantOut.String() != gotOut.String() {
					t.Errorf("outcome diverges: streamed=%s replayed=%s", wantOut, gotOut)
				}
			})
		}
	}
}

// TestDiskCacheDetectedCellsNotStored pins the only-clean-cells invariant at
// the store boundary: a detected or failed result never reaches the result
// store.
func TestDiskCacheDetectedCellsNotStored(t *testing.T) {
	t.Parallel()
	pc := openDisk(t, t.TempDir(), persist.Options{})
	id := persist.SumID("detected")
	res := &RunResult{
		Stats:   &cpu.Stats{Cycles: 1, LSQViolation: true},
		Outcome: world.Outcome{Checksum: 1},
	}
	storeResult(pc, id, res)
	if c := pc.Counters(); c.Stores != 0 {
		t.Errorf("detected cell was stored: %+v", c)
	}
	if _, err := pc.LoadResult(id); err == nil {
		t.Errorf("detected cell is loadable")
	}
}
