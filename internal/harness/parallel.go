package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"rest/internal/obs"
	"rest/internal/sim"
	"rest/internal/workload"
)

// The parallel sweep engine. Every cell of the workload × config grid is an
// independent simulation: world.Build assembles a fully self-contained World
// (its own memory, allocator, token register with a per-world seeded RNG,
// cache hierarchy, predictor and core), so cells can run concurrently with
// no shared mutable state. The engine guarantees that the resulting Matrix
// is byte-identical to a sequential RunMatrix at any worker count — cells
// are deterministic functions of (workload, config, scale), and results are
// assembled in grid order regardless of completion order. The determinism
// differential tests pin this guarantee.

// ParallelOptions configures RunMatrixParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size. Zero or negative selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// FailFast cancels the cells not yet started as soon as one cell
	// fails. Off by default: every cell runs and all failures are
	// aggregated into one MatrixError.
	FailFast bool
	// CellTimeout is each cell's wall-clock watchdog (0 = none). A cell
	// that exceeds it fails with a *sim.BudgetExceededError and becomes an
	// annotated hole; its siblings keep running.
	CellTimeout time.Duration
	// CellInstrBudget caps each cell's simulated user instructions
	// (0 = the simulator's own runaway cap).
	CellInstrBudget uint64
	// Metrics gives every cell a private obs.Registry and merges them in
	// grid order into Matrix.Obs after assembly (with the harness.* sweep
	// counters added). The aggregate is byte-identical at any worker count.
	Metrics bool
	// NeedWorld declares that the caller reads RunResult.World from the
	// assembled matrix (the micro-stats tables do). It keeps those cells off
	// the persistent result store, which carries stats but no live world.
	NeedWorld bool
	// Engine selects every cell's functional-simulator engine (see
	// CellLimits.Engine). The default sim.EngineAuto resolves to the
	// decoded-block engine; the engine differential tests sweep both and
	// assert byte-identical matrices.
	Engine sim.Engine
	// TraceCache, when non-nil, deduplicates functional execution across the
	// grid: the sweep plans its cells into the cache up front, each shared
	// functional identity is captured once, and its sibling cells replay the
	// capture through their own timing models. Results stay byte-identical
	// to an uncached sweep (harness.trace_cache.* counters aside); the
	// replay differential tests pin that. One cache may be shared by
	// several sweeps.
	TraceCache *TraceCache
	// OnCell, when non-nil, receives one CellEvent per grid cell as it
	// finishes (or is skipped). Events arrive in completion order and may be
	// delivered concurrently from multiple workers; the callback must be
	// safe for concurrent use. The trace/progress/telemetry surfaces hang
	// off this stream — it reports wall-clock facts, which are explicitly
	// NOT part of the determinism contract.
	OnCell func(CellEvent)
	// Now is the event-stream clock (nil = time.Now). Injected by tests so
	// CellEvent timestamps are deterministic; the simulation itself never
	// reads it.
	Now func() time.Time
	// Shard restricts the sweep to the grid cells one shard of a distributed
	// run owns (the zero value runs the full grid). The returned Matrix
	// contains only the owned cells; reassembling the full grid is a warm
	// re-run of the unsharded sweep over the shared persistent cache (every
	// computed cell is a result-store hit, anything a killed shard left
	// behind is recomputed), which is what keeps merged reports byte-identical
	// to a single-process run at any shard count.
	Shard Shard
	// OnPlan, when non-nil, is called once before any cell runs with the
	// number of grid cells this process will execute and the full grid size.
	// Only the planner knows the owned count exactly — the shard partition
	// unit is the functional identity, not the cell (see Shard) — so this is
	// where progress meters and "shard i/n owns X of Y cells" notes get
	// their totals. Called from the sweep goroutine before workers start.
	// Elastic sweeps never call it: what this process will run is decided by
	// the pool, one claim at a time (OnElastic reports the tally instead).
	OnPlan func(owned, total int)
	// Elastic switches the sweep from the static Shard partition to the
	// work-stealing pool (elastic.go): units are claimed via leases on the
	// shared store's lock plane, completions are recorded as markers, and
	// the sweep exits when the whole grid has drained — across every worker,
	// not just this one. Requires a TraceCache with an attached persistent
	// store; mutually exclusive with Shard.
	Elastic bool
	// OnElastic, when non-nil, receives this worker's pool participation
	// tally once the elastic sweep drains. Ignored unless Elastic is set.
	OnElastic func(ElasticStats)
}

// CellEvent is one cell's lifecycle report for the observability stream:
// which worker ran which grid cell, over which wall-clock window, and what
// came of it.
type CellEvent struct {
	// Worker is the worker-pool slot (0-based) that processed the cell.
	Worker int
	// Index is the cell's grid-order position; Total is the grid size.
	Index, Total int
	Workload     string
	Config       string
	// Start and End bound the cell's execution wall-clock window. For a
	// skipped cell they are the moment the skip was decided.
	Start, End time.Time
	// Err is the cell's failure (nil on success); Skipped marks a cell never
	// started because the sweep was cancelled.
	Err     error
	Skipped bool
	// Instrs and Cycles summarize a successful cell (zero otherwise).
	Instrs, Cycles uint64
	// Source tags where a successful cell's result came from: "stream"
	// (live execution), "capture" (live execution recording a shared
	// trace), "replay" (in-memory trace cache), "disk-replay" (persistent
	// trace store) or "result-store" (memoized cell outcome). Empty for
	// failed or skipped cells. Like the timestamps, it reflects wall-clock
	// scheduling and cache warmth, not the determinism contract.
	Source string
	// Obs is the cell's private metric registry (nil unless the sweep ran
	// with Metrics). It is delivered after the cell has finished writing
	// it; receivers must treat it as read-only.
	Obs *obs.Registry
}

// EffectiveWorkers resolves the worker-pool size actually used.
func (o ParallelOptions) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CellError is the failure of one grid cell, tagged with its coordinates so
// aggregated reports stay attributable.
type CellError struct {
	Workload string
	Config   string
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s/%s: %v", e.Workload, e.Config, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// PanicError is a panic captured inside one sweep cell, converted into an
// ordinary error so a crashing cell becomes an annotated hole instead of
// taking the whole sweep process down. Stack is the panicking goroutine's
// stack trace at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements the error interface; the message carries the full stack
// so the failure stays diagnosable after aggregation.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// runCell executes one cell with panic containment: a panic anywhere under
// Run (workload builder, world assembly, simulation, timing model) comes
// back as a *PanicError instead of unwinding the worker goroutine.
func runCell(wl workload.Workload, cfg BinaryConfig, scale int64, lim CellLimits, tc *TraceCache) (res *RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return RunCached(wl, cfg, scale, lim, tc)
}

// holeReason compresses a cell error into the one-line annotation renderers
// attach to the hole (the full error, stack included, stays in MatrixError).
func holeReason(err error) string {
	var bud *sim.BudgetExceededError
	if errors.As(err, &bud) {
		return fmt.Sprintf("watchdog: %s budget exceeded (%s)", bud.Resource, bud.Limit)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("panic: %v", pe.Value)
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return msg
}

// MatrixError aggregates every failed cell of a sweep. Cells appear in grid
// order (workload-major), not completion order, so the message is
// deterministic at any worker count.
type MatrixError struct {
	Cells []*CellError
	// Skipped counts cells never started because the sweep was cancelled
	// (FailFast or an external context cancellation).
	Skipped int
}

func (e *MatrixError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %d of the sweep's cells failed", len(e.Cells))
	if e.Skipped > 0 {
		fmt.Fprintf(&b, " (%d skipped after cancellation)", e.Skipped)
	}
	for _, c := range e.Cells {
		b.WriteString("\n  ")
		b.WriteString(c.Error())
	}
	return b.String()
}

// Unwrap exposes the per-cell errors to errors.Is/As.
func (e *MatrixError) Unwrap() []error {
	out := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		out[i] = c
	}
	return out
}

// cellOutcome is one worker's report for one grid cell.
type cellOutcome struct {
	res     *RunResult
	err     error
	skipped bool
}

// RunMatrixParallel sweeps the workloads × configs grid on a worker pool.
// It is the parallel equivalent of RunMatrix and produces bit-identical
// cycle matrices at any worker count (each cell is a deterministic,
// self-contained simulation; collection order is fixed to grid order).
//
// Unlike RunMatrix, it does not stop at the first failure: every cell runs
// and all failures come back as one *MatrixError, alongside the partial
// Matrix holding the cells that did complete. With opt.FailFast (or when
// ctx is cancelled) the cells not yet started are skipped and counted in
// MatrixError.Skipped.
//
// The sweep is crash-contained and watchdogged: a cell that panics is
// recovered into a *PanicError (stack trace attached) without disturbing
// its sibling workers, and a cell that exceeds opt.CellTimeout or
// opt.CellInstrBudget fails with a *sim.BudgetExceededError. Either way the
// cell becomes an annotated hole in the partial Matrix (Matrix.Holes) and
// one entry of the grid-ordered MatrixError.
func RunMatrixParallel(ctx context.Context, wls []workload.Workload, cfgs []BinaryConfig, scale int64, opt ParallelOptions) (*Matrix, error) {
	if opt.Elastic {
		return runMatrixElastic(ctx, wls, cfgs, scale, opt)
	}
	type cell struct {
		wl  workload.Workload
		cfg BinaryConfig
	}
	gridTotal := len(wls) * len(cfgs)
	owned := opt.Shard.ownership(wls, cfgs, scale, opt.CellInstrBudget)
	cells := make([]cell, 0, gridTotal)
	idx := 0
	for _, wl := range wls {
		for _, cfg := range cfgs {
			if owned[idx] {
				cells = append(cells, cell{wl, cfg})
			}
			idx++
		}
	}
	if opt.OnPlan != nil {
		opt.OnPlan(len(cells), gridTotal)
	}
	if opt.TraceCache != nil {
		// Register the grid before any cell runs, so capture/replay/bypass
		// roles are a function of the grid alone, not of scheduling. A shard
		// plans only its own cells (see PlanShard).
		opt.TraceCache.PlanShard(wls, cfgs, scale, opt.CellInstrBudget, opt.Shard)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	now := opt.Now
	if now == nil {
		now = time.Now
	}
	outcomes := make([]cellOutcome, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opt.EffectiveWorkers()
	if workers > len(cells) && len(cells) > 0 {
		workers = len(cells)
	}
	emit := func(worker, i int, start, end time.Time, o cellOutcome) {
		if opt.OnCell == nil {
			return
		}
		ev := CellEvent{
			Worker: worker, Index: i, Total: len(cells),
			Workload: cells[i].wl.Name, Config: cells[i].cfg.Name,
			Start: start, End: end,
			Err: o.err, Skipped: o.skipped,
		}
		if o.res != nil {
			ev.Cycles = o.res.Cycles
			ev.Source = o.res.Source
			ev.Obs = o.res.Obs
			if o.res.Stats != nil {
				ev.Instrs = o.res.Stats.Instructions
			}
		}
		opt.OnCell(ev)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			skip := func(i int) {
				outcomes[i].skipped = true
				if opt.TraceCache != nil {
					// Release the skipped cell's planned use so the cache's
					// refcounts still drain to zero.
					opt.TraceCache.forfeit(cellTraceKey(
						cells[i].wl.Name, cells[i].cfg, scale, opt.CellInstrBudget))
				}
				at := now()
				emit(worker, i, at, at, outcomes[i])
			}
			for i := range jobs {
				// Each worker writes only its own slot; no locking needed.
				if cctx.Err() != nil {
					skip(i)
					continue
				}
				// Per-cell watchdog: the explicit cell timeout, tightened by
				// whatever remains of the caller context's deadline.
				lim := CellLimits{
					MaxInstructions: opt.CellInstrBudget,
					Timeout:         opt.CellTimeout,
					Metrics:         opt.Metrics,
					NeedWorld:       opt.NeedWorld,
					Engine:          opt.Engine,
				}
				if dl, ok := cctx.Deadline(); ok {
					rem := time.Until(dl)
					if rem <= 0 {
						skip(i)
						continue
					}
					if lim.Timeout == 0 || rem < lim.Timeout {
						lim.Timeout = rem
					}
				}
				start := now()
				r, err := runCell(cells[i].wl, cells[i].cfg, scale, lim, opt.TraceCache)
				outcomes[i] = cellOutcome{res: r, err: err}
				emit(worker, i, start, now(), outcomes[i])
				if err != nil && opt.FailFast {
					cancel()
				}
			}
		}(w)
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Assemble in grid order so the Matrix (and any aggregated error) is
	// identical no matter which worker finished first.
	m := &Matrix{
		Cycles:  make(map[string]map[string]uint64),
		Results: make(map[string]map[string]*RunResult),
	}
	for _, c := range cfgs {
		m.Configs = append(m.Configs, c.Name)
	}
	merr := &MatrixError{}
	for i, c := range cells {
		if _, ok := m.Cycles[c.wl.Name]; !ok {
			m.Workloads = append(m.Workloads, c.wl.Name)
			m.Cycles[c.wl.Name] = make(map[string]uint64)
			m.Results[c.wl.Name] = make(map[string]*RunResult)
		}
		switch o := outcomes[i]; {
		case o.skipped:
			merr.Skipped++
			m.AddHole(c.wl.Name, c.cfg.Name, "skipped (sweep cancelled)")
		case o.err != nil:
			merr.Cells = append(merr.Cells, &CellError{
				Workload: c.wl.Name, Config: c.cfg.Name, Err: o.err,
			})
			m.AddHole(c.wl.Name, c.cfg.Name, holeReason(o.err))
		default:
			m.Cycles[c.wl.Name][c.cfg.Name] = o.res.Cycles
			m.Results[c.wl.Name][c.cfg.Name] = o.res
		}
	}
	if opt.Metrics {
		// Grid-order merge of the per-cell registries; merge errors are
		// impossible by construction (every cell registers identical
		// histogram bounds) but surfaced rather than swallowed.
		if err := m.aggregateObs(); err != nil {
			merr.Cells = append(merr.Cells, &CellError{Err: err})
		}
		if opt.TraceCache != nil {
			opt.TraceCache.recordObs(m.Obs)
		}
		if opt.Shard.Enabled() && m.Obs != nil {
			// Shard identity and coverage, so a distributed sweep's metric
			// stream says which slice of which grid this process ran.
			m.Obs.Counter("harness.shard.index").Add(uint64(opt.Shard.Index))
			m.Obs.Counter("harness.shard.count").Add(uint64(opt.Shard.Count))
			m.Obs.Counter("harness.shard.cells").Add(uint64(len(cells)))
			m.Obs.Counter("harness.shard.cells_total").Add(uint64(gridTotal))
		}
	}
	if len(merr.Cells) > 0 || merr.Skipped > 0 {
		return m, merr
	}
	return m, nil
}
