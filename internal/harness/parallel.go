package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"rest/internal/workload"
)

// The parallel sweep engine. Every cell of the workload × config grid is an
// independent simulation: world.Build assembles a fully self-contained World
// (its own memory, allocator, token register with a per-world seeded RNG,
// cache hierarchy, predictor and core), so cells can run concurrently with
// no shared mutable state. The engine guarantees that the resulting Matrix
// is byte-identical to a sequential RunMatrix at any worker count — cells
// are deterministic functions of (workload, config, scale), and results are
// assembled in grid order regardless of completion order. The determinism
// differential tests pin this guarantee.

// ParallelOptions configures RunMatrixParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size. Zero or negative selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// FailFast cancels the cells not yet started as soon as one cell
	// fails. Off by default: every cell runs and all failures are
	// aggregated into one MatrixError.
	FailFast bool
}

// EffectiveWorkers resolves the worker-pool size actually used.
func (o ParallelOptions) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CellError is the failure of one grid cell, tagged with its coordinates so
// aggregated reports stay attributable.
type CellError struct {
	Workload string
	Config   string
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s/%s: %v", e.Workload, e.Config, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// MatrixError aggregates every failed cell of a sweep. Cells appear in grid
// order (workload-major), not completion order, so the message is
// deterministic at any worker count.
type MatrixError struct {
	Cells []*CellError
	// Skipped counts cells never started because the sweep was cancelled
	// (FailFast or an external context cancellation).
	Skipped int
}

func (e *MatrixError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %d of the sweep's cells failed", len(e.Cells))
	if e.Skipped > 0 {
		fmt.Fprintf(&b, " (%d skipped after cancellation)", e.Skipped)
	}
	for _, c := range e.Cells {
		b.WriteString("\n  ")
		b.WriteString(c.Error())
	}
	return b.String()
}

// Unwrap exposes the per-cell errors to errors.Is/As.
func (e *MatrixError) Unwrap() []error {
	out := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		out[i] = c
	}
	return out
}

// cellOutcome is one worker's report for one grid cell.
type cellOutcome struct {
	res     *RunResult
	err     error
	skipped bool
}

// RunMatrixParallel sweeps the workloads × configs grid on a worker pool.
// It is the parallel equivalent of RunMatrix and produces bit-identical
// cycle matrices at any worker count (each cell is a deterministic,
// self-contained simulation; collection order is fixed to grid order).
//
// Unlike RunMatrix, it does not stop at the first failure: every cell runs
// and all failures come back as one *MatrixError, alongside the partial
// Matrix holding the cells that did complete. With opt.FailFast (or when
// ctx is cancelled) the cells not yet started are skipped and counted in
// MatrixError.Skipped.
func RunMatrixParallel(ctx context.Context, wls []workload.Workload, cfgs []BinaryConfig, scale int64, opt ParallelOptions) (*Matrix, error) {
	type cell struct {
		wl  workload.Workload
		cfg BinaryConfig
	}
	cells := make([]cell, 0, len(wls)*len(cfgs))
	for _, wl := range wls {
		for _, cfg := range cfgs {
			cells = append(cells, cell{wl, cfg})
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make([]cellOutcome, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opt.EffectiveWorkers()
	if workers > len(cells) && len(cells) > 0 {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Each worker writes only its own slot; no locking needed.
				if cctx.Err() != nil {
					outcomes[i].skipped = true
					continue
				}
				r, err := Run(cells[i].wl, cells[i].cfg, scale)
				outcomes[i] = cellOutcome{res: r, err: err}
				if err != nil && opt.FailFast {
					cancel()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Assemble in grid order so the Matrix (and any aggregated error) is
	// identical no matter which worker finished first.
	m := &Matrix{
		Cycles:  make(map[string]map[string]uint64),
		Results: make(map[string]map[string]*RunResult),
	}
	for _, c := range cfgs {
		m.Configs = append(m.Configs, c.Name)
	}
	merr := &MatrixError{}
	for i, c := range cells {
		if _, ok := m.Cycles[c.wl.Name]; !ok {
			m.Workloads = append(m.Workloads, c.wl.Name)
			m.Cycles[c.wl.Name] = make(map[string]uint64)
			m.Results[c.wl.Name] = make(map[string]*RunResult)
		}
		switch o := outcomes[i]; {
		case o.skipped:
			merr.Skipped++
		case o.err != nil:
			merr.Cells = append(merr.Cells, &CellError{
				Workload: c.wl.Name, Config: c.cfg.Name, Err: o.err,
			})
		default:
			m.Cycles[c.wl.Name][c.cfg.Name] = o.res.Cycles
			m.Results[c.wl.Name][c.cfg.Name] = o.res
		}
	}
	if len(merr.Cells) > 0 || merr.Skipped > 0 {
		return m, merr
	}
	return m, nil
}
