package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"rest/internal/attack"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// The replay differential: a cell run by replaying a captured trace through
// its timing model must be indistinguishable from the cell run by streaming
// the functional simulator — identical cpu.Stats, identical Outcome,
// byte-identical sweep reports. These tests are the correctness gate for the
// trace cache; every comparison is exact, never approximate.

// assertCellEqual compares a replayed cell against its streamed reference.
func assertCellEqual(t *testing.T, streamed, replayed *RunResult) {
	t.Helper()
	if streamed.Cycles != replayed.Cycles {
		t.Errorf("cycles diverge: streamed=%d replayed=%d", streamed.Cycles, replayed.Cycles)
	}
	if !reflect.DeepEqual(streamed.Stats, replayed.Stats) {
		t.Errorf("stats diverge:\nstreamed: %+v\nreplayed: %+v", streamed.Stats, replayed.Stats)
	}
	if streamed.Outcome.Checksum != replayed.Outcome.Checksum {
		t.Errorf("checksum diverges: streamed=%#x replayed=%#x",
			streamed.Outcome.Checksum, replayed.Outcome.Checksum)
	}
	if (streamed.Outcome.Exception == nil) != (replayed.Outcome.Exception == nil) ||
		(streamed.Outcome.Violation == nil) != (replayed.Outcome.Violation == nil) ||
		(streamed.Outcome.Err == nil) != (replayed.Outcome.Err == nil) {
		t.Errorf("outcome shape diverges: streamed=%s replayed=%s",
			streamed.Outcome, replayed.Outcome)
	}
	switch {
	case streamed.Obs == nil && replayed.Obs == nil:
	case streamed.Obs == nil || replayed.Obs == nil:
		t.Errorf("metrics presence diverges")
	case !reflect.DeepEqual(streamed.Obs.Snapshot(), replayed.Obs.Snapshot()):
		t.Errorf("metrics diverge:\nstreamed: %+v\nreplayed: %+v",
			streamed.Obs.Snapshot(), replayed.Obs.Snapshot())
	}
}

// replayMatrixConfigs is every Figure 7 + Figure 8 bar: the full BinaryConfig
// matrix the tentpole's acceptance criterion names.
func replayMatrixConfigs() []BinaryConfig {
	return append(Fig7Configs(), Fig8Configs()...)
}

// TestReplayDifferentialMatrix runs every (workload, config) cell of the full
// matrix twice through a two-use trace cache — once as the capturing leader,
// once as a replaying sibling — and compares both against an uncached
// streamed run, metrics included. Under -short or the race detector a
// three-workload subset runs.
func TestReplayDifferentialMatrix(t *testing.T) {
	t.Parallel()
	wls := workload.All()
	if testing.Short() || raceEnabled {
		wls = subset(t, "lbm", "xalanc", "hmmer")
	}
	cfgs := replayMatrixConfigs()
	for _, wl := range wls {
		for _, cfg := range cfgs {
			wl, cfg := wl, cfg
			t.Run(wl.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				lim := CellLimits{Metrics: true}
				tc := NewTraceCache()
				one := []workload.Workload{wl}
				pair := []BinaryConfig{cfg}
				tc.Plan(one, pair, 1, 0)
				tc.Plan(one, pair, 1, 0)
				captured, err := RunCached(wl, cfg, 1, lim, tc)
				if err != nil {
					t.Fatalf("capture run: %v", err)
				}
				replayed, err := RunCached(wl, cfg, 1, lim, tc)
				if err != nil {
					t.Fatalf("replay run: %v", err)
				}
				if hits, misses, _ := tc.Counters(); hits != 1 || misses != 1 {
					t.Fatalf("cache roles wrong: hits=%d misses=%d (want 1 capture + 1 replay)", hits, misses)
				}
				streamed, err := RunLimited(wl, cfg, 1, lim)
				if err != nil {
					t.Fatalf("streamed run: %v", err)
				}
				assertCellEqual(t, streamed, captured)
				assertCellEqual(t, streamed, replayed)
			})
		}
	}
}

// TestReplayCrossTimingDifferential is the sweep the cache exists for: the
// Figure 8 sensitivity grid, where one captured stream is replayed under
// different CPU configs, cache hierarchies and the in-order core. Every
// replayed cell must equal its own streamed run bit-for-bit even though its
// timing model differs from the capturing cell's.
func TestReplayCrossTimingDifferential(t *testing.T) {
	t.Parallel()
	wls := workload.All()
	if testing.Short() || raceEnabled {
		wls = subset(t, "lbm", "sjeng", "soplex")
	}
	cfgs := Fig8SensitivityConfigs()
	for _, wl := range wls {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			tc := NewTraceCache()
			one := []workload.Workload{wl}
			tc.Plan(one, cfgs, 1, 0)
			for _, cfg := range cfgs {
				cached, err := RunCached(wl, cfg, 1, CellLimits{}, tc)
				if err != nil {
					t.Fatalf("%s cached: %v", cfg.Name, err)
				}
				streamed, err := RunLimited(wl, cfg, 1, CellLimits{})
				if err != nil {
					t.Fatalf("%s streamed: %v", cfg.Name, err)
				}
				assertCellEqual(t, streamed, cached)
			}
			hits, misses, bypass := tc.Counters()
			wantHits := uint64(len(cfgs) - 2)
			if misses != 2 || hits != wantHits || bypass != 0 {
				t.Errorf("sharing plan wrong: hits=%d misses=%d bypass=%d (want 2 captures, %d replays)",
					hits, misses, bypass, wantHits)
			}
		})
	}
}

// TestReplayAttackSuite captures each §V attack's trace — these runs end in
// exceptions and violations, the traces the batch-lookahead token shadow must
// get right to the last entry — and replays it through an identically
// configured timing model, asserting identical stats and outcome.
func TestReplayAttackSuite(t *testing.T) {
	t.Parallel()
	cfgs := []BinaryConfig{
		{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure},
		{Name: "debug-full", Pass: prog.RESTFull(64), Mode: core.Debug},
		{Name: "secure-heap", Pass: prog.RESTHeap(64), Mode: core.Secure},
		{Name: "asan", Pass: prog.ASanFull()},
	}
	for _, a := range attack.All() {
		for _, cfg := range cfgs {
			a, cfg := a, cfg
			t.Run(a.Name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				spec := world.Spec{
					Pass:  cfg.Pass,
					Mode:  cfg.Mode,
					Width: core.Width(cfg.Pass.TokenWidth),
				}
				w, err := world.Build(spec, a.Build)
				if err != nil {
					t.Fatalf("world.Build: %v", err)
				}
				rec := trace.NewRecorder(captureTokenWidth(cfg.Pass), 0)
				wantStats, wantOut := w.RunTimedCapture(rec)

				rp := rec.Replayer()
				var tokens cache.TokenSource
				if rec.TokenWidth() != 0 {
					tokens = rp
				}
				rw, err := world.BuildReplay(spec, tokens)
				if err != nil {
					t.Fatalf("world.BuildReplay: %v", err)
				}
				gotStats, gotOut := rw.ReplayTimed(rp, wantOut)
				if !reflect.DeepEqual(wantStats, gotStats) {
					t.Errorf("stats diverge:\nstreamed: %+v\nreplayed: %+v", wantStats, gotStats)
				}
				if wantOut.String() != gotOut.String() {
					t.Errorf("outcome diverges: streamed=%s replayed=%s", wantOut, gotOut)
				}
				if wantOut.Exception != nil {
					we, ge := wantOut.Exception, gotOut.Exception
					if ge == nil || we.Kind != ge.Kind || we.Addr != ge.Addr || we.PC != ge.PC ||
						we.Precise != ge.Precise || we.DetectLagCycles != ge.DetectLagCycles {
						t.Errorf("exception diverges: streamed=%+v replayed=%+v", we, ge)
					}
				}
			})
		}
	}
}

// TestSweepDeterminismWithTraceCache pins the tentpole's report contract:
// the sensitivity sweep renders byte-identical tables, CSVs and metrics at
// any worker count with the cache on, and identical tables/CSVs with it off
// (cache counters aside, which only exist on the cached run).
func TestSweepDeterminismWithTraceCache(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "sjeng", "xalanc")
	cfgs := Fig8SensitivityConfigs()
	ctx := context.Background()

	type rendering struct {
		table, csv, metrics string
	}
	render := func(tcache *TraceCache, workers int) rendering {
		t.Helper()
		opt := ParallelOptions{Workers: workers, Metrics: true, TraceCache: tcache}
		m, err := RunMatrixParallel(ctx, wls, cfgs, 1, opt)
		if err != nil {
			t.Fatalf("sweep (workers=%d cache=%v): %v", workers, tcache != nil, err)
		}
		return rendering{
			table:   m.RenderOverheadTable("sensitivity"),
			csv:     m.CSV(),
			metrics: m.Metrics("fig8sens").CSV(),
		}
	}

	cachedJ1 := render(NewTraceCache(), 1)
	cachedJ4 := render(NewTraceCache(), 4)
	uncached := render(nil, 4)

	if cachedJ1 != cachedJ4 {
		t.Errorf("cached sweep not byte-identical across -j:\nj=1: %s\nj=4: %s", cachedJ1.table, cachedJ4.table)
	}
	if cachedJ4.table != uncached.table || cachedJ4.csv != uncached.csv {
		t.Errorf("cache on/off tables diverge:\non:  %s\noff: %s", cachedJ4.table, uncached.table)
	}
	strip := func(csv string) string {
		var keep []string
		for _, line := range strings.Split(csv, "\n") {
			if !strings.Contains(line, "harness.trace_cache.") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(cachedJ4.metrics) != strip(uncached.metrics) {
		t.Errorf("cache on/off metrics diverge beyond the trace_cache counters")
	}
	if strip(cachedJ4.metrics) == cachedJ4.metrics {
		t.Errorf("cached sweep exported no harness.trace_cache.* counters")
	}
}

// TestTraceCacheSkippedCellsDrain pins the refcount contract under
// cancellation: a cancelled sweep forfeits its skipped cells, so the cache
// drains back to empty instead of pinning captured traces forever.
func TestTraceCacheSkippedCellsDrain(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "sjeng", "xalanc")
	cfgs := Fig8SensitivityConfigs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every cell is skipped before it starts
	tc := NewTraceCache()
	_, err := RunMatrixParallel(ctx, wls, cfgs, 1, ParallelOptions{Workers: 2, TraceCache: tc})
	if err == nil {
		t.Fatalf("cancelled sweep reported success")
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.plan) != 0 || len(tc.entries) != 0 {
		t.Errorf("cache did not drain: %d planned keys, %d entries", len(tc.plan), len(tc.entries))
	}
}
