package harness

import (
	"encoding/json"
	"fmt"
)

// JSONReport is the machine-readable form of an experiment matrix. Holes
// lists the cells with no result (failed/timed out/skipped) with their
// reasons; consumers must treat a missing cycles entry as a gap, never as a
// zero, and the means only cover the complete rows.
type JSONReport struct {
	Title      string                        `json:"title"`
	Scale      int64                         `json:"scale"`
	Cycles     map[string]map[string]uint64  `json:"cycles"`
	OverheadPc map[string]map[string]float64 `json:"overhead_percent"`
	WtdMeanPc  map[string]float64            `json:"weighted_mean_percent"`
	GeoMeanPc  map[string]float64            `json:"geo_mean_percent"`
	Holes      map[string]map[string]string  `json:"holes,omitempty"`
}

// JSON renders the matrix as a machine-readable report.
func (m *Matrix) JSON(title string, scale int64) ([]byte, error) {
	rep := JSONReport{
		Title:      title,
		Scale:      scale,
		Cycles:     m.Cycles,
		OverheadPc: make(map[string]map[string]float64),
		WtdMeanPc:  make(map[string]float64),
		GeoMeanPc:  make(map[string]float64),
		Holes:      m.Holes,
	}
	for _, wl := range m.Workloads {
		rep.OverheadPc[wl] = make(map[string]float64)
		for _, c := range m.Configs {
			if c == "plain" || !m.complete(wl, c) {
				continue
			}
			rep.OverheadPc[wl][c] = m.Overhead(wl, c)
		}
	}
	for _, c := range m.Configs {
		if c == "plain" {
			continue
		}
		rep.WtdMeanPc[c] = m.WtdAriMeanOverhead(c)
		rep.GeoMeanPc[c] = m.GeoMeanOverhead(c)
	}
	return json.MarshalIndent(rep, "", "  ")
}

// JSON renders the Figure 3 breakdown as machine-readable output. A
// workload without a computable breakdown is emitted with a "hole" reason
// and no component figures.
func (r *Fig3Result) JSON() ([]byte, error) {
	type row struct {
		Benchmark  string             `json:"benchmark"`
		Components map[string]float64 `json:"components_percent,omitempty"`
		Total      float64            `json:"total_percent"`
		Hole       string             `json:"hole,omitempty"`
	}
	rows := make([]row, 0, len(r.Workloads))
	for _, wl := range r.Workloads {
		if reason, ok := r.Holes[wl]; ok {
			rows = append(rows, row{Benchmark: wl, Hole: reason})
			continue
		}
		comp := make(map[string]float64, len(Fig3Components))
		for i, c := range Fig3Components {
			comp[c] = r.Breakdown[wl][i]
		}
		rows = append(rows, row{Benchmark: wl, Components: comp, Total: r.Total[wl]})
	}
	return json.MarshalIndent(rows, "", "  ")
}

// Summary returns a one-line headline for a Figure 7 matrix, in the shape
// the paper's abstract quotes ("the overhead of heap and stack safety is 2%
// compared to 40% for AddressSanitizer").
func (m *Matrix) Summary() string {
	return fmt.Sprintf("REST secure full %.1f%% vs ASan %.1f%% (debug %.1f%%, perfect-hw gap %.1f pts)",
		m.WtdAriMeanOverhead("secure-full"),
		m.WtdAriMeanOverhead("asan"),
		m.WtdAriMeanOverhead("debug-full"),
		m.WtdAriMeanOverhead("secure-full")-m.WtdAriMeanOverhead("perfecthw-full"))
}
