package harness

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rest/internal/obs"
)

// findMetric pulls one metric from a snapshot by name.
func findMetric(t *testing.T, ms []obs.Metric, name string) obs.Metric {
	t.Helper()
	for _, m := range ms {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %q not in snapshot (%d metrics)", name, len(ms))
	return obs.Metric{}
}

// TestMetricsDeterminism extends the sweep determinism contract to the
// observability plane: the aggregated metrics report — every counter, gauge
// and histogram of every layer, cell-level and sweep-level — must be
// byte-identical between the sequential reference and the parallel engine at
// j=1 and j=4.
func TestMetricsDeterminism(t *testing.T) {
	t.Parallel()
	cfgs := Fig7Configs()
	wls := subset(t, "lbm", "xalanc")
	seq, err := RunMatrixObserved(wls, cfgs, 1)
	if err != nil {
		t.Fatalf("sequential observed reference: %v", err)
	}
	want := seq.Metrics("fig7").CSV()
	if !strings.Contains(want, "sim.user_instructions") ||
		!strings.Contains(want, "cpu.rob_occupancy") ||
		!strings.Contains(want, "cache.l1d.") ||
		!strings.Contains(want, "alloc.mallocs") ||
		!strings.Contains(want, "harness.cells_ok") {
		t.Fatalf("reference report is missing layers:\n%.2000s", want)
	}
	for _, j := range []int{1, 4} {
		j := j
		t.Run(fmt.Sprintf("j=%d", j), func(t *testing.T) {
			t.Parallel()
			par, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
				ParallelOptions{Workers: j, Metrics: true})
			if err != nil {
				t.Fatalf("parallel sweep: %v", err)
			}
			got := par.Metrics("fig7").CSV()
			if got != want {
				t.Errorf("metrics CSV differs from sequential reference:\n--- sequential ---\n%.3000s\n--- parallel j=%d ---\n%.3000s", want, j, got)
			}
			gotJSON, err := par.Metrics("fig7").JSON()
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := seq.Metrics("fig7").JSON()
			if err != nil {
				t.Fatal(err)
			}
			if gotJSON != wantJSON {
				t.Errorf("metrics JSON differs from sequential reference at j=%d", j)
			}
		})
	}
}

// TestMetricsDisabledByDefault pins the nil fast path: a sweep without
// opt.Metrics collects nothing and Matrix.Metrics reports that as nil rather
// than an empty report.
func TestMetricsDisabledByDefault(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	m, err := RunMatrixParallel(context.Background(), wls, Fig7Configs(), 1, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Obs != nil {
		t.Error("Matrix.Obs non-nil without opt.Metrics")
	}
	if m.Metrics("fig7") != nil {
		t.Error("Metrics() non-nil without opt.Metrics")
	}
	if m.Results["lbm"]["plain"].Obs != nil {
		t.Error("cell registry allocated without opt.Metrics")
	}
}

// TestMetricsHolesAnnotated forces every cell into the watchdog (1-instruction
// budget) and checks the metric surfaces annotate the holes instead of
// rendering zeros: harness.* counters tally the watchdog trips and the CSV
// carries one hole row per cell with the reason.
func TestMetricsHolesAnnotated(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	cfgs := Fig7Configs()[:2] // plain + asan: two cells, both watchdogged
	m, err := RunMatrixParallel(context.Background(), wls, cfgs, 1,
		ParallelOptions{Workers: 2, Metrics: true, CellInstrBudget: 1})
	if err == nil {
		t.Fatal("expected MatrixError from 1-instruction budget")
	}
	if m.Obs == nil {
		t.Fatal("holes must not disable aggregation")
	}
	snap := m.Obs.Snapshot()
	if got := findMetric(t, snap, "harness.cells_hole").Value; got != 2 {
		t.Errorf("harness.cells_hole = %d, want 2", got)
	}
	if got := findMetric(t, snap, "harness.watchdog_trips").Value; got != 2 {
		t.Errorf("harness.watchdog_trips = %d, want 2", got)
	}
	if got := findMetric(t, snap, "harness.cells_ok").Value; got != 0 {
		t.Errorf("harness.cells_ok = %d, want 0", got)
	}
	rep := m.Metrics("fig7")
	if len(rep.Holes) != 2 || len(rep.Cells) != 0 {
		t.Fatalf("report: %d holes, %d cells; want 2, 0", len(rep.Holes), len(rep.Cells))
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "fig7,lbm,plain,hole,hole,reason,") ||
		!strings.Contains(csv, "watchdog") {
		t.Errorf("CSV lacks annotated hole rows:\n%s", csv)
	}
}

// TestCellEventsDriveCatapultTrace runs a sweep with the OnCell stream wired
// to an obs.Trace (exactly as cmd/restbench -trace does) and checks the
// resulting timeline is schema-valid Catapult JSON with one slice per cell.
func TestCellEventsDriveCatapultTrace(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm", "xalanc")
	cfgs := Fig7Configs()
	tr := obs.NewTrace()
	var mu sync.Mutex
	seen := 0
	_, err := RunMatrixParallel(context.Background(), wls, cfgs, 1, ParallelOptions{
		Workers: 4,
		OnCell: func(ev CellEvent) {
			mu.Lock()
			seen++
			mu.Unlock()
			if ev.Worker < 0 || ev.Worker >= 4 {
				t.Errorf("event worker %d out of pool range", ev.Worker)
			}
			if ev.Err == nil && !ev.Skipped && (ev.Instrs == 0 || ev.Cycles == 0) {
				t.Errorf("successful cell %s/%s has empty summary", ev.Workload, ev.Config)
			}
			tr.Slice(ev.Worker, ev.Workload+"/"+ev.Config, "cell", ev.Start, ev.End,
				map[string]any{"instrs": ev.Instrs, "cycles": ev.Cycles})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(wls) * len(cfgs); seen != want {
		t.Errorf("OnCell fired %d times, want %d", seen, want)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateCatapult(buf.Bytes()); err != nil {
		t.Errorf("sweep trace fails Catapult schema: %v\n%.2000s", err, buf.String())
	}
}

// TestFig3AndMicroMetricsPassThrough pins the report-level export surfaces.
func TestFig3AndMicroMetricsPassThrough(t *testing.T) {
	t.Parallel()
	wls := subset(t, "lbm")
	f3, err := RunFig3Parallel(context.Background(), wls, 1, ParallelOptions{Workers: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := f3.Metrics()
	if rep == nil || rep.Sweep != "fig3" || len(rep.Cells) == 0 {
		t.Fatalf("fig3 metrics report: %+v", rep)
	}
	ms, err := RunMicroStatsParallel(context.Background(), wls[0], 1, ParallelOptions{Workers: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	mrep := ms.Metrics()
	if mrep == nil || mrep.Sweep != "micro" || len(mrep.Cells) != 2 {
		t.Fatalf("micro metrics report: %+v", mrep)
	}
}
