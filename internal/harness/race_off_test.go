//go:build !race

package harness

// raceEnabled is false in ordinary test builds; see race_on_test.go.
const raceEnabled = false
