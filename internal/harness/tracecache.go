package harness

import (
	"sync"

	"rest/internal/core"
	"rest/internal/obs"
	"rest/internal/persist"
	"rest/internal/prog"
	"rest/internal/rt"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// The trace cache: execute once, time many.
//
// A sweep cell is a deterministic function of (workload, scale, pass config,
// mode, libc interception, instruction budget) — its functional identity —
// plus the timing knobs (CPU config, cache hierarchy, core choice). Cells
// sharing a functional identity produce byte-identical dynamic traces, so a
// sensitivity sweep that varies only timing knobs re-executes the same
// functional simulation N times for N timing points. The TraceCache removes
// that: the first cell of each shared identity captures its trace (and, when
// metrics are on, its functional-plane registry) while running normally; its
// siblings replay the capture through their own timing model via
// world.BuildReplay/ReplayTimed.
//
// Determinism contract: sweep reports stay byte-identical at any worker
// count and with the cache on or off. Three design points carry that:
//
//   - Replay is bit-exact (the trace.Replayer token shadow; pinned by the
//     replay differential tests), so a replayed cell's Stats/Outcome equal
//     its streamed run's.
//   - Sharing is planned, not discovered: Plan registers the whole grid
//     before any cell runs, so which cells capture, replay or bypass is a
//     function of the grid alone, never of scheduling order. Keys used only
//     once bypass the cache entirely and pay nothing.
//   - Only fully clean cells publish (no error, no detection): a cached
//     trace is therefore always complete, which is what makes replaying it
//     under a different timing configuration exact — the timing model is
//     free to stop pulling early, but nothing can be missing.
//
// Captures are single-flight: one leader per identity runs while its waiters
// block on the entry's done channel; a leader that fails (or whose trace
// tripped the per-trace byte limit) releases its waiters into ordinary
// streamed runs. Entries are refcounted by the plan and dropped at last use,
// so a sweep's peak trace memory is bounded by its live shared identities.
type TraceCache struct {
	mu            sync.Mutex
	perTraceLimit uint64
	plan          map[traceKey]int
	entries       map[traceKey]*traceEntry

	// disk is the optional persistent tier (see diskcache.go): a
	// cross-process trace + result store this in-memory cache consults
	// before executing and feeds after capturing. Nil = process-local only.
	disk *persist.Cache

	hits, misses, bypass uint64
	failed, rejected     uint64
	fallbackStreams      uint64
	bytes                uint64
}

// DefaultTraceLimitBytes bounds one captured trace's column storage (64 MiB
// holds about 2.1M entries at 31 bytes each); a capture that would exceed it
// is rejected and its waiters stream instead, trading speed for bounded
// memory.
const DefaultTraceLimitBytes = 64 << 20

// NewTraceCache returns an empty cache with the default per-trace limit.
func NewTraceCache() *TraceCache {
	return &TraceCache{
		perTraceLimit: DefaultTraceLimitBytes,
		plan:          make(map[traceKey]int),
		entries:       make(map[traceKey]*traceEntry),
	}
}

// SetTraceLimit overrides the per-trace byte limit (0 = unlimited).
func (tc *TraceCache) SetTraceLimit(bytes uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.perTraceLimit = bytes
}

// traceKey is a cell's functional identity. Timing knobs (CPU, Hier,
// InOrder) are deliberately absent: cells differing only in them share one
// dynamic trace. The pass config is stored normalized so defaulted and
// explicit spellings of the same build compare equal.
type traceKey struct {
	workload  string
	scale     int64
	pass      prog.PassConfig
	mode      core.Mode
	intercept int8 // -1 flavour default, 0 forced off, 1 forced on
	budget    uint64
}

// cellTraceKey derives the functional identity of one grid cell.
func cellTraceKey(wl string, cfg BinaryConfig, scale int64, budget uint64) traceKey {
	k := traceKey{
		workload: wl,
		scale:    scale,
		pass:     cfg.Pass.Normalized(),
		mode:     cfg.Mode,
		budget:   budget,
	}
	switch {
	case cfg.InterceptLibc == nil:
		k.intercept = -1
	case *cfg.InterceptLibc:
		k.intercept = 1
	}
	return k
}

// captureTokenWidth is the token width the capture's replay shadow must
// track: the pass's width for REST builds, 0 (no shadow) otherwise.
func captureTokenWidth(p prog.PassConfig) uint64 {
	p = p.Normalized()
	if p.Flavour == rt.REST {
		return p.TokenWidth
	}
	return 0
}

// traceEntry is one shared functional identity's capture slot.
type traceEntry struct {
	done    chan struct{} // closed when the capture resolves either way
	closed  bool          // guarded by TraceCache.mu
	ok      bool          // immutable after done closes
	rec     *trace.Recorder
	outcome world.Outcome
	funcObs *obs.Registry // nil when the capture ran without metrics

	// refs counts waiters whose replay (or fallback) is still running;
	// detached is set once the plan has no further uses. Both guarded by
	// TraceCache.mu; together they decide when the capture's blocks can be
	// recycled (see releaseLocked).
	refs     int
	detached bool
}

// cacheRole is a cell's relationship to the cache.
type cacheRole int

const (
	roleBypass cacheRole = iota // unshared identity: stream, don't record
	roleLead                    // first cell of a shared identity: capture
	roleWait                    // sibling cell: wait for the capture, replay
)

// Plan registers an upcoming grid so the cache knows, before any cell runs,
// which functional identities are shared. Identities planned only once (the
// common case for Figure 7/8 grids, where every config differs functionally)
// bypass the cache entirely. Additive: concurrent or successive sweeps may
// plan onto one shared cache.
func (tc *TraceCache) Plan(wls []workload.Workload, cfgs []BinaryConfig, scale int64, budget uint64) {
	tc.PlanShard(wls, cfgs, scale, budget, Shard{})
}

// PlanShard is Plan restricted to the grid cells a shard owns. A sharded
// sweep must NOT plan the full grid: cells owned by other shards never run
// in this process, so planning them would install leads that no local cell
// executes — stranding local waiters on captures that will never happen here
// and leaking the plan's refcounts. Cross-process deduplication does not
// need the in-memory plan at all; it rides the persistent store's
// single-flight capture locks instead.
func (tc *TraceCache) PlanShard(wls []workload.Workload, cfgs []BinaryConfig, scale int64, budget uint64, shard Shard) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	owned := shard.ownership(wls, cfgs, scale, budget)
	i := 0
	for _, wl := range wls {
		for _, cfg := range cfgs {
			if owned[i] {
				tc.plan[cellTraceKey(wl.Name, cfg, scale, budget)]++
			}
			i++
		}
	}
}

// planUnit registers n upcoming uses of one functional identity. The
// elastic scheduler plans per-unit at claim time — it cannot plan the grid
// up front like PlanShard, because which units this process runs is decided
// by the pool, one claim at a time.
func (tc *TraceCache) planUnit(k traceKey, n int) {
	tc.mu.Lock()
	tc.plan[k] += n
	tc.mu.Unlock()
}

// diskStore returns the attached persistent tier (nil when none).
func (tc *TraceCache) diskStore() *persist.Cache {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.disk
}

// acquire resolves one planned cell's role. It decrements the cell's planned
// use count; the last user of an identity also drops its entry, bounding the
// cache's memory to the live shared identities.
func (tc *TraceCache) acquire(k traceKey) (*traceEntry, cacheRole) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	remaining := tc.plan[k]
	ent := tc.entries[k]
	if ent == nil {
		if remaining > 0 {
			tc.consumeLocked(k, remaining)
		}
		if remaining < 2 {
			tc.bypass++
			return nil, roleBypass
		}
		ent = &traceEntry{done: make(chan struct{})}
		tc.entries[k] = ent
		tc.misses++
		return ent, roleLead
	}
	ent.refs++
	tc.consumeLocked(k, remaining)
	return ent, roleWait
}

// consumeLocked decrements k's planned count and drops its entry at zero.
// The last consumer holds its own reference to the entry, so dropping the
// map slot only releases the cache's.
func (tc *TraceCache) consumeLocked(k traceKey, remaining int) {
	if remaining <= 1 {
		delete(tc.plan, k)
		if ent := tc.entries[k]; ent != nil {
			ent.detached = true
			tc.releaseLocked(ent)
		}
		delete(tc.entries, k)
		return
	}
	tc.plan[k] = remaining - 1
}

// release drops one waiter's use of ent once its replay (or fallback run)
// has finished with the capture.
func (tc *TraceCache) release(ent *traceEntry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	ent.refs--
	tc.releaseLocked(ent)
}

// releaseLocked recycles the capture's trace blocks once nothing can touch
// them again: the plan holds no further uses (detached), no waiter's replay
// is in flight (refs == 0), and the capture has resolved (closed — a leader
// still running would otherwise publish into a released recorder). Purely a
// memory optimization; counters and results are unaffected.
func (tc *TraceCache) releaseLocked(ent *traceEntry) {
	if ent.detached && ent.refs == 0 && ent.closed && ent.rec != nil {
		ent.rec.Release()
		ent.rec = nil
	}
}

// forfeit releases one planned use of k without running it (a skipped sweep
// cell). Safe to call concurrently with the identity's leader publishing.
func (tc *TraceCache) forfeit(k traceKey) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if remaining, ok := tc.plan[k]; ok {
		tc.consumeLocked(k, remaining)
	}
}

// publish resolves a leader's capture: a complete clean trace releases the
// waiters into replays; an overflowed recorder rejects the capture and the
// waiters stream. Idempotent with fail via the closed flag.
func (tc *TraceCache) publish(ent *traceEntry, rec *trace.Recorder, out world.Outcome, funcObs *obs.Registry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if ent.closed {
		return
	}
	ent.closed = true
	if rec.Overflowed() {
		tc.rejected++
	} else {
		ent.ok = true
		ent.rec = rec
		ent.outcome = out
		ent.funcObs = funcObs
		tc.bytes += rec.Bytes()
	}
	close(ent.done)
	// All waiters may already have forfeited (skipped cells): recycle now.
	tc.releaseLocked(ent)
}

// fail resolves a leader's capture as unusable (cell error, detection or
// panic); the waiters fall back to streamed runs.
func (tc *TraceCache) fail(ent *traceEntry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if ent.closed {
		return
	}
	ent.closed = true
	tc.failed++
	close(ent.done)
}

func (tc *TraceCache) noteHit() {
	tc.mu.Lock()
	tc.hits++
	tc.mu.Unlock()
}

func (tc *TraceCache) noteFallback() {
	tc.mu.Lock()
	tc.fallbackStreams++
	tc.mu.Unlock()
}

// recordObs publishes the cache counters into a sweep registry as
// harness.trace_cache.* counters. Every counter is a deterministic function
// of the planned grids and their cells' (deterministic) outcomes, never of
// scheduling, so the export honours the sweep determinism contract. The
// counters are the cache's lifetime totals: a cache shared across sweeps
// reports cumulatively at each sweep's end.
func (tc *TraceCache) recordObs(r *obs.Registry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	r.Counter("harness.trace_cache.hits").Add(tc.hits)
	r.Counter("harness.trace_cache.misses").Add(tc.misses)
	r.Counter("harness.trace_cache.bypass").Add(tc.bypass)
	r.Counter("harness.trace_cache.capture_failed").Add(tc.failed)
	r.Counter("harness.trace_cache.rejected").Add(tc.rejected)
	r.Counter("harness.trace_cache.fallback_streams").Add(tc.fallbackStreams)
	r.Counter("harness.trace_cache.bytes").Add(tc.bytes)
}

// Counters reports (hits, misses, bypass) — the headline numbers restbench
// prints after a cached sweep.
func (tc *TraceCache) Counters() (hits, misses, bypass uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.hits, tc.misses, tc.bypass
}

// run executes one cell through the cache (RunCached's non-nil path). The
// disk tiers, when attached and applicable to this cell (see diskFor),
// interpose around the in-memory plan: the result store can satisfy the
// cell outright, the trace store can substitute for a live capture, and
// every clean outcome feeds both stores for future processes.
func (tc *TraceCache) run(wl workload.Workload, cfg BinaryConfig, scale int64, lim CellLimits) (*RunResult, error) {
	k := cellTraceKey(wl.Name, cfg, scale, lim.MaxInstructions)
	disk := tc.diskFor(lim)

	// Tier 1: a memoized clean outcome for this exact cell skips even the
	// replay. The planned use is forfeited so siblings' refcounts stay
	// exact. Cells that need a live world can't be served from a file.
	if disk != nil && !lim.NeedWorld {
		if cr, err := disk.LoadResult(resultIdentity(k, cfg)); err == nil {
			tc.forfeit(k)
			return resultFromStore(wl, cfg, cr), nil
		}
	}

	ent, role := tc.acquire(k)
	switch role {
	case roleLead:
		// Resolve the entry however this cell exits. publish/fail are
		// idempotent, so on clean paths this is a no-op; its real job is a
		// panic unwinding through the disk tiers into the sweep engine's
		// containment, which must not strand the waiting siblings.
		defer tc.fail(ent)
		// Tier 2: a stored capture for this functional identity replaces
		// the live run; it is published for the waiting siblings exactly as
		// a live capture would be.
		if rec, out, ok := tc.loadDiskTrace(disk, k); ok {
			res, err := tc.runLeadFromDisk(wl, cfg, lim, ent, rec, out)
			return tc.finishCell(disk, k, cfg, res, err)
		}
		cap, rec, out, unlock := tc.captureToDisk(disk, k, &captureState{tc: tc, ent: ent})
		defer unlock()
		if rec != nil {
			// Another process finished this capture while we waited on its
			// lock: reuse it instead of re-executing.
			res, err := tc.runLeadFromDisk(wl, cfg, lim, ent, rec, out)
			return tc.finishCell(disk, k, cfg, res, err)
		}
		res, err := runStreamed(wl, cfg, scale, lim, cap)
		return tc.finishCell(disk, k, cfg, res, err)
	case roleWait:
		defer tc.release(ent)
		<-ent.done
		if !ent.ok || (lim.Metrics && ent.funcObs == nil) {
			// Failed/rejected capture, or a metrics cell waiting on a
			// metric-less capture: run it the ordinary way.
			tc.noteFallback()
			res, err := runStreamed(wl, cfg, scale, lim, nil)
			return tc.finishCell(disk, k, cfg, res, err)
		}
		tc.noteHit()
		res, err := runReplay(wl, cfg, lim, ent)
		return tc.finishCell(disk, k, cfg, res, err)
	default:
		if disk != nil {
			// Unshared in this process, but perhaps not across processes:
			// replay a stored capture if one exists, otherwise capture to
			// disk while streaming (a private capture, published to no one).
			if rec, out, ok := tc.loadDiskTrace(disk, k); ok {
				res, err := replayLocal(wl, cfg, lim, rec, out)
				return tc.finishCell(disk, k, cfg, res, err)
			}
			cap, rec, out, unlock := tc.captureToDisk(disk, k, &captureState{tc: tc})
			defer unlock()
			if rec != nil {
				res, err := replayLocal(wl, cfg, lim, rec, out)
				return tc.finishCell(disk, k, cfg, res, err)
			}
			res, err := runStreamed(wl, cfg, scale, lim, cap)
			return tc.finishCell(disk, k, cfg, res, err)
		}
		return runStreamed(wl, cfg, scale, lim, nil)
	}
}

// finishCell memoizes a clean cell outcome in the result store on its way
// out. Pass-through for errors, detections and detached disks.
func (tc *TraceCache) finishCell(disk *persist.Cache, k traceKey, cfg BinaryConfig, res *RunResult, err error) (*RunResult, error) {
	if err == nil && disk != nil {
		storeResult(disk, resultIdentity(k, cfg), res)
	}
	return res, err
}
