package harness

import (
	"testing"

	"rest/internal/core"
	"rest/internal/prog"
	"rest/internal/trace"
	"rest/internal/workload"
	"rest/internal/world"
)

// The per-cell economics the trace cache banks on, measured in isolation:
// streaming a cell runs the functional simulator and the timing model
// together; replaying runs the timing model over a captured trace; capturing
// is a streamed run plus the recorder tee. A sweep of G timing variants per
// build pays one capture plus G-1 replays instead of G streamed runs, so the
// stream/replay gap (and the modest capture surcharge) set the end-to-end
// saving that BenchmarkFig8CaptureReplay observes.

func benchCaptureEntry(b *testing.B, wl workload.Workload, cfg BinaryConfig) *traceEntry {
	b.Helper()
	w, err := world.Build(world.Spec{
		Pass: cfg.Pass, Mode: cfg.Mode, Width: core.Width(cfg.Pass.TokenWidth),
	}, wl.Build(2))
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(captureTokenWidth(cfg.Pass), 0)
	_, out := w.RunTimedCapture(rec)
	if out.Err != nil || out.Detected() {
		b.Fatalf("capture failed: %s", out)
	}
	return &traceEntry{ok: true, rec: rec, outcome: out}
}

func benchStreamVsReplay(b *testing.B, cfg BinaryConfig) {
	wl, err := workload.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunLimited(wl, cfg, 2, CellLimits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replayed", func(b *testing.B) {
		ent := benchCaptureEntry(b, wl, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runReplay(wl, cfg, CellLimits{}, ent); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCellStreamVsReplay measures the execute-once dividend on the
// out-of-order (Figure 8) machine.
func BenchmarkCellStreamVsReplay(b *testing.B) {
	benchStreamVsReplay(b, BinaryConfig{
		Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure,
	})
}

// BenchmarkCellStreamVsReplayInOrder measures it on the in-order (Figure 3)
// machine, where the cheap timing model makes the functional simulator a
// larger share of a streamed run and replay correspondingly more profitable —
// the reason the sensitivity grid's in-order row replays so well.
func BenchmarkCellStreamVsReplayInOrder(b *testing.B) {
	benchStreamVsReplay(b, BinaryConfig{
		Name: "secure-io", Pass: prog.RESTFull(64), Mode: core.Secure, InOrder: true,
	})
}

// BenchmarkCellCapture prices a capturing cell (streamed run + recorder tee);
// its surcharge over BenchmarkCellStreamVsReplay/streamed is what one cache
// miss costs a sweep.
func BenchmarkCellCapture(b *testing.B) {
	wl, err := workload.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	cfg := BinaryConfig{Name: "secure-full", Pass: prog.RESTFull(64), Mode: core.Secure}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ent := benchCaptureEntry(b, wl, cfg)
		ent.rec.Release()
	}
}
