package mem

import "testing"

// The last-page lookup cache is invisible to every caller; these tests aim
// at the spots where a stale or over-eager cache would show: unallocated
// pages, allocation after a cached miss, and tight cross-page ping-pong.

func TestPageCacheDoesNotCacheAbsentPages(t *testing.T) {
	m := New()
	// Read an unallocated page: must not poison the cache.
	if got := m.Byte(0x5000); got != 0 {
		t.Fatalf("unallocated byte = %d", got)
	}
	// Allocate it; the write must land on the real page.
	m.SetByte(0x5000, 0xAB)
	if got := m.Byte(0x5000); got != 0xAB {
		t.Errorf("byte after alloc = %#x, want 0xAB", got)
	}
	if m.PageCount() != 1 {
		t.Errorf("PageCount = %d, want 1", m.PageCount())
	}
}

func TestPageCacheCrossPagePingPong(t *testing.T) {
	m := New()
	a, b := uint64(0x1000), uint64(0x2000) // distinct pages
	for i := 0; i < 100; i++ {
		m.SetByte(a, byte(i))
		m.SetByte(b, byte(i+1))
		if m.Byte(a) != byte(i) || m.Byte(b) != byte(i+1) {
			t.Fatalf("iteration %d: ping-pong read wrong (a=%d b=%d)", i, m.Byte(a), m.Byte(b))
		}
	}
}

func TestPageCacheStraddlingWrite(t *testing.T) {
	m := New()
	// A write straddling a page boundary touches two pages in one call; each
	// half must resolve its own page even when the cache points at the other.
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.Write(PageSize-4, src)
	var dst [8]byte
	m.Read(PageSize-4, dst[:])
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("straddling roundtrip byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

// BenchmarkSamePageAccess is the case the cache exists for: the simulator's
// load/store stream clusters on a few pages (stack frames, allocator
// metadata), so consecutive accesses should skip the page map entirely.
func BenchmarkSamePageAccess(b *testing.B) {
	m := New()
	m.SetByte(0x1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.ReadUint(0x1000+uint64(i%64)*8, 8)
	}
	_ = sink
}

// BenchmarkAlternatingPageAccess is the cache's worst case — every access
// evicts the cached page — and bounds the regression the single entry can
// cost relative to the old always-map path.
func BenchmarkAlternatingPageAccess(b *testing.B) {
	m := New()
	m.SetByte(0x1000, 1)
	m.SetByte(0x2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.ReadUint(0x1000+uint64(i&1)<<12, 8)
	}
	_ = sink
}
