// Package mem provides the sparse byte-addressable physical memory backing
// the simulated machine. Pages are allocated lazily so the 64-bit address
// space (code, globals, heap, shadow, stack) can be used at its natural
// addresses without reserving host memory.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageBits selects a 4KiB page granule for the backing store.
const PageBits = 12

// PageSize is the backing-store page size in bytes.
const PageSize = 1 << PageBits

// Memory is a sparse physical memory. The zero value is not ready; use New.
// Unwritten bytes read as zero, matching zero-fill-on-demand semantics.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// Single-entry page lookup cache: accesses cluster heavily (stack walks,
	// allocator metadata, linear sweeps), so remembering the last resolved
	// page takes the map lookup off the common load/store path. lastPage is
	// nil until the first resolution; pages are never freed, so the cached
	// pointer can never go stale.
	lastPN   uint64
	lastPage *[PageSize]byte

	// Slab arena: pages are carved from multi-page slabs so materializing a
	// world costs one host allocation per slabPages pages instead of one
	// per page. The slab's backing array stays alive through the page map's
	// pointers into it; slab/slabOff only track the current carve point.
	slab    [][PageSize]byte
	slabOff int

	// Single-slot write watch (see Watch). watchFn nil keeps the write
	// paths on a one-compare fast path.
	watchLo uint64
	watchHi uint64
	watchFn func(lo, hi uint64)
}

// slabPages is how many pages one arena slab carves into (128KiB per slab).
const slabPages = 32

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// page returns the page containing addr, allocating it if alloc is set.
func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> PageBits
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil && alloc {
		if m.slabOff == len(m.slab) {
			m.slab = make([][PageSize]byte, slabPages)
			m.slabOff = 0
		}
		p = &m.slab[m.slabOff]
		m.slabOff++
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// Byte returns the byte at addr.
func (m *Memory) Byte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(PageSize-1)]
	}
	return 0
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(PageSize-1)] = b
	if m.watchFn != nil && addr >= m.watchLo && addr < m.watchHi {
		m.watchFn(addr, addr+1)
	}
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	start, total := addr, uint64(len(src))
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		copy(m.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
	if m.watchFn != nil && total > 0 && start < m.watchHi && start+total > m.watchLo {
		m.watchFn(start, start+total)
	}
}

// ReadUint reads a little-endian unsigned integer of size 1, 2, 4 or 8 bytes
// and zero-extends it.
//
// The panic on any other size is an invariant assertion, not an error path:
// sim.New validates every instruction's Size field (isa.Instr.Valid) before
// execution, and runtime-service accesses use literal sizes, so no user
// input can reach here with a bad size. TestInvalidSizePanics pins the
// assertion.
func (m *Memory) ReadUint(addr uint64, size uint8) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:2]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:8])
	default:
		panic(fmt.Sprintf("mem: invalid access size %d", size))
	}
}

// WriteUint writes the low size bytes of v little-endian at addr. The
// invalid-size panic is an invariant assertion with the same justification
// as ReadUint's: instruction validation in sim.New closes every user-input
// path to it.
func (m *Memory) WriteUint(addr uint64, size uint8, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	switch size {
	case 1, 2, 4, 8:
		m.Write(addr, buf[:size])
	default:
		panic(fmt.Sprintf("mem: invalid access size %d", size))
	}
}

// Zero clears n bytes starting at addr.
func (m *Memory) Zero(addr, n uint64) {
	if m.watchFn != nil && n > 0 && addr < m.watchHi && addr+n > m.watchLo {
		m.watchFn(addr, addr+n)
	}
	for n > 0 {
		off := addr & (PageSize - 1)
		c := PageSize - off
		if n < c {
			c = n
		}
		if p := m.page(addr, false); p != nil {
			for i := off; i < off+c; i++ {
				p[i] = 0
			}
		}
		addr += c
		n -= c
	}
}

// Equal reports whether the n bytes at addr equal pat (len(pat) == n callers'
// responsibility; compares min lengths).
func (m *Memory) Equal(addr uint64, pat []byte) bool {
	var buf [64]byte
	for len(pat) > 0 {
		n := len(pat)
		if n > len(buf) {
			n = len(buf)
		}
		m.Read(addr, buf[:n])
		for i := 0; i < n; i++ {
			if buf[i] != pat[i] {
				return false
			}
		}
		pat = pat[n:]
		addr += uint64(n)
	}
	return true
}

// Watch registers fn to observe every write overlapping [lo, hi): stores of
// any width, bulk writes and Zero all report the written byte range (the
// full range of the operation, which may extend past the watched window).
// One slot only — a second Watch replaces the first; a nil fn removes it.
// The simulator's decoded-block engine uses this as its invalidation
// chokepoint over the code image: user stores, runtime-service stores and
// tracker token writes all funnel through these paths, so no write can
// reach watched memory unobserved. The unwatched fast path is a single nil
// check per write operation.
func (m *Memory) Watch(lo, hi uint64, fn func(lo, hi uint64)) {
	m.watchLo, m.watchHi, m.watchFn = lo, hi, fn
}

// Digest returns an FNV-1a hash of the memory's logical content: every
// materialized page's number and bytes, in ascending page order, with
// all-zero pages skipped so the digest depends only on observable content
// (an unwritten page and a written-then-zeroed page hash identically).
// Equal digests across two runs mean byte-identical memory images; the
// engine differential tests compare them.
func (m *Memory) Digest() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, pn := range pns {
		p := m.pages[pn]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		for shift := 0; shift < 64; shift += 8 {
			h ^= (pn >> shift) & 0xFF
			h *= prime
		}
		for _, b := range p {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// PageCount reports how many backing pages have been materialized. Useful for
// memory-footprint statistics (e.g. shadow-memory cost of ASan).
func (m *Memory) PageCount() int { return len(m.pages) }

// Footprint reports the materialized backing-store size in bytes.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }
