// Package mem provides the sparse byte-addressable physical memory backing
// the simulated machine. Pages are allocated lazily so the 64-bit address
// space (code, globals, heap, shadow, stack) can be used at its natural
// addresses without reserving host memory.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageBits selects a 4KiB page granule for the backing store.
const PageBits = 12

// PageSize is the backing-store page size in bytes.
const PageSize = 1 << PageBits

// Memory is a sparse physical memory. The zero value is not ready; use New.
// Unwritten bytes read as zero, matching zero-fill-on-demand semantics.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// Single-entry page lookup cache: accesses cluster heavily (stack walks,
	// allocator metadata, linear sweeps), so remembering the last resolved
	// page takes the map lookup off the common load/store path. lastPage is
	// nil until the first resolution; pages are never freed, so the cached
	// pointer can never go stale.
	lastPN   uint64
	lastPage *[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// page returns the page containing addr, allocating it if alloc is set.
func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> PageBits
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// Byte returns the byte at addr.
func (m *Memory) Byte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(PageSize-1)]
	}
	return 0
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(PageSize-1)] = b
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		copy(m.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// ReadUint reads a little-endian unsigned integer of size 1, 2, 4 or 8 bytes
// and zero-extends it.
//
// The panic on any other size is an invariant assertion, not an error path:
// sim.New validates every instruction's Size field (isa.Instr.Valid) before
// execution, and runtime-service accesses use literal sizes, so no user
// input can reach here with a bad size. TestInvalidSizePanics pins the
// assertion.
func (m *Memory) ReadUint(addr uint64, size uint8) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:2]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:8])
	default:
		panic(fmt.Sprintf("mem: invalid access size %d", size))
	}
}

// WriteUint writes the low size bytes of v little-endian at addr. The
// invalid-size panic is an invariant assertion with the same justification
// as ReadUint's: instruction validation in sim.New closes every user-input
// path to it.
func (m *Memory) WriteUint(addr uint64, size uint8, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	switch size {
	case 1, 2, 4, 8:
		m.Write(addr, buf[:size])
	default:
		panic(fmt.Sprintf("mem: invalid access size %d", size))
	}
}

// Zero clears n bytes starting at addr.
func (m *Memory) Zero(addr, n uint64) {
	for n > 0 {
		off := addr & (PageSize - 1)
		c := PageSize - off
		if n < c {
			c = n
		}
		if p := m.page(addr, false); p != nil {
			for i := off; i < off+c; i++ {
				p[i] = 0
			}
		}
		addr += c
		n -= c
	}
}

// Equal reports whether the n bytes at addr equal pat (len(pat) == n callers'
// responsibility; compares min lengths).
func (m *Memory) Equal(addr uint64, pat []byte) bool {
	var buf [64]byte
	for len(pat) > 0 {
		n := len(pat)
		if n > len(buf) {
			n = len(buf)
		}
		m.Read(addr, buf[:n])
		for i := 0; i < n; i++ {
			if buf[i] != pat[i] {
				return false
			}
		}
		pat = pat[n:]
		addr += uint64(n)
	}
	return true
}

// PageCount reports how many backing pages have been materialized. Useful for
// memory-footprint statistics (e.g. shadow-memory cost of ASan).
func (m *Memory) PageCount() int { return len(m.pages) }

// Footprint reports the materialized backing-store size in bytes.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }
