package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if got := m.Byte(0xdeadbeef); got != 0 {
		t.Errorf("fresh ReadByte = %d, want 0", got)
	}
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xAA
	}
	m.Read(0x123456789, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh Read byte %d = %d, want 0", i, b)
		}
	}
	if m.PageCount() != 0 {
		t.Errorf("reads materialized %d pages, want 0", m.PageCount())
	}
}

func TestReadWriteByte(t *testing.T) {
	m := New()
	m.SetByte(42, 7)
	if got := m.Byte(42); got != 7 {
		t.Errorf("ReadByte(42) = %d, want 7", got)
	}
	if got := m.Byte(43); got != 0 {
		t.Errorf("ReadByte(43) = %d, want 0", got)
	}
}

func TestCrossPageReadWrite(t *testing.T) {
	m := New()
	// Span three pages.
	base := uint64(PageSize - 100)
	src := make([]byte, 2*PageSize+200)
	for i := range src {
		src[i] = byte(i * 31)
	}
	m.Write(base, src)
	dst := make([]byte, len(src))
	m.Read(base, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestReadWriteUint(t *testing.T) {
	m := New()
	for _, size := range []uint8{1, 2, 4, 8} {
		v := uint64(0x1122334455667788)
		m.WriteUint(0x1000, size, v)
		want := v
		if size < 8 {
			want = v & ((1 << (8 * uint(size))) - 1)
		}
		if got := m.ReadUint(0x1000, size); got != want {
			t.Errorf("size %d: ReadUint = %#x, want %#x", size, got, want)
		}
	}
}

func TestUintLittleEndian(t *testing.T) {
	m := New()
	m.WriteUint(0x2000, 4, 0x04030201)
	for i := uint64(0); i < 4; i++ {
		if got := m.Byte(0x2000 + i); got != byte(i+1) {
			t.Errorf("byte %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestInvalidSizePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("ReadUint(size=3) did not panic")
		}
	}()
	m.ReadUint(0, 3)
}

func TestZero(t *testing.T) {
	m := New()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = 0xFF
	}
	m.Write(100, data)
	m.Zero(100+10, uint64(len(data))-20)
	if m.Byte(100+9) != 0xFF || m.Byte(100+uint64(len(data))-10) != 0xFF {
		t.Error("Zero clobbered boundary bytes")
	}
	for i := uint64(10); i < uint64(len(data))-10; i += 997 {
		if m.Byte(100+i) != 0 {
			t.Fatalf("byte at offset %d not zeroed", i)
		}
	}
}

func TestEqual(t *testing.T) {
	m := New()
	pat := make([]byte, 150)
	for i := range pat {
		pat[i] = byte(i)
	}
	m.Write(0x5000, pat)
	if !m.Equal(0x5000, pat) {
		t.Error("Equal = false for matching data")
	}
	pat[149] ^= 1
	if m.Equal(0x5000, pat) {
		t.Error("Equal = true for differing data")
	}
	// All-zero pattern matches untouched memory.
	if !m.Equal(0x999999000, make([]byte, 64)) {
		t.Error("Equal(zero pattern, untouched) = false")
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	m.SetByte(0, 1)
	m.SetByte(PageSize*5, 1)
	if got := m.Footprint(); got != 2*PageSize {
		t.Errorf("Footprint = %d, want %d", got, 2*PageSize)
	}
}

// Property: a Write followed by a Read at random addresses/lengths returns
// what was written.
func TestWriteReadProperty(t *testing.T) {
	m := New()
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		addr := uint64(r.Int63n(1 << 40))
		n := r.Intn(3 * PageSize)
		src := make([]byte, n)
		r.Read(src)
		m.Write(addr, src)
		dst := make([]byte, n)
		m.Read(addr, dst)
		return bytes.Equal(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: WriteUint/ReadUint round-trip for all sizes.
func TestUintProperty(t *testing.T) {
	m := New()
	r := rand.New(rand.NewSource(11))
	sizes := []uint8{1, 2, 4, 8}
	f := func() bool {
		addr := uint64(r.Int63n(1 << 40))
		size := sizes[r.Intn(4)]
		v := r.Uint64()
		m.WriteUint(addr, size, v)
		want := v
		if size < 8 {
			want &= (1 << (8 * uint(size))) - 1
		}
		return m.ReadUint(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
