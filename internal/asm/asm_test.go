package asm

import (
	"math/rand"
	"strings"
	"testing"

	"rest/internal/isa"
	"rest/internal/layout"
)

func TestParseBasics(t *testing.T) {
	src := `
; a tiny program
main:
    movi r1, 10       ; counter
    movi r2, 0
loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, zero, loop
    mov  res, r2
    halt
`
	prog, entry, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if entry != 0 {
		t.Errorf("entry = %d, want 0", entry)
	}
	if len(prog) != 7 {
		t.Fatalf("instructions = %d, want 7", len(prog))
	}
	if prog[0].Op != isa.OpMovI || prog[0].Imm != 10 {
		t.Errorf("instr 0 = %s", prog[0])
	}
	// The branch targets the loop label's absolute PC.
	wantPC := int64(layout.CodeBase + 2*isa.InstrBytes)
	if prog[4].Op != isa.OpBne || prog[4].Imm != wantPC {
		t.Errorf("branch = %s (imm %#x, want %#x)", prog[4], prog[4].Imm, wantPC)
	}
}

func TestParseMemoryOps(t *testing.T) {
	prog, _, err := Parse(`
main:
    movi r1, 0x10000000
    load8 r2, [r1+16]
    store4 [r1-8], r2
    arm [r1+64]
    disarm [r1+64]
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[1].Op != isa.OpLoad || prog[1].Size != 8 || prog[1].Imm != 16 {
		t.Errorf("load = %s", prog[1])
	}
	if prog[2].Op != isa.OpStore || prog[2].Size != 4 || prog[2].Imm != -8 {
		t.Errorf("store = %s", prog[2])
	}
	if prog[3].Op != isa.OpArm || prog[4].Op != isa.OpDisarm {
		t.Error("arm/disarm not parsed")
	}
}

func TestParseCallAndAliases(t *testing.T) {
	prog, entry, err := Parse(`
helper:
    addi sp, sp, -64
    store8 [sp+0], ra
    load8 ra, [sp+0]
    addi sp, sp, 64
    ret
main:
    call helper
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if entry != 5 {
		t.Errorf("entry = %d, want 5 (main after helper)", entry)
	}
	if prog[5].Op != isa.OpCall || prog[5].Imm != int64(layout.CodeBase) {
		t.Errorf("call = %s", prog[5])
	}
	if prog[0].Rd != isa.RSP || prog[1].Rt != isa.RRA {
		t.Error("register aliases not resolved")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"main:\n bogus r1, r2",
		"main:\n movi rx, 5",
		"main:\n beq r1, r2, nowhere",
		"main:\n load8 r1, r2", // not a memory operand
		"dup:\ndup:\n halt",
		"",
		"main:\n movi r1, zzz",
	}
	for _, src := range cases {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestRoundTripThroughFormat(t *testing.T) {
	src := `
main:
    movi r1, 42
    addi r2, r1, -7
    halt
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	for _, want := range []string{"movi r1, 42", "addi r2, r1, -7", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q:\n%s", want, text)
		}
	}
}

func TestRTCallAndIndirect(t *testing.T) {
	prog, _, err := Parse(`
main:
    movi r20, 64
    rtcall 1
    mov r1, r20
    callr r1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[1].Op != isa.OpRTCall || prog[1].Imm != 1 {
		t.Errorf("rtcall = %s", prog[1])
	}
	if prog[3].Op != isa.OpCallR || prog[3].Rs != 1 {
		t.Errorf("callr = %s", prog[3])
	}
}

// TestParseNeverPanics fuzzes the parser with random byte soup and mutated
// valid programs: it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	valid := `
main:
    movi r1, 10
loop:
    addi r1, r1, -1
    bne r1, zero, loop
    arm [r1+64]
    halt
`
	alphabet := []byte("abcdefghijklmnopqrstuvwxyz0123456789 \t\n,:;[]+-rx#")
	for trial := 0; trial < 2000; trial++ {
		var src string
		if trial%2 == 0 {
			// Pure noise.
			n := r.Intn(200)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[r.Intn(len(alphabet))]
			}
			src = string(buf)
		} else {
			// Mutated valid program.
			buf := []byte(valid)
			for k := 0; k < 1+r.Intn(5); k++ {
				buf[r.Intn(len(buf))] = alphabet[r.Intn(len(alphabet))]
			}
			src = string(buf)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse panicked on %q: %v", src, p)
				}
			}()
			prog, _, err := Parse(src)
			if err == nil {
				// Accepted: must assemble to valid instructions.
				for _, in := range prog {
					if e := in.Valid(); e != nil {
						t.Fatalf("accepted invalid instruction %s: %v", in, e)
					}
				}
			}
		}()
	}
}
