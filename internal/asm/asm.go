// Package asm provides a textual assembly format for the simulated ISA, so
// REST programs can be written directly and run with cmd/restasm:
//
//	; compute into the checksum register, then trip a token
//	main:
//	    movi  r1, 0x10000000
//	    arm   [r1+0]          ; plant a token
//	    load8 r2, [r1+8]      ; REST exception: load touched token
//	    halt
//
// Syntax: one instruction per line; `;` or `#` start comments; `label:`
// defines a branch target; registers are r0..r31 with aliases zero, sp, fp,
// ra, res (the checksum register). Loads/stores write the access size into
// the mnemonic (load1/2/4/8, store1/2/4/8). Branch/jump/call targets are
// labels. Immediates accept decimal, hex (0x...) and negative values.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"rest/internal/isa"
	"rest/internal/layout"
	"rest/internal/sim"
)

var regAliases = map[string]uint8{
	"zero": isa.RZero,
	"sp":   isa.RSP,
	"fp":   isa.RFP,
	"ra":   isa.RRA,
	"res":  sim.RRes,
}

// Parse assembles source into an instruction sequence. The entry point is
// the "main" label (or instruction 0 if no main label exists).
func Parse(src string) ([]isa.Instr, int, error) {
	type pending struct {
		instr isa.Instr
		label string // branch/call target to resolve (empty = none)
		line  int
	}
	var prog []pending
	labels := map[string]int{}

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t[") {
				name := strings.TrimSpace(line[:i])
				if _, dup := labels[name]; dup {
					return nil, 0, fmt.Errorf("asm: line %d: duplicate label %q", ln+1, name)
				}
				labels[name] = len(prog)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		in, target, err := parseInstr(line)
		if err != nil {
			return nil, 0, fmt.Errorf("asm: line %d: %w", ln+1, err)
		}
		prog = append(prog, pending{instr: in, label: target, line: ln + 1})
	}

	out := make([]isa.Instr, len(prog))
	for i, p := range prog {
		in := p.instr
		if p.label != "" {
			idx, ok := labels[p.label]
			if !ok {
				return nil, 0, fmt.Errorf("asm: line %d: undefined label %q", p.line, p.label)
			}
			in.Imm = int64(layout.CodeBase + uint64(idx)*isa.InstrBytes)
		}
		if err := in.Valid(); err != nil {
			return nil, 0, fmt.Errorf("asm: line %d: %w", p.line, err)
		}
		out[i] = in
	}
	entry := 0
	if idx, ok := labels["main"]; ok {
		entry = idx
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("asm: empty program")
	}
	return out, entry, nil
}

// parseInstr assembles one instruction, returning an unresolved label for
// control-flow targets.
func parseInstr(line string) (isa.Instr, string, error) {
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	args := splitArgs(rest)

	reg := func(i int) (uint8, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing operand %d", i+1)
		}
		return parseReg(args[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing operand %d", i+1)
		}
		return parseImm(args[i])
	}

	switch mnem {
	case "nop":
		return isa.Instr{Op: isa.OpNop}, "", nil
	case "halt":
		return isa.Instr{Op: isa.OpHalt}, "", nil
	case "ret":
		return isa.Instr{Op: isa.OpRet}, "", nil

	case "movi":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		v, err := imm(1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: isa.OpMovI, Rd: rd, Imm: v}, "", nil
	case "mov":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rs, err := reg(1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: isa.OpMov, Rd: rd, Rs: rs}, "", nil

	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr":
		ops := map[string]isa.Op{
			"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul,
			"div": isa.OpDiv, "rem": isa.OpRem, "and": isa.OpAnd,
			"or": isa.OpOr, "xor": isa.OpXor, "shl": isa.OpShl, "shr": isa.OpShr,
		}
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rs, err := reg(1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rt, err := reg(2)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: ops[mnem], Rd: rd, Rs: rs, Rt: rt}, "", nil

	case "addi", "muli", "andi", "ori", "xori", "shli", "shri":
		ops := map[string]isa.Op{
			"addi": isa.OpAddI, "muli": isa.OpMulI, "andi": isa.OpAndI,
			"ori": isa.OpOrI, "xori": isa.OpXorI, "shli": isa.OpShlI, "shri": isa.OpShrI,
		}
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rs, err := reg(1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		v, err := imm(2)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: ops[mnem], Rd: rd, Rs: rs, Imm: v}, "", nil

	case "load1", "load2", "load4", "load8":
		rd, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rs, off, err := parseMem(args, 1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: isa.OpLoad, Rd: rd, Rs: rs, Imm: off, Size: sizeOf(mnem)}, "", nil
	case "store1", "store2", "store4", "store8":
		rs, off, err := parseMem(args, 0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rt, err := reg(1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: isa.OpStore, Rs: rs, Rt: rt, Imm: off, Size: sizeOf(mnem)}, "", nil

	case "arm", "disarm":
		rs, off, err := parseMem(args, 0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		op := isa.OpArm
		if mnem == "disarm" {
			op = isa.OpDisarm
		}
		return isa.Instr{Op: op, Rs: rs, Imm: off}, "", nil

	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		ops := map[string]isa.Op{
			"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
			"bge": isa.OpBge, "bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
		}
		rs, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		rt, err := reg(1)
		if err != nil {
			return isa.Instr{}, "", err
		}
		if len(args) < 3 {
			return isa.Instr{}, "", fmt.Errorf("missing branch target")
		}
		return isa.Instr{Op: ops[mnem], Rs: rs, Rt: rt}, args[2], nil
	case "jmp", "call":
		op := isa.OpJmp
		if mnem == "call" {
			op = isa.OpCall
		}
		if len(args) < 1 {
			return isa.Instr{}, "", fmt.Errorf("missing target")
		}
		return isa.Instr{Op: op}, args[0], nil
	case "callr":
		rs, err := reg(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: isa.OpCallR, Rs: rs}, "", nil

	case "rtcall":
		v, err := imm(0)
		if err != nil {
			return isa.Instr{}, "", err
		}
		return isa.Instr{Op: isa.OpRTCall, Imm: v}, "", nil
	}
	return isa.Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnem)
}

func sizeOf(mnem string) uint8 {
	switch mnem[len(mnem)-1] {
	case '1':
		return 1
	case '2':
		return 2
	case '4':
		return 4
	default:
		return 8
	}
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow large unsigned hex (addresses).
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses a "[rN+off]" or "[rN-off]" operand at args[i].
func parseMem(args []string, i int) (uint8, int64, error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing memory operand")
	}
	s := strings.TrimSpace(args[i])
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	s = s[1 : len(s)-1]
	sign := int64(1)
	var regPart, offPart string
	if j := strings.IndexAny(s, "+-"); j >= 0 {
		if s[j] == '-' {
			sign = -1
		}
		regPart, offPart = s[:j], s[j+1:]
	} else {
		regPart, offPart = s, "0"
	}
	r, err := parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	off, err := parseImm(offPart)
	if err != nil {
		return 0, 0, err
	}
	return r, sign * off, nil
}

// Format disassembles a program back to parseable text.
func Format(prog []isa.Instr) string {
	var b strings.Builder
	for i, in := range prog {
		fmt.Fprintf(&b, "%04d  %s\n", i, in)
	}
	return b.String()
}
