package asm

import (
	"testing"

	"rest/internal/isa"
)

// FuzzEncodeDecode fuzzes the assembler front end against the binary codec:
// Parse must never panic on arbitrary source text, every program it accepts
// must consist of Valid instructions, and the assembled program must survive
// an isa.EncodeProgram → isa.DecodeProgram round-trip unchanged (the
// assembler and the codec agree on what a well-formed instruction is).
func FuzzEncodeDecode(f *testing.F) {
	f.Add("main:\n    movi r1, 10\nloop:\n    addi r1, r1, -1\n    bne r1, zero, loop\n    halt\n")
	f.Add("arm [sp+64]\nstore8 [sp+0], ra\nload4 r2, [fp-8]\ndisarm [sp+64]\nret\n")
	f.Add("start: call fn ; comment\njmp start\nfn: rtcall 1\n  callr r3\n  ret\n")
	f.Add("movi res, 0xdeadbeef\nxor r1, r1, r1\nhalt")
	f.Add("add r1, r2")     // missing operand
	f.Add("bogus r1, r2")   // unknown mnemonic
	f.Add("movi r99, 1")    // bad register
	f.Add("load8 r1, [r2")  // unterminated memory operand
	f.Add("x: x: halt")     // duplicate label
	f.Add(":\n;\n#\n[]\n,") // punctuation soup

	f.Fuzz(func(t *testing.T, src string) {
		prog, entry, err := Parse(src)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if entry < 0 || entry >= len(prog) {
			t.Fatalf("entry %d outside program of %d instructions", entry, len(prog))
		}
		for i, in := range prog {
			if verr := in.Valid(); verr != nil {
				t.Fatalf("Parse accepted invalid instruction %d (%v): %v", i, in, verr)
			}
		}
		img, err := isa.EncodeProgram(prog)
		if err != nil {
			t.Fatalf("assembled program does not encode: %v", err)
		}
		back, err := isa.DecodeProgram(img)
		if err != nil {
			t.Fatalf("assembled program does not decode: %v", err)
		}
		for i := range prog {
			if back[i] != prog[i] {
				t.Fatalf("codec round-trip changed instruction %d: %v -> %v", i, prog[i], back[i])
			}
		}
		// Format must render any accepted program without panicking.
		if out := Format(prog); out == "" {
			t.Fatal("Format returned empty text for a non-empty program")
		}
	})
}
