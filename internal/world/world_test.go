package world

import (
	"testing"

	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/prog"
	"rest/internal/rt"
)

func tiny(b *prog.Builder) {
	f := b.Func("main")
	p := f.Reg()
	f.CallMallocI(p, 64)
	f.CallFree(p)
}

func TestBuildFlavours(t *testing.T) {
	cases := []struct {
		pass        prog.PassConfig
		wantTracker bool
		wantShadow  bool
	}{
		{prog.Plain(), false, false},
		{prog.ASanFull(), false, true},
		{prog.RESTFull(64), true, false},
		{prog.RESTHeap(32), true, false},
		{prog.PerfectHWFull(), false, false},
	}
	for _, c := range cases {
		w, err := Build(Spec{Pass: c.pass, Width: core.Width(c.pass.TokenWidth)}, tiny)
		if err != nil {
			t.Fatalf("%s: %v", c.pass.Flavour, err)
		}
		if (w.Tracker != nil) != c.wantTracker {
			t.Errorf("%s: tracker presence = %v", c.pass.Flavour, w.Tracker != nil)
		}
		if (w.Shadow != nil) != c.wantShadow {
			t.Errorf("%s: shadow presence = %v", c.pass.Flavour, w.Shadow != nil)
		}
		out := w.RunFunctional()
		if out.Err != nil || out.Detected() {
			t.Errorf("%s: %s", c.pass.Flavour, out)
		}
	}
}

func TestWidthMismatchRejected(t *testing.T) {
	if _, err := Build(Spec{Pass: prog.RESTFull(64), Width: core.Width16}, tiny); err == nil {
		t.Error("mismatched widths accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	if (Outcome{}).String() != "completed" {
		t.Error("clean outcome string wrong")
	}
	o := Outcome{Exception: &core.Exception{Kind: core.ViolationLoad}}
	if o.String() == "" || !o.Detected() {
		t.Error("exception outcome wrong")
	}
}

func TestCPUOverrideAndInOrder(t *testing.T) {
	ccfg := cpu.DefaultConfig()
	ccfg.ROBSize = 32
	w, err := Build(Spec{Pass: prog.Plain(), CPU: &ccfg}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if w.Pipeline == nil || w.InOrder != nil {
		t.Error("default build should use the OoO pipeline")
	}
	w2, err := Build(Spec{Pass: prog.Plain(), InOrder: true}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if w2.InOrder == nil || w2.Pipeline != nil {
		t.Error("InOrder build did not select the in-order core")
	}
	stats, out := w2.RunTimed()
	if out.Err != nil || stats.Cycles == 0 {
		t.Errorf("in-order run: %s, %d cycles", out, stats.Cycles)
	}
}

func TestInterceptOverride(t *testing.T) {
	no := false
	w, err := Build(Spec{Pass: prog.ASanFull(), InterceptLibc: &no}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if w.Runtime.InterceptLibc {
		t.Error("InterceptLibc override not applied")
	}
	if w.Runtime.Flavour != rt.ASan {
		t.Errorf("flavour = %s", w.Runtime.Flavour)
	}
}
