// Package world assembles complete simulation worlds: a program built under
// an instrumentation pass, the matching runtime (allocator + interceptors),
// the REST hardware state when the pass needs it, and the timing model
// (core + caches + DRAM + predictor). It is the composition root used by the
// public API, the experiment harness, the examples and the test suites.
package world

import (
	"fmt"
	"math/rand"
	"time"

	"rest/internal/alloc"
	"rest/internal/bpred"
	"rest/internal/cache"
	"rest/internal/core"
	"rest/internal/cpu"
	"rest/internal/mem"
	"rest/internal/obs"
	"rest/internal/prog"
	"rest/internal/rt"
	"rest/internal/shadow"
	"rest/internal/sim"
	"rest/internal/trace"
)

// Spec configures a world.
type Spec struct {
	Pass prog.PassConfig
	// Mode selects secure (imprecise, deployment) or debug (precise)
	// exception reporting; it also configures the pipeline's store-commit
	// policy. Ignored for non-REST passes.
	Mode core.Mode
	// Width is the REST token width (default 64B). It must equal
	// Pass.TokenWidth when both are set.
	Width core.Width
	// Seed drives token generation (deterministic by default).
	Seed int64
	// MaxInstructions caps functional execution (0 = sim default).
	MaxInstructions uint64
	// Deadline is the wall-clock watchdog for the run (zero = none); a run
	// still executing past it aborts with a *sim.BudgetExceededError.
	Deadline time.Time
	// Engine selects the functional simulator's execution engine
	// (sim.EngineAuto, the zero value, resolves to the decoded-block
	// engine; sim.EngineRef forces the single-step reference interpreter).
	// Purely a speed knob: both engines produce byte-identical traces,
	// outcomes and counters, pinned by the engine differential tests.
	Engine sim.Engine
	// InterceptLibc overrides the runtime's libc interception when non-nil
	// (Figure 3 component toggle).
	InterceptLibc *bool
	// CPU overrides the core configuration (nil = Table II defaults).
	CPU *cpu.Config
	// InOrder selects the simple in-order core instead of the out-of-order
	// model (the paper's Figure 3 was measured on an in-order core).
	InOrder bool
	// Hier overrides the cache hierarchy (nil = Table II defaults).
	Hier *cache.HierConfig
	// QuarantineCap overrides the allocator quarantine capacity in bytes
	// (ablation studies; nil = allocator default).
	QuarantineCap *uint64
	// RedzoneBytes overrides the allocator per-side redzone size
	// (ablation studies; nil = allocator default).
	RedzoneBytes *uint64
	// RandomizeHeap enables heap layout randomization with the given seed
	// (§V-C Predictability; REST arms the random slack).
	RandomizeHeap *int64
	// Obs, when non-nil, threads the observability plane through every
	// layer of this world: sim/cpu/alloc get live probes, and RunTimed /
	// RunFunctional flush the cache and allocator statistics into the
	// registry at end of run. Nil (the default) keeps every hook on its
	// zero-cost nil fast path.
	Obs *obs.Registry
	// FuncObs, when non-nil, splits the observability plane: the functional
	// layers (sim, alloc) publish here while the timing layers (cpu, cache)
	// keep publishing to Obs. The trace cache uses the split to capture a
	// cell's functional metrics once and merge them into each replaying
	// cell's registry — the metric names are disjoint, so Obs merged with
	// FuncObs is identical to an unsplit registry. Nil (the default) sends
	// everything to Obs.
	FuncObs *obs.Registry
}

// funcObs resolves the functional-plane registry: FuncObs when split, Obs
// otherwise.
func (s Spec) funcObs() *obs.Registry {
	if s.FuncObs != nil {
		return s.FuncObs
	}
	return s.Obs
}

// Outcome summarizes a run's architectural result.
type Outcome struct {
	Checksum  uint64
	Exception *core.Exception // REST hardware detection
	Violation *sim.Violation  // software (ASan/allocator) detection
	Err       error           // simulation error (bug in the program/world)
}

// Detected reports whether any memory-safety mechanism fired.
func (o Outcome) Detected() bool { return o.Exception != nil || o.Violation != nil }

// String renders the outcome for reports.
func (o Outcome) String() string {
	switch {
	case o.Err != nil:
		return fmt.Sprintf("error: %v", o.Err)
	case o.Exception != nil:
		return fmt.Sprintf("REST exception: %s", o.Exception.Kind)
	case o.Violation != nil:
		return fmt.Sprintf("detected: %s", o.Violation.What)
	default:
		return "completed"
	}
}

// World is one assembled simulation instance. Build one per run; the
// functional machine is single-use.
type World struct {
	Spec     Spec
	Program  *prog.Program
	Machine  *sim.Machine
	Runtime  *rt.Runtime
	Tracker  *core.TokenTracker
	Shadow   *shadow.Map
	Alloc    *alloc.Engine
	Hier     *cache.Hierarchy
	Pipeline *cpu.Pipeline
	InOrder  *cpu.InOrder
	Pred     *bpred.Predictor

	obsFlushed bool
}

// Build constructs a world for the given program builder function.
func Build(spec Spec, build func(b *prog.Builder)) (*World, error) {
	if spec.Width == 0 {
		spec.Width = core.Width64
	}
	if spec.Pass.TokenWidth == 0 {
		spec.Pass.TokenWidth = uint64(spec.Width)
	}
	if uint64(spec.Width) != spec.Pass.TokenWidth && spec.Pass.Flavour == rt.REST {
		return nil, fmt.Errorf("world: token width mismatch: spec %d vs pass %d",
			spec.Width, spec.Pass.TokenWidth)
	}

	b := prog.NewBuilder(spec.Pass)
	build(b)
	program, err := b.Build()
	if err != nil {
		return nil, err
	}

	m := mem.New()
	var tracker *core.TokenTracker
	var shadowMap *shadow.Map
	var engine *alloc.Engine

	switch spec.Pass.Flavour {
	case rt.REST:
		reg, err := core.NewTokenRegister(spec.Width, spec.Mode, rand.New(rand.NewSource(spec.Seed+1)))
		if err != nil {
			return nil, err
		}
		tracker = core.NewTokenTracker(reg, m)
		engine, err = alloc.NewREST(tracker)
		if err != nil {
			return nil, err
		}
	case rt.ASan:
		shadowMap = shadow.New(m)
		engine, err = alloc.NewASan(shadowMap)
		if err != nil {
			return nil, err
		}
	case rt.PerfectHW:
		engine, err = alloc.NewPerfectHW()
		if err != nil {
			return nil, err
		}
	default:
		engine, err = alloc.NewLibc()
		if err != nil {
			return nil, err
		}
	}

	if spec.QuarantineCap != nil {
		engine.SetQuarantineCap(*spec.QuarantineCap)
	}
	if spec.RedzoneBytes != nil {
		engine.SetRedzone(*spec.RedzoneBytes)
	}
	if spec.RandomizeHeap != nil {
		engine.RandomizeLayout(*spec.RandomizeHeap, 7)
	}
	runtime := rt.New(spec.Pass.Flavour, engine, shadowMap)
	if spec.InterceptLibc != nil {
		runtime.InterceptLibc = *spec.InterceptLibc
	}
	// Probe constructors are nil-safe: a nil registry yields nil probe
	// sets, and every hook site degrades to one nil check. The functional
	// layers publish to funcObs (== Obs unless the caller split the planes).
	engine.SetProbes(alloc.NewProbes(spec.funcObs()))

	mach, err := sim.New(sim.Config{
		Mem:             m,
		Tracker:         tracker,
		Runtime:         runtime,
		MaxInstructions: spec.MaxInstructions,
		Deadline:        spec.Deadline,
		Probes:          sim.NewProbes(spec.funcObs()),
		Engine:          spec.Engine,
	}, program.Instrs, program.Entry)
	if err != nil {
		return nil, err
	}

	hcfg := cache.DefaultHierConfig()
	if spec.Hier != nil {
		hcfg = *spec.Hier
	}
	var tokens cache.TokenSource
	if tracker != nil {
		tokens = tracker
	}
	hier, err := cache.NewHierarchy(hcfg, tokens)
	if err != nil {
		return nil, err
	}

	ccfg := cpu.DefaultConfig()
	if spec.CPU != nil {
		ccfg = *spec.CPU
	}
	ccfg.Mode = spec.Mode
	pred := bpred.New(bpred.Config{})

	w := &World{
		Spec:    spec,
		Program: program,
		Machine: mach,
		Runtime: runtime,
		Tracker: tracker,
		Shadow:  shadowMap,
		Alloc:   engine,
		Hier:    hier,
		Pred:    pred,
	}
	if spec.InOrder {
		w.InOrder = cpu.NewInOrder(ccfg, hier, pred)
		w.InOrder.SetProbes(cpu.NewProbes(spec.Obs))
	} else {
		w.Pipeline = cpu.New(ccfg, hier, pred)
		w.Pipeline.SetProbes(cpu.NewProbes(spec.Obs))
	}
	return w, nil
}

// FlushObs publishes the world's end-of-run observability state into
// Spec.Obs: the machine's architectural counters, every cache level's
// statistics and the allocator totals. Idempotent and nil-safe; RunTimed
// and RunFunctional call it, so callers only need it for worlds they drive
// by hand.
func (w *World) FlushObs() {
	if (w.Spec.Obs == nil && w.Spec.FuncObs == nil) || w.obsFlushed {
		return
	}
	w.obsFlushed = true
	// Replay worlds have no functional half (Machine/Alloc are nil): their
	// functional metrics are merged in from the captured run instead.
	if w.Machine != nil {
		w.Machine.FlushProbes()
	}
	if w.Alloc != nil {
		w.Alloc.FlushProbes()
	}
	if w.Spec.Obs != nil {
		cache.RecordHierarchy(w.Spec.Obs, w.Hier)
	}
}

// outcome derives the Outcome from the machine's final state.
func (w *World) outcome() Outcome {
	return Outcome{
		Checksum:  w.Machine.Checksum(),
		Exception: w.Machine.Exception(),
		Violation: w.Machine.SWViolation(),
		Err:       w.Machine.Err(),
	}
}

// RunFunctional executes the program architecturally only (no timing) and
// returns the outcome.
func (w *World) RunFunctional() Outcome {
	w.Machine.Run()
	w.FlushObs()
	return w.outcome()
}

// RunTimed streams the program through the timing model (the functional
// machine is pulled lazily as the trace source) and returns timing stats
// plus the architectural outcome. The pipeline's exception carries mode-
// resolved precision and detection lag, so it supersedes the architectural
// exception's precision fields.
func (w *World) RunTimed() (*cpu.Stats, Outcome) {
	return w.runTimed(w.Machine)
}

// RunTimedCapture is RunTimed with the streamed trace teed into rec, so a
// later ReplayTimed on a world built by BuildReplay can reproduce this run's
// timing without the functional machine.
func (w *World) RunTimedCapture(rec *trace.Recorder) (*cpu.Stats, Outcome) {
	return w.runTimed(trace.Tee(w.Machine, rec))
}

func (w *World) runTimed(r trace.Reader) (*cpu.Stats, Outcome) {
	var stats *cpu.Stats
	if w.InOrder != nil {
		stats = w.InOrder.Run(r)
	} else {
		stats = w.Pipeline.Run(r)
	}
	w.FlushObs()
	out := w.outcome()
	if stats.Exception != nil && out.Exception != nil {
		out.Exception.Precise = stats.Exception.Precise
		out.Exception.DetectLagCycles = stats.Exception.DetectLagCycles
	}
	return stats, out
}

// BuildReplay assembles a timing-only world: the cache hierarchy, branch
// predictor and core of spec, with no program, functional machine, runtime
// or allocator behind them. tokens stands in for the token tracker as the
// L1-D fill-time detector's TokenSource (a trace.Replayer over a captured
// REST trace; nil for non-REST replays). Only the timing fields of spec are
// consulted: Pass/Seed/MaxInstructions/Deadline shape the functional run
// that produced the trace, not its replay.
func BuildReplay(spec Spec, tokens cache.TokenSource) (*World, error) {
	hcfg := cache.DefaultHierConfig()
	if spec.Hier != nil {
		hcfg = *spec.Hier
	}
	hier, err := cache.NewHierarchy(hcfg, tokens)
	if err != nil {
		return nil, err
	}
	ccfg := cpu.DefaultConfig()
	if spec.CPU != nil {
		ccfg = *spec.CPU
	}
	ccfg.Mode = spec.Mode
	w := &World{
		Spec: spec,
		Hier: hier,
		Pred: bpred.New(bpred.Config{}),
	}
	if spec.InOrder {
		w.InOrder = cpu.NewInOrder(ccfg, hier, w.Pred)
		w.InOrder.SetProbes(cpu.NewProbes(spec.Obs))
	} else {
		w.Pipeline = cpu.New(ccfg, hier, w.Pred)
		w.Pipeline.SetProbes(cpu.NewProbes(spec.Obs))
	}
	return w, nil
}

// ReplayTimed drives a BuildReplay world's timing model from a recorded
// trace and returns the timing stats plus the captured run's architectural
// outcome with this replay's mode-resolved precision fields. The replayed
// stats are bit-identical to the streamed run's when the timing
// configuration matches (and, for complete clean traces, under any timing
// configuration — the replay differential tests pin both).
func (w *World) ReplayTimed(r trace.Reader, captured Outcome) (*cpu.Stats, Outcome) {
	var stats *cpu.Stats
	if w.InOrder != nil {
		stats = w.InOrder.Run(r)
	} else {
		stats = w.Pipeline.Run(r)
	}
	w.FlushObs()
	// The replay is over; drop the hierarchy's reference to the token source
	// (the Replayer over the captured trace) so a retained replay result does
	// not pin the multi-megabyte trace for the rest of a sweep.
	w.Hier.ReleaseTokenSource()
	out := captured
	if out.Exception != nil {
		// Deep-copy before overriding precision: the captured outcome is
		// shared across replays and must stay immutable.
		exc := *out.Exception
		if stats.Exception != nil {
			exc.Precise = stats.Exception.Precise
			exc.DetectLagCycles = stats.Exception.DetectLagCycles
		}
		out.Exception = &exc
	}
	return stats, out
}
