package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The meter lines are golden-tested with an injected clock: the enriched
// fields (holes always shown, cache hit rate once lookups happen) are part
// of the operator-facing surface.
func TestProgressMeterGolden(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig8", 4)
	base := time.Unix(1700000000, 0)
	tick := 0
	p.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick-1) * time.Second)
	})

	stats := ProgressStats{}
	p.SetStats(func() ProgressStats { return stats })

	p.Observe(true) // 1s elapsed, no cache activity yet
	stats = ProgressStats{CacheHits: 3, CacheLookups: 4}
	p.Observe(false) // 2s elapsed, hole, cache field appears
	p.Finish()

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\r")
	want := []string{
		"",
		"fig8: 1/4 cells, 0 holes, elapsed 1s, eta 3s",
		"fig8: 2/4 cells, 1 holes, cache 75% hit (3/4), elapsed 2s, eta 2s",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("meter frame %d = %q, want %q (full: %q)", i, lines[i], w, buf.String())
		}
	}
}

func TestProgressMeterWithoutStats(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig7", 2)
	p.SetClock(func() time.Time { return time.Unix(1700000000, 0) })
	p.Observe(true)
	p.Finish()
	if got := buf.String(); strings.Contains(got, "cache") {
		t.Errorf("cache field rendered with no stats supplier: %q", got)
	}
	// Nil meter: everything is a no-op.
	var np *Progress
	np.SetClock(nil)
	np.SetStats(nil)
	np.Observe(true)
	np.Finish()
}
