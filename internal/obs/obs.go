// Package obs is the observability plane of the simulator stack: a
// dependency-free registry of counters, gauges and fixed-bucket histograms,
// plus the export surfaces restbench wires them to (Catapult trace files,
// live progress meters, expvar snapshots, build info).
//
// Design constraints, in order:
//
//  1. Determinism. A sweep records one Registry per grid cell; the harness
//     merges the cell registries in grid order after the workers drain, so
//     the aggregated metrics are byte-identical at any worker count — the
//     same contract the sweep engine's cycle matrices obey. Every merge
//     operation (counter addition, gauge maximum, bucket-wise histogram
//     addition) is commutative and associative, so even the map-ordered
//     walk inside Merge cannot perturb the final snapshot.
//  2. Zero cost when disabled. Every handle method no-ops on a nil
//     receiver, and a nil *Registry hands out nil handles, so instrumented
//     code paths hold a single pointer nil-check when observability is off.
//     The paired benchmark in bench_test.go pins this.
//  3. No goroutines, no locks in the hot path. A Registry is single-
//     goroutine by construction (one per simulation world); the concurrent
//     collectors (Trace, Progress, Live) carry their own mutexes.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count. All methods are safe
// on a nil receiver (the disabled fast path).
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge records a high-water mark: Set keeps the maximum of everything it
// has seen, which makes merging cells commutative (peaks across a sweep are
// the max of per-cell peaks). All methods are safe on a nil receiver.
type Gauge struct {
	v uint64
}

// Set raises the gauge to v if v exceeds the current high-water mark.
func (g *Gauge) Set(v uint64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the high-water mark (0 on nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket cumulative-bound histogram: bucket i counts
// observations <= bounds[i], with one implicit +inf bucket at the end.
// Bounds are fixed at registration, so merging across cells is bucket-wise
// addition. All methods are safe on a nil receiver.
type Histogram struct {
	bounds []uint64
	counts []uint64 // len(bounds)+1; last is +inf
	count  uint64
	sum    uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry is one world's (or one aggregated sweep's) metric namespace.
// Registration is idempotent: asking for an existing name returns the same
// handle. A Registry is not goroutine-safe — each simulation world owns its
// own, and aggregation happens after the worker pool has drained.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use. A nil
// registry returns a nil handle (which every method accepts).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named high-water gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// cumulative bucket bounds (ascending) on first use. Later calls return the
// existing handle; the bounds are fixed at first registration.
func (r *Registry) Histogram(name string, bounds ...uint64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]uint64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Merge folds other into r: counters add, gauges keep the maximum,
// histograms add bucket-wise. Histograms present on both sides must have
// identical bounds (they do by construction — every cell registers through
// the same probe constructors).
func (r *Registry) Merge(other *Registry) error {
	if r == nil || other == nil {
		return nil
	}
	for name, c := range other.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges {
		r.Gauge(name).Set(g.v)
	}
	for name, h := range other.hists {
		dst := r.Histogram(name, h.bounds...)
		if len(dst.bounds) != len(h.bounds) {
			return fmt.Errorf("obs: histogram %q bound mismatch: %v vs %v", name, dst.bounds, h.bounds)
		}
		for i, b := range h.bounds {
			if dst.bounds[i] != b {
				return fmt.Errorf("obs: histogram %q bound mismatch: %v vs %v", name, dst.bounds, h.bounds)
			}
		}
		for i, n := range h.counts {
			dst.counts[i] += n
		}
		dst.count += h.count
		dst.sum += h.sum
	}
	return nil
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the bucket's inclusive upper bound, "inf" for the last bucket.
	LE string `json:"le"`
	// Count is the number of observations <= LE (non-cumulative per bucket).
	Count uint64 `json:"count"`
}

// Metric is one snapshotted metric. Counters and gauges carry Value;
// histograms carry Count, Sum and Buckets.
type Metric struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"` // "counter", "gauge" or "histogram"
	Value   uint64   `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every metric sorted by name — the deterministic export
// order every renderer relies on. A nil registry snapshots empty.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: c.v})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: g.v})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Type: "histogram", Count: h.count, Sum: h.sum}
		for i, b := range h.bounds {
			m.Buckets = append(m.Buckets, Bucket{LE: fmt.Sprintf("%d", b), Count: h.counts[i]})
		}
		m.Buckets = append(m.Buckets, Bucket{LE: "inf", Count: h.counts[len(h.bounds)]})
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CSVRows renders metrics as "metric,type,field,value" rows (no header).
// Counters and gauges emit one row each; a histogram emits count, sum and
// one le_<bound> row per bucket.
func CSVRows(b *strings.Builder, prefix string, metrics []Metric) {
	for _, m := range metrics {
		switch m.Type {
		case "histogram":
			fmt.Fprintf(b, "%s%s,histogram,count,%d\n", prefix, m.Name, m.Count)
			fmt.Fprintf(b, "%s%s,histogram,sum,%d\n", prefix, m.Name, m.Sum)
			for _, bk := range m.Buckets {
				fmt.Fprintf(b, "%s%s,histogram,le_%s,%d\n", prefix, m.Name, bk.LE, bk.Count)
			}
		default:
			fmt.Fprintf(b, "%s%s,%s,value,%d\n", prefix, m.Name, m.Type, m.Value)
		}
	}
}
