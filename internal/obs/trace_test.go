package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceCatapultSchema(t *testing.T) {
	tr := NewTrace()
	base := time.Now()
	tr.Slice(0, "lbm/plain", "fig7", base, base.Add(3*time.Millisecond),
		map[string]any{"workload": "lbm", "config": "plain", "verdict": "completed", "instructions": 12345, "seed": 0})
	tr.Slice(1, "lbm/asan", "fig7", base.Add(time.Millisecond), base.Add(2*time.Millisecond), nil)
	tr.Slice(0, "xalanc/plain", "fig7", base.Add(4*time.Millisecond), base.Add(4*time.Millisecond), nil)

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCatapult(buf.Bytes()); err != nil {
		t.Fatalf("trace fails its own schema: %v\n%s", err, buf.String())
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 3 slices + 2 thread_name metadata events (tids 0 and 1).
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("want 5 events, got %d", len(doc.TraceEvents))
	}
	meta, slices := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event is not thread_name: %v", ev)
			}
		case "X":
			slices++
		}
	}
	if meta != 2 || slices != 3 {
		t.Errorf("want 2 metadata + 3 slices, got %d + %d", meta, slices)
	}
	if !strings.Contains(buf.String(), `"verdict": "completed"`) {
		t.Error("slice args not serialized")
	}
}

func TestValidateCatapultRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{}`,
		`{"traceEvents":[{"ph":"X","ts":0,"dur":1}]}`,                             // missing name/pid/tid
		`{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":0,"ts":0}]}`,          // missing dur
		`{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":0,"ts":0,"dur":0}]}`,  // zero dur
		`{"traceEvents":[{"name":"a","ph":"Q","pid":1,"tid":0,"ts":0,"dur":1}]}`,  // unknown phase
		`{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":0,"ts":-5,"dur":1}]}`, // negative ts
	} {
		if err := ValidateCatapult([]byte(bad)); err == nil {
			t.Errorf("ValidateCatapult accepted %q", bad)
		}
	}
	if err := ValidateCatapult([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty trace must validate: %v", err)
	}
}

func TestTraceConcurrentSlices(t *testing.T) {
	tr := NewTrace()
	base := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Slice(w, "cell", "sweep", base, base.Add(time.Millisecond), nil)
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCatapult(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestProgressMeter(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig7", 4)
	now := time.Now()
	p.now = func() time.Time { return now.Add(2 * time.Second) }
	p.start = now
	p.Observe(true)
	p.Observe(false)
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "fig7: 2/4 cells") {
		t.Errorf("meter missing progress: %q", out)
	}
	if !strings.Contains(out, "1 holes") {
		t.Errorf("meter missing holes: %q", out)
	}
	if !strings.Contains(out, "eta") {
		t.Errorf("meter missing eta: %q", out)
	}
	// Nil meter must be a silent no-op.
	var np *Progress
	np.Observe(true)
	np.Finish()
}

func TestLiveVars(t *testing.T) {
	l := &Live{}
	l.AddTotal(10)
	l.ObserveCell(true)
	l.ObserveCell(false)
	r := NewRegistry()
	r.Counter("sim.user_instructions").Add(42)
	l.SetMetrics(r.Snapshot())
	vars, ok := l.Vars().(map[string]any)
	if !ok {
		t.Fatalf("Vars() is not a map: %T", l.Vars())
	}
	if vars["cells_total"] != 10 || vars["cells_done"] != 2 || vars["cells_holes"] != 1 {
		t.Errorf("progress vars wrong: %v", vars)
	}
	if _, ok := vars["build"].(Build); !ok {
		t.Errorf("build identity missing: %v", vars["build"])
	}
	ms, ok := vars["metrics"].([]Metric)
	if !ok || len(ms) != 1 || ms[0].Value != 42 {
		t.Errorf("metrics snapshot wrong: %v", vars["metrics"])
	}
}
