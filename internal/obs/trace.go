package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace collects a Chrome/Catapult trace ("chrome://tracing" / Perfetto
// JSON object format): one process, one track (tid) per sweep worker, one
// complete ("X") slice per sweep cell. Slice timestamps are wall clock and
// therefore not deterministic — the trace is a profiling surface, not a
// report surface; determinism is the metrics registry's job.
//
// Trace is safe for concurrent use: the sweep engine's completion stream
// calls Slice from worker goroutines.
type Trace struct {
	mu     sync.Mutex
	base   time.Time
	events []traceEvent
	named  map[int]bool
}

// traceEvent is one Catapult event. Field names and the enclosing
// {"traceEvents": [...]} wrapper follow the Trace Event Format spec.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTrace starts an empty trace; slice timestamps are relative to now.
func NewTrace() *Trace {
	return &Trace{base: time.Now(), named: make(map[int]bool)}
}

// Slice records one complete slice on track tid. Nil-safe, so callers can
// hold a nil *Trace when tracing is off.
func (t *Trace) Slice(tid int, name, cat string, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.named[tid] {
		t.named[tid] = true
		t.events = append(t.events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": workerName(tid)},
		})
	}
	ts := float64(start.Sub(t.base).Microseconds())
	dur := float64(end.Sub(start).Microseconds())
	if dur < 1 {
		dur = 1 // chrome://tracing drops zero-duration X slices
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: 1, TID: tid, Args: args,
	})
}

func workerName(tid int) string {
	return "worker " + itoa(tid)
}

// itoa avoids strconv for this one two-digit use.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// WriteTo emits the trace as a Catapult JSON object. Events are sorted by
// (timestamp, tid) so repeated writes of the same trace are stable.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].TID < events[j].TID
	})
	if events == nil {
		events = []traceEvent{}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	raw, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return 0, err
	}
	raw = append(raw, '\n')
	n, err := w.Write(raw)
	return int64(n), err
}

// ValidateCatapult checks that raw parses as a Catapult JSON object with a
// traceEvents array whose entries carry the fields chrome://tracing needs:
// every event has name/ph/pid/tid, and every "X" (complete) slice also has
// ts and a positive dur. The schema acceptance test and the restbench
// integration test share this checker.
func ValidateCatapult(raw []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("obs: traceEvents[%d] missing %q: %v", i, key, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("obs: traceEvents[%d]: X slice needs a non-negative ts", i)
			}
			dur, ok := ev["dur"].(float64)
			if !ok || dur <= 0 {
				return fmt.Errorf("obs: traceEvents[%d]: X slice needs a positive dur", i)
			}
		case "M":
			// Metadata events carry their payload in args.
		default:
			return fmt.Errorf("obs: traceEvents[%d]: unexpected phase %q", i, ph)
		}
	}
	return nil
}
