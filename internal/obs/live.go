package obs

import "sync"

// Live is the mutable state behind restbench's expvar endpoint: overall
// cell progress plus the latest aggregated metric snapshot. It is updated
// from the sweep completion stream (worker goroutines) and read by HTTP
// handlers, so every access is mutex-protected.
type Live struct {
	mu      sync.Mutex
	total   int
	done    int
	holes   int
	metrics []Metric
}

// AddTotal registers n more expected cells (called once per sweep).
// Nil-safe.
func (l *Live) AddTotal(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.total += n
	l.mu.Unlock()
}

// ObserveCell records one finished cell; ok=false counts a hole. Nil-safe.
func (l *Live) ObserveCell(ok bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.done++
	if !ok {
		l.holes++
	}
	l.mu.Unlock()
}

// SetMetrics publishes the latest aggregated registry snapshot. Nil-safe.
func (l *Live) SetMetrics(ms []Metric) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.metrics = ms
	l.mu.Unlock()
}

// Vars returns the expvar payload: progress counters, the build identity
// and the latest metric snapshot. The signature matches expvar.Func.
func (l *Live) Vars() any {
	l.mu.Lock()
	defer l.mu.Unlock()
	return map[string]any{
		"build":       ReadBuild(),
		"cells_total": l.total,
		"cells_done":  l.done,
		"cells_holes": l.holes,
		"metrics":     l.metrics,
	}
}
