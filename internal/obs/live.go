package obs

import "sync"

// Live is the mutable state behind restbench's expvar and OTLP endpoints:
// overall cell progress plus a continuously updated metric aggregate. It is
// updated from the sweep completion stream (worker goroutines) and read by
// HTTP handlers, so every access is mutex-protected.
//
// The aggregate has two tiers. While a sweep runs, finished cells' private
// registries are merged into a live registry as they complete — merge is
// commutative, so the snapshot depends only on which cells have finished,
// never on the order they did — and /debug/vars reflects them immediately.
// When the sweep finishes, SetMetrics publishes the authoritative
// grid-order aggregate, which supersedes the live tier.
type Live struct {
	mu      sync.Mutex
	total   int
	done    int
	holes   int
	agg     *Registry
	metrics []Metric // final grid-order snapshot (nil until SetMetrics)
}

// AddTotal registers n more expected cells (called once per sweep).
// Nil-safe.
func (l *Live) AddTotal(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.total += n
	l.mu.Unlock()
}

// ObserveCell records one finished cell; ok=false counts a hole. Nil-safe.
func (l *Live) ObserveCell(ok bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.done++
	if !ok {
		l.holes++
	}
	l.mu.Unlock()
}

// MergeObs folds one finished cell's private registry into the live
// aggregate. The registry must not be mutated after the call (finished
// cells' registries never are). Nil-safe on both sides.
func (l *Live) MergeObs(r *Registry) {
	if l == nil || r == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.agg == nil {
		l.agg = NewRegistry()
	}
	// A bound mismatch is impossible by construction (every cell registers
	// through the same probe constructors); the live tier is advisory, so a
	// failed merge degrades to a stale snapshot rather than an abort.
	_ = l.agg.Merge(r)
}

// SetMetrics publishes the authoritative aggregated registry snapshot
// (grid-order merged, at sweep end). It supersedes the live tier. Nil-safe.
func (l *Live) SetMetrics(ms []Metric) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.metrics = ms
	l.mu.Unlock()
}

// Snapshot returns the current metric view: the final grid-order aggregate
// once SetMetrics has published it, otherwise the live per-completion
// aggregate. Nil-safe (returns nil).
func (l *Live) Snapshot() []Metric {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.metrics != nil {
		return l.metrics
	}
	return l.agg.Snapshot()
}

// MergeInto folds the live aggregate into r (the per-completion tier only,
// not the final SetMetrics snapshot — callers that want one coherent
// registry add their own sweep-level series). Nil-safe on both sides.
func (l *Live) MergeInto(r *Registry) {
	if l == nil || r == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.agg != nil {
		_ = r.Merge(l.agg)
	}
}

// Progress reports the live cell counts. Nil-safe.
func (l *Live) Progress() (total, done, holes int) {
	if l == nil {
		return 0, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.done, l.holes
}

// Vars returns the expvar payload: progress counters, the build identity
// and the current metric snapshot. Because Snapshot reads the live
// aggregate until the final flush, /debug/vars reflects every completed
// cell mid-sweep, not just the last flush point. The signature matches
// expvar.Func.
func (l *Live) Vars() any {
	total, done, holes := l.Progress()
	return map[string]any{
		"build":       ReadBuild(),
		"cells_total": total,
		"cells_done":  done,
		"cells_holes": holes,
		"metrics":     l.Snapshot(),
	}
}
