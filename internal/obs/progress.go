package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressStats is the cache-activity summary an enriched meter line
// renders: Hits out of Lookups across whatever cache tiers the sweep has
// attached (in-memory trace cache, persistent result/trace stores).
type ProgressStats struct {
	CacheHits    uint64
	CacheLookups uint64
}

// Progress renders a live cells-done/holes/ETA meter for one sweep. It is
// fed from the sweep engine's completion stream (worker goroutines), so it
// carries its own mutex. The meter writes to stderr in restbench — stdout
// must stay byte-identical across -j values, and a live meter is inherently
// timing-dependent.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	holes int
	start time.Time
	now   func() time.Time     // injectable clock for tests
	stats func() ProgressStats // optional cache-activity supplier
}

// NewProgress starts a meter for a sweep of total cells, writing to w.
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{w: w, label: label, total: total, start: time.Now(), now: time.Now}
}

// SetClock replaces the meter's wall clock (the injected time also becomes
// the start instant). For deterministic golden tests. Nil-safe.
func (p *Progress) SetClock(now func() time.Time) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.now = now
	p.start = now()
	p.mu.Unlock()
}

// SetStats attaches a cache-activity supplier; each repaint queries it and
// appends a "cache N% hit" field when any lookups have happened. Nil-safe.
func (p *Progress) SetStats(f func() ProgressStats) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.stats = f
	p.mu.Unlock()
}

// Observe records one finished cell; ok=false counts it as a hole
// (failed or skipped). Nil-safe for the disabled path.
func (p *Progress) Observe(ok bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if !ok {
		p.holes++
	}
	p.render()
}

// render paints the meter line; callers hold p.mu.
func (p *Progress) render() {
	elapsed := p.now().Sub(p.start)
	line := fmt.Sprintf("\r%s: %d/%d cells, %d holes", p.label, p.done, p.total, p.holes)
	if p.stats != nil {
		if s := p.stats(); s.CacheLookups > 0 {
			line += fmt.Sprintf(", cache %d%% hit (%d/%d)",
				100*s.CacheHits/s.CacheLookups, s.CacheHits, s.CacheLookups)
		}
	}
	line += fmt.Sprintf(", elapsed %s", elapsed.Round(100*time.Millisecond))
	if p.done > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(", eta %s", eta.Round(100*time.Millisecond))
	}
	fmt.Fprint(p.w, line)
}

// Finish terminates the meter line. Nil-safe.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintln(p.w)
}
