package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a live cells-done/holes/ETA meter for one sweep. It is
// fed from the sweep engine's completion stream (worker goroutines), so it
// carries its own mutex. The meter writes to stderr in restbench — stdout
// must stay byte-identical across -j values, and a live meter is inherently
// timing-dependent.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	holes int
	start time.Time
	now   func() time.Time // injectable clock for tests
}

// NewProgress starts a meter for a sweep of total cells, writing to w.
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{w: w, label: label, total: total, start: time.Now(), now: time.Now}
}

// Observe records one finished cell; ok=false counts it as a hole
// (failed or skipped). Nil-safe for the disabled path.
func (p *Progress) Observe(ok bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if !ok {
		p.holes++
	}
	p.render()
}

// render paints the meter line; callers hold p.mu.
func (p *Progress) render() {
	elapsed := p.now().Sub(p.start)
	line := fmt.Sprintf("\r%s: %d/%d cells", p.label, p.done, p.total)
	if p.holes > 0 {
		line += fmt.Sprintf(", %d holes", p.holes)
	}
	line += fmt.Sprintf(", elapsed %s", elapsed.Round(100*time.Millisecond))
	if p.done > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(", eta %s", eta.Round(100*time.Millisecond))
	}
	fmt.Fprint(p.w, line)
}

// Finish terminates the meter line. Nil-safe.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintln(p.w)
}
