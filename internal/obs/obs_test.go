package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 1, 2)
	c.Inc()
	c.Add(7)
	g.Set(9)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must observe nothing")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry must snapshot empty")
	}
	if err := r.Merge(NewRegistry()); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter registration not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Error("gauge registration not idempotent")
	}
	if r.Histogram("c", 1, 2) != r.Histogram("c", 1, 2) {
		t.Error("histogram registration not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("occ", 4, 16, 64)
	for _, v := range []uint64{0, 4, 5, 16, 17, 64, 65, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("want 1 metric, got %d", len(snap))
	}
	m := snap[0]
	if m.Count != 8 || m.Sum != 0+4+5+16+17+64+65+1000 {
		t.Errorf("count/sum wrong: %+v", m)
	}
	want := []Bucket{{"4", 2}, {"16", 2}, {"64", 2}, {"inf", 2}}
	if !reflect.DeepEqual(m.Buckets, want) {
		t.Errorf("buckets = %v, want %v", m.Buckets, want)
	}
}

func TestGaugeKeepsHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak")
	g.Set(10)
	g.Set(3)
	g.Set(12)
	g.Set(7)
	if g.Value() != 12 {
		t.Errorf("gauge = %d, want 12", g.Value())
	}
}

// TestMergeIsOrderInsensitive pins the determinism argument: merging cell
// registries in any order yields the same snapshot, because counters add,
// gauges max and histograms add bucket-wise.
func TestMergeIsOrderInsensitive(t *testing.T) {
	mkCell := func(n uint64) *Registry {
		r := NewRegistry()
		r.Counter("c").Add(n)
		r.Gauge("g").Set(n * 10)
		h := r.Histogram("h", 2, 5)
		h.Observe(n)
		h.Observe(n + 3)
		return r
	}
	cells := []*Registry{mkCell(1), mkCell(2), mkCell(3), mkCell(4)}

	forward := NewRegistry()
	for _, c := range cells {
		if err := forward.Merge(c); err != nil {
			t.Fatal(err)
		}
	}
	backward := NewRegistry()
	for i := len(cells) - 1; i >= 0; i-- {
		if err := backward.Merge(cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(forward.Snapshot(), backward.Snapshot()) {
		t.Errorf("merge order changed the snapshot:\n%v\n%v",
			forward.Snapshot(), backward.Snapshot())
	}
	if got := forward.Counter("c").Value(); got != 10 {
		t.Errorf("merged counter = %d, want 10", got)
	}
	if got := forward.Gauge("g").Value(); got != 40 {
		t.Errorf("merged gauge = %d, want 40", got)
	}
	if got := forward.Histogram("h").Count(); got != 8 {
		t.Errorf("merged histogram count = %d, want 8", got)
	}
}

func TestMergeRejectsBoundMismatch(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", 1, 2)
	b := NewRegistry()
	b.Histogram("h", 1, 3).Observe(1)
	if err := a.Merge(b); err == nil {
		t.Error("merge of mismatched histogram bounds must fail")
	}
}

func TestSnapshotSortedAndCSVStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Add(2)
	r.Gauge("m.middle").Set(5)
	r.Histogram("b.hist", 10).Observe(4)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
	var b strings.Builder
	CSVRows(&b, "pfx,", snap)
	want := "pfx,a.first,counter,value,2\n" +
		"pfx,b.hist,histogram,count,1\n" +
		"pfx,b.hist,histogram,sum,4\n" +
		"pfx,b.hist,histogram,le_10,1\n" +
		"pfx,b.hist,histogram,le_inf,0\n" +
		"pfx,m.middle,gauge,value,5\n" +
		"pfx,z.last,counter,value,1\n"
	if b.String() != want {
		t.Errorf("CSV rows:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestBuildString(t *testing.T) {
	b := ReadBuild()
	if b.String() == "" {
		t.Error("build string must never be empty")
	}
	if b.Version == "" {
		t.Error("version must default to (devel)")
	}
}
