package obs

import "testing"

// Regression for the flush-point staleness bug: /debug/vars (Live.Vars) must
// reflect cells merged mid-sweep, not only the final SetMetrics flush.
func TestLiveVarsReflectMidSweepMerges(t *testing.T) {
	l := &Live{}
	l.AddTotal(4)

	cell := NewRegistry()
	cell.Counter("cpu.cycles").Add(100)
	l.ObserveCell(true)
	l.MergeObs(cell)

	vars := l.Vars().(map[string]any)
	ms, ok := vars["metrics"].([]Metric)
	if !ok || len(ms) != 1 || ms[0].Name != "cpu.cycles" || ms[0].Value != 100 {
		t.Fatalf("mid-sweep Vars() missing merged cell registry: %v", vars["metrics"])
	}

	// A second cell accumulates (merge is commutative addition for counters).
	cell2 := NewRegistry()
	cell2.Counter("cpu.cycles").Add(50)
	l.ObserveCell(true)
	l.MergeObs(cell2)
	if ms := l.Snapshot(); len(ms) != 1 || ms[0].Value != 150 {
		t.Fatalf("live aggregate after two cells: %v", ms)
	}

	// The final flush supersedes the live tier.
	final := NewRegistry()
	final.Counter("cpu.cycles").Add(150)
	final.Counter("harness.cells_ok").Add(2)
	l.SetMetrics(final.Snapshot())
	if ms := l.Snapshot(); len(ms) != 2 {
		t.Fatalf("final snapshot not published: %v", ms)
	}
}

func TestLiveMergeIntoFoldsOnlyLiveTier(t *testing.T) {
	l := &Live{}
	cell := NewRegistry()
	cell.Counter("cpu.cycles").Add(7)
	l.MergeObs(cell)

	// The final tier must NOT leak through MergeInto, or exporter snapshots
	// would double-count the sweep-level series they add themselves.
	final := NewRegistry()
	final.Counter("harness.cells_ok").Add(1)
	l.SetMetrics(final.Snapshot())

	out := NewRegistry()
	out.Counter("harness.live.cells_done").Add(1)
	l.MergeInto(out)
	snap := out.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("MergeInto produced %d series, want 2: %v", len(snap), snap)
	}
	for _, m := range snap {
		if m.Name == "harness.cells_ok" {
			t.Fatalf("final tier leaked through MergeInto: %v", snap)
		}
	}

	// Nil receivers and nil registries are no-ops.
	var nl *Live
	nl.MergeObs(cell)
	nl.MergeInto(out)
	nl.ObserveCell(true)
	if tot, done, holes := nl.Progress(); tot+done+holes != 0 {
		t.Errorf("nil Live has progress")
	}
	l.MergeObs(nil)
	l.MergeInto(nil)
}
