package obs

import (
	"fmt"
	"runtime/debug"
)

// Build identifies the binary: module version plus the VCS state baked in
// by the Go toolchain. restbench -version prints it and the expvar endpoint
// exposes it, so a long sweep's profile or metrics dump can always be tied
// back to the exact commit that produced it.
type Build struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// ReadBuild extracts build identity from debug.ReadBuildInfo. Fields the
// toolchain did not stamp (e.g. `go run` without VCS metadata) stay empty.
func ReadBuild() Build {
	b := Build{Version: "(devel)"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the build identity as one -version line.
func (b Build) String() string {
	s := fmt.Sprintf("%s %s (%s)", b.Module, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Modified {
			s += "+dirty"
		}
	}
	return s
}
