package otlp

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rest/internal/obs"
)

func testSource(bus *Bus) *Source {
	return &Source{
		Service:  "restbench-test",
		Snapshot: func() []obs.Metric { return sampleRegistry().Snapshot() },
		Bus:      bus,
		Start:    t0,
		Now:      func() time.Time { return t1 },
		Interval: time.Hour, // keep periodic pushes out of the way
	}
}

func newTestServer(t *testing.T, bus *Bus) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	testSource(bus).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, NewBus())
	resp, err := http.Get(srv.URL + "/otlp/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateDump([]byte(body.String())); err != nil || n != 1 {
		t.Errorf("snapshot invalid: n=%d err=%v\n%s", n, err, body.String())
	}
	if !strings.Contains(body.String(), "rest.sim.cpu.cycles") {
		t.Errorf("snapshot missing semantic metric name:\n%s", body.String())
	}
}

// lineChan pumps the stream's non-empty lines onto a channel so tests can
// read with a deadline. One pump per connection: a second reader on the same
// bufio.Reader would steal lines.
func lineChan(r *bufio.Reader) <-chan string {
	out := make(chan string, 64)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if line = strings.TrimSpace(line); line != "" {
				out <- line
			}
			if err != nil {
				close(out)
				return
			}
		}
	}()
	return out
}

// readLines reads n framed lines from the pump with a deadline.
func readLines(t *testing.T, out <-chan string, n int) []string {
	t.Helper()
	var lines []string
	for len(lines) < n {
		select {
		case line, ok := <-out:
			if !ok {
				t.Fatalf("stream closed after %d lines, want %d", len(lines), n)
			}
			lines = append(lines, line)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d lines, want %d", len(lines), n)
		}
	}
	return lines
}

func TestStreamNDJSON(t *testing.T) {
	bus := NewBus()
	srv := newTestServer(t, bus)
	resp, err := http.Get(srv.URL + "/otlp/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := lineChan(bufio.NewReader(resp.Body))

	// First line is always a metrics snapshot.
	first := readLines(t, lines, 1)[0]
	if err := ValidateMetrics([]byte(first)); err != nil {
		t.Fatalf("first stream line is not a metrics doc: %v", err)
	}

	// Published spans arrive on the live feed. Wait for the subscriber to
	// attach before publishing — Subscribe only sees later lines.
	deadline := time.Now().Add(5 * time.Second)
	for bus.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	span := Line(EncodeSpans([]CellSpan{{
		Sweep: "fig7", Index: 3, Total: 9, Workload: "lbm", Config: "plain",
		Start: t0, End: t1, Verdict: "ok", Source: "stream",
	}}, ServiceResource("restbench-test")))
	bus.Publish(span)
	got := readLines(t, lines, 1)[0]
	if err := ValidateSpans([]byte(got)); err != nil {
		t.Fatalf("streamed span line invalid: %v\n%s", err, got)
	}
	if !strings.Contains(got, "rest.cell lbm/plain") {
		t.Errorf("streamed line is not the published span: %s", got)
	}
}

func TestStreamSSEFraming(t *testing.T) {
	bus := NewBus()
	srv := newTestServer(t, bus)
	resp, err := http.Get(srv.URL + "/otlp/stream?sse=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	first := readLines(t, lineChan(bufio.NewReader(resp.Body)), 1)[0]
	if !strings.HasPrefix(first, "data: ") {
		t.Fatalf("SSE line missing data: framing: %q", first)
	}
	if err := ValidateMetrics([]byte(strings.TrimPrefix(first, "data: "))); err != nil {
		t.Errorf("SSE payload invalid: %v", err)
	}
	if n, err := ValidateDump([]byte(first + "\n")); err != nil || n != 1 {
		t.Errorf("ValidateDump on SSE capture: n=%d err=%v", n, err)
	}
}

func TestStreamSubscriberDetaches(t *testing.T) {
	bus := NewBus()
	srv := newTestServer(t, bus)
	resp, err := http.Get(srv.URL + "/otlp/stream")
	if err != nil {
		t.Fatal(err)
	}
	readLines(t, lineChan(bufio.NewReader(resp.Body)), 1)
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for bus.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber still attached after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}
