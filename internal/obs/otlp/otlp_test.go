package otlp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rest/internal/obs"
)

var (
	t0 = time.Unix(1700000000, 0).UTC()
	t1 = time.Unix(1700000123, 456789000).UTC()
)

func sampleRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("cpu.cycles").Add(1234)
	r.Counter("harness.trace_cache.hits").Add(7)
	r.Gauge("sim.heap_peak").Set(4096)
	h := r.Histogram("alloc.sizes", 16, 64, 256)
	h.Observe(10)
	h.Observe(100)
	h.Observe(5000)
	return r
}

func TestSemanticNames(t *testing.T) {
	cases := map[string]string{
		"cpu.cycles":                   "rest.sim.cpu.cycles",
		"cache.l1d.misses":             "rest.sim.cache.l1d.misses",
		"alloc.sizes":                  "rest.sim.alloc.sizes",
		"sim.heap_peak":                "rest.sim.heap_peak",
		"sim.blockcache.hits":          "rest.sim.blockcache.hits",
		"harness.trace_cache.hits":     "rest.cache.trace.hits",
		"harness.diskcache.trace_hits": "rest.cache.disk.trace_hits",
		"harness.live.cells_done":      "rest.sweep.live.cells_done",
		"harness.shard.index":          "rest.sweep.shard.index",
		"harness.elastic.steals":       "rest.sweep.elastic.steals",
		"harness.elastic.lease_lost":   "rest.sweep.elastic.lease_lost",
		"persist.breaker.trips":        "rest.persist.breaker.trips",
		"persist.lock.contended":       "rest.persist.lock.contended",
		"persist.httpbackend.gets":     "rest.persist.http.gets",
		"fault.detected":               "rest.fault.detected",
		"unmapped.thing":               "rest.unmapped.thing",
	}
	for in, want := range cases {
		if got := SemanticName(in); got != want {
			t.Errorf("SemanticName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEncodeMetricsValidatesAndIsDeterministic(t *testing.T) {
	res := ServiceResource("restbench-test")
	doc := EncodeMetrics(sampleRegistry().Snapshot(), res, t0, t1)
	line := Line(doc)
	if err := ValidateMetrics(line); err != nil {
		t.Fatalf("encoded metrics fail validation: %v", err)
	}
	if !bytes.Equal(line, Line(EncodeMetrics(sampleRegistry().Snapshot(), res, t0, t1))) {
		t.Errorf("same snapshot + clock encoded to different bytes")
	}

	// Spot-check the wire shape a collector sees.
	var raw map[string]any
	if err := json.Unmarshal(line, &raw); err != nil {
		t.Fatal(err)
	}
	s := string(line)
	for _, want := range []string{
		`"name":"rest.sim.cpu.cycles"`, `"isMonotonic":true`,
		`"name":"rest.cache.trace.hits"`,
		`"name":"rest.sim.heap_peak"`, `"gauge"`,
		`"name":"rest.sim.alloc.sizes"`, `"explicitBounds":[16,64,256]`,
		`"bucketCounts":["1","0","1","1"]`,
		`"asInt":"1234"`, `"timeUnixNano":"1700000123456789000"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded metrics missing %s in:\n%s", want, s)
		}
	}
}

func TestEncodeSpansValidates(t *testing.T) {
	res := ServiceResource("restbench-test")
	cells := []CellSpan{
		{Sweep: "fig7", Worker: 2, Index: 5, Total: 40, Workload: "lbm", Config: "secure-full",
			Start: t0, End: t1, Verdict: "ok", Source: "replay", Instrs: 100, Cycles: 250},
		{Sweep: "fig7", Worker: 0, Index: 6, Total: 40, Workload: "mcf", Config: "plain",
			Start: t0, End: t1, Verdict: "hole", Reason: "cell timeout"},
	}
	line := Line(EncodeSpans(cells, res))
	if err := ValidateSpans(line); err != nil {
		t.Fatalf("encoded spans fail validation: %v", err)
	}
	s := string(line)
	for _, want := range []string{
		`"name":"rest.cell lbm/secure-full"`,
		`"rest.cell.source"`, `"replay"`,
		`"rest.cell.cycles"`, `"intValue":"250"`,
		`"code":1`, `"code":2`, `"message":"hole: cell timeout"`,
		TraceID("fig7"), SpanID("fig7", 5),
	} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded spans missing %s in:\n%s", want, s)
		}
	}
	if TraceID("fig7") == TraceID("fig8") {
		t.Errorf("trace ids must differ per sweep")
	}
	if SpanID("fig7", 5) == SpanID("fig7", 6) {
		t.Errorf("span ids must differ per cell")
	}
}

func TestValidatorsRejectMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		fn   func([]byte) error
		want string
	}{
		{"not json", "nope", ValidateMetrics, "not valid JSON"},
		{"no resourceMetrics", `{}`, ValidateMetrics, "no resourceMetrics"},
		{"unprefixed name", `{"resourceMetrics":[{"resource":{"attributes":[]},"scopeMetrics":[{"scope":{"name":"x"},"metrics":[{"name":"cpu.cycles","gauge":{"dataPoints":[{"timeUnixNano":"1","asInt":"2"}]}}]}]}]}`,
			ValidateMetrics, "outside the rest. namespace"},
		{"two variants", `{"resourceMetrics":[{"resource":{"attributes":[]},"scopeMetrics":[{"scope":{"name":"x"},"metrics":[{"name":"rest.a","gauge":{"dataPoints":[{"timeUnixNano":"1","asInt":"2"}]},"sum":{"dataPoints":[{"timeUnixNano":"1","asInt":"2"}],"aggregationTemporality":2,"isMonotonic":true}}]}]}]}`,
			ValidateMetrics, "instrument variants"},
		{"asInt not string", `{"resourceMetrics":[{"resource":{"attributes":[]},"scopeMetrics":[{"scope":{"name":"x"},"metrics":[{"name":"rest.a","gauge":{"dataPoints":[{"timeUnixNano":"1","asInt":2}]}}]}]}]}`,
			ValidateMetrics, "decimal string"},
		{"delta sum", `{"resourceMetrics":[{"resource":{"attributes":[]},"scopeMetrics":[{"scope":{"name":"x"},"metrics":[{"name":"rest.a","sum":{"dataPoints":[{"timeUnixNano":"1","asInt":"2"}],"aggregationTemporality":1,"isMonotonic":true}}]}]}]}`,
			ValidateMetrics, "cumulative"},
		{"bad bucket arity", `{"resourceMetrics":[{"resource":{"attributes":[]},"scopeMetrics":[{"scope":{"name":"x"},"metrics":[{"name":"rest.h","histogram":{"dataPoints":[{"timeUnixNano":"1","count":"1","bucketCounts":["1"],"explicitBounds":[16,64]}],"aggregationTemporality":2}}]}]}]}`,
			ValidateMetrics, "bounds+1"},
		{"no resourceSpans", `{}`, ValidateSpans, "no resourceSpans"},
		{"short traceId", `{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"spans":[{"name":"s","traceId":"abc","spanId":"0123456789abcdef","startTimeUnixNano":"1","endTimeUnixNano":"2"}]}]}]}`,
			ValidateSpans, "traceId"},
		{"end before start", `{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"spans":[{"name":"s","traceId":"0123456789abcdef0123456789abcdef","spanId":"0123456789abcdef","startTimeUnixNano":"5","endTimeUnixNano":"2"}]}]}]}`,
			ValidateSpans, "ends before it starts"},
	}
	for _, c := range cases {
		err := c.fn([]byte(c.raw))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestValidateDumpFormats(t *testing.T) {
	res := ServiceResource("restbench-test")
	metrics := Line(EncodeMetrics(sampleRegistry().Snapshot(), res, t0, t1))
	spans := Line(EncodeSpans([]CellSpan{{
		Sweep: "fig8", Index: 0, Total: 1, Workload: "lbm", Config: "plain",
		Start: t0, End: t1, Verdict: "ok", Source: "stream",
	}}, res))

	// Pretty-printed single document (the /otlp/metrics shape).
	pretty, err := json.MarshalIndent(EncodeMetrics(sampleRegistry().Snapshot(), res, t0, t1), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateDump(pretty); err != nil || n != 1 {
		t.Errorf("pretty document: n=%d err=%v", n, err)
	}
	// NDJSON stream dump.
	nd := append(append([]byte{}, metrics...), spans...)
	if n, err := ValidateDump(nd); err != nil || n != 2 {
		t.Errorf("ndjson dump: n=%d err=%v", n, err)
	}
	// SSE framing.
	sse := []byte("data: " + string(metrics) + "\ndata: " + string(spans) + "\n")
	if n, err := ValidateDump(sse); err != nil || n != 2 {
		t.Errorf("sse dump: n=%d err=%v", n, err)
	}
	// Garbage.
	if _, err := ValidateDump([]byte("hello\nworld\n")); err == nil {
		t.Errorf("garbage dump validated")
	}
	if _, err := ValidateDump(nil); err == nil {
		t.Errorf("empty dump validated")
	}
	// A dump with one broken line reports its line number.
	broken := append(append([]byte{}, metrics...),
		[]byte(`{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"spans":[{"name":""}]}]}]}`+"\n")...)
	if _, err := ValidateDump(broken); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("broken dump: %v", err)
	}
}
