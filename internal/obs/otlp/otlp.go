// Package otlp renders the observability plane's registry snapshots and
// cell-event stream in OTLP-compatible JSON — the OpenTelemetry protocol's
// canonical JSON encoding (protobuf JSON mapping: 64-bit integers and
// nanosecond timestamps as decimal strings) — so external collectors can
// scrape or stream a running sweep with no code changes in the observed
// process and no stdout contamination.
//
// The package follows the opentelemetry-go-instrumentation design point:
// telemetry is an export surface bolted onto the side of the process, never
// a participant in it. Nothing here is imported by the simulation or report
// paths; the byte-identical-report invariant cannot depend on whether an
// exporter is attached, because the exporter only ever reads.
//
// Three wire shapes are produced:
//
//   - MetricsDoc: one ExportMetricsServiceRequest-shaped document holding a
//     full registry snapshot (counters as monotonic cumulative sums, gauges
//     as gauges, histograms with explicit bounds).
//   - SpansDoc: one ExportTraceServiceRequest-shaped document holding
//     per-cell spans derived from the sweep engine's CellEvent stream
//     (start/end wall clock, worker, verdict, cache source, instruction and
//     cycle counts as attributes).
//   - The NDJSON/SSE stream served by Source: each line is one complete
//     MetricsDoc or SpansDoc, distinguished by its top-level key.
//
// Internal registry names are translated to semantic-convention-style
// names under the "rest." namespace by SemanticName; the mapping table is
// documented in EXPERIMENTS.md.
package otlp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rest/internal/obs"
)

// ScopeName identifies the instrumentation scope in every exported
// document; ScopeVersion tracks the wire layout this package emits.
const (
	ScopeName    = "rest/internal/obs/otlp"
	ScopeVersion = "v1"
)

// semanticPrefixes maps internal registry prefixes to exported semantic
// namespaces, longest (most specific) prefix first. Everything the
// simulator proper emits lives under rest.sim.*; the two artifact-cache
// tiers under rest.cache.*; the storage fault plane under rest.persist.*;
// sweep bookkeeping under rest.sweep.*.
var semanticPrefixes = []struct{ from, to string }{
	{"harness.trace_cache.", "rest.cache.trace."},
	{"harness.diskcache.", "rest.cache.disk."},
	// The generic harness. row below would map these identically; the
	// explicit row documents that rest.sweep.elastic.* is a stable,
	// collector-facing namespace (steal/lease/drain counters), not an
	// accident of the fallback.
	{"harness.elastic.", "rest.sweep.elastic."},
	{"harness.", "rest.sweep."},
	{"persist.httpbackend.", "rest.persist.http."},
	{"persist.", "rest.persist."},
	{"sim.blockcache.", "rest.sim.blockcache."},
	{"sim.", "rest.sim."},
	{"cpu.", "rest.sim.cpu."},
	{"cache.", "rest.sim.cache."},
	{"alloc.", "rest.sim.alloc."},
	{"fault.", "rest.fault."},
}

// SemanticName translates an internal registry name ("cpu.cycles",
// "harness.trace_cache.hits") to its exported semantic name
// ("rest.sim.cpu.cycles", "rest.cache.trace.hits"). Names with no mapped
// prefix are namespaced under "rest." verbatim, so every exported metric
// name starts with "rest." — the property ValidateMetrics enforces.
func SemanticName(name string) string {
	for _, p := range semanticPrefixes {
		if strings.HasPrefix(name, p.from) {
			return p.to + name[len(p.from):]
		}
	}
	return "rest." + name
}

// --- OTLP JSON document types (protobuf JSON mapping) ---

// KeyValue is one OTLP attribute.
type KeyValue struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue is the OTLP any-value union; exactly one field is set.
type AnyValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	// IntValue is a decimal string per the protobuf JSON mapping of int64.
	IntValue *string `json:"intValue,omitempty"`
}

// String builds a string attribute.
func String(key, v string) KeyValue {
	return KeyValue{Key: key, Value: AnyValue{StringValue: &v}}
}

// Int builds an int attribute (encoded as a decimal string on the wire).
func Int(key string, v uint64) KeyValue {
	s := strconv.FormatUint(v, 10)
	return KeyValue{Key: key, Value: AnyValue{IntValue: &s}}
}

// Resource identifies the producing process.
type Resource struct {
	Attributes []KeyValue `json:"attributes"`
}

// Scope is the OTLP instrumentation scope.
type Scope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// MetricsDoc is one ExportMetricsServiceRequest-shaped document.
type MetricsDoc struct {
	ResourceMetrics []ResourceMetrics `json:"resourceMetrics"`
}

// ResourceMetrics groups one resource's scoped metrics.
type ResourceMetrics struct {
	Resource     Resource       `json:"resource"`
	ScopeMetrics []ScopeMetrics `json:"scopeMetrics"`
}

// ScopeMetrics groups one scope's metrics.
type ScopeMetrics struct {
	Scope   Scope    `json:"scope"`
	Metrics []Metric `json:"metrics"`
}

// Metric is one exported metric; exactly one of Sum, Gauge, Histogram is
// set, mirroring the registry's three instrument kinds.
type Metric struct {
	Name      string     `json:"name"`
	Sum       *Sum       `json:"sum,omitempty"`
	Gauge     *Gauge     `json:"gauge,omitempty"`
	Histogram *Histogram `json:"histogram,omitempty"`
}

// CumulativeTemporality is AGGREGATION_TEMPORALITY_CUMULATIVE: every data
// point reports the total since the sweep started, which is exactly what
// the registry's commutative merge produces.
const CumulativeTemporality = 2

// Sum is a monotonic cumulative sum (a registry Counter).
type Sum struct {
	DataPoints             []NumberDataPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

// Gauge is a last-value instrument (a registry high-water Gauge).
type Gauge struct {
	DataPoints []NumberDataPoint `json:"dataPoints"`
}

// NumberDataPoint is one integer sample.
type NumberDataPoint struct {
	StartTimeUnixNano string `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string `json:"timeUnixNano"`
	// AsInt is a decimal string per the protobuf JSON mapping.
	AsInt string `json:"asInt"`
}

// Histogram is an explicit-bounds histogram (a registry Histogram).
type Histogram struct {
	DataPoints             []HistogramDataPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

// HistogramDataPoint carries the bucket counts; len(BucketCounts) ==
// len(ExplicitBounds)+1 with the final bucket unbounded, matching the
// registry's implicit +inf bucket.
type HistogramDataPoint struct {
	StartTimeUnixNano string    `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string    `json:"timeUnixNano"`
	Count             string    `json:"count"`
	Sum               float64   `json:"sum"`
	BucketCounts      []string  `json:"bucketCounts"`
	ExplicitBounds    []float64 `json:"explicitBounds"`
}

// SpansDoc is one ExportTraceServiceRequest-shaped document.
type SpansDoc struct {
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups one resource's scoped spans.
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// ScopeSpans groups one scope's spans.
type ScopeSpans struct {
	Scope Scope  `json:"scope"`
	Spans []Span `json:"spans"`
}

// SpanKindInternal is SPAN_KIND_INTERNAL.
const SpanKindInternal = 1

// Status codes per the OTLP trace spec.
const (
	StatusUnset = 0
	StatusOK    = 1
	StatusError = 2
)

// Span is one exported span.
type Span struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []KeyValue `json:"attributes,omitempty"`
	Status            *Status    `json:"status,omitempty"`
}

// Status is the span's terminal status.
type Status struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

// --- encoding ---

// ServiceResource builds the resource block every exported document
// carries: service.name plus the build identity.
func ServiceResource(serviceName string) Resource {
	return Resource{Attributes: []KeyValue{
		String("service.name", serviceName),
		String("service.version", obs.ReadBuild().String()),
	}}
}

func nanos(t time.Time) string {
	if t.IsZero() {
		return "0"
	}
	return strconv.FormatInt(t.UnixNano(), 10)
}

// EncodeMetrics renders a registry snapshot as one MetricsDoc. Metric names
// are translated through SemanticName; the snapshot's sorted order is
// preserved, so two identical snapshots encode to identical bytes given the
// same timestamps.
func EncodeMetrics(ms []obs.Metric, res Resource, start, now time.Time) *MetricsDoc {
	startNs, nowNs := nanos(start), nanos(now)
	out := make([]Metric, 0, len(ms))
	for _, m := range ms {
		em := Metric{Name: SemanticName(m.Name)}
		switch m.Type {
		case "counter":
			em.Sum = &Sum{
				DataPoints: []NumberDataPoint{{
					StartTimeUnixNano: startNs, TimeUnixNano: nowNs,
					AsInt: strconv.FormatUint(m.Value, 10),
				}},
				AggregationTemporality: CumulativeTemporality,
				IsMonotonic:            true,
			}
		case "gauge":
			em.Gauge = &Gauge{DataPoints: []NumberDataPoint{{
				StartTimeUnixNano: startNs, TimeUnixNano: nowNs,
				AsInt: strconv.FormatUint(m.Value, 10),
			}}}
		case "histogram":
			dp := HistogramDataPoint{
				StartTimeUnixNano: startNs, TimeUnixNano: nowNs,
				Count: strconv.FormatUint(m.Count, 10),
				Sum:   float64(m.Sum),
			}
			for _, b := range m.Buckets {
				dp.BucketCounts = append(dp.BucketCounts, strconv.FormatUint(b.Count, 10))
				if b.LE != "inf" {
					bound, _ := strconv.ParseFloat(b.LE, 64)
					dp.ExplicitBounds = append(dp.ExplicitBounds, bound)
				}
			}
			em.Histogram = &Histogram{
				DataPoints:             []HistogramDataPoint{dp},
				AggregationTemporality: CumulativeTemporality,
			}
		default:
			continue
		}
		out = append(out, em)
	}
	return &MetricsDoc{ResourceMetrics: []ResourceMetrics{{
		Resource:     res,
		ScopeMetrics: []ScopeMetrics{{Scope: Scope{Name: ScopeName, Version: ScopeVersion}, Metrics: out}},
	}}}
}

// CellSpan is the exporter-facing shape of one sweep cell's lifecycle — the
// sweep engine's CellEvent with the sweep name attached and the error
// already flattened to a verdict. It deliberately avoids importing the
// harness so the dependency points harness -> otlp, never back.
type CellSpan struct {
	// Sweep names the experiment ("fig7", "fig8", ...); it seeds the
	// deterministic trace id, so every cell of one sweep shares a trace.
	Sweep    string
	Worker   int
	Index    int
	Total    int
	Workload string
	Config   string
	Start    time.Time
	End      time.Time
	// Verdict is "ok", "hole" or "skipped".
	Verdict string
	// Reason carries a hole's one-line annotation (empty otherwise).
	Reason string
	// Source tags where the result came from ("stream", "capture",
	// "replay", "disk-replay", "result-store"; empty for failures).
	Source string
	Instrs uint64
	Cycles uint64
}

// TraceID derives the deterministic 16-byte trace id shared by every cell
// of one sweep.
func TraceID(sweep string) string {
	sum := sha256.Sum256([]byte("rest.sweep|" + sweep))
	return hex.EncodeToString(sum[:16])
}

// SpanID derives the deterministic 8-byte span id of one grid cell.
func SpanID(sweep string, index int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("rest.cell|%s|%d", sweep, index)))
	return hex.EncodeToString(sum[:8])
}

// EncodeSpans renders cell spans as one SpansDoc. Ids are deterministic
// functions of (sweep, grid index); timestamps and attributes are the
// event's wall-clock facts, which are explicitly outside the determinism
// contract.
func EncodeSpans(cells []CellSpan, res Resource) *SpansDoc {
	spans := make([]Span, 0, len(cells))
	for _, c := range cells {
		s := Span{
			TraceID:           TraceID(c.Sweep),
			SpanID:            SpanID(c.Sweep, c.Index),
			Name:              "rest.cell " + c.Workload + "/" + c.Config,
			Kind:              SpanKindInternal,
			StartTimeUnixNano: nanos(c.Start),
			EndTimeUnixNano:   nanos(c.End),
			Attributes: []KeyValue{
				String("rest.sweep", c.Sweep),
				String("rest.cell.workload", c.Workload),
				String("rest.cell.config", c.Config),
				Int("rest.cell.worker", uint64(c.Worker)),
				Int("rest.cell.index", uint64(c.Index)),
				Int("rest.cell.total", uint64(c.Total)),
				String("rest.cell.verdict", c.Verdict),
			},
		}
		if c.Source != "" {
			s.Attributes = append(s.Attributes, String("rest.cell.source", c.Source))
		}
		if c.Verdict == "ok" {
			s.Attributes = append(s.Attributes,
				Int("rest.cell.instrs", c.Instrs), Int("rest.cell.cycles", c.Cycles))
			s.Status = &Status{Code: StatusOK}
		} else {
			s.Status = &Status{Code: StatusError, Message: c.Verdict + ": " + c.Reason}
		}
		spans = append(spans, s)
	}
	return &SpansDoc{ResourceSpans: []ResourceSpans{{
		Resource:   res,
		ScopeSpans: []ScopeSpans{{Scope: Scope{Name: ScopeName, Version: ScopeVersion}, Spans: spans}},
	}}}
}

// Line marshals a document (MetricsDoc or SpansDoc) as one compact NDJSON
// line, trailing newline included.
func Line(doc any) []byte {
	raw, err := json.Marshal(doc)
	if err != nil {
		// Both document types marshal by construction; a failure here is a
		// programming error worth surfacing as a poison line rather than a
		// silent drop.
		raw = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return append(raw, '\n')
}
