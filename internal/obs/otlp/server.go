package otlp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"rest/internal/obs"
)

// Source is the HTTP export surface: a live metrics snapshot endpoint and a
// streaming feed, both read-only windows onto a running sweep.
//
//	GET /otlp/metrics            one OTLP metrics document (indented JSON)
//	GET /otlp/stream             NDJSON: one OTLP document per line — span
//	                             documents as cells finish, plus a metrics
//	                             document on connect and every Interval
//	GET /otlp/stream?sse=1       the same feed with SSE framing
//	GET /otlp/stream?interval=D  per-connection metrics push period
//
// Every handler reads through Snapshot and the Bus; nothing here can write
// into the sweep, so attaching any number of collectors cannot perturb the
// reports.
type Source struct {
	// Service names the resource ("restbench" in the CLI).
	Service string
	// Snapshot returns the current live metric snapshot (registry names;
	// the encoder translates them to semantic names).
	Snapshot func() []obs.Metric
	// Bus carries the exported span/metrics lines to stream subscribers.
	// Optional: with a nil Bus the stream serves only periodic snapshots.
	Bus *Bus
	// Start anchors every data point's startTimeUnixNano.
	Start time.Time
	// Now is the export clock (nil = time.Now); injected in tests so
	// encoded documents are byte-stable.
	Now func() time.Time
	// Interval is the default metrics push period on /otlp/stream
	// (0 = 1s). Clients may override per connection with ?interval=.
	Interval time.Duration
	// SubscriberBuffer bounds each stream subscriber's line buffer
	// (0 = DefaultSubscriberBuffer).
	SubscriberBuffer int
}

func (s *Source) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

func (s *Source) resource() Resource { return ServiceResource(s.Service) }

// metricsDoc builds the current snapshot document.
func (s *Source) metricsDoc() *MetricsDoc {
	var ms []obs.Metric
	if s.Snapshot != nil {
		ms = s.Snapshot()
	}
	return EncodeMetrics(ms, s.resource(), s.Start, s.now())
}

// Register mounts the export endpoints on mux.
func (s *Source) Register(mux *http.ServeMux) {
	mux.HandleFunc("/otlp/metrics", s.handleMetrics)
	mux.HandleFunc("/otlp/stream", s.handleStream)
}

func (s *Source) handleMetrics(w http.ResponseWriter, r *http.Request) {
	raw, err := json.MarshalIndent(s.metricsDoc(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(raw, '\n'))
}

// streamInterval resolves the metrics push period for one connection.
func (s *Source) streamInterval(r *http.Request) time.Duration {
	iv := s.Interval
	if iv <= 0 {
		iv = time.Second
	}
	if q := r.URL.Query().Get("interval"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d > 0 {
			iv = d
		}
	}
	if iv < 100*time.Millisecond {
		iv = 100 * time.Millisecond
	}
	return iv
}

func (s *Source) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "otlp: streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	sse := r.URL.Query().Get("sse") != ""
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeLine := func(line []byte) error {
		var err error
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n", line) // line keeps its own \n
		} else {
			_, err = w.Write(line)
		}
		flusher.Flush()
		return err
	}

	// Snapshot first, so a freshly attached collector (or restbench -watch)
	// has the full picture before the first delta arrives.
	if err := writeLine(Line(s.metricsDoc())); err != nil {
		return
	}

	var sub *Subscriber
	var lines <-chan []byte
	if s.Bus != nil {
		sub = s.Bus.Subscribe(s.SubscriberBuffer)
		defer s.Bus.Unsubscribe(sub)
		lines = sub.C()
	}
	ticker := time.NewTicker(s.streamInterval(r))
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case line, ok := <-lines:
			if !ok {
				return
			}
			if err := writeLine(line); err != nil {
				return
			}
		case <-ticker.C:
			if err := writeLine(Line(s.metricsDoc())); err != nil {
				return
			}
		}
	}
}
