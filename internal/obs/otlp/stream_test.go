package otlp

import (
	"fmt"
	"sync"
	"testing"
)

func drain(s *Subscriber) []string {
	var out []string
	for {
		select {
		case line, ok := <-s.C():
			if !ok {
				return out
			}
			out = append(out, string(line))
		default:
			return out
		}
	}
}

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	a := b.Subscribe(4)
	c := b.Subscribe(4)
	b.Publish([]byte("one"))
	b.Publish([]byte("two"))
	for _, s := range []*Subscriber{a, c} {
		got := drain(s)
		if len(got) != 2 || got[0] != "one" || got[1] != "two" {
			t.Errorf("subscriber got %v, want [one two]", got)
		}
		if s.Dropped() != 0 {
			t.Errorf("unexpected drops: %d", s.Dropped())
		}
	}
	if n := b.Subscribers(); n != 2 {
		t.Errorf("Subscribers() = %d, want 2", n)
	}
	if pub, drop := b.Counters(); pub != 2 || drop != 0 {
		t.Errorf("Counters() = %d, %d, want 2, 0", pub, drop)
	}
}

func TestBusDropsForFullSubscriberWithoutBlocking(t *testing.T) {
	b := NewBus()
	stalled := b.Subscribe(2) // never reads
	healthy := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish([]byte(fmt.Sprintf("line-%d", i))) // must not block
	}
	if got := len(drain(healthy)); got != 10 {
		t.Errorf("healthy subscriber got %d lines, want 10", got)
	}
	if stalled.Dropped() != 8 {
		t.Errorf("stalled subscriber dropped %d, want 8", stalled.Dropped())
	}
	if got := len(drain(stalled)); got != 2 {
		t.Errorf("stalled subscriber buffered %d lines, want 2", got)
	}
	if pub, drop := b.Counters(); pub != 10 || drop != 8 {
		t.Errorf("Counters() = %d, %d, want 10, 8", pub, drop)
	}
}

func TestBusUnsubscribeIdempotentAndNilSafe(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0) // default buffer
	b.Unsubscribe(s)
	b.Unsubscribe(s) // second call must not double-close
	if _, ok := <-s.C(); ok {
		t.Errorf("channel not closed after Unsubscribe")
	}
	b.Publish([]byte("after")) // no live subscribers; still counted
	if pub, _ := b.Counters(); pub != 1 {
		t.Errorf("published = %d, want 1", pub)
	}
	var nb *Bus
	nb.Publish([]byte("x")) // nil bus is a no-op
	if nb.Subscribers() != 0 {
		t.Errorf("nil bus has subscribers")
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish([]byte("x"))
			}
		}()
	}
	wg.Wait()
	if pub, drop := b.Counters(); pub != 800 || drop != 0 {
		t.Errorf("Counters() = %d, %d, want 800, 0", pub, drop)
	}
	if got := len(drain(sub)); got != 800 {
		t.Errorf("subscriber got %d lines, want 800", got)
	}
}
