package otlp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// The OTLP schema checkers, mirroring obs.ValidateCatapult: they parse the
// exported bytes back as untyped JSON and check the fields a collector
// needs, so an encoder regression can never ship a document this package
// itself would reject. The unit tests and the CI telemetry leg (via
// restbench -check-otlp) share these.

func checkUintString(doc string, v any, what string) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("otlp: %s: %s must be a decimal string, got %T", doc, what, v)
	}
	if _, err := strconv.ParseUint(s, 10, 64); err != nil {
		return fmt.Errorf("otlp: %s: %s %q is not a decimal uint64", doc, what, s)
	}
	return nil
}

func checkAttrs(doc string, v any, what string) error {
	attrs, ok := v.([]any)
	if !ok {
		return fmt.Errorf("otlp: %s: %s attributes must be an array", doc, what)
	}
	for i, a := range attrs {
		kv, ok := a.(map[string]any)
		if !ok {
			return fmt.Errorf("otlp: %s: %s attribute %d is not an object", doc, what, i)
		}
		key, _ := kv["key"].(string)
		if key == "" {
			return fmt.Errorf("otlp: %s: %s attribute %d has no key", doc, what, i)
		}
		val, ok := kv["value"].(map[string]any)
		if !ok || len(val) != 1 {
			return fmt.Errorf("otlp: %s: attribute %q needs exactly one value variant", doc, key)
		}
	}
	return nil
}

func checkDataPoints(name string, v any, histogram bool) error {
	dps, ok := v.([]any)
	if !ok || len(dps) == 0 {
		return fmt.Errorf("otlp: metric %q has no dataPoints", name)
	}
	for i, d := range dps {
		dp, ok := d.(map[string]any)
		if !ok {
			return fmt.Errorf("otlp: metric %q dataPoint %d is not an object", name, i)
		}
		if err := checkUintString("metrics", dp["timeUnixNano"], "timeUnixNano"); err != nil {
			return err
		}
		if histogram {
			if err := checkUintString("metrics", dp["count"], "count"); err != nil {
				return err
			}
			buckets, ok := dp["bucketCounts"].([]any)
			if !ok {
				return fmt.Errorf("otlp: metric %q dataPoint %d has no bucketCounts", name, i)
			}
			bounds, _ := dp["explicitBounds"].([]any)
			if len(buckets) != len(bounds)+1 {
				return fmt.Errorf("otlp: metric %q: %d bucketCounts for %d explicitBounds (want bounds+1)",
					name, len(buckets), len(bounds))
			}
			for _, b := range buckets {
				if err := checkUintString("metrics", b, "bucketCount"); err != nil {
					return err
				}
			}
		} else if err := checkUintString("metrics", dp["asInt"], "asInt"); err != nil {
			return err
		}
	}
	return nil
}

// ValidateMetrics checks that raw parses as an OTLP JSON metrics document:
// a resourceMetrics array whose metrics each carry exactly one instrument
// variant, a semantic "rest."-prefixed name, and well-formed data points
// (decimal-string integers, bucketCounts = explicitBounds+1, cumulative
// monotonic sums).
func ValidateMetrics(raw []byte) error {
	var doc struct {
		ResourceMetrics []struct {
			Resource     map[string]any `json:"resource"`
			ScopeMetrics []struct {
				Scope   map[string]any   `json:"scope"`
				Metrics []map[string]any `json:"metrics"`
			} `json:"scopeMetrics"`
		} `json:"resourceMetrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("otlp: metrics document is not valid JSON: %w", err)
	}
	if doc.ResourceMetrics == nil {
		return fmt.Errorf("otlp: document has no resourceMetrics array")
	}
	for _, rm := range doc.ResourceMetrics {
		if err := checkAttrs("metrics", rm.Resource["attributes"], "resource"); err != nil {
			return err
		}
		for _, sm := range rm.ScopeMetrics {
			if name, _ := sm.Scope["name"].(string); name == "" {
				return fmt.Errorf("otlp: scopeMetrics has no scope name")
			}
			for _, m := range sm.Metrics {
				name, _ := m["name"].(string)
				if !strings.HasPrefix(name, "rest.") {
					return fmt.Errorf("otlp: metric name %q is outside the rest. namespace", name)
				}
				variants := 0
				for _, kind := range []string{"sum", "gauge", "histogram"} {
					body, ok := m[kind].(map[string]any)
					if !ok {
						continue
					}
					variants++
					if err := checkDataPoints(name, body["dataPoints"], kind == "histogram"); err != nil {
						return err
					}
					if kind != "gauge" {
						if at, _ := body["aggregationTemporality"].(float64); int(at) != CumulativeTemporality {
							return fmt.Errorf("otlp: metric %q: aggregationTemporality %v, want cumulative (%d)",
								name, body["aggregationTemporality"], CumulativeTemporality)
						}
					}
					if kind == "sum" {
						if mono, _ := body["isMonotonic"].(bool); !mono {
							return fmt.Errorf("otlp: sum %q must be monotonic", name)
						}
					}
				}
				if variants != 1 {
					return fmt.Errorf("otlp: metric %q has %d instrument variants, want exactly 1", name, variants)
				}
			}
		}
	}
	return nil
}

func isHex(s string) bool {
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// ValidateSpans checks that raw parses as an OTLP JSON trace document:
// a resourceSpans array whose spans carry 16-byte/8-byte lowercase-hex
// trace/span ids, a name, ordered start/end nanosecond timestamps, valid
// attributes and a status code in range.
func ValidateSpans(raw []byte) error {
	var doc struct {
		ResourceSpans []struct {
			Resource   map[string]any `json:"resource"`
			ScopeSpans []struct {
				Scope map[string]any   `json:"scope"`
				Spans []map[string]any `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("otlp: spans document is not valid JSON: %w", err)
	}
	if doc.ResourceSpans == nil {
		return fmt.Errorf("otlp: document has no resourceSpans array")
	}
	for _, rs := range doc.ResourceSpans {
		if err := checkAttrs("spans", rs.Resource["attributes"], "resource"); err != nil {
			return err
		}
		for _, ss := range rs.ScopeSpans {
			for _, s := range ss.Spans {
				name, _ := s["name"].(string)
				if name == "" {
					return fmt.Errorf("otlp: span has no name")
				}
				tid, _ := s["traceId"].(string)
				if len(tid) != 32 || !isHex(tid) {
					return fmt.Errorf("otlp: span %q: traceId %q is not 32 lowercase hex chars", name, tid)
				}
				sid, _ := s["spanId"].(string)
				if len(sid) != 16 || !isHex(sid) {
					return fmt.Errorf("otlp: span %q: spanId %q is not 16 lowercase hex chars", name, sid)
				}
				if err := checkUintString("spans", s["startTimeUnixNano"], "startTimeUnixNano"); err != nil {
					return err
				}
				if err := checkUintString("spans", s["endTimeUnixNano"], "endTimeUnixNano"); err != nil {
					return err
				}
				start, _ := strconv.ParseUint(s["startTimeUnixNano"].(string), 10, 64)
				end, _ := strconv.ParseUint(s["endTimeUnixNano"].(string), 10, 64)
				if end < start {
					return fmt.Errorf("otlp: span %q ends before it starts", name)
				}
				if attrs, ok := s["attributes"]; ok {
					if err := checkAttrs("spans", attrs, "span"); err != nil {
						return err
					}
				}
				if st, ok := s["status"].(map[string]any); ok {
					code, _ := st["code"].(float64)
					if code < StatusUnset || code > StatusError {
						return fmt.Errorf("otlp: span %q: status code %v out of range", name, code)
					}
				}
			}
		}
	}
	return nil
}

// ValidateLine dispatches one stream line to the matching document checker
// by its top-level key.
func ValidateLine(raw []byte) error {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("otlp: stream line is not a JSON object: %w", err)
	}
	switch {
	case probe["resourceMetrics"] != nil:
		return ValidateMetrics(raw)
	case probe["resourceSpans"] != nil:
		return ValidateSpans(raw)
	default:
		return fmt.Errorf("otlp: stream line has neither resourceMetrics nor resourceSpans")
	}
}

// ValidateDump validates a telemetry capture however it was taken: a single
// pretty-printed or compact document (GET /otlp/metrics), an NDJSON stream
// dump (GET /otlp/stream), or an SSE dump ("data: ..." framing, as curl
// records /otlp/stream?sse=1). Returns the number of validated documents.
func ValidateDump(raw []byte) (int, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return 0, fmt.Errorf("otlp: dump is empty")
	}
	// A single document may be pretty-printed across lines; try it first.
	if err := ValidateLine(trimmed); err == nil {
		return 1, nil
	}
	n := 0
	for i, line := range bytes.Split(trimmed, []byte("\n")) {
		line = bytes.TrimSpace(line)
		line = bytes.TrimPrefix(line, []byte("data: ")) // SSE framing
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		if err := ValidateLine(line); err != nil {
			return n, fmt.Errorf("line %d: %w", i+1, err)
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("otlp: dump contains no OTLP documents")
	}
	return n, nil
}
