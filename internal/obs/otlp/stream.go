package otlp

import (
	"sync"
	"sync/atomic"
)

// Bus fans exported telemetry lines out to any number of subscribers
// without ever blocking the publisher. The sweep engine's worker goroutines
// sit on the publishing side, so the cardinal rule is that a slow, stalled
// or dead subscriber costs the sweep nothing: each subscriber owns a
// bounded buffer, and a line that does not fit is dropped and counted —
// never queued unboundedly, never waited on.
type Bus struct {
	mu        sync.Mutex
	subs      map[*Subscriber]struct{}
	published uint64
	dropped   uint64
}

// DefaultSubscriberBuffer is the per-subscriber line buffer when Subscribe
// is called with buf <= 0. At one span line per sweep cell plus one metrics
// line per second, 256 lines absorb multi-second consumer stalls on every
// realistic grid.
const DefaultSubscriberBuffer = 256

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscriber]struct{})}
}

// Subscriber is one stream consumer's bounded mailbox.
type Subscriber struct {
	ch      chan []byte
	dropped atomic.Uint64
}

// C is the subscriber's line channel. It is closed by Unsubscribe.
func (s *Subscriber) C() <-chan []byte { return s.ch }

// Dropped reports how many lines were discarded because this subscriber's
// buffer was full.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Subscribe registers a consumer with the given buffer depth (<= 0 selects
// DefaultSubscriberBuffer). The subscriber receives every line published
// after this call that fits its buffer.
func (b *Bus) Subscribe(buf int) *Subscriber {
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	s := &Subscriber{ch: make(chan []byte, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Unsubscribe removes the consumer and closes its channel. Idempotent.
func (b *Bus) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Publish delivers one line to every subscriber whose buffer has room,
// dropping (and counting) it for the rest. Nil-safe and non-blocking by
// construction: the only synchronization is the bus mutex, which no
// subscriber holds while consuming.
func (b *Bus) Publish(line []byte) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.published++
	for s := range b.subs {
		select {
		case s.ch <- line:
		default:
			s.dropped.Add(1)
			b.dropped++
		}
	}
}

// Subscribers reports the current consumer count. Nil-safe.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Counters reports lifetime published and dropped line counts. Nil-safe.
func (b *Bus) Counters() (published, dropped uint64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.dropped
}
