package cache

import (
	"rest/internal/dram"
)

// HierConfig configures the full memory-side hierarchy per Table II.
type HierConfig struct {
	L1I  Config
	L1D  Config
	L2   Config
	DRAM dram.Config
}

// DefaultHierConfig returns the paper's Table II configuration:
// 64kB 8-way 2-cycle L1s, 2MB 16-way 20-cycle L2, DDR3-800.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:  Config{Name: "L1-I", SizeBytes: 64 << 10, Ways: 8, HitCycles: 2, MSHRs: 4},
		L1D:  Config{Name: "L1-D", SizeBytes: 64 << 10, Ways: 8, HitCycles: 2, MSHRs: 4, WriteBuf: 8},
		L2:   Config{Name: "L2", SizeBytes: 2 << 20, Ways: 16, HitCycles: 20, MSHRs: 20, WriteBuf: 8},
		DRAM: dram.Config{},
	}
}

// Hierarchy wires L1-I and L1-D over a shared L2 over DRAM. Only the L1-D
// carries REST token bits and the fill-time detector (§V-B "Detector
// Placement": the detector sits at the L1 data cache so every other cache
// stays unmodified).
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	DRAM *dram.DRAM

	tokens TokenSource
	// rest records whether the hierarchy was built with a token source, so
	// stats derived from that fact survive ReleaseTokenSource.
	rest bool
	// UserInstrs is set by the pipeline so per-kilo-instruction interface
	// stats can be derived.
}

// dramLevel adapts the DRAM model to the Level interface (reads and
// writebacks cost the same line transfer).
type dramLevel struct{ d *dram.DRAM }

func (dl dramLevel) Access(now uint64, lineAddr uint64, write bool) uint64 {
	return dl.d.Access(now, lineAddr)
}

// NewHierarchy builds the hierarchy. tokens may be nil for non-REST
// machines; when non-nil, REST semantics are enabled at the L1-D.
func NewHierarchy(cfg HierConfig, tokens TokenSource) (*Hierarchy, error) {
	d := dram.New(cfg.DRAM)
	cfg.L2.RESTEnabled = false
	l2, err := New(cfg.L2, dramLevel{d}, nil)
	if err != nil {
		return nil, err
	}
	cfg.L1I.RESTEnabled = false
	l1i, err := New(cfg.L1I, l2, nil)
	if err != nil {
		return nil, err
	}
	cfg.L1D.RESTEnabled = tokens != nil
	l1d, err := New(cfg.L1D, l2, tokens)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, DRAM: d, tokens: tokens, rest: tokens != nil}, nil
}

// ReleaseTokenSource drops the hierarchy's (and L1-D's) reference to the
// token source once no further accesses will happen. A replayed world's
// token source is a trace.Replayer pinning the whole captured trace; without
// this, every retained replay result keeps a multi-megabyte trace alive for
// the rest of the sweep. Stats already accumulated (including the
// token-crossing attribution) are unaffected.
func (h *Hierarchy) ReleaseTokenSource() {
	h.tokens = nil
	h.L1D.ReleaseTokenSource()
}

// FetchInstr models an instruction fetch of the line holding pc.
func (h *Hierarchy) FetchInstr(now uint64, pc uint64) uint64 {
	res := h.L1I.Load(now, pc&^(LineBytes-1), LineBytes)
	return res.Done
}

// TokenL2MemCrossings counts token-bearing lines that crossed the
// L2/memory interface (writebacks of token lines from L2 plus token lines
// filled from DRAM). The paper reports ~0.04 such crossings per
// kilo-instruction for xalanc (§VI-B). Because the L2 does not track token
// bits, we attribute L1-D token evictions that subsequently leave L2 by
// scanning with the token source; as an upper-bound proxy we report L2
// writebacks plus DRAM fills of lines currently holding tokens.
func (h *Hierarchy) TokenL2MemCrossings() uint64 {
	if !h.rest {
		return 0
	}
	// L1-D token evictions are the injection point of token lines into L2;
	// the fraction that then crosses to memory follows L2's writeback rate.
	l2wb := h.L2.Stats.Writebacks
	l1dTok := h.L1D.Stats.TokenEvicts
	l1dWB := h.L1D.Stats.Writebacks
	if l1dWB == 0 {
		return 0
	}
	// Proportional attribution of L2 writebacks to token lines.
	return l2wb * l1dTok / l1dWB
}
