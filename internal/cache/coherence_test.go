package cache

import (
	"math/rand"
	"testing"
)

// twoCores builds a 2-core group over a shared flat next level with an
// optional token source.
func twoCores(t *testing.T, tok TokenSource) (*Cache, *Cache, *flatMem) {
	t.Helper()
	next := &flatMem{lat: 60}
	mk := func() *Cache {
		c, err := New(Config{
			Name: "L1-D", SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4,
			WriteBuf: 8, RESTEnabled: tok != nil,
		}, next, tok)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	ConnectPeers(a, b)
	return a, b, next
}

func TestWriteInvalidatesPeerCopy(t *testing.T) {
	a, b, _ := twoCores(t, nil)
	a.Load(0, 0x1000, 8)
	b.Load(100, 0x1000, 8)
	if !a.Contains(0x1000) || !b.Contains(0x1000) {
		t.Fatal("line not shared across cores")
	}
	// Core B writes: A's copy must be invalidated.
	b.Store(200, 0x1000, 8)
	if a.Contains(0x1000) {
		t.Error("peer copy survived a write")
	}
	if a.Stats.Invalidations != 1 {
		t.Errorf("A invalidations = %d, want 1", a.Stats.Invalidations)
	}
	if b.Stats.UpgradeRequests != 1 {
		t.Errorf("B upgrade requests = %d, want 1", b.Stats.UpgradeRequests)
	}
}

func TestDirtyPeerIntervention(t *testing.T) {
	a, b, next := twoCores(t, nil)
	a.Store(0, 0x2000, 8) // dirty in A
	wbBefore := next.writes
	r := b.Load(500, 0x2000, 8) // B reads: A must supply/writeback
	if next.writes <= wbBefore {
		t.Error("dirty peer did not write back on intervention")
	}
	if a.Stats.Interventions != 1 {
		t.Errorf("A interventions = %d, want 1", a.Stats.Interventions)
	}
	_ = r
}

func TestWriteMissInvalidatesAllCopies(t *testing.T) {
	a, b, _ := twoCores(t, nil)
	a.Load(0, 0x3000, 8)
	b.Load(100, 0x3000, 8)
	// A third write from A (still holding shared) upgrades.
	a.Store(300, 0x3000, 8)
	if b.Contains(0x3000) {
		t.Error("B's copy survived A's upgrade")
	}
	// Now B writes (miss, since invalidated): A's M copy must go.
	b.Store(600, 0x3000, 8)
	if a.Contains(0x3000) {
		t.Error("A's modified copy survived B's write miss")
	}
}

// TestTokenMigratesAcrossCores is the §V-B property: a token armed on one
// core is detected on another — the content travels with the line, the
// receiving core's fill-time detector reconstructs the token bit, and no
// coherence changes are needed.
func TestTokenMigratesAcrossCores(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	a, b, _ := twoCores(t, tok)

	// Core A arms a line (token bit in A's L1-D, value materialized on
	// movement). In the content-based model the token source reflects the
	// architectural state immediately.
	a.Arm(0, 0x4000)
	tok.masks[0x4000] = 1

	// Core B loads the armed line: B's fill runs the detector and faults.
	r := b.Load(100, 0x4010, 8)
	if !r.TokenHit {
		t.Fatal("token not detected on the second core")
	}
	// Core B attempts to overwrite the token with a plain store: detected.
	r = b.Store(300, 0x4000, 8)
	if !r.TokenHit {
		t.Fatal("store to token line not detected on the second core")
	}
	// Core B disarms (same privilege level: allowed from any core).
	tok.masks[0x4000] = 0 // architectural effect of the disarm
	if _, ok := b.Disarm(500, 0x4000); !ok {
		t.Fatal("cross-core disarm of an armed line failed")
	}
	if m, _ := b.TokenMask(0x4000); m != 0 {
		t.Error("token bit survives disarm")
	}
}

func TestTokenInvalidationAccounting(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	a, b, _ := twoCores(t, tok)
	a.Arm(0, 0x5000)
	// B takes the line exclusively (e.g. its own arm after a legitimate
	// handoff): A's token-bearing copy is invalidated and written back.
	b.Arm(100, 0x5000)
	if a.Stats.TokenInvalidated != 1 {
		t.Errorf("TokenInvalidated = %d, want 1", a.Stats.TokenInvalidated)
	}
	if a.Contains(0x5000) {
		t.Error("A still holds the line after B's exclusive arm")
	}
}

func TestSingleCoreUnaffected(t *testing.T) {
	// A cache without a group behaves exactly as before.
	next := &flatMem{lat: 60}
	c, err := New(Config{SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4}, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Load(0, 0x1000, 8)
	c.Store(100, 0x1000, 8)
	if c.Stats.UpgradeRequests != 0 || c.Stats.Invalidations != 0 {
		t.Error("coherence stats non-zero on single-core cache")
	}
}

func TestMultiHierarchy(t *testing.T) {
	mh, err := NewMultiHierarchy(4, DefaultHierConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mh.Cores) != 4 {
		t.Fatalf("cores = %d, want 4", len(mh.Cores))
	}
	// All cores share one L2: core 0 warms it, core 3's miss hits L2.
	mh.Cores[0].L1D.Load(0, 0x7000, 8)
	dramBefore := mh.Cores[0].DRAM.Accesses
	mh.Cores[3].L1D.Load(1000, 0x7000, 8)
	if mh.Cores[3].DRAM.Accesses != dramBefore {
		t.Error("second core's read went to DRAM despite warm shared L2")
	}
	// Writes stay coherent.
	mh.Cores[1].L1D.Store(2000, 0x7000, 8)
	if mh.Cores[0].L1D.Contains(0x7000) || mh.Cores[3].L1D.Contains(0x7000) {
		t.Error("stale copies survive a third core's write")
	}
}

// Property: under random cross-core loads/stores, at most one core holds a
// dirty copy of any line, and no core holds a stale copy after a peer write.
func TestCoherenceInvariantProperty(t *testing.T) {
	a, b, _ := twoCores(t, nil)
	cores := []*Cache{a, b}
	r := rand.New(rand.NewSource(21))
	now := uint64(0)
	for i := 0; i < 4000; i++ {
		now += 10
		c := cores[r.Intn(2)]
		addr := 0x8000 + uint64(r.Intn(16))*64
		if r.Intn(2) == 0 {
			c.Load(now, addr, 8)
		} else {
			c.Store(now, addr, 8)
		}
		// Invariant: a line dirty in one cache must not be valid in the other.
		for _, line := range []uint64{addr} {
			da := a.lineState(line)
			db := b.lineState(line)
			if da == lineDirty && db != lineAbsent {
				t.Fatalf("step %d: line %#x dirty in A but present in B", i, line)
			}
			if db == lineDirty && da != lineAbsent {
				t.Fatalf("step %d: line %#x dirty in B but present in A", i, line)
			}
		}
	}
}

type lineStateKind int

const (
	lineAbsent lineStateKind = iota
	lineClean
	lineDirty
)

// lineState reports the coherence-relevant state of a line (test helper).
func (c *Cache) lineState(addr uint64) lineStateKind {
	l := c.lookup(addr &^ (LineBytes - 1))
	switch {
	case l == nil:
		return lineAbsent
	case l.dirty:
		return lineDirty
	default:
		return lineClean
	}
}
