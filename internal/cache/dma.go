package cache

// DMA modelling for the §V-B "Detector Placement" caveat:
//
//	"We place our detector at the L1 data cache in order to keep the other
//	 caches unmodified and hence, minimize design costs. Consequently,
//	 however, REST does not catch token accesses via means that completely
//	 sidestep the cache (e.g., DMA)."
//
// DMAEngine transfers lines directly against the L2/memory side, never
// passing through any L1-D and therefore never through the token detector.
// It exists to make the documented blind spot executable and testable: a
// DMA read of an armed region succeeds silently (exfiltrating the token
// value and anything else), which is exactly why the paper scopes the
// threat model to cache-mediated accesses.

// DMAEngine is a cache-bypassing transfer agent attached below the L1s.
type DMAEngine struct {
	level Level

	// Stats.
	Transfers     uint64
	LinesMoved    uint64
	TokenLineHits uint64 // token-bearing lines silently transferred
}

// NewDMAEngine attaches a DMA engine to a memory level (typically the L2).
func NewDMAEngine(level Level) *DMAEngine {
	return &DMAEngine{level: level}
}

// Transfer moves n bytes starting at addr at cycle now, line by line,
// without any token checking (there is no detector on this path). tokens,
// when non-nil, is consulted only to COUNT how many token-bearing lines
// were silently moved — the hardware itself has no idea.
func (d *DMAEngine) Transfer(now uint64, addr, n uint64, tokens TokenSource) uint64 {
	d.Transfers++
	first := addr &^ (LineBytes - 1)
	last := (addr + n - 1) &^ (LineBytes - 1)
	for line := first; line <= last; line += LineBytes {
		now = d.level.Access(now, line, false)
		d.LinesMoved++
		if tokens != nil && tokens.LineTokenMask(line) != 0 {
			d.TokenLineHits++
		}
	}
	return now
}
