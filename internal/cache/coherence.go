package cache

// Multicore coherence. The paper claims REST integrates without modifying
// "the coherence and consistency implementations of the cache, even for
// multicore, out-of-order processors" (§III), and that "adversaries cannot
// exploit inter-process, inter-core, or inter-cache interactions to bypass
// token semantics" (§V-B). Table I's coherence row is simply "as usual".
//
// This file provides an MSI-style snooping group over private L1-D caches
// sharing an L2. The REST-relevant property falls out of the content-based
// design: a token line migrating between cores carries its value in the
// data (dirty lines write it back; the receiving L1-D's fill-time detector
// re-derives the token bits from content), so detection works on whichever
// core touches the token — with zero token-specific coherence machinery.

// SnoopStats counts coherence activity for one cache.
type SnoopStats struct {
	Invalidations    uint64 // lines invalidated by a peer's write
	Interventions    uint64 // dirty lines supplied/written back for a peer
	TokenInvalidated uint64 // invalidated lines that carried token bits
	UpgradeRequests  uint64 // writes that had to invalidate peer copies
}

// snoopGroup connects peer caches.
type snoopGroup struct {
	members []*Cache
}

// ConnectPeers places the caches into one snooping coherence group. All
// caches must share the same lower level (the L2).
func ConnectPeers(caches ...*Cache) {
	g := &snoopGroup{members: caches}
	for _, c := range caches {
		c.group = g
	}
}

// interventionCycles is the bus latency to fetch a dirty line from a peer
// or invalidate remote copies.
const interventionCycles = 12

// snoopRead is called when cache `self` fills lineAddr for reading: peers
// with a dirty copy write it back (the fill is then sourced coherently) and
// keep a shared copy. Returns extra latency.
func (c *Cache) snoopRead(now uint64, lineAddr uint64) uint64 {
	if c.group == nil {
		return 0
	}
	var extra uint64
	for _, peer := range c.group.members {
		if peer == c {
			continue
		}
		if l := peer.lookup(lineAddr); l != nil {
			l.shared = true
			if l.dirty {
				// Intervention: the dirty peer supplies the line (and pushes
				// it to the shared level); token content travels with it.
				peer.Stats.Interventions++
				peer.next.Access(peer.wbufAdmit(now), lineAddr, true)
				l.dirty = false
				extra = interventionCycles
			}
		}
	}
	return extra
}

// snoopInvalidate is called before `self` writes lineAddr: every peer copy
// is invalidated (dirty copies write back first). Returns extra latency.
func (c *Cache) snoopInvalidate(now uint64, lineAddr uint64) uint64 {
	if c.group == nil {
		return 0
	}
	var extra uint64
	requested := false
	for _, peer := range c.group.members {
		if peer == c {
			continue
		}
		if l := peer.lookup(lineAddr); l != nil {
			if !requested {
				c.Stats.UpgradeRequests++
				requested = true
				extra = interventionCycles
			}
			peer.Stats.Invalidations++
			if l.tokenMask != 0 {
				peer.Stats.TokenInvalidated++
			}
			if l.dirty || l.tokenMask != 0 {
				// The departing copy (token value included) reaches the
				// shared level so the next reader sees current content.
				peer.next.Access(peer.wbufAdmit(now), lineAddr, true)
			}
			l.valid = false
			l.dirty = false
			l.tokenMask = 0
		}
	}
	return extra
}

// MultiHierarchy is an N-core machine: private L1-I/L1-D per core over one
// shared L2 and DRAM, with the L1-Ds in a snooping coherence group. All
// L1-Ds share one token source (§IV-B's single system-wide token).
type MultiHierarchy struct {
	Cores []*Hierarchy
	L2    *Cache
}

// NewMultiHierarchy builds an n-core hierarchy from the per-core L1 configs
// of cfg over one shared L2.
func NewMultiHierarchy(n int, cfg HierConfig, tokens TokenSource) (*MultiHierarchy, error) {
	base, err := NewHierarchy(cfg, tokens)
	if err != nil {
		return nil, err
	}
	mh := &MultiHierarchy{L2: base.L2, Cores: []*Hierarchy{base}}
	l1ds := []*Cache{base.L1D}
	for i := 1; i < n; i++ {
		l1iCfg := cfg.L1I
		l1i, err := New(l1iCfg, base.L2, nil)
		if err != nil {
			return nil, err
		}
		l1dCfg := cfg.L1D
		l1dCfg.RESTEnabled = tokens != nil
		l1d, err := New(l1dCfg, base.L2, tokens)
		if err != nil {
			return nil, err
		}
		mh.Cores = append(mh.Cores, &Hierarchy{
			L1I: l1i, L1D: l1d, L2: base.L2, DRAM: base.DRAM, tokens: tokens,
		})
		l1ds = append(l1ds, l1d)
	}
	ConnectPeers(l1ds...)
	return mh, nil
}
