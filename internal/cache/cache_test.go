package cache

import (
	"testing"
)

// flatMem is a fixed-latency Level for isolating one cache in tests.
type flatMem struct {
	lat      uint64
	accesses int
	writes   int
}

func (f *flatMem) Access(now uint64, lineAddr uint64, write bool) uint64 {
	f.accesses++
	if write {
		f.writes++
	}
	return now + f.lat
}

// fakeTokens is a scriptable TokenSource.
type fakeTokens struct {
	masks  map[uint64]uint8
	chunks int
}

func (f *fakeTokens) LineTokenMask(lineAddr uint64) uint8 {
	return f.masks[lineAddr&^uint64(LineBytes-1)]
}
func (f *fakeTokens) ChunksPerLine() int { return f.chunks }

func newTestCache(t *testing.T, rest bool, tok TokenSource) (*Cache, *flatMem) {
	t.Helper()
	next := &flatMem{lat: 100}
	c, err := New(Config{
		Name: "L1-D", SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 4,
		WriteBuf: 8, RESTEnabled: rest,
	}, next, tok)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, next
}

func TestBadGeometry(t *testing.T) {
	if _, err := New(Config{SizeBytes: 0, Ways: 1}, &flatMem{}, nil); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(Config{SizeBytes: 4096 - 64, Ways: 1}, &flatMem{}, nil); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestHitMissLatency(t *testing.T) {
	c, next := newTestCache(t, false, nil)
	r1 := c.Load(0, 0x1000, 8)
	if r1.Hit {
		t.Error("cold load hit")
	}
	// Critical-word first: the requested word arrives CWFAdvanceCycles
	// before the full line.
	if r1.Done < 100-CWFAdvanceCycles {
		t.Errorf("miss done = %d, want >= %d", r1.Done, 100-CWFAdvanceCycles)
	}
	if r1.FillDone < r1.Done+CWFAdvanceCycles {
		t.Errorf("FillDone %d not after critical word %d", r1.FillDone, r1.Done)
	}
	r2 := c.Load(r1.Done, 0x1008, 8)
	if !r2.Hit {
		t.Error("warm load missed")
	}
	if got := r2.Done - r1.Done; got != 2 {
		t.Errorf("hit latency = %d, want 2", got)
	}
	if next.accesses != 1 {
		t.Errorf("lower-level accesses = %d, want 1", next.accesses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := newTestCache(t, false, nil)
	// 2 ways; three conflicting lines in one set. Set count = 4096/64/2 = 32;
	// conflict stride = 32*64 = 2048.
	a, b, x := uint64(0x0), uint64(0x800), uint64(0x1000)
	c.Load(0, a, 8)
	c.Load(10, b, 8)
	c.Load(20, a, 8) // touch a -> b is LRU
	c.Load(30, x, 8) // evicts b
	if !c.Contains(a) {
		t.Error("a evicted, want kept (MRU)")
	}
	if c.Contains(b) {
		t.Error("b still resident, want evicted (LRU)")
	}
	if !c.Contains(x) {
		t.Error("x not resident after fill")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c, next := newTestCache(t, false, nil)
	c.Store(0, 0x0, 8)     // dirty line a
	c.Load(200, 0x800, 8)  // second way
	c.Load(400, 0x1000, 8) // evicts a -> writeback
	if next.writes != 1 {
		t.Errorf("writebacks to lower level = %d, want 1", next.writes)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("Stats.Writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c, next := newTestCache(t, false, nil)
	c.Load(0, 0x0, 8)
	c.Load(200, 0x800, 8)
	c.Load(400, 0x1000, 8) // evicts clean line
	if next.writes != 0 {
		t.Errorf("writebacks = %d, want 0 for clean eviction", next.writes)
	}
}

func TestMSHRMerging(t *testing.T) {
	c, next := newTestCache(t, false, nil)
	r1 := c.Load(0, 0x2000, 8)
	r2 := c.Load(1, 0x2010, 8) // same line, while miss in flight
	if next.accesses != 1 {
		t.Errorf("lower accesses = %d, want 1 (merged)", next.accesses)
	}
	_ = r1
	_ = r2
	if c.Stats.MergedMisses != 0 && c.Stats.MergedMisses != 1 {
		t.Errorf("MergedMisses = %d", c.Stats.MergedMisses)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	next := &flatMem{lat: 100}
	c, err := New(Config{SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 2}, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct-line misses at cycle 0 with only 2 MSHRs: the third
	// must start after one of the first completes.
	c.Load(0, 0x0000, 8)
	c.Load(0, 0x0040, 8)
	r3 := c.Load(0, 0x0080, 8)
	if r3.FillDone < 200 {
		t.Errorf("third miss fill done = %d, want >= 200 (MSHR stall)", r3.FillDone)
	}
	if c.Stats.MSHRStalls == 0 {
		t.Error("MSHRStalls = 0, want > 0")
	}
}

func TestStraddlingAccessTouchesBothLines(t *testing.T) {
	c, _ := newTestCache(t, false, nil)
	r := c.Load(0, 0x103c, 8) // crosses 0x1040 line boundary
	if c.Stats.Misses != 2 {
		t.Errorf("misses = %d, want 2 for straddling access", c.Stats.Misses)
	}
	if !c.Contains(0x1000) || !c.Contains(0x1040) {
		t.Error("straddling access did not fill both lines")
	}
	_ = r
}

func TestChunkMask(t *testing.T) {
	cases := []struct {
		addr uint64
		size uint8
		n    int
		want uint8
	}{
		{0x1000, 8, 1, 0b1},
		{0x1000, 8, 4, 0b0001},
		{0x1010, 8, 4, 0b0010},
		{0x103f, 1, 4, 0b1000},
		{0x1008, 16, 4, 0b0011}, // spans chunks 0 and 1
		{0x1000, 64, 4, 0b1111},
		{0x1020, 8, 2, 0b10},
	}
	for _, cse := range cases {
		if got := chunkMask(cse.addr, cse.size, cse.n); got != cse.want {
			t.Errorf("chunkMask(%#x,%d,%d) = %04b, want %04b", cse.addr, cse.size, cse.n, got, cse.want)
		}
	}
}

// --- Table I conformance at the cache level ---

func TestTableI_ArmHitSetsTokenBit(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	c, _ := newTestCache(t, true, tok)
	c.Load(0, 0x1000, 8) // make it a hit
	r := c.Arm(100, 0x1000)
	if !r.Hit {
		t.Error("arm on resident line reported miss")
	}
	if r.Done-100 != 1 {
		t.Errorf("arm hit latency = %d, want 1 (single cycle despite wide write)", r.Done-100)
	}
	m, ok := c.TokenMask(0x1000)
	if !ok || m != 1 {
		t.Errorf("token mask = %d/%v, want 1/true", m, ok)
	}
}

func TestTableI_ArmMissFetchesLine(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	c, next := newTestCache(t, true, tok)
	r := c.Arm(0, 0x2000)
	if r.Hit {
		t.Error("arm on absent line reported hit")
	}
	if next.accesses != 1 {
		t.Errorf("lower accesses = %d, want 1 (write-allocate fetch)", next.accesses)
	}
	if m, ok := c.TokenMask(0x2000); !ok || m != 1 {
		t.Errorf("token mask after arm miss = %d/%v, want 1/true", m, ok)
	}
}

func TestTableI_DisarmHitClearsAndZeroes(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	c, _ := newTestCache(t, true, tok)
	c.Arm(0, 0x1000)
	r, ok := c.Disarm(100, 0x1000)
	if !ok {
		t.Fatal("disarm of armed line flagged as violation")
	}
	if r.Done-100 != 2 {
		t.Errorf("disarm latency = %d, want 2 (1 + all-bank zeroing cycle)", r.Done-100)
	}
	if m, _ := c.TokenMask(0x1000); m != 0 {
		t.Errorf("token mask after disarm = %d, want 0", m)
	}
	if c.Stats.DisarmZeroes != 1 {
		t.Errorf("DisarmZeroes = %d, want 1", c.Stats.DisarmZeroes)
	}
}

func TestTableI_DisarmUnarmedRaises(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	c, _ := newTestCache(t, true, tok)
	c.Load(0, 0x1000, 8)
	if _, ok := c.Disarm(100, 0x1000); ok {
		t.Error("disarm of unarmed resident line did not raise")
	}
	// Miss path: fill finds no token in the line -> raise.
	if _, ok := c.Disarm(500, 0x3000); ok {
		t.Error("disarm of unarmed absent line did not raise")
	}
}

func TestTableI_DisarmMissWithTokenInMemory(t *testing.T) {
	// Line not resident, but memory holds a token (detector sets the bit on
	// fill): disarm must then succeed, per Table I "fetch line, set token
	// bit if it has token. Proceed as hit."
	tok := &fakeTokens{masks: map[uint64]uint8{0x3000: 1}, chunks: 1}
	c, _ := newTestCache(t, true, tok)
	if _, ok := c.Disarm(0, 0x3000); !ok {
		t.Error("disarm of armed-in-memory line raised")
	}
	if m, _ := c.TokenMask(0x3000); m != 0 {
		t.Error("token bit not cleared after disarm")
	}
}

func TestTableI_LoadTokenLineRaises(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{0x4000: 1}, chunks: 1}
	c, _ := newTestCache(t, true, tok)
	// Miss: fill detects token, access flags.
	r := c.Load(0, 0x4010, 8)
	if !r.TokenHit {
		t.Error("load of token line (miss path) not flagged")
	}
	// Hit path.
	r = c.Load(r.Done, 0x4020, 4)
	if !r.TokenHit {
		t.Error("load of token line (hit path) not flagged")
	}
	if c.Stats.TokenFills != 1 {
		t.Errorf("TokenFills = %d, want 1", c.Stats.TokenFills)
	}
	if c.Stats.TokenHits != 2 {
		t.Errorf("TokenHits = %d, want 2", c.Stats.TokenHits)
	}
}

func TestTableI_StoreTokenLineRaises(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{0x5000: 1}, chunks: 1}
	c, _ := newTestCache(t, true, tok)
	r := c.Store(0, 0x5000, 8)
	if !r.TokenHit {
		t.Error("store to token line not flagged")
	}
}

func TestTableI_EvictionCarriesToken(t *testing.T) {
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 1}
	c, next := newTestCache(t, true, tok)
	c.Arm(0, 0x0)          // token line in set 0
	c.Load(100, 0x800, 8)  // second way of set 0
	c.Load(300, 0x1000, 8) // evict token line
	if c.Stats.TokenEvicts != 1 {
		t.Errorf("TokenEvicts = %d, want 1", c.Stats.TokenEvicts)
	}
	// Token line eviction produces a writeback (the token value is filled
	// into the outgoing packet).
	if next.writes != 1 {
		t.Errorf("writes = %d, want 1", next.writes)
	}
}

func TestSubLineTokenChunks(t *testing.T) {
	// 16-byte tokens: 4 chunks/line. Arm only chunk 2; accesses to other
	// chunks of the same line must NOT raise.
	tok := &fakeTokens{masks: map[uint64]uint8{}, chunks: 4}
	c, _ := newTestCache(t, true, tok)
	c.Load(0, 0x1000, 8)
	c.Arm(10, 0x1020) // chunk 2
	if r := c.Load(20, 0x1000, 8); r.TokenHit {
		t.Error("access to unarmed chunk flagged")
	}
	if r := c.Load(30, 0x1020, 4); !r.TokenHit {
		t.Error("access to armed chunk not flagged")
	}
	if r := c.Load(40, 0x1030, 8); r.TokenHit {
		t.Error("access to chunk 3 flagged")
	}
}

func TestWriteBufferStalls(t *testing.T) {
	next := &flatMem{lat: 1000}
	c, err := New(Config{SizeBytes: 4096, Ways: 2, HitCycles: 2, MSHRs: 8, WriteBuf: 1}, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Load(0, 0x0, 8)
	c.Load(0, 0x800, 8)
	// Two dirty evictions in quick succession with a single write-buffer
	// entry: second must stall.
	c.Store(3000, 0x0, 8)
	c.Store(3010, 0x800, 8)
	c.Load(3020, 0x1000, 8) // evict dirty
	c.Load(3030, 0x1800, 8) // evict dirty -> wbuf stall
	if c.Stats.WBufStalls == 0 {
		t.Error("WBufStalls = 0, want > 0")
	}
}

func TestHierarchyDefault(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Instruction fetch path touches L1-I then L2 then DRAM.
	done := h.FetchInstr(0, 0x400000)
	if done == 0 {
		t.Error("fetch done = 0")
	}
	if h.L1I.Stats.Misses != 1 || h.L2.Stats.Misses != 1 || h.DRAM.Accesses != 1 {
		t.Errorf("miss path = L1I:%d L2:%d DRAM:%d, want 1/1/1",
			h.L1I.Stats.Misses, h.L2.Stats.Misses, h.DRAM.Accesses)
	}
	warm := h.FetchInstr(done, 0x400000)
	if warm-done != 2 {
		t.Errorf("warm fetch latency = %d, want 2", warm-done)
	}
	// Data side: L1-D load misses to L2 (which now holds nothing at that
	// address) then DRAM.
	r := h.L1D.Load(0, 0x2000_0000, 8)
	if r.Hit {
		t.Error("cold data load hit")
	}
	if h.TokenL2MemCrossings() != 0 {
		t.Error("token crossings non-zero on non-REST hierarchy")
	}
}

func TestHierarchyInclusionOfDataInL2(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1 := h.L1D.Load(0, 0x1234000, 8)
	// A second core-side structure (L1-I) asking L2 for the same line hits.
	before := h.DRAM.Accesses
	h.L2.Access(r1.Done, 0x1234000, false)
	if h.DRAM.Accesses != before {
		t.Error("L2 re-fetched a line it should hold")
	}
}
